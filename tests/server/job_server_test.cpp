// JobServer tests over the in-process API: typed admission control,
// cache behaviour, quarantine isolation, budget typing, transient
// retries and kill-equivalent restart recovery.
#include "server/job_server.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>

#include "common/failpoint.hpp"
#include "model/io.hpp"
#include "tgff/suites.hpp"

namespace mmsyn {
namespace {

/// Fresh scratch state directory per test.
std::string scratch_dir(const char* name) {
  const std::string dir =
      std::string(::testing::TempDir()) + "mmsyn_server_" + name;
  std::remove((dir + "/jobs.wal").c_str());
  std::remove((dir + "/jobs.wal.tmp").c_str());
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

std::string small_system_text() { return system_to_string(make_mul(5)); }

/// A system that parses but fails System::validate(): every `impl` line
/// is stripped, so each task type has no implementation on any PE. This
/// is the admission-vs-execution seam: admission only parses, so the
/// poison is accepted and must be caught (and quarantined) by its job.
std::string poison_system_text() {
  std::istringstream in(small_system_text());
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("impl ", 0) != 0) out << line << "\n";
  }
  return out.str();
}

JobOptions fast_options(std::uint64_t seed) {
  JobOptions o;
  o.seed = seed;
  o.population = 16;
  o.generations = 30;
  o.report_gantt = false;  // keep stored reports small in tests
  return o;
}

ServerOptions base_options(const std::string& state_dir) {
  ServerOptions o;
  o.state_dir = state_dir;
  o.workers = 2;
  o.queue_limit = 16;
  return o;
}

TEST(JobServer, QueueFullIsTypedRejection) {
  const std::string dir = scratch_dir("queuefull");
  ServerOptions options = base_options(dir);
  options.workers = 0;  // admission-only: nothing drains the queue
  options.queue_limit = 2;
  JobServer server(std::move(options));
  server.start();

  SubmitRequest request;
  request.system_text = small_system_text();
  request.options = fast_options(1);
  EXPECT_TRUE(server.submit(request).accepted);
  request.options.seed = 2;
  EXPECT_TRUE(server.submit(request).accepted);
  request.options.seed = 3;
  const SubmitOutcome third = server.submit(request);
  EXPECT_FALSE(third.accepted);
  EXPECT_EQ(third.reject.code, RejectCode::kQueueFull);

  const StatsReply stats = server.stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.queued, 2u);
  EXPECT_EQ(stats.queue_full_rejections, 1u);
}

TEST(JobServer, ParseErrorIsTypedRejection) {
  const std::string dir = scratch_dir("parse");
  JobServer server(base_options(dir));
  server.start();
  SubmitRequest request;
  request.system_text = "this is not a system\n";
  const SubmitOutcome out = server.submit(request);
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(out.reject.code, RejectCode::kParseError);
  EXPECT_EQ(server.stats().accepted, 0u);
}

TEST(JobServer, WaitUnknownJobIsTyped) {
  const std::string dir = scratch_dir("unknown");
  JobServer server(base_options(dir));
  server.start();
  const WaitOutcome out = server.wait(999);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.reject.code, RejectCode::kUnknownJob);
}

TEST(JobServer, ResultCacheServesRepeatsByteIdentically) {
  const std::string dir = scratch_dir("cache");
  JobServer server(base_options(dir));
  server.start();

  SubmitRequest request;
  request.system_text = small_system_text();
  request.options = fast_options(4);
  const SubmitOutcome first = server.submit(request);
  ASSERT_TRUE(first.accepted);
  EXPECT_FALSE(first.ok.cached);
  const WaitOutcome first_result = server.wait(first.ok.job_id);
  ASSERT_TRUE(first_result.ok);
  EXPECT_EQ(first_result.result.outcome, JobOutcome::kOk);
  EXPECT_FALSE(first_result.result.report.empty());

  // Identical submission: served from cache, byte-identical report.
  // A different thread count must hit the same entry (results are
  // thread-count invariant and the fingerprint excludes it).
  request.options.threads = 4;
  const SubmitOutcome second = server.submit(request);
  ASSERT_TRUE(second.accepted);
  EXPECT_TRUE(second.ok.cached);
  EXPECT_NE(second.ok.job_id, first.ok.job_id);
  const WaitOutcome second_result = server.wait(second.ok.job_id);
  ASSERT_TRUE(second_result.ok);
  EXPECT_EQ(second_result.result.report, first_result.result.report);

  // A different seed is different work: cache miss.
  request.options = fast_options(5);
  const SubmitOutcome third = server.submit(request);
  ASSERT_TRUE(third.accepted);
  EXPECT_FALSE(third.ok.cached);

  const StatsReply stats = server.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_lookups, 3u);
}

TEST(JobServer, PoisonJobIsQuarantinedWithoutAffectingOthers) {
  const std::string dir = scratch_dir("poison");
  JobServer server(base_options(dir));
  server.start();

  SubmitRequest poison;
  poison.system_text = poison_system_text();
  poison.options = fast_options(6);
  const SubmitOutcome poison_submit = server.submit(poison);
  ASSERT_TRUE(poison_submit.accepted);  // parseable => admitted

  SubmitRequest healthy;
  healthy.system_text = small_system_text();
  healthy.options = fast_options(7);
  const SubmitOutcome healthy_submit = server.submit(healthy);
  ASSERT_TRUE(healthy_submit.accepted);

  const WaitOutcome poison_result = server.wait(poison_submit.ok.job_id);
  ASSERT_TRUE(poison_result.ok);
  EXPECT_EQ(poison_result.result.outcome, JobOutcome::kQuarantined);
  EXPECT_NE(poison_result.result.report.find("invalid system"),
            std::string::npos);

  // The healthy job is untouched by its neighbour's quarantine.
  const WaitOutcome healthy_result = server.wait(healthy_submit.ok.job_id);
  ASSERT_TRUE(healthy_result.ok);
  EXPECT_EQ(healthy_result.result.outcome, JobOutcome::kOk);
  EXPECT_FALSE(healthy_result.result.report.empty());

  const StatsReply stats = server.stats();
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(JobServer, BudgetExhaustionIsTypedAndCarriesPartialResult) {
  const std::string dir = scratch_dir("budget");
  JobServer server(base_options(dir));
  server.start();

  SubmitRequest request;
  request.system_text = system_to_string(make_mul(8));
  request.options = fast_options(8);
  request.options.generations = 1'000'000;  // budget must stop it
  // Tiny enough that the budget check fires long before the GA could
  // plausibly converge (stagnation needs 70+ generations).
  request.options.time_budget = 0.001;
  const SubmitOutcome submitted = server.submit(request);
  ASSERT_TRUE(submitted.accepted);
  const WaitOutcome out = server.wait(submitted.ok.job_id);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.result.outcome, JobOutcome::kBudgetExhausted);
  // The partial result still carries a full priced report.
  EXPECT_FALSE(out.result.report.empty());
  EXPECT_GT(out.result.avg_power_true, 0.0);

  // Budget-limited (wall-clock-dependent) results must never be cached.
  const SubmitOutcome again = server.submit(request);
  ASSERT_TRUE(again.accepted);
  EXPECT_FALSE(again.ok.cached);
  // Avoid leaving the duplicate running during teardown churn.
  (void)server.wait(again.ok.job_id);
}

TEST(JobServer, TransientFaultRetriesDeterministically) {
  const std::string dir = scratch_dir("transient");
  failpoint::arm("job.spawn=fail@1");
  JobServer server(base_options(dir));
  server.start();

  SubmitRequest request;
  request.system_text = small_system_text();
  request.options = fast_options(9);
  const SubmitOutcome submitted = server.submit(request);
  ASSERT_TRUE(submitted.accepted);
  const WaitOutcome out = server.wait(submitted.ok.job_id);
  failpoint::disarm();
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.result.outcome, JobOutcome::kOk);
  EXPECT_EQ(server.stats().retries, 1u);
}

TEST(JobServer, PersistentTransientFaultQuarantines) {
  const std::string dir = scratch_dir("transient_exhaust");
  failpoint::arm("job.spawn=fail");  // every attempt
  ServerOptions options = base_options(dir);
  options.max_transient_retries = 2;
  JobServer server(std::move(options));
  server.start();

  SubmitRequest request;
  request.system_text = small_system_text();
  request.options = fast_options(10);
  const SubmitOutcome submitted = server.submit(request);
  ASSERT_TRUE(submitted.accepted);
  const WaitOutcome out = server.wait(submitted.ok.job_id);
  failpoint::disarm();
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.result.outcome, JobOutcome::kQuarantined);
  EXPECT_EQ(server.stats().retries, 3u);  // initial + 2 retries all failed
}

TEST(JobServer, RestartRecoversPendingJobsAndResults) {
  const std::string dir = scratch_dir("restart");
  SubmitRequest a, b;
  a.system_text = small_system_text();
  a.options = fast_options(11);
  b.system_text = small_system_text();
  b.options = fast_options(12);

  std::uint64_t id_a = 0;
  std::uint64_t id_b = 0;
  std::string report_a;
  {
    // Phase 1: admission-only server — jobs are journaled but never run
    // (the deterministic stand-in for "killed before the work finished").
    ServerOptions options = base_options(dir);
    options.workers = 0;
    JobServer server(std::move(options));
    server.start();
    const SubmitOutcome sa = server.submit(a);
    const SubmitOutcome sb = server.submit(b);
    ASSERT_TRUE(sa.accepted);
    ASSERT_TRUE(sb.accepted);
    id_a = sa.ok.job_id;
    id_b = sb.ok.job_id;
    server.drain_and_stop();
  }
  {
    // Phase 2: restart with workers — both jobs recovered and completed.
    JobServer server(base_options(dir));
    server.start();
    EXPECT_EQ(server.stats().recovered_pending, 2u);
    const WaitOutcome ra = server.wait(id_a);
    const WaitOutcome rb = server.wait(id_b);
    ASSERT_TRUE(ra.ok);
    ASSERT_TRUE(rb.ok);
    EXPECT_EQ(ra.result.outcome, JobOutcome::kOk);
    EXPECT_EQ(rb.result.outcome, JobOutcome::kOk);
    report_a = ra.result.report;
    server.drain_and_stop();
  }
  {
    // Phase 3: restart again — completed results survive, same ids, same
    // bytes, and the cache is rebuilt from the journal (an identical
    // submission is a hit without any worker involvement).
    ServerOptions options = base_options(dir);
    options.workers = 0;
    JobServer server(std::move(options));
    server.start();
    const WaitOutcome ra = server.wait(id_a);
    ASSERT_TRUE(ra.ok);
    EXPECT_EQ(ra.result.report, report_a);
    const SubmitOutcome resubmit = server.submit(a);
    ASSERT_TRUE(resubmit.accepted);
    EXPECT_TRUE(resubmit.ok.cached);
  }
}

TEST(JobServer, CrashLoopingJobIsQuarantinedAtRecovery) {
  const std::string dir = scratch_dir("crashloop");
  SubmitRequest request;
  request.system_text = small_system_text();
  request.options = fast_options(13);

  std::uint64_t id = 0;
  {
    ServerOptions options = base_options(dir);
    options.workers = 0;
    JobServer server(std::move(options));
    server.start();
    const SubmitOutcome submitted = server.submit(request);
    ASSERT_TRUE(submitted.accepted);
    id = submitted.ok.job_id;
    server.drain_and_stop();
  }
  {
    // Forge the crash history: two attempts that never reached a
    // terminal record — the journal shape `kill -9` leaves behind.
    JobJournal journal;
    (void)journal.open(dir + "/jobs.wal");
    journal.append_attempt(id, 1);
    journal.append_attempt(id, 2);
  }
  JobServer server(base_options(dir));
  server.start();
  const WaitOutcome out = server.wait(id);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.result.outcome, JobOutcome::kQuarantined);
  EXPECT_NE(out.result.report.find("crash"), std::string::npos);
  EXPECT_EQ(server.stats().quarantined, 1u);
  EXPECT_EQ(server.stats().recovered_pending, 0u);
}

TEST(JobServer, DrainLeavesRunningJobResumable) {
  const std::string dir = scratch_dir("drain");
  SubmitRequest request;
  request.system_text = system_to_string(make_mul(8));
  request.options = fast_options(14);
  // Heavy enough that convergence cannot beat the drain: stagnation
  // needs 70+ generations of a 96-genome population on an 8-mode system.
  request.options.population = 96;
  request.options.generations = 1'000'000;
  request.options.time_budget = 30.0;  // far beyond the test's patience

  std::uint64_t id = 0;
  {
    ServerOptions options = base_options(dir);
    options.workers = 1;
    options.checkpoint_every = 1;  // checkpoint density for a short test
    JobServer server(std::move(options));
    server.start();
    const SubmitOutcome submitted = server.submit(request);
    ASSERT_TRUE(submitted.accepted);
    id = submitted.ok.job_id;
    // Let it run a little so the drain interrupts mid-flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    server.drain_and_stop();
    // Post-drain, the job is neither completed nor lost.
    const WaitOutcome blocked = server.wait(id);
    EXPECT_FALSE(blocked.ok);
    EXPECT_EQ(blocked.reject.code, RejectCode::kDraining);
  }
  // The restarted server re-runs it; the drain was deliberate, so the
  // crash-attempt counter must NOT have advanced toward quarantine.
  ServerOptions options = base_options(dir);
  options.workers = 1;
  JobServer server(std::move(options));
  server.start();
  EXPECT_EQ(server.stats().recovered_pending, 1u);
  EXPECT_EQ(server.stats().quarantined, 0u);
  // Rather than wait 30s for the budget, drain again — the job must
  // still be resumable, and the deliberate stop must not look like a
  // crash to the quarantine counter.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.drain_and_stop();
  JobJournal journal;
  const JournalRecovery recovery = journal.open(dir + "/jobs.wal");
  EXPECT_EQ(recovery.jobs.at(id).crash_attempts, 0);
  EXPECT_FALSE(recovery.jobs.at(id).completed);
}

}  // namespace
}  // namespace mmsyn
