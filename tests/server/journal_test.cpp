// WAL journal tests: replay, torn-tail truncation, corruption stops,
// crash-attempt counting, drain resets and compaction.
#include "server/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace mmsyn {
namespace {

std::string scratch_path(const char* name) {
  const std::string path =
      std::string(::testing::TempDir()) + "mmsyn_journal_" + name + ".wal";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

JobOptions sample_options() {
  JobOptions o;
  o.seed = 5;
  o.population = 16;
  o.generations = 40;
  o.time_budget = 2.5;
  return o;
}

TEST(Journal, FreshFileReplaysEmpty) {
  const std::string path = scratch_path("fresh");
  JobJournal journal;
  const JournalRecovery recovery = journal.open(path);
  EXPECT_TRUE(recovery.jobs.empty());
  EXPECT_EQ(recovery.next_job_id, 1u);
  EXPECT_TRUE(recovery.notes.empty());
  EXPECT_TRUE(journal.is_open());
}

TEST(Journal, AppendAndReplayFullLifecycle) {
  const std::string path = scratch_path("lifecycle");
  {
    JobJournal journal;
    (void)journal.open(path);
    journal.append_accept(1, 0xabc, sample_options(), "system a\n");
    journal.append_accept(2, 0xdef, sample_options(), "system b\n");
    journal.append_attempt(1, 1);
    JobResultReply result;
    result.job_id = 1;
    result.outcome = JobOutcome::kOk;
    result.feasible = true;
    result.avg_power_true = 0.125;
    result.report = "the report\n";
    journal.append_complete(result);
    journal.append_attempt(2, 1);
    journal.append_quarantine(2, "boom");
  }
  JobJournal journal;
  const JournalRecovery recovery = journal.open(path);
  ASSERT_EQ(recovery.jobs.size(), 2u);
  EXPECT_EQ(recovery.next_job_id, 3u);

  const JournalJob& one = recovery.jobs.at(1);
  EXPECT_TRUE(one.completed);
  EXPECT_FALSE(one.quarantined);
  EXPECT_EQ(one.fingerprint, 0xabcu);
  EXPECT_EQ(one.system_text, "system a\n");
  EXPECT_EQ(one.options.time_budget, 2.5);
  EXPECT_EQ(one.result.report, "the report\n");
  EXPECT_TRUE(one.result.feasible);
  EXPECT_DOUBLE_EQ(one.result.avg_power_true, 0.125);

  const JournalJob& two = recovery.jobs.at(2);
  EXPECT_FALSE(two.completed);
  EXPECT_TRUE(two.quarantined);
  EXPECT_EQ(two.quarantine_error, "boom");
}

TEST(Journal, CrashAttemptsCountDanglingAttempts) {
  const std::string path = scratch_path("attempts");
  {
    JobJournal journal;
    (void)journal.open(path);
    journal.append_accept(1, 1, sample_options(), "x");
    journal.append_attempt(1, 1);   // crash
    journal.append_attempt(1, 2);   // crash again
  }
  JobJournal journal;
  const JournalRecovery recovery = journal.open(path);
  EXPECT_EQ(recovery.jobs.at(1).crash_attempts, 2);
  EXPECT_FALSE(recovery.jobs.at(1).completed);
}

TEST(Journal, DrainedResetsCrashAttempts) {
  const std::string path = scratch_path("drained");
  {
    JobJournal journal;
    (void)journal.open(path);
    journal.append_accept(1, 1, sample_options(), "x");
    journal.append_attempt(1, 1);
    journal.append_drained(1);  // deliberate interruption, not a crash
  }
  JobJournal journal;
  const JournalRecovery recovery = journal.open(path);
  EXPECT_EQ(recovery.jobs.at(1).crash_attempts, 0);
}

TEST(Journal, TornTailIsTruncatedAndAppendable) {
  const std::string path = scratch_path("torn");
  {
    JobJournal journal;
    (void)journal.open(path);
    journal.append_accept(1, 1, sample_options(), "x");
    journal.append_accept(2, 2, sample_options(), "y");
  }
  // Simulate a crash mid-append: chop bytes off the last record.
  std::string bytes = read_file(path);
  write_file(path, bytes.substr(0, bytes.size() - 7));

  JobJournal journal;
  const JournalRecovery recovery = journal.open(path);
  EXPECT_EQ(recovery.jobs.size(), 1u);  // job 2's record was torn
  EXPECT_TRUE(recovery.jobs.contains(1));
  ASSERT_FALSE(recovery.notes.empty());

  // The torn region was physically truncated, so new appends extend a
  // clean prefix.
  journal.append_accept(3, 3, sample_options(), "z");
  journal.close();
  JobJournal reopened;
  const JournalRecovery after = reopened.open(path);
  EXPECT_EQ(after.jobs.size(), 2u);
  EXPECT_TRUE(after.jobs.contains(3));
  EXPECT_TRUE(after.notes.empty());
}

TEST(Journal, CorruptRecordDropsTail) {
  const std::string path = scratch_path("corrupt");
  {
    JobJournal journal;
    (void)journal.open(path);
    journal.append_accept(1, 1, sample_options(), "x");
    journal.append_accept(2, 2, sample_options(), "y");
    journal.append_accept(3, 3, sample_options(), "z");
  }
  std::string bytes = read_file(path);
  // Flip a bit inside the *second* record's payload (the records are
  // equal-sized; pick an offset safely inside the middle one).
  const std::size_t record = (bytes.size() - 12) / 3;
  bytes[12 + record + record / 2] ^= 0x40;
  write_file(path, bytes);

  JobJournal journal;
  const JournalRecovery recovery = journal.open(path);
  // Replay keeps the clean prefix (job 1) and drops everything from the
  // corrupt record on — job 3 is gone even though its bytes were fine:
  // order is what the WAL means.
  EXPECT_EQ(recovery.jobs.size(), 1u);
  EXPECT_TRUE(recovery.jobs.contains(1));
  ASSERT_FALSE(recovery.notes.empty());
}

TEST(Journal, BadHeaderThrows) {
  const std::string path = scratch_path("badheader");
  write_file(path, "WRONGMAGIC........");
  JobJournal journal;
  EXPECT_THROW((void)journal.open(path), JournalError);
}

TEST(Journal, CompactionPreservesLiveState) {
  const std::string path = scratch_path("compact");
  JobJournal journal;
  (void)journal.open(path);
  journal.append_accept(1, 1, sample_options(), "x");
  journal.append_attempt(1, 1);
  JobResultReply result;
  result.job_id = 1;
  result.outcome = JobOutcome::kOk;
  result.report = "rep";
  journal.append_complete(result);
  journal.append_accept(2, 2, sample_options(), "y");
  journal.append_attempt(2, 1);  // pending with one crash attempt
  journal.append_accept(3, 3, sample_options(), "z");
  journal.append_quarantine(3, "bad");
  const std::size_t before = read_file(path).size();

  journal.close();
  JobJournal replayer;
  JournalRecovery state = replayer.open(path);
  state.jobs.at(1).crash_attempts = 0;  // completed: history irrelevant
  replayer.compact(state);

  // Re-replay after compaction: identical live state, and the journal is
  // still appendable.
  replayer.append_accept(4, 4, sample_options(), "w");
  replayer.close();
  JobJournal reopened;
  const JournalRecovery after = reopened.open(path);
  EXPECT_EQ(after.jobs.size(), 4u);
  EXPECT_TRUE(after.jobs.at(1).completed);
  EXPECT_EQ(after.jobs.at(1).result.report, "rep");
  EXPECT_EQ(after.jobs.at(2).crash_attempts, 1);
  EXPECT_FALSE(after.jobs.at(2).completed);
  EXPECT_TRUE(after.jobs.at(3).quarantined);
  EXPECT_EQ(after.jobs.at(3).quarantine_error, "bad");
  EXPECT_TRUE(after.jobs.contains(4));
  EXPECT_EQ(after.next_job_id, 5u);
  (void)before;
}

TEST(Journal, CompactionForgetsRequestedJobs) {
  const std::string path = scratch_path("forget");
  JobJournal journal;
  (void)journal.open(path);
  journal.append_accept(1, 1, sample_options(), "x");
  journal.append_accept(2, 2, sample_options(), "y");
  journal.close();

  JobJournal replayer;
  JournalRecovery state = replayer.open(path);
  replayer.compact(state, /*forget=*/{1});
  replayer.close();

  JobJournal reopened;
  const JournalRecovery after = reopened.open(path);
  EXPECT_EQ(after.jobs.size(), 1u);
  EXPECT_TRUE(after.jobs.contains(2));
  // next_job_id still reflects the replayed high-water mark of ids seen.
  EXPECT_EQ(after.next_job_id, 3u);
}

}  // namespace
}  // namespace mmsyn
