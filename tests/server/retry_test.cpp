// Deterministic retry-backoff tests, including the property the soak
// harness relies on: the schedule is a pure function of (seed, job id,
// attempt) — identical under any thread count.
#include "server/retry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace mmsyn {
namespace {

TEST(ServerRetry, ExponentialEnvelopeWithCap) {
  for (int attempt = 1; attempt <= 7; ++attempt) {
    const auto d = server_retry_backoff(1, 10, attempt);
    const std::int64_t base = 1000ll << (attempt - 1);
    EXPECT_GE(d.count(), std::min<std::int64_t>(base, 250'000));
    EXPECT_LE(d.count(), 250'000);
    if (base * 2 <= 250'000) {
      EXPECT_LT(d.count(), base * 2);
    }
  }
  // Deep attempts saturate at the cap exactly.
  EXPECT_EQ(server_retry_backoff(1, 10, 9).count(), 250'000);
  EXPECT_EQ(server_retry_backoff(1, 10, 30).count(), 250'000);
  // Attempt is clamped at 1 from below.
  EXPECT_EQ(server_retry_backoff(1, 10, 0), server_retry_backoff(1, 10, 1));
}

TEST(ServerRetry, PureFunctionOfSeedJobAttempt) {
  for (std::uint64_t seed : {1ull, 7ull, 0xdeadbeefull}) {
    for (std::uint64_t job = 1; job <= 8; ++job) {
      for (int attempt = 1; attempt <= 4; ++attempt) {
        const auto first = server_retry_backoff(seed, job, attempt);
        EXPECT_EQ(server_retry_backoff(seed, job, attempt), first);
      }
    }
  }
}

TEST(ServerRetry, JitterSeparatesJobsAndSeeds) {
  // Different jobs (and different server seeds) should not march in
  // lockstep — at least one attempt must differ. (Collisions for a
  // single pair are astronomically unlikely with 10+ bits of jitter.)
  bool jobs_differ = false;
  bool seeds_differ = false;
  for (int attempt = 3; attempt <= 6; ++attempt) {
    jobs_differ = jobs_differ || server_retry_backoff(1, 10, attempt) !=
                                     server_retry_backoff(1, 11, attempt);
    seeds_differ = seeds_differ || server_retry_backoff(1, 10, attempt) !=
                                       server_retry_backoff(2, 10, attempt);
  }
  EXPECT_TRUE(jobs_differ);
  EXPECT_TRUE(seeds_differ);
}

TEST(ServerRetryProperty, ScheduleIdenticalAcrossThreadCounts) {
  // The property the ISSUE pins: computing the schedule from 1, 4 or 16
  // concurrent threads — in any interleaving — yields byte-identical
  // tables. There is no hidden state to race on; this test exists so a
  // future "optimisation" that introduces one fails loudly.
  constexpr std::uint64_t kSeed = 99;
  constexpr int kJobs = 32;
  constexpr int kAttempts = 4;

  std::vector<std::int64_t> reference;
  for (std::uint64_t job = 1; job <= kJobs; ++job) {
    for (int attempt = 1; attempt <= kAttempts; ++attempt) {
      reference.push_back(server_retry_backoff(kSeed, job, attempt).count());
    }
  }

  for (int thread_count : {1, 4, 16}) {
    std::vector<std::int64_t> table(reference.size(), -1);
    std::vector<std::thread> threads;
    for (int t = 0; t < thread_count; ++t) {
      threads.emplace_back([&, t] {
        // Strided partition: every thread count covers every slot, each
        // slot computed by exactly one thread.
        for (std::size_t slot = static_cast<std::size_t>(t);
             slot < table.size();
             slot += static_cast<std::size_t>(thread_count)) {
          const std::uint64_t job = slot / kAttempts + 1;
          const int attempt = static_cast<int>(slot % kAttempts) + 1;
          table[slot] = server_retry_backoff(kSeed, job, attempt).count();
        }
      });
    }
    for (std::thread& th : threads) th.join();
    EXPECT_EQ(table, reference) << "thread count " << thread_count;
  }
}

}  // namespace
}  // namespace mmsyn
