// Wire-protocol tests: payload round trips, framing over a real socket
// pair, and the rejection of corrupt/skewed/truncated frames.
#include "server/wire.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>

namespace mmsyn {
namespace {

/// Connected AF_UNIX socket pair with RAII cleanup.
struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

JobOptions sample_options() {
  JobOptions o;
  o.seed = 42;
  o.population = 48;
  o.generations = 250;
  o.threads = 4;
  o.dvs_backend = "pv-dvs";
  o.scheduler_backend = "bottom-level";
  o.consider_probabilities = false;
  o.time_budget = 1.5;
  o.report_gantt = false;
  o.report_voltages = true;
  return o;
}

TEST(Wire, SubmitRoundTrip) {
  SubmitRequest request;
  request.options = sample_options();
  request.system_text = "system x\npe CPU kind=GPP\n";
  const SubmitRequest back = decode_submit(encode_submit(request));
  EXPECT_EQ(back.options, request.options);
  EXPECT_EQ(back.system_text, request.system_text);
}

TEST(Wire, ReplyRoundTrips) {
  const SubmitReply submit = decode_submit_ok(encode_submit_ok({77, true}));
  EXPECT_EQ(submit.job_id, 77u);
  EXPECT_TRUE(submit.cached);

  const RejectReply reject =
      decode_reject(encode_reject({RejectCode::kQueueFull, "full"}));
  EXPECT_EQ(reject.code, RejectCode::kQueueFull);
  EXPECT_EQ(reject.message, "full");

  JobResultReply result;
  result.job_id = 9;
  result.outcome = JobOutcome::kBudgetExhausted;
  result.feasible = true;
  result.avg_power_true = 0.1234567890123;
  result.report = std::string(10000, 'r');
  const JobResultReply back = decode_job_result(encode_job_result(result));
  EXPECT_EQ(back.job_id, result.job_id);
  EXPECT_EQ(back.outcome, result.outcome);
  EXPECT_EQ(back.feasible, result.feasible);
  EXPECT_DOUBLE_EQ(back.avg_power_true, result.avg_power_true);
  EXPECT_EQ(back.report, result.report);

  StatsReply stats;
  stats.accepted = 1;
  stats.completed = 2;
  stats.quarantined = 3;
  stats.cache_hits = 4;
  stats.cache_lookups = 5;
  stats.queue_full_rejections = 6;
  stats.retries = 7;
  stats.watchdog_cancels = 8;
  stats.recovered_pending = 9;
  stats.queued = 10;
  stats.running = 11;
  const StatsReply sback = decode_stats(encode_stats(stats));
  EXPECT_EQ(sback.accepted, 1u);
  EXPECT_EQ(sback.running, 11u);
  EXPECT_EQ(sback.recovered_pending, 9u);
}

TEST(Wire, TruncatedPayloadThrows) {
  const std::string payload = encode_wait({123});
  EXPECT_THROW((void)decode_wait(payload.substr(0, payload.size() - 1)),
               WireError);
  EXPECT_THROW((void)decode_wait(payload + "x"), WireError);
}

TEST(Wire, FramesOverSocketPair) {
  SocketPair s;
  send_frame(s.a, MessageType::kWait, encode_wait({5}));
  send_frame(s.a, MessageType::kStats, {});
  Frame frame;
  ASSERT_TRUE(recv_frame(s.b, frame));
  EXPECT_EQ(frame.type, MessageType::kWait);
  EXPECT_EQ(decode_wait(frame.payload).job_id, 5u);
  ASSERT_TRUE(recv_frame(s.b, frame));
  EXPECT_EQ(frame.type, MessageType::kStats);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(Wire, CleanEofReturnsFalse) {
  SocketPair s;
  ::close(s.a);
  s.a = -1;
  Frame frame;
  EXPECT_FALSE(recv_frame(s.b, frame));
}

TEST(Wire, MidFrameEofThrows) {
  SocketPair s;
  // Send a frame, deliver only its first half, then hang up.
  SocketPair capture;
  send_frame(capture.a, MessageType::kWait, encode_wait({5}));
  char buf[64];
  const ssize_t n = ::read(capture.b, buf, sizeof buf);
  ASSERT_GT(n, 8);
  ASSERT_EQ(::write(s.a, buf, static_cast<std::size_t>(n / 2)),
            static_cast<ssize_t>(n / 2));
  ::close(s.a);
  s.a = -1;
  Frame frame;
  EXPECT_THROW((void)recv_frame(s.b, frame), WireError);
}

TEST(Wire, CorruptPayloadFailsCrc) {
  SocketPair capture;
  send_frame(capture.a, MessageType::kWait, encode_wait({5}));
  char buf[64];
  const ssize_t n = ::read(capture.b, buf, sizeof buf);
  ASSERT_GT(n, 13);
  buf[13] ^= 0x01;  // flip one payload bit (header is 12 bytes)
  SocketPair s;
  ASSERT_EQ(::write(s.a, buf, static_cast<std::size_t>(n)),
            static_cast<ssize_t>(n));
  Frame frame;
  EXPECT_THROW((void)recv_frame(s.b, frame), WireError);
}

TEST(Wire, VersionSkewThrows) {
  SocketPair capture;
  send_frame(capture.a, MessageType::kWait, encode_wait({5}));
  char buf[64];
  const ssize_t n = ::read(capture.b, buf, sizeof buf);
  ASSERT_GT(n, 12);
  buf[4] = 99;  // version field (little-endian u16 at offset 4)
  SocketPair s;
  ASSERT_EQ(::write(s.a, buf, static_cast<std::size_t>(n)),
            static_cast<ssize_t>(n));
  Frame frame;
  EXPECT_THROW((void)recv_frame(s.b, frame), WireError);
}

TEST(Wire, BadMagicThrows) {
  SocketPair s;
  const char junk[16] = {'n', 'o', 'p', 'e'};
  ASSERT_EQ(::write(s.a, junk, sizeof junk), static_cast<ssize_t>(sizeof junk));
  Frame frame;
  EXPECT_THROW((void)recv_frame(s.b, frame), WireError);
}

TEST(Wire, FingerprintIdentityAndSensitivity) {
  const JobOptions base = sample_options();
  const std::string text = "system x\n";
  const std::uint64_t fp = job_fingerprint(text, base);
  EXPECT_EQ(job_fingerprint(text, base), fp);  // deterministic

  JobOptions changed = base;
  changed.seed += 1;
  EXPECT_NE(job_fingerprint(text, changed), fp);
  changed = base;
  changed.consider_probabilities = !changed.consider_probabilities;
  EXPECT_NE(job_fingerprint(text, changed), fp);
  changed = base;
  changed.dvs_backend = "none";
  EXPECT_NE(job_fingerprint(text, changed), fp);
  EXPECT_NE(job_fingerprint(text + " ", base), fp);
}

TEST(Wire, FingerprintIgnoresThreadCount) {
  // Results are thread-count invariant, so the cache key must be too —
  // otherwise --threads 1 and --threads 16 submissions of identical work
  // would miss each other.
  JobOptions a = sample_options();
  JobOptions b = a;
  b.threads = 16;
  EXPECT_EQ(job_fingerprint("system x\n", a), job_fingerprint("system x\n", b));
}

}  // namespace
}  // namespace mmsyn
