#include "power/power_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/allocation_builder.hpp"
#include "core/genome.hpp"
#include "energy/artifact_hash.hpp"
#include "energy/evaluator.hpp"
#include "power/backends.hpp"
#include "power/dpm_idle_model.hpp"
#include "power/thermal_model.hpp"
#include "tgff/suites.hpp"

namespace mmsyn {
namespace {

// ---------------------------------------------------------------------------
// Registry.

TEST(PowerBackends, PaperIsTheFirstRegisteredBackend) {
  ASSERT_FALSE(power_backends().empty());
  EXPECT_STREQ(power_backends().front().name, "paper");
  EXPECT_TRUE(power_backends().front().model->is_reference_model());
}

TEST(PowerBackends, EveryRegisteredNameResolvesToItsInstance) {
  for (const PowerBackendInfo& info : power_backends()) {
    const PowerModel* model = resolve_power_backend(info.name);
    EXPECT_EQ(model, info.model) << info.name;
    EXPECT_STREQ(model->name(), info.name);
    EXPECT_STREQ(power_backend_name(model), info.name);
  }
}

TEST(PowerBackends, NullModelMeansPaper) {
  EXPECT_STREQ(power_backend_name(nullptr), "paper");
}

TEST(PowerBackends, UnknownNameThrowsWithActionableMessage) {
  try {
    (void)resolve_power_backend("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find("paper"), std::string::npos);
    EXPECT_NE(what.find("--power"), std::string::npos);
  }
}

TEST(PowerBackends, OnlyPaperIsAReferenceModel) {
  for (const PowerBackendInfo& info : power_backends())
    EXPECT_EQ(info.model->is_reference_model(),
              std::string(info.name) == "paper")
        << info.name;
}

TEST(PowerBackends, NonReferenceFingerprintsAreDistinctAndNonZero) {
  const PowerModel* thermal = resolve_power_backend("thermal");
  const PowerModel* dpm = resolve_power_backend("dpm-idle");
  EXPECT_NE(thermal->fingerprint(), 0u);
  EXPECT_NE(dpm->fingerprint(), 0u);
  EXPECT_NE(thermal->fingerprint(), dpm->fingerprint());
}

TEST(PowerBackends, FingerprintCoversTheKnobs) {
  ThermalOptions hot;
  hot.thermal_resistance = 120.0;
  EXPECT_NE(ThermalPowerModel{}.fingerprint(),
            ThermalPowerModel{hot}.fingerprint());
  DpmIdleOptions lazy;
  lazy.break_even_seconds = 0.5;
  EXPECT_NE(DpmIdlePowerModel{}.fingerprint(),
            DpmIdlePowerModel{lazy}.fingerprint());
}

// ---------------------------------------------------------------------------
// Backend physics on a hand-built context.

/// One-PE architecture with the given static power.
Architecture one_pe_arch(double static_power) {
  Architecture arch;
  Pe pe;
  pe.name = "P";
  pe.static_power = static_power;
  arch.add_pe(pe);
  return arch;
}

TEST(PaperModel, MatchesBaselineStaticPowerExactly) {
  const Architecture arch = one_pe_arch(0.125);
  const std::vector<bool> pe_active{true};
  const std::vector<bool> cl_active;
  const std::vector<double> pe_busy;
  const ModePowerContext ctx{arch, 1.0, 0.05, pe_active, cl_active, pe_busy};
  const ModePowerResult r = PaperPowerModel{}.mode_power(ctx);
  EXPECT_DOUBLE_EQ(r.static_power,
                   baseline_static_power(arch, pe_active, cl_active));
  // Reference breakdown stays all-zero (report byte-identity contract).
  EXPECT_EQ(r.baseline_static_power, 0.0);
  EXPECT_EQ(r.idle_energy_saved, 0.0);
  EXPECT_EQ(r.wake_energy, 0.0);
  EXPECT_EQ(r.temperature, 0.0);
}

TEST(ThermalModel, ConvergesToTheClosedFormFixedPoint) {
  // With T_amb == T_ref the fixed point is linear:
  //   ΔT = R_th (p_dyn + p_base) / (1 − R_th p_base k)
  //   p_stat = p_base (1 + k ΔT)
  const double p_base = 0.1, p_dyn = 0.0;
  const Architecture arch = one_pe_arch(p_base);
  const std::vector<bool> pe_active{true};
  const std::vector<bool> cl_active;
  const std::vector<double> pe_busy;
  const ModePowerContext ctx{arch, 1.0, p_dyn, pe_active, cl_active, pe_busy};

  const ThermalOptions o;  // defaults: 25 C, 75 K/W, k = 0.03/K
  const ModePowerResult r = ThermalPowerModel{}.mode_power(ctx);
  const double dt = o.thermal_resistance * (p_dyn + p_base) /
                    (1.0 - o.thermal_resistance * p_base *
                               o.leakage_temp_coefficient);
  EXPECT_NEAR(r.temperature, o.ambient_celsius + dt, 1e-6);
  EXPECT_NEAR(r.static_power,
              p_base * (1.0 + o.leakage_temp_coefficient * dt), 1e-9);
  EXPECT_DOUBLE_EQ(r.baseline_static_power, p_base);
  // Leakage factor is >= 1 when ambient == reference.
  EXPECT_GE(r.static_power, r.baseline_static_power);
  EXPECT_GE(r.temperature, o.ambient_celsius);
}

TEST(ThermalModel, DynamicPowerHeatsTheLeakage) {
  const Architecture arch = one_pe_arch(0.1);
  const std::vector<bool> pe_active{true};
  const std::vector<bool> cl_active;
  const std::vector<double> pe_busy;
  const ModePowerContext cold{arch, 1.0, 0.0, pe_active, cl_active, pe_busy};
  const ModePowerContext hot{arch, 1.0, 0.5, pe_active, cl_active, pe_busy};
  const ThermalPowerModel model;
  EXPECT_GT(model.mode_power(hot).temperature,
            model.mode_power(cold).temperature);
  EXPECT_GT(model.mode_power(hot).static_power,
            model.mode_power(cold).static_power);
}

TEST(ThermalModel, IterationCapIsDeterministic) {
  // Non-contractive input (R_th p_base k > 1): the loop must stop at the
  // cap and produce the same value on every call.
  ThermalOptions o;
  o.max_iterations = 7;
  const Architecture arch = one_pe_arch(1.0);  // 75 * 1.0 * 0.03 = 2.25 > 1
  const std::vector<bool> pe_active{true};
  const std::vector<bool> cl_active;
  const std::vector<double> pe_busy;
  const ModePowerContext ctx{arch, 1.0, 0.0, pe_active, cl_active, pe_busy};
  const ThermalPowerModel model(o);
  const ModePowerResult a = model.mode_power(ctx);
  const ModePowerResult b = model.mode_power(ctx);
  EXPECT_DOUBLE_EQ(a.temperature, b.temperature);
  EXPECT_DOUBLE_EQ(a.static_power, b.static_power);
  EXPECT_TRUE(std::isfinite(a.temperature));
}

/// Two-PE architecture for the DPM cases: PE0 mostly idle, PE1 busy.
Architecture two_pe_arch(double s0, double s1) {
  Architecture arch;
  Pe a;
  a.name = "P0";
  a.static_power = s0;
  Pe b;
  b.name = "P1";
  b.static_power = s1;
  arch.add_pe(a);
  arch.add_pe(b);
  return arch;
}

TEST(DpmIdleModel, GoldenSleepArithmetic) {
  const DpmIdleOptions o;  // frac 0.05, break-even 1e-4 s, wake 2e-4 J/W
  const Architecture arch = two_pe_arch(0.3, 0.4);
  const std::vector<bool> pe_active{true, true};
  const std::vector<bool> cl_active;
  const std::vector<double> pe_busy{0.2, 1.0};  // PE0 idle 0.8 s, PE1 idle 0
  const ModePowerContext ctx{arch, 1.0, 0.0, pe_active, cl_active, pe_busy};
  const ModePowerResult r = DpmIdlePowerModel{}.mode_power(ctx);

  const double gross0 = 0.8 * 0.3 * (1.0 - o.sleep_power_fraction);
  const double wake0 = 0.3 * o.wake_energy_per_watt;
  EXPECT_DOUBLE_EQ(r.baseline_static_power, 0.7);
  EXPECT_DOUBLE_EQ(r.idle_energy_saved, gross0);  // PE1 never sleeps
  EXPECT_DOUBLE_EQ(r.wake_energy, wake0);
  EXPECT_DOUBLE_EQ(r.static_power, 0.7 - (gross0 - wake0) / 1.0);
  // Net savings are positive by the take-iff rule.
  EXPECT_LT(r.static_power, r.baseline_static_power);
}

TEST(DpmIdleModel, IdleBelowBreakEvenIsNotWorthSleeping) {
  DpmIdleOptions o;
  o.break_even_seconds = 0.5;
  const Architecture arch = two_pe_arch(0.3, 0.4);
  const std::vector<bool> pe_active{true, true};
  const std::vector<bool> cl_active;
  const std::vector<double> pe_busy{0.6, 0.7};  // idle 0.4 / 0.3 < 0.5
  const ModePowerContext ctx{arch, 1.0, 0.0, pe_active, cl_active, pe_busy};
  const ModePowerResult r = DpmIdlePowerModel{o}.mode_power(ctx);
  EXPECT_DOUBLE_EQ(r.static_power, r.baseline_static_power);
  EXPECT_EQ(r.idle_energy_saved, 0.0);
  EXPECT_EQ(r.wake_energy, 0.0);
}

TEST(DpmIdleModel, ShutDownPesAreSkipped) {
  const Architecture arch = two_pe_arch(0.3, 0.4);
  const std::vector<bool> pe_active{false, true};  // PE0 already powered off
  const std::vector<bool> cl_active;
  const std::vector<double> pe_busy{0.0, 1.0};
  const ModePowerContext ctx{arch, 1.0, 0.0, pe_active, cl_active, pe_busy};
  const ModePowerResult r = DpmIdlePowerModel{}.mode_power(ctx);
  // PE0 contributes neither baseline static power nor sleep savings.
  EXPECT_DOUBLE_EQ(r.baseline_static_power, 0.4);
  EXPECT_EQ(r.idle_energy_saved, 0.0);
  EXPECT_DOUBLE_EQ(r.static_power, 0.4);
}

TEST(DpmIdleModel, NonPositivePeriodFallsBackToBaseline) {
  const Architecture arch = two_pe_arch(0.3, 0.4);
  const std::vector<bool> pe_active{true, true};
  const std::vector<bool> cl_active;
  const std::vector<double> pe_busy;  // legitimately absent: early return
  const ModePowerContext ctx{arch, 0.0, 0.0, pe_active, cl_active, pe_busy};
  const ModePowerResult r = DpmIdlePowerModel{}.mode_power(ctx);
  EXPECT_DOUBLE_EQ(r.static_power, 0.7);
  EXPECT_EQ(r.idle_energy_saved, 0.0);
}

TEST(DpmIdleModel, DvsIdlePenaltyChargesOnlySleepingPes) {
  const DpmIdleOptions o;
  const Architecture arch = two_pe_arch(0.3, 0.4);
  const std::vector<double> nominal_busy{0.2, 1.0};
  const std::vector<double> penalty =
      DpmIdlePowerModel{}.dvs_idle_penalty(arch, 1.0, nominal_busy);
  ASSERT_EQ(penalty.size(), 2u);
  // PE0 would sleep: marginal saving rate p_stat (1 − sleep fraction).
  EXPECT_DOUBLE_EQ(penalty[0], 0.3 * (1.0 - o.sleep_power_fraction));
  // PE1 has no idle, takes no sleep, charges nothing.
  EXPECT_DOUBLE_EQ(penalty[1], 0.0);
}

TEST(DpmIdleModel, PaperBackendHasNoIdlePenalty) {
  const Architecture arch = two_pe_arch(0.3, 0.4);
  EXPECT_TRUE(PaperPowerModel{}
                  .dvs_idle_penalty(arch, 1.0, {0.2, 1.0})
                  .empty());
}

// ---------------------------------------------------------------------------
// Evaluator integration: fingerprints and full-evaluation identities.

Evaluation evaluate_with(const System& system, const PowerModel* power,
                         std::uint64_t seed) {
  const GenomeCodec codec(system);
  Rng rng(seed);
  const MultiModeMapping mapping = codec.decode(codec.random_genome(rng));
  EvaluationOptions options;
  options.power = power;
  const Evaluator evaluator(system, options);
  return evaluator.evaluate(mapping, build_core_allocation(system, mapping));
}

TEST(PowerEvaluator, NullAndPaperShareTheReferenceFingerprint) {
  const System system = make_mul(9);
  EvaluationOptions null_opts;
  EvaluationOptions paper_opts;
  paper_opts.power = resolve_power_backend("paper");
  const Evaluator null_eval(system, null_opts);
  const Evaluator paper_eval(system, paper_opts);
  // The reference model contributes nothing: pre-registry cache keys,
  // checkpoints and GA state fingerprints carry over unchanged.
  EXPECT_EQ(null_eval.options_fingerprint(), paper_eval.options_fingerprint());
  EXPECT_EQ(null_eval.schedule_fingerprint(),
            paper_eval.schedule_fingerprint());
}

TEST(PowerEvaluator, NonReferenceBackendsChangeOnlyTheEvalFingerprint) {
  const System system = make_mul(9);
  EvaluationOptions paper_opts;
  EvaluationOptions thermal_opts;
  thermal_opts.power = resolve_power_backend("thermal");
  EvaluationOptions dpm_opts;
  dpm_opts.power = resolve_power_backend("dpm-idle");
  const Evaluator paper(system, paper_opts);
  const Evaluator thermal(system, thermal_opts);
  const Evaluator dpm(system, dpm_opts);

  // Whole-mode cache keys must separate per backend...
  EXPECT_NE(thermal.options_fingerprint(), paper.options_fingerprint());
  EXPECT_NE(dpm.options_fingerprint(), paper.options_fingerprint());
  EXPECT_NE(thermal.options_fingerprint(), dpm.options_fingerprint());
  // ...while schedule artifacts stay shareable (power is stage-3..5 only).
  EXPECT_EQ(thermal.schedule_fingerprint(), paper.schedule_fingerprint());
  EXPECT_EQ(dpm.schedule_fingerprint(), paper.schedule_fingerprint());
}

TEST(PowerEvaluator, PaperBackendIsBitIdenticalToNull) {
  const System system = make_mul(9);
  const Evaluation a = evaluate_with(system, nullptr, 7);
  const Evaluation b =
      evaluate_with(system, resolve_power_backend("paper"), 7);
  ASSERT_EQ(a.modes.size(), b.modes.size());
  for (std::size_t m = 0; m < a.modes.size(); ++m)
    EXPECT_TRUE(equal_mode_evaluations(a.modes[m], b.modes[m])) << m;
  EXPECT_EQ(a.avg_power_true, b.avg_power_true);
  EXPECT_EQ(a.avg_power_weighted, b.avg_power_weighted);
}

TEST(PowerEvaluator, ThermalNeverUndercutsAndDpmNeverExceedsPaper) {
  const System system = make_mul(9);
  const Evaluation paper = evaluate_with(system, nullptr, 11);
  const Evaluation thermal =
      evaluate_with(system, resolve_power_backend("thermal"), 11);
  const Evaluation dpm =
      evaluate_with(system, resolve_power_backend("dpm-idle"), 11);
  ASSERT_EQ(thermal.modes.size(), paper.modes.size());
  ASSERT_EQ(dpm.modes.size(), paper.modes.size());
  for (std::size_t m = 0; m < paper.modes.size(); ++m) {
    // Both backends report the paper value as their baseline, bitwise.
    EXPECT_EQ(thermal.modes[m].baseline_static_power,
              paper.modes[m].static_power)
        << m;
    EXPECT_EQ(dpm.modes[m].baseline_static_power, paper.modes[m].static_power)
        << m;
    EXPECT_GE(thermal.modes[m].static_power, paper.modes[m].static_power) << m;
    EXPECT_LE(dpm.modes[m].static_power, paper.modes[m].static_power) << m;
  }
  EXPECT_GE(thermal.avg_power_true, paper.avg_power_true);
  EXPECT_LE(dpm.avg_power_true, paper.avg_power_true);
}

}  // namespace
}  // namespace mmsyn
