#include "tgff/suites.hpp"

#include <gtest/gtest.h>

namespace mmsyn {
namespace {

TEST(Suites, TwelveInstances) { EXPECT_EQ(mul_count(), 12); }

TEST(Suites, OutOfRangeRejected) {
  EXPECT_THROW((void)make_mul(0), std::out_of_range);
  EXPECT_THROW((void)make_mul(13), std::out_of_range);
  EXPECT_THROW((void)mul_mode_count(0), std::out_of_range);
}

TEST(Suites, ModeCountsMatchPaperTable) {
  // Table 1: mul1(4) mul2(4) mul3(5) mul4(5) mul5(3) mul6(4) mul7(4)
  //          mul8(4) mul9(4) mul10(5) mul11(3) mul12(4)
  const int expected[12] = {4, 4, 5, 5, 3, 4, 4, 4, 4, 5, 3, 4};
  for (int i = 1; i <= 12; ++i) {
    EXPECT_EQ(mul_mode_count(i), expected[i - 1]) << "mul" << i;
    const System s = make_mul(i);
    EXPECT_EQ(static_cast<int>(s.omsm.mode_count()), expected[i - 1]);
  }
}

/// Parameterised validation sweep over the whole suite.
class SuiteInstanceTest : public ::testing::TestWithParam<int> {};

TEST_P(SuiteInstanceTest, IsValid) {
  const System s = make_mul(GetParam());
  const auto problems = s.validate();
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST_P(SuiteInstanceTest, MatchesPublishedStructuralRanges) {
  const System s = make_mul(GetParam());
  EXPECT_GE(s.omsm.mode_count(), 3u);
  EXPECT_LE(s.omsm.mode_count(), 5u);
  for (const Mode& m : s.omsm.modes()) {
    EXPECT_GE(m.graph.task_count(), 8u);
    EXPECT_LE(m.graph.task_count(), 32u);
  }
  EXPECT_GE(s.arch.pe_count(), 2u);
  EXPECT_LE(s.arch.pe_count(), 4u);
  EXPECT_GE(s.arch.cl_count(), 1u);
  EXPECT_LE(s.arch.cl_count(), 3u);
}

TEST_P(SuiteInstanceTest, HasHardwareAndSoftware) {
  const System s = make_mul(GetParam());
  bool sw = false, hw = false;
  for (PeId p : s.arch.pe_ids()) {
    if (is_software(s.arch.pe(p).kind)) sw = true;
    if (is_hardware(s.arch.pe(p).kind)) hw = true;
  }
  EXPECT_TRUE(sw);
  EXPECT_TRUE(hw);
}

TEST_P(SuiteInstanceTest, Reproducible) {
  const System a = make_mul(GetParam());
  const System b = make_mul(GetParam());
  EXPECT_EQ(a.total_task_count(), b.total_task_count());
  EXPECT_EQ(a.total_edge_count(), b.total_edge_count());
  EXPECT_DOUBLE_EQ(a.omsm.mode(ModeId{0}).period,
                   b.omsm.mode(ModeId{0}).period);
}

INSTANTIATE_TEST_SUITE_P(AllMuls, SuiteInstanceTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace mmsyn
