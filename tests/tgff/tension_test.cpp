// Structural-tension tests: the generated suite must exhibit the
// ingredients that make mode-execution probabilities matter (DESIGN.md
// section 6). These guard the calibration against regressions in the
// generator.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "tgff/generator.hpp"
#include "tgff/suites.hpp"

namespace mmsyn {
namespace {

class TensionTest : public ::testing::TestWithParam<int> {};

TEST_P(TensionTest, ModesHavePartiallyPrivateTypeSets) {
  const System s = make_mul(GetParam());
  std::vector<std::set<int>> used(s.omsm.mode_count());
  for (std::size_t m = 0; m < s.omsm.mode_count(); ++m)
    for (const Task& t : s.omsm.mode(ModeId{static_cast<int>(m)}).graph.tasks())
      used[m].insert(t.type.value());
  // Some sharing across modes (resource sharing, Fig. 3) ...
  std::set<int> all;
  std::size_t total = 0;
  for (const auto& set : used) {
    all.insert(set.begin(), set.end());
    total += set.size();
  }
  EXPECT_LT(all.size(), total);  // overlap exists
  // ... but each mode also owns types no other mode uses (the contested
  // exclusive types the probability weighting arbitrates).
  int modes_with_exclusive = 0;
  for (std::size_t m = 0; m < used.size(); ++m) {
    std::set<int> exclusive = used[m];
    for (std::size_t k = 0; k < used.size(); ++k) {
      if (k == m) continue;
      for (int t : used[k]) exclusive.erase(t);
    }
    if (!exclusive.empty()) ++modes_with_exclusive;
  }
  EXPECT_GE(modes_with_exclusive,
            static_cast<int>(s.omsm.mode_count()) - 1);
}

TEST_P(TensionTest, CoreAreaCorrelatesWithSoftwareEnergy) {
  // Pearson correlation between per-type software energy and HW core area
  // must be strongly positive (as in the paper's own type table).
  const System s = make_mul(GetParam());
  std::vector<double> xs, ys;
  for (std::size_t t = 0; t < s.tech.type_count(); ++t) {
    const TaskTypeId type{static_cast<int>(t)};
    const auto sw = s.tech.implementation(type, PeId{0});
    if (!sw) continue;
    for (PeId p : s.arch.pe_ids()) {
      if (!is_hardware(s.arch.pe(p).kind)) continue;
      const auto hw = s.tech.implementation(type, p);
      if (!hw) continue;
      xs.push_back(sw->energy());
      ys.push_back(hw->area);
    }
  }
  ASSERT_GT(xs.size(), 5u);
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= xs.size();
  my /= ys.size();
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  const double r = sxy / std::sqrt(sxx * syy);
  EXPECT_GT(r, 0.8);
}

TEST_P(TensionTest, DominantModeIsRelaxedOthersAreBursty) {
  // The dominant mode's period factor (period / serial software time is a
  // proxy) must exceed the non-dominant modes' on average.
  const System s = make_mul(GetParam());
  auto slack_proxy = [&](std::size_t m) {
    const Mode& mode = s.omsm.mode(ModeId{static_cast<int>(m)});
    double serial = 0.0;
    for (const Task& t : mode.graph.tasks())
      serial += s.tech.require(t.type, PeId{0}).exec_time;
    return mode.period / serial;
  };
  const double dominant = slack_proxy(0);
  double rest = 0.0;
  for (std::size_t m = 1; m < s.omsm.mode_count(); ++m)
    rest += slack_proxy(m);
  rest /= static_cast<double>(s.omsm.mode_count() - 1);
  EXPECT_GT(dominant, rest);
}

INSTANTIATE_TEST_SUITE_P(Suite, TensionTest,
                         ::testing::Values(1, 4, 6, 9, 12));

}  // namespace
}  // namespace mmsyn
