#include "tgff/motivational.hpp"

#include <gtest/gtest.h>

#include "core/allocation_builder.hpp"
#include "core/cosynth.hpp"

namespace mmsyn {
namespace {

double true_power_mw(const System& s, const MultiModeMapping& m) {
  const Evaluator evaluator(s, EvaluationOptions{});
  return evaluator.evaluate(m, build_core_allocation(s, m)).avg_power_true *
         1e3;
}

TEST(Example1, SystemIsValid) {
  const System s = make_motivational_example1();
  EXPECT_TRUE(s.validate().empty());
  EXPECT_EQ(s.omsm.mode_count(), 2u);
  EXPECT_DOUBLE_EQ(s.omsm.mode(ModeId{0}).probability, 0.1);
  EXPECT_DOUBLE_EQ(s.omsm.mode(ModeId{1}).probability, 0.9);
}

TEST(Example1, TypeTableMatchesPaper) {
  const System s = make_motivational_example1();
  // Type A: software 20 ms / 10 mWs; hardware 2 ms / 0.010 mWs / 240 cells.
  const Implementation sw = s.tech.require(TaskTypeId{0}, PeId{0});
  EXPECT_NEAR(sw.exec_time, 20e-3, 1e-12);
  EXPECT_NEAR(sw.energy(), 10e-3, 1e-12);
  const Implementation hw = s.tech.require(TaskTypeId{0}, PeId{1});
  EXPECT_NEAR(hw.exec_time, 2e-3, 1e-12);
  EXPECT_NEAR(hw.energy(), 0.010e-3, 1e-15);
  EXPECT_DOUBLE_EQ(hw.area, 240.0);
  EXPECT_DOUBLE_EQ(s.arch.pe(PeId{1}).area_capacity, 600.0);
}

TEST(Example1, PaperEnergiesExact) {
  const System s = make_motivational_example1();
  EXPECT_NEAR(true_power_mw(s, example1_mapping_without_probabilities()),
              26.7158, 1e-4);
  EXPECT_NEAR(true_power_mw(s, example1_mapping_with_probabilities()),
              15.7423, 1e-4);
}

TEST(Example1, ReductionIs41Percent) {
  const System s = make_motivational_example1();
  const double b = true_power_mw(s, example1_mapping_without_probabilities());
  const double c = true_power_mw(s, example1_mapping_with_probabilities());
  EXPECT_NEAR(100.0 * (b - c) / b, 41.0, 0.5);
}

TEST(Example1, ExhaustiveOptimaMatchPaperMappings) {
  const System s = make_motivational_example1();
  SynthesisOptions options;
  options.consider_probabilities = false;
  const SynthesisResult base = exhaustive_search(s, options);
  EXPECT_NEAR(base.evaluation.avg_power_true * 1e3, 26.7158, 1e-4);
  options.consider_probabilities = true;
  const SynthesisResult prop = exhaustive_search(s, options);
  EXPECT_NEAR(prop.evaluation.avg_power_true * 1e3, 15.7423, 1e-4);
}

TEST(Example1, ThreeCoresNeverFit) {
  // Property from the paper: at most 2 cores fit in 600 cells.
  const System s = make_motivational_example1();
  double smallest_three = 1e9;
  const double areas[6] = {240, 300, 275, 245, 210, 280};
  for (int i = 0; i < 6; ++i)
    for (int j = i + 1; j < 6; ++j)
      for (int k = j + 1; k < 6; ++k)
        smallest_three = std::min(smallest_three,
                                  areas[i] + areas[j] + areas[k]);
  EXPECT_GT(smallest_three, s.arch.pe(PeId{1}).area_capacity);
}

TEST(Example2, SystemIsValid) {
  const System s = make_motivational_example2();
  EXPECT_TRUE(s.validate().empty());
}

TEST(Example2, SharedMappingKeepsEverythingPowered) {
  const System s = make_motivational_example2();
  const Evaluator evaluator(s, EvaluationOptions{});
  const MultiModeMapping m = example2_mapping_shared();
  const Evaluation e =
      evaluator.evaluate(m, build_core_allocation(s, m));
  // Both modes keep GPP + ASIC + bus active.
  for (const ModeEvaluation& me : e.modes) {
    EXPECT_TRUE(me.pe_active[0]);
    EXPECT_TRUE(me.pe_active[1]);
    EXPECT_TRUE(me.cl_active[0]);
  }
}

TEST(Example2, MultipleImplementationsEnableShutdown) {
  const System s = make_motivational_example2();
  const Evaluator evaluator(s, EvaluationOptions{});
  const MultiModeMapping m = example2_mapping_multiple_impl();
  const Evaluation e =
      evaluator.evaluate(m, build_core_allocation(s, m));
  EXPECT_FALSE(e.modes[1].pe_active[1]);  // ASIC off in O2
  EXPECT_FALSE(e.modes[1].cl_active[0]);  // bus off in O2
  EXPECT_LT(true_power_mw(s, m),
            true_power_mw(s, example2_mapping_shared()));
}

TEST(Example2, DuplicatedImplementationIsTheOptimum) {
  const System s = make_motivational_example2();
  SynthesisOptions options;
  const SynthesisResult best = exhaustive_search(s, options);
  EXPECT_NEAR(best.evaluation.avg_power_true * 1e3,
              true_power_mw(s, example2_mapping_multiple_impl()), 1e-9);
}

}  // namespace
}  // namespace mmsyn
