#include "tgff/generator.hpp"

#include <gtest/gtest.h>

#include "sched/list_scheduler.hpp"

namespace mmsyn {
namespace {

GeneratorConfig small_config(std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.seed = seed;
  return cfg;
}

TEST(Generator, ProducesValidSystems) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const System s = generate_system(small_config(seed), "g");
    const auto problems = s.validate();
    EXPECT_TRUE(problems.empty())
        << "seed " << seed << ": " << problems.front();
  }
}

TEST(Generator, DeterministicInSeed) {
  const System a = generate_system(small_config(77), "a");
  const System b = generate_system(small_config(77), "b");
  ASSERT_EQ(a.omsm.mode_count(), b.omsm.mode_count());
  ASSERT_EQ(a.arch.pe_count(), b.arch.pe_count());
  EXPECT_EQ(a.total_task_count(), b.total_task_count());
  EXPECT_EQ(a.total_edge_count(), b.total_edge_count());
  for (std::size_t m = 0; m < a.omsm.mode_count(); ++m) {
    const ModeId id{static_cast<int>(m)};
    EXPECT_DOUBLE_EQ(a.omsm.mode(id).probability, b.omsm.mode(id).probability);
    EXPECT_DOUBLE_EQ(a.omsm.mode(id).period, b.omsm.mode(id).period);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const System a = generate_system(small_config(1), "a");
  const System b = generate_system(small_config(2), "b");
  const bool structurally_equal =
      a.total_task_count() == b.total_task_count() &&
      a.arch.pe_count() == b.arch.pe_count() &&
      a.omsm.mode_count() == b.omsm.mode_count();
  // With three independent dimensions a full collision is very unlikely.
  EXPECT_FALSE(structurally_equal &&
               a.omsm.mode(ModeId{0}).period == b.omsm.mode(ModeId{0}).period);
}

TEST(Generator, RespectsStructuralRanges) {
  GeneratorConfig cfg = small_config(5);
  cfg.mode_count_min = 4;
  cfg.mode_count_max = 4;
  cfg.tasks_per_mode_min = 10;
  cfg.tasks_per_mode_max = 15;
  cfg.pe_count_min = 3;
  cfg.pe_count_max = 3;
  cfg.cl_count_min = 2;
  cfg.cl_count_max = 2;
  const System s = generate_system(cfg, "ranges");
  EXPECT_EQ(s.omsm.mode_count(), 4u);
  EXPECT_EQ(s.arch.pe_count(), 3u);
  EXPECT_EQ(s.arch.cl_count(), 2u);
  for (const Mode& m : s.omsm.modes()) {
    EXPECT_GE(m.graph.task_count(), 10u);
    EXPECT_LE(m.graph.task_count(), 15u);
  }
}

TEST(Generator, ProbabilitiesSumToOneWithDominantMode) {
  const System s = generate_system(small_config(9), "p");
  double total = 0.0;
  for (const Mode& m : s.omsm.modes()) total += m.probability;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Mode 0 is the dominant one.
  EXPECT_GE(s.omsm.mode(ModeId{0}).probability, 0.55);
  for (std::size_t m = 1; m < s.omsm.mode_count(); ++m)
    EXPECT_LT(s.omsm.mode(ModeId{static_cast<int>(m)}).probability,
              s.omsm.mode(ModeId{0}).probability);
}

TEST(Generator, AllSoftwareMappingIsTimingFeasible) {
  // The period calibration guarantees the everything-on-GPP probe fits.
  const System s = generate_system(small_config(13), "feas");
  const std::vector<CoreSet> no_cores(s.arch.pe_count());
  for (std::size_t m = 0; m < s.omsm.mode_count(); ++m) {
    const Mode& mode = s.omsm.mode(ModeId{static_cast<int>(m)});
    ModeMapping probe;
    probe.task_to_pe.assign(mode.graph.task_count(), PeId{0});
    const ModeSchedule sched =
        list_schedule({mode, probe, s.arch, s.tech, no_cores});
    EXPECT_LE(sched.makespan, mode.period * (1 + 1e-9));
  }
}

TEST(Generator, HardwareIsFasterThanSoftware) {
  const System s = generate_system(small_config(17), "hw");
  for (std::size_t t = 0; t < s.tech.type_count(); ++t) {
    const TaskTypeId type{static_cast<int>(t)};
    const auto sw = s.tech.implementation(type, PeId{0});
    ASSERT_TRUE(sw.has_value());
    for (PeId p : s.arch.pe_ids()) {
      if (!is_hardware(s.arch.pe(p).kind)) continue;
      const auto hw = s.tech.implementation(type, p);
      if (!hw) continue;
      EXPECT_LT(hw->exec_time, sw->exec_time);
      EXPECT_LT(hw->energy(), sw->energy());
      EXPECT_GT(hw->area, 0.0);
    }
  }
}

TEST(Generator, HardwareCapacityIsContested) {
  // The capacity must be positive but below the total supported area —
  // otherwise the area knapsack (and the probability effect) is trivial.
  const System s = generate_system(small_config(21), "area");
  for (PeId p : s.arch.pe_ids()) {
    const Pe& pe = s.arch.pe(p);
    if (!is_hardware(pe.kind)) continue;
    double supported = 0.0;
    for (std::size_t t = 0; t < s.tech.type_count(); ++t) {
      const auto impl =
          s.tech.implementation(TaskTypeId{static_cast<int>(t)}, p);
      if (impl) supported += impl->area;
    }
    EXPECT_GT(pe.area_capacity, 0.0);
    EXPECT_LT(pe.area_capacity, supported);
  }
}

TEST(Generator, TransitionsFormAtLeastARing) {
  const System s = generate_system(small_config(25), "ring");
  EXPECT_GE(s.omsm.transition_count(), s.omsm.mode_count());
  for (const ModeTransition& t : s.omsm.transitions()) {
    EXPECT_TRUE(t.from.valid());
    EXPECT_TRUE(t.to.valid());
    EXPECT_GT(t.max_transition_time, 0.0);
  }
}

TEST(Generator, AtLeastOneDvsPe) {
  for (std::uint64_t seed = 30; seed < 40; ++seed) {
    const System s = generate_system(small_config(seed), "dvs");
    bool any = false;
    for (PeId p : s.arch.pe_ids())
      if (s.arch.pe(p).dvs_enabled) any = true;
    EXPECT_TRUE(any) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mmsyn
