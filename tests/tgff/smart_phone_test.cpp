#include "tgff/smart_phone.hpp"

#include <gtest/gtest.h>

#include "sched/list_scheduler.hpp"

namespace mmsyn {
namespace {

const System& phone() {
  static const System system = make_smart_phone();
  return system;
}

TEST(SmartPhone, IsValid) {
  const auto problems = phone().validate();
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(SmartPhone, EightModesWithPaperProbabilities) {
  const System& s = phone();
  ASSERT_EQ(s.omsm.mode_count(), 8u);
  auto psi = [&](PhoneMode m) {
    return s.omsm.mode(ModeId{static_cast<int>(m)}).probability;
  };
  EXPECT_DOUBLE_EQ(psi(PhoneMode::kNetworkSearch), 0.01);
  EXPECT_DOUBLE_EQ(psi(PhoneMode::kRadioLinkControl), 0.74);
  EXPECT_DOUBLE_EQ(psi(PhoneMode::kGsmCodecRlc), 0.09);
  EXPECT_DOUBLE_EQ(psi(PhoneMode::kMp3Rlc), 0.10);
  double total = 0.0;
  for (const Mode& m : s.omsm.modes()) total += m.probability;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SmartPhone, PublishedArchitecture) {
  const System& s = phone();
  ASSERT_EQ(s.arch.pe_count(), 3u);  // one DVS GPP + two ASICs
  EXPECT_EQ(s.arch.pe(PeId{0}).kind, PeKind::kGpp);
  EXPECT_TRUE(s.arch.pe(PeId{0}).dvs_enabled);
  EXPECT_EQ(s.arch.pe(PeId{1}).kind, PeKind::kAsic);
  EXPECT_EQ(s.arch.pe(PeId{2}).kind, PeKind::kAsic);
  EXPECT_FALSE(s.arch.pe(PeId{1}).dvs_enabled);
  EXPECT_EQ(s.arch.cl_count(), 1u);  // single bus
}

TEST(SmartPhone, TaskCountsInPublishedRange) {
  // Paper: per-mode 5–88 nodes and 0–137 edges.
  const System& s = phone();
  for (const Mode& m : s.omsm.modes()) {
    EXPECT_GE(m.graph.task_count(), 5u) << m.name;
    EXPECT_LE(m.graph.task_count(), 88u) << m.name;
    EXPECT_LE(m.graph.edge_count(), 137u) << m.name;
  }
  // The photo-decode modes are the big ones.
  EXPECT_GT(s.omsm.mode(ModeId{static_cast<int>(PhoneMode::kPhotoRlc)})
                .graph.task_count(),
            60u);
  // RLC alone is small.
  EXPECT_EQ(s.omsm.mode(ModeId{static_cast<int>(PhoneMode::kRadioLinkControl)})
                .graph.task_count(),
            8u);
}

TEST(SmartPhone, SharedTypesAcrossApplications) {
  // IDCT (Fig. 1c core C3) appears in both MP3 and photo-decode modes.
  const System& s = phone();
  auto uses_type = [&](PhoneMode pm, const std::string& name) {
    const Mode& m = s.omsm.mode(ModeId{static_cast<int>(pm)});
    for (const Task& t : m.graph.tasks())
      if (s.tech.type_name(t.type) == name) return true;
    return false;
  };
  EXPECT_TRUE(uses_type(PhoneMode::kMp3Rlc, "IDCT"));
  EXPECT_TRUE(uses_type(PhoneMode::kPhotoRlc, "IDCT"));
  EXPECT_TRUE(uses_type(PhoneMode::kMp3Rlc, "HD"));
  EXPECT_TRUE(uses_type(PhoneMode::kPhotoRlc, "HD"));
  EXPECT_TRUE(uses_type(PhoneMode::kGsmCodecRlc, "STP"));
  EXPECT_TRUE(uses_type(PhoneMode::kGsmCodecRlc, "LTP"));
}

TEST(SmartPhone, HardwareSpeedupWithinPublishedBand) {
  // Hardware 5–100x faster than software.
  const System& s = phone();
  for (std::size_t t = 0; t < s.tech.type_count(); ++t) {
    const TaskTypeId type{static_cast<int>(t)};
    const auto sw = s.tech.implementation(type, PeId{0});
    ASSERT_TRUE(sw.has_value());
    for (PeId p : {PeId{1}, PeId{2}}) {
      const auto hw = s.tech.implementation(type, p);
      if (!hw) continue;
      const double speedup = sw->exec_time / hw->exec_time;
      EXPECT_GE(speedup, 5.0 * 0.99);
      EXPECT_LE(speedup, 100.0 * 1.01);
    }
  }
}

TEST(SmartPhone, RelaxedModesAreSoftwareFeasible) {
  // All modes except the photo decoders fit on the GPP alone.
  const System& s = phone();
  const std::vector<CoreSet> no_cores(s.arch.pe_count());
  for (std::size_t m = 0; m < s.omsm.mode_count(); ++m) {
    if (m == static_cast<std::size_t>(PhoneMode::kPhotoRlc) ||
        m == static_cast<std::size_t>(PhoneMode::kPhotoNetworkSearch))
      continue;
    const Mode& mode = s.omsm.mode(ModeId{static_cast<int>(m)});
    ModeMapping probe;
    probe.task_to_pe.assign(mode.graph.task_count(), PeId{0});
    const ModeSchedule sched =
        list_schedule({mode, probe, s.arch, s.tech, no_cores});
    EXPECT_LE(sched.makespan, mode.period * (1 + 1e-9)) << mode.name;
  }
}

TEST(SmartPhone, PhotoModesRequireHardwareAcceleration) {
  // Period factor 0.8 < 1: the software-only probe misses the period, so
  // the synthesis is forced to use the ASICs — as on the real device.
  const System& s = phone();
  const std::vector<CoreSet> no_cores(s.arch.pe_count());
  const Mode& mode =
      s.omsm.mode(ModeId{static_cast<int>(PhoneMode::kPhotoRlc)});
  ModeMapping probe;
  probe.task_to_pe.assign(mode.graph.task_count(), PeId{0});
  const ModeSchedule sched =
      list_schedule({mode, probe, s.arch, s.tech, no_cores});
  EXPECT_GT(sched.makespan, mode.period);
}

TEST(SmartPhone, Reproducible) {
  const System a = make_smart_phone();
  const System b = make_smart_phone();
  EXPECT_EQ(a.total_task_count(), b.total_task_count());
  EXPECT_EQ(a.total_edge_count(), b.total_edge_count());
  EXPECT_DOUBLE_EQ(a.omsm.mode(ModeId{5}).period, b.omsm.mode(ModeId{5}).period);
}

TEST(SmartPhone, TransitionGraphMatchesFig1a) {
  const System& s = phone();
  auto has = [&](PhoneMode from, PhoneMode to) {
    for (const ModeTransition& t : s.omsm.transitions())
      if (t.from.index() == static_cast<std::size_t>(from) &&
          t.to.index() == static_cast<std::size_t>(to))
        return true;
    return false;
  };
  EXPECT_TRUE(has(PhoneMode::kNetworkSearch, PhoneMode::kRadioLinkControl));
  EXPECT_TRUE(has(PhoneMode::kRadioLinkControl, PhoneMode::kGsmCodecRlc));
  EXPECT_TRUE(has(PhoneMode::kMp3Rlc, PhoneMode::kMp3NetworkSearch));
  EXPECT_TRUE(has(PhoneMode::kTakeShowPhoto, PhoneMode::kPhotoRlc));
  EXPECT_FALSE(has(PhoneMode::kGsmCodecRlc, PhoneMode::kMp3Rlc));
}

}  // namespace
}  // namespace mmsyn
