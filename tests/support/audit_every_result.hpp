// Test hook: synthesize + mandatory invariant audit.
//
// Integration tests call audited_synthesize() instead of synthesize(), so
// every result they assert on is first replayed through the cross-layer
// auditor (src/audit). A scheduler, allocator, DVS, or evaluator
// regression then fails with the auditor's structured violation list
// instead of (or in addition to) a numeric assertion somewhere downstream.
#pragma once

#include <gtest/gtest.h>

#include "audit/auditor.hpp"

namespace mmsyn {

inline SynthesisResult audited_synthesize(const System& system,
                                          const SynthesisOptions& options,
                                          RunControl* control = nullptr) {
  SynthesisResult result = synthesize(system, options, control);
  const AuditReport audit =
      audit_result(system, result, audit_options_for(options));
  EXPECT_TRUE(audit.passed()) << audit.to_string();
  return result;
}

}  // namespace mmsyn
