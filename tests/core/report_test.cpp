#include "core/report.hpp"

#include <gtest/gtest.h>

#include "core/cosynth.hpp"
#include "tgff/motivational.hpp"
#include "tgff/suites.hpp"

namespace mmsyn {
namespace {

SynthesisResult synthesise_small(const System& system, bool dvs) {
  SynthesisOptions options;
  options.use_dvs = dvs;
  options.ga.population_size = 24;
  options.ga.max_generations = 40;
  options.ga.stagnation_limit = 15;
  options.seed = 2;
  return synthesize(system, options);
}

TEST(Report, MentionsEveryModeAndMapping) {
  const System system = make_motivational_example1();
  const SynthesisResult result = synthesise_small(system, false);
  const std::string report = implementation_report(system, result);
  EXPECT_NE(report.find("Implementation report"), std::string::npos);
  EXPECT_NE(report.find("mode 'O1'"), std::string::npos);
  EXPECT_NE(report.find("mode 'O2'"), std::string::npos);
  EXPECT_NE(report.find("tau1->"), std::string::npos);
  EXPECT_NE(report.find("average power"), std::string::npos);
  EXPECT_NE(report.find("feasible=yes"), std::string::npos);
}

TEST(Report, GanttToggle) {
  const System system = make_motivational_example1();
  const SynthesisResult result = synthesise_small(system, false);
  ReportOptions with;
  with.include_gantt = true;
  ReportOptions without;
  without.include_gantt = false;
  EXPECT_NE(implementation_report(system, result, with).find("Gantt"),
            std::string::npos);
  EXPECT_EQ(implementation_report(system, result, without).find("Gantt"),
            std::string::npos);
}

TEST(Report, VoltageSchedulesIncludedOnRequest) {
  const System system = make_mul(9);
  const SynthesisResult result = synthesise_small(system, true);
  ReportOptions options;
  options.include_voltage_schedules = true;
  options.include_gantt = false;
  const std::string report =
      implementation_report(system, result, options);
  EXPECT_NE(report.find("voltage schedule"), std::string::npos);
  EXPECT_NE(report.find(" V for "), std::string::npos);
}

TEST(Report, CoreAllocationListed) {
  const System system = make_motivational_example1();
  const SynthesisResult result = synthesise_small(system, false);
  const std::string report = implementation_report(system, result);
  // The optimum maps two types onto the ASIC; their cores must be listed.
  EXPECT_NE(report.find("cores on PE1"), std::string::npos);
}

}  // namespace
}  // namespace mmsyn
