// Island-model GA contract (DESIGN.md §14): one island degenerates to
// the plain single-population GA bit for bit, multi-island runs are a
// pure function of (seed, island count, migration schedule) for any
// thread count, checkpointed island runs resume bit-identically, and the
// per-island random streams can never collide with each other or with
// the legacy stream.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "common/rng.hpp"
#include "core/cosynth.hpp"
#include "core/island_ga.hpp"
#include "core/run_control.hpp"
#include "../support/audit_every_result.hpp"
#include "tgff/suites.hpp"

namespace mmsyn {
namespace {

GaOptions fast_ga() {
  GaOptions options;
  options.population_size = 24;
  options.max_generations = 30;
  options.stagnation_limit = 12;
  return options;
}

SynthesisOptions island_options(int islands, int interval = 5,
                                int migrants = 2) {
  SynthesisOptions options;
  options.ga = fast_ga();
  options.seed = 21;
  options.islands = islands;
  options.migration_interval = interval;
  options.migrants = migrants;
  return options;
}

void expect_results_identical(const SynthesisResult& a,
                              const SynthesisResult& b) {
  EXPECT_EQ(a.fitness, b.fitness);
  EXPECT_EQ(a.generations, b.generations);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.evaluation.avg_power_true, b.evaluation.avg_power_true);
  ASSERT_EQ(a.mapping.modes.size(), b.mapping.modes.size());
  for (std::size_t m = 0; m < a.mapping.modes.size(); ++m) {
    SCOPED_TRACE("mode " + std::to_string(m));
    EXPECT_EQ(a.mapping.modes[m].task_to_pe, b.mapping.modes[m].task_to_pe);
  }
}

std::string scratch_path(const char* name) {
  return std::string(::testing::TempDir()) + "mmsyn_" + name + ".ckpt";
}

void remove_generations(const std::string& path) {
  for (int gen = 0; gen < 8; ++gen)
    std::remove(checkpoint_generation_path(path, gen).c_str());
}

// --islands=1 takes the single-population route and must reproduce the
// plain GA byte for byte; driving the same configuration through the
// island coordinator must match too (the coordinator adds barriers but
// no RNG draws, so IslandGa(1) exercises the steppable-loop refactor
// against the monolithic run()).
TEST(IslandModel, OneIslandBitIdenticalToPlainGa) {
  const System system = make_mul(4);
  SynthesisOptions options;
  options.ga = fast_ga();
  options.seed = 21;
  const SynthesisResult plain = synthesize(system, options);

  options.islands = 1;
  const SynthesisResult routed = audited_synthesize(system, options);
  expect_results_identical(plain, routed);

  // Same evaluator instance both ways: the coordinator adds barriers but
  // no RNG draws, so the island-driven loop must replay the monolithic
  // run() exactly.
  const Evaluator evaluator(system, EvaluationOptions{});
  MappingGa plain_ga(system, evaluator, {}, {}, fast_ga(), 21);
  const SynthesisResult direct = plain_ga.run();
  IslandOptions topology;
  topology.islands = 1;
  IslandGa one(system, evaluator, {}, {}, fast_ga(), topology, 21);
  const SynthesisResult driven = one.run();
  EXPECT_EQ(direct.fitness, driven.fitness);
  EXPECT_EQ(direct.generations, driven.generations);
  EXPECT_EQ(direct.evaluations, driven.evaluations);
  EXPECT_EQ(direct.evaluation.avg_power_true, driven.evaluation.avg_power_true);
}

// The tentpole determinism rule: an island run is a pure function of
// (seed, islands, migration schedule) — never thread timing — so 1, 4
// and 16 threads give bit-identical results. The audit replays the
// champion (which carries migrated individuals) through the invariant
// checker.
TEST(IslandModel, MigrationDeterministicAcrossThreadCounts) {
  const System system = make_mul(4);
  SynthesisOptions options = island_options(3);

  options.ga.num_threads = 1;
  const SynthesisResult one = audited_synthesize(system, options);
  options.ga.num_threads = 4;
  const SynthesisResult four = audited_synthesize(system, options);
  options.ga.num_threads = 16;
  const SynthesisResult sixteen = audited_synthesize(system, options);

  expect_results_identical(one, four);
  expect_results_identical(one, sixteen);
}

// Same (seed, islands, schedule) across separate processes-worth of
// state: repeat runs reproduce bit for bit.
TEST(IslandModel, RepeatRunsAreReproducible) {
  const System system = make_mul(4);
  const SynthesisResult a =
      audited_synthesize(system, island_options(3, 5, 2));
  const SynthesisResult b =
      audited_synthesize(system, island_options(3, 5, 2));
  expect_results_identical(a, b);
}

// Resuming an intermediate barrier checkpoint (the rotated .1 generation,
// not the newest) replays the remaining barriers bit-identically to the
// uninterrupted run.
TEST(IslandModel, ResumeFromRotatedBarrierCheckpointIsIdentical) {
  const System system = make_mul(4);
  SynthesisOptions options = island_options(3);
  const std::string path = scratch_path("island_resume");
  remove_generations(path);

  RunControl record;
  record.checkpoint_path = path;
  record.checkpoint_keep_generations = 3;
  const SynthesisResult full = audited_synthesize(system, options, &record);

  RunControl resume;
  resume.resume_path = checkpoint_generation_path(path, 1);
  const SynthesisResult resumed = audited_synthesize(system, options, &resume);
  expect_results_identical(full, resumed);
  remove_generations(path);
}

// A single-population resume of an island container fails with the
// actionable --islands message instead of a generic parse error.
TEST(IslandModel, SinglePopulationResumeOfIslandCheckpointIsActionable) {
  const System system = make_mul(4);
  SynthesisOptions options = island_options(2);
  const std::string path = scratch_path("island_wrong_mode");
  remove_generations(path);

  RunControl record;
  record.checkpoint_path = path;
  (void)audited_synthesize(system, options, &record);

  options.islands = 1;
  RunControl resume;
  resume.resume_path = path;
  try {
    (void)synthesize(system, options, &resume);
    FAIL() << "resume should have rejected the island container";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("--islands=2"), std::string::npos)
        << e.what();
  }
  remove_generations(path);
}

// A cooperative stop before the first generation still returns a priced,
// feasible-or-flagged result (the champion island's fallback evaluation),
// marked partial.
TEST(IslandModel, ImmediateCancelReturnsPartialResult) {
  const System system = make_mul(4);
  SynthesisOptions options = island_options(2);
  RunControl control;
  control.request_cancel();
  const SynthesisResult result = synthesize(system, options, &control);
  EXPECT_TRUE(result.partial);
  EXPECT_FALSE(result.mapping.modes.empty());
}

// Topology validation speaks in flag terms.
TEST(IslandModel, ValidationErrorsAreActionable) {
  GaOptions ga = fast_ga();
  IslandOptions topology;
  topology.islands = 0;
  EXPECT_THROW(IslandGa::validate(ga, topology), std::invalid_argument);

  topology.islands = 2;
  ga.rng = RngKind::kXoshiro;
  try {
    IslandGa::validate(ga, topology);
    FAIL() << "xoshiro islands should be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--islands=1"), std::string::npos);
  }

  ga = fast_ga();
  topology.migration_interval = 0;
  EXPECT_THROW(IslandGa::validate(ga, topology), std::invalid_argument);
  topology.migration_interval = 5;
  topology.migrants = ga.population_size;  // would overwrite the elite
  EXPECT_THROW(IslandGa::validate(ga, topology), std::invalid_argument);
  topology.migrants = 2;
  IslandGa::validate(ga, topology);  // consistent: no throw
}

// ---- RNG stream-collision audit (DESIGN.md §14) -------------------------

// Every reserved stream id is distinct: the base stream, the island
// domain, and the (reserved) leapfrog domain partition the id space by
// construction — (domain << 32) | index can never alias across domains.
TEST(RngStreamReservations, DomainsNeverOverlap) {
  std::set<std::uint64_t> ids;
  ids.insert(rng_streams::stream_id(rng_streams::Domain::kBase, 0));
  for (std::uint32_t i = 0; i < 64; ++i) {
    ids.insert(rng_streams::island_stream(i));
    ids.insert(rng_streams::stream_id(rng_streams::Domain::kLeapfrog, i));
  }
  EXPECT_EQ(ids.size(), 1u + 2u * 64u);
}

// Distinct stream ids of the same seed occupy disjoint counter planes:
// the Threefry input blocks differ in the second counter word, so the
// keyed permutation can never be invoked on the same (key, counter) by
// two streams. The engine state exposes exactly that plane.
TEST(RngStreamReservations, StreamsUseDisjointCounterPlanes) {
  const std::uint64_t seed = 21;
  std::set<std::uint64_t> planes;
  std::set<std::uint64_t> first_draws;
  std::vector<std::uint64_t> streams = {
      rng_streams::stream_id(rng_streams::Domain::kBase, 0)};
  for (std::uint32_t i = 0; i < 8; ++i) {
    streams.push_back(rng_streams::island_stream(i));
    streams.push_back(rng_streams::stream_id(rng_streams::Domain::kLeapfrog, i));
  }
  for (std::uint64_t stream : streams) {
    Rng rng(RngKind::kThreefry, seed, stream);
    EXPECT_EQ(rng.stream(), stream);
    planes.insert(rng.state()[3] >> 1);  // counter word 1 = the stream id
    first_draws.insert(rng());
  }
  EXPECT_EQ(planes.size(), streams.size());
  // Distinct (key, counter) inputs through a PRP: all draws distinct.
  EXPECT_EQ(first_draws.size(), streams.size());
}

// Stream 0 of the streamed constructor is the legacy engine bit for bit.
TEST(RngStreamReservations, StreamZeroIsLegacyCompatible) {
  Rng legacy(RngKind::kThreefry, 21);
  Rng streamed(RngKind::kThreefry, 21, 0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(legacy(), streamed());
}

// The stateful engine has no counter to partition: requesting a stream is
// a configuration error, not a silent fallback.
TEST(RngStreamReservations, XoshiroRejectsNonzeroStreams) {
  EXPECT_THROW(Rng(RngKind::kXoshiro, 21, 1), std::invalid_argument);
  Rng ok(RngKind::kXoshiro, 21, 0);  // stream 0 is the engine itself
  EXPECT_EQ(ok.stream(), 0u);
}

}  // namespace
}  // namespace mmsyn
