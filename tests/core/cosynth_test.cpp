#include "core/cosynth.hpp"

#include <gtest/gtest.h>

#include "core/run_control.hpp"
#include "tgff/suites.hpp"

namespace mmsyn {
namespace {

SynthesisOptions small(std::uint64_t seed) {
  SynthesisOptions options;
  options.ga.population_size = 24;
  options.ga.max_generations = 60;
  options.ga.stagnation_limit = 20;
  options.seed = seed;
  return options;
}

TEST(Cosynth, MemoisationDoesNotChangeResults) {
  const System system = make_mul(9);
  SynthesisOptions with = small(6);
  with.ga.memoize_evaluations = true;
  SynthesisOptions without = small(6);
  without.ga.memoize_evaluations = false;
  const SynthesisResult a = synthesize(system, with);
  const SynthesisResult b = synthesize(system, without);
  EXPECT_DOUBLE_EQ(a.evaluation.avg_power_true,
                   b.evaluation.avg_power_true);
  EXPECT_EQ(a.fitness, b.fitness);
  // Memoisation strictly reduces the number of inner-loop evaluations.
  EXPECT_LE(a.evaluations, b.evaluations);
}

TEST(Cosynth, SchedulingPolicyIsPlumbedThrough) {
  const System system = make_mul(9);
  for (SchedulingPolicy policy :
       {SchedulingPolicy::kBottomLevel, SchedulingPolicy::kTopoOrder,
        SchedulingPolicy::kLongestTask}) {
    SynthesisOptions options = small(7);
    options.scheduling_policy = policy;
    const SynthesisResult result = synthesize(system, options);
    EXPECT_TRUE(result.evaluation.feasible());
    EXPECT_GT(result.evaluation.avg_power_true, 0.0);
  }
}

TEST(Cosynth, FinalEvaluationKeepsSchedules) {
  const System system = make_mul(11);
  const SynthesisResult result = synthesize(system, small(8));
  for (const ModeEvaluation& m : result.evaluation.modes)
    EXPECT_TRUE(m.schedule.has_value());
}

TEST(Cosynth, BaselineUsesUniformWeightsOnlyInObjective) {
  // The probability-neglecting run must still *report* with the true Ψ:
  // its avg_power_weighted (uniform) and avg_power_true (Ψ) differ unless
  // the mode powers are equal.
  const System system = make_mul(6);
  SynthesisOptions options = small(9);
  options.consider_probabilities = false;
  const SynthesisResult result = synthesize(system, options);
  // Reported power is the Ψ-weighted combination of per-mode powers.
  double expected = 0.0;
  for (std::size_t m = 0; m < system.omsm.mode_count(); ++m)
    expected += (result.evaluation.modes[m].dyn_power +
                 result.evaluation.modes[m].static_power) *
                system.omsm.mode(ModeId{static_cast<int>(m)}).probability;
  EXPECT_NEAR(result.evaluation.avg_power_true, expected, 1e-12);
}

TEST(Cosynth, DvsInLoopCoarsenessDoesNotAffectFinalReportingConfig) {
  // The reported evaluation always uses the fine DVS settings, so making
  // the in-loop settings coarser can change *which* mapping wins but the
  // reported number is always a fine evaluation of that mapping.
  const System system = make_mul(9);
  SynthesisOptions options = small(10);
  options.use_dvs = true;
  options.dvs_in_loop.max_iterations_per_node = 2;  // very coarse
  const SynthesisResult result = synthesize(system, options);
  // Re-evaluate the returned mapping with the fine settings: identical.
  EvaluationOptions fine;
  fine.use_dvs = true;
  fine.dvs = options.dvs_final;
  const Evaluator evaluator(system, fine);
  const Evaluation check = evaluator.evaluate(result.mapping, result.cores);
  EXPECT_NEAR(check.avg_power_true, result.evaluation.avg_power_true, 1e-12);
}

TEST(Cosynth, CompletedRunHasNoStopReason) {
  const System system = make_mul(6);
  const SynthesisResult result = synthesize(system, small(3));
  EXPECT_FALSE(result.partial);
  EXPECT_EQ(result.stop_reason, StopReason::kNone);
}

TEST(Cosynth, BudgetExhaustionIsTypedRecoverableOutcome) {
  // An expired wall-clock budget is not a generic "cancelled": service
  // layers need to distinguish "the job used up its budget, here is the
  // partial fine-DVS result" from an external cancellation.
  const System system = make_mul(9);
  SynthesisOptions options = small(4);
  options.ga.max_generations = 1'000'000;
  options.ga.stagnation_limit = 1'000'000;
  RunControl control;
  control.time_budget_seconds = 1e-9;  // expires at the first boundary
  const SynthesisResult result = synthesize(system, options, &control);
  EXPECT_TRUE(result.partial);
  EXPECT_EQ(result.stop_reason, StopReason::kBudgetExhausted);
  // The partial result still carries a priced best-so-far evaluation.
  EXPECT_GT(result.evaluation.avg_power_true, 0.0);
}

TEST(Cosynth, CancellationIsTypedSeparatelyFromBudget) {
  const System system = make_mul(9);
  SynthesisOptions options = small(4);
  options.ga.max_generations = 1'000'000;
  options.ga.stagnation_limit = 1'000'000;
  RunControl control;
  control.request_cancel();
  const SynthesisResult result = synthesize(system, options, &control);
  EXPECT_TRUE(result.partial);
  EXPECT_EQ(result.stop_reason, StopReason::kCancelled);
}

TEST(Cosynth, BudgetTakesPrecedenceOverConcurrentCancel) {
  // When both stop conditions hold at the same generation boundary the
  // typed reason is budget exhaustion — the recoverable outcome — so a
  // watchdog cancel racing the budget check cannot mask it.
  const System system = make_mul(9);
  SynthesisOptions options = small(4);
  options.ga.max_generations = 1'000'000;
  options.ga.stagnation_limit = 1'000'000;
  RunControl control;
  control.time_budget_seconds = 1e-9;
  control.request_cancel();
  const SynthesisResult result = synthesize(system, options, &control);
  EXPECT_TRUE(result.partial);
  EXPECT_EQ(result.stop_reason, StopReason::kBudgetExhausted);
}

}  // namespace
}  // namespace mmsyn
