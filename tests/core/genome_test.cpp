#include "core/genome.hpp"

#include <gtest/gtest.h>

#include "model/system.hpp"
#include "tgff/suites.hpp"

namespace mmsyn {
namespace {

/// Small deterministic system: 2 modes x 2 tasks, 2 PEs.
System make_system() {
  System s;
  Pe gpp;
  gpp.name = "GPP";
  const PeId p0 = s.arch.add_pe(gpp);
  Pe asic;
  asic.name = "ASIC";
  asic.kind = PeKind::kAsic;
  asic.area_capacity = 500.0;
  const PeId p1 = s.arch.add_pe(asic);
  Cl bus;
  bus.attached = {p0, p1};
  s.arch.add_cl(bus);

  const TaskTypeId both = s.tech.add_type("BOTH");
  s.tech.set_implementation(both, p0, {1e-3, 0.1, 0.0});
  s.tech.set_implementation(both, p1, {1e-4, 0.01, 100.0});
  const TaskTypeId sw_only = s.tech.add_type("SW");
  s.tech.set_implementation(sw_only, p0, {1e-3, 0.1, 0.0});

  for (int i = 0; i < 2; ++i) {
    Mode m;
    m.name = "m" + std::to_string(i);
    m.probability = 0.5;
    m.period = 0.1;
    m.graph.add_task("t0", both);
    m.graph.add_task("t1", sw_only);
    s.omsm.add_mode(std::move(m));
  }
  return s;
}

TEST(GenomeCodec, LayoutMatchesModes) {
  const System s = make_system();
  const GenomeCodec codec(s);
  EXPECT_EQ(codec.genome_length(), 4u);
  EXPECT_EQ(codec.mode_count(), 2u);
  EXPECT_EQ(codec.gene_index(ModeId{0}, TaskId{0}), 0u);
  EXPECT_EQ(codec.gene_index(ModeId{1}, TaskId{1}), 3u);
  EXPECT_EQ(codec.mode_gene_begin(ModeId{1}), 2u);
  EXPECT_EQ(codec.mode_gene_count(ModeId{1}), 2u);
}

TEST(GenomeCodec, CandidatesReflectTechLibrary) {
  const System s = make_system();
  const GenomeCodec codec(s);
  EXPECT_EQ(codec.candidates(0).size(), 2u);  // BOTH type
  EXPECT_EQ(codec.candidates(1).size(), 1u);  // SW-only type
}

TEST(GenomeCodec, DecodeEncodeRoundTrip) {
  const System s = make_system();
  const GenomeCodec codec(s);
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const Genome g = codec.random_genome(rng);
    const MultiModeMapping m = codec.decode(g);
    EXPECT_TRUE(mapping_is_well_formed(m, s.omsm, s.arch, s.tech));
    EXPECT_EQ(codec.encode(m), g);
  }
}

TEST(GenomeCodec, ModeAndTaskOfGene) {
  const System s = make_system();
  const GenomeCodec codec(s);
  EXPECT_EQ(codec.mode_of_gene(0), ModeId{0});
  EXPECT_EQ(codec.mode_of_gene(1), ModeId{0});
  EXPECT_EQ(codec.mode_of_gene(2), ModeId{1});
  EXPECT_EQ(codec.task_of_gene(3), TaskId{1});
}

TEST(GenomeCodec, SetPeRejectsNonCandidate) {
  const System s = make_system();
  const GenomeCodec codec(s);
  Genome g(codec.genome_length(), 0);
  EXPECT_TRUE(codec.set_pe(g, 0, PeId{1}));
  EXPECT_EQ(codec.pe_at(g, 0), PeId{1});
  EXPECT_FALSE(codec.set_pe(g, 1, PeId{1}));  // SW-only gene
}

TEST(GenomeCodec, EncodeRejectsNonCandidate) {
  const System s = make_system();
  const GenomeCodec codec(s);
  MultiModeMapping m;
  m.modes.resize(2);
  m.modes[0].task_to_pe = {PeId{1}, PeId{1}};  // t1 cannot run on ASIC
  m.modes[1].task_to_pe = {PeId{0}, PeId{0}};
  EXPECT_THROW((void)codec.encode(m), std::invalid_argument);
}

TEST(GenomeCodec, RandomGenomesCoverCandidates) {
  const System s = make_system();
  const GenomeCodec codec(s);
  Rng rng(9);
  bool saw_hw = false, saw_sw = false;
  for (int i = 0; i < 50; ++i) {
    const Genome g = codec.random_genome(rng);
    if (codec.pe_at(g, 0) == PeId{1}) saw_hw = true;
    if (codec.pe_at(g, 0) == PeId{0}) saw_sw = true;
  }
  EXPECT_TRUE(saw_hw);
  EXPECT_TRUE(saw_sw);
}

TEST(GenomeCodec, SuiteInstancesAreCodable) {
  const System s = make_mul(1);
  const GenomeCodec codec(s);
  EXPECT_EQ(codec.genome_length(), s.total_task_count());
  Rng rng(1);
  const Genome g = codec.random_genome(rng);
  EXPECT_TRUE(
      mapping_is_well_formed(codec.decode(g), s.omsm, s.arch, s.tech));
}

TEST(HammingFraction, CountsDifferences) {
  EXPECT_DOUBLE_EQ(hamming_fraction({0, 1, 2, 3}, {0, 1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(hamming_fraction({0, 1, 2, 3}, {1, 1, 2, 0}), 0.5);
  EXPECT_DOUBLE_EQ(hamming_fraction({}, {}), 0.0);
}

}  // namespace
}  // namespace mmsyn
