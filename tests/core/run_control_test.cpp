// Crash-safety tests: checkpoint serialization, corruption rejection, and
// the bit-identical cancel → checkpoint → resume contract.
#include "core/run_control.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/cosynth.hpp"
#include "core/report.hpp"
#include "tgff/suites.hpp"

namespace mmsyn {
namespace {

/// Unique-ish scratch path under the build tree's cwd.
std::string scratch_path(const char* name) {
  return std::string(::testing::TempDir()) + "mmsyn_" + name + ".ckpt";
}

GaSnapshot sample_snapshot() {
  GaSnapshot snap;
  snap.fingerprint = 0x1122334455667788ull;
  snap.next_generation = 17;
  snap.stagnation = 3;
  snap.area_infeasible_streak = 1;
  snap.timing_infeasible_streak = 2;
  snap.transition_infeasible_streak = 0;
  snap.evaluations = 1234;
  snap.cache_hits = 56;
  snap.cache_lookups = 78;
  snap.elapsed_seconds = 9.25;
  snap.rng_state = {1, 2, 3, 0xffffffffffffffffull};
  snap.has_best = true;
  snap.best = SnapshotIndividual{{0, 1, 2}, -1.5, 0.0, 0.004,
                                 true, false, false, false};
  snap.population = {
      SnapshotIndividual{{0, 1, 2}, -1.5, 0.0, 0.004, true, false, false,
                         false},
      SnapshotIndividual{{2, 1, 0}, 3.0, 0.5, 0.009, true, true, false,
                         true},
      SnapshotIndividual{{1, 1, 1}, 0.0, 0.0, 0.0, false, false, false,
                         false},
  };
  snap.cache = {snap.population[0], snap.population[1]};

  // Two per-mode memo entries of different shapes (v2 format section).
  ModeEvalKey key0;
  key0.mode = 0;
  key0.options_fingerprint = 0xfeedfacecafebeefull;
  key0.task_to_pe = {PeId{0}, PeId{2}, PeId{1}};
  key0.cores.resize(2);
  key0.cores[1].set_count(TaskTypeId{4}, 2);
  ModeEvaluation val0;
  val0.dyn_energy = 1.5e-3;
  val0.dyn_power = 0.3;
  val0.static_power = 0.01;
  val0.timing_violation = 0.0;
  val0.makespan = 4.5e-3;
  val0.pe_active = {true, false, true};
  val0.cl_active = {true};
  val0.routable = true;
  ModeEvalKey key1;
  key1.mode = 1;
  key1.options_fingerprint = 0xfeedfacecafebeefull;
  key1.task_to_pe = {PeId{1}};
  key1.cores.resize(2);
  ModeEvaluation val1;
  val1.dyn_power = 0.125;
  val1.makespan = 2.0e-3;
  val1.pe_active = {false, true, false};
  val1.cl_active = {false};
  val1.routable = false;
  snap.mode_cache = {{key0, val0}, {key1, val1}};
  snap.mode_cache_hits = 21;
  snap.mode_cache_lookups = 34;
  return snap;
}

void expect_mode_entries_equal(
    const std::vector<std::pair<ModeEvalKey, ModeEvaluation>>& a,
    const std::vector<std::pair<ModeEvalKey, ModeEvaluation>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);  // ModeEvalKey has operator==
    const ModeEvaluation& x = a[i].second;
    const ModeEvaluation& y = b[i].second;
    EXPECT_EQ(x.dyn_energy, y.dyn_energy);
    EXPECT_EQ(x.dyn_power, y.dyn_power);
    EXPECT_EQ(x.static_power, y.static_power);
    EXPECT_EQ(x.timing_violation, y.timing_violation);
    EXPECT_EQ(x.makespan, y.makespan);
    EXPECT_EQ(x.pe_active, y.pe_active);
    EXPECT_EQ(x.cl_active, y.cl_active);
    EXPECT_EQ(x.routable, y.routable);
    EXPECT_FALSE(y.schedule.has_value());
  }
}

void expect_snapshots_equal(const GaSnapshot& a, const GaSnapshot& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.next_generation, b.next_generation);
  EXPECT_EQ(a.stagnation, b.stagnation);
  EXPECT_EQ(a.area_infeasible_streak, b.area_infeasible_streak);
  EXPECT_EQ(a.timing_infeasible_streak, b.timing_infeasible_streak);
  EXPECT_EQ(a.transition_infeasible_streak, b.transition_infeasible_streak);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_lookups, b.cache_lookups);
  EXPECT_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(a.rng_state, b.rng_state);
  EXPECT_EQ(a.has_best, b.has_best);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.population, b.population);
  EXPECT_EQ(a.cache, b.cache);
  EXPECT_EQ(a.mode_cache_hits, b.mode_cache_hits);
  EXPECT_EQ(a.mode_cache_lookups, b.mode_cache_lookups);
  expect_mode_entries_equal(a.mode_cache, b.mode_cache);
}

TEST(Checkpoint, RejectsModeCacheEntryWithSchedule) {
  // The per-mode memo never holds schedules; a snapshot carrying one was
  // built from the wrong evaluator configuration and must not be written.
  GaSnapshot snap = sample_snapshot();
  snap.mode_cache[0].second.schedule.emplace();
  EXPECT_THROW(save_checkpoint(scratch_path("sched_entry"), snap),
               CheckpointError);
}

TEST(Checkpoint, RoundTripsExactly) {
  const std::string path = scratch_path("roundtrip");
  const GaSnapshot original = sample_snapshot();
  save_checkpoint(path, original);
  expect_snapshots_equal(load_checkpoint(path), original);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileIsTypedError) {
  EXPECT_THROW(load_checkpoint("/nonexistent/dir/nope.ckpt"), CheckpointError);
}

TEST(Checkpoint, RejectsBadMagic) {
  const std::string path = scratch_path("magic");
  {
    std::ofstream os(path, std::ios::binary);
    os << "NOTMMSYNgarbage that is long enough to read a header from....";
  }
  EXPECT_THROW(load_checkpoint(path), CheckpointError);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsTruncation) {
  const std::string path = scratch_path("trunc");
  save_checkpoint(path, sample_snapshot());
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), {});
  }
  ASSERT_GT(bytes.size(), 30u);
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 13));
  }
  EXPECT_THROW(load_checkpoint(path), CheckpointError);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsBitFlip) {
  const std::string path = scratch_path("flip");
  save_checkpoint(path, sample_snapshot());
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), {});
  }
  bytes[bytes.size() / 2] ^= 0x01;  // flip one payload bit
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(load_checkpoint(path), CheckpointError);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Generation rotation and recovery-aware fallback loading.

/// Removes every generation file (and stray .tmp) of `path`.
void remove_generations(const std::string& path, int keep = 8) {
  std::remove((path + ".tmp").c_str());
  for (int gen = 0; gen < keep; ++gen)
    std::remove(checkpoint_generation_path(path, gen).c_str());
}

bool file_exists(const std::string& path) {
  return std::ifstream(path, std::ios::binary).good();
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::string bytes;
  bytes.assign(std::istreambuf_iterator<char>(is), {});
  return bytes;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Checkpoint, GenerationPathNaming) {
  EXPECT_EQ(checkpoint_generation_path("run.ckpt", 0), "run.ckpt");
  EXPECT_EQ(checkpoint_generation_path("run.ckpt", 1), "run.ckpt.1");
  EXPECT_EQ(checkpoint_generation_path("run.ckpt", 2), "run.ckpt.2");
}

TEST(Checkpoint, RotationKeepsLastKGenerations) {
  const std::string path = scratch_path("rotate");
  remove_generations(path);
  GaSnapshot snap = sample_snapshot();
  for (int i = 0; i < 4; ++i) {
    snap.next_generation = i;
    save_checkpoint_rotating(path, snap, /*keep=*/3);
  }
  // Newest first: generations 3, 2, 1; generation 0 fell off the end.
  EXPECT_EQ(load_checkpoint(path).next_generation, 3);
  EXPECT_EQ(load_checkpoint(path + ".1").next_generation, 2);
  EXPECT_EQ(load_checkpoint(path + ".2").next_generation, 1);
  EXPECT_FALSE(file_exists(path + ".3"));
  remove_generations(path);
}

TEST(Checkpoint, FallbackPrefersNewestGoodGeneration) {
  const std::string path = scratch_path("fallback_newest");
  remove_generations(path);
  GaSnapshot snap = sample_snapshot();
  snap.next_generation = 5;
  save_checkpoint_rotating(path, snap, 3);
  snap.next_generation = 10;
  save_checkpoint_rotating(path, snap, 3);
  const CheckpointLoadResult loaded = load_checkpoint_fallback(path, 3);
  EXPECT_EQ(loaded.generation, 0);
  EXPECT_EQ(loaded.loaded_path, path);
  EXPECT_EQ(loaded.snapshot.next_generation, 10);
  EXPECT_TRUE(loaded.notes.empty());
  remove_generations(path);
}

// The corruption taxonomy: each way a newest generation can be damaged
// must fall back to the previous good generation instead of failing the
// resume with a CheckpointError.
struct CorruptionCase {
  const char* name;
  void (*damage)(const std::string& path);
};

void damage_truncate(const std::string& path) {
  const std::string bytes = read_file(path);
  write_file(path, bytes.substr(0, bytes.size() - 13));
}

void damage_flip_crc_byte(const std::string& path) {
  std::string bytes = read_file(path);
  bytes[bytes.size() - 2] ^= 0x40;  // inside the CRC-32 trailer
  write_file(path, bytes);
}

void damage_wrong_version(const std::string& path) {
  std::string bytes = read_file(path);
  bytes[8] ^= 0x7f;  // u32 version lives right after the 8-byte magic
  write_file(path, bytes);
}

void damage_wrong_fingerprint(const std::string& path) {
  // Rewrite the generation as a valid checkpoint of a *different* run:
  // structurally sound, rejected only by the fingerprint check.
  GaSnapshot other = sample_snapshot();
  other.fingerprint ^= 0xdeadbeefull;
  other.next_generation = 99;
  save_checkpoint(path, other);
}

void damage_empty_file(const std::string& path) { write_file(path, ""); }

class CheckpointCorruptionTest
    : public ::testing::TestWithParam<CorruptionCase> {};

TEST_P(CheckpointCorruptionTest, FallsBackToPreviousGeneration) {
  // Per-case scratch file: ctest runs each parameterized case as its own
  // test process, so a shared path races under `ctest -j`.
  const std::string path = scratch_path(
      (std::string("fallback_taxonomy_") + GetParam().name).c_str());
  remove_generations(path);
  GaSnapshot snap = sample_snapshot();
  snap.next_generation = 5;
  save_checkpoint_rotating(path, snap, 3);  // becomes .1 after next save
  snap.next_generation = 10;
  save_checkpoint_rotating(path, snap, 3);
  GetParam().damage(path);

  const CheckpointLoadResult loaded =
      load_checkpoint_fallback(path, 3, sample_snapshot().fingerprint);
  EXPECT_EQ(loaded.generation, 1);
  EXPECT_EQ(loaded.loaded_path, path + ".1");
  EXPECT_EQ(loaded.snapshot.next_generation, 5);
  ASSERT_EQ(loaded.notes.size(), 1u);  // one note for the damaged newest

  // Without an older good generation the same damage is a typed error.
  std::remove((path + ".1").c_str());
  EXPECT_THROW((void)load_checkpoint_fallback(path, 3,
                                              sample_snapshot().fingerprint),
               CheckpointError);
  remove_generations(path);
}

INSTANTIATE_TEST_SUITE_P(
    Taxonomy, CheckpointCorruptionTest,
    ::testing::Values(CorruptionCase{"TruncatedFile", damage_truncate},
                      CorruptionCase{"FlippedCrcByte", damage_flip_crc_byte},
                      CorruptionCase{"WrongVersion", damage_wrong_version},
                      CorruptionCase{"WrongFingerprint",
                                     damage_wrong_fingerprint},
                      CorruptionCase{"EmptyFile", damage_empty_file}),
    [](const ::testing::TestParamInfo<CorruptionCase>& info) {
      return info.param.name;
    });

TEST(Checkpoint, FallbackSkipsMissingNewestGeneration) {
  // A crash between rotation and the final rename leaves `path` absent
  // with the previous checkpoint shifted to `path.1` — resume must treat
  // the hole as skippable, not fatal.
  const std::string path = scratch_path("fallback_missing");
  remove_generations(path);
  GaSnapshot snap = sample_snapshot();
  snap.next_generation = 5;
  save_checkpoint(path + ".1", snap);
  const CheckpointLoadResult loaded = load_checkpoint_fallback(path, 3);
  EXPECT_EQ(loaded.generation, 1);
  EXPECT_EQ(loaded.snapshot.next_generation, 5);
  remove_generations(path);
}

TEST(Checkpoint, SaveLeavesNoStaleTmpFile) {
  const std::string path = scratch_path("no_tmp");
  remove_generations(path);
  save_checkpoint(path, sample_snapshot());
  EXPECT_FALSE(file_exists(path + ".tmp"));
  remove_generations(path);
}

TEST(RunControl, WriteCheckpointToleratesFailure) {
  RunControl control;
  control.checkpoint_path = "/nonexistent/dir/run.ckpt";
  std::vector<std::string> log;
  control.recovery_log = [&](const std::string& m) { log.push_back(m); };
  control.write_checkpoint(sample_snapshot());  // must not throw
  EXPECT_EQ(control.checkpoint_write_failures(), 1);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_NE(log[0].find("checkpoint write failure"), std::string::npos);
}

TEST(RunControl, StopConditions) {
  RunControl control;
  EXPECT_FALSE(control.should_stop(1e9));  // no budget, no cancel
  control.time_budget_seconds = 5.0;
  EXPECT_FALSE(control.should_stop(4.9));
  EXPECT_TRUE(control.should_stop(5.0));
  control.time_budget_seconds = 0.0;
  control.request_cancel();
  EXPECT_TRUE(control.should_stop(0.0));
}

TEST(RunControl, CheckpointCadence) {
  RunControl control;
  control.checkpoint_path = "x.ckpt";
  control.checkpoint_every_generations = 10;
  EXPECT_FALSE(control.checkpoint_due(0));
  EXPECT_TRUE(control.checkpoint_due(9));    // after completing gen 9
  EXPECT_FALSE(control.checkpoint_due(10));
  EXPECT_TRUE(control.checkpoint_due(19));
  control.checkpoint_path.clear();
  EXPECT_FALSE(control.checkpoint_due(9));
}

// ---------------------------------------------------------------------
// The acceptance criterion: run → checkpoint → stop → resume must be
// bit-identical to an uninterrupted run with the same seed.

SynthesisOptions small_options(std::uint64_t seed) {
  SynthesisOptions options;
  options.seed = seed;
  options.ga.population_size = 16;
  options.ga.max_generations = 30;
  options.ga.stagnation_limit = 30;
  return options;
}

TEST(Resume, CancelledRunResumesBitIdentically) {
  const System system = make_mul(5);
  const std::string path = scratch_path("resume_cancel");
  const SynthesisOptions options = small_options(7);

  const SynthesisResult full = synthesize(system, options);

  // Cancel after generation 4 via the progress observer; the cooperative
  // stop writes a final checkpoint.
  RunControl stopper;
  stopper.checkpoint_path = path;
  stopper.checkpoint_every_generations = 0;  // only the stop checkpoint
  {
    const Evaluator evaluator(system, [&] {
      EvaluationOptions eval;
      eval.scheduling_policy = options.scheduling_policy;
      eval.dvs = options.dvs_in_loop;
      return eval;
    }());
    MappingGa ga(system, evaluator, options.fitness, options.allocation,
                 options.ga, options.seed);
    const SynthesisResult partial = ga.run(
        [&](const GaProgress& progress) {
          if (progress.generation >= 4) stopper.request_cancel();
        },
        &stopper);
    EXPECT_TRUE(partial.partial);
    EXPECT_LT(partial.generations, full.generations);
  }

  RunControl resumer;
  resumer.resume_path = path;
  const SynthesisResult resumed = synthesize(system, options, &resumer);

  EXPECT_FALSE(resumed.partial);
  EXPECT_EQ(resumed.generations, full.generations);
  EXPECT_EQ(resumed.evaluations, full.evaluations);
  EXPECT_EQ(resumed.cache_hits, full.cache_hits);
  EXPECT_EQ(resumed.cache_lookups, full.cache_lookups);
  EXPECT_EQ(resumed.mode_cache_hits, full.mode_cache_hits);
  EXPECT_EQ(resumed.mode_cache_lookups, full.mode_cache_lookups);
  EXPECT_EQ(resumed.fitness, full.fitness);  // exact, not approximate
  EXPECT_EQ(resumed.mapping.modes.size(), full.mapping.modes.size());
  for (std::size_t m = 0; m < full.mapping.modes.size(); ++m)
    EXPECT_EQ(resumed.mapping.modes[m].task_to_pe,
              full.mapping.modes[m].task_to_pe);

  // The rendered reports (minus wall-clock timing) are byte-identical.
  ReportOptions report;
  report.include_timing = false;
  EXPECT_EQ(implementation_report(system, resumed, report),
            implementation_report(system, full, report));
  std::remove(path.c_str());
}

TEST(Resume, PeriodicCheckpointResumesBitIdentically) {
  const System system = make_mul(2);
  const std::string path = scratch_path("resume_periodic");
  const SynthesisOptions options = small_options(11);

  const SynthesisResult full = synthesize(system, options);

  // Run to completion while checkpointing every 5 generations, then throw
  // the finished result away and resume from the *last periodic*
  // checkpoint — simulating a crash after it was written.
  RunControl writer;
  writer.checkpoint_path = path;
  writer.checkpoint_every_generations = 5;
  (void)synthesize(system, options, &writer);
  const GaSnapshot snap = load_checkpoint(path);
  EXPECT_GT(snap.next_generation, 0);

  RunControl resumer;
  resumer.resume_path = path;
  const SynthesisResult resumed = synthesize(system, options, &resumer);

  EXPECT_EQ(resumed.generations, full.generations);
  EXPECT_EQ(resumed.evaluations, full.evaluations);
  EXPECT_EQ(resumed.fitness, full.fitness);
  for (std::size_t m = 0; m < full.mapping.modes.size(); ++m)
    EXPECT_EQ(resumed.mapping.modes[m].task_to_pe,
              full.mapping.modes[m].task_to_pe);
  std::remove(path.c_str());
}

TEST(Resume, FingerprintMismatchRefused) {
  const System system = make_mul(5);
  const std::string path = scratch_path("resume_mismatch");
  const SynthesisOptions options = small_options(7);

  RunControl writer;
  writer.checkpoint_path = path;
  writer.checkpoint_every_generations = 2;
  (void)synthesize(system, options, &writer);

  RunControl resumer;
  resumer.resume_path = path;
  SynthesisOptions other = small_options(8);  // different seed
  EXPECT_THROW((void)synthesize(system, other, &resumer), CheckpointError);

  other = small_options(7);
  other.ga.gene_mutation_rate *= 2;  // different GA options
  EXPECT_THROW((void)synthesize(system, other, &resumer), CheckpointError);
  std::remove(path.c_str());
}

TEST(Budget, ZeroBudgetStillReturnsEvaluatedResult) {
  const System system = make_mul(5);
  RunControl control;
  control.time_budget_seconds = 1e-9;  // expires before generation 0
  const SynthesisResult result =
      synthesize(system, small_options(3), &control);
  EXPECT_TRUE(result.partial);
  // Graceful degradation: a final fine evaluation of *some* individual.
  EXPECT_EQ(result.evaluation.modes.size(), system.omsm.mode_count());
  EXPECT_GT(result.evaluation.avg_power_true, 0.0);
}

TEST(RunControl, BudgetExhaustedPredicate) {
  RunControl control;
  EXPECT_FALSE(control.budget_exhausted(1e9));  // no budget set
  control.time_budget_seconds = 5.0;
  EXPECT_FALSE(control.budget_exhausted(4.999));
  EXPECT_TRUE(control.budget_exhausted(5.0));
  EXPECT_TRUE(control.budget_exhausted(6.0));
}

TEST(RunControl, ShouldStopCombinesBudgetAndCancel) {
  RunControl control;
  control.time_budget_seconds = 5.0;
  EXPECT_FALSE(control.should_stop(1.0));
  EXPECT_TRUE(control.should_stop(5.0));
  control.request_cancel();
  EXPECT_TRUE(control.should_stop(1.0));
  // The two conditions stay separately observable so callers can type
  // the stop: budget_exhausted is unaffected by the cancel flag.
  EXPECT_FALSE(control.budget_exhausted(1.0));
}

}  // namespace
}  // namespace mmsyn
