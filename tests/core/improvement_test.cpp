#include "core/improvement.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "model/system.hpp"

namespace mmsyn {
namespace {

/// Fixture: GPP + ASIC + FPGA; TYPE_BOTH runs anywhere, TYPE_HW_ONLY only
/// on hardware, TYPE_SW_ONLY only on the GPP.
class ImprovementTest : public ::testing::Test {
 protected:
  ImprovementTest() {
    Pe gpp;
    gpp.name = "GPP";
    sw_ = system_.arch.add_pe(gpp);
    Pe asic;
    asic.name = "ASIC";
    asic.kind = PeKind::kAsic;
    asic.area_capacity = 1000.0;
    asic_ = system_.arch.add_pe(asic);
    Pe fpga;
    fpga.name = "FPGA";
    fpga.kind = PeKind::kFpga;
    fpga.area_capacity = 1000.0;
    fpga.reconfig_bandwidth = 1e5;
    fpga_ = system_.arch.add_pe(fpga);
    Cl bus;
    bus.attached = {sw_, asic_, fpga_};
    system_.arch.add_cl(bus);

    both_ = system_.tech.add_type("BOTH");
    system_.tech.set_implementation(both_, sw_, {10e-3, 0.1, 0.0});
    system_.tech.set_implementation(both_, asic_, {1e-3, 1e-3, 200.0});
    system_.tech.set_implementation(both_, fpga_, {1e-3, 1e-3, 200.0});
    hw_only_ = system_.tech.add_type("HWONLY");
    system_.tech.set_implementation(hw_only_, asic_, {1e-3, 1e-3, 200.0});
    sw_only_ = system_.tech.add_type("SWONLY");
    system_.tech.set_implementation(sw_only_, sw_, {5e-3, 0.1, 0.0});

    Mode m0;
    m0.name = "m0";
    m0.probability = 0.5;
    m0.period = 0.1;
    m0.graph.add_task("a", both_);
    m0.graph.add_task("b", both_);
    m0.graph.add_task("c", sw_only_);
    system_.omsm.add_mode(std::move(m0));
    Mode m1;
    m1.name = "m1";
    m1.probability = 0.5;
    m1.period = 0.1;
    m1.graph.add_task("d", both_);
    m1.graph.add_task("e", hw_only_);
    system_.omsm.add_mode(std::move(m1));

    codec_ = std::make_unique<GenomeCodec>(system_);
  }

  Genome genome_with(std::initializer_list<PeId> pes) const {
    Genome g(codec_->genome_length(), 0);
    std::size_t i = 0;
    for (PeId pe : pes) {
      EXPECT_TRUE(codec_->set_pe(g, i, pe)) << "gene " << i;
      ++i;
    }
    return g;
  }

  System system_;
  PeId sw_, asic_, fpga_;
  TaskTypeId both_, hw_only_, sw_only_;
  std::unique_ptr<GenomeCodec> codec_;
};

TEST_F(ImprovementTest, ShutdownEvacuatesOnePeInOneMode) {
  // Mode 0: a,b on ASIC, c on GPP. ASIC is non-essential in mode 0.
  Genome g = genome_with({asic_, asic_, sw_, sw_, asic_});
  Rng rng(5);
  bool changed = false;
  for (int i = 0; i < 50 && !changed; ++i)
    changed = shutdown_improvement(g, *codec_, system_, rng);
  ASSERT_TRUE(changed);
  // After some successful application, at least one (mode, PE) pair that
  // previously hosted tasks is now empty. Verify the invariant: every gene
  // still maps to a candidate PE.
  for (std::size_t i = 0; i < codec_->genome_length(); ++i) {
    const auto& cands = codec_->candidates(i);
    EXPECT_LT(g[i], cands.size());
  }
}

TEST_F(ImprovementTest, ShutdownSkipsEssentialPes) {
  // Mode 1 task e (HWONLY) has only the ASIC: ASIC is essential there.
  // A genome where every mode-1 task sits on the ASIC can only be improved
  // by evacuating mode-0 PEs or moving mode-1's 'd'.
  Genome g = genome_with({sw_, sw_, sw_, asic_, asic_});
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    Genome before = g;
    (void)shutdown_improvement(g, *codec_, system_, rng);
    // 'e' must never leave the ASIC (no alternative exists).
    EXPECT_EQ(codec_->pe_at(g, 4), asic_);
  }
}

TEST_F(ImprovementTest, AreaImprovementMovesHwTasksToSoftware) {
  Genome g = genome_with({asic_, asic_, sw_, asic_, asic_});
  Rng rng(11);
  bool moved_any = false;
  for (int i = 0; i < 50; ++i) {
    if (area_improvement(g, *codec_, system_, rng)) {
      moved_any = true;
      break;
    }
  }
  EXPECT_TRUE(moved_any);
  // HWONLY gene (index 4) can never move to software.
  EXPECT_EQ(codec_->pe_at(g, 4), asic_);
}

TEST_F(ImprovementTest, TimingImprovementMovesToFasterHardware) {
  Genome g = genome_with({sw_, sw_, sw_, sw_, asic_});
  Rng rng(13);
  bool moved = false;
  for (int i = 0; i < 50 && !moved; ++i) {
    moved = timing_improvement(g, *codec_, system_, rng);
  }
  ASSERT_TRUE(moved);
  // Whatever moved is now on hardware with a faster implementation.
  bool any_hw = false;
  for (std::size_t i = 0; i < 4; ++i)
    if (is_hardware(system_.arch.pe(codec_->pe_at(g, i)).kind)) any_hw = true;
  EXPECT_TRUE(any_hw);
  // The SW-only task cannot move.
  EXPECT_EQ(codec_->pe_at(g, 2), sw_);
}

TEST_F(ImprovementTest, TransitionImprovementPullsTasksOffFpga) {
  Genome g = genome_with({fpga_, fpga_, sw_, fpga_, asic_});
  Rng rng(17);
  int on_fpga_before = 0;
  for (std::size_t i = 0; i < codec_->genome_length(); ++i)
    if (codec_->pe_at(g, i) == fpga_) ++on_fpga_before;
  bool moved = false;
  for (int i = 0; i < 100 && !moved; ++i)
    moved = transition_improvement(g, *codec_, system_, rng);
  ASSERT_TRUE(moved);
  int on_fpga_after = 0;
  for (std::size_t i = 0; i < codec_->genome_length(); ++i)
    if (codec_->pe_at(g, i) == fpga_) ++on_fpga_after;
  EXPECT_LT(on_fpga_after, on_fpga_before);
}

TEST_F(ImprovementTest, OperatorsKeepGenomesWellFormed) {
  Rng rng(23);
  Genome g = codec_->random_genome(rng);
  for (int i = 0; i < 200; ++i) {
    switch (i % 4) {
      case 0: (void)shutdown_improvement(g, *codec_, system_, rng); break;
      case 1: (void)area_improvement(g, *codec_, system_, rng); break;
      case 2: (void)timing_improvement(g, *codec_, system_, rng); break;
      case 3: (void)transition_improvement(g, *codec_, system_, rng); break;
    }
    const MultiModeMapping m = codec_->decode(g);
    ASSERT_TRUE(mapping_is_well_formed(m, system_.omsm, system_.arch,
                                       system_.tech));
  }
}

}  // namespace
}  // namespace mmsyn
