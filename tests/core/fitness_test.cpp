#include "core/fitness.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/allocation_builder.hpp"
#include "tgff/motivational.hpp"

namespace mmsyn {
namespace {

/// Uses the Fig. 2 system (exact numbers) to validate the fitness pieces.
class FitnessTest : public ::testing::Test {
 protected:
  FitnessTest()
      : system_(make_motivational_example1()),
        evaluator_(system_, EvaluationOptions{}) {}

  Evaluation evaluate(const MultiModeMapping& m) const {
    return evaluator_.evaluate(m, build_core_allocation(system_, m));
  }

  static MultiModeMapping mapping(std::initializer_list<int> o1,
                                  std::initializer_list<int> o2) {
    MultiModeMapping m;
    m.modes.resize(2);
    for (int pe : o1) m.modes[0].task_to_pe.push_back(PeId{pe});
    for (int pe : o2) m.modes[1].task_to_pe.push_back(PeId{pe});
    return m;
  }

  System system_;
  Evaluator evaluator_;
};

TEST_F(FitnessTest, FeasibleFitnessEqualsWeightedPower) {
  const MultiModeMapping m = example1_mapping_with_probabilities();
  const Evaluation e = evaluate(m);
  const double f = mapping_fitness(e, evaluator_, FitnessParams{});
  EXPECT_NEAR(f, e.avg_power_weighted, 1e-12);
  EXPECT_DOUBLE_EQ(constraint_violation(e, evaluator_), 0.0);
}

TEST_F(FitnessTest, AreaViolationInflatesFitness) {
  // All six tasks in hardware: 1550 cells on a 600-cell ASIC.
  const MultiModeMapping m = mapping({1, 1, 1}, {1, 1, 1});
  const Evaluation e = evaluate(m);
  EXPECT_FALSE(e.area_feasible());
  const double f = mapping_fitness(e, evaluator_, FitnessParams{});
  EXPECT_GT(f, e.avg_power_weighted * 2.0);
  EXPECT_GT(constraint_violation(e, evaluator_), 0.0);
}

TEST_F(FitnessTest, AreaWeightControlsAggressiveness) {
  const MultiModeMapping m = mapping({1, 1, 1}, {1, 1, 1});
  const Evaluation e = evaluate(m);
  FitnessParams soft;
  soft.area_weight = 0.01;
  FitnessParams hard;
  hard.area_weight = 1.0;
  EXPECT_LT(mapping_fitness(e, evaluator_, soft),
            mapping_fitness(e, evaluator_, hard));
}

TEST_F(FitnessTest, TimingViolationInflatesFitness) {
  System tight = system_;
  tight.omsm.mode(ModeId{1}).period = 1e-3;  // chain needs ~80 ms in SW
  const Evaluator evaluator(tight, EvaluationOptions{});
  const MultiModeMapping m = mapping({0, 0, 0}, {0, 0, 0});
  const Evaluation e =
      evaluator.evaluate(m, build_core_allocation(tight, m));
  EXPECT_FALSE(e.timing_feasible());
  EXPECT_GT(mapping_fitness(e, evaluator, FitnessParams{}),
            e.avg_power_weighted);
  EXPECT_GT(constraint_violation(e, evaluator), 0.0);
}

TEST_F(FitnessTest, ZeroCapacityAreaViolationStaysFinite) {
  // Regression: a spurious area violation attributed to a zero-capacity
  // PE (software PEs carry no area at all) used to divide by zero and
  // turn the fitness into inf, destroying the ranking. It must stay a
  // finite, strictly positive penalty in absolute area units.
  const MultiModeMapping m = example1_mapping_with_probabilities();
  Evaluation e = evaluate(m);
  const PeId gpp{0};
  ASSERT_EQ(system_.arch.pe(gpp).area_capacity, 0.0);
  e.pe_area_violation[gpp.index()] = 5.0;
  e.total_area_violation += 5.0;
  const double f = mapping_fitness(e, evaluator_, FitnessParams{});
  EXPECT_TRUE(std::isfinite(f));
  EXPECT_GT(f, e.avg_power_weighted);  // penalised, not destroyed
  const double v = constraint_violation(e, evaluator_);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 0.0);
}

TEST_F(FitnessTest, TransitionPenaltyAppliesPerViolatingTransition) {
  // Paper form Π_{T∈Θ_v} (w_R · t_T/t_T^max): every violating transition
  // contributes its own w_R-weighted overshoot ratio; with no violation
  // the empty product leaves the fitness untouched.
  // Fig. 2 leaves both transitions unconstrained (t_T^max = inf); give
  // them finite limits generous enough that the mapping itself violates
  // neither, then inject overshoots by hand.
  ASSERT_GE(system_.omsm.transition_count(), 2u);
  std::vector<std::size_t> usable;
  for (std::size_t t = 0; t < system_.omsm.transition_count(); ++t) {
    system_.omsm
        .transition(TransitionId{static_cast<TransitionId::value_type>(t)})
        .max_transition_time = 1.0;
    usable.push_back(t);
  }
  const MultiModeMapping m = example1_mapping_with_probabilities();
  Evaluation e = evaluate(m);
  for (const double v : e.transition_violations) ASSERT_EQ(v, 0.0);

  FitnessParams params;
  const double base = mapping_fitness(e, evaluator_, params);

  auto overshoot = [&](std::size_t t) {
    // Twice the limit: ratio exactly 2, violation = one limit.
    const double limit =
        system_.omsm
            .transition(TransitionId{static_cast<TransitionId::value_type>(t)})
            .max_transition_time;
    e.transition_times[t] = 2.0 * limit;
    e.transition_violations[t] = limit;
  };

  overshoot(usable[0]);
  const double one = mapping_fitness(e, evaluator_, params);
  EXPECT_DOUBLE_EQ(one, base * (params.transition_weight * 2.0));

  overshoot(usable[1]);
  const double two = mapping_fitness(e, evaluator_, params);
  // Pre-fix, w_R was applied once no matter how many transitions violated;
  // the product form squares it here.
  EXPECT_DOUBLE_EQ(
      two, base * (params.transition_weight * 2.0) *
               (params.transition_weight * 2.0));
  EXPECT_TRUE(std::isfinite(two));
  EXPECT_GT(two, one);
}

TEST(CandidateBetter, FeasibleBeatsInfeasible) {
  EXPECT_TRUE(candidate_better(0.0, 100.0, 5.0, 0.001));
  EXPECT_FALSE(candidate_better(5.0, 0.001, 0.0, 100.0));
}

TEST(CandidateBetter, FeasibleComparesByFitness) {
  EXPECT_TRUE(candidate_better(0.0, 1.0, 0.0, 2.0));
  EXPECT_FALSE(candidate_better(0.0, 2.0, 0.0, 1.0));
}

TEST(CandidateBetter, InfeasibleComparesByViolationFirst) {
  EXPECT_TRUE(candidate_better(1.0, 10.0, 2.0, 1.0));
  EXPECT_TRUE(candidate_better(1.0, 1.0, 1.0, 2.0));
}

}  // namespace
}  // namespace mmsyn
