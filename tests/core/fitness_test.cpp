#include "core/fitness.hpp"

#include <gtest/gtest.h>

#include "core/allocation_builder.hpp"
#include "tgff/motivational.hpp"

namespace mmsyn {
namespace {

/// Uses the Fig. 2 system (exact numbers) to validate the fitness pieces.
class FitnessTest : public ::testing::Test {
 protected:
  FitnessTest()
      : system_(make_motivational_example1()),
        evaluator_(system_, EvaluationOptions{}) {}

  Evaluation evaluate(const MultiModeMapping& m) const {
    return evaluator_.evaluate(m, build_core_allocation(system_, m));
  }

  static MultiModeMapping mapping(std::initializer_list<int> o1,
                                  std::initializer_list<int> o2) {
    MultiModeMapping m;
    m.modes.resize(2);
    for (int pe : o1) m.modes[0].task_to_pe.push_back(PeId{pe});
    for (int pe : o2) m.modes[1].task_to_pe.push_back(PeId{pe});
    return m;
  }

  System system_;
  Evaluator evaluator_;
};

TEST_F(FitnessTest, FeasibleFitnessEqualsWeightedPower) {
  const MultiModeMapping m = example1_mapping_with_probabilities();
  const Evaluation e = evaluate(m);
  const double f = mapping_fitness(e, evaluator_, FitnessParams{});
  EXPECT_NEAR(f, e.avg_power_weighted, 1e-12);
  EXPECT_DOUBLE_EQ(constraint_violation(e, evaluator_), 0.0);
}

TEST_F(FitnessTest, AreaViolationInflatesFitness) {
  // All six tasks in hardware: 1550 cells on a 600-cell ASIC.
  const MultiModeMapping m = mapping({1, 1, 1}, {1, 1, 1});
  const Evaluation e = evaluate(m);
  EXPECT_FALSE(e.area_feasible());
  const double f = mapping_fitness(e, evaluator_, FitnessParams{});
  EXPECT_GT(f, e.avg_power_weighted * 2.0);
  EXPECT_GT(constraint_violation(e, evaluator_), 0.0);
}

TEST_F(FitnessTest, AreaWeightControlsAggressiveness) {
  const MultiModeMapping m = mapping({1, 1, 1}, {1, 1, 1});
  const Evaluation e = evaluate(m);
  FitnessParams soft;
  soft.area_weight = 0.01;
  FitnessParams hard;
  hard.area_weight = 1.0;
  EXPECT_LT(mapping_fitness(e, evaluator_, soft),
            mapping_fitness(e, evaluator_, hard));
}

TEST_F(FitnessTest, TimingViolationInflatesFitness) {
  System tight = system_;
  tight.omsm.mode(ModeId{1}).period = 1e-3;  // chain needs ~80 ms in SW
  const Evaluator evaluator(tight, EvaluationOptions{});
  const MultiModeMapping m = mapping({0, 0, 0}, {0, 0, 0});
  const Evaluation e =
      evaluator.evaluate(m, build_core_allocation(tight, m));
  EXPECT_FALSE(e.timing_feasible());
  EXPECT_GT(mapping_fitness(e, evaluator, FitnessParams{}),
            e.avg_power_weighted);
  EXPECT_GT(constraint_violation(e, evaluator), 0.0);
}

TEST(CandidateBetter, FeasibleBeatsInfeasible) {
  EXPECT_TRUE(candidate_better(0.0, 100.0, 5.0, 0.001));
  EXPECT_FALSE(candidate_better(5.0, 0.001, 0.0, 100.0));
}

TEST(CandidateBetter, FeasibleComparesByFitness) {
  EXPECT_TRUE(candidate_better(0.0, 1.0, 0.0, 2.0));
  EXPECT_FALSE(candidate_better(0.0, 2.0, 0.0, 1.0));
}

TEST(CandidateBetter, InfeasibleComparesByViolationFirst) {
  EXPECT_TRUE(candidate_better(1.0, 10.0, 2.0, 1.0));
  EXPECT_TRUE(candidate_better(1.0, 1.0, 1.0, 2.0));
}

}  // namespace
}  // namespace mmsyn
