// Per-mode incremental-evaluation cache: the bitwise cached-vs-cold
// contract (property-tested over random mutation chains), the GA-level
// on/off result identity, hit-rate accounting, and FIFO bounding.
#include <gtest/gtest.h>

#include <string>

#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "core/allocation_builder.hpp"
#include "core/cosynth.hpp"
#include "core/genome.hpp"
#include "core/report.hpp"
#include "energy/evaluator.hpp"
#include "tgff/suites.hpp"

namespace mmsyn {
namespace {

/// Exact (bitwise) equality of two evaluations, schedules excluded.
void expect_evaluations_identical(const Evaluation& a, const Evaluation& b) {
  ASSERT_EQ(a.modes.size(), b.modes.size());
  for (std::size_t m = 0; m < a.modes.size(); ++m) {
    SCOPED_TRACE("mode " + std::to_string(m));
    EXPECT_EQ(a.modes[m].dyn_energy, b.modes[m].dyn_energy);
    EXPECT_EQ(a.modes[m].dyn_power, b.modes[m].dyn_power);
    EXPECT_EQ(a.modes[m].static_power, b.modes[m].static_power);
    EXPECT_EQ(a.modes[m].timing_violation, b.modes[m].timing_violation);
    EXPECT_EQ(a.modes[m].makespan, b.modes[m].makespan);
    EXPECT_EQ(a.modes[m].pe_active, b.modes[m].pe_active);
    EXPECT_EQ(a.modes[m].cl_active, b.modes[m].cl_active);
    EXPECT_EQ(a.modes[m].routable, b.modes[m].routable);
  }
  EXPECT_EQ(a.avg_power_true, b.avg_power_true);
  EXPECT_EQ(a.avg_power_weighted, b.avg_power_weighted);
  EXPECT_EQ(a.pe_used_area, b.pe_used_area);
  EXPECT_EQ(a.pe_area_violation, b.pe_area_violation);
  EXPECT_EQ(a.total_area_violation, b.total_area_violation);
  EXPECT_EQ(a.transition_times, b.transition_times);
  EXPECT_EQ(a.transition_violations, b.transition_violations);
  EXPECT_EQ(a.weighted_timing_violation, b.weighted_timing_violation);
}

/// Property: along a chain of random point mutations, every evaluation
/// through a (warm, shared) cache equals the cache-disabled evaluation
/// bitwise. Mutation chains are the GA's actual workload — consecutive
/// genomes share most mode slices, so the cache serves real hits.
void run_mutation_chain(const System& system, EvaluationOptions options,
                        std::uint64_t seed, int steps) {
  const Evaluator evaluator(system, std::move(options));
  const GenomeCodec codec(system);
  Rng rng(seed);
  ModeEvalCache cache;
  Genome genome = codec.random_genome(rng);
  for (int step = 0; step < steps; ++step) {
    const std::size_t g = rng.pick_index(codec.genome_length());
    genome[g] = static_cast<std::uint16_t>(
        rng.pick_index(codec.candidates(g).size()));
    const MultiModeMapping mapping = codec.decode(genome);
    const CoreAllocation cores = build_core_allocation(system, mapping, {});
    SCOPED_TRACE("step " + std::to_string(step));
    expect_evaluations_identical(evaluator.evaluate(mapping, cores),
                                 evaluator.evaluate(mapping, cores, &cache));
  }
  EXPECT_GT(cache.hits(), 0);
  EXPECT_EQ(cache.lookups(),
            static_cast<long>(system.omsm.mode_count()) * steps);
}

TEST(ModeCacheProperty, CachedEqualsColdOnMutationChains) {
  for (const int mul : {2, 4, 7}) {
    SCOPED_TRACE("mul" + std::to_string(mul));
    run_mutation_chain(make_mul(mul), EvaluationOptions{}, 101 + mul, 30);
  }
}

TEST(ModeCacheProperty, CachedEqualsColdWithDvs) {
  EvaluationOptions options;
  options.use_dvs = true;
  run_mutation_chain(make_mul(3), options, 17, 20);
}

TEST(ModeCacheProperty, CachedEqualsColdWithWeightOverride) {
  const System system = make_mul(2);
  EvaluationOptions options;
  options.weight_override =
      std::vector<double>(system.omsm.mode_count(), 1.0);
  run_mutation_chain(system, options, 29, 20);
}

TEST(ModeCache, ChangedModesNamesExactlyTheDifferingSlices) {
  const System system = make_mul(4);
  const GenomeCodec codec(system);
  Rng rng(5);
  const Genome a = codec.random_genome(rng);
  EXPECT_TRUE(codec.changed_modes(a, a).empty());
  Genome b = a;
  const std::size_t g = codec.genome_length() / 2;
  b[g] = static_cast<std::uint16_t>((b[g] + 1) %
                                    codec.candidates(g).size());
  const std::vector<ModeId> changed = codec.changed_modes(a, b);
  if (a[g] == b[g]) {
    EXPECT_TRUE(changed.empty());  // single-candidate gene wrapped around
  } else {
    ASSERT_EQ(changed.size(), 1u);
    EXPECT_EQ(changed[0], codec.mode_of_gene(g));
  }
}

TEST(ModeCache, FifoEvictionBoundsSize) {
  const System system = make_mul(3);
  const Evaluator evaluator(system, EvaluationOptions{});
  const GenomeCodec codec(system);
  Rng rng(7);
  ModeEvalCache cache(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    const Genome genome = codec.random_genome(rng);
    const MultiModeMapping mapping = codec.decode(genome);
    const CoreAllocation cores = build_core_allocation(system, mapping, {});
    (void)evaluator.evaluate(mapping, cores, &cache);
    EXPECT_LE(cache.size(), 4u);
  }
  EXPECT_EQ(cache.capacity(), 4u);
}

ModeEvalKey key_of(std::uint32_t i) {
  ModeEvalKey key;
  key.mode = i;
  return key;
}

TEST(ModeCache, DuplicateInsertAtCapacityEvictsNothing) {
  // Regression: inserting an already-present key while the cache is full
  // used to run the eviction loop first — evicting the FIFO head — and
  // then fail the emplace, losing an innocent entry and shrinking the
  // cache. A duplicate insert must be a complete no-op.
  ModeEvalCache cache(/*capacity=*/2);
  const ModeEvaluation value{};
  cache.insert(key_of(0), value);
  cache.insert(key_of(1), value);
  cache.insert(key_of(0), value);  // duplicate at capacity
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.find(key_of(0)), nullptr);
  EXPECT_NE(cache.find(key_of(1)), nullptr);
  // FIFO order is also untouched: the next insert evicts key 0, not key 1.
  cache.insert(key_of(2), value);
  EXPECT_EQ(cache.find(key_of(0)), nullptr);
  EXPECT_NE(cache.find(key_of(1)), nullptr);
  EXPECT_NE(cache.find(key_of(2)), nullptr);

  // Same contract on the schedule tier.
  const ModeSchedule sched{};
  cache.insert_schedule(key_of(0), sched);
  cache.insert_schedule(key_of(1), sched);
  cache.insert_schedule(key_of(0), sched);
  EXPECT_EQ(cache.schedule_size(), 2u);
  EXPECT_NE(cache.find_schedule(key_of(0)), nullptr);
  EXPECT_NE(cache.find_schedule(key_of(1)), nullptr);
  cache.insert_schedule(key_of(2), sched);
  EXPECT_EQ(cache.find_schedule(key_of(0)), nullptr);
  EXPECT_NE(cache.find_schedule(key_of(1)), nullptr);
}

std::vector<std::uint32_t> entry_order(const ModeEvalCache& cache) {
  std::vector<std::uint32_t> order;
  for (const auto& [key, value] : cache.entries()) order.push_back(key.mode);
  return order;
}

std::vector<std::uint32_t> schedule_order(const ModeEvalCache& cache) {
  std::vector<std::uint32_t> order;
  for (const auto& [key, value] : cache.schedule_entries())
    order.push_back(key.mode);
  return order;
}

TEST(ModeCacheProperty, RestoreRoundTripsBothTiersOrderUnderPressure) {
  // Property: after any interleaving of inserts — duplicates included —
  // under constant eviction pressure, checkpointing both tiers
  // (entries/schedule_entries) and restoring them reproduces the exact
  // FIFO order, so a resumed run evicts in the same sequence the
  // uninterrupted run would have.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    ModeEvalCache cache(/*capacity=*/4);
    auto random_op = [&](ModeEvalCache& c) {
      const auto key = key_of(
          static_cast<std::uint32_t>(rng.pick_index(8)));  // dup-heavy
      if (rng.pick_index(2) == 0) c.insert(key, ModeEvaluation{});
      else c.insert_schedule(key, ModeSchedule{});
    };
    for (int i = 0; i < 40; ++i) random_op(cache);

    ModeEvalCache clone(/*capacity=*/4);
    clone.restore(cache.entries(), cache.hits(), cache.lookups());
    clone.restore_schedules(cache.schedule_entries(), cache.schedule_hits(),
                            cache.schedule_lookups());
    EXPECT_EQ(entry_order(clone), entry_order(cache));
    EXPECT_EQ(schedule_order(clone), schedule_order(cache));

    // The restored clone must keep evicting in lock-step with the
    // original as both receive the same further inserts.
    const Rng saved = rng;
    for (int i = 0; i < 20; ++i) random_op(cache);
    rng = saved;
    for (int i = 0; i < 20; ++i) random_op(clone);
    EXPECT_EQ(entry_order(clone), entry_order(cache));
    EXPECT_EQ(schedule_order(clone), schedule_order(cache));
  }
}

TEST(ModeCache, EntriesRestoreRoundTripPreservesHits) {
  const System system = make_mul(2);
  const Evaluator evaluator(system, EvaluationOptions{});
  const GenomeCodec codec(system);
  Rng rng(13);
  ModeEvalCache cache;
  const Genome genome = codec.random_genome(rng);
  const MultiModeMapping mapping = codec.decode(genome);
  const CoreAllocation cores = build_core_allocation(system, mapping, {});
  const Evaluation first = evaluator.evaluate(mapping, cores, &cache);

  ModeEvalCache clone;
  clone.restore(cache.entries(), cache.hits(), cache.lookups());
  EXPECT_EQ(clone.size(), cache.size());
  EXPECT_EQ(clone.hits(), cache.hits());
  EXPECT_EQ(clone.lookups(), cache.lookups());
  // The clone serves every mode from the restored entries.
  const long lookups_before = clone.lookups();
  expect_evaluations_identical(first,
                               evaluator.evaluate(mapping, cores, &clone));
  EXPECT_EQ(clone.hits() - cache.hits(),
            clone.lookups() - lookups_before);
}

// ---- GA-level contract: the cache changes wall clock, never results. ---

GaOptions fast_ga() {
  GaOptions options;
  options.population_size = 24;
  options.max_generations = 30;
  options.stagnation_limit = 12;
  return options;
}

TEST(ModeCache, QuarantinesCorruptedEntryAndRecomputes) {
  // Self-healing contract: an entry poisoned after insertion (here via
  // the cache.insert corrupt failpoint) fails its digest check on the
  // next lookup, is quarantined, and the caller recomputes — the final
  // evaluation stays bitwise-identical to a cold one.
  const System system = make_mul(3);
  const Evaluator evaluator(system, EvaluationOptions{});
  const GenomeCodec codec(system);
  Rng rng(11);
  const Genome genome = codec.random_genome(rng);
  const MultiModeMapping mapping = codec.decode(genome);
  const CoreAllocation cores = build_core_allocation(system, mapping, {});
  const Evaluation cold = evaluator.evaluate(mapping, cores);

  ModeEvalCache cache;
  failpoint::arm("cache.insert=corrupt");  // poison every stored copy
  (void)evaluator.evaluate(mapping, cores, &cache);
  failpoint::disarm();
  EXPECT_GT(cache.size(), 0u);

  // Every whole-mode lookup detects the poison, evicts, and misses.
  const std::size_t poisoned = cache.size();
  Evaluation healed = evaluator.evaluate(mapping, cores, &cache);
  EXPECT_EQ(cache.quarantined(), static_cast<long>(poisoned));
  expect_evaluations_identical(healed, cold);

  // The recomputed entries are clean: the next pass is pure hits.
  const long hits_before = cache.hits();
  healed = evaluator.evaluate(mapping, cores, &cache);
  EXPECT_EQ(cache.quarantined(), static_cast<long>(poisoned));
  EXPECT_EQ(cache.hits() - hits_before,
            static_cast<long>(system.omsm.mode_count()));
  expect_evaluations_identical(healed, cold);
}

TEST(ModeCache, QuarantinesCorruptedScheduleEntry) {
  const System system = make_mul(3);
  EvaluationOptions options;
  options.keep_schedules = true;  // exercises the schedule-store tier
  const Evaluator evaluator(system, options);
  const GenomeCodec codec(system);
  Rng rng(13);
  const Genome genome = codec.random_genome(rng);
  const MultiModeMapping mapping = codec.decode(genome);
  const CoreAllocation cores = build_core_allocation(system, mapping, {});
  const Evaluation cold = evaluator.evaluate(mapping, cores);

  ModeEvalCache cache;
  failpoint::arm("cache.insert=corrupt");
  (void)evaluator.evaluate(mapping, cores, &cache);
  failpoint::disarm();
  EXPECT_GT(cache.schedule_size(), 0u);

  const Evaluation healed = evaluator.evaluate(mapping, cores, &cache);
  EXPECT_GT(cache.schedule_quarantined(), 0);
  expect_evaluations_identical(healed, cold);
}

TEST(ModeCache, DroppedInsertIsJustAMissLater) {
  const System system = make_mul(3);
  const Evaluator evaluator(system, EvaluationOptions{});
  const GenomeCodec codec(system);
  Rng rng(17);
  const Genome genome = codec.random_genome(rng);
  const MultiModeMapping mapping = codec.decode(genome);
  const CoreAllocation cores = build_core_allocation(system, mapping, {});
  const Evaluation cold = evaluator.evaluate(mapping, cores);

  ModeEvalCache cache;
  failpoint::arm("cache.insert=fail");  // every insert is dropped
  (void)evaluator.evaluate(mapping, cores, &cache);
  failpoint::disarm();
  EXPECT_EQ(cache.size(), 0u);

  const Evaluation recomputed = evaluator.evaluate(mapping, cores, &cache);
  expect_evaluations_identical(recomputed, cold);
  EXPECT_GT(cache.size(), 0u);  // disarmed inserts land normally
}

TEST(ModeCacheGa, ResultsAndReportIdenticalOnOrOff) {
  const System system = make_mul(4);
  SynthesisOptions options;
  options.ga = fast_ga();
  options.seed = 3;
  options.ga.memoize_mode_evaluations = false;
  const SynthesisResult off = synthesize(system, options);
  options.ga.memoize_mode_evaluations = true;
  const SynthesisResult on = synthesize(system, options);

  EXPECT_EQ(off.fitness, on.fitness);
  EXPECT_EQ(off.generations, on.generations);
  EXPECT_EQ(off.evaluations, on.evaluations);
  EXPECT_EQ(off.cache_hits, on.cache_hits);
  EXPECT_EQ(off.evaluation.avg_power_true, on.evaluation.avg_power_true);
  for (std::size_t m = 0; m < off.mapping.modes.size(); ++m)
    EXPECT_EQ(off.mapping.modes[m].task_to_pe, on.mapping.modes[m].task_to_pe);
  // Only the mode-cache counters may differ — and the report omits them,
  // so the rendered reports are byte-identical.
  EXPECT_EQ(off.mode_cache_lookups, 0);
  EXPECT_EQ(off.mode_cache_hits, 0);
  EXPECT_GT(on.mode_cache_lookups, 0);
  EXPECT_GT(on.mode_cache_hits, 0);
  ReportOptions report;
  report.include_timing = false;
  EXPECT_EQ(implementation_report(system, off, report),
            implementation_report(system, on, report));
}

TEST(ModeCacheGa, HitAccountingIsConsistent) {
  const System system = make_mul(4);
  SynthesisOptions options;
  options.ga = fast_ga();
  const SynthesisResult result = synthesize(system, options);
  // Every lookup either hits or schedules exactly one mode inner loop,
  // and there is one lookup per (unique genome job, mode).
  EXPECT_GE(result.mode_cache_lookups, result.mode_cache_hits);
  EXPECT_EQ(result.mode_cache_lookups,
            result.evaluations *
                static_cast<long>(system.omsm.mode_count()));
}

TEST(ModeCacheGa, ParallelEvaluationStaysBitIdentical) {
  const System system = make_mul(5);
  SynthesisOptions options;
  options.ga = fast_ga();
  options.seed = 19;
  options.ga.num_threads = 1;
  const SynthesisResult serial = synthesize(system, options);
  options.ga.num_threads = 4;
  const SynthesisResult parallel = synthesize(system, options);
  EXPECT_EQ(serial.fitness, parallel.fitness);
  EXPECT_EQ(serial.evaluations, parallel.evaluations);
  EXPECT_EQ(serial.mode_cache_hits, parallel.mode_cache_hits);
  EXPECT_EQ(serial.mode_cache_lookups, parallel.mode_cache_lookups);
  EXPECT_EQ(serial.evaluation.avg_power_true,
            parallel.evaluation.avg_power_true);
}

TEST(ModeCacheGa, TinyCapacityChangesCostNotResults) {
  const System system = make_mul(3);
  SynthesisOptions options;
  options.ga = fast_ga();
  options.seed = 9;
  const SynthesisResult roomy = synthesize(system, options);
  options.ga.mode_cache_capacity = 4;  // constant eviction
  const SynthesisResult tiny = synthesize(system, options);
  EXPECT_EQ(tiny.fitness, roomy.fitness);
  EXPECT_EQ(tiny.generations, roomy.generations);
  EXPECT_EQ(tiny.evaluation.avg_power_true, roomy.evaluation.avg_power_true);
  // Eviction can only lose hits, never change what a hit returns.
  EXPECT_LE(tiny.mode_cache_hits, roomy.mode_cache_hits);
}

}  // namespace
}  // namespace mmsyn
