// GA-level random-stream stability (DESIGN.md §12): the counter-based
// engine yields bit-identical populations and results for any thread
// count, the legacy engine stays selectable for reproducing historic
// runs, and the engine choice is part of the checkpoint fingerprint.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/rng.hpp"
#include "core/cosynth.hpp"
#include "core/report.hpp"
#include "core/run_control.hpp"
#include "tgff/suites.hpp"

namespace mmsyn {
namespace {

GaOptions fast_ga() {
  GaOptions options;
  options.population_size = 24;
  options.max_generations = 30;
  options.stagnation_limit = 12;
  return options;
}

void expect_results_identical(const SynthesisResult& a,
                              const SynthesisResult& b) {
  EXPECT_EQ(a.fitness, b.fitness);
  EXPECT_EQ(a.generations, b.generations);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.evaluation.avg_power_true, b.evaluation.avg_power_true);
  ASSERT_EQ(a.mapping.modes.size(), b.mapping.modes.size());
  for (std::size_t m = 0; m < a.mapping.modes.size(); ++m) {
    SCOPED_TRACE("mode " + std::to_string(m));
    EXPECT_EQ(a.mapping.modes[m].task_to_pe, b.mapping.modes[m].task_to_pe);
  }
}

// The headline counter-engine property: the whole GA trajectory — not
// just the final fitness — is a pure function of the seed, so runs under
// 1, 4 and 16 evaluation threads match bit for bit.
TEST(RngStreams, ThreefryTrajectoryIdenticalAcrossThreadCounts) {
  const System system = make_mul(4);
  SynthesisOptions options;
  options.ga = fast_ga();
  options.ga.rng = RngKind::kThreefry;
  options.seed = 21;

  options.ga.num_threads = 1;
  const SynthesisResult one = synthesize(system, options);
  options.ga.num_threads = 4;
  const SynthesisResult four = synthesize(system, options);
  options.ga.num_threads = 16;
  const SynthesisResult sixteen = synthesize(system, options);

  expect_results_identical(one, four);
  expect_results_identical(one, sixteen);
}

// The compatibility flag keeps the historic engine fully functional: the
// legacy xoshiro runs are deterministic and thread-stable too (they
// always were — the RNG never runs inside the parallel region).
TEST(RngStreams, LegacyEngineStaysDeterministicAndThreadStable) {
  const System system = make_mul(4);
  SynthesisOptions options;
  options.ga = fast_ga();
  options.ga.rng = RngKind::kXoshiro;
  options.seed = 21;

  options.ga.num_threads = 1;
  const SynthesisResult first = synthesize(system, options);
  const SynthesisResult again = synthesize(system, options);
  options.ga.num_threads = 4;
  const SynthesisResult parallel = synthesize(system, options);

  expect_results_identical(first, again);
  expect_results_identical(first, parallel);
}

// Switching engines switches streams: a checkpoint written under one
// engine must not silently resume under the other.
TEST(RngStreams, EngineIsPartOfCheckpointFingerprint) {
  const System system = make_mul(4);
  const std::string path =
      std::string(::testing::TempDir()) + "mmsyn_rng_engine.ckpt";
  SynthesisOptions options;
  options.ga = fast_ga();
  options.ga.rng = RngKind::kThreefry;
  options.seed = 5;

  RunControl writer;
  writer.checkpoint_path = path;
  writer.checkpoint_every_generations = 2;
  (void)synthesize(system, options, &writer);

  RunControl resumer;
  resumer.resume_path = path;
  options.ga.rng = RngKind::kXoshiro;
  EXPECT_THROW((void)synthesize(system, options, &resumer), CheckpointError);

  // Same engine resumes fine (and lands on the uninterrupted result).
  options.ga.rng = RngKind::kThreefry;
  RunControl resumer2;
  resumer2.resume_path = path;
  const SynthesisResult resumed = synthesize(system, options, &resumer2);
  const SynthesisResult full = synthesize(system, options);
  expect_results_identical(resumed, full);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mmsyn
