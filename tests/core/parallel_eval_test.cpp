// Determinism contract of parallel fitness evaluation, the bounded
// memoisation cache, and the offspring/immigrant replacement fixes.
#include <gtest/gtest.h>

#include "core/cosynth.hpp"
#include "core/ga.hpp"
#include "tgff/suites.hpp"

namespace mmsyn {
namespace {

GaOptions fast_ga() {
  GaOptions options;
  options.population_size = 24;
  options.max_generations = 30;
  options.stagnation_limit = 12;
  return options;
}

/// Bit-exact equality of everything a SynthesisResult determines.
void expect_identical(const SynthesisResult& a, const SynthesisResult& b) {
  EXPECT_EQ(a.fitness, b.fitness);
  EXPECT_EQ(a.generations, b.generations);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_lookups, b.cache_lookups);
  EXPECT_EQ(a.mode_cache_hits, b.mode_cache_hits);
  EXPECT_EQ(a.mode_cache_lookups, b.mode_cache_lookups);
  EXPECT_EQ(a.evaluation.avg_power_true, b.evaluation.avg_power_true);
  EXPECT_EQ(a.evaluation.avg_power_weighted, b.evaluation.avg_power_weighted);
  ASSERT_EQ(a.mapping.modes.size(), b.mapping.modes.size());
  for (std::size_t m = 0; m < a.mapping.modes.size(); ++m)
    EXPECT_EQ(a.mapping.modes[m].task_to_pe, b.mapping.modes[m].task_to_pe);
}

TEST(ParallelEvaluation, BitIdenticalToSerialOnSuites) {
  for (const int mul : {3, 6}) {
    const System system = make_mul(mul);
    SynthesisOptions options;
    options.ga = fast_ga();
    options.seed = 11;
    options.ga.num_threads = 1;
    const SynthesisResult serial = synthesize(system, options);
    options.ga.num_threads = 4;
    const SynthesisResult parallel = synthesize(system, options);
    SCOPED_TRACE("mul" + std::to_string(mul));
    expect_identical(serial, parallel);
  }
}

TEST(ParallelEvaluation, BitIdenticalWithDvs) {
  const System system = make_mul(3);
  SynthesisOptions options;
  options.ga = fast_ga();
  options.use_dvs = true;
  options.seed = 5;
  options.ga.num_threads = 1;
  const SynthesisResult serial = synthesize(system, options);
  options.ga.num_threads = 0;  // all hardware threads
  const SynthesisResult parallel = synthesize(system, options);
  expect_identical(serial, parallel);
}

TEST(ParallelEvaluation, BitIdenticalWithoutMemoization) {
  const System system = make_mul(6);
  SynthesisOptions options;
  options.ga = fast_ga();
  options.ga.memoize_evaluations = false;
  options.seed = 7;
  options.ga.num_threads = 1;
  const SynthesisResult serial = synthesize(system, options);
  options.ga.num_threads = 3;
  const SynthesisResult parallel = synthesize(system, options);
  expect_identical(serial, parallel);
  EXPECT_EQ(serial.cache_lookups, 0);
  EXPECT_EQ(serial.cache_hits, 0);
}

TEST(MemoCache, HitRateAccountingIsConsistent) {
  const System system = make_mul(3);
  SynthesisOptions options;
  options.ga = fast_ga();
  const SynthesisResult result = synthesize(system, options);
  EXPECT_GT(result.cache_lookups, 0);
  EXPECT_GE(result.cache_hits, 0);
  // Every lookup either hits or triggers exactly one evaluation.
  EXPECT_EQ(result.cache_hits + result.evaluations, result.cache_lookups);
}

TEST(MemoCache, ProgressExposesHitCounters) {
  const System system = make_mul(3);
  const Evaluator evaluator(system, EvaluationOptions{});
  MappingGa ga(system, evaluator, {}, {}, fast_ga(), 2);
  long last_lookups = -1;
  (void)ga.run([&](const GaProgress& p) {
    EXPECT_GE(p.cache_lookups, p.cache_hits);
    EXPECT_GE(p.cache_lookups, last_lookups);
    last_lookups = p.cache_lookups;
  });
  EXPECT_GT(last_lookups, 0);
}

TEST(MemoCache, BoundedCapacityChangesCostNotResults) {
  const System system = make_mul(3);
  SynthesisOptions options;
  options.ga = fast_ga();
  options.seed = 9;
  options.ga.memoize_cache_capacity = 0;  // unbounded
  const SynthesisResult unbounded = synthesize(system, options);
  options.ga.memoize_cache_capacity = 16;  // tiny: constant eviction
  const SynthesisResult bounded = synthesize(system, options);
  // Eviction only forces recomputation; the search trajectory (and hence
  // the result) is unchanged.
  EXPECT_EQ(bounded.fitness, unbounded.fitness);
  EXPECT_EQ(bounded.generations, unbounded.generations);
  EXPECT_EQ(bounded.evaluation.avg_power_true,
            unbounded.evaluation.avg_power_true);
  EXPECT_GE(bounded.evaluations, unbounded.evaluations);
}

// ---- Offspring replacement clamp (elite-clobbering regression). --------

TEST(GaReplacement, OffspringCountClampedToNonEliteSlots) {
  // Pre-fix: replacement_fraction = 1.0 yielded 24 offspring for a
  // 24-strong population and overwrote the elite (including slot 0).
  EXPECT_EQ(ga_detail::clamped_offspring_count(1.0, 24, 2), 22);
  EXPECT_EQ(ga_detail::clamped_offspring_count(1.0, 10, 2), 8);
  EXPECT_EQ(ga_detail::clamped_offspring_count(0.5, 24, 2), 12);  // unchanged
  EXPECT_EQ(ga_detail::clamped_offspring_count(0.5, 64, 2), 32);  // default
  // Degenerate: everything elite -> no offspring at all.
  EXPECT_EQ(ga_detail::clamped_offspring_count(0.5, 4, 4), 0);
}

TEST(GaReplacement, ImmigrantSlotsAreSignedAndSkipCleanly) {
  // Pre-fix this arithmetic ran in std::size_t and relied on an
  // implementation-defined int round-trip of a huge value to stop.
  EXPECT_EQ(ga_detail::immigrant_slot(10, 8, 0), 1);
  EXPECT_EQ(ga_detail::immigrant_slot(10, 10, 0), -1);
  EXPECT_EQ(ga_detail::immigrant_slot(10, 10, 5), -6);
  EXPECT_EQ(ga_detail::immigrant_slot(64, 32, 4), 27);
}

TEST(GaReplacement, ImmigrantCountPinnedBehaviour) {
  // Truncation, capped by the free-slot walk (slots 3-i, elite 2 -> 2).
  EXPECT_EQ(ga_detail::immigrant_count(0.5, 10, 6, 2), 2);
  // Small population: trunc(0.05 * 10) == 0, but a nonzero fraction must
  // inject at least one immigrant when a free slot exists.
  EXPECT_EQ(ga_detail::immigrant_count(0.05, 10, 4, 2), 1);
  // Zero fraction stays zero — the >= 1 guarantee is only for nonzero.
  EXPECT_EQ(ga_detail::immigrant_count(0.0, 10, 4, 2), 0);
  // No free slots (offspring reach down to the elite boundary): zero even
  // with a nonzero fraction.
  EXPECT_EQ(ga_detail::immigrant_count(0.5, 10, 8, 2), 0);
  // Default-config value is unchanged by the fix: trunc(0.08 * 64) == 5.
  EXPECT_EQ(ga_detail::immigrant_count(0.08, 64, 32, 2), 5);
}

/// Options that make the per-generation evaluation count exactly
/// predictable: no memoisation, no improvement operators, no polish.
GaOptions counting_ga(int population, int generations) {
  GaOptions options;
  options.population_size = population;
  options.max_generations = generations;
  options.stagnation_limit = generations + 100;
  options.memoize_evaluations = false;
  options.shutdown_improvement_rate = 0.0;
  options.infeasibility_trigger = 1'000'000;
  options.final_hill_climb_passes = 0;
  options.final_two_opt_max_genes = 0;
  options.elite_count = 2;
  return options;
}

TEST(GaReplacement, FullReplacementPreservesElite) {
  // population 10, elite 2, replacement_fraction 1.0: offspring clamp to
  // 8, immigrants find no free slot. Evaluations are then exactly
  // 10 (generation 0) + 8 per later generation. Pre-fix the unclamped 10
  // offspring clobbered the elite and this count was 10 + 3*10.
  const System system = make_mul(3);
  GaOptions options = counting_ga(10, 4);
  options.replacement_fraction = 1.0;
  options.immigrant_fraction = 0.5;
  const Evaluator evaluator(system, EvaluationOptions{});
  MappingGa ga(system, evaluator, {}, {}, options, 21);
  const SynthesisResult result = ga.run();
  EXPECT_EQ(result.generations, 4);
  EXPECT_EQ(result.evaluations, 10 + 3 * 8);
}

TEST(GaReplacement, OverflowingImmigrantsSkipWithoutWrap) {
  // offspring (6) + immigrants (5) > population (10) - elite (2): slots 3
  // and 2 are free for two immigrants, the rest must stop cleanly. Slot 2
  // is the first non-elite slot (elites occupy [0, elite)); the pre-fix
  // `slot <= elite` comparison wrongly treated it as protected and this
  // count was 10 + 3*7. Evaluations: 10 (generation 0) + (6 offspring +
  // 2 immigrants) per later generation.
  const System system = make_mul(3);
  GaOptions options = counting_ga(10, 4);
  options.replacement_fraction = 0.6;
  options.immigrant_fraction = 0.5;
  const Evaluator evaluator(system, EvaluationOptions{});
  MappingGa ga(system, evaluator, {}, {}, options, 21);
  const SynthesisResult result = ga.run();
  EXPECT_EQ(result.evaluations, 10 + 3 * 8);
}

TEST(GaReplacement, FullReplacementStaysDeterministicInParallel) {
  const System system = make_mul(3);
  SynthesisOptions options;
  options.ga = fast_ga();
  options.ga.replacement_fraction = 1.0;
  options.ga.immigrant_fraction = 0.4;
  options.seed = 13;
  options.ga.num_threads = 1;
  const SynthesisResult serial = synthesize(system, options);
  options.ga.num_threads = 4;
  const SynthesisResult parallel = synthesize(system, options);
  expect_identical(serial, parallel);
}

}  // namespace
}  // namespace mmsyn
