#include "core/ga.hpp"

#include <gtest/gtest.h>

#include "core/cosynth.hpp"
#include "tgff/motivational.hpp"
#include "tgff/suites.hpp"

namespace mmsyn {
namespace {

GaOptions fast_ga() {
  GaOptions options;
  options.population_size = 24;
  options.max_generations = 60;
  options.stagnation_limit = 20;
  return options;
}

TEST(MappingGa, FindsExampleOneOptimumWithProbabilities) {
  const System system = make_motivational_example1();
  const Evaluator evaluator(system, EvaluationOptions{});
  MappingGa ga(system, evaluator, {}, {}, fast_ga(), /*seed=*/1);
  const SynthesisResult result = ga.run();
  // 2^6 search space: the GA must hit the exact optimum (Fig. 2c).
  EXPECT_NEAR(result.evaluation.avg_power_true * 1e3, 15.7423, 1e-3);
  EXPECT_TRUE(result.evaluation.feasible());
}

TEST(MappingGa, FindsExampleOneOptimumWithoutProbabilities) {
  const System system = make_motivational_example1();
  EvaluationOptions options;
  options.weight_override = {1.0, 1.0};
  const Evaluator evaluator(system, options);
  MappingGa ga(system, evaluator, {}, {}, fast_ga(), /*seed=*/1);
  const SynthesisResult result = ga.run();
  EXPECT_NEAR(result.evaluation.avg_power_true * 1e3, 26.7158, 1e-3);
}

TEST(MappingGa, ObserverSeesMonotoneBest) {
  const System system = make_mul(9);
  const Evaluator evaluator(system, EvaluationOptions{});
  MappingGa ga(system, evaluator, {}, {}, fast_ga(), 7);
  double last_best = std::numeric_limits<double>::infinity();
  int calls = 0;
  (void)ga.run([&](const GaProgress& p) {
    EXPECT_LE(p.best_fitness, last_best * (1 + 1e-9));
    last_best = p.best_fitness;
    EXPECT_EQ(p.generation, calls);
    ++calls;
  });
  EXPECT_GT(calls, 1);
}

TEST(MappingGa, DeterministicForEqualSeeds) {
  const System system = make_mul(9);
  const Evaluator evaluator(system, EvaluationOptions{});
  MappingGa ga1(system, evaluator, {}, {}, fast_ga(), 42);
  MappingGa ga2(system, evaluator, {}, {}, fast_ga(), 42);
  const SynthesisResult r1 = ga1.run();
  const SynthesisResult r2 = ga2.run();
  EXPECT_EQ(r1.fitness, r2.fitness);
  EXPECT_EQ(r1.evaluations, r2.evaluations);
  for (std::size_t m = 0; m < r1.mapping.modes.size(); ++m)
    EXPECT_EQ(r1.mapping.modes[m].task_to_pe, r2.mapping.modes[m].task_to_pe);
}

TEST(MappingGa, SeedsAreWellFormedAndDistinct) {
  const System system = make_mul(6);
  const Evaluator evaluator(system, EvaluationOptions{});
  MappingGa ga(system, evaluator, {}, {}, fast_ga(), 1);
  const Genome knapsack = ga.knapsack_seed_genome();
  const Genome software = ga.software_seed_genome();
  const GenomeCodec& codec = ga.codec();
  EXPECT_TRUE(mapping_is_well_formed(codec.decode(knapsack), system.omsm,
                                     system.arch, system.tech));
  EXPECT_TRUE(mapping_is_well_formed(codec.decode(software), system.omsm,
                                     system.arch, system.tech));
  EXPECT_NE(knapsack, software);
  // The software seed never touches hardware.
  for (std::size_t g = 0; g < codec.genome_length(); ++g)
    EXPECT_TRUE(
        is_software(system.arch.pe(codec.pe_at(software, g)).kind));
}

TEST(MappingGa, KnapsackSeedRespectsWeights) {
  const System system = make_mul(6);
  const Evaluator evaluator(system, EvaluationOptions{});
  MappingGa ga(system, evaluator, {}, {}, fast_ga(), 1);
  const Genome with_psi = ga.knapsack_seed_genome(system.omsm.probabilities());
  const Genome uniform = ga.knapsack_seed_genome(
      std::vector<double>(system.omsm.mode_count(), 1.0));
  // mul6 is calibrated to have probability head-room: the seeds differ.
  EXPECT_NE(with_psi, uniform);
}

TEST(MappingGa, ResultIsAtLeastAsGoodAsItsSeeds) {
  const System system = make_mul(9);
  const Evaluator evaluator(system, EvaluationOptions{});
  MappingGa ga(system, evaluator, {}, {}, fast_ga(), 3);
  MappingGa probe(system, evaluator, {}, {}, fast_ga(), 3);
  const GenomeCodec& codec = probe.codec();
  auto fitness_of = [&](const Genome& g) {
    const MultiModeMapping m = codec.decode(g);
    const CoreAllocation cores = build_core_allocation(system, m);
    const Evaluation e = evaluator.evaluate(m, cores);
    return mapping_fitness(e, evaluator, FitnessParams{});
  };
  const double seed_fitness = std::min(
      fitness_of(probe.knapsack_seed_genome()),
      fitness_of(probe.software_seed_genome()));
  const SynthesisResult result = ga.run();
  EXPECT_LE(result.fitness, seed_fitness * (1 + 1e-9));
}

TEST(Synthesize, ProbabilityAwareNeverWorseOnCalibratedInstance) {
  const System system = make_mul(9);
  SynthesisOptions options;
  options.ga = fast_ga();
  options.seed = 5;
  options.consider_probabilities = false;
  const SynthesisResult base = synthesize(system, options);
  options.consider_probabilities = true;
  const SynthesisResult prop = synthesize(system, options);
  EXPECT_LE(prop.evaluation.avg_power_true,
            base.evaluation.avg_power_true * 1.02);
}

TEST(ExhaustiveSearch, MatchesGaOnTinySystem) {
  const System system = make_motivational_example1();
  SynthesisOptions options;
  options.ga = fast_ga();
  const SynthesisResult exact = exhaustive_search(system, options);
  const SynthesisResult ga = synthesize(system, options);
  EXPECT_NEAR(exact.evaluation.avg_power_true,
              ga.evaluation.avg_power_true, 1e-12);
  EXPECT_EQ(exact.evaluations, 64);
}

TEST(ExhaustiveSearch, RejectsHugeSpaces) {
  const System system = make_mul(1);
  SynthesisOptions options;
  // Still catchable as the old generic type...
  EXPECT_THROW((void)exhaustive_search(system, options, 1000),
               std::invalid_argument);
  // ...but the typed error carries the bound that was exceeded.
  try {
    (void)exhaustive_search(system, options, 1000);
    FAIL() << "expected ExhaustiveOverflow";
  } catch (const ExhaustiveOverflow& e) {
    EXPECT_EQ(e.budget(), 1000u);
    EXPECT_GT(e.space_at_least(), e.budget());
    EXPECT_NE(std::string(e.what()).find("1000"), std::string::npos);
  }
}

}  // namespace
}  // namespace mmsyn
