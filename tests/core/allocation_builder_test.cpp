#include "core/allocation_builder.hpp"

#include <gtest/gtest.h>

#include "model/system.hpp"

namespace mmsyn {
namespace {

/// Fixture: GPP + ASIC + FPGA; one type everywhere; two modes.
class AllocationBuilderTest : public ::testing::Test {
 protected:
  AllocationBuilderTest() {
    Pe gpp;
    gpp.name = "GPP";
    sw_ = system_.arch.add_pe(gpp);
    Pe asic;
    asic.name = "ASIC";
    asic.kind = PeKind::kAsic;
    asic.area_capacity = 1000.0;
    asic_ = system_.arch.add_pe(asic);
    Pe fpga;
    fpga.name = "FPGA";
    fpga.kind = PeKind::kFpga;
    fpga.area_capacity = 1000.0;
    fpga.reconfig_bandwidth = 1e5;
    fpga_ = system_.arch.add_pe(fpga);
    Cl bus;
    bus.attached = {sw_, asic_, fpga_};
    system_.arch.add_cl(bus);

    type_ = system_.tech.add_type("T");
    system_.tech.set_implementation(type_, sw_, {10e-3, 0.1, 0.0});
    system_.tech.set_implementation(type_, asic_, {1e-3, 1e-3, 300.0});
    system_.tech.set_implementation(type_, fpga_, {1e-3, 1e-3, 300.0});
    other_ = system_.tech.add_type("U");
    system_.tech.set_implementation(other_, sw_, {10e-3, 0.1, 0.0});
    system_.tech.set_implementation(other_, asic_, {1e-3, 1e-3, 300.0});
  }

  /// One mode with `n` independent tasks of type_, one with a single task.
  void build_modes(int parallel_tasks) {
    Mode a;
    a.name = "A";
    a.probability = 0.5;
    a.period = 0.1;
    for (int i = 0; i < parallel_tasks; ++i)
      a.graph.add_task("p" + std::to_string(i), type_);
    system_.omsm.add_mode(std::move(a));
    Mode b;
    b.name = "B";
    b.probability = 0.5;
    b.period = 0.1;
    b.graph.add_task("q", other_);
    system_.omsm.add_mode(std::move(b));
  }

  System system_;
  PeId sw_, asic_, fpga_;
  TaskTypeId type_, other_;
};

TEST_F(AllocationBuilderTest, SoftwareMappingNeedsNoCores) {
  build_modes(2);
  MultiModeMapping m;
  m.modes.resize(2);
  m.modes[0].task_to_pe = {sw_, sw_};
  m.modes[1].task_to_pe = {sw_};
  const CoreAllocation alloc = build_core_allocation(system_, m);
  for (const auto& mode_sets : alloc.per_mode)
    for (const CoreSet& set : mode_sets) EXPECT_TRUE(set.empty());
}

TEST_F(AllocationBuilderTest, HardwareTypeGetsAtLeastOneCore) {
  build_modes(1);
  MultiModeMapping m;
  m.modes.resize(2);
  m.modes[0].task_to_pe = {asic_};
  m.modes[1].task_to_pe = {sw_};
  const CoreAllocation alloc = build_core_allocation(system_, m);
  EXPECT_EQ(alloc.cores(ModeId{0}, asic_).count_of(type_), 1);
}

TEST_F(AllocationBuilderTest, ParallelLowMobilityTasksGetExtraCores) {
  build_modes(3);
  // Tight period so the three parallel tasks have near-zero mobility.
  system_.omsm.mode(ModeId{0}).period = 1.1e-3;
  MultiModeMapping m;
  m.modes.resize(2);
  m.modes[0].task_to_pe = {asic_, asic_, asic_};
  m.modes[1].task_to_pe = {sw_};
  const CoreAllocation alloc = build_core_allocation(system_, m);
  // 1000 cells / 300 per core: up to 3 cores fit; demand is 3.
  EXPECT_EQ(alloc.cores(ModeId{0}, asic_).count_of(type_), 3);
}

TEST_F(AllocationBuilderTest, ExtraCoresRespectAreaCapacity) {
  build_modes(5);
  system_.omsm.mode(ModeId{0}).period = 2e-3;
  system_.arch.pe(asic_).area_capacity = 700.0;  // only 2 cores fit
  MultiModeMapping m;
  m.modes.resize(2);
  m.modes[0].task_to_pe = {asic_, asic_, asic_, asic_, asic_};
  m.modes[1].task_to_pe = {sw_};
  const CoreAllocation alloc = build_core_allocation(system_, m);
  EXPECT_EQ(alloc.cores(ModeId{0}, asic_).count_of(type_), 2);
}

TEST_F(AllocationBuilderTest, DisablingParallelCoresKeepsOne) {
  build_modes(3);
  system_.omsm.mode(ModeId{0}).period = 1.1e-3;
  MultiModeMapping m;
  m.modes.resize(2);
  m.modes[0].task_to_pe = {asic_, asic_, asic_};
  m.modes[1].task_to_pe = {sw_};
  AllocationOptions options;
  options.allocate_parallel_cores = false;
  const CoreAllocation alloc = build_core_allocation(system_, m, options);
  EXPECT_EQ(alloc.cores(ModeId{0}, asic_).count_of(type_), 1);
}

TEST_F(AllocationBuilderTest, AsicSetsAreModeInvariant) {
  build_modes(1);
  // Mode B's task also onto the ASIC (different type).
  MultiModeMapping m;
  m.modes.resize(2);
  m.modes[0].task_to_pe = {asic_};
  m.modes[1].task_to_pe = {asic_};
  const CoreAllocation alloc = build_core_allocation(system_, m);
  EXPECT_EQ(alloc.cores(ModeId{0}, asic_), alloc.cores(ModeId{1}, asic_));
  EXPECT_EQ(alloc.cores(ModeId{0}, asic_).count_of(type_), 1);
  EXPECT_EQ(alloc.cores(ModeId{0}, asic_).count_of(other_), 1);
}

TEST_F(AllocationBuilderTest, FpgaSetsArePerMode) {
  build_modes(1);
  Mode c;
  c.name = "C";
  c.probability = 0.0;
  c.period = 0.1;
  c.graph.add_task("r", type_);
  system_.omsm.add_mode(std::move(c));
  system_.omsm.normalize_probabilities();
  MultiModeMapping m;
  m.modes.resize(3);
  m.modes[0].task_to_pe = {fpga_};
  m.modes[1].task_to_pe = {sw_};
  m.modes[2].task_to_pe = {fpga_};
  const CoreAllocation alloc = build_core_allocation(system_, m);
  EXPECT_EQ(alloc.cores(ModeId{0}, fpga_).count_of(type_), 1);
  EXPECT_TRUE(alloc.cores(ModeId{1}, fpga_).empty());
  EXPECT_EQ(alloc.cores(ModeId{2}, fpga_).count_of(type_), 1);
}

TEST_F(AllocationBuilderTest, OverfullBaseSetIsNotExtended) {
  build_modes(2);
  system_.omsm.mode(ModeId{0}).period = 2e-3;
  system_.arch.pe(asic_).area_capacity = 100.0;  // below one core
  MultiModeMapping m;
  m.modes.resize(2);
  m.modes[0].task_to_pe = {asic_, asic_};
  m.modes[1].task_to_pe = {sw_};
  const CoreAllocation alloc = build_core_allocation(system_, m);
  // Base core still allocated (the mapping demands it) but no extras.
  EXPECT_EQ(alloc.cores(ModeId{0}, asic_).count_of(type_), 1);
}

}  // namespace
}  // namespace mmsyn
