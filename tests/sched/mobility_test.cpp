#include "sched/mobility.hpp"

#include <gtest/gtest.h>

#include "model/system.hpp"

namespace mmsyn {
namespace {

/// Fixture: GPP + ASIC on one bus; chain a -> b -> c plus a parallel d.
class MobilityTest : public ::testing::Test {
 protected:
  MobilityTest() {
    Pe gpp;
    gpp.name = "GPP";
    pe0_ = system_.arch.add_pe(gpp);
    Pe asic;
    asic.name = "HW";
    asic.kind = PeKind::kAsic;
    asic.area_capacity = 1000.0;
    pe1_ = system_.arch.add_pe(asic);
    Cl bus;
    bus.bandwidth = 1e6;  // 1000 bits -> 1 ms
    bus.attached = {pe0_, pe1_};
    system_.arch.add_cl(bus);

    type_ = system_.tech.add_type("T");
    system_.tech.set_implementation(type_, pe0_, {10e-3, 0.1, 0.0});
    system_.tech.set_implementation(type_, pe1_, {1e-3, 0.01, 100.0});

    mode_.name = "m";
    mode_.probability = 1.0;
    mode_.period = 100e-3;
    a_ = mode_.graph.add_task("a", type_);
    b_ = mode_.graph.add_task("b", type_);
    c_ = mode_.graph.add_task("c", type_);
    d_ = mode_.graph.add_task("d", type_);
    mode_.graph.add_edge(a_, b_, 1000.0);
    mode_.graph.add_edge(b_, c_, 1000.0);
  }

  ModeMapping all_on(PeId pe) const {
    ModeMapping m;
    m.task_to_pe.assign(mode_.graph.task_count(), pe);
    return m;
  }

  System system_;
  Mode mode_;
  PeId pe0_, pe1_;
  TaskTypeId type_;
  TaskId a_, b_, c_, d_;
};

TEST_F(MobilityTest, AsapFollowsChain) {
  const MobilityInfo info =
      compute_mobility(mode_, all_on(pe0_), system_.arch, system_.tech);
  // Same-PE edges cost nothing: chain at 0, 10, 20 ms.
  EXPECT_DOUBLE_EQ(info.asap_start[a_.index()], 0.0);
  EXPECT_DOUBLE_EQ(info.asap_start[b_.index()], 10e-3);
  EXPECT_DOUBLE_EQ(info.asap_start[c_.index()], 20e-3);
  EXPECT_DOUBLE_EQ(info.asap_start[d_.index()], 0.0);
  EXPECT_DOUBLE_EQ(info.critical_path, 30e-3);
}

TEST_F(MobilityTest, AlapAnchoredAtPeriod) {
  const MobilityInfo info =
      compute_mobility(mode_, all_on(pe0_), system_.arch, system_.tech);
  // c may finish at 100 ms -> start 90; b -> 80; a -> 70.
  EXPECT_DOUBLE_EQ(info.alap_start[c_.index()], 90e-3);
  EXPECT_DOUBLE_EQ(info.alap_start[b_.index()], 80e-3);
  EXPECT_DOUBLE_EQ(info.alap_start[a_.index()], 70e-3);
  EXPECT_DOUBLE_EQ(info.mobility[a_.index()], 70e-3);
  EXPECT_DOUBLE_EQ(info.mobility[d_.index()], 90e-3);
}

TEST_F(MobilityTest, DeadlineTightensAlap) {
  mode_.graph.set_deadline(c_, 40e-3);
  const MobilityInfo info =
      compute_mobility(mode_, all_on(pe0_), system_.arch, system_.tech);
  EXPECT_DOUBLE_EQ(info.alap_start[c_.index()], 30e-3);
  EXPECT_DOUBLE_EQ(info.mobility[c_.index()], 10e-3);
}

TEST_F(MobilityTest, CrossPeEdgesAddCommDelay) {
  ModeMapping mapping = all_on(pe0_);
  mapping.task_to_pe[b_.index()] = pe1_;  // a->b and b->c cross the bus
  const MobilityInfo info =
      compute_mobility(mode_, mapping, system_.arch, system_.tech);
  // a: 10 ms exec + 1 ms comm -> b at 11 ms; b: 1 ms exec (HW) + 1 ms comm.
  EXPECT_DOUBLE_EQ(info.asap_start[b_.index()], 11e-3);
  EXPECT_DOUBLE_EQ(info.asap_start[c_.index()], 13e-3);
}

TEST_F(MobilityTest, MappedExecTimesUsed) {
  const MobilityInfo sw =
      compute_mobility(mode_, all_on(pe0_), system_.arch, system_.tech);
  const MobilityInfo hw =
      compute_mobility(mode_, all_on(pe1_), system_.arch, system_.tech);
  EXPECT_DOUBLE_EQ(sw.exec_time[a_.index()], 10e-3);
  EXPECT_DOUBLE_EQ(hw.exec_time[a_.index()], 1e-3);
  EXPECT_LT(hw.critical_path, sw.critical_path);
}

TEST_F(MobilityTest, OvertightPeriodClampsMobilityAtZero) {
  mode_.period = 1e-3;  // far below the 30 ms critical path
  const MobilityInfo info =
      compute_mobility(mode_, all_on(pe0_), system_.arch, system_.tech);
  for (double m : info.mobility) EXPECT_GE(m, 0.0);
  // Chain tasks are fully constrained (anchor = critical path).
  EXPECT_DOUBLE_EQ(info.mobility[a_.index()], 0.0);
  EXPECT_DOUBLE_EQ(info.mobility[b_.index()], 0.0);
}

}  // namespace
}  // namespace mmsyn
