#include "sched/list_scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "model/system.hpp"

namespace mmsyn {
namespace {

/// Shared checks: precedence and resource exclusivity of a schedule.
void expect_schedule_valid(const Mode& mode, const ModeMapping& mapping,
                           const Architecture& arch,
                           const ModeSchedule& schedule) {
  // Precedence with communication in between.
  for (std::size_t e = 0; e < mode.graph.edge_count(); ++e) {
    const TaskEdge& edge = mode.graph.edge(EdgeId{static_cast<int>(e)});
    const ScheduledComm& comm = schedule.comms[e];
    EXPECT_GE(comm.start + 1e-12, schedule.tasks[edge.src.index()].finish);
    EXPECT_GE(schedule.tasks[edge.dst.index()].start + 1e-12, comm.finish);
  }
  // Sequential software PEs never overlap two tasks.
  for (std::size_t i = 0; i < schedule.tasks.size(); ++i) {
    for (std::size_t j = i + 1; j < schedule.tasks.size(); ++j) {
      const ScheduledTask& x = schedule.tasks[i];
      const ScheduledTask& y = schedule.tasks[j];
      if (x.pe != y.pe) continue;
      const bool same_resource =
          is_software(arch.pe(x.pe).kind) ||
          (mode.graph.task(x.task).type == mode.graph.task(y.task).type &&
           x.core_instance == y.core_instance);
      if (!same_resource) continue;
      const bool disjoint =
          x.finish <= y.start + 1e-12 || y.finish <= x.start + 1e-12;
      EXPECT_TRUE(disjoint) << "overlap on PE " << x.pe;
    }
  }
  (void)mapping;
}

/// Fixture: GPP + ASIC (two HW types) + single bus.
class ListSchedulerTest : public ::testing::Test {
 protected:
  ListSchedulerTest() {
    Pe gpp;
    gpp.name = "GPP";
    pe0_ = system_.arch.add_pe(gpp);
    Pe asic;
    asic.name = "HW";
    asic.kind = PeKind::kAsic;
    asic.area_capacity = 1000.0;
    pe1_ = system_.arch.add_pe(asic);
    Cl bus;
    bus.bandwidth = 1e6;
    bus.startup_latency = 0.0;
    bus.attached = {pe0_, pe1_};
    system_.arch.add_cl(bus);

    t_sw_ = system_.tech.add_type("SW");
    system_.tech.set_implementation(t_sw_, pe0_, {10e-3, 0.1, 0.0});
    t_hw_ = system_.tech.add_type("HW");
    system_.tech.set_implementation(t_hw_, pe0_, {20e-3, 0.1, 0.0});
    system_.tech.set_implementation(t_hw_, pe1_, {2e-3, 0.01, 100.0});

    mode_.name = "m";
    mode_.probability = 1.0;
    mode_.period = 1.0;
  }

  ModeSchedule schedule(const ModeMapping& mapping,
                        const std::vector<CoreSet>& cores) {
    return list_schedule({mode_, mapping, system_.arch, system_.tech, cores});
  }
  std::vector<CoreSet> no_cores() const {
    return std::vector<CoreSet>(system_.arch.pe_count());
  }

  System system_;
  Mode mode_;
  PeId pe0_, pe1_;
  TaskTypeId t_sw_, t_hw_;
};

TEST_F(ListSchedulerTest, SoftwareChainIsSequential) {
  const TaskId a = mode_.graph.add_task("a", t_sw_);
  const TaskId b = mode_.graph.add_task("b", t_sw_);
  mode_.graph.add_edge(a, b, 0.0);
  ModeMapping m;
  m.task_to_pe = {pe0_, pe0_};
  const ModeSchedule s = schedule(m, no_cores());
  EXPECT_DOUBLE_EQ(s.tasks[0].start, 0.0);
  EXPECT_DOUBLE_EQ(s.tasks[1].start, 10e-3);
  EXPECT_DOUBLE_EQ(s.makespan, 20e-3);
  EXPECT_TRUE(s.comms[0].local);
  expect_schedule_valid(mode_, m, system_.arch, s);
}

TEST_F(ListSchedulerTest, IndependentSoftwareTasksSerialise) {
  mode_.graph.add_task("a", t_sw_);
  mode_.graph.add_task("b", t_sw_);
  ModeMapping m;
  m.task_to_pe = {pe0_, pe0_};
  const ModeSchedule s = schedule(m, no_cores());
  EXPECT_DOUBLE_EQ(s.makespan, 20e-3);
  expect_schedule_valid(mode_, m, system_.arch, s);
}

TEST_F(ListSchedulerTest, CrossPeEdgeUsesBus) {
  const TaskId a = mode_.graph.add_task("a", t_sw_);
  const TaskId b = mode_.graph.add_task("b", t_hw_);
  mode_.graph.add_edge(a, b, 2000.0);  // 2 ms on the bus
  ModeMapping m;
  m.task_to_pe = {pe0_, pe1_};
  const ModeSchedule s = schedule(m, no_cores());
  EXPECT_FALSE(s.comms[0].local);
  EXPECT_TRUE(s.comms[0].cl.valid());
  EXPECT_DOUBLE_EQ(s.comms[0].start, 10e-3);
  EXPECT_DOUBLE_EQ(s.comms[0].finish, 12e-3);
  EXPECT_DOUBLE_EQ(s.tasks[1].start, 12e-3);
  EXPECT_DOUBLE_EQ(s.makespan, 14e-3);
  expect_schedule_valid(mode_, m, system_.arch, s);
}

TEST_F(ListSchedulerTest, SingleHwCoreSerialisesSameType) {
  mode_.graph.add_task("a", t_hw_);
  mode_.graph.add_task("b", t_hw_);
  ModeMapping m;
  m.task_to_pe = {pe1_, pe1_};
  std::vector<CoreSet> cores = no_cores();
  cores[pe1_.index()].set_count(t_hw_, 1);
  const ModeSchedule s = schedule(m, cores);
  EXPECT_DOUBLE_EQ(s.makespan, 4e-3);  // 2 tasks x 2 ms on one core
  expect_schedule_valid(mode_, m, system_.arch, s);
}

TEST_F(ListSchedulerTest, TwoHwCoresRunInParallel) {
  mode_.graph.add_task("a", t_hw_);
  mode_.graph.add_task("b", t_hw_);
  ModeMapping m;
  m.task_to_pe = {pe1_, pe1_};
  std::vector<CoreSet> cores = no_cores();
  cores[pe1_.index()].set_count(t_hw_, 2);
  const ModeSchedule s = schedule(m, cores);
  EXPECT_DOUBLE_EQ(s.makespan, 2e-3);  // parallel on two cores
  EXPECT_NE(s.tasks[0].core_instance, s.tasks[1].core_instance);
  expect_schedule_valid(mode_, m, system_.arch, s);
}

TEST_F(ListSchedulerTest, MissingCoreSetFallsBackToOneCore) {
  mode_.graph.add_task("a", t_hw_);
  mode_.graph.add_task("b", t_hw_);
  ModeMapping m;
  m.task_to_pe = {pe1_, pe1_};
  const ModeSchedule s = schedule(m, no_cores());  // empty core sets
  EXPECT_DOUBLE_EQ(s.makespan, 4e-3);              // implicit single core
}

TEST_F(ListSchedulerTest, BusContentionSerialisesTransfers) {
  // Two independent producers on GPP feeding two HW consumers: the two
  // transfers share one bus.
  const TaskId a = mode_.graph.add_task("a", t_sw_);
  const TaskId b = mode_.graph.add_task("b", t_sw_);
  const TaskId c = mode_.graph.add_task("c", t_hw_);
  const TaskId d = mode_.graph.add_task("d", t_hw_);
  mode_.graph.add_edge(a, c, 5000.0);  // 5 ms transfer
  mode_.graph.add_edge(b, d, 5000.0);
  ModeMapping m;
  m.task_to_pe = {pe0_, pe0_, pe1_, pe1_};
  std::vector<CoreSet> cores = no_cores();
  cores[pe1_.index()].set_count(t_hw_, 2);
  const ModeSchedule s = schedule(m, cores);
  const ScheduledComm& c0 = s.comms[0];
  const ScheduledComm& c1 = s.comms[1];
  const bool disjoint =
      c0.finish <= c1.start + 1e-12 || c1.finish <= c0.start + 1e-12;
  EXPECT_TRUE(disjoint);
  expect_schedule_valid(mode_, m, system_.arch, s);
}

TEST_F(ListSchedulerTest, HigherPriorityChainGoesFirst) {
  // A long chain (a->b) and a short independent task z all on the GPP:
  // the chain head has the larger bottom level and is scheduled first.
  const TaskId a = mode_.graph.add_task("a", t_sw_);
  const TaskId b = mode_.graph.add_task("b", t_sw_);
  const TaskId z = mode_.graph.add_task("z", t_sw_);
  mode_.graph.add_edge(a, b, 0.0);
  ModeMapping m;
  m.task_to_pe = {pe0_, pe0_, pe0_};
  const ModeSchedule s = schedule(m, no_cores());
  EXPECT_LT(s.tasks[a.index()].start, s.tasks[z.index()].start);
  EXPECT_DOUBLE_EQ(s.makespan, 30e-3);
  (void)b;
}

TEST_F(ListSchedulerTest, TopoOrderPolicySchedulesByTaskId) {
  // Independent tasks z (id 0) and a long chain (ids 1,2): FIFO picks z
  // first even though the chain has the larger bottom level.
  const TaskId z = mode_.graph.add_task("z", t_sw_);
  const TaskId a = mode_.graph.add_task("a", t_sw_);
  const TaskId b = mode_.graph.add_task("b", t_sw_);
  mode_.graph.add_edge(a, b, 0.0);
  ModeMapping m;
  m.task_to_pe = {pe0_, pe0_, pe0_};
  const ModeSchedule s = list_schedule({mode_, m, system_.arch, system_.tech,
                                        no_cores(),
                                        SchedulingPolicy::kTopoOrder});
  EXPECT_LT(s.tasks[z.index()].start, s.tasks[a.index()].start);
}

TEST_F(ListSchedulerTest, LongestTaskPolicyPrefersLongTasks) {
  // A short HW-typed task (id 0, 20 ms on GPP) vs a 10 ms SW task (id 1):
  // longest-first schedules the 20 ms task first.
  const TaskId big = mode_.graph.add_task("big", t_hw_);   // 20 ms on GPP
  const TaskId small = mode_.graph.add_task("small", t_sw_);  // 10 ms
  ModeMapping m;
  m.task_to_pe = {pe0_, pe0_};
  const ModeSchedule s = list_schedule({mode_, m, system_.arch, system_.tech,
                                        no_cores(),
                                        SchedulingPolicy::kLongestTask});
  EXPECT_LT(s.tasks[big.index()].start, s.tasks[small.index()].start);
}

TEST_F(ListSchedulerTest, AllPoliciesProduceValidSchedules) {
  const TaskId a = mode_.graph.add_task("a", t_sw_);
  const TaskId b = mode_.graph.add_task("b", t_hw_);
  const TaskId c = mode_.graph.add_task("c", t_hw_);
  mode_.graph.add_edge(a, b, 2000.0);
  mode_.graph.add_edge(a, c, 2000.0);
  ModeMapping m;
  m.task_to_pe = {pe0_, pe1_, pe1_};
  std::vector<CoreSet> cores = no_cores();
  cores[pe1_.index()].set_count(t_hw_, 1);
  for (SchedulingPolicy policy :
       {SchedulingPolicy::kBottomLevel, SchedulingPolicy::kTopoOrder,
        SchedulingPolicy::kLongestTask}) {
    const ModeSchedule s = list_schedule(
        {mode_, m, system_.arch, system_.tech, cores, policy});
    expect_schedule_valid(mode_, m, system_.arch, s);
    EXPECT_TRUE(s.routable);
  }
}

TEST_F(ListSchedulerTest, UnroutableMessageFlagsSchedule) {
  // Second architecture island: a PE with no bus attachment.
  System island;
  Pe gpp;
  gpp.name = "A";
  const PeId p0 = island.arch.add_pe(gpp);
  Pe gpp2;
  gpp2.name = "B";
  const PeId p1 = island.arch.add_pe(gpp2);
  // No CLs at all.
  const TaskTypeId t = island.tech.add_type("T");
  island.tech.set_implementation(t, p0, {1e-3, 0.1, 0.0});
  island.tech.set_implementation(t, p1, {1e-3, 0.1, 0.0});
  Mode mode;
  mode.period = 1.0;
  const TaskId a = mode.graph.add_task("a", t);
  const TaskId b = mode.graph.add_task("b", t);
  mode.graph.add_edge(a, b, 100.0);
  ModeMapping m;
  m.task_to_pe = {p0, p1};
  const ModeSchedule s = list_schedule(
      {mode, m, island.arch, island.tech,
       std::vector<CoreSet>(island.arch.pe_count())});
  EXPECT_FALSE(s.routable);
  EXPECT_GT(s.makespan, 1e3);  // penalty latency applied
}

TEST_F(ListSchedulerTest, EmptyModeProducesEmptySchedule) {
  ModeMapping m;
  const ModeSchedule s = schedule(m, no_cores());
  EXPECT_TRUE(s.tasks.empty());
  EXPECT_DOUBLE_EQ(s.makespan, 0.0);
  EXPECT_TRUE(s.routable);
}

TEST_F(ListSchedulerTest, ChoosesFasterOfTwoBuses) {
  System two;
  Pe gpp;
  gpp.name = "A";
  const PeId p0 = two.arch.add_pe(gpp);
  Pe asic;
  asic.name = "B";
  asic.kind = PeKind::kAsic;
  asic.area_capacity = 500.0;
  const PeId p1 = two.arch.add_pe(asic);
  Cl slow;
  slow.bandwidth = 1e5;
  slow.attached = {p0, p1};
  two.arch.add_cl(slow);
  Cl fast;
  fast.bandwidth = 1e7;
  fast.attached = {p0, p1};
  const ClId fast_id = two.arch.add_cl(fast);
  const TaskTypeId t = two.tech.add_type("T");
  two.tech.set_implementation(t, p0, {1e-3, 0.1, 0.0});
  two.tech.set_implementation(t, p1, {1e-4, 0.01, 50.0});
  Mode mode;
  mode.period = 1.0;
  const TaskId a = mode.graph.add_task("a", t);
  const TaskId b = mode.graph.add_task("b", t);
  mode.graph.add_edge(a, b, 1e4);
  ModeMapping m;
  m.task_to_pe = {p0, p1};
  const ModeSchedule s = list_schedule(
      {mode, m, two.arch, two.tech,
       std::vector<CoreSet>(two.arch.pe_count())});
  EXPECT_EQ(s.comms[0].cl, fast_id);
}

}  // namespace
}  // namespace mmsyn
