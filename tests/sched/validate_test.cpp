#include "sched/validate.hpp"

#include <gtest/gtest.h>

#include "model/system.hpp"
#include "sched/list_scheduler.hpp"

namespace mmsyn {
namespace {

class ValidateTest : public ::testing::Test {
 protected:
  ValidateTest() {
    Pe gpp;
    gpp.name = "GPP";
    sw_ = system_.arch.add_pe(gpp);
    Pe asic;
    asic.name = "HW";
    asic.kind = PeKind::kAsic;
    asic.area_capacity = 500.0;
    hw_ = system_.arch.add_pe(asic);
    Cl bus;
    bus.name = "BUS";
    bus.bandwidth = 1e6;
    bus.attached = {sw_, hw_};
    system_.arch.add_cl(bus);
    type_ = system_.tech.add_type("T");
    system_.tech.set_implementation(type_, sw_, {10e-3, 0.1, 0.0});
    system_.tech.set_implementation(type_, hw_, {1e-3, 0.01, 100.0});

    mode_.name = "m";
    mode_.period = 0.1;
    a_ = mode_.graph.add_task("a", type_);
    b_ = mode_.graph.add_task("b", type_);
    mode_.graph.add_edge(a_, b_, 2000.0);
    mapping_.task_to_pe = {sw_, hw_};
    cores_.resize(system_.arch.pe_count());
    cores_[hw_.index()].set_count(type_, 1);
  }

  ModeSchedule make_schedule() {
    return list_schedule({mode_, mapping_, system_.arch, system_.tech,
                          cores_});
  }

  bool has(const std::vector<ScheduleViolation>& v,
           ScheduleViolation::Kind kind) {
    for (const auto& x : v)
      if (x.kind == kind) return true;
    return false;
  }

  System system_;
  Mode mode_;
  ModeMapping mapping_;
  std::vector<CoreSet> cores_;
  PeId sw_, hw_;
  TaskTypeId type_;
  TaskId a_, b_;
};

TEST_F(ValidateTest, GeneratedScheduleIsClean) {
  const ModeSchedule s = make_schedule();
  EXPECT_TRUE(validate_schedule(mode_, s, mapping_, system_.arch,
                                system_.tech, cores_)
                  .empty());
}

TEST_F(ValidateTest, PrecedenceViolationDetected) {
  ModeSchedule s = make_schedule();
  s.tasks[b_.index()].start = 0.0;  // before the transfer arrives
  s.tasks[b_.index()].finish = 1e-3;
  const auto v = validate_schedule(mode_, s, mapping_, system_.arch,
                                   system_.tech, cores_);
  EXPECT_TRUE(has(v, ScheduleViolation::Kind::kPrecedence));
}

TEST_F(ValidateTest, DurationViolationDetected) {
  ModeSchedule s = make_schedule();
  s.tasks[a_.index()].finish = s.tasks[a_.index()].start + 1e-3;  // too fast
  const auto v = validate_schedule(mode_, s, mapping_, system_.arch,
                                   system_.tech, cores_);
  EXPECT_TRUE(has(v, ScheduleViolation::Kind::kDuration));
}

TEST_F(ValidateTest, ResourceOverlapDetected) {
  // Put a second task on the GPP overlapping the first.
  const TaskId c = mode_.graph.add_task("c", type_);
  mapping_.task_to_pe.push_back(sw_);
  cores_.clear();
  cores_.resize(system_.arch.pe_count());
  cores_[hw_.index()].set_count(type_, 1);
  ModeSchedule s = make_schedule();
  s.tasks[c.index()].start = s.tasks[a_.index()].start;
  s.tasks[c.index()].finish = s.tasks[a_.index()].start + 10e-3;
  const auto v = validate_schedule(mode_, s, mapping_, system_.arch,
                                   system_.tech, cores_);
  EXPECT_TRUE(has(v, ScheduleViolation::Kind::kResourceOverlap));
}

TEST_F(ValidateTest, RoutingViolationsDetected) {
  ModeSchedule s = make_schedule();
  s.comms[0].local = true;  // cross-PE edge mislabelled local
  auto v = validate_schedule(mode_, s, mapping_, system_.arch, system_.tech,
                             cores_);
  EXPECT_TRUE(has(v, ScheduleViolation::Kind::kRouting));

  s = make_schedule();
  s.comms[0].cl = ClId::invalid();
  v = validate_schedule(mode_, s, mapping_, system_.arch, system_.tech,
                        cores_);
  EXPECT_TRUE(has(v, ScheduleViolation::Kind::kRouting));
}

TEST_F(ValidateTest, CoreInstanceOutOfRangeDetected) {
  ModeSchedule s = make_schedule();
  s.tasks[b_.index()].core_instance = 5;  // only 1 core allocated
  const auto v = validate_schedule(mode_, s, mapping_, system_.arch,
                                   system_.tech, cores_);
  EXPECT_TRUE(has(v, ScheduleViolation::Kind::kCoreMissing));
}

TEST_F(ValidateTest, DeadlineCheckIsOptIn) {
  mode_.graph.set_deadline(b_, 1e-3);  // unachievable
  const ModeSchedule s = make_schedule();
  EXPECT_TRUE(validate_schedule(mode_, s, mapping_, system_.arch,
                                system_.tech, cores_)
                  .empty());
  ValidateOptions options;
  options.check_deadlines = true;
  const auto v = validate_schedule(mode_, s, mapping_, system_.arch,
                                   system_.tech, cores_, options);
  EXPECT_TRUE(has(v, ScheduleViolation::Kind::kDeadline));
}

TEST_F(ValidateTest, KindNamesAreStable) {
  EXPECT_STREQ(to_string(ScheduleViolation::Kind::kPrecedence),
               "precedence");
  EXPECT_STREQ(to_string(ScheduleViolation::Kind::kDeadline), "deadline");
}

}  // namespace
}  // namespace mmsyn
