#include "sched/timeline.hpp"

#include <gtest/gtest.h>

namespace mmsyn {
namespace {

TEST(Timeline, EmptyFitsAtReadyTime) {
  Timeline t;
  EXPECT_DOUBLE_EQ(t.earliest_fit(2.5, 1.0), 2.5);
  EXPECT_DOUBLE_EQ(t.horizon(), 0.0);
}

TEST(Timeline, AppendsAfterBusyBlock) {
  Timeline t;
  t.reserve(0.0, 5.0);
  EXPECT_DOUBLE_EQ(t.earliest_fit(0.0, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(t.horizon(), 5.0);
}

TEST(Timeline, FirstFitUsesGap) {
  Timeline t;
  t.reserve(0.0, 2.0);
  t.reserve(5.0, 2.0);
  // Gap [2,5) fits a 3-unit block exactly.
  EXPECT_DOUBLE_EQ(t.earliest_fit(0.0, 3.0), 2.0);
  // A 4-unit block must go after the second interval.
  EXPECT_DOUBLE_EQ(t.earliest_fit(0.0, 4.0), 7.0);
}

TEST(Timeline, ReadyTimeInsideGap) {
  Timeline t;
  t.reserve(0.0, 2.0);
  t.reserve(10.0, 1.0);
  EXPECT_DOUBLE_EQ(t.earliest_fit(4.0, 2.0), 4.0);
  // Ready inside the first busy block: pushed to its end.
  EXPECT_DOUBLE_EQ(t.earliest_fit(1.0, 2.0), 2.0);
}

TEST(Timeline, ReserveInGapKeepsOrder) {
  Timeline t;
  t.reserve(0.0, 1.0);
  t.reserve(4.0, 1.0);
  const double s = t.earliest_fit(0.0, 2.0);
  t.reserve(s, 2.0);
  EXPECT_EQ(t.interval_count(), 3u);
  EXPECT_DOUBLE_EQ(t.busy_time(), 4.0);
  // Remaining gap is [3,4): a 1-unit block still fits there.
  EXPECT_DOUBLE_EQ(t.earliest_fit(0.0, 1.0), 3.0);
}

TEST(Timeline, ZeroDurationOccupiesNothing) {
  Timeline t;
  t.reserve(1.0, 0.0);
  EXPECT_EQ(t.interval_count(), 0u);
  EXPECT_DOUBLE_EQ(t.earliest_fit(0.0, 1.0), 0.0);
}

TEST(Timeline, ClearResets) {
  Timeline t;
  t.reserve(0.0, 3.0);
  t.clear();
  EXPECT_EQ(t.interval_count(), 0u);
  EXPECT_DOUBLE_EQ(t.earliest_fit(0.0, 1.0), 0.0);
}

TEST(Timeline, AbuttingBlocksAllowed) {
  Timeline t;
  t.reserve(0.0, 1.0);
  t.reserve(1.0, 1.0);  // exactly abuts, no overlap
  EXPECT_EQ(t.interval_count(), 2u);
  EXPECT_DOUBLE_EQ(t.earliest_fit(0.0, 0.5), 2.0);
}

TEST(Timeline, ManyBlocksStressOrdering) {
  Timeline t;
  // Fill even slots [2k, 2k+1); odd gaps remain.
  for (int k = 9; k >= 0; --k) {
    const double s = t.earliest_fit(2.0 * k, 1.0);
    t.reserve(s, 1.0);
  }
  EXPECT_EQ(t.interval_count(), 10u);
  // All gaps of width 1 remain at odd offsets.
  EXPECT_DOUBLE_EQ(t.earliest_fit(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(t.earliest_fit(2.2, 1.0), 3.0);
}

}  // namespace
}  // namespace mmsyn
