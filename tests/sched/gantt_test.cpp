#include "sched/gantt.hpp"

#include <gtest/gtest.h>

#include "model/system.hpp"
#include "sched/list_scheduler.hpp"

namespace mmsyn {
namespace {

class GanttTest : public ::testing::Test {
 protected:
  GanttTest() {
    Pe gpp;
    gpp.name = "GPP";
    sw_ = system_.arch.add_pe(gpp);
    Pe asic;
    asic.name = "HW";
    asic.kind = PeKind::kAsic;
    asic.area_capacity = 500.0;
    hw_ = system_.arch.add_pe(asic);
    Cl bus;
    bus.name = "BUS";
    bus.bandwidth = 1e6;
    bus.attached = {sw_, hw_};
    system_.arch.add_cl(bus);
    type_ = system_.tech.add_type("T");
    system_.tech.set_implementation(type_, sw_, {10e-3, 0.1, 0.0});
    system_.tech.set_implementation(type_, hw_, {1e-3, 0.01, 100.0});
    mode_.name = "m";
    mode_.period = 0.1;
  }

  System system_;
  Mode mode_;
  PeId sw_, hw_;
  TaskTypeId type_;
};

TEST_F(GanttTest, RendersRowsAndLegend) {
  const TaskId a = mode_.graph.add_task("alpha", type_);
  const TaskId b = mode_.graph.add_task("beta", type_);
  mode_.graph.add_edge(a, b, 2000.0);
  ModeMapping m;
  m.task_to_pe = {sw_, hw_};
  std::vector<CoreSet> cores(system_.arch.pe_count());
  cores[hw_.index()].set_count(type_, 1);
  const ModeSchedule s =
      list_schedule({mode_, m, system_.arch, system_.tech, cores});
  const std::string chart = render_gantt(mode_, s, m, system_.arch);
  EXPECT_NE(chart.find("GPP"), std::string::npos);
  EXPECT_NE(chart.find("HW/core0"), std::string::npos);
  EXPECT_NE(chart.find("BUS"), std::string::npos);
  EXPECT_NE(chart.find("alpha"), std::string::npos);
  EXPECT_NE(chart.find("beta"), std::string::npos);
  EXPECT_NE(chart.find("transfer"), std::string::npos);
  EXPECT_NE(chart.find("makespan"), std::string::npos);
}

TEST_F(GanttTest, RowWidthsAreUniform) {
  mode_.graph.add_task("a", type_);
  mode_.graph.add_task("b", type_);
  ModeMapping m;
  m.task_to_pe = {sw_, sw_};
  const ModeSchedule s = list_schedule(
      {mode_, m, system_.arch, system_.tech,
       std::vector<CoreSet>(system_.arch.pe_count())});
  GanttOptions options;
  options.width = 40;
  const std::string chart = render_gantt(mode_, s, m, system_.arch, options);
  // Every chart row (lines containing '|') has the same length.
  std::istringstream lines(chart);
  std::string line;
  std::size_t expected = 0;
  while (std::getline(lines, line)) {
    if (line.find('|') == std::string::npos) continue;
    if (!expected) expected = line.size();
    EXPECT_EQ(line.size(), expected);
  }
  EXPECT_GT(expected, 40u);
}

TEST_F(GanttTest, ShortTasksStillVisible) {
  // A 1 ms HW task next to a 10 ms SW task must still occupy >= 1 cell.
  mode_.graph.add_task("long", type_);
  mode_.graph.add_task("short", type_);
  ModeMapping m;
  m.task_to_pe = {sw_, hw_};
  std::vector<CoreSet> cores(system_.arch.pe_count());
  cores[hw_.index()].set_count(type_, 1);
  const ModeSchedule s =
      list_schedule({mode_, m, system_.arch, system_.tech, cores});
  const std::string chart = render_gantt(mode_, s, m, system_.arch);
  // Task with id 1 renders with symbol 'B'.
  EXPECT_NE(chart.find('B'), std::string::npos);
}

TEST_F(GanttTest, EmptyScheduleRendersHeaderOnly) {
  ModeMapping m;
  const ModeSchedule s = list_schedule(
      {mode_, m, system_.arch, system_.tech,
       std::vector<CoreSet>(system_.arch.pe_count())});
  const std::string chart = render_gantt(mode_, s, m, system_.arch);
  EXPECT_NE(chart.find("Gantt"), std::string::npos);
}

}  // namespace
}  // namespace mmsyn
