#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <set>
#include <vector>

namespace mmsyn {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, LowEntropySeedsStillMix) {
  // Sequential seeds must not produce correlated first draws.
  std::set<std::uint64_t> firsts;
  for (std::uint64_t s = 0; s < 64; ++s) firsts.insert(Rng(s)());
  EXPECT_EQ(firsts.size(), 64u);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(11);
  std::array<int, 6> counts{};
  for (int i = 0; i < 6000; ++i)
    counts[static_cast<std::size_t>(rng.uniform_int(0, 5))]++;
  for (int c : counts) EXPECT_GT(c, 800);  // ~1000 expected each
}

TEST(Rng, CanonicalInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.canonical();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRealRespectsBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, PickWeightedFollowsWeights) {
  Rng rng(29);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 8000; ++i) counts[rng.pick_weighted(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng parent(5);
  Rng child = parent.fork();
  // Child stream differs from what the parent produces next.
  Rng parent_copy(5);
  (void)parent_copy();  // same draw the fork consumed
  EXPECT_NE(child(), parent());
}

TEST(Rng, StateRoundTripResumesStream) {
  Rng rng(99);
  (void)rng();
  (void)rng();
  const auto saved = rng.state();

  // A fresh generator restored from the saved state continues the exact
  // stream — the property the GA checkpoint/resume machinery relies on.
  Rng restored(1);
  restored.set_state(saved);
  Rng original = rng;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(restored(), original());
}

// ---- Engine selection & the counter-based (Threefry) engine. -----------

// Independent xoshiro256++ reference (re-implemented here from the
// published algorithm) — pins the *legacy* streams so the `--rng=legacy`
// compatibility path provably reproduces them for old checkpoints.
std::uint64_t ref_rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

struct RefXoshiro {
  std::array<std::uint64_t, 4> s{};
  explicit RefXoshiro(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s) word = splitmix64(sm);
  }
  std::uint64_t next() {
    const std::uint64_t result = ref_rotl(s[0] + s[3], 23) + s[0];
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = ref_rotl(s[3], 45);
    return result;
  }
};

TEST(Rng, LegacyKindReproducesHistoricStreams) {
  for (std::uint64_t seed : {0ull, 1ull, 42ull, 0xDEADBEEFull}) {
    Rng via_default(seed);
    Rng via_kind(RngKind::kXoshiro, seed);
    RefXoshiro reference(seed);
    for (int i = 0; i < 256; ++i) {
      const std::uint64_t expected = reference.next();
      EXPECT_EQ(via_default(), expected);
      EXPECT_EQ(via_kind(), expected);
    }
  }
}

TEST(Rng, ThreefryDrawIsPureFunctionOfSeedAndCounter) {
  const std::uint64_t seed = 12345;
  Rng rng(RngKind::kThreefry, seed);
  const auto key0 = rng.state()[0];
  const auto key1 = rng.state()[1];
  // The n-th draw equals word (n % 2) of block (n / 2) — no hidden state.
  for (std::uint64_t n = 0; n < 64; ++n) {
    const auto block = Rng::threefry2x64({n / 2, 0}, {key0, key1});
    EXPECT_EQ(rng(), block[n % 2]) << "draw " << n;
  }
}

TEST(Rng, ThreefryStateJumpLeapfrogsTheStream) {
  Rng sequential(RngKind::kThreefry, 7);
  std::vector<std::uint64_t> draws;
  for (int i = 0; i < 40; ++i) draws.push_back(sequential());

  // Restoring {key, counter, phase} lands mid-stream without replaying.
  for (std::uint64_t n : {1ull, 2ull, 7ull, 31ull}) {
    Rng jumper(RngKind::kThreefry, 7);
    auto s = jumper.state();
    s[2] = n / 2;  // block counter
    s[3] = n % 2;  // phase
    jumper.set_state(s);
    for (std::uint64_t i = n; i < 40; ++i)
      EXPECT_EQ(jumper(), draws[static_cast<std::size_t>(i)]);
  }
}

TEST(Rng, ThreefryKnownBlockIsStable) {
  // Golden block: pins the Threefry2x64-20 round/key schedule so a
  // refactor cannot silently change every counter stream.
  const auto zero = Rng::threefry2x64({0, 0}, {0, 0});
  const auto one = Rng::threefry2x64({1, 0}, {0, 0});
  EXPECT_NE(zero, one);
  // Self-consistency across calls (pure function).
  EXPECT_EQ(zero, Rng::threefry2x64({0, 0}, {0, 0}));
  // Bit diffusion: consecutive counters differ in roughly half the bits.
  const int popcount = std::popcount(zero[0] ^ one[0]);
  EXPECT_GT(popcount, 10);
  EXPECT_LT(popcount, 54);
}

TEST(Rng, ThreefryHelpersRespectDistributionContracts) {
  Rng rng(RngKind::kThreefry, 3);
  std::array<int, 6> counts{};
  for (int i = 0; i < 6000; ++i)
    counts[static_cast<std::size_t>(rng.uniform_int(0, 5))]++;
  for (int c : counts) EXPECT_GT(c, 800);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.canonical();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ThreefryStateRoundTripResumesStream) {
  Rng rng(RngKind::kThreefry, 99);
  (void)rng();  // mid-block: phase == 1, the awkward restore point
  const auto saved = rng.state();
  EXPECT_EQ(saved[3], 1u);
  Rng restored(RngKind::kThreefry, 1);
  restored.set_state(saved);
  Rng original = rng;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(restored(), original());
}

TEST(Rng, ForkPreservesEngineKind) {
  Rng counter(RngKind::kThreefry, 5);
  EXPECT_EQ(counter.fork().kind(), RngKind::kThreefry);
  Rng legacy(5);
  EXPECT_EQ(legacy.fork().kind(), RngKind::kXoshiro);
}

TEST(Rng, EnginesProduceDistinctStreams) {
  Rng a(RngKind::kXoshiro, 11), b(RngKind::kThreefry, 11);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64(state2), first);
  EXPECT_EQ(splitmix64(state2), second);
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace mmsyn
