#include "common/checksum.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mmsyn {
namespace {

TEST(Crc32, KnownVectors) {
  // The classic IEEE CRC-32 check value.
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("a"), 0xe8b7be43u);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string payload(256, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<char>(i * 7);
  const std::uint32_t reference = crc32(payload);
  for (std::size_t byte : {std::size_t{0}, payload.size() / 2,
                           payload.size() - 1}) {
    std::string corrupted = payload;
    corrupted[byte] ^= 0x10;
    EXPECT_NE(crc32(corrupted), reference) << "flip at byte " << byte;
  }
}

TEST(Fnv1a64, EmptyDigestIsOffsetBasis) {
  EXPECT_EQ(Fnv1a64().digest(), 0xcbf29ce484222325ull);
}

TEST(Fnv1a64, OrderAndValueSensitive) {
  const auto digest = [](auto... vs) {
    Fnv1a64 h;
    (h.add(vs), ...);
    return h.digest();
  };
  EXPECT_NE(digest(1, 2), digest(2, 1));
  EXPECT_NE(digest(1, 2), digest(1, 3));
  EXPECT_EQ(digest(1, 2), digest(1, 2));
}

TEST(Fnv1a64, DoubleHashedByBitPattern) {
  Fnv1a64 a, b;
  a.add(0.0);
  b.add(-0.0);
  // +0.0 == -0.0 numerically but their bit patterns differ; the
  // fingerprint must distinguish them to stay an exact configuration key.
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Fnv1a64, MixedFieldSequenceIsDeterministic) {
  const auto run = [] {
    Fnv1a64 h;
    h.add(std::uint64_t{42}).add(true).add(-1).add(3.25);
    h.add_bytes("xy", 2);
    return h.digest();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace mmsyn
