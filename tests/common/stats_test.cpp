#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mmsyn {
namespace {

TEST(RunningStats, EmptyIsNeutral) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: Σ(x-5)² = 32, /7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-2.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(8.0));
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats s;
  const double offset = 1e9;
  for (double v : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(v);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

}  // namespace
}  // namespace mmsyn
