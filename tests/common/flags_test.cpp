#include "common/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mmsyn {
namespace {

/// argv helper (parse takes char**).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    ptrs_.push_back(const_cast<char*>("prog"));
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

Flags make_flags() {
  Flags flags;
  flags.define_int("count", 5, "a count");
  flags.define_double("ratio", 0.5, "a ratio");
  flags.define_bool("verbose", false, "verbosity");
  flags.define_string("name", "default", "a name");
  return flags;
}

TEST(Flags, DefaultsApply) {
  Flags flags = make_flags();
  Argv argv({});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(flags.get_int("count"), 5);
  EXPECT_DOUBLE_EQ(flags.get_double("ratio"), 0.5);
  EXPECT_FALSE(flags.get_bool("verbose"));
  EXPECT_EQ(flags.get_string("name"), "default");
}

TEST(Flags, SpaceSeparatedValues) {
  Flags flags = make_flags();
  Argv argv({"--count", "9", "--ratio", "0.25", "--name", "x"});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(flags.get_int("count"), 9);
  EXPECT_DOUBLE_EQ(flags.get_double("ratio"), 0.25);
  EXPECT_EQ(flags.get_string("name"), "x");
}

TEST(Flags, EqualsSyntax) {
  Flags flags = make_flags();
  Argv argv({"--count=7", "--verbose=true"});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(flags.get_int("count"), 7);
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(Flags, BareBooleanIsTrue) {
  Flags flags = make_flags();
  Argv argv({"--verbose"});
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(Flags, UnknownFlagFails) {
  Flags flags = make_flags();
  Argv argv({"--bogus", "1"});
  EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(Flags, MissingValueFails) {
  Flags flags = make_flags();
  Argv argv({"--count"});
  EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(Flags, PositionalArgumentFails) {
  Flags flags = make_flags();
  Argv argv({"stray"});
  EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(Flags, HelpReturnsFalse) {
  Flags flags = make_flags();
  Argv argv({"--help"});
  EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(Flags, TypeMismatchThrows) {
  Flags flags = make_flags();
  EXPECT_THROW((void)flags.get_int("ratio"), std::logic_error);
  EXPECT_THROW((void)flags.get_bool("count"), std::logic_error);
  EXPECT_THROW((void)flags.get_int("nonexistent"), std::out_of_range);
}

TEST(Flags, ChoiceDefaultsAndExplicitValues) {
  Flags flags;
  flags.define_choice("dvs", {"none", "pv-dvs"}, "none", "pv-dvs", "backend");
  Argv none({});
  ASSERT_TRUE(flags.parse(none.argc(), none.argv()));
  EXPECT_EQ(flags.get_string("dvs"), "none");

  Argv eq({"--dvs=pv-dvs"});
  ASSERT_TRUE(flags.parse(eq.argc(), eq.argv()));
  EXPECT_EQ(flags.get_string("dvs"), "pv-dvs");
}

TEST(Flags, BareChoiceSelectsImplicitValue) {
  Flags flags;
  flags.define_choice("dvs", {"none", "pv-dvs"}, "none", "pv-dvs", "backend");
  flags.define_bool("audit", false, "audit");
  // `--dvs` as the last argument and followed by another flag both take
  // the implicit value; a trailing registered choice is consumed.
  Argv last({"--dvs"});
  ASSERT_TRUE(flags.parse(last.argc(), last.argv()));
  EXPECT_EQ(flags.get_string("dvs"), "pv-dvs");

  Flags flags2;
  flags2.define_choice("dvs", {"none", "pv-dvs"}, "none", "pv-dvs", "backend");
  flags2.define_bool("audit", false, "audit");
  Argv before({"--dvs", "--audit"});
  ASSERT_TRUE(flags2.parse(before.argc(), before.argv()));
  EXPECT_EQ(flags2.get_string("dvs"), "pv-dvs");
  EXPECT_TRUE(flags2.get_bool("audit"));

  Flags flags3;
  flags3.define_choice("dvs", {"none", "pv-dvs"}, "none", "pv-dvs", "backend");
  Argv spaced({"--dvs", "none"});
  ASSERT_TRUE(flags3.parse(spaced.argc(), spaced.argv()));
  EXPECT_EQ(flags3.get_string("dvs"), "none");
}

TEST(Flags, UnknownChoiceValueFails) {
  Flags flags;
  flags.define_choice("scheduler", {"bottom-level", "topo-order"},
                      "bottom-level", "bottom-level", "backend");
  Argv argv({"--scheduler=simulated-annealing"});
  EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(Flags, ChoiceReadsBackAsStringOnly) {
  Flags flags;
  flags.define_choice("scheduler", {"a", "b"}, "a", "a", "backend");
  EXPECT_EQ(flags.get_string("scheduler"), "a");
  EXPECT_THROW((void)flags.get_int("scheduler"), std::logic_error);
}

}  // namespace
}  // namespace mmsyn
