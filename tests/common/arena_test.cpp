#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

namespace mmsyn {
namespace {

TEST(Arena, HandsOutDisjointAlignedMemory) {
  Arena arena(64);
  double* a = arena.alloc<double>(8);
  std::int32_t* b = arena.alloc<std::int32_t>(3);
  double* c = arena.alloc<double>(4);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(std::int32_t), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % alignof(double), 0u);
  for (int i = 0; i < 8; ++i) a[i] = 1.0 + i;
  for (int i = 0; i < 3; ++i) b[i] = -i;
  for (int i = 0; i < 4; ++i) c[i] = 100.0 + i;
  // Writes through one pointer must not alias another allocation.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a[i], 1.0 + i);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(b[i], -i);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(c[i], 100.0 + i);
  EXPECT_GE(arena.bytes_used(), 8 * sizeof(double) + 3 * sizeof(std::int32_t) +
                                    4 * sizeof(double));
}

TEST(Arena, GrowsPastInitialCapacityAndConsolidatesOnReset) {
  Arena arena(256);
  // Force growth across several blocks.
  for (int round = 0; round < 6; ++round) {
    double* p = arena.alloc<double>(64);  // 512 bytes each
    p[0] = round;
    p[63] = -round;
  }
  EXPECT_GT(arena.block_count(), 1u);
  const std::size_t grown_capacity = arena.capacity();

  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // One consolidated block, at least as large as everything held before.
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_GE(arena.capacity(), grown_capacity);

  // The whole previous total now fits without growing again.
  double* big = arena.alloc<double>(6 * 64);
  big[0] = 1.0;
  big[6 * 64 - 1] = 2.0;
  EXPECT_EQ(arena.block_count(), 1u);
}

TEST(Arena, ResetRecyclesMemoryWithoutFreeing) {
  Arena arena(1 << 12);
  float* first = arena.alloc<float>(128);
  first[0] = 42.0f;
  arena.reset();
  // Same block, same cursor: the recycled allocation reuses the storage.
  float* second = arena.alloc<float>(128);
  EXPECT_EQ(first, second);
  second[0] = 7.0f;
  EXPECT_EQ(second[0], 7.0f);
}

TEST(Arena, AllocFilledInitialises) {
  Arena arena;
  const int* p = arena.alloc_filled<int>(100, -5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(p[i], -5);
  const double* q = arena.alloc_filled<double>(17, 0.25);
  for (int i = 0; i < 17; ++i) EXPECT_EQ(q[i], 0.25);
}

TEST(Arena, LargeSingleAllocationExceedingBlockSize) {
  Arena arena(64);
  // A request far beyond the current block must still succeed.
  const std::size_t n = 100'000;
  std::uint8_t* p = arena.alloc<std::uint8_t>(n);
  std::memset(p, 0xAB, n);
  EXPECT_EQ(p[0], 0xAB);
  EXPECT_EQ(p[n - 1], 0xAB);
  arena.reset();
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_GE(arena.capacity(), n);
}

}  // namespace
}  // namespace mmsyn
