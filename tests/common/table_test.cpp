#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mmsyn {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"a", "1.5"});
  t.add_row({"longer", "20.25"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Numeric cells right-aligned: "1.5" is padded on the left.
  EXPECT_NE(out.find("a         1.5"), std::string::npos) << out;
}

TEST(TextTable, TitleIsPrinted) {
  TextTable t;
  t.add_row({"x"});
  std::ostringstream os;
  t.print(os, "My Title");
  EXPECT_EQ(os.str().rfind("My Title\n", 0), 0u);
}

TEST(TextTable, RowsWiderThanHeaderHandled) {
  TextTable t;
  t.set_header({"one"});
  t.add_row({"a", "b", "c"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("c"), std::string::npos);
}

TEST(TextTable, NumFormatsDigits) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(3.0, 0), "3");
  EXPECT_EQ(TextTable::num(-1.5, 3), "-1.500");
}

TEST(TextTable, PctFormatsFraction) {
  EXPECT_EQ(TextTable::pct(0.2246), "22.46");
  EXPECT_EQ(TextTable::pct(1.0), "100.00");
}

TEST(TextTable, RowCount) {
  TextTable t;
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"r"});
  EXPECT_EQ(t.row_count(), 1u);
}

}  // namespace
}  // namespace mmsyn
