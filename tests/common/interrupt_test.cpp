// Tests for the cooperative SIGINT/SIGTERM interrupt flag. Signals are
// raised at the process itself; the handler only sets a flag, so this is
// safe in-process — but each delivery restores that signal's default
// disposition, so the handler must be re-installed before every raise.
#include "common/interrupt.hpp"

#include <gtest/gtest.h>

#include <csignal>

namespace mmsyn {
namespace {

class InterruptTest : public ::testing::Test {
protected:
  void SetUp() override { clear_interrupt_flag(); }
  void TearDown() override {
    clear_interrupt_flag();
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
  }
};

TEST_F(InterruptTest, FlagStartsClear) {
  EXPECT_FALSE(interrupt_requested());
}

TEST_F(InterruptTest, SigintSetsFlag) {
  install_interrupt_flag();
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_TRUE(interrupt_requested());
}

TEST_F(InterruptTest, SigtermSetsFlag) {
  install_interrupt_flag();
  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(interrupt_requested());
}

TEST_F(InterruptTest, EachSignalHasItsOwnOneShotDisposition) {
  // A SIGTERM delivery restores only SIGTERM's default disposition: the
  // SIGINT handler must still be live (and vice versa), so a supervisor
  // TERM followed by a Ctrl-C does not hard-kill mid-drain.
  install_interrupt_flag();
  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(interrupt_requested());
  clear_interrupt_flag();
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_TRUE(interrupt_requested());
}

TEST_F(InterruptTest, ManualRaiseAndClear) {
  raise_interrupt_flag();
  EXPECT_TRUE(interrupt_requested());
  clear_interrupt_flag();
  EXPECT_FALSE(interrupt_requested());
}

}  // namespace
}  // namespace mmsyn
