// Tests for the deterministic fault-injection framework: spec parsing,
// trigger forms, the determinism contract (pure function of seed+spec),
// the bounded-retry recovery helper, and the kill action's exit code.
#include "common/failpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace mmsyn {
namespace {

using failpoint::Action;

/// Disarms around every test so specs can't leak between cases.
class FailpointTest : public ::testing::Test {
protected:
  void SetUp() override { failpoint::disarm(); }
  void TearDown() override { failpoint::disarm(); }
};

// The sites compiled into the production paths register at static init;
// any binary linking mmsyn_common sees at least the common-layer ones.
TEST_F(FailpointTest, ProductionSitesAreRegistered) {
  const std::vector<std::string> sites = failpoint::registered_sites();
  const auto has = [&](const char* name) {
    return std::find(sites.begin(), sites.end(), name) != sites.end();
  };
  EXPECT_TRUE(has("pool.task"));
  EXPECT_TRUE(has("alloc.arena"));
  EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
}

TEST_F(FailpointTest, DisarmedSiteDoesNothing) {
  failpoint::Site site{"pool.task"};
  EXPECT_FALSE(failpoint::armed());
  EXPECT_EQ(site.hit(), Action::kNone);
  EXPECT_FALSE(failpoint::inject(site));
  EXPECT_EQ(site.hit_count(), 0u);  // disarmed hits are not even counted
}

TEST_F(FailpointTest, EmptySpecDisarms) {
  failpoint::arm("pool.task=fail");
  EXPECT_TRUE(failpoint::armed());
  failpoint::arm("");
  EXPECT_FALSE(failpoint::armed());
}

TEST_F(FailpointTest, RejectsUnknownSiteActionAndTrigger) {
  EXPECT_THROW(failpoint::arm("no.such.site=fail"), std::invalid_argument);
  EXPECT_THROW(failpoint::arm("pool.task=explode"), std::invalid_argument);
  EXPECT_THROW(failpoint::arm("pool.task=fail@x"), std::invalid_argument);
  EXPECT_THROW(failpoint::arm("pool.task=fail@0"), std::invalid_argument);
  EXPECT_THROW(failpoint::arm("pool.task=fail@p1.5"), std::invalid_argument);
  EXPECT_THROW(failpoint::arm("pool.task"), std::invalid_argument);
  EXPECT_FALSE(failpoint::armed());  // a failed arm never half-arms
}

TEST_F(FailpointTest, NthHitTriggerFiresExactlyOnce) {
  failpoint::Site site{"pool.task"};
  failpoint::arm("pool.task=fail@3");
  std::vector<Action> actions;
  for (int i = 0; i < 5; ++i) actions.push_back(site.hit());
  EXPECT_EQ(actions, (std::vector<Action>{Action::kNone, Action::kNone,
                                          Action::kFail, Action::kNone,
                                          Action::kNone}));
  EXPECT_EQ(site.hit_count(), 5u);
  EXPECT_EQ(site.fired_count(), 1u);
}

TEST_F(FailpointTest, FromAndPeriodicTriggers) {
  failpoint::Site site{"pool.task"};
  failpoint::arm("pool.task=fail@3+");
  for (int i = 0; i < 2; ++i) EXPECT_EQ(site.hit(), Action::kNone);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(site.hit(), Action::kFail);

  failpoint::arm("pool.task=fail@2/3");  // hits 2, 5, 8, ...
  std::vector<int> fired;
  for (int hit = 1; hit <= 9; ++hit)
    if (site.hit() == Action::kFail) fired.push_back(hit);
  EXPECT_EQ(fired, (std::vector<int>{2, 5, 8}));
}

TEST_F(FailpointTest, NoTriggerMeansEveryHit) {
  failpoint::Site site{"pool.task"};
  failpoint::arm("pool.task=corrupt");
  for (int i = 0; i < 3; ++i) EXPECT_EQ(site.hit(), Action::kCorrupt);
}

TEST_F(FailpointTest, OffEntryDisablesWithoutError) {
  failpoint::arm("pool.task=off");
  EXPECT_FALSE(failpoint::armed());  // only disabled entries -> disarmed
  failpoint::Site site{"pool.task"};
  failpoint::arm("pool.task=off;alloc.arena=fail@1");
  EXPECT_TRUE(failpoint::armed());
  EXPECT_EQ(site.hit(), Action::kNone);
}

TEST_F(FailpointTest, ArmResetsCounters) {
  failpoint::Site site{"pool.task"};
  failpoint::arm("pool.task=fail@1");
  EXPECT_EQ(site.hit(), Action::kFail);
  failpoint::arm("pool.task=fail@1");  // re-arm restarts the plan at hit 1
  EXPECT_EQ(site.hit_count(), 0u);
  EXPECT_EQ(site.hit(), Action::kFail);
}

TEST_F(FailpointTest, SameNameSitesShareOneCounter) {
  failpoint::Site a{"pool.task"};
  failpoint::Site b{"pool.task"};
  failpoint::arm("pool.task=fail@2");
  EXPECT_EQ(a.hit(), Action::kNone);
  EXPECT_EQ(b.hit(), Action::kFail);  // b's hit is process-wide hit #2
  EXPECT_EQ(a.hit_count(), 2u);
  EXPECT_EQ(b.hit_count(), 2u);
}

// The determinism contract for probabilistic triggers: the decision is a
// pure function of (seed, site name, hit index) — replaying the same
// plan gives the same firing set, and changing the seed changes it.
TEST_F(FailpointTest, ProbabilityTriggerIsPureInSeedNameAndHit) {
  std::vector<std::uint64_t> fired_a, fired_b;
  for (std::uint64_t hit = 1; hit <= 1000; ++hit) {
    if (failpoint::probability_trigger_fires("pool.task", hit, 42, 0.25))
      fired_a.push_back(hit);
    if (failpoint::probability_trigger_fires("pool.task", hit, 42, 0.25))
      fired_b.push_back(hit);
  }
  EXPECT_EQ(fired_a, fired_b);
  // Roughly a quarter of hits fire (loose bounds; the sequence is fixed).
  EXPECT_GT(fired_a.size(), 150u);
  EXPECT_LT(fired_a.size(), 350u);

  std::vector<std::uint64_t> other_seed;
  for (std::uint64_t hit = 1; hit <= 1000; ++hit)
    if (failpoint::probability_trigger_fires("pool.task", hit, 43, 0.25))
      other_seed.push_back(hit);
  EXPECT_NE(fired_a, other_seed);

  for (std::uint64_t hit = 1; hit <= 100; ++hit) {
    EXPECT_FALSE(failpoint::probability_trigger_fires("pool.task", hit, 42,
                                                      0.0));
    EXPECT_TRUE(failpoint::probability_trigger_fires("pool.task", hit, 42,
                                                     1.0));
  }
}

TEST_F(FailpointTest, ProbabilisticSpecHonoursSeedEntry) {
  failpoint::Site site{"pool.task"};
  const auto firing_set = [&](const std::string& spec) {
    failpoint::arm(spec);
    std::vector<int> fired;
    for (int hit = 1; hit <= 200; ++hit)
      if (site.hit() == Action::kFail) fired.push_back(hit);
    return fired;
  };
  const std::vector<int> seed7 = firing_set("seed=7;pool.task=fail@p0.3");
  const std::vector<int> seed7_again =
      firing_set("seed=7;pool.task=fail@p0.3");
  const std::vector<int> seed8 = firing_set("seed=8;pool.task=fail@p0.3");
  EXPECT_EQ(seed7, seed7_again);
  EXPECT_NE(seed7, seed8);
}

TEST_F(FailpointTest, InjectThrowsTransientFaultOnFail) {
  failpoint::Site site{"pool.task"};
  failpoint::arm("pool.task=fail@1");
  EXPECT_THROW((void)failpoint::inject(site), TransientFault);
  EXPECT_FALSE(failpoint::inject(site));  // hit 2: plan says nothing
}

TEST_F(FailpointTest, InjectReturnsTrueOnCorrupt) {
  failpoint::Site site{"pool.task"};
  failpoint::arm("pool.task=corrupt@1");
  EXPECT_TRUE(failpoint::inject(site));
  EXPECT_FALSE(failpoint::inject(site));
}

TEST_F(FailpointTest, RetryTransientHealsABoundedFaultBurst) {
  failpoint::Site site{"pool.task"};
  // Fails on hits 1 and 2; attempt 3 (hit 3) succeeds.
  failpoint::arm("pool.task=fail@1;pool.task=fail@2");
  int runs = 0;
  const int value = failpoint::retry_transient("test", [&] {
    ++runs;
    (void)failpoint::inject(site);
    return 7;
  });
  EXPECT_EQ(value, 7);
  EXPECT_EQ(runs, 3);
}

TEST_F(FailpointTest, RetryTransientGivesUpAfterMaxAttempts) {
  failpoint::Site site{"pool.task"};
  failpoint::arm("pool.task=fail");  // every hit fails
  int runs = 0;
  EXPECT_THROW(failpoint::retry_transient("test",
                                          [&] {
                                            ++runs;
                                            (void)failpoint::inject(site);
                                          }),
               TransientFault);
  EXPECT_EQ(runs, failpoint::kMaxRetryAttempts);
}

TEST_F(FailpointTest, RetryBackoffIsDeterministicAndExponential) {
  using std::chrono::microseconds;
  EXPECT_EQ(failpoint::retry_backoff(1), microseconds(250));
  EXPECT_EQ(failpoint::retry_backoff(2), microseconds(500));
  EXPECT_EQ(failpoint::retry_backoff(3), microseconds(1000));
}

TEST_F(FailpointTest, ActiveSpecRoundTrips) {
  EXPECT_EQ(failpoint::active_spec(), "");
  failpoint::arm("pool.task=fail@3");
  EXPECT_EQ(failpoint::active_spec(), "pool.task=fail@3");
  failpoint::disarm();
  EXPECT_EQ(failpoint::active_spec(), "");
}

using FailpointDeathTest = FailpointTest;

TEST_F(FailpointDeathTest, KillActionExitsWithKillExitCode) {
  failpoint::Site site{"pool.task"};
  failpoint::arm("pool.task=kill@1");
  EXPECT_EXIT((void)failpoint::inject(site),
              ::testing::ExitedWithCode(failpoint::kKillExitCode), "");
}

}  // namespace
}  // namespace mmsyn
