#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mmsyn {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_for(counts.size(),
                    [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round)
    pool.parallel_for(10, [&](std::size_t i) {
      total.fetch_add(static_cast<long>(i));
    });
  EXPECT_EQ(total.load(), 50 * 45);
}

TEST(ThreadPool, EmptyAndSingleItemJobs) {
  ThreadPool pool(4);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
  int runs = 0;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPool, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(8, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 17)
                                     throw std::runtime_error("item 17");
                                   completed.fetch_add(1);
                                 }),
               std::runtime_error);
  EXPECT_EQ(completed.load(), 99);  // the other items still ran

  // The pool stays usable after an exception.
  std::atomic<int> second{0};
  pool.parallel_for(10, [&](std::size_t) { second.fetch_add(1); });
  EXPECT_EQ(second.load(), 10);
}

TEST(ThreadPool, SerialPoolPropagatesExceptionAfterBarrier) {
  // The inline path (1 worker) must match the pooled path's barrier
  // semantics: a throwing item never skips the remaining items, and the
  // first exception (in submission order) surfaces at the end.
  ThreadPool pool(1);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.parallel_for(20,
                                 [&](std::size_t i) {
                                   if (i == 3)
                                     throw std::runtime_error("item 3");
                                   completed.fetch_add(1);
                                 }),
               std::runtime_error);
  EXPECT_EQ(completed.load(), 19);  // items 4..19 still ran

  std::atomic<int> second{0};
  pool.parallel_for(5, [&](std::size_t) { second.fetch_add(1); });
  EXPECT_EQ(second.load(), 5);
}

TEST(ThreadPool, SingleItemJobPropagatesExceptionAfterRunning) {
  // n == 1 takes the inline path even on a pooled ThreadPool.
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(1,
                        [](std::size_t) { throw std::runtime_error("only"); }),
      std::runtime_error);
  int runs = 0;
  pool.parallel_for(1, [&](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_GE(ThreadPool::resolve_thread_count(0), 1);  // hardware threads
  EXPECT_EQ(ThreadPool::resolve_thread_count(1), 1);
  EXPECT_EQ(ThreadPool::resolve_thread_count(6), 6);
  EXPECT_EQ(ThreadPool::resolve_thread_count(-4), 1);
}

}  // namespace
}  // namespace mmsyn
