#include "common/ids.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>
#include <unordered_set>

namespace mmsyn {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  TaskId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, TaskId::invalid());
}

TEST(StrongId, ValueRoundTrip) {
  const PeId id{3};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 3);
  EXPECT_EQ(id.index(), 3u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(TaskId{1}, TaskId{2});
  EXPECT_EQ(TaskId{5}, TaskId{5});
  EXPECT_NE(TaskId{5}, TaskId{6});
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<TaskId, PeId>);
  static_assert(!std::is_same_v<ModeId, ClId>);
}

TEST(StrongId, Hashable) {
  std::unordered_set<TaskTypeId> set;
  set.insert(TaskTypeId{1});
  set.insert(TaskTypeId{2});
  set.insert(TaskTypeId{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(StrongId, StreamOutput) {
  std::ostringstream os;
  os << ModeId{4} << " " << ModeId{};
  EXPECT_EQ(os.str(), "4 <invalid>");
}

}  // namespace
}  // namespace mmsyn
