// Invariant-auditor tests: clean results pass; deliberately corrupted
// schedules, allocations, and evaluations produce the right typed
// violations.
#include "audit/auditor.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "tgff/motivational.hpp"
#include "tgff/suites.hpp"

namespace mmsyn {
namespace {

SynthesisOptions small_options(bool dvs = false) {
  SynthesisOptions options;
  options.seed = 5;
  options.use_dvs = dvs;
  options.ga.population_size = 16;
  options.ga.max_generations = 40;
  options.ga.stagnation_limit = 20;
  return options;
}

bool has_kind(const AuditReport& report, AuditViolation::Kind kind) {
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [&](const AuditViolation& v) { return v.kind == kind; });
}

class AuditorTest : public ::testing::Test {
protected:
  void SetUp() override {
    system_ = make_mul(5);
    options_ = small_options();
    result_ = synthesize(system_, options_);
    audit_ = audit_options_for(options_);
  }

  System system_;
  SynthesisOptions options_;
  SynthesisResult result_;
  AuditOptions audit_;
};

TEST_F(AuditorTest, CleanResultPasses) {
  const AuditReport report = audit_result(system_, result_, audit_);
  EXPECT_TRUE(report.passed()) << report.to_string();
  EXPECT_EQ(report.modes_checked,
            static_cast<int>(system_.omsm.mode_count()));
  EXPECT_EQ(report.transitions_checked,
            static_cast<int>(system_.omsm.transition_count()));
}

TEST_F(AuditorTest, DvsResultPasses) {
  const SynthesisOptions dvs_options = small_options(/*dvs=*/true);
  const SynthesisResult dvs_result = synthesize(system_, dvs_options);
  const AuditReport report =
      audit_result(system_, dvs_result, audit_options_for(dvs_options));
  EXPECT_TRUE(report.passed()) << report.to_string();
}

TEST_F(AuditorTest, TruncatedMappingIsMalformed) {
  SynthesisResult corrupted = result_;
  corrupted.mapping.modes.pop_back();
  const AuditReport report = audit_result(system_, corrupted, audit_);
  EXPECT_FALSE(report.passed());
  EXPECT_TRUE(has_kind(report, AuditViolation::Kind::kMappingMalformed));
}

TEST_F(AuditorTest, MissingScheduleDetected) {
  SynthesisResult corrupted = result_;
  corrupted.evaluation.modes[0].schedule.reset();
  const AuditReport report = audit_result(system_, corrupted, audit_);
  EXPECT_TRUE(has_kind(report, AuditViolation::Kind::kScheduleMissing));
}

TEST_F(AuditorTest, ShiftedTaskBreaksPrecedenceOrOverlap) {
  SynthesisResult corrupted = result_;
  // Drag a non-source task to time zero: it now starts before its inputs
  // arrive (and its duration no longer matches the model).
  ModeSchedule& sched = *corrupted.evaluation.modes[0].schedule;
  ASSERT_GT(sched.tasks.size(), 1u);
  ScheduledTask& victim = sched.tasks.back();
  victim.start = 0.0;
  victim.finish = 1e-9;
  const AuditReport report = audit_result(system_, corrupted, audit_);
  EXPECT_FALSE(report.passed());
  EXPECT_TRUE(has_kind(report, AuditViolation::Kind::kPrecedence) ||
              has_kind(report, AuditViolation::Kind::kDuration) ||
              has_kind(report, AuditViolation::Kind::kResourceOverlap))
      << report.to_string();
}

TEST_F(AuditorTest, LateTaskClaimedFeasibleIsDeadlineViolation) {
  SynthesisResult corrupted = result_;
  ModeSchedule& sched = *corrupted.evaluation.modes[0].schedule;
  const Mode& mode = system_.omsm.mode(ModeId{0});
  // Push a task past the hyper-period while the evaluation still claims a
  // zero timing violation.
  ScheduledTask& victim = sched.tasks.front();
  const double shift = mode.period * 2;
  victim.start += shift;
  victim.finish += shift;
  const AuditReport report = audit_result(system_, corrupted, audit_);
  EXPECT_FALSE(report.passed());
  EXPECT_TRUE(has_kind(report, AuditViolation::Kind::kDeadline) ||
              has_kind(report, AuditViolation::Kind::kTimingMismatch))
      << report.to_string();
}

TEST_F(AuditorTest, TamperedPowerIsEnergyMismatch) {
  SynthesisResult corrupted = result_;
  corrupted.evaluation.avg_power_true *= 0.5;
  const AuditReport report = audit_result(system_, corrupted, audit_);
  EXPECT_TRUE(has_kind(report, AuditViolation::Kind::kEnergyMismatch));
}

TEST_F(AuditorTest, TamperedModePowerIsEnergyMismatch) {
  SynthesisResult corrupted = result_;
  corrupted.evaluation.modes[0].dyn_power += 1.0;
  const AuditReport report = audit_result(system_, corrupted, audit_);
  EXPECT_TRUE(has_kind(report, AuditViolation::Kind::kEnergyMismatch));
}

TEST_F(AuditorTest, TamperedAreaIsAreaMismatch) {
  SynthesisResult corrupted = result_;
  // Claim a hardware PE uses less area than its cores occupy.
  bool tampered = false;
  for (PeId p : system_.arch.pe_ids())
    if (is_hardware(system_.arch.pe(p).kind) &&
        corrupted.evaluation.pe_used_area[p.index()] > 0.0) {
      corrupted.evaluation.pe_used_area[p.index()] *= 0.5;
      tampered = true;
      break;
    }
  ASSERT_TRUE(tampered) << "instance has no used hardware PE";
  const AuditReport report = audit_result(system_, corrupted, audit_);
  EXPECT_TRUE(has_kind(report, AuditViolation::Kind::kAreaMismatch));
}

TEST_F(AuditorTest, TamperedTransitionTimeDetected) {
  SynthesisResult corrupted = result_;
  ASSERT_FALSE(corrupted.evaluation.transition_times.empty());
  corrupted.evaluation.transition_times[0] += 1.0;
  const AuditReport report = audit_result(system_, corrupted, audit_);
  EXPECT_TRUE(has_kind(report, AuditViolation::Kind::kTransitionTime));
}

TEST_F(AuditorTest, AsicCoreSetVaryingAcrossModesDetected) {
  SynthesisResult corrupted = result_;
  // Find an ASIC with cores and clear its set in one mode only.
  bool tampered = false;
  for (PeId p : system_.arch.pe_ids()) {
    if (system_.arch.pe(p).kind != PeKind::kAsic) continue;
    for (std::size_t m = 0; m < system_.omsm.mode_count() && !tampered; ++m)
      if (!corrupted.cores.per_mode[m][p.index()].empty()) {
        corrupted.cores.per_mode[m][p.index()] = CoreSet{};
        tampered = true;
      }
    if (tampered) break;
  }
  if (!tampered) GTEST_SKIP() << "instance allocated no ASIC cores";
  const AuditReport report = audit_result(system_, corrupted, audit_);
  EXPECT_FALSE(report.passed());
  EXPECT_TRUE(
      has_kind(report, AuditViolation::Kind::kAllocationInconsistent) ||
      has_kind(report, AuditViolation::Kind::kCoreMissing))
      << report.to_string();
}

TEST(AuditVoltageLevels, OffLevelSliceDetected) {
  const System system = make_mul(5);
  VoltageSchedule schedule;
  ActivityVoltageSchedule activity;
  activity.kind = DvsNodeKind::kTask;
  activity.ref = 0;
  activity.pe = PeId{0};
  // 97% of the nominal level: not a validated level of any PE.
  activity.slices.push_back(
      VoltageSlice{system.arch.pe(PeId{0}).vmax() * 0.97, 1e-3, 1.0});
  schedule.activities.push_back(activity);

  std::vector<AuditViolation> violations;
  check_voltage_levels(schedule, system.arch, 1e-6, violations);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, AuditViolation::Kind::kVoltageLevel);

  // On-level slices are clean.
  violations.clear();
  schedule.activities[0].slices[0].voltage = system.arch.pe(PeId{0}).vmax();
  check_voltage_levels(schedule, system.arch, 1e-6, violations);
  EXPECT_TRUE(violations.empty());
}

TEST(AuditReportRendering, ListsViolations) {
  AuditReport report;
  report.modes_checked = 2;
  report.transitions_checked = 1;
  EXPECT_NE(report.to_string().find("PASSED"), std::string::npos);
  report.violations.push_back(
      AuditViolation{AuditViolation::Kind::kDeadline, "task late"});
  const std::string text = report.to_string();
  EXPECT_NE(text.find("FAILED"), std::string::npos);
  EXPECT_NE(text.find("deadline"), std::string::npos);
  EXPECT_NE(text.find("task late"), std::string::npos);
}

}  // namespace
}  // namespace mmsyn
