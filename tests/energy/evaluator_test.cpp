#include "energy/evaluator.hpp"

#include <gtest/gtest.h>

#include "core/allocation_builder.hpp"
#include "model/system.hpp"
#include "tgff/motivational.hpp"

namespace mmsyn {
namespace {

/// Hand-checkable fixture: GPP (DVS) + ASIC + FPGA on one bus, two modes.
class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() {
    Pe gpp;
    gpp.name = "GPP";
    gpp.dvs_enabled = true;
    gpp.voltage_levels = {1.2, 2.0, 3.3};
    gpp.static_power = 1e-3;
    sw_ = system_.arch.add_pe(gpp);

    Pe asic;
    asic.name = "ASIC";
    asic.kind = PeKind::kAsic;
    asic.area_capacity = 250.0;
    asic.static_power = 2e-3;
    hw_ = system_.arch.add_pe(asic);

    Pe fpga;
    fpga.name = "FPGA";
    fpga.kind = PeKind::kFpga;
    fpga.area_capacity = 250.0;
    fpga.static_power = 3e-3;
    fpga.reconfig_bandwidth = 1e4;  // cells per second
    fpga_ = system_.arch.add_pe(fpga);

    Cl bus;
    bus.bandwidth = 1e6;
    bus.transfer_power = 0.1;
    bus.static_power = 0.5e-3;
    bus.attached = {sw_, hw_, fpga_};
    system_.arch.add_cl(bus);

    // One type, 10 ms / 100 mW in software, 1 ms / 2 mW in hardware.
    type_ = system_.tech.add_type("T");
    system_.tech.set_implementation(type_, sw_, {10e-3, 0.1, 0.0});
    system_.tech.set_implementation(type_, hw_, {1e-3, 2e-3, 200.0});
    system_.tech.set_implementation(type_, fpga_, {1e-3, 2e-3, 200.0});

    Mode a;
    a.name = "A";
    a.probability = 0.8;
    a.period = 0.1;
    a.graph.add_task("a0", type_);
    const ModeId ma = system_.omsm.add_mode(std::move(a));

    Mode b;
    b.name = "B";
    b.probability = 0.2;
    b.period = 0.05;
    b.graph.add_task("b0", type_);
    const ModeId mb = system_.omsm.add_mode(std::move(b));

    system_.omsm.add_transition({ma, mb, 0.015});
    system_.omsm.add_transition({mb, ma, 0.030});
  }

  MultiModeMapping map_to(PeId mode_a_pe, PeId mode_b_pe) const {
    MultiModeMapping m;
    m.modes.resize(2);
    m.modes[0].task_to_pe = {mode_a_pe};
    m.modes[1].task_to_pe = {mode_b_pe};
    return m;
  }

  Evaluation evaluate(const MultiModeMapping& m,
                      EvaluationOptions options = {}) const {
    const Evaluator evaluator(system_, std::move(options));
    return evaluator.evaluate(m, build_core_allocation(system_, m));
  }

  System system_;
  PeId sw_, hw_, fpga_;
  TaskTypeId type_;
};

TEST_F(EvaluatorTest, AllSoftwarePowerIsHandComputable) {
  const Evaluation e = evaluate(map_to(sw_, sw_));
  // Mode A: dyn = 1 mJ / 0.1 s = 10 mW; static = GPP 1 mW.
  EXPECT_NEAR(e.modes[0].dyn_power, 10e-3, 1e-9);
  EXPECT_NEAR(e.modes[0].static_power, 1e-3, 1e-12);
  // Mode B: dyn = 1 mJ / 0.05 s = 20 mW.
  EXPECT_NEAR(e.modes[1].dyn_power, 20e-3, 1e-9);
  // Weighted: 0.8*11 + 0.2*21 = 13 mW.
  EXPECT_NEAR(e.avg_power_true, 13e-3, 1e-9);
  EXPECT_TRUE(e.feasible());
}

TEST_F(EvaluatorTest, UnusedComponentsAreShutDown) {
  const Evaluation e = evaluate(map_to(sw_, sw_));
  EXPECT_TRUE(e.modes[0].pe_active[sw_.index()]);
  EXPECT_FALSE(e.modes[0].pe_active[hw_.index()]);
  EXPECT_FALSE(e.modes[0].pe_active[fpga_.index()]);
  EXPECT_FALSE(e.modes[0].cl_active[0]);  // no inter-PE communication
}

TEST_F(EvaluatorTest, HardwareMappingCutsDynamicPower) {
  const Evaluation e = evaluate(map_to(hw_, sw_));
  // Mode A on ASIC: dyn = 2 uJ / 0.1 s = 20 uW; static = ASIC only.
  EXPECT_NEAR(e.modes[0].dyn_power, 20e-6, 1e-12);
  EXPECT_NEAR(e.modes[0].static_power, 2e-3, 1e-12);
}

TEST_F(EvaluatorTest, WeightOverrideChangesObjectiveNotReport) {
  EvaluationOptions uniform;
  uniform.weight_override = {1.0, 1.0};
  const Evaluation e = evaluate(map_to(sw_, sw_), uniform);
  EXPECT_NEAR(e.avg_power_true, 13e-3, 1e-9);       // true Ψ report
  EXPECT_NEAR(e.avg_power_weighted, 16e-3, 1e-9);   // 0.5*11 + 0.5*21
}

TEST_F(EvaluatorTest, TimingViolationMeasured) {
  system_.omsm.mode(ModeId{0}).period = 5e-3;  // under the 10 ms exec time
  const Evaluation e = evaluate(map_to(sw_, sw_));
  EXPECT_NEAR(e.modes[0].timing_violation, 5e-3, 1e-9);
  EXPECT_FALSE(e.timing_feasible());
  EXPECT_FALSE(e.feasible());
}

TEST_F(EvaluatorTest, WeightedTimingViolationIsPeriodNormalised) {
  // 10 ms execution in a 5 ms period: the per-mode violation is 5 ms of
  // raw time, but the aggregated penalty expresses it as a *fraction of
  // the mode period* — Σ_m w_m · violation_m / period_m = 0.8 · 1.0 —
  // so the timing penalty is invariant under rescaling the time base.
  system_.omsm.mode(ModeId{0}).period = 5e-3;
  const Evaluation e = evaluate(map_to(sw_, sw_));
  EXPECT_NEAR(e.modes[0].timing_violation, 5e-3, 1e-9);  // raw seconds
  EXPECT_NEAR(e.weighted_timing_violation, 0.8, 1e-9);   // dimensionless
}

TEST_F(EvaluatorTest, CachedEvaluateBitIdenticalAndCounted) {
  const Evaluator evaluator(system_, EvaluationOptions{});
  const MultiModeMapping m = map_to(fpga_, sw_);
  const CoreAllocation cores = build_core_allocation(system_, m);
  const Evaluation cold = evaluator.evaluate(m, cores);
  ModeEvalCache cache;
  (void)evaluator.evaluate(m, cores, &cache);  // fills the memo
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.lookups(), 2);
  EXPECT_EQ(cache.size(), 2u);
  const Evaluation warm = evaluator.evaluate(m, cores, &cache);
  EXPECT_EQ(cache.hits(), 2);  // every mode served from the memo
  EXPECT_EQ(warm.avg_power_true, cold.avg_power_true);
  EXPECT_EQ(warm.avg_power_weighted, cold.avg_power_weighted);
  EXPECT_EQ(warm.weighted_timing_violation, cold.weighted_timing_violation);
  EXPECT_EQ(warm.transition_times, cold.transition_times);
  EXPECT_EQ(warm.pe_used_area, cold.pe_used_area);
}

TEST_F(EvaluatorTest, KeepSchedulesBypassesModeCache) {
  // The memo stores no schedules, so a keep_schedules evaluation takes
  // the cold path and leaves the cache untouched.
  EvaluationOptions opts;
  opts.keep_schedules = true;
  const Evaluator evaluator(system_, opts);
  const MultiModeMapping m = map_to(sw_, sw_);
  const CoreAllocation cores = build_core_allocation(system_, m);
  ModeEvalCache cache;
  const Evaluation e = evaluator.evaluate(m, cores, &cache);
  EXPECT_TRUE(e.modes[0].schedule.has_value());
  EXPECT_EQ(cache.lookups(), 0);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(EvaluatorTest, DeadlineTighterThanPeriodApplies) {
  system_.omsm.mode(ModeId{0}).graph.set_deadline(TaskId{0}, 4e-3);
  const Evaluation e = evaluate(map_to(sw_, sw_));
  EXPECT_NEAR(e.modes[0].timing_violation, 6e-3, 1e-9);
}

TEST_F(EvaluatorTest, AreaViolationMeasured) {
  // Two tasks of distinct types on the 250-cell ASIC -> 400 cells used.
  const TaskTypeId extra = system_.tech.add_type("X");
  system_.tech.set_implementation(extra, sw_, {1e-3, 0.1, 0.0});
  system_.tech.set_implementation(extra, hw_, {1e-4, 1e-3, 200.0});
  system_.omsm.mode(ModeId{0}).graph.add_task("a1", extra);
  MultiModeMapping m = map_to(hw_, sw_);
  m.modes[0].task_to_pe.push_back(hw_);
  const Evaluation e = evaluate(m);
  EXPECT_NEAR(e.pe_used_area[hw_.index()], 400.0, 1e-9);
  EXPECT_NEAR(e.pe_area_violation[hw_.index()], 150.0, 1e-9);
  EXPECT_FALSE(e.area_feasible());
}

TEST_F(EvaluatorTest, FpgaReconfigurationTimesComputed) {
  // Mode A uses the FPGA, mode B does not: entering A loads 200 cells at
  // 1e4 cells/s = 20 ms > the 15 ms limit of transition A<-B... (the
  // transition edge 1 is B->A with limit 30 ms; edge 0 A->B unloads).
  const Evaluation e = evaluate(map_to(fpga_, sw_));
  EXPECT_NEAR(e.transition_times[0], 0.0, 1e-12);    // A->B: nothing loads
  EXPECT_NEAR(e.transition_times[1], 0.02, 1e-12);   // B->A: 200 cells
  EXPECT_NEAR(e.transition_violations[1], 0.0, 1e-12);  // 20 ms <= 30 ms
  EXPECT_TRUE(e.transitions_feasible());
}

TEST_F(EvaluatorTest, FpgaReconfigurationViolationFlagged) {
  // Tighten the B->A limit below the 20 ms reconfiguration time.
  system_.omsm.transition(TransitionId{1}).max_transition_time = 0.010;
  const Evaluation e = evaluate(map_to(fpga_, sw_));
  EXPECT_NEAR(e.transition_times[1], 0.02, 1e-12);
  EXPECT_NEAR(e.transition_violations[1], 0.01, 1e-12);
  EXPECT_FALSE(e.transitions_feasible());
  EXPECT_FALSE(e.feasible());
}

TEST_F(EvaluatorTest, DvsReducesReportedPower) {
  EvaluationOptions nominal;
  const Evaluation plain = evaluate(map_to(sw_, sw_), nominal);
  EvaluationOptions with_dvs;
  with_dvs.use_dvs = true;
  const Evaluation dvs = evaluate(map_to(sw_, sw_), with_dvs);
  EXPECT_LT(dvs.avg_power_true, plain.avg_power_true);
  // Static power is untouched by DVS.
  EXPECT_DOUBLE_EQ(dvs.modes[0].static_power, plain.modes[0].static_power);
}

TEST_F(EvaluatorTest, SchedulesKeptOnlyOnRequest) {
  EvaluationOptions opts;
  EXPECT_FALSE(evaluate(map_to(sw_, sw_), opts).modes[0].schedule.has_value());
  opts.keep_schedules = true;
  EXPECT_TRUE(evaluate(map_to(sw_, sw_), opts).modes[0].schedule.has_value());
}

TEST_F(EvaluatorTest, BadWeightOverrideRejected) {
  EvaluationOptions opts;
  opts.weight_override = {1.0};  // wrong size
  EXPECT_THROW(Evaluator(system_, opts), std::invalid_argument);
  opts.weight_override = {0.0, 0.0};  // zero sum
  EXPECT_THROW(Evaluator(system_, opts), std::invalid_argument);
}

TEST(EvaluatorPaper, Fig2NumbersExact) {
  const System system = make_motivational_example1();
  const Evaluator evaluator(system, EvaluationOptions{});
  {
    const MultiModeMapping m = example1_mapping_without_probabilities();
    const Evaluation e =
        evaluator.evaluate(m, build_core_allocation(system, m));
    EXPECT_NEAR(e.avg_power_true * 1e3, 26.7158, 1e-4);
    EXPECT_TRUE(e.feasible());
  }
  {
    const MultiModeMapping m = example1_mapping_with_probabilities();
    const Evaluation e =
        evaluator.evaluate(m, build_core_allocation(system, m));
    EXPECT_NEAR(e.avg_power_true * 1e3, 15.7423, 1e-4);
    EXPECT_TRUE(e.feasible());
  }
}

}  // namespace
}  // namespace mmsyn
