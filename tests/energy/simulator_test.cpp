#include "energy/simulator.hpp"

#include <gtest/gtest.h>

#include "core/allocation_builder.hpp"
#include "core/genome.hpp"
#include "tgff/motivational.hpp"
#include "tgff/suites.hpp"

namespace mmsyn {
namespace {

Evaluation evaluate_random(const System& system, std::uint64_t seed) {
  const GenomeCodec codec(system);
  Rng rng(seed);
  const MultiModeMapping mapping = codec.decode(codec.random_genome(rng));
  const Evaluator evaluator(system, EvaluationOptions{});
  return evaluator.evaluate(mapping, build_core_allocation(system, mapping));
}

TEST(JumpChain, TwoModeRingIsUniform) {
  Omsm omsm;
  Mode a;
  a.name = "a";
  a.probability = 0.5;
  a.period = 1;
  a.graph.add_task("t", TaskTypeId{0});
  Mode b = a;
  b.name = "b";
  const ModeId ma = omsm.add_mode(std::move(a));
  const ModeId mb = omsm.add_mode(std::move(b));
  omsm.add_transition({ma, mb});
  omsm.add_transition({mb, ma});
  const auto pi = jump_chain_stationary_distribution(omsm);
  EXPECT_NEAR(pi[0], 0.5, 1e-9);
  EXPECT_NEAR(pi[1], 0.5, 1e-9);
}

TEST(JumpChain, AsymmetricGraph) {
  // a -> b, a -> c, b -> a, c -> a: a is visited every other step.
  Omsm omsm;
  Mode proto;
  proto.probability = 1.0 / 3;
  proto.period = 1;
  proto.graph.add_task("t", TaskTypeId{0});
  Mode a = proto;
  a.name = "a";
  Mode b = proto;
  b.name = "b";
  Mode c = proto;
  c.name = "c";
  const ModeId ma = omsm.add_mode(std::move(a));
  const ModeId mb = omsm.add_mode(std::move(b));
  const ModeId mc = omsm.add_mode(std::move(c));
  omsm.add_transition({ma, mb});
  omsm.add_transition({ma, mc});
  omsm.add_transition({mb, ma});
  omsm.add_transition({mc, ma});
  const auto pi = jump_chain_stationary_distribution(omsm);
  EXPECT_NEAR(pi[0], 0.5, 1e-6);
  EXPECT_NEAR(pi[1], 0.25, 1e-6);
  EXPECT_NEAR(pi[2], 0.25, 1e-6);
}

TEST(Simulator, EmpiricalProbabilitiesConvergeToPsi) {
  const System system = make_mul(9);
  const Evaluation eval = evaluate_random(system, 1);
  SimulationOptions options;
  options.total_time = 50000.0;
  options.mean_dwell = 1.0;
  options.include_transition_overheads = false;
  const SimulationResult sim = simulate_usage(system, eval, options);
  for (std::size_t m = 0; m < system.omsm.mode_count(); ++m) {
    const double psi =
        system.omsm.mode(ModeId{static_cast<int>(m)}).probability;
    EXPECT_NEAR(sim.empirical_probability[m], psi, 0.05)
        << "mode " << m;
  }
}

TEST(Simulator, AveragePowerConvergesToEquationOne) {
  // The headline validation: the simulated usage trace must reproduce the
  // analytical probability-weighted power of Eq. (1).
  const System system = make_mul(9);
  const Evaluation eval = evaluate_random(system, 2);
  SimulationOptions options;
  options.total_time = 50000.0;
  options.include_transition_overheads = false;
  const SimulationResult sim = simulate_usage(system, eval, options);
  EXPECT_NEAR(sim.average_power, eval.avg_power_true,
              0.05 * eval.avg_power_true);
}

TEST(Simulator, DeterministicInSeed) {
  const System system = make_mul(11);
  const Evaluation eval = evaluate_random(system, 3);
  SimulationOptions options;
  options.total_time = 100.0;
  options.seed = 99;
  const SimulationResult a = simulate_usage(system, eval, options);
  const SimulationResult b = simulate_usage(system, eval, options);
  EXPECT_EQ(a.transition_count, b.transition_count);
  EXPECT_DOUBLE_EQ(a.total_energy, b.total_energy);
}

TEST(Simulator, TimeAccounting) {
  const System system = make_mul(11);
  const Evaluation eval = evaluate_random(system, 4);
  SimulationOptions options;
  options.total_time = 500.0;
  options.include_transition_overheads = true;
  const SimulationResult sim = simulate_usage(system, eval, options);
  double sum = 0.0;
  for (double t : sim.time_in_mode) sum += t;
  EXPECT_NEAR(sum + sim.transition_time_total, 500.0, 1.0);
  EXPECT_GT(sim.transition_count, 0);
}

TEST(Simulator, TransitionOverheadsOnlyAddEnergy) {
  const System system = make_mul(9);
  const Evaluation eval = evaluate_random(system, 5);
  SimulationOptions without;
  without.total_time = 2000.0;
  without.include_transition_overheads = false;
  SimulationOptions with = without;
  with.include_transition_overheads = true;
  const double p_without = simulate_usage(system, eval, without).average_power;
  const double p_with = simulate_usage(system, eval, with).average_power;
  // Overheads add static-power-weighted reconfiguration time; with no
  // FPGAs in the mapping they can be identical.
  EXPECT_GE(p_with, p_without * 0.999);
}

TEST(Simulator, AbsorbingModeSoaksRemainingTime) {
  // A mode with no outgoing transitions absorbs the walk; the simulator
  // must spend the remaining horizon there instead of spinning.
  System system;
  Pe gpp;
  gpp.name = "P";
  system.arch.add_pe(gpp);
  const TaskTypeId t = system.tech.add_type("T");
  system.tech.set_implementation(t, PeId{0}, {1e-3, 0.1, 0.0});
  Mode a;
  a.name = "a";
  a.probability = 0.5;
  a.period = 0.01;
  a.graph.add_task("x", t);
  Mode b = a;
  b.name = "b";
  const ModeId ma = system.omsm.add_mode(std::move(a));
  const ModeId mb = system.omsm.add_mode(std::move(b));
  system.omsm.add_transition({ma, mb});  // b has no way out

  MultiModeMapping mapping;
  mapping.modes.resize(2);
  mapping.modes[0].task_to_pe = {PeId{0}};
  mapping.modes[1].task_to_pe = {PeId{0}};
  const Evaluator evaluator(system, EvaluationOptions{});
  const Evaluation eval =
      evaluator.evaluate(mapping, CoreAllocation{{{CoreSet{}}, {CoreSet{}}}});

  SimulationOptions options;
  options.total_time = 100.0;
  options.mean_dwell = 0.5;
  options.include_transition_overheads = false;
  const SimulationResult sim = simulate_usage(system, eval, options);
  double total = 0.0;
  for (double x : sim.time_in_mode) total += x;
  EXPECT_NEAR(total, 100.0, 1e-6);
  // Almost all time ends up in the absorbing mode b.
  EXPECT_GT(sim.empirical_probability[mb.index()], 0.9);
}

TEST(Simulator, NonPositiveHorizonThrowsTypedError) {
  const System system = make_mul(9);
  const Evaluation eval = evaluate_random(system, 6);
  SimulationOptions options;
  options.total_time = 0.0;
  EXPECT_THROW((void)simulate_usage(system, eval, options), SimulationError);
  options.total_time = -1.0;
  EXPECT_THROW((void)simulate_usage(system, eval, options), SimulationError);
}

/// Synthetic two-mode ring (a <-> b) with hand-set per-mode static powers
/// and per-transition reconfiguration times: simulate_usage reads only the
/// OMSM plus these Evaluation fields, so the energy account can be checked
/// against closed-form expectations.
struct ReconfRig {
  System system;
  Evaluation eval;
};

ReconfRig make_reconf_rig(double static_a, double static_b,
                          double reconf_ab, double reconf_ba) {
  ReconfRig rig;
  Mode a;
  a.name = "a";
  a.probability = 0.5;
  a.period = 1.0;
  a.graph.add_task("t", TaskTypeId{0});
  Mode b = a;
  b.name = "b";
  const ModeId ma = rig.system.omsm.add_mode(std::move(a));
  const ModeId mb = rig.system.omsm.add_mode(std::move(b));
  rig.system.omsm.add_transition({ma, mb});
  rig.system.omsm.add_transition({mb, ma});

  rig.eval.modes.resize(2);
  rig.eval.modes[0].static_power = static_a;
  rig.eval.modes[1].static_power = static_b;
  rig.eval.transition_times = {reconf_ab, reconf_ba};
  rig.eval.transition_violations = {0.0, 0.0};
  return rig;
}

TEST(Simulator, ReconfigurationChargesTargetModeStaticPower) {
  // Mode a draws nothing, mode b draws S; only the a->b edge carries a
  // reconfiguration time. Every joule in the account therefore prices
  // *b*'s static power — dwell time in b plus the a->b reconfiguration
  // intervals (during which b's components power up). If the simulator
  // charged the *source* mode instead, the reconfiguration term would
  // vanish and the total would undershoot by S * transition_time_total.
  const double kStatic = 2.0, kReconf = 0.25;
  const ReconfRig rig = make_reconf_rig(0.0, kStatic, kReconf, 0.0);
  SimulationOptions options;
  options.total_time = 200.0;
  options.mean_dwell = 1.0;
  options.include_transition_overheads = true;
  const SimulationResult sim = simulate_usage(rig.system, rig.eval, options);
  ASSERT_GT(sim.transition_count, 0);
  ASSERT_GT(sim.transition_time_total, 0.0);
  // Tolerance: the simulator accumulates dwell and reconfiguration terms
  // chronologically interleaved; the reference regroups them per account.
  EXPECT_NEAR(sim.total_energy,
              (sim.time_in_mode[1] + sim.transition_time_total) * kStatic,
              1e-9);
}

TEST(Simulator, TransitionDominatedEnergyAccounting) {
  // Dwells (mean 0.01 s) are dwarfed by the 1 s reconfiguration on every
  // edge: most of the horizon is spent reconfiguring. With equal static
  // powers the whole account collapses to S * (dwell + reconfiguration)
  // regardless of which mode is current, pinning the energy identity in
  // the regime where transition energy dominates.
  const double kStatic = 0.5;
  const ReconfRig rig = make_reconf_rig(kStatic, kStatic, 1.0, 1.0);
  SimulationOptions options;
  options.total_time = 100.0;
  options.mean_dwell = 0.01;
  options.include_transition_overheads = true;
  const SimulationResult sim = simulate_usage(rig.system, rig.eval, options);
  double dwell_total = 0.0;
  for (double t : sim.time_in_mode) dwell_total += t;
  EXPECT_GT(sim.transition_time_total, dwell_total);
  EXPECT_NEAR(sim.total_energy,
              (dwell_total + sim.transition_time_total) * kStatic, 1e-9);
  // The clock must account every second once: dwell + reconfiguration
  // partition the elapsed horizon.
  EXPECT_NEAR(dwell_total + sim.transition_time_total, 100.0, 1e-6);
  EXPECT_NEAR(sim.average_power, kStatic, 1e-9);
}

TEST(Simulator, Example1MatchesHandComputedPower) {
  const System system = make_motivational_example1();
  const MultiModeMapping mapping = example1_mapping_with_probabilities();
  const Evaluator evaluator(system, EvaluationOptions{});
  const Evaluation eval =
      evaluator.evaluate(mapping, build_core_allocation(system, mapping));
  SimulationOptions options;
  options.total_time = 20000.0;
  options.include_transition_overheads = false;
  const SimulationResult sim = simulate_usage(system, eval, options);
  EXPECT_NEAR(sim.average_power * 1e3, 15.7423, 0.6);
}

}  // namespace
}  // namespace mmsyn
