#include "energy/artifact_hash.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace mmsyn {
namespace {

/// A ModeEvaluation with every digested field set to a distinct value.
ModeEvaluation sample_evaluation() {
  ModeEvaluation m;
  m.dyn_energy = 1.25;
  m.dyn_power = 2.5;
  m.static_power = 0.375;
  m.timing_violation = 0.0625;
  m.makespan = 3.0;
  m.pe_active = {true, false, true};
  m.cl_active = {false, true};
  m.routable = true;
  m.baseline_static_power = 0.5;
  m.idle_energy_saved = 0.0125;
  m.wake_energy = 0.003;
  m.temperature = 42.5;
  return m;
}

ModeSchedule sample_schedule() {
  ModeSchedule s;
  ScheduledTask t;
  t.task = TaskId{0};
  t.pe = PeId{1};
  t.core_instance = 2;
  t.start = 0.5;
  t.finish = 1.5;
  s.tasks.push_back(t);
  ScheduledComm c;
  c.edge = EdgeId{0};
  c.cl = ClId{0};
  c.local = false;
  c.start = 1.5;
  c.finish = 2.0;
  s.comms.push_back(c);
  s.makespan = 2.0;
  s.routable = true;
  return s;
}

TEST(ArtifactHash, EvaluationDigestIsStableAcrossCalls) {
  const ModeEvaluation m = sample_evaluation();
  EXPECT_EQ(mode_evaluation_digest(m), mode_evaluation_digest(m));
  // A value-equal copy digests identically.
  const ModeEvaluation copy = m;
  EXPECT_EQ(mode_evaluation_digest(copy), mode_evaluation_digest(m));
  EXPECT_TRUE(equal_mode_evaluations(copy, m));
}

TEST(ArtifactHash, EvaluationDigestCoversEveryComparedField) {
  // Each single-field perturbation must flip both the digest and the
  // equality predicate — the digests cover exactly the compared fields,
  // so a field silently dropped from either would fail here.
  const ModeEvaluation base = sample_evaluation();
  const std::vector<std::function<void(ModeEvaluation&)>> perturbations = {
      [](ModeEvaluation& m) { m.dyn_energy += 1.0; },
      [](ModeEvaluation& m) { m.dyn_power += 1.0; },
      [](ModeEvaluation& m) { m.static_power += 1.0; },
      [](ModeEvaluation& m) { m.timing_violation += 1.0; },
      [](ModeEvaluation& m) { m.makespan += 1.0; },
      [](ModeEvaluation& m) { m.pe_active[1] = !m.pe_active[1]; },
      [](ModeEvaluation& m) { m.pe_active.push_back(true); },
      [](ModeEvaluation& m) { m.cl_active[0] = !m.cl_active[0]; },
      [](ModeEvaluation& m) { m.routable = !m.routable; },
      [](ModeEvaluation& m) { m.baseline_static_power += 1.0; },
      [](ModeEvaluation& m) { m.idle_energy_saved += 1.0; },
      [](ModeEvaluation& m) { m.wake_energy += 1.0; },
      [](ModeEvaluation& m) { m.temperature += 1.0; },
  };
  for (std::size_t i = 0; i < perturbations.size(); ++i) {
    ModeEvaluation changed = base;
    perturbations[i](changed);
    EXPECT_NE(mode_evaluation_digest(changed), mode_evaluation_digest(base))
        << "perturbation " << i;
    EXPECT_FALSE(equal_mode_evaluations(changed, base))
        << "perturbation " << i;
  }
}

TEST(ArtifactHash, RetainedScheduleIsExcludedByContract) {
  // Memoised whole-mode entries never carry a schedule and the auditor
  // replays schedules separately, so the optional must affect neither the
  // digest nor equality.
  const ModeEvaluation bare = sample_evaluation();
  ModeEvaluation kept = bare;
  kept.schedule = sample_schedule();
  EXPECT_EQ(mode_evaluation_digest(kept), mode_evaluation_digest(bare));
  EXPECT_TRUE(equal_mode_evaluations(kept, bare));
}

TEST(ArtifactHash, ScheduleDigestIsStableAcrossCalls) {
  const ModeSchedule s = sample_schedule();
  EXPECT_EQ(mode_schedule_digest(s), mode_schedule_digest(s));
  const ModeSchedule copy = s;
  EXPECT_EQ(mode_schedule_digest(copy), mode_schedule_digest(s));
  EXPECT_TRUE(equal_mode_schedules(copy, s));
}

TEST(ArtifactHash, ScheduleDigestCoversEveryComparedField) {
  const ModeSchedule base = sample_schedule();
  const std::vector<std::function<void(ModeSchedule&)>> perturbations = {
      [](ModeSchedule& s) { s.tasks[0].pe = PeId{0}; },
      [](ModeSchedule& s) { s.tasks[0].core_instance = 0; },
      [](ModeSchedule& s) { s.tasks[0].start += 1.0; },
      [](ModeSchedule& s) { s.tasks[0].finish += 1.0; },
      [](ModeSchedule& s) { s.tasks.push_back(s.tasks[0]); },
      [](ModeSchedule& s) { s.comms[0].cl = ClId::invalid(); },
      [](ModeSchedule& s) { s.comms[0].local = !s.comms[0].local; },
      [](ModeSchedule& s) { s.comms[0].start += 1.0; },
      [](ModeSchedule& s) { s.comms[0].finish += 1.0; },
      [](ModeSchedule& s) { s.makespan += 1.0; },
      [](ModeSchedule& s) { s.routable = !s.routable; },
  };
  for (std::size_t i = 0; i < perturbations.size(); ++i) {
    ModeSchedule changed = base;
    perturbations[i](changed);
    EXPECT_NE(mode_schedule_digest(changed), mode_schedule_digest(base))
        << "perturbation " << i;
    EXPECT_FALSE(equal_mode_schedules(changed, base))
        << "perturbation " << i;
  }
}

TEST(ArtifactHash, DefaultConstructedValuesDigestConsistently) {
  // The digest of a default value is well-defined (used by the cache's
  // self-healing check before any field is populated).
  EXPECT_EQ(mode_evaluation_digest(ModeEvaluation{}),
            mode_evaluation_digest(ModeEvaluation{}));
  EXPECT_EQ(mode_schedule_digest(ModeSchedule{}),
            mode_schedule_digest(ModeSchedule{}));
  EXPECT_NE(mode_evaluation_digest(ModeEvaluation{}),
            mode_evaluation_digest(sample_evaluation()));
}

}  // namespace
}  // namespace mmsyn
