#include "model/core_allocation.hpp"

#include <gtest/gtest.h>

#include "model/tech_library.hpp"

namespace mmsyn {
namespace {

class CoreSetTest : public ::testing::Test {
 protected:
  CoreSetTest() {
    a_ = lib_.add_type("A");
    b_ = lib_.add_type("B");
    c_ = lib_.add_type("C");
    lib_.set_implementation(a_, pe_, {1e-3, 0.1, 100.0});
    lib_.set_implementation(b_, pe_, {1e-3, 0.1, 200.0});
    lib_.set_implementation(c_, pe_, {1e-3, 0.1, 50.0});
  }
  TechLibrary lib_;
  PeId pe_{0};
  TaskTypeId a_, b_, c_;
};

TEST_F(CoreSetTest, CountsDefaultToZero) {
  CoreSet set;
  EXPECT_EQ(set.count_of(a_), 0);
  EXPECT_TRUE(set.empty());
}

TEST_F(CoreSetTest, AddAndSetCounts) {
  CoreSet set;
  set.add_core(a_);
  set.add_core(a_);
  set.set_count(b_, 3);
  EXPECT_EQ(set.count_of(a_), 2);
  EXPECT_EQ(set.count_of(b_), 3);
  set.set_count(a_, 0);
  EXPECT_EQ(set.count_of(a_), 0);
  EXPECT_EQ(set.entries().size(), 1u);
}

TEST_F(CoreSetTest, EntriesSortedByType) {
  CoreSet set;
  set.add_core(c_);
  set.add_core(a_);
  set.add_core(b_);
  ASSERT_EQ(set.entries().size(), 3u);
  EXPECT_EQ(set.entries()[0].first, a_);
  EXPECT_EQ(set.entries()[1].first, b_);
  EXPECT_EQ(set.entries()[2].first, c_);
}

TEST_F(CoreSetTest, AreaSumsInstances) {
  CoreSet set;
  set.set_count(a_, 2);  // 200
  set.set_count(c_, 1);  // 50
  EXPECT_DOUBLE_EQ(set.area(lib_, pe_), 250.0);
}

TEST_F(CoreSetTest, DeltaAreaCountsOnlyAdditions) {
  CoreSet prev;
  prev.set_count(a_, 1);
  prev.set_count(b_, 2);
  CoreSet next;
  next.set_count(a_, 2);  // +1 A = 100
  next.set_count(b_, 1);  // fewer B = 0
  next.set_count(c_, 1);  // +1 C = 50
  EXPECT_DOUBLE_EQ(next.delta_area_from(prev, lib_, pe_), 150.0);
  EXPECT_DOUBLE_EQ(prev.delta_area_from(prev, lib_, pe_), 0.0);
}

TEST_F(CoreSetTest, MergeMaxTakesPerTypeMaximum) {
  CoreSet x;
  x.set_count(a_, 2);
  x.set_count(b_, 1);
  CoreSet y;
  y.set_count(b_, 3);
  y.set_count(c_, 1);
  x.merge_max(y);
  EXPECT_EQ(x.count_of(a_), 2);
  EXPECT_EQ(x.count_of(b_), 3);
  EXPECT_EQ(x.count_of(c_), 1);
}

TEST_F(CoreSetTest, Equality) {
  CoreSet x, y;
  x.set_count(a_, 1);
  y.set_count(a_, 1);
  EXPECT_EQ(x, y);
  y.add_core(a_);
  EXPECT_NE(x, y);
}

TEST_F(CoreSetTest, RequiredAreaIsMaxOverModes) {
  CoreAllocation alloc;
  alloc.per_mode.resize(2, std::vector<CoreSet>(1));
  alloc.per_mode[0][0].set_count(a_, 1);                       // 100
  alloc.per_mode[1][0].set_count(b_, 1);                       // 200
  EXPECT_DOUBLE_EQ(alloc.required_area(pe_, lib_), 200.0);
  EXPECT_EQ(alloc.cores(ModeId{0}, pe_).count_of(a_), 1);
  EXPECT_EQ(alloc.cores(ModeId{1}, pe_).count_of(b_), 1);
}

}  // namespace
}  // namespace mmsyn
