// Randomized mutation fuzzing of the .mmsyn parser: 10k byte-level
// mutations of real example systems must either parse or raise ParseError
// — never crash, hang, or leak any other exception type. This is the smoke
// test backing the "structured errors only" contract of model/io.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <string>

#include "common/rng.hpp"
#include "model/io.hpp"
#include "tgff/smart_phone.hpp"
#include "tgff/suites.hpp"

namespace mmsyn {
namespace {

/// Uniform draw from [0, n).
std::size_t below(Rng& rng, std::size_t n) {
  return static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

/// Applies one random byte-level mutation: flip, insert, delete, or
/// duplicate-a-chunk. Printable-ASCII biased so mutations tend to stay
/// within the tokenizer's normal alphabet (the interesting territory).
std::string mutate(std::string text, Rng& rng) {
  if (text.empty()) return text;
  const std::size_t op = below(rng, 4);
  const std::size_t pos = below(rng, text.size());
  switch (op) {
    case 0:  // overwrite with a random printable byte (or newline)
      text[pos] = static_cast<char>(
          below(rng, 2) ? '\n' : 32 + below(rng, 95));
      break;
    case 1:  // insert
      text.insert(pos, 1, static_cast<char>(32 + below(rng, 95)));
      break;
    case 2:  // delete a short span
      text.erase(pos, 1 + below(rng, 8));
      break;
    default: {  // duplicate a chunk elsewhere (re-ordered/repeated lines)
      const std::size_t len =
          std::min<std::size_t>(1 + below(rng, 40), text.size() - pos);
      text.insert(below(rng, text.size()), text.substr(pos, len));
      break;
    }
  }
  return text;
}

void fuzz_text(const std::string& base, int iterations, std::uint64_t seed) {
  Rng rng(seed);
  int parsed = 0, rejected = 0;
  for (int i = 0; i < iterations; ++i) {
    // Stack 1-4 mutations so multi-error inputs are exercised too.
    std::string text = base;
    const int stack = 1 + static_cast<int>(below(rng, 4));
    for (int s = 0; s < stack; ++s) text = mutate(std::move(text), rng);
    try {
      (void)system_from_string(text);
      ++parsed;
    } catch (const ParseError&) {
      ++rejected;
    }
    // Anything else (std::bad_alloc, std::out_of_range, segfault...)
    // escapes and fails the test.
  }
  // Sanity: the fuzzer actually explored both outcomes.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(IoFuzz, SmartPhoneSystemSurvives10kMutations) {
  const std::string base = system_to_string(make_smart_phone());
  fuzz_text(base, 5000, 0xf00d);
}

TEST(IoFuzz, SuiteInstanceSurvivesMutations) {
  const std::string base = system_to_string(make_mul(5));
  fuzz_text(base, 5000, 0xbeef);
}

TEST(IoFuzz, ShippedExampleFileSurvivesMutations) {
  // Fuzz the example file as shipped on disk rather than a re-serialized
  // form, so hand-written formatting (comments, blank lines, spacing)
  // is part of the mutated corpus.
  std::ifstream is(std::string(MMSYN_SOURCE_DIR) +
                   "/examples/data/sensor_node.mmsyn");
  ASSERT_TRUE(is) << "example file missing";
  const std::string base((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
  fuzz_text(base, 3000, 0xcafe);
}

TEST(IoFuzz, MutatedRoundTripStaysStable) {
  // Whatever a mutated text parses into must itself round-trip: write →
  // read → write is a fixpoint (idempotent serialization).
  const std::string base = system_to_string(make_mul(2));
  Rng rng(7);
  int round_tripped = 0;
  for (int i = 0; i < 300 && round_tripped < 25; ++i) {
    const std::string text = mutate(base, rng);
    System parsed;
    try {
      parsed = system_from_string(text);
    } catch (const ParseError&) {
      continue;
    }
    const std::string once = system_to_string(parsed);
    const std::string twice = system_to_string(system_from_string(once));
    EXPECT_EQ(once, twice);
    ++round_tripped;
  }
  EXPECT_GT(round_tripped, 0);
}

}  // namespace
}  // namespace mmsyn
