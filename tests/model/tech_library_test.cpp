#include "model/tech_library.hpp"

#include <gtest/gtest.h>

namespace mmsyn {
namespace {

TEST(TechLibrary, AddTypesAndNames) {
  TechLibrary lib;
  const TaskTypeId a = lib.add_type("FFT");
  const TaskTypeId b = lib.add_type("IDCT");
  EXPECT_EQ(lib.type_count(), 2u);
  EXPECT_EQ(lib.type_name(a), "FFT");
  EXPECT_EQ(lib.type_name(b), "IDCT");
}

TEST(TechLibrary, ImplementationRoundTrip) {
  TechLibrary lib;
  const TaskTypeId t = lib.add_type("T");
  lib.set_implementation(t, PeId{1}, {2e-3, 0.5, 100.0});
  ASSERT_TRUE(lib.supports(t, PeId{1}));
  EXPECT_FALSE(lib.supports(t, PeId{0}));
  const auto impl = lib.implementation(t, PeId{1});
  ASSERT_TRUE(impl.has_value());
  EXPECT_DOUBLE_EQ(impl->exec_time, 2e-3);
  EXPECT_DOUBLE_EQ(impl->dyn_power, 0.5);
  EXPECT_DOUBLE_EQ(impl->area, 100.0);
}

TEST(TechLibrary, EnergyIsTimeTimesPower) {
  const Implementation impl{4e-3, 0.25, 0.0};
  EXPECT_DOUBLE_EQ(impl.energy(), 1e-3);
}

TEST(TechLibrary, OverwriteImplementation) {
  TechLibrary lib;
  const TaskTypeId t = lib.add_type("T");
  lib.set_implementation(t, PeId{0}, {1e-3, 0.1, 0.0});
  lib.set_implementation(t, PeId{0}, {2e-3, 0.2, 0.0});
  EXPECT_DOUBLE_EQ(lib.require(t, PeId{0}).exec_time, 2e-3);
}

TEST(TechLibrary, RequireThrowsWhenMissing) {
  TechLibrary lib;
  const TaskTypeId t = lib.add_type("T");
  EXPECT_THROW((void)lib.require(t, PeId{0}), std::logic_error);
}

TEST(TechLibrary, CandidatePesAscending) {
  TechLibrary lib;
  const TaskTypeId t = lib.add_type("T");
  lib.set_implementation(t, PeId{2}, {1e-3, 0.1, 0.0});
  lib.set_implementation(t, PeId{0}, {1e-3, 0.1, 0.0});
  const auto cands = lib.candidate_pes(t, 3);
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[0], PeId{0});
  EXPECT_EQ(cands[1], PeId{2});
}

TEST(TechLibrary, CandidatePesRespectsPeCount) {
  TechLibrary lib;
  const TaskTypeId t = lib.add_type("T");
  lib.set_implementation(t, PeId{2}, {1e-3, 0.1, 0.0});
  EXPECT_TRUE(lib.candidate_pes(t, 2).empty());  // PE 2 outside range
}

TEST(TechLibrary, InvalidInputsRejected) {
  TechLibrary lib;
  const TaskTypeId t = lib.add_type("T");
  EXPECT_THROW(lib.set_implementation(TaskTypeId{9}, PeId{0}, {1, 1, 1}),
               std::out_of_range);
  EXPECT_THROW(lib.set_implementation(t, PeId{}, {1, 1, 1}),
               std::out_of_range);
  EXPECT_THROW(lib.set_implementation(t, PeId{0}, {0.0, 1, 1}),
               std::invalid_argument);
  EXPECT_THROW(lib.set_implementation(t, PeId{0}, {1, -1, 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mmsyn
