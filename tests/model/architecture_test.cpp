#include "model/architecture.hpp"

#include <gtest/gtest.h>

namespace mmsyn {
namespace {

Pe make_gpp(const std::string& name) {
  Pe pe;
  pe.name = name;
  pe.kind = PeKind::kGpp;
  return pe;
}

TEST(Architecture, PeKindPredicates) {
  EXPECT_TRUE(is_software(PeKind::kGpp));
  EXPECT_TRUE(is_software(PeKind::kAsip));
  EXPECT_TRUE(is_hardware(PeKind::kAsic));
  EXPECT_TRUE(is_hardware(PeKind::kFpga));
  EXPECT_STREQ(to_string(PeKind::kFpga), "FPGA");
}

TEST(Architecture, AddAndQueryPes) {
  Architecture arch;
  const PeId a = arch.add_pe(make_gpp("A"));
  const PeId b = arch.add_pe(make_gpp("B"));
  EXPECT_EQ(arch.pe_count(), 2u);
  EXPECT_EQ(arch.pe(a).name, "A");
  EXPECT_EQ(arch.pe(b).name, "B");
  EXPECT_EQ(arch.pe_ids().size(), 2u);
}

TEST(Architecture, VoltageLevelValidation) {
  Architecture arch;
  Pe pe = make_gpp("bad");
  pe.voltage_levels = {};
  EXPECT_THROW(arch.add_pe(pe), std::invalid_argument);
  pe.voltage_levels = {3.3, 1.2};  // not ascending
  EXPECT_THROW(arch.add_pe(pe), std::invalid_argument);
  pe.voltage_levels = {1.2, 3.3};
  pe.threshold_voltage = 1.5;  // above the lowest level
  EXPECT_THROW(arch.add_pe(pe), std::invalid_argument);
  pe.threshold_voltage = 0.8;
  EXPECT_NO_THROW(arch.add_pe(pe));
}

TEST(Architecture, DuplicateVoltageLevelsAreNormalised) {
  // discrete_energy splits workloads across adjacent level pairs; a
  // duplicated level would create a zero-width pair, so construction
  // dedupes while preserving vmin/vmax.
  Architecture arch;
  Pe pe = make_gpp("dup");
  pe.dvs_enabled = true;
  pe.voltage_levels = {1.2, 1.2, 1.9, 3.3, 3.3};
  pe.threshold_voltage = 0.8;
  const PeId id = arch.add_pe(pe);
  const std::vector<double> expected{1.2, 1.9, 3.3};
  EXPECT_EQ(arch.pe(id).voltage_levels, expected);
  EXPECT_DOUBLE_EQ(arch.pe(id).vmin(), 1.2);
  EXPECT_DOUBLE_EQ(arch.pe(id).vmax(), 3.3);
}

TEST(Architecture, VminVmax) {
  Pe pe = make_gpp("x");
  pe.voltage_levels = {1.2, 2.0, 3.3};
  EXPECT_DOUBLE_EQ(pe.vmin(), 1.2);
  EXPECT_DOUBLE_EQ(pe.vmax(), 3.3);
}

TEST(Architecture, LinksBetween) {
  Architecture arch;
  const PeId a = arch.add_pe(make_gpp("A"));
  const PeId b = arch.add_pe(make_gpp("B"));
  const PeId c = arch.add_pe(make_gpp("C"));
  Cl bus_ab;
  bus_ab.name = "ab";
  bus_ab.attached = {a, b};
  const ClId ab = arch.add_cl(bus_ab);
  Cl bus_all;
  bus_all.name = "all";
  bus_all.attached = {a, b, c};
  const ClId all = arch.add_cl(bus_all);

  const auto links_ab = arch.links_between(a, b);
  EXPECT_EQ(links_ab.size(), 2u);
  const auto links_ac = arch.links_between(a, c);
  ASSERT_EQ(links_ac.size(), 1u);
  EXPECT_EQ(links_ac[0], all);
  EXPECT_TRUE(arch.links_between(a, a).empty());
  (void)ab;
}

TEST(Architecture, FullyConnected) {
  Architecture arch;
  const PeId a = arch.add_pe(make_gpp("A"));
  const PeId b = arch.add_pe(make_gpp("B"));
  const PeId c = arch.add_pe(make_gpp("C"));
  EXPECT_FALSE(arch.fully_connected());
  Cl partial;
  partial.attached = {a, b};
  arch.add_cl(partial);
  EXPECT_FALSE(arch.fully_connected());
  Cl rest;
  rest.attached = {a, b, c};
  arch.add_cl(rest);
  EXPECT_TRUE(arch.fully_connected());
}

TEST(Architecture, SinglePeIsFullyConnected) {
  Architecture arch;
  arch.add_pe(make_gpp("only"));
  EXPECT_TRUE(arch.fully_connected());
}

TEST(Architecture, ClValidation) {
  Architecture arch;
  arch.add_pe(make_gpp("A"));
  Cl cl;
  cl.bandwidth = 0.0;
  EXPECT_THROW(arch.add_cl(cl), std::invalid_argument);
  cl.bandwidth = 1.0;
  cl.attached = {PeId{5}};
  EXPECT_THROW(arch.add_cl(cl), std::out_of_range);
}

}  // namespace
}  // namespace mmsyn
