#include "model/system.hpp"

#include <gtest/gtest.h>

#include "model/mapping.hpp"

namespace mmsyn {
namespace {

/// Minimal valid system: 2 modes, GPP + ASIC + bus, 2 types.
System make_valid_system() {
  System s;
  s.name = "test";
  Pe gpp;
  gpp.name = "GPP";
  const PeId p0 = s.arch.add_pe(gpp);
  Pe asic;
  asic.name = "ASIC";
  asic.kind = PeKind::kAsic;
  asic.area_capacity = 500.0;
  const PeId p1 = s.arch.add_pe(asic);
  Cl bus;
  bus.attached = {p0, p1};
  s.arch.add_cl(bus);

  const TaskTypeId t0 = s.tech.add_type("T0");
  s.tech.set_implementation(t0, p0, {1e-3, 0.1, 0.0});
  s.tech.set_implementation(t0, p1, {1e-4, 0.01, 100.0});
  const TaskTypeId t1 = s.tech.add_type("T1");
  s.tech.set_implementation(t1, p0, {2e-3, 0.2, 0.0});

  Mode a;
  a.name = "A";
  a.probability = 0.7;
  a.period = 0.1;
  const TaskId ta = a.graph.add_task("ta", t0);
  const TaskId tb = a.graph.add_task("tb", t1);
  a.graph.add_edge(ta, tb, 1000.0);
  const ModeId ma = s.omsm.add_mode(std::move(a));

  Mode b;
  b.name = "B";
  b.probability = 0.3;
  b.period = 0.2;
  b.graph.add_task("tc", t0);
  const ModeId mb = s.omsm.add_mode(std::move(b));

  s.omsm.add_transition({ma, mb, 0.05});
  s.omsm.add_transition({mb, ma, 0.05});
  return s;
}

TEST(System, ValidSystemPasses) {
  const System s = make_valid_system();
  EXPECT_TRUE(s.validate().empty());
}

TEST(System, CountsAggregateOverModes) {
  const System s = make_valid_system();
  EXPECT_EQ(s.total_task_count(), 3u);
  EXPECT_EQ(s.total_edge_count(), 1u);
}

TEST(System, DisconnectedArchitectureRejected) {
  System s = make_valid_system();
  s.arch.cl(ClId{0}).attached.pop_back();  // bus now misses the ASIC
  EXPECT_FALSE(s.validate().empty());
}

TEST(System, HardwareWithoutAreaRejected) {
  System s = make_valid_system();
  s.arch.pe(PeId{1}).area_capacity = 0.0;
  EXPECT_FALSE(s.validate().empty());
}

TEST(System, FpgaWithoutReconfigBandwidthRejected) {
  System s = make_valid_system();
  s.arch.pe(PeId{1}).kind = PeKind::kFpga;
  EXPECT_FALSE(s.validate().empty());
  s.arch.pe(PeId{1}).reconfig_bandwidth = 1e5;
  EXPECT_TRUE(s.validate().empty());
}

TEST(System, DescribeMentionsEverything) {
  const System s = make_valid_system();
  const std::string d = describe(s);
  EXPECT_NE(d.find("test"), std::string::npos);
  EXPECT_NE(d.find("GPP"), std::string::npos);
  EXPECT_NE(d.find("ASIC"), std::string::npos);
  EXPECT_NE(d.find("Psi"), std::string::npos);
}

TEST(Mapping, WellFormedAccepted) {
  const System s = make_valid_system();
  MultiModeMapping m;
  m.modes.resize(2);
  m.modes[0].task_to_pe = {PeId{1}, PeId{0}};
  m.modes[1].task_to_pe = {PeId{0}};
  EXPECT_TRUE(mapping_is_well_formed(m, s.omsm, s.arch, s.tech));
  EXPECT_EQ(m.total_size(), 3u);
  EXPECT_EQ(m.pe_of(ModeId{0}, TaskId{0}), PeId{1});
}

TEST(Mapping, WrongModeCountRejected) {
  const System s = make_valid_system();
  MultiModeMapping m;
  m.modes.resize(1);
  m.modes[0].task_to_pe = {PeId{0}, PeId{0}};
  EXPECT_FALSE(mapping_is_well_formed(m, s.omsm, s.arch, s.tech));
}

TEST(Mapping, UnsupportedPeRejected) {
  const System s = make_valid_system();
  MultiModeMapping m;
  m.modes.resize(2);
  // Task tb has type T1 which only runs on the GPP.
  m.modes[0].task_to_pe = {PeId{0}, PeId{1}};
  m.modes[1].task_to_pe = {PeId{0}};
  EXPECT_FALSE(mapping_is_well_formed(m, s.omsm, s.arch, s.tech));
}

TEST(Mapping, InvalidPeIdRejected) {
  const System s = make_valid_system();
  MultiModeMapping m;
  m.modes.resize(2);
  m.modes[0].task_to_pe = {PeId{0}, PeId{7}};
  m.modes[1].task_to_pe = {PeId{0}};
  EXPECT_FALSE(mapping_is_well_formed(m, s.omsm, s.arch, s.tech));
}

}  // namespace
}  // namespace mmsyn
