#include "model/mapping_io.hpp"

#include <gtest/gtest.h>

#include "core/genome.hpp"
#include "tgff/motivational.hpp"
#include "tgff/suites.hpp"

namespace mmsyn {
namespace {

TEST(MappingIo, RoundTripExample1) {
  const System system = make_motivational_example1();
  const MultiModeMapping original = example1_mapping_with_probabilities();
  const MultiModeMapping parsed =
      mapping_from_string(mapping_to_string(system, original), system);
  ASSERT_EQ(parsed.modes.size(), original.modes.size());
  for (std::size_t m = 0; m < original.modes.size(); ++m)
    EXPECT_EQ(parsed.modes[m].task_to_pe, original.modes[m].task_to_pe);
}

TEST(MappingIo, RoundTripRandomMappingsOnSuite) {
  const System system = make_mul(6);
  const GenomeCodec codec(system);
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const MultiModeMapping original =
        codec.decode(codec.random_genome(rng));
    const MultiModeMapping parsed =
        mapping_from_string(mapping_to_string(system, original), system);
    for (std::size_t m = 0; m < original.modes.size(); ++m)
      ASSERT_EQ(parsed.modes[m].task_to_pe, original.modes[m].task_to_pe);
  }
}

TEST(MappingIo, MissingTaskRejected) {
  const System system = make_motivational_example1();
  const MultiModeMapping original = example1_mapping_with_probabilities();
  std::string text = mapping_to_string(system, original);
  text.erase(text.rfind("map "));  // drop the last assignment
  EXPECT_THROW((void)mapping_from_string(text, system), ParseError);
}

TEST(MappingIo, DuplicateAssignmentRejected) {
  const System system = make_motivational_example1();
  const MultiModeMapping original = example1_mapping_with_probabilities();
  std::string text = mapping_to_string(system, original);
  text += "map O1 tau1 PE0\n";
  EXPECT_THROW((void)mapping_from_string(text, system), ParseError);
}

TEST(MappingIo, UnknownNamesRejected) {
  const System system = make_motivational_example1();
  const std::string base =
      mapping_to_string(system, example1_mapping_with_probabilities());
  EXPECT_THROW(
      (void)mapping_from_string(base + "map NOPE tau1 PE0\n", system),
      ParseError);
  EXPECT_THROW(
      (void)mapping_from_string(base + "map O1 NOPE PE0\n", system),
      ParseError);
  EXPECT_THROW(
      (void)mapping_from_string(base + "map O1 tau1 NOPE\n", system),
      ParseError);
}

TEST(MappingIo, UnsupportedPeRejected) {
  // Example 2's types B/C/E/F are software-only: mapping one to PE1 fails.
  const System system = make_motivational_example2();
  std::string text =
      mapping_to_string(system, example2_mapping_multiple_impl());
  const auto pos = text.find("map O1 tau2 PE0");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 15, "map O1 tau2 PE1");
  EXPECT_THROW((void)mapping_from_string(text, system), ParseError);
}

TEST(MappingIo, FileRoundTrip) {
  const System system = make_motivational_example1();
  const MultiModeMapping original = example1_mapping_without_probabilities();
  const std::string path = ::testing::TempDir() + "/mapping.mmsyn-map";
  save_mapping(path, system, original);
  const MultiModeMapping loaded = load_mapping(path, system);
  for (std::size_t m = 0; m < original.modes.size(); ++m)
    EXPECT_EQ(loaded.modes[m].task_to_pe, original.modes[m].task_to_pe);
}

}  // namespace
}  // namespace mmsyn
