#include "model/io.hpp"

#include <gtest/gtest.h>

#include "tgff/motivational.hpp"
#include "tgff/smart_phone.hpp"
#include "tgff/suites.hpp"

namespace mmsyn {
namespace {

/// Structural equivalence check (names, counts, numbers).
void expect_equivalent(const System& a, const System& b) {
  EXPECT_EQ(a.name, b.name);
  ASSERT_EQ(a.arch.pe_count(), b.arch.pe_count());
  for (PeId p : a.arch.pe_ids()) {
    const Pe& x = a.arch.pe(p);
    const Pe& y = b.arch.pe(p);
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.dvs_enabled, y.dvs_enabled);
    EXPECT_EQ(x.voltage_levels, y.voltage_levels);
    EXPECT_DOUBLE_EQ(x.threshold_voltage, y.threshold_voltage);
    EXPECT_DOUBLE_EQ(x.area_capacity, y.area_capacity);
    EXPECT_DOUBLE_EQ(x.static_power, y.static_power);
    EXPECT_DOUBLE_EQ(x.reconfig_bandwidth, y.reconfig_bandwidth);
  }
  ASSERT_EQ(a.arch.cl_count(), b.arch.cl_count());
  for (ClId c : a.arch.cl_ids()) {
    const Cl& x = a.arch.cl(c);
    const Cl& y = b.arch.cl(c);
    EXPECT_EQ(x.name, y.name);
    EXPECT_DOUBLE_EQ(x.bandwidth, y.bandwidth);
    EXPECT_DOUBLE_EQ(x.startup_latency, y.startup_latency);
    EXPECT_DOUBLE_EQ(x.transfer_power, y.transfer_power);
    EXPECT_DOUBLE_EQ(x.static_power, y.static_power);
    EXPECT_EQ(x.attached, y.attached);
  }
  ASSERT_EQ(a.tech.type_count(), b.tech.type_count());
  for (std::size_t t = 0; t < a.tech.type_count(); ++t) {
    const TaskTypeId type{static_cast<int>(t)};
    EXPECT_EQ(a.tech.type_name(type), b.tech.type_name(type));
    for (PeId p : a.arch.pe_ids()) {
      const auto x = a.tech.implementation(type, p);
      const auto y = b.tech.implementation(type, p);
      ASSERT_EQ(x.has_value(), y.has_value());
      if (!x) continue;
      EXPECT_DOUBLE_EQ(x->exec_time, y->exec_time);
      EXPECT_DOUBLE_EQ(x->dyn_power, y->dyn_power);
      EXPECT_DOUBLE_EQ(x->area, y->area);
    }
  }
  ASSERT_EQ(a.omsm.mode_count(), b.omsm.mode_count());
  for (std::size_t m = 0; m < a.omsm.mode_count(); ++m) {
    const Mode& x = a.omsm.mode(ModeId{static_cast<int>(m)});
    const Mode& y = b.omsm.mode(ModeId{static_cast<int>(m)});
    EXPECT_EQ(x.name, y.name);
    EXPECT_DOUBLE_EQ(x.probability, y.probability);
    EXPECT_DOUBLE_EQ(x.period, y.period);
    ASSERT_EQ(x.graph.task_count(), y.graph.task_count());
    ASSERT_EQ(x.graph.edge_count(), y.graph.edge_count());
    for (std::size_t t = 0; t < x.graph.task_count(); ++t) {
      const TaskId id{static_cast<int>(t)};
      EXPECT_EQ(x.graph.task(id).name, y.graph.task(id).name);
      EXPECT_EQ(x.graph.task(id).type, y.graph.task(id).type);
      EXPECT_EQ(x.graph.task(id).deadline, y.graph.task(id).deadline);
    }
    for (std::size_t e = 0; e < x.graph.edge_count(); ++e) {
      const EdgeId id{static_cast<int>(e)};
      EXPECT_EQ(x.graph.edge(id).src, y.graph.edge(id).src);
      EXPECT_EQ(x.graph.edge(id).dst, y.graph.edge(id).dst);
      EXPECT_DOUBLE_EQ(x.graph.edge(id).data_bits, y.graph.edge(id).data_bits);
    }
  }
  ASSERT_EQ(a.omsm.transition_count(), b.omsm.transition_count());
  for (std::size_t t = 0; t < a.omsm.transition_count(); ++t) {
    const TransitionId id{static_cast<int>(t)};
    EXPECT_EQ(a.omsm.transition(id).from, b.omsm.transition(id).from);
    EXPECT_EQ(a.omsm.transition(id).to, b.omsm.transition(id).to);
    EXPECT_DOUBLE_EQ(a.omsm.transition(id).max_transition_time,
                     b.omsm.transition(id).max_transition_time);
  }
}

TEST(Io, RoundTripExample1) {
  const System original = make_motivational_example1();
  const System parsed = system_from_string(system_to_string(original));
  expect_equivalent(original, parsed);
  EXPECT_TRUE(parsed.validate().empty());
}

TEST(Io, RoundTripSmartPhone) {
  const System original = make_smart_phone();
  const System parsed = system_from_string(system_to_string(original));
  expect_equivalent(original, parsed);
  EXPECT_TRUE(parsed.validate().empty());
}

class IoSuiteTest : public ::testing::TestWithParam<int> {};

TEST_P(IoSuiteTest, RoundTripSuiteInstance) {
  const System original = make_mul(GetParam());
  const System parsed = system_from_string(system_to_string(original));
  expect_equivalent(original, parsed);
}

INSTANTIATE_TEST_SUITE_P(AllMuls, IoSuiteTest, ::testing::Range(1, 13));

TEST(Io, MinimalHandWrittenFile) {
  const System s = system_from_string(R"(
# comment
system tiny
pe CPU kind=GPP dvs=1 levels=1.2,3.3 vt=0.8 static=1e-3
pe ACC kind=ASIC area=500 static=2e-4
cl BUS bandwidth=1e7 attached=CPU,ACC
type FFT
impl FFT CPU time=1e-3 power=0.1
impl FFT ACC time=1e-4 power=0.01 area=200
mode run psi=1.0 period=0.01
task a FFT
task b FFT deadline=0.008
edge a b bits=1000
)");
  EXPECT_EQ(s.name, "tiny");
  EXPECT_EQ(s.arch.pe_count(), 2u);
  EXPECT_TRUE(s.arch.pe(PeId{0}).dvs_enabled);
  EXPECT_EQ(s.omsm.mode_count(), 1u);
  const Mode& mode = s.omsm.mode(ModeId{0});
  EXPECT_EQ(mode.graph.task_count(), 2u);
  EXPECT_EQ(mode.graph.task(TaskId{1}).deadline, 0.008);
  EXPECT_EQ(mode.graph.edge(EdgeId{0}).data_bits, 1000.0);
  EXPECT_TRUE(s.validate().empty());
}

TEST(Io, ErrorsCarryLineNumbers) {
  try {
    (void)system_from_string("system x\nbogus_keyword y\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(Io, UnknownReferencesRejected) {
  EXPECT_THROW((void)system_from_string("impl FFT CPU time=1 power=1\n"),
               ParseError);
  EXPECT_THROW((void)system_from_string(
                   "pe CPU kind=GPP\ncl B bandwidth=1 attached=NOPE\n"),
               ParseError);
  EXPECT_THROW((void)system_from_string("task a FFT\n"), ParseError);
  EXPECT_THROW(
      (void)system_from_string("mode m psi=1 period=1\nedge a b\n"),
      ParseError);
}

TEST(Io, DuplicateNamesRejected) {
  EXPECT_THROW((void)system_from_string("pe A kind=GPP\npe A kind=GPP\n"),
               ParseError);
  EXPECT_THROW((void)system_from_string("type T\ntype T\n"), ParseError);
  EXPECT_THROW((void)system_from_string(
                   "mode m psi=1 period=1\nmode m psi=1 period=1\n"),
               ParseError);
}

TEST(Io, MalformedNumbersRejected) {
  EXPECT_THROW(
      (void)system_from_string("mode m psi=abc period=1\n"), ParseError);
  EXPECT_THROW(
      (void)system_from_string("mode m psi=1x period=1\n"), ParseError);
}

TEST(Io, MissingRequiredOptionRejected) {
  EXPECT_THROW((void)system_from_string("mode m psi=1\n"), ParseError);
  EXPECT_THROW((void)system_from_string("pe A kind=GPP\ncl B attached=A\n"),
               ParseError);
}

TEST(Io, FileRoundTrip) {
  const System original = make_mul(5);
  const std::string path = ::testing::TempDir() + "/io_roundtrip.mmsyn";
  save_system(path, original);
  const System loaded = load_system(path);
  expect_equivalent(original, loaded);
}

TEST(Io, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_system("/nonexistent/dir/x.mmsyn"),
               std::runtime_error);
}

TEST(Io, ShippedSampleFileIsValid) {
  const System s =
      load_system(std::string(MMSYN_SOURCE_DIR) +
                  "/examples/data/sensor_node.mmsyn");
  EXPECT_EQ(s.name, "sensor-node");
  EXPECT_EQ(s.omsm.mode_count(), 3u);
  EXPECT_EQ(s.arch.pe_count(), 2u);
  const auto problems = s.validate();
  EXPECT_TRUE(problems.empty()) << problems.front();
  EXPECT_DOUBLE_EQ(s.omsm.mode(ModeId{0}).probability, 0.92);
}

}  // namespace
}  // namespace mmsyn
