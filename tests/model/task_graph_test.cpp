#include "model/task_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace mmsyn {
namespace {

TaskGraph diamond() {
  // a -> b, a -> c, b -> d, c -> d
  TaskGraph g;
  const TaskId a = g.add_task("a", TaskTypeId{0});
  const TaskId b = g.add_task("b", TaskTypeId{1});
  const TaskId c = g.add_task("c", TaskTypeId{2});
  const TaskId d = g.add_task("d", TaskTypeId{3});
  g.add_edge(a, b, 10.0);
  g.add_edge(a, c, 20.0);
  g.add_edge(b, d, 30.0);
  g.add_edge(c, d, 40.0);
  return g;
}

TEST(TaskGraph, BasicCounts) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.task_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
}

TEST(TaskGraph, AdjacencyLists) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.out_edges(TaskId{0}).size(), 2u);
  EXPECT_EQ(g.in_edges(TaskId{0}).size(), 0u);
  EXPECT_EQ(g.in_edges(TaskId{3}).size(), 2u);
  EXPECT_EQ(g.out_edges(TaskId{3}).size(), 0u);
}

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
  const TaskGraph g = diamond();
  const auto& topo = g.topological_order();
  ASSERT_EQ(topo.size(), 4u);
  auto pos = [&](TaskId t) {
    return std::find(topo.begin(), topo.end(), t) - topo.begin();
  };
  for (const TaskEdge& e : g.edges()) EXPECT_LT(pos(e.src), pos(e.dst));
}

TEST(TaskGraph, CycleDetected) {
  TaskGraph g;
  const TaskId a = g.add_task("a", TaskTypeId{0});
  const TaskId b = g.add_task("b", TaskTypeId{0});
  g.add_edge(a, b, 0.0);
  g.add_edge(b, a, 0.0);
  EXPECT_FALSE(g.finalize());
  EXPECT_THROW((void)g.topological_order(), std::logic_error);
}

TEST(TaskGraph, SelfLoopRejected) {
  TaskGraph g;
  const TaskId a = g.add_task("a", TaskTypeId{0});
  EXPECT_THROW(g.add_edge(a, a, 0.0), std::invalid_argument);
}

TEST(TaskGraph, UnknownEndpointRejected) {
  TaskGraph g;
  const TaskId a = g.add_task("a", TaskTypeId{0});
  EXPECT_THROW(g.add_edge(a, TaskId{7}, 0.0), std::out_of_range);
  EXPECT_THROW(g.add_edge(TaskId{}, a, 0.0), std::out_of_range);
}

TEST(TaskGraph, NegativeDataRejected) {
  TaskGraph g;
  const TaskId a = g.add_task("a", TaskTypeId{0});
  const TaskId b = g.add_task("b", TaskTypeId{0});
  EXPECT_THROW(g.add_edge(a, b, -1.0), std::invalid_argument);
}

TEST(TaskGraph, FinalizeIsInvalidatedByMutation) {
  TaskGraph g = diamond();
  ASSERT_TRUE(g.finalize());
  ASSERT_TRUE(g.finalized());
  (void)g.add_task("e", TaskTypeId{0});
  EXPECT_FALSE(g.finalized());
  EXPECT_TRUE(g.finalize());
  EXPECT_EQ(g.topological_order().size(), 5u);
}

TEST(TaskGraph, DeadlineStorage) {
  TaskGraph g;
  const TaskId a = g.add_task("a", TaskTypeId{0}, 0.5);
  EXPECT_EQ(g.task(a).deadline, 0.5);
  g.set_deadline(a, std::nullopt);
  EXPECT_FALSE(g.task(a).deadline.has_value());
  g.set_deadline(a, 1.25);
  EXPECT_EQ(g.task(a).deadline, 1.25);
}

TEST(TaskGraph, EmptyGraphIsValid) {
  TaskGraph g;
  EXPECT_TRUE(g.finalize());
  EXPECT_TRUE(g.topological_order().empty());
}

TEST(TaskGraph, DisconnectedComponentsOrdered) {
  TaskGraph g;
  (void)g.add_task("a", TaskTypeId{0});
  (void)g.add_task("b", TaskTypeId{0});
  EXPECT_TRUE(g.finalize());
  EXPECT_EQ(g.topological_order().size(), 2u);
}

}  // namespace
}  // namespace mmsyn
