#include "model/omsm.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mmsyn {
namespace {

Mode make_mode(const std::string& name, double prob, double period = 1.0) {
  Mode m;
  m.name = name;
  m.probability = prob;
  m.period = period;
  m.graph.add_task("t", TaskTypeId{0});
  return m;
}

TEST(Omsm, AddModesAndTransitions) {
  Omsm omsm;
  const ModeId a = omsm.add_mode(make_mode("a", 0.4));
  const ModeId b = omsm.add_mode(make_mode("b", 0.6));
  omsm.add_transition({a, b, 0.01});
  omsm.add_transition({b, a, 0.02});
  EXPECT_EQ(omsm.mode_count(), 2u);
  EXPECT_EQ(omsm.transition_count(), 2u);
  EXPECT_EQ(omsm.mode(a).name, "a");
  EXPECT_DOUBLE_EQ(omsm.transition(TransitionId{0}).max_transition_time,
                   0.01);
}

TEST(Omsm, ProbabilitiesVector) {
  Omsm omsm;
  omsm.add_mode(make_mode("a", 0.25));
  omsm.add_mode(make_mode("b", 0.75));
  const auto p = omsm.probabilities();
  ASSERT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p[0], 0.25);
  EXPECT_DOUBLE_EQ(p[1], 0.75);
}

TEST(Omsm, NormalizeProbabilities) {
  Omsm omsm;
  omsm.add_mode(make_mode("a", 2.0));
  omsm.add_mode(make_mode("b", 6.0));
  omsm.normalize_probabilities();
  EXPECT_DOUBLE_EQ(omsm.mode(ModeId{0}).probability, 0.25);
  EXPECT_DOUBLE_EQ(omsm.mode(ModeId{1}).probability, 0.75);
}

TEST(Omsm, ValidAcceptance) {
  Omsm omsm;
  const ModeId a = omsm.add_mode(make_mode("a", 0.5));
  const ModeId b = omsm.add_mode(make_mode("b", 0.5));
  omsm.add_transition({a, b});
  EXPECT_TRUE(omsm.validate().empty());
}

TEST(Omsm, EmptyOmsmRejected) {
  Omsm omsm;
  EXPECT_FALSE(omsm.validate().empty());
}

TEST(Omsm, ProbabilitySumChecked) {
  Omsm omsm;
  omsm.add_mode(make_mode("a", 0.5));
  omsm.add_mode(make_mode("b", 0.3));
  EXPECT_FALSE(omsm.validate().empty());
}

TEST(Omsm, NegativePeriodRejected) {
  Omsm omsm;
  omsm.add_mode(make_mode("a", 1.0, -1.0));
  EXPECT_FALSE(omsm.validate().empty());
}

TEST(Omsm, CyclicTaskGraphRejected) {
  Omsm omsm;
  Mode m = make_mode("a", 1.0);
  const TaskId t0{0};
  const TaskId t1 = m.graph.add_task("u", TaskTypeId{0});
  m.graph.add_edge(t0, t1, 0.0);
  m.graph.add_edge(t1, t0, 0.0);
  omsm.add_mode(std::move(m));
  EXPECT_FALSE(omsm.validate().empty());
}

TEST(Omsm, SelfLoopTransitionRejected) {
  Omsm omsm;
  const ModeId a = omsm.add_mode(make_mode("a", 1.0));
  omsm.add_transition({a, a});
  EXPECT_FALSE(omsm.validate().empty());
}

TEST(Omsm, UnknownTransitionEndpointRejected) {
  Omsm omsm;
  const ModeId a = omsm.add_mode(make_mode("a", 1.0));
  omsm.add_transition({a, ModeId{9}});
  EXPECT_FALSE(omsm.validate().empty());
}

TEST(Omsm, NonPositiveDeadlineRejected) {
  Omsm omsm;
  Mode m = make_mode("a", 1.0);
  m.graph.set_deadline(TaskId{0}, -0.5);
  omsm.add_mode(std::move(m));
  EXPECT_FALSE(omsm.validate().empty());
}

TEST(Omsm, DefaultTransitionIsUnconstrained) {
  const ModeTransition t{ModeId{0}, ModeId{1}};
  EXPECT_TRUE(std::isinf(t.max_transition_time));
}

}  // namespace
}  // namespace mmsyn
