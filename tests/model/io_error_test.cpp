// Table-driven malformed-input tests for the .mmsyn parser: every entry
// is a broken variation of a small valid system, and the test asserts the
// reported line number and message substring — the diagnostics a user
// actually sees.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "model/io.hpp"

namespace mmsyn {
namespace {

// A minimal valid system; line numbers below refer to this exact text.
constexpr const char* kValidText =
    "system tiny\n"                                       // 1
    "pe CPU kind=GPP static=1e-4\n"                       // 2
    "pe ACC kind=ASIC area=100 static=1e-5\n"             // 3
    "cl BUS bandwidth=1e6 attached=CPU,ACC\n"             // 4
    "type FFT\n"                                          // 5
    "impl FFT CPU time=1e-3 power=0.2\n"                  // 6
    "impl FFT ACC time=1e-4 power=0.01 area=50\n"         // 7
    "mode run psi=1.0 period=0.01\n"                      // 8
    "task a FFT\n"                                        // 9
    "task b FFT deadline=0.005\n"                         // 10
    "edge a b bits=100\n";                                // 11

struct ErrorCase {
  const char* name;
  std::string text;
  int expected_line;
  const char* message_substring;
};

std::string replace_line(int line, const std::string& replacement) {
  std::istringstream is(kValidText);
  std::ostringstream os;
  std::string text;
  int number = 0;
  while (std::getline(is, text))
    os << (++number == line ? replacement : text) << "\n";
  return os.str();
}

std::vector<ErrorCase> error_cases() {
  return {
      {"DuplicatePe", replace_line(3, "pe CPU kind=ASIC area=1"), 3,
       "duplicate PE"},
      {"DuplicateType", std::string(kValidText) + "type FFT\n", 12,
       "duplicate type"},
      {"DuplicateMode", std::string(kValidText) + "mode run psi=0 period=1\n",
       12, "duplicate mode"},
      {"DuplicateTask", replace_line(10, "task a FFT"), 10,
       "duplicate task"},
      {"TaskBeforeMode", replace_line(8, "task early FFT"), 8,
       "'task' before any 'mode'"},
      {"EdgeBeforeMode",
       "system t\npe P kind=GPP\ntype X\nedge a b bits=1\n", 4,
       "'edge' before any 'mode'"},
      {"UnknownKeyword", replace_line(11, "egde a b bits=100"), 11,
       "unknown keyword"},
      {"UnknownPeKind", replace_line(2, "pe CPU kind=QPU"), 2,
       "unknown PE kind"},
      {"UnknownTypeInImpl", replace_line(6, "impl DCT CPU time=1 power=1"),
       6, "unknown type"},
      {"UnknownPeInAttach", replace_line(4, "cl BUS bandwidth=1e6 attached=GPU"),
       4, "unknown PE"},
      {"UnknownEdgeEndpoint", replace_line(11, "edge a z bits=100"), 11,
       "unknown task"},
      {"BadNumber", replace_line(8, "mode run psi=lots period=0.01"), 8,
       "not a number"},
      {"TrailingJunkNumber", replace_line(8, "mode run psi=1.0x period=0.01"),
       8, "trailing junk"},
      {"BadNumberInLevels", replace_line(2, "pe CPU kind=GPP levels=1.2,oops"),
       2, "not a number"},
      {"MissingRequiredOption", replace_line(4, "cl BUS attached=CPU,ACC"), 4,
       "missing option 'bandwidth'"},
      {"MissingPositional", replace_line(5, "type"), 5, "missing argument"},
      {"TruncatedMapLine", replace_line(11, "edge a"), 11,
       "missing argument"},
  };
}

TEST(IoErrorTable, ValidBaseTextParses) {
  EXPECT_NO_THROW((void)system_from_string(kValidText));
}

TEST(IoErrorTable, EveryCaseReportsLineAndMessage) {
  for (const ErrorCase& c : error_cases()) {
    SCOPED_TRACE(c.name);
    try {
      (void)system_from_string(c.text);
      ADD_FAILURE() << "expected ParseError";
    } catch (const ParseError& e) {
      EXPECT_EQ(e.line(), c.expected_line);
      EXPECT_TRUE(e.file().empty());  // string input: no path
      EXPECT_NE(e.message().find(c.message_substring), std::string::npos)
          << "message was: " << e.message();
      EXPECT_NE(std::string(e.what()).find(c.message_substring),
                std::string::npos);
    }
  }
}

TEST(IoErrorFile, LoadAttachesPathAndLine) {
  const std::string path = std::string(::testing::TempDir()) + "broken.mmsyn";
  {
    std::ofstream os(path);
    os << replace_line(8, "mode run psi=nope period=0.01");
  }
  try {
    (void)load_system(path);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.file(), path);
    EXPECT_EQ(e.line(), 8);
    // what() renders as "path:line: message" — directly clickable.
    EXPECT_NE(std::string(e.what()).find(path + ":8:"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(IoErrorFile, MissingFileIsParseErrorWithPath) {
  const std::string path = "/nonexistent/dir/x.mmsyn";
  try {
    (void)load_system(path);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.file(), path);
    EXPECT_EQ(e.line(), 0);
    EXPECT_NE(e.message().find("cannot open"), std::string::npos);
  }
}

TEST(IoErrorFile, SaveToUnwritablePathIsParseError) {
  const System system = system_from_string(kValidText);
  try {
    save_system("/nonexistent/dir/out.mmsyn", system);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.file(), "/nonexistent/dir/out.mmsyn");
    EXPECT_NE(e.message().find("cannot open"), std::string::npos);
  }
}

}  // namespace
}  // namespace mmsyn
