// Property-based sweeps: structural invariants that must hold for *every*
// generated system and *every* well-formed mapping, exercised over a grid
// of generator seeds (TEST_P).
#include <gtest/gtest.h>

#include "core/allocation_builder.hpp"
#include "core/genome.hpp"
#include "dvs/dvs_graph.hpp"
#include "dvs/pv_dvs.hpp"
#include "energy/evaluator.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/validate.hpp"
#include "tgff/generator.hpp"

namespace mmsyn {
namespace {

System make_system(std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.tasks_per_mode_min = 8;
  cfg.tasks_per_mode_max = 16;
  return generate_system(cfg, "prop" + std::to_string(seed));
}

class PropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  PropertyTest()
      : system_(make_system(GetParam())), codec_(system_), rng_(GetParam()) {}

  MultiModeMapping random_mapping() {
    return codec_.decode(codec_.random_genome(rng_));
  }

  System system_;
  GenomeCodec codec_;
  Rng rng_;
};

TEST_P(PropertyTest, GeneratedSystemsValidate) {
  const auto problems = system_.validate();
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST_P(PropertyTest, SchedulesRespectPrecedenceAndResources) {
  for (int trial = 0; trial < 5; ++trial) {
    const MultiModeMapping mapping = random_mapping();
    const CoreAllocation cores = build_core_allocation(system_, mapping);
    for (std::size_t m = 0; m < system_.omsm.mode_count(); ++m) {
      const Mode& mode = system_.omsm.mode(ModeId{static_cast<int>(m)});
      const ModeSchedule s =
          list_schedule({mode, mapping.modes[m], system_.arch, system_.tech,
                         cores.per_mode[m]});
      ASSERT_TRUE(s.routable);
      // Precedence.
      for (std::size_t e = 0; e < mode.graph.edge_count(); ++e) {
        const TaskEdge& edge = mode.graph.edge(EdgeId{static_cast<int>(e)});
        ASSERT_LE(s.tasks[edge.src.index()].finish, s.comms[e].start + 1e-9);
        ASSERT_LE(s.comms[e].finish, s.tasks[edge.dst.index()].start + 1e-9);
      }
      // Software PEs sequential.
      for (std::size_t i = 0; i < s.tasks.size(); ++i)
        for (std::size_t j = i + 1; j < s.tasks.size(); ++j) {
          if (s.tasks[i].pe != s.tasks[j].pe) continue;
          if (!is_software(system_.arch.pe(s.tasks[i].pe).kind)) continue;
          const bool disjoint = s.tasks[i].finish <= s.tasks[j].start + 1e-9 ||
                                s.tasks[j].finish <= s.tasks[i].start + 1e-9;
          ASSERT_TRUE(disjoint);
        }
      ASSERT_GE(s.makespan, 0.0);
    }
  }
}

TEST_P(PropertyTest, SchedulesPassTheIndependentValidator) {
  for (int trial = 0; trial < 5; ++trial) {
    const MultiModeMapping mapping = random_mapping();
    const CoreAllocation cores = build_core_allocation(system_, mapping);
    for (std::size_t m = 0; m < system_.omsm.mode_count(); ++m) {
      const Mode& mode = system_.omsm.mode(ModeId{static_cast<int>(m)});
      const ModeSchedule s =
          list_schedule({mode, mapping.modes[m], system_.arch, system_.tech,
                         cores.per_mode[m]});
      const auto violations = validate_schedule(
          mode, s, mapping.modes[m], system_.arch, system_.tech,
          cores.per_mode[m]);
      ASSERT_TRUE(violations.empty())
          << to_string(violations.front().kind) << ": "
          << violations.front().detail;
    }
  }
}

TEST_P(PropertyTest, DvsNeverIncreasesEnergyNorBreaksDeadlines) {
  for (int trial = 0; trial < 3; ++trial) {
    const MultiModeMapping mapping = random_mapping();
    const CoreAllocation cores = build_core_allocation(system_, mapping);
    for (std::size_t m = 0; m < system_.omsm.mode_count(); ++m) {
      const Mode& mode = system_.omsm.mode(ModeId{static_cast<int>(m)});
      const ModeSchedule s =
          list_schedule({mode, mapping.modes[m], system_.arch, system_.tech,
                         cores.per_mode[m]});
      const DvsGraph g = build_dvs_graph(mode, s, mapping.modes[m],
                                         system_.arch, system_.tech);
      const PvDvsResult r = run_pv_dvs(g, system_.arch);
      ASSERT_LE(r.total_energy, r.nominal_energy * (1 + 1e-9));
      for (std::size_t i = 0; i < g.node_count(); ++i) {
        ASSERT_GE(r.scaled_time[i], g.tmin[i] * (1 - 1e-9));
        ASSERT_LE(r.scaled_time[i],
                  g.tmin[i] * g.max_slowdown[i] * (1 + 1e-9));
        ASSERT_GE(r.energy[i], 0.0);
      }
      // Was the base schedule on time? Then scaling must keep it on time.
      bool base_on_time = true;
      for (std::size_t t = 0; t < mode.graph.task_count(); ++t) {
        double limit = mode.period;
        if (const auto& dl = mode.graph.task(TaskId{static_cast<int>(t)}).deadline)
          limit = std::min(limit, *dl);
        if (s.tasks[t].finish > limit * (1 + 1e-9)) base_on_time = false;
      }
      if (base_on_time) ASSERT_TRUE(r.deadlines_met);
    }
  }
}

TEST_P(PropertyTest, EvaluatorPowerDecomposesOverModes) {
  const MultiModeMapping mapping = random_mapping();
  const CoreAllocation cores = build_core_allocation(system_, mapping);
  const Evaluator evaluator(system_, EvaluationOptions{});
  const Evaluation e = evaluator.evaluate(mapping, cores);
  double sum = 0.0;
  for (std::size_t m = 0; m < e.modes.size(); ++m)
    sum += (e.modes[m].dyn_power + e.modes[m].static_power) *
           system_.omsm.mode(ModeId{static_cast<int>(m)}).probability;
  EXPECT_NEAR(e.avg_power_true, sum, 1e-12);
  EXPECT_GE(e.avg_power_true, 0.0);
}

TEST_P(PropertyTest, WeightedPowerIsLinearInWeights) {
  // avg_power_weighted must be the weights' convex combination of per-mode
  // powers — verified against an independently computed value.
  const MultiModeMapping mapping = random_mapping();
  const CoreAllocation cores = build_core_allocation(system_, mapping);
  std::vector<double> weights(system_.omsm.mode_count());
  for (std::size_t m = 0; m < weights.size(); ++m)
    weights[m] = 1.0 + static_cast<double>(m);
  EvaluationOptions opts;
  opts.weight_override = weights;
  const Evaluator evaluator(system_, opts);
  const Evaluation e = evaluator.evaluate(mapping, cores);
  double total_w = 0.0;
  for (double w : weights) total_w += w;
  double expected = 0.0;
  for (std::size_t m = 0; m < e.modes.size(); ++m)
    expected += (e.modes[m].dyn_power + e.modes[m].static_power) *
                weights[m] / total_w;
  EXPECT_NEAR(e.avg_power_weighted, expected, 1e-12);
}

TEST_P(PropertyTest, CoreAllocationCoversEveryHardwareMapping) {
  const MultiModeMapping mapping = random_mapping();
  const CoreAllocation cores = build_core_allocation(system_, mapping);
  for (std::size_t m = 0; m < system_.omsm.mode_count(); ++m) {
    const Mode& mode = system_.omsm.mode(ModeId{static_cast<int>(m)});
    for (std::size_t t = 0; t < mode.graph.task_count(); ++t) {
      const PeId pe = mapping.modes[m].task_to_pe[t];
      if (!is_hardware(system_.arch.pe(pe).kind)) continue;
      const TaskTypeId type = mode.graph.task(TaskId{static_cast<int>(t)}).type;
      EXPECT_GE(cores.cores(ModeId{static_cast<int>(m)}, pe).count_of(type), 1);
    }
  }
}

TEST_P(PropertyTest, AsicCoreSetsAreModeInvariant) {
  const MultiModeMapping mapping = random_mapping();
  const CoreAllocation cores = build_core_allocation(system_, mapping);
  for (PeId p : system_.arch.pe_ids()) {
    if (system_.arch.pe(p).kind != PeKind::kAsic) continue;
    for (std::size_t m = 1; m < system_.omsm.mode_count(); ++m)
      EXPECT_EQ(cores.cores(ModeId{0}, p),
                cores.cores(ModeId{static_cast<int>(m)}, p));
  }
}

TEST_P(PropertyTest, DvsGraphEnergyMatchesScheduleEnergy) {
  // Sum of node nominal energies == task energies + comm energies.
  const MultiModeMapping mapping = random_mapping();
  const CoreAllocation cores = build_core_allocation(system_, mapping);
  for (std::size_t m = 0; m < system_.omsm.mode_count(); ++m) {
    const Mode& mode = system_.omsm.mode(ModeId{static_cast<int>(m)});
    const ModeSchedule s =
        list_schedule({mode, mapping.modes[m], system_.arch, system_.tech,
                       cores.per_mode[m]});
    const DvsGraph g = build_dvs_graph(mode, s, mapping.modes[m],
                                       system_.arch, system_.tech);
    double node_energy = 0.0;
    for (const double e : g.e_nom) node_energy += e;
    double expected = 0.0;
    for (std::size_t t = 0; t < mode.graph.task_count(); ++t) {
      const TaskId id{static_cast<int>(t)};
      expected += system_.tech
                      .require(mode.graph.task(id).type,
                               mapping.modes[m].task_to_pe[t])
                      .energy();
    }
    for (const ScheduledComm& c : s.comms)
      if (!c.local && c.cl.valid())
        expected += system_.arch.cl(c.cl).transfer_power * c.duration();
    EXPECT_NEAR(node_energy, expected, expected * 1e-9 + 1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

}  // namespace
}  // namespace mmsyn
