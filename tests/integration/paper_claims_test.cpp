// Paper-claim integration tests: the qualitative results of the paper's
// evaluation section must hold on the reproduced benchmarks (scaled-down
// GA budgets keep these test-speed; the bench binaries run the full
// protocol).
#include <gtest/gtest.h>

#include "core/cosynth.hpp"

#include "../support/audit_every_result.hpp"
#include "tgff/motivational.hpp"
#include "tgff/smart_phone.hpp"
#include "tgff/suites.hpp"

namespace mmsyn {
namespace {

SynthesisOptions test_options(bool probabilities, bool dvs,
                              std::uint64_t seed) {
  SynthesisOptions options;
  options.consider_probabilities = probabilities;
  options.use_dvs = dvs;
  options.ga.population_size = 32;
  options.ga.max_generations = 150;
  options.ga.stagnation_limit = 40;
  options.seed = seed;
  return options;
}

double power_mw(const System& system, bool probabilities, bool dvs,
                std::uint64_t seed = 21) {
  return audited_synthesize(system, test_options(probabilities, dvs, seed))
             .evaluation.avg_power_true *
         1e3;
}

TEST(PaperClaims, Fig2ExactNumbers) {
  const System system = make_motivational_example1();
  SynthesisOptions base = test_options(false, false, 1);
  EXPECT_NEAR(exhaustive_search(system, base).evaluation.avg_power_true * 1e3,
              26.7158, 1e-3);
  SynthesisOptions prop = test_options(true, false, 1);
  EXPECT_NEAR(exhaustive_search(system, prop).evaluation.avg_power_true * 1e3,
              15.7423, 1e-3);
}

TEST(PaperClaims, Table1ShapeOnCalibratedInstances) {
  // Probability-aware synthesis wins clearly on the high-head-room
  // instances (paper: up to 62%).
  for (int idx : {6, 9, 11}) {
    const System system = make_mul(idx);
    const double base = power_mw(system, false, false);
    const double prop = power_mw(system, true, false);
    EXPECT_LT(prop, base * 0.95) << "mul" << idx;
  }
}

TEST(PaperClaims, Table2DvsReducesBothApproaches) {
  const System system = make_mul(9);
  const double base_nominal = power_mw(system, false, false);
  const double base_dvs = power_mw(system, false, true);
  const double prop_nominal = power_mw(system, true, false);
  const double prop_dvs = power_mw(system, true, true);
  EXPECT_LT(base_dvs, base_nominal);
  EXPECT_LT(prop_dvs, prop_nominal);
  // And probabilities still help on top of DVS (paper Table 2).
  EXPECT_LT(prop_dvs, base_dvs);
}

TEST(PaperClaims, SmartPhoneProbabilitiesHelp) {
  const System system = make_smart_phone();
  const double base = power_mw(system, false, false, 5);
  const double prop = power_mw(system, true, false, 5);
  EXPECT_LT(prop, base * 0.98);
}

TEST(PaperClaims, ProbabilityAwareNeverLosesOnAverage) {
  // Across a sample of the suite and seeds, the proposed approach must win
  // or tie in aggregate (individual runs may tie).
  double base_total = 0.0, prop_total = 0.0;
  for (int idx : {5, 6, 9}) {
    const System system = make_mul(idx);
    for (std::uint64_t seed : {31ull, 32ull}) {
      base_total += power_mw(system, false, false, seed);
      prop_total += power_mw(system, true, false, seed);
    }
  }
  EXPECT_LT(prop_total, base_total);
}

TEST(PaperClaims, HardwareDvsExtensionHelps) {
  // Section 4.2: scaling hardware cores (Fig. 5) must not lose against
  // software-only DVS on an instance with DVS hardware.
  const System system = make_mul(3);  // 4 PEs; some DVS hardware likely
  SynthesisOptions sw_only = test_options(true, true, 9);
  sw_only.dvs_in_loop.scale_hardware = false;
  sw_only.dvs_final.scale_hardware = false;
  SynthesisOptions sw_hw = test_options(true, true, 9);
  const double p_sw = audited_synthesize(system, sw_only).evaluation.avg_power_true;
  const double p_hw = audited_synthesize(system, sw_hw).evaluation.avg_power_true;
  EXPECT_LE(p_hw, p_sw * 1.05);
}

}  // namespace
}  // namespace mmsyn
