// Headline-number regression pins.
//
// These run the *default* synthesis configuration (the one the bench
// binaries use) on fixed seeds and assert loose lower bounds on the
// paper-shape results, so a future change that silently destroys the
// reproduction (e.g. a generator or GA regression) fails the suite
// instead of only showing up in the bench output.
#include <gtest/gtest.h>

#include "core/cosynth.hpp"

#include "../support/audit_every_result.hpp"
#include "tgff/smart_phone.hpp"
#include "tgff/suites.hpp"

namespace mmsyn {
namespace {

double reduction_pct(const System& system, bool dvs, std::uint64_t seed) {
  SynthesisOptions options;
  options.use_dvs = dvs;
  options.seed = seed;
  options.consider_probabilities = false;
  const double base =
      audited_synthesize(system, options).evaluation.avg_power_true;
  options.consider_probabilities = true;
  const double prop =
      audited_synthesize(system, options).evaluation.avg_power_true;
  return 100.0 * (base - prop) / base;
}

TEST(Regression, Mul9Table1ReductionStaysLarge) {
  // Final bench measurement: 37.4 % (paper: 38.28 %).
  EXPECT_GT(reduction_pct(make_mul(9), false, 1), 20.0);
}

TEST(Regression, Mul11Table1ReductionStaysLarge) {
  // Final bench measurement: 58.5 % (paper: 40.70 %).
  EXPECT_GT(reduction_pct(make_mul(11), false, 1), 30.0);
}

TEST(Regression, Mul6Table1ReductionStaysDoubleDigit) {
  // Final bench measurement: 26.4 % (paper: 22.46 %).
  EXPECT_GT(reduction_pct(make_mul(6), false, 1), 12.0);
}

TEST(Regression, SmartPhoneNoDvsReductionStaysLarge) {
  // Final bench measurement: 33.5 % (paper: 30.76 %).
  EXPECT_GT(reduction_pct(make_smart_phone(), false, 1), 15.0);
}

TEST(Regression, Mul9DvsReductionStaysPositive) {
  // Final bench measurement: 24.0 % (paper: 34.66 %).
  EXPECT_GT(reduction_pct(make_mul(9), true, 1), 10.0);
}

TEST(Regression, DvsAlwaysBeatsNominalOnSuiteSample) {
  for (int idx : {6, 9, 11}) {
    const System system = make_mul(idx);
    SynthesisOptions options;
    options.seed = 2;
    options.use_dvs = false;
    const double nominal =
        audited_synthesize(system, options).evaluation.avg_power_true;
    options.use_dvs = true;
    const double dvs = audited_synthesize(system, options).evaluation.avg_power_true;
    EXPECT_LT(dvs, nominal * 0.8) << "mul" << idx;
  }
}

}  // namespace
}  // namespace mmsyn
