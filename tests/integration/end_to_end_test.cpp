// End-to-end integration: full synthesis runs on suite instances, checking
// cross-module invariants (well-formed mappings, valid schedules, feasible
// results, energy bookkeeping) rather than specific numbers.
#include <gtest/gtest.h>

#include "core/cosynth.hpp"

#include "../support/audit_every_result.hpp"
#include "tgff/smart_phone.hpp"
#include "tgff/suites.hpp"

namespace mmsyn {
namespace {

GaOptions test_ga() {
  GaOptions ga;
  ga.population_size = 32;
  ga.max_generations = 120;
  ga.stagnation_limit = 30;
  return ga;
}

void expect_result_consistent(const System& system,
                              const SynthesisResult& result) {
  // Mapping well-formed.
  EXPECT_TRUE(mapping_is_well_formed(result.mapping, system.omsm,
                                     system.arch, system.tech));
  // Evaluation carries one entry per mode with retained schedules.
  ASSERT_EQ(result.evaluation.modes.size(), system.omsm.mode_count());
  for (std::size_t m = 0; m < system.omsm.mode_count(); ++m) {
    const ModeEvaluation& me = result.evaluation.modes[m];
    const Mode& mode = system.omsm.mode(ModeId{static_cast<int>(m)});
    ASSERT_TRUE(me.schedule.has_value());
    const ModeSchedule& sched = *me.schedule;
    ASSERT_EQ(sched.tasks.size(), mode.graph.task_count());
    // Precedence holds in the final schedule.
    for (std::size_t e = 0; e < mode.graph.edge_count(); ++e) {
      const TaskEdge& edge = mode.graph.edge(EdgeId{static_cast<int>(e)});
      EXPECT_LE(sched.tasks[edge.src.index()].finish,
                sched.comms[e].start + 1e-9);
      EXPECT_LE(sched.comms[e].finish,
                sched.tasks[edge.dst.index()].start + 1e-9);
    }
    // Active components are exactly those hosting work.
    for (std::size_t p = 0; p < system.arch.pe_count(); ++p) {
      bool hosts = false;
      for (PeId pe : result.mapping.modes[m].task_to_pe)
        if (pe.index() == p) hosts = true;
      EXPECT_EQ(me.pe_active[p], hosts);
    }
    EXPECT_GE(me.dyn_power, 0.0);
    EXPECT_GE(me.static_power, 0.0);
  }
  // Power aggregation matches the per-mode numbers.
  double expected = 0.0;
  for (std::size_t m = 0; m < system.omsm.mode_count(); ++m)
    expected += (result.evaluation.modes[m].dyn_power +
                 result.evaluation.modes[m].static_power) *
                system.omsm.mode(ModeId{static_cast<int>(m)}).probability;
  EXPECT_NEAR(result.evaluation.avg_power_true, expected, 1e-12);
  EXPECT_GT(result.evaluations, 0);
}

class EndToEndTest : public ::testing::TestWithParam<int> {};

TEST_P(EndToEndTest, SynthesisProducesConsistentFeasibleResults) {
  const System system = make_mul(GetParam());
  SynthesisOptions options;
  options.ga = test_ga();
  options.seed = 11;
  const SynthesisResult result = audited_synthesize(system, options);
  expect_result_consistent(system, result);
  EXPECT_TRUE(result.evaluation.feasible()) << system.name;
}

INSTANTIATE_TEST_SUITE_P(SuiteSample, EndToEndTest,
                         ::testing::Values(2, 5, 6, 9, 11));

TEST(EndToEndDvs, DvsSynthesisFeasibleAndCheaper) {
  const System system = make_mul(9);
  SynthesisOptions options;
  options.ga = test_ga();
  options.seed = 4;
  const SynthesisResult nominal = audited_synthesize(system, options);
  options.use_dvs = true;
  const SynthesisResult dvs = audited_synthesize(system, options);
  expect_result_consistent(system, dvs);
  EXPECT_TRUE(dvs.evaluation.feasible());
  EXPECT_LT(dvs.evaluation.avg_power_true,
            nominal.evaluation.avg_power_true);
}

TEST(EndToEndPhone, SmartPhoneSynthesisIsFeasible) {
  const System system = make_smart_phone();
  SynthesisOptions options;
  options.ga = test_ga();
  options.seed = 8;
  const SynthesisResult result = audited_synthesize(system, options);
  expect_result_consistent(system, result);
  EXPECT_TRUE(result.evaluation.feasible());
  // The dominant RLC mode must end up cheaper than the naive all-software
  // implementation at nominal voltage — optimising it is the whole point
  // of the methodology.
  const std::size_t rlc_idx =
      static_cast<std::size_t>(PhoneMode::kRadioLinkControl);
  const auto& rlc = result.evaluation.modes[rlc_idx];
  const Mode& rlc_mode = system.omsm.mode(ModeId{static_cast<int>(rlc_idx)});
  double sw_energy = 0.0;
  for (const Task& t : rlc_mode.graph.tasks())
    sw_energy += system.tech.require(t.type, PeId{0}).energy();
  const double naive_power =
      sw_energy / rlc_mode.period + system.arch.pe(PeId{0}).static_power;
  EXPECT_LT(rlc.dyn_power + rlc.static_power, naive_power);
}

TEST(EndToEndSeeds, DifferentSeedsGiveValidResults) {
  const System system = make_mul(11);
  SynthesisOptions options;
  options.ga = test_ga();
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    options.seed = seed;
    const SynthesisResult result = audited_synthesize(system, options);
    expect_result_consistent(system, result);
  }
}

}  // namespace
}  // namespace mmsyn
