// The staged per-mode evaluation pipeline (DESIGN.md §11): per-stage
// golden-artifact checks on the motivational and smart-phone suites,
// byte-identity of the staged composites against the whole evaluator
// (property-tested over random mutation chains), schedule-artifact reuse
// across DVS-option boundaries, the backend registry's actionable
// errors, and the profiler's no-perturbation contract.
#include "pipeline/mode_pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "common/rng.hpp"
#include "core/allocation_builder.hpp"
#include "core/genome.hpp"
#include "energy/evaluator.hpp"
#include "model/system.hpp"
#include "pipeline/backends.hpp"
#include "sched/validate.hpp"
#include "tgff/motivational.hpp"
#include "tgff/smart_phone.hpp"
#include "tgff/suites.hpp"

namespace mmsyn {
namespace {

/// Exact (bitwise) equality of two mode schedules.
void expect_schedules_identical(const ModeSchedule& a, const ModeSchedule& b) {
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].task, b.tasks[i].task);
    EXPECT_EQ(a.tasks[i].pe, b.tasks[i].pe);
    EXPECT_EQ(a.tasks[i].core_instance, b.tasks[i].core_instance);
    EXPECT_EQ(a.tasks[i].start, b.tasks[i].start);
    EXPECT_EQ(a.tasks[i].finish, b.tasks[i].finish);
  }
  ASSERT_EQ(a.comms.size(), b.comms.size());
  for (std::size_t i = 0; i < a.comms.size(); ++i) {
    EXPECT_EQ(a.comms[i].edge, b.comms[i].edge);
    EXPECT_EQ(a.comms[i].cl, b.comms[i].cl);
    EXPECT_EQ(a.comms[i].local, b.comms[i].local);
    EXPECT_EQ(a.comms[i].start, b.comms[i].start);
    EXPECT_EQ(a.comms[i].finish, b.comms[i].finish);
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.routable, b.routable);
}

/// Exact (bitwise) equality of two mode evaluations (schedules excluded).
void expect_mode_evals_identical(const ModeEvaluation& a,
                                 const ModeEvaluation& b) {
  EXPECT_EQ(a.dyn_energy, b.dyn_energy);
  EXPECT_EQ(a.dyn_power, b.dyn_power);
  EXPECT_EQ(a.static_power, b.static_power);
  EXPECT_EQ(a.timing_violation, b.timing_violation);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.pe_active, b.pe_active);
  EXPECT_EQ(a.cl_active, b.cl_active);
  EXPECT_EQ(a.routable, b.routable);
}

void expect_evaluations_identical(const Evaluation& a, const Evaluation& b) {
  ASSERT_EQ(a.modes.size(), b.modes.size());
  for (std::size_t m = 0; m < a.modes.size(); ++m) {
    SCOPED_TRACE("mode " + std::to_string(m));
    expect_mode_evals_identical(a.modes[m], b.modes[m]);
  }
  EXPECT_EQ(a.avg_power_true, b.avg_power_true);
  EXPECT_EQ(a.avg_power_weighted, b.avg_power_weighted);
  EXPECT_EQ(a.pe_used_area, b.pe_used_area);
  EXPECT_EQ(a.pe_area_violation, b.pe_area_violation);
  EXPECT_EQ(a.total_area_violation, b.total_area_violation);
  EXPECT_EQ(a.transition_times, b.transition_times);
  EXPECT_EQ(a.transition_violations, b.transition_violations);
  EXPECT_EQ(a.weighted_timing_violation, b.weighted_timing_violation);
}

/// For every mode of `system` under a deterministic mapping: run the five
/// stages one by one and demand each composite (`build_schedule`,
/// `evaluate_scheduled`, `run`) reproduces the hand-chained artifacts
/// bitwise, and that the artifacts satisfy their stage contracts.
void check_stage_chain(const System& system, bool use_dvs,
                       std::uint64_t seed) {
  PipelineOptions popts;
  popts.use_dvs = use_dvs;
  const ModePipeline pipeline(system, popts);

  const GenomeCodec codec(system);
  Rng rng(seed);
  const MultiModeMapping mapping = codec.decode(codec.random_genome(rng));
  const CoreAllocation cores = build_core_allocation(system, mapping, {});

  for (std::size_t m = 0; m < system.omsm.mode_count(); ++m) {
    SCOPED_TRACE("mode " + std::to_string(m));
    const Mode& mode = system.omsm.mode(ModeId{static_cast<int>(m)});
    const ModeMapping& mm = mapping.modes[m];
    const std::vector<CoreSet>& hw = cores.per_mode[m];

    // Stage 1: one priority per task, all finite.
    const CommMapping comm = pipeline.comm_mapping(m, mm, hw);
    ASSERT_EQ(comm.priority.size(), mode.graph.task_count());
    for (const double p : comm.priority) ASSERT_TRUE(std::isfinite(p));

    // Stage 2: legal schedule; composite 1-2 is bitwise the same.
    const ModeSchedule sched = pipeline.schedule(m, mm, hw, comm);
    ASSERT_TRUE(sched.routable);
    EXPECT_TRUE(
        validate_schedule(mode, sched, mm, system.arch, system.tech, hw)
            .empty());
    EXPECT_EQ(sched.makespan, schedule_makespan(sched));
    expect_schedules_identical(sched, pipeline.build_schedule(m, mm, hw));

    // Stage 3: a DVS graph exactly when the DVS backend is on.
    const SerializedSchedule serialized = pipeline.serialize(m, mm, sched);
    EXPECT_EQ(serialized.has_graph, use_dvs);

    // Stage 4: scaling never exceeds the nominal energy.
    const ScaledSchedule scaled = pipeline.scale(m, mm, sched, serialized);
    ASSERT_GE(scaled.dyn_energy, 0.0);
    EXPECT_EQ(scaled.dvs.has_value(), use_dvs);
    if (scaled.dvs) {
      EXPECT_LE(scaled.dvs->total_energy,
                scaled.dvs->nominal_energy * (1 + 1e-9));
    }

    // Stage 5: golden aggregates re-derived from the shared sched
    // routines; composites 3-5 and 1-5 are bitwise the same chain.
    const ModeEvaluation final_eval = pipeline.finalize(m, mm, scaled, sched);
    EXPECT_EQ(final_eval.dyn_energy, scaled.dyn_energy);
    EXPECT_EQ(final_eval.dyn_power, scaled.dyn_energy / mode.period);
    EXPECT_EQ(final_eval.makespan, schedule_makespan(sched));
    EXPECT_EQ(final_eval.timing_violation,
              schedule_timing_violation(mode, sched));
    ASSERT_EQ(final_eval.pe_active.size(), system.arch.pe_count());
    ASSERT_EQ(final_eval.cl_active.size(), system.arch.cl_count());
    expect_mode_evals_identical(final_eval,
                                pipeline.evaluate_scheduled(m, mm, sched));
    expect_mode_evals_identical(final_eval, pipeline.run(m, mm, hw));
  }
}

TEST(ModePipelineStages, Motivational1Chain) {
  check_stage_chain(make_motivational_example1(), false, 11);
  check_stage_chain(make_motivational_example1(), true, 11);
}

TEST(ModePipelineStages, Motivational2Chain) {
  check_stage_chain(make_motivational_example2(), false, 12);
  check_stage_chain(make_motivational_example2(), true, 12);
}

TEST(ModePipelineStages, SmartPhoneChain) {
  check_stage_chain(make_smart_phone(), false, 13);
  check_stage_chain(make_smart_phone(), true, 13);
}

/// The evaluator's per-mode entry is exactly the pipeline's full chain.
TEST(ModePipelineStages, EvaluatorEvaluateModeIsPipelineRun) {
  const System system = make_motivational_example1();
  EvaluationOptions options;
  options.use_dvs = true;
  const Evaluator evaluator(system, options);
  const GenomeCodec codec(system);
  Rng rng(7);
  const MultiModeMapping mapping = codec.decode(codec.random_genome(rng));
  const CoreAllocation cores = build_core_allocation(system, mapping, {});
  for (std::size_t m = 0; m < system.omsm.mode_count(); ++m) {
    SCOPED_TRACE("mode " + std::to_string(m));
    expect_mode_evals_identical(
        evaluator.evaluate_mode(m, mapping, cores),
        evaluator.pipeline().run(m, mapping.modes[m], cores.per_mode[m]));
  }
}

/// Property: along a chain of random point mutations, evaluating through
/// the stage-granular cache equals the cache-disabled (legacy whole-run)
/// evaluation bitwise at every step.
TEST(ModePipelineProperty, StagedEqualsLegacyOnMutationChains) {
  for (const bool use_dvs : {false, true}) {
    SCOPED_TRACE(use_dvs ? "pv-dvs" : "none");
    const System system = make_mul(4);
    EvaluationOptions options;
    options.use_dvs = use_dvs;
    const Evaluator evaluator(system, options);
    const GenomeCodec codec(system);
    Rng rng(23);
    ModeEvalCache cache;
    Genome genome = codec.random_genome(rng);
    for (int step = 0; step < 25; ++step) {
      SCOPED_TRACE("step " + std::to_string(step));
      const std::size_t g = rng.pick_index(codec.genome_length());
      genome[g] = static_cast<std::uint16_t>(
          rng.pick_index(codec.candidates(g).size()));
      const MultiModeMapping mapping = codec.decode(genome);
      const CoreAllocation cores = build_core_allocation(system, mapping, {});
      expect_evaluations_identical(evaluator.evaluate(mapping, cores),
                                   evaluator.evaluate(mapping, cores, &cache));
    }
    EXPECT_GT(cache.hits(), 0);
    // The schedule store is probed exactly on whole-mode misses.
    EXPECT_EQ(cache.schedule_lookups(), cache.lookups() - cache.hits());
  }
}

/// A schedule artifact cached by a coarse-DVS evaluator is served to a
/// fine-DVS, keep-schedules evaluator (the cosynth final-evaluation
/// pattern) without changing a single bit of the result.
TEST(ModePipelineCache, ScheduleArtifactsCrossDvsOptionBoundaries) {
  const System system = make_mul(3);
  EvaluationOptions coarse;
  coarse.use_dvs = true;
  coarse.dvs = PvDvsOptions{12, 0.5, 1e-5, true};
  EvaluationOptions fine;
  fine.use_dvs = true;
  fine.keep_schedules = true;
  const Evaluator coarse_eval(system, coarse);
  const Evaluator fine_eval(system, fine);
  // Same scheduler backend, different DVS knobs: the schedule-stage keys
  // must agree while the whole-mode keys must not.
  EXPECT_EQ(coarse_eval.schedule_fingerprint(),
            fine_eval.schedule_fingerprint());
  EXPECT_NE(coarse_eval.options_fingerprint(),
            fine_eval.options_fingerprint());

  const GenomeCodec codec(system);
  Rng rng(5);
  const MultiModeMapping mapping = codec.decode(codec.random_genome(rng));
  const CoreAllocation cores = build_core_allocation(system, mapping, {});

  ModeEvalCache cache;
  (void)coarse_eval.evaluate(mapping, cores, &cache);
  const long seeded = cache.schedule_size();
  ASSERT_EQ(seeded, static_cast<long>(system.omsm.mode_count()));

  const Evaluation cold = fine_eval.evaluate(mapping, cores);
  const Evaluation warm = fine_eval.evaluate(mapping, cores, &cache);
  expect_evaluations_identical(cold, warm);
  // keep_schedules bypasses the whole-mode store but hits every cached
  // schedule artifact.
  EXPECT_EQ(cache.schedule_hits(), seeded);
  for (std::size_t m = 0; m < warm.modes.size(); ++m)
    EXPECT_TRUE(warm.modes[m].schedule.has_value());
}

TEST(ModePipelineBackends, RegistryRoundTripsAndDefaults) {
  ASSERT_FALSE(scheduler_backends().empty());
  ASSERT_FALSE(dvs_backends().empty());
  // The first entries pin the paper's reference behaviour.
  EXPECT_EQ(scheduler_backends().front().policy,
            SchedulingPolicy::kBottomLevel);
  EXPECT_FALSE(dvs_backends().front().use_dvs);
  for (const auto& b : scheduler_backends())
    EXPECT_EQ(resolve_scheduler_backend(b.name), b.policy);
  for (const auto& b : dvs_backends())
    EXPECT_EQ(resolve_dvs_backend(b.name), b.use_dvs);
  EXPECT_STREQ(scheduler_backend_name(SchedulingPolicy::kBottomLevel),
               "bottom-level");
  EXPECT_STREQ(dvs_backend_name(true), "pv-dvs");
  EXPECT_STREQ(dvs_backend_name(false), "none");
}

TEST(ModePipelineBackends, UnknownNamesThrowActionableErrors) {
  try {
    (void)resolve_scheduler_backend("simulated-annealing");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("simulated-annealing"), std::string::npos);
    for (const auto& b : scheduler_backends())
      EXPECT_NE(msg.find(b.name), std::string::npos) << msg;
  }
  try {
    (void)resolve_dvs_backend("magic");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("magic"), std::string::npos);
    for (const auto& b : dvs_backends())
      EXPECT_NE(msg.find(b.name), std::string::npos) << msg;
  }
}

/// Distinct scheduler backends change the schedule fingerprint (their
/// artifacts must never alias in the stage cache).
TEST(ModePipelineBackends, SchedulerBackendsFingerprintDistinctly) {
  const System system = make_motivational_example1();
  std::vector<std::uint64_t> fps;
  for (const auto& b : scheduler_backends()) {
    PipelineOptions popts;
    popts.scheduling_policy = b.policy;
    fps.push_back(ModePipeline(system, popts).schedule_fingerprint());
  }
  for (std::size_t i = 0; i < fps.size(); ++i)
    for (std::size_t j = i + 1; j < fps.size(); ++j)
      EXPECT_NE(fps[i], fps[j]);
}

/// Attaching a profiler records every stage call without perturbing the
/// result.
TEST(ModePipelineProfile, ProfilerCountsWithoutPerturbing) {
  const System system = make_motivational_example1();
  const GenomeCodec codec(system);
  Rng rng(3);
  const MultiModeMapping mapping = codec.decode(codec.random_genome(rng));
  const CoreAllocation cores = build_core_allocation(system, mapping, {});

  EvaluationOptions plain;
  plain.use_dvs = true;
  PipelineProfiler profiler;
  EvaluationOptions profiled = plain;
  profiled.profiler = &profiler;

  const Evaluator a(system, plain);
  const Evaluator b(system, profiled);
  // Instrumentation must not leak into fingerprints or results.
  EXPECT_EQ(a.options_fingerprint(), b.options_fingerprint());
  expect_evaluations_identical(a.evaluate(mapping, cores),
                               b.evaluate(mapping, cores));

  const auto n = static_cast<long>(system.omsm.mode_count());
  for (const PipelineStage s :
       {PipelineStage::kCommMapping, PipelineStage::kSchedule,
        PipelineStage::kSerialize, PipelineStage::kScale,
        PipelineStage::kFinalize}) {
    SCOPED_TRACE(to_string(s));
    EXPECT_EQ(profiler.stats(s).calls, n);
    EXPECT_GE(profiler.stats(s).seconds, 0.0);
  }
  const std::string table = profiler.table(1, 2, 3, 4);
  for (const char* stage : {"comm-mapping", "schedule", "serialize", "scale",
                            "finalize"})
    EXPECT_NE(table.find(stage), std::string::npos) << table;

  profiler.reset();
  EXPECT_EQ(profiler.stats(PipelineStage::kSchedule).calls, 0);
}

}  // namespace
}  // namespace mmsyn
