#include "dvs/voltage_schedule.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "dvs/voltage_model.hpp"
#include "model/architecture.hpp"

namespace mmsyn {
namespace {

class VoltageScheduleTest : public ::testing::Test {
 protected:
  VoltageScheduleTest() {
    Pe pe;
    pe.name = "P";
    pe.dvs_enabled = true;
    pe.voltage_levels = {1.2, 1.9, 2.6, 3.3};
    pe.threshold_voltage = 0.8;
    pe_ = arch_.add_pe(pe);
    Pe fixed;
    fixed.name = "F";
    fixed_ = arch_.add_pe(fixed);
  }

  /// Single-node graph plus a PvDvsResult with the given scaled time.
  std::pair<DvsGraph, PvDvsResult> single(double tmin, double target,
                                          bool scalable, PeId pe) {
    DvsGraph g;
    g.kind.push_back(static_cast<std::uint8_t>(DvsNodeKind::kTask));
    g.ref.push_back(0);
    g.pe.push_back(pe.value());
    g.tmin.push_back(tmin);
    g.e_nom.push_back(1e-3);
    g.scalable.push_back(scalable ? 1 : 0);
    g.max_slowdown.push_back(scalable ? 100.0 : 1.0);
    g.deadline.push_back(std::numeric_limits<double>::infinity());
    g.succ_off.assign(2, 0);
    g.pred_off.assign(2, 0);
    g.topo.push_back(0);
    PvDvsResult r;
    r.scaled_time = {target};
    r.voltage = {3.3};
    r.energy = {1e-3};
    return {std::move(g), std::move(r)};
  }

  Architecture arch_;
  PeId pe_, fixed_;
};

TEST_F(VoltageScheduleTest, UnscaledTaskGetsOneNominalSlice) {
  auto [g, r] = single(10e-3, 10e-3, true, pe_);
  const VoltageSchedule vs = derive_voltage_schedule(g, r, arch_);
  ASSERT_EQ(vs.activities.size(), 1u);
  ASSERT_EQ(vs.activities[0].slices.size(), 1u);
  EXPECT_DOUBLE_EQ(vs.activities[0].slices[0].voltage, 3.3);
  EXPECT_DOUBLE_EQ(vs.activities[0].slices[0].duration, 10e-3);
}

TEST_F(VoltageScheduleTest, UnscalableNodeStaysNominal) {
  auto [g, r] = single(10e-3, 10e-3, false, fixed_);
  const VoltageSchedule vs = derive_voltage_schedule(g, r, arch_);
  ASSERT_EQ(vs.activities[0].slices.size(), 1u);
  EXPECT_DOUBLE_EQ(vs.activities[0].slices[0].voltage, 3.3);
}

TEST_F(VoltageScheduleTest, BetweenLevelsSplitsIntoTwoSlices) {
  const VoltageModel model(3.3, 0.8);
  const double target =
      10e-3 * 0.5 * (model.slowdown(2.6) + model.slowdown(1.9));
  auto [g, r] = single(10e-3, target, true, pe_);
  const VoltageSchedule vs = derive_voltage_schedule(g, r, arch_);
  const auto& slices = vs.activities[0].slices;
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_DOUBLE_EQ(slices[0].voltage, 2.6);
  EXPECT_DOUBLE_EQ(slices[1].voltage, 1.9);
  // Durations fill the target exactly; workload fractions sum to 1.
  EXPECT_NEAR(slices[0].duration + slices[1].duration, target, 1e-12);
  EXPECT_NEAR(slices[0].workload_fraction + slices[1].workload_fraction, 1.0,
              1e-12);
  // Each slice's duration is consistent with its share of work.
  EXPECT_NEAR(slices[0].duration,
              slices[0].workload_fraction * 10e-3 * model.slowdown(2.6),
              1e-12);
}

TEST_F(VoltageScheduleTest, ExactLevelGetsSingleSlice) {
  const VoltageModel model(3.3, 0.8);
  const double target = 10e-3 * model.slowdown(1.9);
  auto [g, r] = single(10e-3, target, true, pe_);
  const VoltageSchedule vs = derive_voltage_schedule(g, r, arch_);
  ASSERT_EQ(vs.activities[0].slices.size(), 1u);
  EXPECT_DOUBLE_EQ(vs.activities[0].slices[0].voltage, 1.9);
}

TEST_F(VoltageScheduleTest, BeyondFloorRunsAtLowestAndIdles) {
  auto [g, r] = single(10e-3, 10.0, true, pe_);  // absurd slack
  const VoltageSchedule vs = derive_voltage_schedule(g, r, arch_);
  ASSERT_EQ(vs.activities[0].slices.size(), 1u);
  EXPECT_DOUBLE_EQ(vs.activities[0].slices[0].voltage, 1.2);
  // Finishes early: total_time < allotted.
  EXPECT_LT(vs.activities[0].total_time(), 10.0);
}

TEST_F(VoltageScheduleTest, SliceEnergyMatchesDiscreteEnergyModel) {
  const VoltageModel model(3.3, 0.8);
  const double target =
      10e-3 * (0.3 * model.slowdown(2.6) + 0.7 * model.slowdown(1.9));
  auto [g, r] = single(10e-3, target, true, pe_);
  const VoltageSchedule vs = derive_voltage_schedule(g, r, arch_);
  double slice_energy = 0.0;
  for (const VoltageSlice& s : vs.activities[0].slices)
    slice_energy +=
        s.workload_fraction * 1e-3 * model.energy_factor(s.voltage);
  const double expected = discrete_energy(1e-3, 10e-3, target,
                                          {1.2, 1.9, 2.6, 3.3}, 0.8);
  EXPECT_NEAR(slice_energy, expected, 1e-12);
}

TEST_F(VoltageScheduleTest, ToStringMentionsEverySlice) {
  const VoltageModel model(3.3, 0.8);
  const double target =
      10e-3 * 0.5 * (model.slowdown(2.6) + model.slowdown(1.9));
  auto [g, r] = single(10e-3, target, true, pe_);
  const VoltageSchedule vs = derive_voltage_schedule(g, r, arch_);
  const std::string text = vs.to_string(arch_);
  EXPECT_NE(text.find("task 0"), std::string::npos);
  EXPECT_NE(text.find("2.6 V"), std::string::npos);
  EXPECT_NE(text.find("1.9 V"), std::string::npos);
}

}  // namespace
}  // namespace mmsyn
