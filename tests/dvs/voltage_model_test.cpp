#include "dvs/voltage_model.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mmsyn {
namespace {

TEST(VoltageModel, NominalVoltageHasUnitSlowdown) {
  const VoltageModel m(3.3, 0.8);
  EXPECT_NEAR(m.slowdown(3.3), 1.0, 1e-12);
  EXPECT_NEAR(m.energy_factor(3.3), 1.0, 1e-12);
}

TEST(VoltageModel, SlowdownIncreasesAsVoltageDrops) {
  const VoltageModel m(3.3, 0.8);
  double previous = m.slowdown(3.3);
  for (double v = 3.2; v > 0.9; v -= 0.1) {
    const double s = m.slowdown(v);
    EXPECT_GT(s, previous) << "at v=" << v;
    previous = s;
  }
}

TEST(VoltageModel, EnergyFactorIsQuadratic) {
  const VoltageModel m(3.3, 0.8);
  EXPECT_NEAR(m.energy_factor(1.65), 0.25, 1e-12);
  EXPECT_NEAR(m.energy_factor(3.3 / 3.0), 1.0 / 9.0, 1e-12);
}

TEST(VoltageModel, KnownSlowdownValue) {
  // t(v)/tmin = (v / vmax) * ((vmax - vt) / (v - vt))^2.
  const VoltageModel m(3.3, 0.8);
  const double expected = (1.65 / 3.3) *
                          ((3.3 - 0.8) / (1.65 - 0.8)) *
                          ((3.3 - 0.8) / (1.65 - 0.8));
  EXPECT_NEAR(m.slowdown(1.65), expected, 1e-12);
}

TEST(VoltageModel, InverseRoundTrips) {
  const VoltageModel m(3.3, 0.8);
  for (double v : {1.0, 1.4, 2.0, 2.7, 3.1}) {
    const double s = m.slowdown(v);
    EXPECT_NEAR(m.voltage_for_slowdown(s), v, 1e-6);
  }
}

TEST(VoltageModel, InverseClampsAtNominal) {
  const VoltageModel m(3.3, 0.8);
  EXPECT_DOUBLE_EQ(m.voltage_for_slowdown(1.0), 3.3);
  EXPECT_DOUBLE_EQ(m.voltage_for_slowdown(0.5), 3.3);
}

TEST(VoltageModel, InverseClampsAtPhysicalFloor) {
  const VoltageModel m(3.3, 0.8);
  // Enormous stretch: voltage approaches (but stays above) vt.
  const double v = m.voltage_for_slowdown(1e9);
  EXPECT_GT(v, 0.8);
  EXPECT_LT(v, 0.9);
}

TEST(VoltageModel, MaxSlowdownMatchesVmin) {
  const VoltageModel m(3.3, 0.8);
  EXPECT_DOUBLE_EQ(m.max_slowdown(1.2), m.slowdown(1.2));
}

TEST(VoltageModel, AlphaParameterChangesCurve) {
  const VoltageModel quad(3.3, 0.8, 2.0);
  const VoltageModel lin(3.3, 0.8, 1.0);
  EXPECT_GT(quad.slowdown(1.2), lin.slowdown(1.2));
}

TEST(VoltageModel, InvalidParametersRejected) {
  EXPECT_THROW(VoltageModel(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(VoltageModel(3.3, 3.3), std::invalid_argument);
  EXPECT_THROW(VoltageModel(3.3, 4.0), std::invalid_argument);
  EXPECT_THROW(VoltageModel(3.3, 0.8, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace mmsyn
