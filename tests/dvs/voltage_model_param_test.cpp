// Parameterised property sweep over the voltage model: monotonicity and
// inverse consistency across a grid of (vmax, vt, alpha) electrical
// configurations.
#include <gtest/gtest.h>

#include <tuple>

#include "dvs/voltage_model.hpp"

namespace mmsyn {
namespace {

using Params = std::tuple<double, double, double>;  // vmax, vt, alpha

class VoltageModelSweep : public ::testing::TestWithParam<Params> {
 protected:
  VoltageModelSweep()
      : model_(std::get<0>(GetParam()), std::get<1>(GetParam()),
               std::get<2>(GetParam())) {}
  VoltageModel model_;
};

TEST_P(VoltageModelSweep, SlowdownIsOneAtNominal) {
  EXPECT_NEAR(model_.slowdown(model_.vmax()), 1.0, 1e-9);
}

TEST_P(VoltageModelSweep, SlowdownStrictlyDecreasesWithVoltage) {
  const double lo = model_.vt() + 0.15 * (model_.vmax() - model_.vt());
  double prev = model_.slowdown(lo);
  for (int i = 1; i <= 20; ++i) {
    const double v = lo + (model_.vmax() - lo) * i / 20.0;
    const double s = model_.slowdown(v);
    EXPECT_LT(s, prev);
    prev = s;
  }
  EXPECT_GE(prev, 1.0 - 1e-9);
}

TEST_P(VoltageModelSweep, InverseIsConsistentEverywhere) {
  const double lo = model_.vt() + 0.15 * (model_.vmax() - model_.vt());
  for (int i = 0; i <= 20; ++i) {
    const double v = lo + (model_.vmax() - lo) * i / 20.0;
    const double s = model_.slowdown(v);
    EXPECT_NEAR(model_.voltage_for_slowdown(s), v, 1e-5 * model_.vmax());
  }
}

TEST_P(VoltageModelSweep, EnergyFactorBounded) {
  const double lo = model_.vt() + 0.15 * (model_.vmax() - model_.vt());
  for (int i = 0; i <= 10; ++i) {
    const double v = lo + (model_.vmax() - lo) * i / 10.0;
    const double f = model_.energy_factor(v);
    EXPECT_GT(f, 0.0);
    EXPECT_LE(f, 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ElectricalConfigs, VoltageModelSweep,
    ::testing::Values(Params{3.3, 0.8, 2.0},   // classic 0.35 um
                      Params{2.5, 0.6, 2.0},   // lower rail
                      Params{1.8, 0.45, 1.6},  // velocity-saturated
                      Params{5.0, 1.0, 2.0},   // legacy 5 V
                      Params{1.2, 0.3, 1.3},   // near-threshold-ish
                      Params{3.3, 0.0, 2.0})); // zero-threshold idealised

}  // namespace
}  // namespace mmsyn
