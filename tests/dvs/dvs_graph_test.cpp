#include "dvs/dvs_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "model/system.hpp"
#include "sched/list_scheduler.hpp"

namespace mmsyn {
namespace {

/// Fixture: DVS GPP + DVS ASIC (hardware cores) + non-DVS ASIC + bus.
class DvsGraphTest : public ::testing::Test {
 protected:
  DvsGraphTest() {
    Pe gpp;
    gpp.name = "GPP";
    gpp.dvs_enabled = true;
    gpp.voltage_levels = {1.2, 2.0, 3.3};
    sw_ = system_.arch.add_pe(gpp);

    Pe dvs_hw;
    dvs_hw.name = "DVSHW";
    dvs_hw.kind = PeKind::kAsic;
    dvs_hw.dvs_enabled = true;
    dvs_hw.voltage_levels = {1.2, 2.0, 3.3};
    dvs_hw.area_capacity = 1000.0;
    hw_ = system_.arch.add_pe(dvs_hw);

    Pe fixed_hw;
    fixed_hw.name = "FIXHW";
    fixed_hw.kind = PeKind::kAsic;
    fixed_hw.area_capacity = 1000.0;
    fixed_ = system_.arch.add_pe(fixed_hw);

    Cl bus;
    bus.bandwidth = 1e6;
    bus.transfer_power = 0.05;
    bus.attached = {sw_, hw_, fixed_};
    system_.arch.add_cl(bus);

    type_ = system_.tech.add_type("T");
    system_.tech.set_implementation(type_, sw_, {10e-3, 0.1, 0.0});
    system_.tech.set_implementation(type_, hw_, {2e-3, 0.02, 100.0});
    system_.tech.set_implementation(type_, fixed_, {2e-3, 0.02, 100.0});

    mode_.name = "m";
    mode_.period = 0.1;
  }

  DvsGraph build(const ModeMapping& mapping,
                 const std::vector<CoreSet>& cores,
                 bool scale_hardware = true) {
    const ModeSchedule schedule =
        list_schedule({mode_, mapping, system_.arch, system_.tech, cores});
    return build_dvs_graph(mode_, schedule, mapping, system_.arch,
                           system_.tech, scale_hardware);
  }

  std::vector<CoreSet> cores_with(PeId pe, int count) const {
    std::vector<CoreSet> cores(system_.arch.pe_count());
    if (count > 0) cores[pe.index()].set_count(type_, count);
    return cores;
  }

  /// Checks topological consistency: every edge goes forward in topo.
  static void expect_topological(const DvsGraph& g) {
    std::vector<int> pos(g.node_count());
    for (std::size_t i = 0; i < g.topo.size(); ++i)
      pos[static_cast<std::size_t>(g.topo[i])] = static_cast<int>(i);
    for (std::size_t u = 0; u < g.node_count(); ++u)
      for (int v : g.succs(u))
        EXPECT_LT(pos[u], pos[static_cast<std::size_t>(v)]);
  }

  System system_;
  Mode mode_;
  PeId sw_, hw_, fixed_;
  TaskTypeId type_;
};

TEST_F(DvsGraphTest, SoftwareTasksBecomeScalableNodes) {
  const TaskId a = mode_.graph.add_task("a", type_);
  const TaskId b = mode_.graph.add_task("b", type_);
  mode_.graph.add_edge(a, b, 0.0);
  ModeMapping m;
  m.task_to_pe = {sw_, sw_};
  const DvsGraph g = build(m, cores_with(hw_, 0));
  ASSERT_EQ(g.node_count(), 2u);
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const DvsNode n = g.node(i);
    EXPECT_EQ(n.kind, DvsNodeKind::kTask);
    EXPECT_TRUE(n.scalable);
    EXPECT_GT(n.max_slowdown, 1.0);
  }
  expect_topological(g);
}

TEST_F(DvsGraphTest, FixedHardwareTasksNotScalable) {
  mode_.graph.add_task("a", type_);
  ModeMapping m;
  m.task_to_pe = {fixed_};
  const DvsGraph g = build(m, cores_with(fixed_, 1));
  ASSERT_EQ(g.node_count(), 1u);
  EXPECT_FALSE(g.node(0).scalable);
}

TEST_F(DvsGraphTest, ParallelHwTasksBecomeSegments) {
  // Two parallel tasks on two cores, same interval -> single segment with
  // summed power.
  mode_.graph.add_task("a", type_);
  mode_.graph.add_task("b", type_);
  ModeMapping m;
  m.task_to_pe = {hw_, hw_};
  const DvsGraph g = build(m, cores_with(hw_, 2));
  ASSERT_EQ(g.node_count(), 1u);
  const DvsNode seg = g.node(0);
  EXPECT_EQ(seg.kind, DvsNodeKind::kSegment);
  EXPECT_TRUE(seg.scalable);
  EXPECT_NEAR(seg.tmin, 2e-3, 1e-12);
  // Both cores active: e_nom = 2 * P * t.
  EXPECT_NEAR(seg.e_nom, 2 * 0.02 * 2e-3, 1e-12);
}

TEST_F(DvsGraphTest, StaggeredHwTasksSplitIntoSegments) {
  // Fig. 5 shape: chain a->b on core plus parallel c spanning both.
  const TaskId a = mode_.graph.add_task("a", type_);
  const TaskId b = mode_.graph.add_task("b", type_);
  const TaskId c = mode_.graph.add_task("c", type_);
  mode_.graph.add_edge(a, b, 0.0);
  ModeMapping m;
  m.task_to_pe = {hw_, hw_, hw_};
  const DvsGraph g = build(m, cores_with(hw_, 2));
  // Schedule: a [0,2], b [2,4] on one core; c [0,2] on the other.
  // Cuts at 0, 2, 4 -> two segments.
  ASSERT_EQ(g.node_count(), 2u);
  EXPECT_NEAR(g.node(0).e_nom, 2 * 0.02 * 2e-3, 1e-12);  // a + c
  EXPECT_NEAR(g.node(1).e_nom, 0.02 * 2e-3, 1e-12);      // b alone
  expect_topological(g);
  (void)c;
}

TEST_F(DvsGraphTest, SegmentEnergyConservesTaskEnergy) {
  // Random-ish mix of 5 HW tasks on 2 cores: total segment e_nom must
  // equal the summed task energies.
  TaskId prev = mode_.graph.add_task("t0", type_);
  for (int i = 1; i < 5; ++i) {
    const TaskId t = mode_.graph.add_task("t", type_);
    if (i % 2 == 0) mode_.graph.add_edge(prev, t, 0.0);
    prev = t;
  }
  ModeMapping m;
  m.task_to_pe.assign(5, hw_);
  const DvsGraph g = build(m, cores_with(hw_, 2));
  double total = 0.0;
  for (std::size_t i = 0; i < g.node_count(); ++i)
    if (g.node(i).kind == DvsNodeKind::kSegment) total += g.node(i).e_nom;
  EXPECT_NEAR(total, 5 * 0.02 * 2e-3, 1e-12);
  expect_topological(g);
}

TEST_F(DvsGraphTest, CommNodesCreatedForCrossPeEdges) {
  const TaskId a = mode_.graph.add_task("a", type_);
  const TaskId b = mode_.graph.add_task("b", type_);
  mode_.graph.add_edge(a, b, 1000.0);
  ModeMapping m;
  m.task_to_pe = {sw_, fixed_};
  const DvsGraph g = build(m, cores_with(fixed_, 1));
  ASSERT_EQ(g.node_count(), 3u);
  ASSERT_GE(g.comm_node[0], 0);
  const DvsNode comm = g.node(static_cast<std::size_t>(g.comm_node[0]));
  EXPECT_EQ(comm.kind, DvsNodeKind::kComm);
  EXPECT_FALSE(comm.scalable);
  EXPECT_NEAR(comm.tmin, 1e-3, 1e-12);
  EXPECT_NEAR(comm.e_nom, 0.05 * 1e-3, 1e-12);
  expect_topological(g);
}

TEST_F(DvsGraphTest, LocalEdgesGetNoCommNode) {
  const TaskId a = mode_.graph.add_task("a", type_);
  const TaskId b = mode_.graph.add_task("b", type_);
  mode_.graph.add_edge(a, b, 1000.0);
  ModeMapping m;
  m.task_to_pe = {sw_, sw_};
  const DvsGraph g = build(m, cores_with(hw_, 0));
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.comm_node[0], -1);
}

TEST_F(DvsGraphTest, DeadlinesInheritedBySegments) {
  const TaskId a = mode_.graph.add_task("a", type_);
  mode_.graph.set_deadline(a, 50e-3);
  ModeMapping m;
  m.task_to_pe = {hw_};
  const DvsGraph g = build(m, cores_with(hw_, 1));
  ASSERT_EQ(g.node_count(), 1u);
  EXPECT_DOUBLE_EQ(g.node(0).deadline, 50e-3);
}

TEST_F(DvsGraphTest, ScaleHardwareFalseKeepsTaskNodes) {
  mode_.graph.add_task("a", type_);
  mode_.graph.add_task("b", type_);
  ModeMapping m;
  m.task_to_pe = {hw_, hw_};
  const DvsGraph g =
      build(m, cores_with(hw_, 2), /*scale_hardware=*/false);
  ASSERT_EQ(g.node_count(), 2u);
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    EXPECT_EQ(g.node(i).kind, DvsNodeKind::kTask);
    EXPECT_FALSE(g.node(i).scalable);
  }
}

TEST_F(DvsGraphTest, CrossPeArrivalCutsSegment) {
  // Producer p on GPP feeds consumer b on the DVS ASIC while another HW
  // task a is already running there: the arrival instant must start a new
  // segment so no edge points backward in time.
  const TaskId p = mode_.graph.add_task("p", type_);
  const TaskId a = mode_.graph.add_task("a", type_);
  const TaskId b = mode_.graph.add_task("b", type_);
  mode_.graph.add_edge(p, b, 4000.0);  // arrives at 10 + 4 = 14 ms
  ModeMapping m;
  m.task_to_pe = {sw_, hw_, hw_};
  // Make 'a' long enough to span the arrival: needs its own core.
  std::vector<CoreSet> cores = cores_with(hw_, 2);
  const DvsGraph g = [&] {
    // Stretch a's implementation by a dedicated long type would complicate
    // the fixture; instead verify structural invariants on what we have.
    const ModeSchedule schedule =
        list_schedule({mode_, m, system_.arch, system_.tech, cores});
    return build_dvs_graph(mode_, schedule, m, system_.arch, system_.tech);
  }();
  expect_topological(g);
  // b is represented by a segment; its entry edge must come from the comm.
  ASSERT_GE(g.comm_node[0], 0);
  const auto succs = g.succs(static_cast<std::size_t>(g.comm_node[0]));
  ASSERT_EQ(succs.size(), 1u);
  EXPECT_EQ(g.node(static_cast<std::size_t>(succs[0])).kind,
            DvsNodeKind::kSegment);
  (void)a;
}

}  // namespace
}  // namespace mmsyn
