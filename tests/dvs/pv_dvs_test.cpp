#include "dvs/pv_dvs.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "dvs/voltage_model.hpp"
#include "model/architecture.hpp"

namespace mmsyn {
namespace {

/// Builds a DVS graph by hand (bypassing the scheduler) so the algorithm's
/// behaviour is tested in isolation.
class PvDvsTest : public ::testing::Test {
 protected:
  PvDvsTest() {
    Pe pe;
    pe.name = "P";
    pe.dvs_enabled = true;
    pe.voltage_levels = {1.2, 1.9, 2.6, 3.3};
    pe.threshold_voltage = 0.8;
    pe_ = arch_.add_pe(pe);
    Pe fixed;
    fixed.name = "F";
    fixed_ = arch_.add_pe(fixed);
  }

  int add_node(DvsGraph& g, double tmin, double e_nom, bool scalable,
               double deadline, PeId pe) {
    const int id = static_cast<int>(g.node_count());
    g.kind.push_back(static_cast<std::uint8_t>(DvsNodeKind::kTask));
    g.ref.push_back(id);
    g.pe.push_back(pe.value());
    g.tmin.push_back(tmin);
    g.e_nom.push_back(e_nom);
    g.scalable.push_back(scalable ? 1 : 0);
    g.max_slowdown.push_back(scalable ? VoltageModel(3.3, 0.8).slowdown(1.2)
                                      : 1.0);
    g.deadline.push_back(deadline);
    g.topo.push_back(id);
    rebuild_adjacency(g);
    return id;
  }

  void add_edge(DvsGraph& g, int u, int v) {
    edges_.emplace_back(u, v);
    rebuild_adjacency(g);
  }

  /// Re-packs the CSR adjacency from the fixture's edge list; per-node
  /// neighbour order is edge emission order, matching build_dvs_graph.
  void rebuild_adjacency(DvsGraph& g) const {
    const std::size_t n = g.node_count();
    g.succ_off.assign(n + 1, 0);
    g.pred_off.assign(n + 1, 0);
    for (const auto& [u, v] : edges_) {
      ++g.succ_off[static_cast<std::size_t>(u) + 1];
      ++g.pred_off[static_cast<std::size_t>(v) + 1];
    }
    for (std::size_t i = 0; i < n; ++i) {
      g.succ_off[i + 1] += g.succ_off[i];
      g.pred_off[i + 1] += g.pred_off[i];
    }
    g.succ_adj.assign(edges_.size(), 0);
    g.pred_adj.assign(edges_.size(), 0);
    std::vector<std::int32_t> snext(g.succ_off.begin(), g.succ_off.end() - 1);
    std::vector<std::int32_t> pnext(g.pred_off.begin(), g.pred_off.end() - 1);
    for (const auto& [u, v] : edges_) {
      g.succ_adj[static_cast<std::size_t>(
          snext[static_cast<std::size_t>(u)]++)] = v;
      g.pred_adj[static_cast<std::size_t>(
          pnext[static_cast<std::size_t>(v)]++)] = u;
    }
  }

  Architecture arch_;
  PeId pe_, fixed_;
  std::vector<std::pair<int, int>> edges_;
};

TEST_F(PvDvsTest, NoSlackMeansNoScaling) {
  DvsGraph g;
  add_node(g, 10e-3, 1e-3, true, 10e-3, pe_);  // deadline == tmin
  const PvDvsResult r = run_pv_dvs(g, arch_);
  EXPECT_NEAR(r.scaled_time[0], 10e-3, 1e-9);
  EXPECT_NEAR(r.total_energy, 1e-3, 1e-9);
  EXPECT_TRUE(r.deadlines_met);
}

TEST_F(PvDvsTest, AmpleSlackScalesToLowestLevel) {
  DvsGraph g;
  add_node(g, 10e-3, 1e-3, true, 1.0, pe_);  // 100x slack
  const PvDvsResult r = run_pv_dvs(g, arch_);
  EXPECT_GT(r.scaled_time[0], 10e-3);
  // Energy floor: run entirely at the lowest level 1.2 V.
  const double floor_energy = 1e-3 * (1.2 / 3.3) * (1.2 / 3.3);
  EXPECT_NEAR(r.total_energy, floor_energy, floor_energy * 0.05);
  EXPECT_TRUE(r.deadlines_met);
}

TEST_F(PvDvsTest, UnscalableNodeKeepsNominalEnergy) {
  DvsGraph g;
  add_node(g, 10e-3, 1e-3, false, 1.0, fixed_);
  const PvDvsResult r = run_pv_dvs(g, arch_);
  EXPECT_DOUBLE_EQ(r.scaled_time[0], 10e-3);
  EXPECT_DOUBLE_EQ(r.total_energy, 1e-3);
}

TEST_F(PvDvsTest, ChainSharesSlackByPower) {
  // Two chained tasks, equal times, one dissipating 10x the power: the
  // greedy must hand (most of) the slack to the hungrier task.
  DvsGraph g;
  const int hot = add_node(g, 10e-3, 10e-3, true, 40e-3, pe_);
  const int cold = add_node(g, 10e-3, 1e-3, true, 40e-3, pe_);
  add_edge(g, hot, cold);
  const PvDvsResult r = run_pv_dvs(g, arch_);
  EXPECT_GT(r.scaled_time[static_cast<std::size_t>(hot)],
            r.scaled_time[static_cast<std::size_t>(cold)]);
  EXPECT_LT(r.total_energy, 11e-3);
  EXPECT_TRUE(r.deadlines_met);
  // Chain must still fit in the 40 ms deadline.
  EXPECT_LE(r.scaled_time[0] + r.scaled_time[1], 40e-3 * (1 + 1e-9));
}

TEST_F(PvDvsTest, PrecedenceLimitsExtension) {
  // a -> b where b's deadline is tight; extending a must not push b late.
  DvsGraph g;
  const int a = add_node(g, 10e-3, 5e-3, true, 1.0, pe_);
  const int b = add_node(g, 10e-3, 5e-3, true, 25e-3, pe_);
  add_edge(g, a, b);
  const PvDvsResult r = run_pv_dvs(g, arch_);
  EXPECT_LE(r.scaled_time[static_cast<std::size_t>(a)] +
                r.scaled_time[static_cast<std::size_t>(b)],
            25e-3 * (1 + 1e-9));
  EXPECT_TRUE(r.deadlines_met);
}

TEST_F(PvDvsTest, AlreadyLateScheduleReported) {
  DvsGraph g;
  add_node(g, 10e-3, 1e-3, false, 5e-3, fixed_);  // cannot make 5 ms
  const PvDvsResult r = run_pv_dvs(g, arch_);
  EXPECT_FALSE(r.deadlines_met);
  EXPECT_DOUBLE_EQ(r.scaled_time[0], 10e-3);  // never scaled into lateness
}

TEST_F(PvDvsTest, EnergyNeverIncreases) {
  DvsGraph g;
  const int a = add_node(g, 5e-3, 2e-3, true, 0.1, pe_);
  const int b = add_node(g, 7e-3, 3e-3, true, 0.1, pe_);
  const int c = add_node(g, 3e-3, 1e-3, false, 0.1, fixed_);
  add_edge(g, a, b);
  add_edge(g, b, c);
  const PvDvsResult r = run_pv_dvs(g, arch_);
  EXPECT_LE(r.total_energy, r.nominal_energy + 1e-15);
  EXPECT_DOUBLE_EQ(r.nominal_energy, 6e-3);
}

TEST_F(PvDvsTest, ContinuousBeatsDiscrete) {
  PvDvsOptions continuous;
  continuous.discrete_voltages = false;
  PvDvsOptions discrete;
  discrete.discrete_voltages = true;
  DvsGraph g;
  add_node(g, 10e-3, 1e-3, true, 17e-3, pe_);  // slack between two levels
  const double e_cont = run_pv_dvs(g, arch_, continuous).total_energy;
  const double e_disc = run_pv_dvs(g, arch_, discrete).total_energy;
  EXPECT_LE(e_cont, e_disc + 1e-15);
  EXPECT_LT(e_disc, 1e-3);  // still saves vs nominal
}

TEST_F(PvDvsTest, SlowdownCapRespectedWhenProbeCrossesIt) {
  // A tight max_slowdown (1.05) with ample deadline slack: the greedy
  // walks the node's time towards the cap, and the finite-difference
  // descent probe at t + 0.01*tmin then lands *beyond* the cap. The
  // algorithm must neither crash nor scale past the cap.
  DvsGraph g;
  const int u = add_node(g, 10e-3, 1e-3, true, 1.0, pe_);
  g.max_slowdown[static_cast<std::size_t>(u)] = 1.05;
  PvDvsOptions options;
  options.discrete_voltages = false;
  const PvDvsResult r = run_pv_dvs(g, arch_, options);
  EXPECT_TRUE(r.deadlines_met);
  EXPECT_TRUE(std::isfinite(r.total_energy));
  EXPECT_LE(r.scaled_time[0], 10e-3 * 1.05 * (1 + 1e-9));
  EXPECT_GE(r.scaled_time[0], 10e-3);
  // Energy stays within [energy at the cap voltage, nominal].
  const VoltageModel m(3.3, 0.8);
  const double cap_energy =
      1e-3 * m.energy_factor(m.voltage_for_slowdown(1.05));
  EXPECT_LE(r.total_energy, 1e-3 + 1e-15);
  EXPECT_GE(r.total_energy, cap_energy - 1e-12);
}

TEST_F(PvDvsTest, SlowdownCapOneNeverScales) {
  // Degenerate cap: max_slowdown == 1 leaves no scaling head-room at all;
  // the probe crosses the cap on the very first refresh.
  DvsGraph g;
  const int u = add_node(g, 10e-3, 1e-3, true, 1.0, pe_);
  g.max_slowdown[static_cast<std::size_t>(u)] = 1.0;
  const PvDvsResult r = run_pv_dvs(g, arch_);
  EXPECT_DOUBLE_EQ(r.scaled_time[0], 10e-3);
  EXPECT_NEAR(r.total_energy, 1e-3, 1e-12);
}

TEST(DiscreteEnergy, ExactLevelNeedsNoSplit) {
  const std::vector<double> levels{1.2, 1.9, 2.6, 3.3};
  const VoltageModel m(3.3, 0.8);
  const double t_at_19 = 10e-3 * m.slowdown(1.9);
  const double e = discrete_energy(1e-3, 10e-3, t_at_19, levels, 0.8);
  EXPECT_NEAR(e, 1e-3 * m.energy_factor(1.9), 1e-9);
}

TEST(DiscreteEnergy, SplitInterpolatesBetweenLevels) {
  const std::vector<double> levels{1.2, 1.9, 2.6, 3.3};
  const VoltageModel m(3.3, 0.8);
  const double t_hi = 10e-3 * m.slowdown(2.6);
  const double t_lo = 10e-3 * m.slowdown(1.9);
  const double target = 0.5 * (t_hi + t_lo);
  const double e = discrete_energy(1e-3, 10e-3, target, levels, 0.8);
  EXPECT_GT(e, 1e-3 * m.energy_factor(1.9));
  EXPECT_LT(e, 1e-3 * m.energy_factor(2.6));
  // The split is exact: w*t_hi + (1-w)*t_lo == target with the matching
  // energy mix.
  const double w = (t_lo - target) / (t_lo - t_hi);
  const double expected =
      w * 1e-3 * m.energy_factor(2.6) + (1 - w) * 1e-3 * m.energy_factor(1.9);
  EXPECT_NEAR(e, expected, 1e-12);
}

TEST(DiscreteEnergy, TargetExactlyAtLevelBoundary) {
  // target_time landing exactly on a level's execution time must resolve
  // to that single level (split weight 0 or 1, no interpolation error).
  const std::vector<double> levels{1.2, 1.9, 2.6, 3.3};
  const VoltageModel m(3.3, 0.8);
  for (const double v : {1.9, 2.6}) {
    const double target = 10e-3 * m.slowdown(v);
    EXPECT_DOUBLE_EQ(discrete_energy(1e-3, 10e-3, target, levels, 0.8),
                     1e-3 * m.energy_factor(v))
        << "level " << v;
  }
  // Boundary of the lowest level: the early-completion clamp fires.
  const double t_lowest = 10e-3 * m.slowdown(1.2);
  EXPECT_DOUBLE_EQ(discrete_energy(1e-3, 10e-3, t_lowest, levels, 0.8),
                   1e-3 * m.energy_factor(1.2));
  // Boundary of vmax: target == tmin means no slack, nominal energy.
  EXPECT_DOUBLE_EQ(discrete_energy(1e-3, 10e-3, 10e-3, levels, 0.8), 1e-3);
}

TEST(DiscreteEnergy, DuplicateAdjacentLevelsDoNotDivideByZero) {
  // Architecture::add_pe normalises duplicates away; direct callers with
  // a duplicated level must still get a finite single-level answer (the
  // zero-width pair guard), never a 0/0 split weight.
  const std::vector<double> levels{1.9, 1.9, 3.3};
  const VoltageModel m(3.3, 0.8);
  const double target = 10e-3 * m.slowdown(1.9);
  const double e = discrete_energy(1e-3, 10e-3, target, levels, 0.8);
  EXPECT_TRUE(std::isfinite(e));
  EXPECT_DOUBLE_EQ(e, 1e-3 * m.energy_factor(1.9));
}

TEST(DiscreteEnergy, BeyondLowestLevelClamps) {
  const std::vector<double> levels{1.2, 3.3};
  const VoltageModel m(3.3, 0.8);
  const double e = discrete_energy(1e-3, 10e-3, 10.0, levels, 0.8);
  EXPECT_NEAR(e, 1e-3 * m.energy_factor(1.2), 1e-12);
}

TEST(DiscreteEnergy, NoSlackReturnsNominal) {
  const std::vector<double> levels{1.2, 3.3};
  EXPECT_DOUBLE_EQ(discrete_energy(1e-3, 10e-3, 10e-3, levels, 0.8), 1e-3);
  EXPECT_DOUBLE_EQ(discrete_energy(1e-3, 10e-3, 5e-3, levels, 0.8), 1e-3);
}

TEST(DiscreteEnergy, SingleLevelCannotScale) {
  const std::vector<double> levels{3.3};
  EXPECT_DOUBLE_EQ(discrete_energy(1e-3, 10e-3, 1.0, levels, 0.8), 1e-3);
}

TEST(ContinuousEnergy, MatchesModel) {
  const VoltageModel m(3.3, 0.8);
  const double s = m.slowdown(2.0);
  EXPECT_NEAR(continuous_energy(1e-3, s, 3.3, 0.8),
              1e-3 * m.energy_factor(2.0), 1e-9);
  EXPECT_DOUBLE_EQ(continuous_energy(1e-3, 1.0, 3.3, 0.8), 1e-3);
}

}  // namespace
}  // namespace mmsyn
