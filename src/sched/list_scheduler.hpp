// Priority list scheduler with communication mapping (the inner
// optimisation loop of Fig. 4, line 10 — LOPOCOS-style, paper ref [12]).
//
// Given one mode, a task mapping and a hardware core allocation, the
// scheduler derives the communication mapping M_γ and the timing schedule
// S_ε: tasks are placed in bottom-level priority order; software PEs and
// individual hardware core instances are sequential resources with
// first-fit gap insertion; each inter-PE edge is routed over the connecting
// CL that delivers its data earliest.
#pragma once

#include "common/ids.hpp"
#include "model/core_allocation.hpp"
#include "model/mapping.hpp"
#include "sched/schedule.hpp"

namespace mmsyn {

struct Mode;
class Architecture;
class TechLibrary;

/// Task-selection priority of the list scheduler.
enum class SchedulingPolicy {
  /// Longest remaining path to a sink (critical-path list scheduling, the
  /// default and the paper's reference behaviour).
  kBottomLevel,
  /// Ready tasks in task-id order (a FIFO strawman for ablation).
  kTopoOrder,
  /// Longest mapped execution time first (LPT-style).
  kLongestTask,
};

/// Scheduler inputs for one mode. All references must outlive the call.
struct ListSchedulerInput {
  const Mode& mode;
  const ModeMapping& mapping;
  const Architecture& arch;
  const TechLibrary& tech;
  /// Core set loaded on each hardware PE during this mode (from the outer
  /// loop's core allocation). Types mapped to a HW PE but missing from its
  /// set are treated as a single implicit core.
  const std::vector<CoreSet>& hw_cores;  // index == PE id
  SchedulingPolicy policy = SchedulingPolicy::kBottomLevel;
};

/// Task-selection priorities for one mode under `input.policy` (larger ==
/// more urgent). This is the communication-aware half of the scheduler:
/// bottom levels fold best-case inter-PE communication delays into the
/// priority, so the stage depends on the task mapping and the architecture
/// but not on core counts or timelines. Exposed separately so the mode
/// pipeline can treat it as its first stage artifact.
[[nodiscard]] std::vector<double> scheduling_priorities(
    const ListSchedulerInput& input);

/// Schedules one mode. Never fails structurally: unroutable messages are
/// assigned a large penalty latency and flagged via `routable == false`.
[[nodiscard]] ModeSchedule list_schedule(const ListSchedulerInput& input);

/// As above, but with the priority vector precomputed by
/// `scheduling_priorities`. `list_schedule(input)` is exactly
/// `list_schedule(input, scheduling_priorities(input))` — the single-arg
/// form delegates here, so staged and fused callers share one code path.
[[nodiscard]] ModeSchedule list_schedule(const ListSchedulerInput& input,
                                         const std::vector<double>& priority);

}  // namespace mmsyn
