#include "sched/timeline.hpp"

#include <algorithm>
#include <cassert>

namespace mmsyn {

namespace {
// Tolerance absorbing floating-point noise when intervals abut.
constexpr double kEps = 1e-12;
}  // namespace

double Timeline::earliest_fit(double ready, double duration) const {
  assert(duration >= 0.0);
  double candidate = ready;
  for (const Interval& iv : intervals_) {
    if (candidate + duration <= iv.start + kEps) return candidate;
    candidate = std::max(candidate, iv.end);
  }
  return candidate;
}

void Timeline::reserve(double start, double duration) {
  assert(duration >= 0.0);
  if (duration == 0.0) return;  // zero-length blocks occupy nothing
  const Interval block{start, start + duration};
  auto it = std::lower_bound(intervals_.begin(), intervals_.end(), block,
                             [](const Interval& a, const Interval& b) {
                               return a.start < b.start;
                             });
  // Overlap check against neighbours (debug builds only).
  assert(it == intervals_.end() || block.end <= it->start + kEps);
  assert(it == intervals_.begin() || std::prev(it)->end <= block.start + kEps);
  intervals_.insert(it, block);
}

double Timeline::horizon() const {
  return intervals_.empty() ? 0.0 : intervals_.back().end;
}

double Timeline::busy_time() const {
  double total = 0.0;
  for (const Interval& iv : intervals_) total += iv.end - iv.start;
  return total;
}

}  // namespace mmsyn
