#include "sched/timeline.hpp"

#include <algorithm>
#include <cassert>

namespace mmsyn {

namespace {
// Tolerance absorbing floating-point noise when intervals abut.
constexpr double kEps = 1e-12;
}  // namespace

double Timeline::earliest_fit(double ready, double duration) const {
  assert(duration >= 0.0);
  double candidate = ready;
  const std::size_t n = starts_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (candidate + duration <= starts_[i] + kEps) return candidate;
    const double end = ends_[i];
    candidate = candidate > end ? candidate : end;
  }
  return candidate;
}

void Timeline::reserve(double start, double duration) {
  assert(duration >= 0.0);
  if (duration == 0.0) return;  // zero-length blocks occupy nothing
  const double end = start + duration;
  const auto it = std::lower_bound(starts_.begin(), starts_.end(), start);
  const auto idx = static_cast<std::size_t>(it - starts_.begin());
  // Overlap check against neighbours (debug builds only).
  assert(idx == starts_.size() || end <= starts_[idx] + kEps);
  assert(idx == 0 || ends_[idx - 1] <= start + kEps);
  starts_.insert(it, start);
  ends_.insert(ends_.begin() + static_cast<std::ptrdiff_t>(idx), end);
}

double Timeline::horizon() const {
  return ends_.empty() ? 0.0 : ends_.back();
}

double Timeline::busy_time() const {
  double total = 0.0;
  for (std::size_t i = 0; i < starts_.size(); ++i)
    total += ends_[i] - starts_[i];
  return total;
}

}  // namespace mmsyn
