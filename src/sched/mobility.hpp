// ASAP/ALAP mobility analysis (Fig. 4, line 04 of the paper).
//
// For one mode under a given task mapping, computes contention-free
// as-soon-as-possible and as-late-as-possible start times. Mobility
// (alap - asap) drives the core-allocation heuristic: parallel tasks with
// low mobility are the ones worth an extra hardware core.
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "model/mapping.hpp"

namespace mmsyn {

struct Mode;
class Architecture;
class TechLibrary;

/// Per-task mobility data for one mode (index == task id).
struct MobilityInfo {
  std::vector<double> asap_start;
  std::vector<double> alap_start;
  std::vector<double> exec_time;  ///< mapped nominal execution time
  /// alap_start - asap_start, clamped at 0 when the graph is over-tight.
  std::vector<double> mobility;
  /// Contention-free critical-path length (max ASAP finish).
  double critical_path = 0.0;
};

/// Computes ASAP/ALAP schedules ignoring resource contention.
///
/// Communication delay between tasks on different PEs is estimated with the
/// fastest CL connecting the two PEs (startup + bits/bandwidth); same-PE
/// edges cost zero. The ALAP pass anchors each task at
/// min(deadline, period) and each sink at the mode period.
[[nodiscard]] MobilityInfo compute_mobility(const Mode& mode,
                                            const ModeMapping& mapping,
                                            const Architecture& arch,
                                            const TechLibrary& tech);

}  // namespace mmsyn
