// Data-oriented list scheduler (DESIGN.md §12).
//
// The scheduler is the hottest stage of the GA inner loop, so it runs on a
// per-call workspace instead of allocating per candidate:
//
//  - all POD scratch (priorities, ready-queue keys, predecessor counts,
//    slot columns) lives in a thread-local bump Arena that is reset — not
//    freed — between calls;
//  - timelines are pooled and cleared, never reallocated;
//  - CL routing uses a P×P CSR link table built once per call from the
//    architecture, replacing the per-edge `links_between` vector
//    materialisation;
//  - the ready queue is a binary heap over 128-bit packed keys (priority
//    as an order-preserving integer, tie-broken by task id), replacing the
//    O(n²) linear selection scan.
//
// Every floating-point expression and every tie-break is kept identical to
// the original implementation (see bench/reference_kernels.cpp for the
// frozen baseline); the staged-vs-legacy property tests and the
// micro-kernel bit-compare enforce byte-identical ModeSchedule artifacts.
#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/arena.hpp"
#include "model/architecture.hpp"
#include "model/omsm.hpp"
#include "model/tech_library.hpp"
#include "sched/timeline.hpp"

namespace mmsyn {
namespace {

constexpr double kUnroutablePenalty = 1e6;  // seconds; flags broken routing
constexpr std::int32_t kNoGroup = -1;

/// Per-thread scratch reused across list_schedule calls. The arena holds
/// all POD arrays; timelines (which own heap storage) are pooled
/// separately so their interval buffers are recycled too.
struct SchedWorkspace {
  Arena arena{1 << 16};
  std::vector<Timeline> timelines;
};

SchedWorkspace& workspace() {
  thread_local SchedWorkspace ws;
  return ws;
}

/// Growable view over the pooled timeline storage. `acquire` hands out the
/// statically-known resources (CLs first, then PE/core timelines);
/// `append` adds implicit-core timelines discovered during scheduling.
class TimelinePool {
public:
  explicit TimelinePool(std::vector<Timeline>& storage) : storage_(storage) {}

  void acquire(std::size_t count) {
    if (storage_.size() < count) storage_.resize(count);
    for (std::size_t i = 0; i < count; ++i) storage_[i].clear();
    used_ = count;
  }

  [[nodiscard]] std::int32_t append() {
    if (storage_.size() <= used_) storage_.emplace_back();
    storage_[used_].clear();
    return static_cast<std::int32_t>(used_++);
  }

  [[nodiscard]] Timeline& operator[](std::size_t i) { return storage_[i]; }

private:
  std::vector<Timeline>& storage_;
  std::size_t used_ = 0;
};

/// CSR table of the CLs connecting each ordered PE pair, row (a, b) in
/// ascending CL-id order — exactly the sequence `links_between(a, b)`
/// yields, so routing ties resolve identically.
struct LinkTable {
  std::size_t pe_count = 0;
  const std::int32_t* offsets = nullptr;  // pe_count² + 1 entries
  const std::int32_t* cls = nullptr;

  [[nodiscard]] std::span<const std::int32_t> row(std::size_t a,
                                                  std::size_t b) const {
    const std::size_t r = a * pe_count + b;
    return {cls + offsets[r],
            static_cast<std::size_t>(offsets[r + 1] - offsets[r])};
  }
};

LinkTable build_link_table(const Architecture& arch, Arena& arena) {
  const std::size_t P = arch.pe_count();
  const std::size_t C = arch.cl_count();
  const std::size_t rows = P * P;
  std::int32_t* offsets = arena.alloc_filled<std::int32_t>(rows + 1, 0);
  // Distinct attached PEs per CL (membership semantics: a PE listed twice
  // still contributes one link, matching links_between).
  std::int32_t* att = arena.alloc<std::int32_t>(P);
  auto distinct_attached = [&](std::size_t c) -> std::size_t {
    const ClId id{static_cast<ClId::value_type>(c)};
    std::size_t k = 0;
    for (PeId p : arch.cl(id).attached) {
      const auto v = static_cast<std::int32_t>(p.index());
      bool seen = false;
      for (std::size_t i = 0; i < k; ++i) seen |= (att[i] == v);
      if (!seen) att[k++] = v;
    }
    return k;
  };

  for (std::size_t c = 0; c < C; ++c) {
    const std::size_t k = distinct_attached(c);
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t j = i + 1; j < k; ++j) {
        const auto a = static_cast<std::size_t>(att[i]);
        const auto b = static_cast<std::size_t>(att[j]);
        ++offsets[a * P + b + 1];
        ++offsets[b * P + a + 1];
      }
  }
  for (std::size_t r = 0; r < rows; ++r) offsets[r + 1] += offsets[r];

  std::int32_t* cls = arena.alloc<std::int32_t>(
      static_cast<std::size_t>(offsets[rows]));
  std::int32_t* cursor = arena.alloc<std::int32_t>(rows);
  std::copy(offsets, offsets + rows, cursor);
  for (std::size_t c = 0; c < C; ++c) {  // ascending c => ascending per row
    const std::size_t k = distinct_attached(c);
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t j = i + 1; j < k; ++j) {
        const auto a = static_cast<std::size_t>(att[i]);
        const auto b = static_cast<std::size_t>(att[j]);
        cls[cursor[a * P + b]++] = static_cast<std::int32_t>(c);
        cls[cursor[b * P + a]++] = static_cast<std::int32_t>(c);
      }
  }
  return LinkTable{P, offsets, cls};
}

/// Packs (priority, task id) into one 128-bit key so the ready queue
/// orders by a single integer compare: higher priority wins, ties go to
/// the lower task id. The double is mapped to an order-preserving uint64
/// (sign-magnitude flip); `+ 0.0` canonicalises -0.0 so the kTopoOrder
/// priority of task 0 (-0.0) compares equal to +0.0.
[[nodiscard]] inline unsigned __int128 ready_key(double priority,
                                                 std::uint32_t task) {
  std::uint64_t bits = std::bit_cast<std::uint64_t>(priority + 0.0);
  bits = (bits & 0x8000000000000000ull) ? ~bits
                                        : (bits | 0x8000000000000000ull);
  return (static_cast<unsigned __int128>(bits) << 64) |
         static_cast<std::uint64_t>(~task);
}

[[nodiscard]] inline std::uint32_t ready_key_task(unsigned __int128 key) {
  return ~static_cast<std::uint32_t>(static_cast<std::uint64_t>(key));
}

/// Bottom level: longest path from task start to any sink's finish, using
/// mapped execution times and best-case communication delays. Classic list
/// scheduling priority: larger == more urgent.
std::vector<double> bottom_levels(const TaskGraph& graph,
                                  const ModeMapping& mapping,
                                  const Architecture& arch,
                                  const TechLibrary& tech, Arena& arena) {
  const LinkTable links = build_link_table(arch, arena);
  const std::size_t n = graph.task_count();
  double* exec = arena.alloc<double>(n);
  for (std::size_t t = 0; t < n; ++t) {
    const TaskId id{static_cast<TaskId::value_type>(t)};
    exec[t] = tech.require(graph.task(id).type, mapping.task_to_pe[t])
                  .exec_time;
  }
  std::vector<double> level(n, 0.0);
  const auto& topo = graph.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId u = *it;
    double tail = 0.0;
    for (EdgeId e : graph.out_edges(u)) {
      const TaskEdge& edge = graph.edge(e);
      const PeId src_pe = mapping.task_to_pe[edge.src.index()];
      const PeId dst_pe = mapping.task_to_pe[edge.dst.index()];
      double comm = 0.0;
      if (src_pe != dst_pe) {
        comm = std::numeric_limits<double>::infinity();
        for (std::int32_t c : links.row(src_pe.index(), dst_pe.index())) {
          const Cl& link = arch.cl(ClId{static_cast<ClId::value_type>(c)});
          comm = std::min(comm,
                          link.startup_latency + edge.data_bits / link.bandwidth);
        }
        if (!std::isfinite(comm)) comm = kUnroutablePenalty;
      }
      tail = std::max(tail, comm + level[edge.dst.index()]);
    }
    level[u.index()] = exec[u.index()] + tail;
  }
  return level;
}

}  // namespace

std::vector<double> scheduling_priorities(const ListSchedulerInput& input) {
  const TaskGraph& graph = input.mode.graph;
  const std::size_t n = graph.task_count();
  std::vector<double> priority;
  switch (input.policy) {
    case SchedulingPolicy::kBottomLevel: {
      SchedWorkspace& ws = workspace();
      ws.arena.reset();
      priority =
          bottom_levels(graph, input.mapping, input.arch, input.tech, ws.arena);
      break;
    }
    case SchedulingPolicy::kTopoOrder:
      priority.resize(n);
      for (std::size_t t = 0; t < n; ++t)
        priority[t] = -static_cast<double>(t);
      break;
    case SchedulingPolicy::kLongestTask:
      priority.resize(n);
      for (std::size_t t = 0; t < n; ++t) {
        const TaskId id{static_cast<TaskId::value_type>(t)};
        priority[t] =
            input.tech.require(graph.task(id).type, input.mapping.task_to_pe[t])
                .exec_time;
      }
      break;
  }
  return priority;
}

ModeSchedule list_schedule(const ListSchedulerInput& input) {
  return list_schedule(input, scheduling_priorities(input));
}

ModeSchedule list_schedule(const ListSchedulerInput& input,
                           const std::vector<double>& priority) {
  const TaskGraph& graph = input.mode.graph;
  const std::size_t n = graph.task_count();
  const std::size_t m = graph.edge_count();
  assert(priority.size() == n);

  SchedWorkspace& ws = workspace();
  ws.arena.reset();
  Arena& arena = ws.arena;

  const LinkTable links = build_link_table(input.arch, arena);

  // --- Resource layout: CL timelines first, then per-PE core groups. ----
  const std::size_t P = input.arch.pe_count();
  const std::size_t T = input.tech.type_count();
  // group_off[p*T + type]: first timeline of the (pe, type) core group;
  // kNoGroup if the type has no allocated cores on that PE. Software PEs
  // use pe_base[p] (their single sequential resource) instead.
  std::int32_t* group_off = arena.alloc_filled<std::int32_t>(P * T, kNoGroup);
  std::int32_t* group_cnt = arena.alloc_filled<std::int32_t>(P * T, 0);
  std::int32_t* pe_base = arena.alloc_filled<std::int32_t>(P, kNoGroup);
  std::uint8_t* pe_sw = arena.alloc<std::uint8_t>(P);

  std::size_t tl_count = input.arch.cl_count();
  for (std::size_t p = 0; p < P; ++p) {
    const Pe& pe = input.arch.pe(PeId{static_cast<PeId::value_type>(p)});
    pe_sw[p] = is_software(pe.kind) ? 1 : 0;
    if (pe_sw[p]) {
      pe_base[p] = static_cast<std::int32_t>(tl_count++);
      continue;
    }
    for (const auto& [type, count] : input.hw_cores[p].entries()) {
      group_off[p * T + type.index()] = static_cast<std::int32_t>(tl_count);
      group_cnt[p * T + type.index()] = count;
      tl_count += static_cast<std::size_t>(count);
    }
  }
  TimelinePool pool(ws.timelines);
  pool.acquire(tl_count);

  // --- Task columns (SoA slot arrays; scattered into the artifact at the
  // end) and the dependency/ready state. ---------------------------------
  double* exec = arena.alloc<double>(n);
  double* t_start = arena.alloc<double>(n);
  double* t_finish = arena.alloc<double>(n);
  std::int32_t* t_core = arena.alloc<std::int32_t>(n);
  double* c_start = arena.alloc<double>(m);
  double* c_finish = arena.alloc<double>(m);
  std::int32_t* c_cl = arena.alloc<std::int32_t>(m);
  std::uint8_t* c_local = arena.alloc<std::uint8_t>(m);
  std::int32_t* unscheduled_preds = arena.alloc<std::int32_t>(n);

  for (std::size_t t = 0; t < n; ++t) {
    const TaskId id{static_cast<TaskId::value_type>(t)};
    exec[t] = input.tech.require(graph.task(id).type, input.mapping.task_to_pe[t])
                  .exec_time;
    unscheduled_preds[t] = static_cast<std::int32_t>(graph.in_edges(id).size());
  }

  unsigned __int128* heap = arena.alloc<unsigned __int128>(n);
  std::size_t heap_size = 0;
  const auto push_ready = [&](std::size_t t) {
    heap[heap_size++] =
        ready_key(priority[t], static_cast<std::uint32_t>(t));
    std::push_heap(heap, heap + heap_size);
  };
  for (std::size_t t = 0; t < n; ++t)
    if (unscheduled_preds[t] == 0) push_ready(t);

  bool routable = true;
  double makespan = 0.0;
  std::size_t scheduled = 0;
  while (heap_size > 0) {
    // Highest priority first; ties broken by lower task id — both encoded
    // in the packed key, so the heap pop is the whole selection step.
    std::pop_heap(heap, heap + heap_size);
    const std::size_t u = ready_key_task(heap[--heap_size]);
    const TaskId uid{static_cast<TaskId::value_type>(u)};

    const PeId pe = input.mapping.task_to_pe[u];
    const std::size_t pi = pe.index();
    const TaskTypeId type = graph.task(uid).type;
    const double dur = exec[u];

    // Route every incoming edge, committing the earliest-delivery CL.
    double est = 0.0;
    for (EdgeId e : graph.in_edges(uid)) {
      const TaskEdge& edge = graph.edge(e);
      const std::size_t ei = e.index();
      const double pred_finish = t_finish[edge.src.index()];
      const PeId src_pe = input.mapping.task_to_pe[edge.src.index()];
      if (src_pe == pe) {
        c_local[ei] = 1;
        c_cl[ei] = -1;
        c_start[ei] = c_finish[ei] = pred_finish;
        est = std::max(est, pred_finish);
        continue;
      }
      c_local[ei] = 0;
      const auto row = links.row(src_pe.index(), pi);
      if (row.empty()) {
        routable = false;
        c_cl[ei] = -1;
        c_start[ei] = pred_finish;
        c_finish[ei] = pred_finish + kUnroutablePenalty;
        est = std::max(est, c_finish[ei]);
        continue;
      }
      double best_finish = std::numeric_limits<double>::infinity();
      double best_start = 0.0;
      double best_dur = 0.0;
      std::int32_t best_cl = -1;
      for (std::int32_t c : row) {
        const Cl& link = input.arch.cl(ClId{static_cast<ClId::value_type>(c)});
        const double d = link.startup_latency + edge.data_bits / link.bandwidth;
        const double s = pool[static_cast<std::size_t>(c)].earliest_fit(
            pred_finish, d);
        if (s + d < best_finish) {
          best_finish = s + d;
          best_start = s;
          best_dur = d;
          best_cl = c;
        }
      }
      pool[static_cast<std::size_t>(best_cl)].reserve(best_start, best_dur);
      c_cl[ei] = best_cl;
      c_start[ei] = best_start;
      c_finish[ei] = best_start + best_dur;
      est = std::max(est, c_finish[ei]);
    }

    // Earliest-fitting (start, instance) over the task's core group (or
    // the software PE's single timeline). Equal starts keep the lowest
    // instance, as before.
    double start;
    std::int32_t instance = 0;
    if (pe_sw[pi]) {
      start = pool[static_cast<std::size_t>(pe_base[pi])].earliest_fit(est, dur);
      pool[static_cast<std::size_t>(pe_base[pi])].reserve(start, dur);
    } else {
      std::int32_t off = group_off[pi * T + type.index()];
      std::int32_t cnt = group_cnt[pi * T + type.index()];
      if (off == kNoGroup) {
        // Type not in the allocated core set: behave as one implicit core
        // so the schedule stays well-defined; the fitness layer charges
        // the area for it via the allocation builder.
        off = pool.append();
        cnt = 1;
        group_off[pi * T + type.index()] = off;
        group_cnt[pi * T + type.index()] = cnt;
      }
      start = std::numeric_limits<double>::infinity();
      for (std::int32_t i = 0; i < cnt; ++i) {
        const double s = pool[static_cast<std::size_t>(off + i)].earliest_fit(
            est, dur);
        if (s < start) {
          start = s;
          instance = i;
        }
      }
      pool[static_cast<std::size_t>(off + instance)].reserve(start, dur);
    }

    t_start[u] = start;
    t_finish[u] = start + dur;
    t_core[u] = instance;
    makespan = std::max(makespan, t_finish[u]);
    ++scheduled;

    for (EdgeId e : graph.out_edges(uid)) {
      const std::size_t v = graph.edge(e).dst.index();
      if (--unscheduled_preds[v] == 0) push_ready(v);
    }
  }
  assert(scheduled == n && "task graph must be acyclic");

  // --- Scatter the slot columns into the canonical artifact. ------------
  ModeSchedule result;
  result.routable = routable;
  result.tasks.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    ScheduledTask& st = result.tasks[t];
    st.task = TaskId{static_cast<TaskId::value_type>(t)};
    st.pe = input.mapping.task_to_pe[t];
    st.core_instance = t_core[t];
    st.start = t_start[t];
    st.finish = t_finish[t];
  }
  result.comms.resize(m);
  for (std::size_t e = 0; e < m; ++e) {
    ScheduledComm& sc = result.comms[e];
    sc.edge = EdgeId{static_cast<EdgeId::value_type>(e)};
    sc.cl = c_cl[e] >= 0 ? ClId{static_cast<ClId::value_type>(c_cl[e])}
                         : ClId::invalid();
    sc.local = c_local[e] != 0;
    sc.start = c_start[e];
    sc.finish = c_finish[e];
    makespan = std::max(makespan, sc.finish);
  }
  result.makespan = makespan;
  return result;
}

}  // namespace mmsyn
