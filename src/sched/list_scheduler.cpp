#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "model/architecture.hpp"
#include "model/omsm.hpp"
#include "model/tech_library.hpp"
#include "sched/timeline.hpp"

namespace mmsyn {
namespace {

constexpr double kUnroutablePenalty = 1e6;  // seconds; flags broken routing

/// Bottom level: longest path from task start to any sink's finish, using
/// mapped execution times and best-case communication delays. Classic list
/// scheduling priority: larger == more urgent.
std::vector<double> bottom_levels(const TaskGraph& graph,
                                  const ModeMapping& mapping,
                                  const Architecture& arch,
                                  const TechLibrary& tech) {
  const std::size_t n = graph.task_count();
  std::vector<double> exec(n);
  for (std::size_t t = 0; t < n; ++t) {
    const TaskId id{static_cast<TaskId::value_type>(t)};
    exec[t] = tech.require(graph.task(id).type, mapping.task_to_pe[t])
                  .exec_time;
  }
  std::vector<double> level(n, 0.0);
  const auto& topo = graph.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId u = *it;
    double tail = 0.0;
    for (EdgeId e : graph.out_edges(u)) {
      const TaskEdge& edge = graph.edge(e);
      const PeId src_pe = mapping.task_to_pe[edge.src.index()];
      const PeId dst_pe = mapping.task_to_pe[edge.dst.index()];
      double comm = 0.0;
      if (src_pe != dst_pe) {
        comm = std::numeric_limits<double>::infinity();
        for (ClId cl : arch.links_between(src_pe, dst_pe)) {
          const Cl& link = arch.cl(cl);
          comm = std::min(comm,
                          link.startup_latency + edge.data_bits / link.bandwidth);
        }
        if (!std::isfinite(comm)) comm = kUnroutablePenalty;
      }
      tail = std::max(tail, comm + level[edge.dst.index()]);
    }
    level[u.index()] = exec[u.index()] + tail;
  }
  return level;
}

/// Identifies the sequential execution resources of one PE: the PE itself
/// for software, or one timeline per allocated core instance for hardware.
/// Core groups are indexed by the dense task-type id (flat vectors rather
/// than maps: every lookup is on the scheduler's hot path).
class PeResources {
public:
  PeResources(const Pe& pe, const CoreSet& cores, std::size_t type_count)
      : pe_(pe),
        group_offset_(type_count, kNoGroup),
        group_size_(type_count, 0) {
    if (is_software(pe.kind)) {
      timelines_.resize(1);
      return;
    }
    for (const auto& [type, count] : cores.entries()) {
      group_offset_[type.index()] = timelines_.size();
      group_size_[type.index()] = count;
      timelines_.resize(timelines_.size() + static_cast<std::size_t>(count));
    }
  }

  /// Earliest-fitting (start, instance) choice for a task of `type`.
  std::pair<double, int> best_slot(TaskTypeId type, double ready,
                                   double duration) {
    if (is_software(pe_.kind)) {
      return {timelines_[0].earliest_fit(ready, duration), 0};
    }
    if (group_offset_[type.index()] == kNoGroup) {
      // Type not in the allocated core set: behave as one implicit core so
      // the schedule stays well-defined; the fitness layer charges the
      // area for it via the allocation builder.
      group_offset_[type.index()] = timelines_.size();
      group_size_[type.index()] = 1;
      timelines_.emplace_back();
    }
    const std::size_t offset = group_offset_[type.index()];
    double best_start = std::numeric_limits<double>::infinity();
    int best_instance = 0;
    const int count = group_size_[type.index()];
    for (int i = 0; i < count; ++i) {
      const double s =
          timelines_[offset + static_cast<std::size_t>(i)].earliest_fit(
              ready, duration);
      if (s < best_start) {
        best_start = s;
        best_instance = i;
      }
    }
    return {best_start, best_instance};
  }

  void reserve(TaskTypeId type, int instance, double start, double duration) {
    if (is_software(pe_.kind)) {
      timelines_[0].reserve(start, duration);
      return;
    }
    const std::size_t idx =
        group_offset_[type.index()] + static_cast<std::size_t>(instance);
    timelines_[idx].reserve(start, duration);
  }

private:
  static constexpr std::size_t kNoGroup =
      std::numeric_limits<std::size_t>::max();

  const Pe& pe_;
  std::vector<Timeline> timelines_;
  std::vector<std::size_t> group_offset_;  // index == task-type id
  std::vector<int> group_size_;            // index == task-type id
};

}  // namespace

std::vector<double> scheduling_priorities(const ListSchedulerInput& input) {
  const TaskGraph& graph = input.mode.graph;
  const std::size_t n = graph.task_count();
  std::vector<double> priority;
  switch (input.policy) {
    case SchedulingPolicy::kBottomLevel:
      priority = bottom_levels(graph, input.mapping, input.arch, input.tech);
      break;
    case SchedulingPolicy::kTopoOrder:
      priority.resize(n);
      for (std::size_t t = 0; t < n; ++t)
        priority[t] = -static_cast<double>(t);
      break;
    case SchedulingPolicy::kLongestTask:
      priority.resize(n);
      for (std::size_t t = 0; t < n; ++t) {
        const TaskId id{static_cast<TaskId::value_type>(t)};
        priority[t] =
            input.tech.require(graph.task(id).type, input.mapping.task_to_pe[t])
                .exec_time;
      }
      break;
  }
  return priority;
}

ModeSchedule list_schedule(const ListSchedulerInput& input) {
  return list_schedule(input, scheduling_priorities(input));
}

ModeSchedule list_schedule(const ListSchedulerInput& input,
                           const std::vector<double>& priority) {
  const TaskGraph& graph = input.mode.graph;
  const std::size_t n = graph.task_count();
  assert(priority.size() == n);

  ModeSchedule result;
  result.tasks.resize(n);
  result.comms.resize(graph.edge_count());

  std::vector<PeResources> pe_resources;
  pe_resources.reserve(input.arch.pe_count());
  for (PeId p : input.arch.pe_ids())
    pe_resources.emplace_back(input.arch.pe(p), input.hw_cores[p.index()],
                              input.tech.type_count());
  std::vector<Timeline> cl_timelines(input.arch.cl_count());

  std::vector<std::size_t> unscheduled_preds(n, 0);
  for (std::size_t t = 0; t < n; ++t)
    unscheduled_preds[t] =
        graph.in_edges(TaskId{static_cast<TaskId::value_type>(t)}).size();

  std::vector<TaskId> ready;
  for (std::size_t t = 0; t < n; ++t)
    if (unscheduled_preds[t] == 0)
      ready.push_back(TaskId{static_cast<TaskId::value_type>(t)});

  std::size_t scheduled = 0;
  while (!ready.empty()) {
    // Highest bottom-level first; ties broken by lower task id for
    // determinism.
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
      const double a = priority[ready[i].index()];
      const double b = priority[ready[best].index()];
      if (a > b || (a == b && ready[i] < ready[best])) best = i;
    }
    const TaskId u = ready[best];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));

    const PeId pe = input.mapping.task_to_pe[u.index()];
    const Task& task = graph.task(u);
    const double exec = input.tech.require(task.type, pe).exec_time;

    // Route every incoming edge, committing the earliest-delivery CL.
    double est = 0.0;
    for (EdgeId e : graph.in_edges(u)) {
      const TaskEdge& edge = graph.edge(e);
      const ScheduledTask& pred = result.tasks[edge.src.index()];
      ScheduledComm& comm = result.comms[e.index()];
      comm.edge = e;
      const PeId src_pe = input.mapping.task_to_pe[edge.src.index()];
      if (src_pe == pe) {
        comm.local = true;
        comm.cl = ClId::invalid();
        comm.start = comm.finish = pred.finish;
        est = std::max(est, pred.finish);
        continue;
      }
      comm.local = false;
      const auto links = input.arch.links_between(src_pe, pe);
      if (links.empty()) {
        result.routable = false;
        comm.cl = ClId::invalid();
        comm.start = pred.finish;
        comm.finish = pred.finish + kUnroutablePenalty;
        est = std::max(est, comm.finish);
        continue;
      }
      double best_finish = std::numeric_limits<double>::infinity();
      double best_start = 0.0;
      ClId best_cl;
      for (ClId cl : links) {
        const Cl& link = input.arch.cl(cl);
        const double dur =
            link.startup_latency + edge.data_bits / link.bandwidth;
        const double s =
            cl_timelines[cl.index()].earliest_fit(pred.finish, dur);
        if (s + dur < best_finish) {
          best_finish = s + dur;
          best_start = s;
          best_cl = cl;
        }
      }
      const Cl& link = input.arch.cl(best_cl);
      const double dur =
          link.startup_latency + edge.data_bits / link.bandwidth;
      cl_timelines[best_cl.index()].reserve(best_start, dur);
      comm.cl = best_cl;
      comm.start = best_start;
      comm.finish = best_start + dur;
      est = std::max(est, comm.finish);
    }

    auto [start, instance] =
        pe_resources[pe.index()].best_slot(task.type, est, exec);
    pe_resources[pe.index()].reserve(task.type, instance, start, exec);

    ScheduledTask& st = result.tasks[u.index()];
    st.task = u;
    st.pe = pe;
    st.core_instance = instance;
    st.start = start;
    st.finish = start + exec;
    result.makespan = std::max(result.makespan, st.finish);
    ++scheduled;

    for (EdgeId e : graph.out_edges(u)) {
      const TaskId v = graph.edge(e).dst;
      if (--unscheduled_preds[v.index()] == 0) ready.push_back(v);
    }
  }
  assert(scheduled == n && "task graph must be acyclic");
  for (const ScheduledComm& c : result.comms)
    result.makespan = std::max(result.makespan, c.finish);
  return result;
}

}  // namespace mmsyn
