// Resource timeline with first-fit gap insertion.
//
// Each sequential resource (a software PE, one hardware core instance, a
// communication link) is modelled as a set of disjoint busy intervals; the
// list scheduler places activities into the earliest gap that fits
// (insertion-based list scheduling).
#pragma once

#include <cstddef>
#include <vector>

namespace mmsyn {

/// Ordered set of busy [start, end) intervals on one sequential resource.
class Timeline {
public:
  /// Earliest start >= `ready` at which a block of `duration` fits into a
  /// gap (or after the last interval).
  [[nodiscard]] double earliest_fit(double ready, double duration) const;

  /// Marks [start, start + duration) busy. The block must not overlap an
  /// existing interval (guaranteed when `start` came from earliest_fit).
  void reserve(double start, double duration);

  /// End of the last busy interval (0 when idle).
  [[nodiscard]] double horizon() const;

  /// Total busy time.
  [[nodiscard]] double busy_time() const;

  [[nodiscard]] std::size_t interval_count() const {
    return intervals_.size();
  }

  void clear() { intervals_.clear(); }

  struct Interval {
    double start;
    double end;
  };
  [[nodiscard]] const std::vector<Interval>& intervals() const {
    return intervals_;
  }

private:
  std::vector<Interval> intervals_;  // sorted, disjoint
};

}  // namespace mmsyn
