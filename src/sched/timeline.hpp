// Resource timeline with first-fit gap insertion.
//
// Each sequential resource (a software PE, one hardware core instance, a
// communication link) is modelled as a set of disjoint busy intervals; the
// list scheduler places activities into the earliest gap that fits
// (insertion-based list scheduling).
//
// Storage is structure-of-arrays (DESIGN.md §12): the gap search scans the
// interval *starts* linearly and only touches the matching *end* when a
// candidate start collides, so the hot loop streams one contiguous double
// array instead of striding over {start, end} pairs.
#pragma once

#include <cstddef>
#include <vector>

namespace mmsyn {

/// Ordered set of busy [start, end) intervals on one sequential resource.
class Timeline {
public:
  /// Earliest start >= `ready` at which a block of `duration` fits into a
  /// gap (or after the last interval).
  [[nodiscard]] double earliest_fit(double ready, double duration) const;

  /// Marks [start, start + duration) busy. The block must not overlap an
  /// existing interval (guaranteed when `start` came from earliest_fit).
  void reserve(double start, double duration);

  /// End of the last busy interval (0 when idle).
  [[nodiscard]] double horizon() const;

  /// Total busy time.
  [[nodiscard]] double busy_time() const;

  [[nodiscard]] std::size_t interval_count() const { return starts_.size(); }

  void clear() {
    starts_.clear();
    ends_.clear();
  }

  /// Interval starts, ascending.
  [[nodiscard]] const std::vector<double>& starts() const { return starts_; }
  /// Interval ends, parallel to starts().
  [[nodiscard]] const std::vector<double>& ends() const { return ends_; }

private:
  std::vector<double> starts_;  // sorted; intervals disjoint
  std::vector<double> ends_;    // ends_[i] pairs with starts_[i]
};

}  // namespace mmsyn
