#include "sched/gantt.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "model/architecture.hpp"
#include "model/omsm.hpp"
#include "model/tech_library.hpp"

namespace mmsyn {
namespace {

/// Occupancy rows keyed by a stable resource label.
struct Row {
  std::string label;
  // (start, finish, symbol)
  std::vector<std::tuple<double, double, char>> blocks;
};

char symbol_for(std::size_t index) {
  static const char kSymbols[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  return kSymbols[index % (sizeof(kSymbols) - 1)];
}

}  // namespace

std::string render_gantt(const Mode& mode, const ModeSchedule& schedule,
                         const ModeMapping& mapping, const Architecture& arch,
                         const GanttOptions& options) {
  const double horizon = std::max(schedule.makespan, 1e-12);
  std::map<std::string, Row> rows;
  std::ostringstream legend;

  auto add_block = [&](const std::string& label, double start, double finish,
                       char symbol) {
    Row& row = rows[label];
    row.label = label;
    row.blocks.emplace_back(start, finish, symbol);
  };

  for (std::size_t t = 0; t < schedule.tasks.size(); ++t) {
    const ScheduledTask& st = schedule.tasks[t];
    const Pe& pe = arch.pe(st.pe);
    std::string label = pe.name;
    if (is_hardware(pe.kind)) {
      const TaskTypeId type = mode.graph.task(st.task).type;
      label += "/core" + std::to_string(st.core_instance) + "(" +
               std::string(1, '#') + std::to_string(type.value()) + ")";
    }
    const char symbol = symbol_for(t);
    add_block(label, st.start, st.finish, symbol);
    legend << "  " << symbol << " = "
           << (options.use_task_names ? mode.graph.task(st.task).name
                                      : "task" + std::to_string(st.task.value()))
           << " [" << st.start * 1e3 << ".." << st.finish * 1e3 << " ms]\n";
  }
  for (std::size_t e = 0; e < schedule.comms.size(); ++e) {
    const ScheduledComm& c = schedule.comms[e];
    if (c.local || !c.cl.valid() || c.duration() <= 0.0) continue;
    const char symbol = symbol_for(schedule.tasks.size() + e);
    add_block(arch.cl(c.cl).name, c.start, c.finish, symbol);
    legend << "  " << symbol << " = edge" << e << " transfer ["
           << c.start * 1e3 << ".." << c.finish * 1e3 << " ms]\n";
  }

  std::size_t label_width = 0;
  for (const auto& [label, row] : rows)
    label_width = std::max(label_width, label.size());

  std::ostringstream os;
  char header[128];
  std::snprintf(header, sizeof header,
                "Gantt: mode '%s', makespan %.3f ms, period %.3f ms\n",
                mode.name.c_str(), schedule.makespan * 1e3,
                mode.period * 1e3);
  os << header;
  for (const auto& [label, row] : rows) {
    std::string line(static_cast<std::size_t>(options.width), '.');
    for (const auto& [start, finish, symbol] : row.blocks) {
      const int from = static_cast<int>(start / horizon * options.width);
      int to = static_cast<int>(finish / horizon * options.width);
      to = std::max(to, from + 1);  // at least one cell
      for (int x = from; x < to && x < options.width; ++x)
        line[static_cast<std::size_t>(x)] = symbol;
    }
    os << label << std::string(label_width - label.size(), ' ') << " |"
       << line << "|\n";
  }
  os << legend.str();
  (void)mapping;
  return os.str();
}

}  // namespace mmsyn
