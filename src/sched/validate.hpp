// Schedule validation: independent checking of the inner loop's output.
//
// A co-synthesis result is only trustworthy if the schedules it prices
// are executable. This module re-checks a ModeSchedule against the model
// from first principles — data precedence through communications, resource
// exclusiveness (software PEs, hardware core instances, buses), routing
// (CL connects both endpoints), core-allocation coverage, and timing
// limits — completely independently of how the scheduler constructed it.
// Used by the test suite and available to downstream users as a safety
// net behind custom schedulers.
#pragma once

#include <string>
#include <vector>

#include "model/core_allocation.hpp"
#include "model/mapping.hpp"
#include "sched/schedule.hpp"

namespace mmsyn {

struct Mode;
class Architecture;
class TechLibrary;

/// One detected problem.
struct ScheduleViolation {
  enum class Kind {
    kPrecedence,       ///< consumer starts before its input arrives
    kResourceOverlap,  ///< two activities overlap on a sequential resource
    kRouting,          ///< comm mapped to a CL not connecting its endpoints
    kDuration,         ///< task/comm duration disagrees with the model
    kCoreMissing,      ///< HW task lacks an allocated core instance
    kDeadline,         ///< task finishes after min(deadline, period)
  };
  Kind kind;
  std::string detail;
};

/// Validation controls: deadline checking is optional because candidate
/// evaluation legitimately prices infeasible schedules via penalties.
struct ValidateOptions {
  bool check_deadlines = false;
  double tolerance = 1e-9;
};

/// Checks `schedule` for `mode` under `mapping` and `hw_cores` (the same
/// inputs the list scheduler received). Returns every violation found.
[[nodiscard]] std::vector<ScheduleViolation> validate_schedule(
    const Mode& mode, const ModeSchedule& schedule,
    const ModeMapping& mapping, const Architecture& arch,
    const TechLibrary& tech, const std::vector<CoreSet>& hw_cores,
    const ValidateOptions& options = {});

// ---- Shared timing semantics -------------------------------------------
// One definition of "when must a task finish" and "how late is this
// schedule", used by the deadline check above, the evaluator/pipeline
// (to price candidates) and the audit layer (to replay the pricing), so
// the three can never drift apart.

/// Timing limit of one task: min(its deadline, the mode's period φ).
[[nodiscard]] double task_time_limit(const Mode& mode, TaskId id);

/// Σ_τ max(0, finish − min(θ_τ, φ)) accumulated in ascending task-id
/// order — the exact floating-point order the evaluator uses, so audit
/// replays reproduce its sums bitwise.
[[nodiscard]] double schedule_timing_violation(const Mode& mode,
                                               const ModeSchedule& schedule);

/// Latest finish over all scheduled tasks and communications (0 when the
/// schedule is empty): tasks in id order first, then comms in edge order.
[[nodiscard]] double schedule_makespan(const ModeSchedule& schedule);

/// Human-readable rendering of a violation kind.
[[nodiscard]] const char* to_string(ScheduleViolation::Kind kind);

}  // namespace mmsyn
