#include "sched/mobility.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "model/architecture.hpp"
#include "model/omsm.hpp"
#include "model/tech_library.hpp"

namespace mmsyn {
namespace {

/// Contention-free delay estimate of edge `e` under `mapping`.
double edge_delay(const TaskGraph& graph, const TaskEdge& e,
                  const ModeMapping& mapping, const Architecture& arch) {
  (void)graph;
  const PeId src_pe = mapping.task_to_pe[e.src.index()];
  const PeId dst_pe = mapping.task_to_pe[e.dst.index()];
  if (src_pe == dst_pe) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (ClId cl : arch.links_between(src_pe, dst_pe)) {
    const Cl& link = arch.cl(cl);
    best = std::min(best, link.startup_latency + e.data_bits / link.bandwidth);
  }
  // Unconnected PEs: treat as a huge (but finite) delay so mobility stays
  // well-defined; the list scheduler reports the infeasibility properly.
  if (!std::isfinite(best)) best = 1e6;
  return best;
}

}  // namespace

MobilityInfo compute_mobility(const Mode& mode, const ModeMapping& mapping,
                              const Architecture& arch,
                              const TechLibrary& tech) {
  const TaskGraph& graph = mode.graph;
  const std::size_t n = graph.task_count();
  MobilityInfo info;
  info.asap_start.assign(n, 0.0);
  info.alap_start.assign(n, 0.0);
  info.exec_time.assign(n, 0.0);
  info.mobility.assign(n, 0.0);

  for (std::size_t t = 0; t < n; ++t) {
    const TaskId id{static_cast<TaskId::value_type>(t)};
    info.exec_time[t] =
        tech.require(graph.task(id).type, mapping.task_to_pe[t]).exec_time;
  }

  const auto& topo = graph.topological_order();

  // Forward (ASAP) pass.
  for (TaskId u : topo) {
    double start = 0.0;
    for (EdgeId e : graph.in_edges(u)) {
      const TaskEdge& edge = graph.edge(e);
      start = std::max(start, info.asap_start[edge.src.index()] +
                                  info.exec_time[edge.src.index()] +
                                  edge_delay(graph, edge, mapping, arch));
    }
    info.asap_start[u.index()] = start;
    info.critical_path =
        std::max(info.critical_path, start + info.exec_time[u.index()]);
  }

  // Backward (ALAP) pass anchored at min(deadline, period); if the period
  // is tighter than the critical path, anchor at the critical path so the
  // mobility values stay non-negative and still rank tasks usefully.
  const double anchor = std::max(mode.period, info.critical_path);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId u = *it;
    double limit = anchor;
    if (const auto& dl = graph.task(u).deadline)
      limit = std::min(limit, std::max(*dl, info.asap_start[u.index()] +
                                                info.exec_time[u.index()]));
    double latest_finish = limit;
    for (EdgeId e : graph.out_edges(u)) {
      const TaskEdge& edge = graph.edge(e);
      latest_finish =
          std::min(latest_finish,
                   info.alap_start[edge.dst.index()] -
                       edge_delay(graph, edge, mapping, arch));
    }
    info.alap_start[u.index()] = latest_finish - info.exec_time[u.index()];
    info.mobility[u.index()] = std::max(
        0.0, info.alap_start[u.index()] - info.asap_start[u.index()]);
  }
  return info;
}

}  // namespace mmsyn
