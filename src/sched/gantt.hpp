// ASCII Gantt rendering of mode schedules.
//
// Renders one ModeSchedule as a per-resource timeline chart (software PEs,
// hardware core instances, buses), for reports, debugging, and the
// examples. Pure formatting — no scheduling logic.
#pragma once

#include <string>

#include "model/mapping.hpp"
#include "sched/schedule.hpp"

namespace mmsyn {

struct Mode;
class Architecture;

struct GanttOptions {
  /// Chart width in character columns (time axis resolution).
  int width = 72;
  /// Label tasks with their graph names (otherwise task ids).
  bool use_task_names = true;
};

/// Renders `schedule` of `mode` under `mapping`. One row per occupied
/// resource: "GPP0", "ASIC1/FFT#0" (core instance), "BUS0". Rows show the
/// scheduled occupancy; a trailing legend maps row letters to activities.
[[nodiscard]] std::string render_gantt(const Mode& mode,
                                       const ModeSchedule& schedule,
                                       const ModeMapping& mapping,
                                       const Architecture& arch,
                                       const GanttOptions& options = {});

}  // namespace mmsyn
