#include "sched/validate.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "model/architecture.hpp"
#include "model/omsm.hpp"
#include "model/tech_library.hpp"

namespace mmsyn {
namespace {

std::string task_label(const Mode& mode, TaskId id) {
  return "'" + mode.graph.task(id).name + "'";
}

}  // namespace

double task_time_limit(const Mode& mode, TaskId id) {
  double limit = mode.period;
  if (const auto& dl = mode.graph.task(id).deadline)
    limit = std::min(limit, *dl);
  return limit;
}

double schedule_timing_violation(const Mode& mode,
                                 const ModeSchedule& schedule) {
  double total = 0.0;
  for (std::size_t t = 0; t < mode.graph.task_count(); ++t) {
    const TaskId id{static_cast<TaskId::value_type>(t)};
    total +=
        std::max(0.0, schedule.tasks[t].finish - task_time_limit(mode, id));
  }
  return total;
}

double schedule_makespan(const ModeSchedule& schedule) {
  double makespan = 0.0;
  for (const ScheduledTask& st : schedule.tasks)
    makespan = std::max(makespan, st.finish);
  for (const ScheduledComm& sc : schedule.comms)
    makespan = std::max(makespan, sc.finish);
  return makespan;
}

const char* to_string(ScheduleViolation::Kind kind) {
  switch (kind) {
    case ScheduleViolation::Kind::kPrecedence: return "precedence";
    case ScheduleViolation::Kind::kResourceOverlap: return "resource-overlap";
    case ScheduleViolation::Kind::kRouting: return "routing";
    case ScheduleViolation::Kind::kDuration: return "duration";
    case ScheduleViolation::Kind::kCoreMissing: return "core-missing";
    case ScheduleViolation::Kind::kDeadline: return "deadline";
  }
  return "?";
}

std::vector<ScheduleViolation> validate_schedule(
    const Mode& mode, const ModeSchedule& schedule,
    const ModeMapping& mapping, const Architecture& arch,
    const TechLibrary& tech, const std::vector<CoreSet>& hw_cores,
    const ValidateOptions& options) {
  std::vector<ScheduleViolation> violations;
  const double eps = options.tolerance;
  auto report = [&](ScheduleViolation::Kind kind, const std::string& detail) {
    violations.push_back({kind, detail});
  };

  const TaskGraph& graph = mode.graph;

  // ---- Durations match the technology library / CL model. ---------------
  for (std::size_t t = 0; t < graph.task_count(); ++t) {
    const TaskId id{static_cast<TaskId::value_type>(t)};
    const ScheduledTask& st = schedule.tasks[t];
    const double expected =
        tech.require(graph.task(id).type, mapping.task_to_pe[t]).exec_time;
    if (std::abs(st.duration() - expected) > eps + 1e-12 * expected)
      report(ScheduleViolation::Kind::kDuration,
             "task " + task_label(mode, id) + " duration " +
                 std::to_string(st.duration()) + " != model " +
                 std::to_string(expected));
  }
  for (std::size_t e = 0; e < graph.edge_count(); ++e) {
    const ScheduledComm& comm = schedule.comms[e];
    if (comm.local || !comm.cl.valid()) continue;
    const Cl& cl = arch.cl(comm.cl);
    const double expected =
        cl.startup_latency +
        graph.edge(EdgeId{static_cast<EdgeId::value_type>(e)}).data_bits /
            cl.bandwidth;
    if (std::abs(comm.duration() - expected) > eps + 1e-12 * expected)
      report(ScheduleViolation::Kind::kDuration,
             "edge " + std::to_string(e) + " transfer duration " +
                 std::to_string(comm.duration()) + " != model " +
                 std::to_string(expected));
  }

  // ---- Precedence through communications. --------------------------------
  for (std::size_t e = 0; e < graph.edge_count(); ++e) {
    const TaskEdge& edge = graph.edge(EdgeId{static_cast<EdgeId::value_type>(e)});
    const ScheduledComm& comm = schedule.comms[e];
    const ScheduledTask& src = schedule.tasks[edge.src.index()];
    const ScheduledTask& dst = schedule.tasks[edge.dst.index()];
    if (comm.start + eps < src.finish)
      report(ScheduleViolation::Kind::kPrecedence,
             "transfer of edge " + std::to_string(e) +
                 " starts before producer " + task_label(mode, edge.src) +
                 " finishes");
    if (dst.start + eps < comm.finish)
      report(ScheduleViolation::Kind::kPrecedence,
             "consumer " + task_label(mode, edge.dst) +
                 " starts before edge " + std::to_string(e) + " arrives");
  }

  // ---- Routing: CL must connect both endpoints. ---------------------------
  for (std::size_t e = 0; e < graph.edge_count(); ++e) {
    const TaskEdge& edge = graph.edge(EdgeId{static_cast<EdgeId::value_type>(e)});
    const ScheduledComm& comm = schedule.comms[e];
    const PeId src_pe = mapping.task_to_pe[edge.src.index()];
    const PeId dst_pe = mapping.task_to_pe[edge.dst.index()];
    if (src_pe == dst_pe) {
      if (!comm.local)
        report(ScheduleViolation::Kind::kRouting,
               "same-PE edge " + std::to_string(e) + " marked non-local");
      continue;
    }
    if (comm.local) {
      report(ScheduleViolation::Kind::kRouting,
             "cross-PE edge " + std::to_string(e) + " marked local");
      continue;
    }
    if (!comm.cl.valid()) {
      report(ScheduleViolation::Kind::kRouting,
             "cross-PE edge " + std::to_string(e) + " has no CL");
      continue;
    }
    const auto& attached = arch.cl(comm.cl).attached;
    const bool ok =
        std::find(attached.begin(), attached.end(), src_pe) != attached.end() &&
        std::find(attached.begin(), attached.end(), dst_pe) != attached.end();
    if (!ok)
      report(ScheduleViolation::Kind::kRouting,
             "edge " + std::to_string(e) + " rides CL '" +
                 arch.cl(comm.cl).name + "' which misses an endpoint");
  }

  // ---- Core coverage and resource exclusiveness. --------------------------
  // Group activities per sequential resource.
  std::map<std::string, std::vector<std::pair<double, double>>> resources;
  for (std::size_t t = 0; t < graph.task_count(); ++t) {
    const TaskId id{static_cast<TaskId::value_type>(t)};
    const ScheduledTask& st = schedule.tasks[t];
    const Pe& pe = arch.pe(st.pe);
    std::string key;
    if (is_software(pe.kind)) {
      key = "pe" + std::to_string(st.pe.value());
    } else {
      const TaskTypeId type = graph.task(id).type;
      const int count = hw_cores[st.pe.index()].count_of(type);
      // Missing allocation is tolerated as one implicit core (the
      // scheduler's documented fallback) but instances beyond the
      // allocated count are a violation.
      const int limit = std::max(count, 1);
      if (st.core_instance < 0 || st.core_instance >= limit)
        report(ScheduleViolation::Kind::kCoreMissing,
               "task " + task_label(mode, id) + " uses core instance " +
                   std::to_string(st.core_instance) + " of " +
                   std::to_string(limit));
      key = "pe" + std::to_string(st.pe.value()) + "/type" +
            std::to_string(type.value()) + "/core" +
            std::to_string(st.core_instance);
    }
    resources[key].emplace_back(st.start, st.finish);
  }
  for (std::size_t e = 0; e < graph.edge_count(); ++e) {
    const ScheduledComm& comm = schedule.comms[e];
    if (comm.local || !comm.cl.valid() || comm.duration() <= 0.0) continue;
    resources["cl" + std::to_string(comm.cl.value())].emplace_back(
        comm.start, comm.finish);
  }
  for (auto& [key, intervals] : resources) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i)
      if (intervals[i].first + eps < intervals[i - 1].second)
        report(ScheduleViolation::Kind::kResourceOverlap,
               "overlap on " + key + " around t=" +
                   std::to_string(intervals[i].first));
  }

  // ---- Deadlines (optional). ----------------------------------------------
  if (options.check_deadlines) {
    for (std::size_t t = 0; t < graph.task_count(); ++t) {
      const TaskId id{static_cast<TaskId::value_type>(t)};
      const double limit = task_time_limit(mode, id);
      if (schedule.tasks[t].finish > limit + eps)
        report(ScheduleViolation::Kind::kDeadline,
               "task " + task_label(mode, id) + " finishes at " +
                   std::to_string(schedule.tasks[t].finish) + " > limit " +
                   std::to_string(limit));
    }
  }
  return violations;
}

}  // namespace mmsyn
