// Schedule result types for one operational mode.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"

namespace mmsyn {

/// One scheduled task occurrence.
struct ScheduledTask {
  TaskId task;
  PeId pe;
  /// Core instance index within the (pe, task-type) core group; 0 on
  /// software PEs.
  int core_instance = 0;
  double start = 0.0;
  double finish = 0.0;

  [[nodiscard]] double duration() const { return finish - start; }
};

/// One scheduled communication (the activity of a task-graph edge).
struct ScheduledComm {
  EdgeId edge;
  /// CL carrying the message; invalid id when `local` (same-PE, zero cost).
  ClId cl;
  bool local = true;
  double start = 0.0;
  double finish = 0.0;

  [[nodiscard]] double duration() const { return finish - start; }
};

/// Complete timing schedule S_ε of one mode: start/finish times for every
/// task (index == task id) and every edge's communication (index == edge
/// id), as produced by the list scheduler.
struct ModeSchedule {
  std::vector<ScheduledTask> tasks;
  std::vector<ScheduledComm> comms;
  /// Latest finish over all activities.
  double makespan = 0.0;
  /// True when every inter-PE edge found a connecting CL.
  bool routable = true;
};

/// Structure-of-arrays view of a ModeSchedule (DESIGN.md §12).
///
/// The list scheduler and the DVS stages work on columnar slot arrays so
/// their hot loops stream contiguous memory; ModeSchedule stays the
/// canonical AoS *artifact* (its byte layout is what the pipeline cache and
/// run-control checkpoints serialise). This view is the bridge: `from()`
/// gathers an artifact into columns, `to_schedule()` scatters back, and
/// the round trip is exact (every field copied bit-for-bit).
struct ScheduleSlots {
  // Task columns, index == task id.
  std::vector<double> task_start;
  std::vector<double> task_finish;
  std::vector<std::int32_t> task_pe;
  std::vector<std::int32_t> task_core;
  // Communication columns, index == edge id. `comm_cl` is -1 for local or
  // unroutable edges (matching ClId::invalid() in the artifact).
  std::vector<double> comm_start;
  std::vector<double> comm_finish;
  std::vector<std::int32_t> comm_cl;
  std::vector<std::uint8_t> comm_local;
  double makespan = 0.0;
  bool routable = true;

  [[nodiscard]] static ScheduleSlots from(const ModeSchedule& s) {
    ScheduleSlots v;
    const std::size_t n = s.tasks.size();
    const std::size_t m = s.comms.size();
    v.task_start.resize(n);
    v.task_finish.resize(n);
    v.task_pe.resize(n);
    v.task_core.resize(n);
    for (std::size_t t = 0; t < n; ++t) {
      const ScheduledTask& st = s.tasks[t];
      v.task_start[t] = st.start;
      v.task_finish[t] = st.finish;
      v.task_pe[t] = st.pe.valid() ? static_cast<std::int32_t>(st.pe.index())
                                   : -1;
      v.task_core[t] = st.core_instance;
    }
    v.comm_start.resize(m);
    v.comm_finish.resize(m);
    v.comm_cl.resize(m);
    v.comm_local.resize(m);
    for (std::size_t e = 0; e < m; ++e) {
      const ScheduledComm& sc = s.comms[e];
      v.comm_start[e] = sc.start;
      v.comm_finish[e] = sc.finish;
      v.comm_cl[e] = sc.cl.valid() ? static_cast<std::int32_t>(sc.cl.index())
                                   : -1;
      v.comm_local[e] = sc.local ? 1 : 0;
    }
    v.makespan = s.makespan;
    v.routable = s.routable;
    return v;
  }

  [[nodiscard]] ModeSchedule to_schedule() const {
    ModeSchedule s;
    const std::size_t n = task_start.size();
    const std::size_t m = comm_start.size();
    s.tasks.resize(n);
    for (std::size_t t = 0; t < n; ++t) {
      ScheduledTask& st = s.tasks[t];
      st.task = TaskId{static_cast<TaskId::value_type>(t)};
      st.pe = task_pe[t] >= 0
                  ? PeId{static_cast<PeId::value_type>(task_pe[t])}
                  : PeId::invalid();
      st.core_instance = task_core[t];
      st.start = task_start[t];
      st.finish = task_finish[t];
    }
    s.comms.resize(m);
    for (std::size_t e = 0; e < m; ++e) {
      ScheduledComm& sc = s.comms[e];
      sc.edge = EdgeId{static_cast<EdgeId::value_type>(e)};
      sc.cl = comm_cl[e] >= 0 ? ClId{static_cast<ClId::value_type>(comm_cl[e])}
                              : ClId::invalid();
      sc.local = comm_local[e] != 0;
      sc.start = comm_start[e];
      sc.finish = comm_finish[e];
    }
    s.makespan = makespan;
    s.routable = routable;
    return s;
  }
};

}  // namespace mmsyn
