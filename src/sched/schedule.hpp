// Schedule result types for one operational mode.
#pragma once

#include <vector>

#include "common/ids.hpp"

namespace mmsyn {

/// One scheduled task occurrence.
struct ScheduledTask {
  TaskId task;
  PeId pe;
  /// Core instance index within the (pe, task-type) core group; 0 on
  /// software PEs.
  int core_instance = 0;
  double start = 0.0;
  double finish = 0.0;

  [[nodiscard]] double duration() const { return finish - start; }
};

/// One scheduled communication (the activity of a task-graph edge).
struct ScheduledComm {
  EdgeId edge;
  /// CL carrying the message; invalid id when `local` (same-PE, zero cost).
  ClId cl;
  bool local = true;
  double start = 0.0;
  double finish = 0.0;

  [[nodiscard]] double duration() const { return finish - start; }
};

/// Complete timing schedule S_ε of one mode: start/finish times for every
/// task (index == task id) and every edge's communication (index == edge
/// id), as produced by the list scheduler.
struct ModeSchedule {
  std::vector<ScheduledTask> tasks;
  std::vector<ScheduledComm> comms;
  /// Latest finish over all activities.
  double makespan = 0.0;
  /// True when every inter-PE edge found a connecting CL.
  bool routable = true;
};

}  // namespace mmsyn
