// Target-architecture model (Section 2.2 of the paper).
//
// A distributed heterogeneous architecture G_A(P, L): processing elements
// (general-purpose processors, ASIPs, ASICs, FPGAs) connected by
// communication links (buses). Software PEs sequentialize their tasks;
// hardware PEs execute tasks in parallel on allocated *cores* (one core
// serves one task type; same-core contention sequentializes). PEs may be
// DVS-enabled — including hardware PEs, whose cores then share one supply.
#pragma once

#include <string>
#include <vector>

#include "common/ids.hpp"

namespace mmsyn {

/// Processing-element class. Gpp/Asip run software (sequential execution);
/// Asic/Fpga are hardware (parallel cores, area-constrained). Fpga cores
/// can be swapped at mode changes at a reconfiguration-time cost.
enum class PeKind { kGpp, kAsip, kAsic, kFpga };

[[nodiscard]] constexpr bool is_hardware(PeKind k) {
  return k == PeKind::kAsic || k == PeKind::kFpga;
}
[[nodiscard]] constexpr bool is_software(PeKind k) { return !is_hardware(k); }

[[nodiscard]] const char* to_string(PeKind k);

/// One processing element. Units: volts, watts, cells (area),
/// cells/second (reconfiguration bandwidth).
struct Pe {
  std::string name;
  PeKind kind = PeKind::kGpp;

  /// True when the PE supports dynamic voltage scaling. For hardware PEs
  /// all cores share a single scaled supply (Section 4.2).
  bool dvs_enabled = false;

  /// Discrete supply-voltage levels, ascending; the last entry is the
  /// nominal V_max at which the technology library is characterized.
  /// Must be non-empty; single-entry means fixed-voltage.
  std::vector<double> voltage_levels{3.3};

  /// Threshold voltage V_t of the α-power delay model (< min level).
  double threshold_voltage = 0.8;

  /// Available core area in cells; only meaningful for hardware PEs.
  double area_capacity = 0.0;

  /// Static (leakage + idle) power drawn while the PE is powered in a mode.
  double static_power = 0.0;

  /// FPGA only: configuration bandwidth in cells/second used to charge
  /// mode-transition reconfiguration time.
  double reconfig_bandwidth = 0.0;

  [[nodiscard]] double vmax() const { return voltage_levels.back(); }
  [[nodiscard]] double vmin() const { return voltage_levels.front(); }
};

/// One communication link (bus). A CL connects a subset of PEs; an
/// inter-PE communication can only map onto a CL that connects both
/// endpoints. Units: bits/second, watts.
struct Cl {
  std::string name;
  /// Transfer rate in bits/second.
  double bandwidth = 1e6;
  /// Fixed per-message startup latency in seconds.
  double startup_latency = 0.0;
  /// Dynamic power P_C drawn while a transfer is in flight.
  double transfer_power = 0.0;
  /// Static power drawn while the CL is powered in a mode.
  double static_power = 0.0;
  /// PEs attached to this link.
  std::vector<PeId> attached;
};

/// The architecture graph: PEs plus CLs with attachment lists.
class Architecture {
public:
  PeId add_pe(Pe pe);
  ClId add_cl(Cl cl);

  [[nodiscard]] std::size_t pe_count() const { return pes_.size(); }
  [[nodiscard]] std::size_t cl_count() const { return cls_.size(); }

  [[nodiscard]] const Pe& pe(PeId id) const { return pes_[id.index()]; }
  [[nodiscard]] const Cl& cl(ClId id) const { return cls_[id.index()]; }
  [[nodiscard]] Pe& pe(PeId id) { return pes_[id.index()]; }
  [[nodiscard]] Cl& cl(ClId id) { return cls_[id.index()]; }
  [[nodiscard]] const std::vector<Pe>& pes() const { return pes_; }
  [[nodiscard]] const std::vector<Cl>& cls() const { return cls_; }

  /// All CLs connecting both a and b (empty when a == b — no link needed).
  [[nodiscard]] std::vector<ClId> links_between(PeId a, PeId b) const;

  /// True when every PE pair is joined by at least one CL (or pe_count()<2).
  [[nodiscard]] bool fully_connected() const;

  /// Convenience iteration helpers.
  [[nodiscard]] std::vector<PeId> pe_ids() const;
  [[nodiscard]] std::vector<ClId> cl_ids() const;

private:
  std::vector<Pe> pes_;
  std::vector<Cl> cls_;
};

}  // namespace mmsyn
