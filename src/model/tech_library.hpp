// Technology library: implementation alternatives per (task type, PE).
//
// Mirrors the per-type tables in the paper's motivational example
// (Section 2.3): for every task type and every PE capable of executing it,
// the library stores nominal execution time t_min, nominal dynamic power
// P_max (both at the PE's V_max), and — for hardware PEs — the core area
// the type occupies.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"

namespace mmsyn {

/// One implementation alternative of a task type on a specific PE.
struct Implementation {
  /// Worst-case execution time at nominal voltage, seconds.
  double exec_time = 0.0;
  /// Dynamic power at nominal voltage, watts.
  double dyn_power = 0.0;
  /// Core area in cells (hardware PEs only; 0 for software).
  double area = 0.0;

  /// Dynamic energy of one execution at nominal voltage, joules.
  [[nodiscard]] double energy() const { return exec_time * dyn_power; }
};

/// Registry of task types plus the (type × PE) implementation matrix.
class TechLibrary {
public:
  /// Registers a task type; names are for reporting only and need not be
  /// unique (though generators keep them unique).
  TaskTypeId add_type(std::string name);

  /// Declares that `type` can run on `pe` with the given characteristics.
  /// Re-setting an existing pair overwrites it.
  void set_implementation(TaskTypeId type, PeId pe, Implementation impl);

  [[nodiscard]] std::size_t type_count() const { return names_.size(); }
  [[nodiscard]] const std::string& type_name(TaskTypeId id) const {
    return names_[id.index()];
  }

  /// Implementation of `type` on `pe`, or nullopt when not supported.
  [[nodiscard]] std::optional<Implementation> implementation(TaskTypeId type,
                                                             PeId pe) const;

  /// Implementation that must exist; throws std::logic_error otherwise.
  [[nodiscard]] const Implementation& require(TaskTypeId type, PeId pe) const;

  [[nodiscard]] bool supports(TaskTypeId type, PeId pe) const;

  /// All PEs (ascending id) able to execute `type`, among the first
  /// `pe_count` PEs.
  [[nodiscard]] std::vector<PeId> candidate_pes(TaskTypeId type,
                                                std::size_t pe_count) const;

private:
  struct Cell {
    bool present = false;
    Implementation impl;
  };
  [[nodiscard]] const Cell* find(TaskTypeId type, PeId pe) const;

  std::vector<std::string> names_;
  // impls_[type] is a vector indexed by PE; grown on demand.
  std::vector<std::vector<Cell>> impls_;
};

}  // namespace mmsyn
