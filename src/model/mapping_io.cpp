#include "model/mapping_io.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace mmsyn {

void write_mapping(std::ostream& os, const System& system,
                   const MultiModeMapping& mapping) {
  os << "# mmsyn mapping file\n";
  os << "mapping for-system " << system.name << "\n";
  for (std::size_t m = 0; m < system.omsm.mode_count(); ++m) {
    const Mode& mode = system.omsm.mode(ModeId{static_cast<ModeId::value_type>(m)});
    for (std::size_t t = 0; t < mode.graph.task_count(); ++t) {
      const TaskId id{static_cast<TaskId::value_type>(t)};
      os << "map " << mode.name << " " << mode.graph.task(id).name << " "
         << system.arch.pe(mapping.modes[m].task_to_pe[t]).name << "\n";
    }
  }
}

std::string mapping_to_string(const System& system,
                              const MultiModeMapping& mapping) {
  std::ostringstream os;
  write_mapping(os, system, mapping);
  return os.str();
}

MultiModeMapping read_mapping(std::istream& is, const System& system) {
  // Name lookup tables.
  std::map<std::string, ModeId> modes;
  std::vector<std::map<std::string, TaskId>> tasks(system.omsm.mode_count());
  for (std::size_t m = 0; m < system.omsm.mode_count(); ++m) {
    const ModeId id{static_cast<ModeId::value_type>(m)};
    const Mode& mode = system.omsm.mode(id);
    modes[mode.name] = id;
    for (std::size_t t = 0; t < mode.graph.task_count(); ++t) {
      const TaskId tid{static_cast<TaskId::value_type>(t)};
      tasks[m][mode.graph.task(tid).name] = tid;
    }
  }
  std::map<std::string, PeId> pes;
  for (PeId p : system.arch.pe_ids()) pes[system.arch.pe(p).name] = p;

  MultiModeMapping mapping;
  mapping.modes.resize(system.omsm.mode_count());
  std::vector<std::vector<bool>> assigned(system.omsm.mode_count());
  for (std::size_t m = 0; m < system.omsm.mode_count(); ++m) {
    const std::size_t n =
        system.omsm.mode(ModeId{static_cast<ModeId::value_type>(m)})
            .graph.task_count();
    mapping.modes[m].task_to_pe.assign(n, PeId::invalid());
    assigned[m].assign(n, false);
  }

  std::string text;
  int number = 0;
  while (std::getline(is, text)) {
    ++number;
    std::istringstream line(text);
    std::string keyword;
    if (!(line >> keyword) || keyword[0] == '#') continue;
    if (keyword == "mapping") continue;  // header, informational
    if (keyword != "map")
      throw ParseError(number, "unknown keyword '" + keyword + "'");
    std::string mode_name, task_name, pe_name;
    if (!(line >> mode_name >> task_name >> pe_name))
      throw ParseError(number, "expected: map <mode> <task> <pe>");
    const auto mode_it = modes.find(mode_name);
    if (mode_it == modes.end())
      throw ParseError(number, "unknown mode '" + mode_name + "'");
    const std::size_t m = mode_it->second.index();
    const auto task_it = tasks[m].find(task_name);
    if (task_it == tasks[m].end())
      throw ParseError(number, "unknown task '" + task_name + "' in mode '" +
                                   mode_name + "'");
    const auto pe_it = pes.find(pe_name);
    if (pe_it == pes.end())
      throw ParseError(number, "unknown PE '" + pe_name + "'");
    const std::size_t t = task_it->second.index();
    if (assigned[m][t])
      throw ParseError(number, "task '" + task_name + "' mapped twice");
    const TaskTypeId type =
        system.omsm.mode(mode_it->second).graph.task(task_it->second).type;
    if (!system.tech.supports(type, pe_it->second))
      throw ParseError(number, "type '" + system.tech.type_name(type) +
                                   "' has no implementation on '" + pe_name +
                                   "'");
    mapping.modes[m].task_to_pe[t] = pe_it->second;
    assigned[m][t] = true;
  }

  for (std::size_t m = 0; m < assigned.size(); ++m)
    for (std::size_t t = 0; t < assigned[m].size(); ++t)
      if (!assigned[m][t])
        throw ParseError(
            number,
            "unmapped task '" +
                system.omsm.mode(ModeId{static_cast<ModeId::value_type>(m)})
                    .graph.task(TaskId{static_cast<TaskId::value_type>(t)})
                    .name +
                "' in mode '" +
                system.omsm.mode(ModeId{static_cast<ModeId::value_type>(m)})
                    .name +
                "'");
  return mapping;
}

MultiModeMapping mapping_from_string(const std::string& text,
                                     const System& system) {
  std::istringstream is(text);
  return read_mapping(is, system);
}

void save_mapping(const std::string& path, const System& system,
                  const MultiModeMapping& mapping) {
  std::ofstream os(path);
  if (!os) throw ParseError(path, 0, "cannot open for writing");
  write_mapping(os, system, mapping);
  os.flush();
  if (!os) throw ParseError(path, 0, "write failed");
}

MultiModeMapping load_mapping(const std::string& path, const System& system) {
  std::ifstream is(path);
  if (!is) throw ParseError(path, 0, "cannot open for reading");
  try {
    return read_mapping(is, system);
  } catch (const ParseError& e) {
    throw ParseError(path, e.line(), e.message());
  }
}

}  // namespace mmsyn
