#include "model/mapping.hpp"

#include "model/architecture.hpp"
#include "model/omsm.hpp"
#include "model/tech_library.hpp"

namespace mmsyn {

bool mapping_is_well_formed(const MultiModeMapping& mapping, const Omsm& omsm,
                            const Architecture& arch,
                            const TechLibrary& tech) {
  if (mapping.modes.size() != omsm.mode_count()) return false;
  for (std::size_t m = 0; m < omsm.mode_count(); ++m) {
    const ModeId mode_id{static_cast<ModeId::value_type>(m)};
    const Mode& mode = omsm.mode(mode_id);
    const ModeMapping& mm = mapping.modes[m];
    if (mm.task_to_pe.size() != mode.graph.task_count()) return false;
    for (std::size_t t = 0; t < mm.task_to_pe.size(); ++t) {
      const PeId pe = mm.task_to_pe[t];
      if (!pe.valid() || pe.index() >= arch.pe_count()) return false;
      const TaskId task_id{static_cast<TaskId::value_type>(t)};
      if (!tech.supports(mode.graph.task(task_id).type, pe)) return false;
    }
  }
  return true;
}

}  // namespace mmsyn
