// Operational Mode State Machine (Section 2.1 of the paper).
//
// The top-level specification ϒ(Ω, Θ): a directed cyclic graph whose nodes
// are mutually-exclusive operational modes and whose edges are mode
// transitions with maximal transition-time limits t_T^max. Each mode O
// carries its execution probability Ψ_O (fraction of operational time spent
// in O), its repetition period φ (the hyper-period hp_O over which its task
// graph repeats), and the task graph implementing its functionality.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "model/task_graph.hpp"

namespace mmsyn {

/// One operational mode of the OMSM.
struct Mode {
  std::string name;
  /// Execution probability Ψ_O ∈ [0, 1]; probabilities of all modes sum
  /// to 1 (validated by Omsm::validate).
  double probability = 0.0;
  /// Repetition period φ (== hyper-period hp_O), seconds. Every task must
  /// finish within min(θ_τ, φ) of the period start.
  double period = 0.0;
  /// The mode's functionality.
  TaskGraph graph;
};

/// One transition edge of the OMSM with its maximal transition time.
struct ModeTransition {
  ModeId from;
  ModeId to;
  /// Maximal allowed system-reconfiguration time t_T^max, seconds.
  /// Infinity (the default) means unconstrained.
  double max_transition_time = std::numeric_limits<double>::infinity();
};

/// The operational mode state machine.
class Omsm {
public:
  ModeId add_mode(Mode mode);
  TransitionId add_transition(ModeTransition transition);

  [[nodiscard]] std::size_t mode_count() const { return modes_.size(); }
  [[nodiscard]] std::size_t transition_count() const {
    return transitions_.size();
  }

  [[nodiscard]] const Mode& mode(ModeId id) const { return modes_[id.index()]; }
  [[nodiscard]] Mode& mode(ModeId id) { return modes_[id.index()]; }
  [[nodiscard]] const ModeTransition& transition(TransitionId id) const {
    return transitions_[id.index()];
  }
  [[nodiscard]] ModeTransition& transition(TransitionId id) {
    return transitions_[id.index()];
  }
  [[nodiscard]] const std::vector<Mode>& modes() const { return modes_; }
  [[nodiscard]] const std::vector<ModeTransition>& transitions() const {
    return transitions_;
  }

  [[nodiscard]] std::vector<ModeId> mode_ids() const;

  /// Mode probabilities as a dense vector (index == mode id).
  [[nodiscard]] std::vector<double> probabilities() const;

  /// Rescales probabilities to sum to exactly 1 (no-op on an empty OMSM or
  /// when all probabilities are zero).
  void normalize_probabilities();

  /// Checks: at least one mode; probabilities in [0,1] summing to 1 within
  /// `tolerance`; positive periods; per-mode graphs acyclic; transition
  /// endpoints valid and distinct. Returns a list of human-readable
  /// problems (empty == valid).
  [[nodiscard]] std::vector<std::string> validate(
      double tolerance = 1e-6) const;

private:
  std::vector<Mode> modes_;
  std::vector<ModeTransition> transitions_;
};

}  // namespace mmsyn
