#include "model/omsm.hpp"

#include <cmath>
#include <limits>

namespace mmsyn {

ModeId Omsm::add_mode(Mode mode) {
  modes_.push_back(std::move(mode));
  return ModeId{static_cast<ModeId::value_type>(modes_.size() - 1)};
}

TransitionId Omsm::add_transition(ModeTransition transition) {
  transitions_.push_back(transition);
  return TransitionId{
      static_cast<TransitionId::value_type>(transitions_.size() - 1)};
}

std::vector<ModeId> Omsm::mode_ids() const {
  std::vector<ModeId> ids;
  ids.reserve(modes_.size());
  for (std::size_t i = 0; i < modes_.size(); ++i)
    ids.push_back(ModeId{static_cast<ModeId::value_type>(i)});
  return ids;
}

std::vector<double> Omsm::probabilities() const {
  std::vector<double> p;
  p.reserve(modes_.size());
  for (const Mode& m : modes_) p.push_back(m.probability);
  return p;
}

void Omsm::normalize_probabilities() {
  double total = 0.0;
  for (const Mode& m : modes_) total += m.probability;
  if (total <= 0.0) return;
  for (Mode& m : modes_) m.probability /= total;
}

std::vector<std::string> Omsm::validate(double tolerance) const {
  std::vector<std::string> problems;
  if (modes_.empty()) {
    problems.push_back("OMSM has no modes");
    return problems;
  }
  double total = 0.0;
  for (std::size_t i = 0; i < modes_.size(); ++i) {
    const Mode& m = modes_[i];
    if (m.probability < 0.0 || m.probability > 1.0)
      problems.push_back("mode '" + m.name + "' probability outside [0,1]");
    total += m.probability;
    if (!(m.period > 0.0))
      problems.push_back("mode '" + m.name + "' period must be positive");
    if (!m.graph.finalize())
      problems.push_back("mode '" + m.name + "' task graph is cyclic");
    for (const Task& t : m.graph.tasks())
      if (t.deadline && *t.deadline <= 0.0)
        problems.push_back("task '" + t.name + "' in mode '" + m.name +
                           "' has non-positive deadline");
  }
  if (std::abs(total - 1.0) > tolerance)
    problems.push_back("mode probabilities sum to " + std::to_string(total) +
                       ", expected 1");
  for (const ModeTransition& t : transitions_) {
    const bool from_ok = t.from.valid() && t.from.index() < modes_.size();
    const bool to_ok = t.to.valid() && t.to.index() < modes_.size();
    if (!from_ok || !to_ok)
      problems.push_back("transition references unknown mode");
    else if (t.from == t.to)
      problems.push_back("transition is a self-loop on mode '" +
                         modes_[t.from.index()].name + "'");
    if (t.max_transition_time <= 0.0)
      problems.push_back("transition has non-positive time limit");
  }
  return problems;
}

}  // namespace mmsyn
