// Text serialization of implementation candidates (.mmsyn-map format).
//
// A synthesis result's task mapping can be saved and later re-evaluated or
// deployed without re-running the GA:
//
//   mapping for-system phone
//   map idle sense CPU
//   map idle act CPU
//   map burst fft1 ACC
//   ...
//
// Entities are referenced by name against the system the mapping belongs
// to; `#` starts a comment. The reader validates completeness (every task
// mapped exactly once) and type support.
#pragma once

#include <iosfwd>
#include <string>

#include "model/io.hpp"
#include "model/mapping.hpp"
#include "model/system.hpp"

namespace mmsyn {

/// Serialises `mapping` for `system` (names resolved through the system).
void write_mapping(std::ostream& os, const System& system,
                   const MultiModeMapping& mapping);

[[nodiscard]] std::string mapping_to_string(const System& system,
                                            const MultiModeMapping& mapping);

/// Parses a mapping against `system`; throws ParseError on malformed
/// input, unknown names, unsupported task/PE pairs, or missing tasks.
[[nodiscard]] MultiModeMapping read_mapping(std::istream& is,
                                            const System& system);

[[nodiscard]] MultiModeMapping mapping_from_string(const std::string& text,
                                                   const System& system);

/// File helpers; parse and I/O failures both raise ParseError with the
/// path attached (ParseError derives std::runtime_error).
void save_mapping(const std::string& path, const System& system,
                  const MultiModeMapping& mapping);
[[nodiscard]] MultiModeMapping load_mapping(const std::string& path,
                                            const System& system);

}  // namespace mmsyn
