// The complete co-synthesis problem instance: specification + architecture
// + technology library, with cross-model validation.
#pragma once

#include <string>
#include <vector>

#include "model/architecture.hpp"
#include "model/omsm.hpp"
#include "model/tech_library.hpp"

namespace mmsyn {

/// A full problem instance as consumed by the synthesis flow.
struct System {
  std::string name;
  Omsm omsm;
  Architecture arch;
  TechLibrary tech;

  /// Cross-model checks on top of Omsm::validate():
  ///  * every task's type is registered and has >= 1 implementation on the
  ///    architecture's PEs;
  ///  * every PE pair that could need to communicate is linked (the
  ///    architecture is connected);
  ///  * hardware PEs have positive area capacity;
  ///  * FPGAs have positive reconfiguration bandwidth.
  /// Returns human-readable problems; empty == valid.
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Total number of tasks over all modes (genome length of the mapping GA).
  [[nodiscard]] std::size_t total_task_count() const;

  /// Total number of edges over all modes.
  [[nodiscard]] std::size_t total_edge_count() const;
};

/// Renders a human-readable summary (mode/task/PE counts, probabilities)
/// used by examples and debugging.
[[nodiscard]] std::string describe(const System& system);

}  // namespace mmsyn
