#include "model/task_graph.hpp"

#include <cassert>
#include <stdexcept>

namespace mmsyn {

TaskId TaskGraph::add_task(std::string name, TaskTypeId type,
                           std::optional<double> deadline) {
  assert(type.valid());
  finalized_ = false;
  tasks_.push_back(Task{std::move(name), type, deadline});
  return TaskId{static_cast<TaskId::value_type>(tasks_.size() - 1)};
}

EdgeId TaskGraph::add_edge(TaskId src, TaskId dst, double data_bits) {
  if (!src.valid() || !dst.valid() || src.index() >= tasks_.size() ||
      dst.index() >= tasks_.size())
    throw std::out_of_range("TaskGraph::add_edge: endpoint does not exist");
  if (src == dst)
    throw std::invalid_argument("TaskGraph::add_edge: self-loop");
  if (data_bits < 0.0)
    throw std::invalid_argument("TaskGraph::add_edge: negative data volume");
  finalized_ = false;
  edges_.push_back(TaskEdge{src, dst, data_bits});
  return EdgeId{static_cast<EdgeId::value_type>(edges_.size() - 1)};
}

bool TaskGraph::finalize() const {
  if (finalized_) return true;
  out_.assign(tasks_.size(), {});
  in_.assign(tasks_.size(), {});
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    const EdgeId id{static_cast<EdgeId::value_type>(e)};
    out_[edges_[e].src.index()].push_back(id);
    in_[edges_[e].dst.index()].push_back(id);
  }
  // Kahn's algorithm; stable order (lowest task id first) for determinism.
  topo_.clear();
  topo_.reserve(tasks_.size());
  std::vector<std::size_t> indegree(tasks_.size());
  for (std::size_t t = 0; t < tasks_.size(); ++t)
    indegree[t] = in_[t].size();
  std::vector<TaskId> frontier;
  for (std::size_t t = 0; t < tasks_.size(); ++t)
    if (indegree[t] == 0)
      frontier.push_back(TaskId{static_cast<TaskId::value_type>(t)});
  std::size_t cursor = 0;
  while (cursor < frontier.size()) {
    const TaskId u = frontier[cursor++];
    topo_.push_back(u);
    for (EdgeId e : out_[u.index()]) {
      const TaskId v = edges_[e.index()].dst;
      if (--indegree[v.index()] == 0) frontier.push_back(v);
    }
  }
  finalized_ = topo_.size() == tasks_.size();
  return finalized_;
}

const std::vector<EdgeId>& TaskGraph::out_edges(TaskId id) const {
  if (!finalized_ && !finalize())
    throw std::logic_error("TaskGraph: cyclic graph");
  return out_[id.index()];
}

const std::vector<EdgeId>& TaskGraph::in_edges(TaskId id) const {
  if (!finalized_ && !finalize())
    throw std::logic_error("TaskGraph: cyclic graph");
  return in_[id.index()];
}

const std::vector<TaskId>& TaskGraph::topological_order() const {
  if (!finalized_ && !finalize())
    throw std::logic_error("TaskGraph: cyclic graph");
  return topo_;
}

}  // namespace mmsyn
