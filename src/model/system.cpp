#include "model/system.hpp"

#include <sstream>

namespace mmsyn {

std::vector<std::string> System::validate() const {
  std::vector<std::string> problems = omsm.validate();

  if (arch.pe_count() == 0) problems.push_back("architecture has no PEs");
  if (!arch.fully_connected())
    problems.push_back("architecture is not fully connected by CLs");

  for (PeId p : arch.pe_ids()) {
    const Pe& pe = arch.pe(p);
    if (is_hardware(pe.kind) && pe.area_capacity <= 0.0)
      problems.push_back("hardware PE '" + pe.name +
                         "' has non-positive area capacity");
    if (pe.kind == PeKind::kFpga && pe.reconfig_bandwidth <= 0.0)
      problems.push_back("FPGA '" + pe.name +
                         "' has non-positive reconfiguration bandwidth");
  }

  for (const Mode& m : omsm.modes()) {
    for (const Task& t : m.graph.tasks()) {
      if (!t.type.valid() || t.type.index() >= tech.type_count()) {
        problems.push_back("task '" + t.name + "' in mode '" + m.name +
                           "' has an unregistered type");
        continue;
      }
      if (tech.candidate_pes(t.type, arch.pe_count()).empty())
        problems.push_back("task type '" + tech.type_name(t.type) +
                           "' has no implementation on any PE");
    }
  }
  return problems;
}

std::size_t System::total_task_count() const {
  std::size_t n = 0;
  for (const Mode& m : omsm.modes()) n += m.graph.task_count();
  return n;
}

std::size_t System::total_edge_count() const {
  std::size_t n = 0;
  for (const Mode& m : omsm.modes()) n += m.graph.edge_count();
  return n;
}

std::string describe(const System& system) {
  std::ostringstream os;
  os << "System '" << system.name << "': " << system.omsm.mode_count()
     << " modes, " << system.total_task_count() << " tasks, "
     << system.total_edge_count() << " edges, " << system.arch.pe_count()
     << " PEs, " << system.arch.cl_count() << " CLs, "
     << system.tech.type_count() << " task types\n";
  for (const Mode& m : system.omsm.modes()) {
    os << "  mode '" << m.name << "': Psi=" << m.probability
       << " period=" << m.period << "s tasks=" << m.graph.task_count()
       << " edges=" << m.graph.edge_count() << "\n";
  }
  for (PeId p : system.arch.pe_ids()) {
    const Pe& pe = system.arch.pe(p);
    os << "  PE '" << pe.name << "' (" << to_string(pe.kind) << ")"
       << (pe.dvs_enabled ? " DVS" : "");
    if (is_hardware(pe.kind)) os << " area=" << pe.area_capacity;
    os << " Pstat=" << pe.static_power << "W\n";
  }
  return os.str();
}

}  // namespace mmsyn
