#include "model/tech_library.hpp"

#include <stdexcept>

namespace mmsyn {

TaskTypeId TechLibrary::add_type(std::string name) {
  names_.push_back(std::move(name));
  impls_.emplace_back();
  return TaskTypeId{static_cast<TaskTypeId::value_type>(names_.size() - 1)};
}

void TechLibrary::set_implementation(TaskTypeId type, PeId pe,
                                     Implementation impl) {
  if (!type.valid() || type.index() >= impls_.size())
    throw std::out_of_range("TechLibrary: unknown task type");
  if (!pe.valid()) throw std::out_of_range("TechLibrary: invalid PE id");
  if (impl.exec_time <= 0.0)
    throw std::invalid_argument("Implementation exec_time must be positive");
  if (impl.dyn_power < 0.0 || impl.area < 0.0)
    throw std::invalid_argument("Implementation power/area must be >= 0");
  auto& row = impls_[type.index()];
  if (row.size() <= pe.index()) row.resize(pe.index() + 1);
  row[pe.index()] = Cell{true, impl};
}

const TechLibrary::Cell* TechLibrary::find(TaskTypeId type, PeId pe) const {
  if (!type.valid() || type.index() >= impls_.size() || !pe.valid())
    return nullptr;
  const auto& row = impls_[type.index()];
  if (pe.index() >= row.size() || !row[pe.index()].present) return nullptr;
  return &row[pe.index()];
}

std::optional<Implementation> TechLibrary::implementation(TaskTypeId type,
                                                          PeId pe) const {
  const Cell* cell = find(type, pe);
  if (!cell) return std::nullopt;
  return cell->impl;
}

const Implementation& TechLibrary::require(TaskTypeId type, PeId pe) const {
  const Cell* cell = find(type, pe);
  if (!cell)
    throw std::logic_error("TechLibrary: type " +
                           (type.valid() ? names_.at(type.index()) : "?") +
                           " has no implementation on requested PE");
  return cell->impl;
}

bool TechLibrary::supports(TaskTypeId type, PeId pe) const {
  return find(type, pe) != nullptr;
}

std::vector<PeId> TechLibrary::candidate_pes(TaskTypeId type,
                                             std::size_t pe_count) const {
  std::vector<PeId> result;
  for (std::size_t p = 0; p < pe_count; ++p) {
    const PeId id{static_cast<PeId::value_type>(p)};
    if (supports(type, id)) result.push_back(id);
  }
  return result;
}

}  // namespace mmsyn
