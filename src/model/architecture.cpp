#include "model/architecture.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mmsyn {

const char* to_string(PeKind k) {
  switch (k) {
    case PeKind::kGpp: return "GPP";
    case PeKind::kAsip: return "ASIP";
    case PeKind::kAsic: return "ASIC";
    case PeKind::kFpga: return "FPGA";
  }
  return "?";
}

PeId Architecture::add_pe(Pe pe) {
  if (pe.voltage_levels.empty())
    throw std::invalid_argument("Pe must have at least one voltage level");
  if (!std::is_sorted(pe.voltage_levels.begin(), pe.voltage_levels.end()))
    throw std::invalid_argument("Pe voltage levels must be ascending");
  // Normalise away duplicate levels: discrete_energy splits workloads
  // across adjacent levels and a zero-width pair would divide by zero.
  pe.voltage_levels.erase(
      std::unique(pe.voltage_levels.begin(), pe.voltage_levels.end()),
      pe.voltage_levels.end());
  if (pe.threshold_voltage >= pe.voltage_levels.front())
    throw std::invalid_argument(
        "Pe threshold voltage must be below the lowest supply level");
  pes_.push_back(std::move(pe));
  return PeId{static_cast<PeId::value_type>(pes_.size() - 1)};
}

ClId Architecture::add_cl(Cl cl) {
  if (cl.bandwidth <= 0.0)
    throw std::invalid_argument("Cl bandwidth must be positive");
  for (PeId p : cl.attached)
    if (!p.valid() || p.index() >= pes_.size())
      throw std::out_of_range("Cl attached to unknown PE");
  cls_.push_back(std::move(cl));
  return ClId{static_cast<ClId::value_type>(cls_.size() - 1)};
}

std::vector<ClId> Architecture::links_between(PeId a, PeId b) const {
  std::vector<ClId> result;
  if (a == b) return result;
  for (std::size_t c = 0; c < cls_.size(); ++c) {
    const auto& att = cls_[c].attached;
    const bool has_a = std::find(att.begin(), att.end(), a) != att.end();
    const bool has_b = std::find(att.begin(), att.end(), b) != att.end();
    if (has_a && has_b)
      result.push_back(ClId{static_cast<ClId::value_type>(c)});
  }
  return result;
}

bool Architecture::fully_connected() const {
  for (std::size_t a = 0; a < pes_.size(); ++a)
    for (std::size_t b = a + 1; b < pes_.size(); ++b)
      if (links_between(PeId{static_cast<PeId::value_type>(a)},
                        PeId{static_cast<PeId::value_type>(b)})
              .empty())
        return false;
  return true;
}

std::vector<PeId> Architecture::pe_ids() const {
  std::vector<PeId> ids;
  ids.reserve(pes_.size());
  for (std::size_t i = 0; i < pes_.size(); ++i)
    ids.push_back(PeId{static_cast<PeId::value_type>(i)});
  return ids;
}

std::vector<ClId> Architecture::cl_ids() const {
  std::vector<ClId> ids;
  ids.reserve(cls_.size());
  for (std::size_t i = 0; i < cls_.size(); ++i)
    ids.push_back(ClId{static_cast<ClId::value_type>(i)});
  return ids;
}

}  // namespace mmsyn
