// Hardware core allocation (Fig. 4, line 05 of the paper).
//
// Tasks mapped onto ASICs/FPGAs execute on *cores*: one core implements one
// task type and serves one task at a time. Multiple cores of the same type
// may be allocated (area permitting) so parallel tasks of that type run
// concurrently. ASIC core sets are static silicon — identical in every
// mode; FPGA core sets may differ per mode, at a reconfiguration-time cost
// on mode transitions. This header holds the *result* data structure; the
// allocation heuristic lives in core/.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.hpp"

namespace mmsyn {

class TechLibrary;

/// Multiset of cores loaded on one hardware PE (in one mode).
class CoreSet {
public:
  /// Number of core instances of `type` (0 when none).
  [[nodiscard]] int count_of(TaskTypeId type) const;

  /// Sets the instance count of `type`; count 0 removes the entry.
  void set_count(TaskTypeId type, int count);

  /// Increments the instance count of `type` by one.
  void add_core(TaskTypeId type);

  /// All (type, count) entries, ascending by type id.
  [[nodiscard]] const std::vector<std::pair<TaskTypeId, int>>& entries()
      const {
    return entries_;
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Total area of all instances, using the type areas on PE `pe`.
  [[nodiscard]] double area(const TechLibrary& tech, PeId pe) const;

  /// Area of cores present in this set but not (or with fewer instances)
  /// in `previous` — the silicon that must be (re)configured when
  /// switching from `previous` to this set.
  [[nodiscard]] double delta_area_from(const CoreSet& previous,
                                       const TechLibrary& tech,
                                       PeId pe) const;

  /// Set-union (per-type max of instance counts).
  void merge_max(const CoreSet& other);

  friend bool operator==(const CoreSet&, const CoreSet&) = default;

private:
  std::vector<std::pair<TaskTypeId, int>> entries_;  // sorted by type id
};

/// Core allocation for every (mode, hardware PE) pair. Software PEs have
/// empty sets. The builder guarantees ASIC sets are mode-invariant.
struct CoreAllocation {
  /// per_mode[mode][pe] = loaded core set of PE `pe` while mode `mode` runs.
  std::vector<std::vector<CoreSet>> per_mode;

  [[nodiscard]] const CoreSet& cores(ModeId mode, PeId pe) const {
    return per_mode[mode.index()][pe.index()];
  }
  [[nodiscard]] CoreSet& cores(ModeId mode, PeId pe) {
    return per_mode[mode.index()][pe.index()];
  }

  /// Area a PE must provide: for mode-invariant sets this equals any
  /// mode's area; for FPGAs it is the maximum over modes (each mode's
  /// configuration must fit on its own).
  [[nodiscard]] double required_area(PeId pe, const TechLibrary& tech) const;
};

}  // namespace mmsyn
