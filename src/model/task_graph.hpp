// Task-graph model for one operational mode (Section 2.1.2 of the paper).
//
// A mode's functionality is a directed acyclic graph G_S(T, C): nodes are
// coarse-grained, non-preemptible tasks (Huffman decoder, FFT, IDCT, ...)
// tagged with a *task type*; edges are data dependencies carrying a data
// volume that determines communication time/energy when the endpoints map
// to different processing elements.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"

namespace mmsyn {

/// One task node. Units: seconds for deadlines, bits for data volumes.
struct Task {
  std::string name;
  TaskTypeId type;
  /// Optional individual deadline θ_τ relative to the mode period start;
  /// the effective limit is min(deadline, mode period φ).
  std::optional<double> deadline;
};

/// One precedence/data edge τ_src → τ_dst.
struct TaskEdge {
  TaskId src;
  TaskId dst;
  /// Transferred data volume in bits (drives CL time and energy).
  double data_bits = 0.0;
};

/// Immutable-after-build DAG of tasks. Construction is additive; structural
/// queries (adjacency, topological order) are validated/derived lazily via
/// `finalize()`, which must be called (or is called implicitly by accessors
/// that need it) before use.
class TaskGraph {
public:
  /// Adds a task and returns its id (dense, starting at 0).
  TaskId add_task(std::string name, TaskTypeId type,
                  std::optional<double> deadline = std::nullopt);

  /// Adds a dependency edge; endpoints must already exist and be distinct.
  EdgeId add_edge(TaskId src, TaskId dst, double data_bits);

  /// Sets/clears a task's individual deadline (structure is unaffected).
  void set_deadline(TaskId id, std::optional<double> deadline) {
    tasks_[id.index()].deadline = deadline;
  }

  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] const Task& task(TaskId id) const { return tasks_[id.index()]; }
  [[nodiscard]] const TaskEdge& edge(EdgeId id) const {
    return edges_[id.index()];
  }
  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }
  [[nodiscard]] const std::vector<TaskEdge>& edges() const { return edges_; }

  /// Outgoing/incoming edge ids of a task.
  [[nodiscard]] const std::vector<EdgeId>& out_edges(TaskId id) const;
  [[nodiscard]] const std::vector<EdgeId>& in_edges(TaskId id) const;

  /// Tasks in a topological order (stable across runs).
  /// Precondition: the graph is acyclic (checked by finalize()).
  [[nodiscard]] const std::vector<TaskId>& topological_order() const;

  /// Validates acyclicity and builds adjacency caches. Returns false iff a
  /// cycle exists. Idempotent; adding tasks/edges resets it.
  bool finalize() const;

  /// True when finalize() has run successfully.
  [[nodiscard]] bool finalized() const { return finalized_; }

private:
  std::vector<Task> tasks_;
  std::vector<TaskEdge> edges_;

  // Derived, rebuilt by finalize().
  mutable std::vector<std::vector<EdgeId>> out_;
  mutable std::vector<std::vector<EdgeId>> in_;
  mutable std::vector<TaskId> topo_;
  mutable bool finalized_ = false;
};

}  // namespace mmsyn
