#include "model/io.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "common/failpoint.hpp"

namespace mmsyn {
namespace {

// Failpoint on system-file reads, shared by name with the checkpoint
// reader in core/run_control.cpp: "io.read" covers every input-file read
// in the process. `fail` is retried in place; `corrupt` is a no-op here
// (a flipped byte in a text system file is just a parse error).
failpoint::Site fp_io_read{"io.read"};

// ---------------------------------------------------------------- writer

/// Numbers are written with enough digits to round-trip exactly.
std::string fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

const char* kind_token(PeKind k) { return to_string(k); }

}  // namespace

void write_system(std::ostream& os, const System& system) {
  os << "# mmsyn system file\n";
  os << "system " << system.name << "\n\n";

  for (PeId p : system.arch.pe_ids()) {
    const Pe& pe = system.arch.pe(p);
    os << "pe " << pe.name << " kind=" << kind_token(pe.kind);
    if (pe.dvs_enabled) os << " dvs=1";
    os << " levels=";
    for (std::size_t i = 0; i < pe.voltage_levels.size(); ++i)
      os << (i ? "," : "") << fmt(pe.voltage_levels[i]);
    os << " vt=" << fmt(pe.threshold_voltage);
    if (pe.area_capacity > 0.0) os << " area=" << fmt(pe.area_capacity);
    if (pe.static_power > 0.0) os << " static=" << fmt(pe.static_power);
    if (pe.reconfig_bandwidth > 0.0)
      os << " reconfig_bw=" << fmt(pe.reconfig_bandwidth);
    os << "\n";
  }
  for (ClId c : system.arch.cl_ids()) {
    const Cl& cl = system.arch.cl(c);
    os << "cl " << cl.name << " bandwidth=" << fmt(cl.bandwidth);
    if (cl.startup_latency > 0.0) os << " startup=" << fmt(cl.startup_latency);
    if (cl.transfer_power > 0.0) os << " power=" << fmt(cl.transfer_power);
    if (cl.static_power > 0.0) os << " static=" << fmt(cl.static_power);
    os << " attached=";
    for (std::size_t i = 0; i < cl.attached.size(); ++i)
      os << (i ? "," : "") << system.arch.pe(cl.attached[i]).name;
    os << "\n";
  }
  os << "\n";

  for (std::size_t t = 0; t < system.tech.type_count(); ++t) {
    const TaskTypeId type{static_cast<TaskTypeId::value_type>(t)};
    os << "type " << system.tech.type_name(type) << "\n";
    for (PeId p : system.arch.pe_ids()) {
      const auto impl = system.tech.implementation(type, p);
      if (!impl) continue;
      os << "impl " << system.tech.type_name(type) << " "
         << system.arch.pe(p).name << " time=" << fmt(impl->exec_time)
         << " power=" << fmt(impl->dyn_power);
      if (impl->area > 0.0) os << " area=" << fmt(impl->area);
      os << "\n";
    }
  }
  os << "\n";

  for (const Mode& mode : system.omsm.modes()) {
    os << "mode " << mode.name << " psi=" << fmt(mode.probability)
       << " period=" << fmt(mode.period) << "\n";
    for (const Task& task : mode.graph.tasks()) {
      os << "task " << task.name << " "
         << system.tech.type_name(task.type);
      if (task.deadline) os << " deadline=" << fmt(*task.deadline);
      os << "\n";
    }
    for (const TaskEdge& edge : mode.graph.edges()) {
      os << "edge " << mode.graph.task(edge.src).name << " "
         << mode.graph.task(edge.dst).name << " bits=" << fmt(edge.data_bits)
         << "\n";
    }
    os << "\n";
  }

  for (const ModeTransition& tr : system.omsm.transitions()) {
    os << "transition " << system.omsm.mode(tr.from).name << " "
       << system.omsm.mode(tr.to).name;
    if (std::isfinite(tr.max_transition_time))
      os << " tmax=" << fmt(tr.max_transition_time);
    os << "\n";
  }
}

std::string system_to_string(const System& system) {
  std::ostringstream os;
  write_system(os, system);
  return os.str();
}

// ---------------------------------------------------------------- parser

namespace {

/// Tokenised line with key=value option access.
class Line {
public:
  Line(int number, const std::string& text) : number_(number) {
    std::istringstream is(text);
    std::string token;
    while (is >> token) {
      if (token[0] == '#') break;
      if (auto eq = token.find('='); eq != std::string::npos)
        options_[token.substr(0, eq)] = token.substr(eq + 1);
      else
        positional_.push_back(token);
    }
  }

  [[nodiscard]] bool empty() const {
    return positional_.empty() && options_.empty();
  }
  [[nodiscard]] int number() const { return number_; }
  [[nodiscard]] const std::string& keyword() const {
    if (positional_.empty()) throw ParseError(number_, "missing keyword");
    return positional_[0];
  }
  [[nodiscard]] const std::string& arg(std::size_t i,
                                       const char* what) const {
    if (i >= positional_.size())
      throw ParseError(number_, std::string("missing argument: ") + what);
    return positional_[i];
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return options_.count(key) > 0;
  }
  [[nodiscard]] std::string str(const std::string& key,
                                const std::string& fallback = "") const {
    auto it = options_.find(key);
    return it == options_.end() ? fallback : it->second;
  }
  [[nodiscard]] double num(const std::string& key, double fallback) const {
    auto it = options_.find(key);
    if (it == options_.end()) return fallback;
    return parse_double(it->second);
  }
  [[nodiscard]] double require_num(const std::string& key) const {
    auto it = options_.find(key);
    if (it == options_.end())
      throw ParseError(number_, "missing option '" + key + "'");
    return parse_double(it->second);
  }
  [[nodiscard]] std::vector<std::string> list(const std::string& key) const {
    std::vector<std::string> out;
    auto it = options_.find(key);
    if (it == options_.end()) return out;
    std::istringstream is(it->second);
    std::string item;
    while (std::getline(is, item, ','))
      if (!item.empty()) out.push_back(item);
    return out;
  }
  [[nodiscard]] std::vector<double> num_list(const std::string& key) const {
    std::vector<double> out;
    for (const std::string& item : list(key)) out.push_back(parse_double(item));
    return out;
  }

private:
  [[nodiscard]] double parse_double(const std::string& text) const {
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(text, &consumed);
    } catch (const std::exception&) {
      throw ParseError(number_, "not a number: '" + text + "'");
    }
    if (consumed != text.size())
      throw ParseError(number_, "trailing junk in number: '" + text + "'");
    return value;
  }

  int number_;
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;
};

PeKind parse_kind(const Line& line, const std::string& token) {
  if (token == "GPP") return PeKind::kGpp;
  if (token == "ASIP") return PeKind::kAsip;
  if (token == "ASIC") return PeKind::kAsic;
  if (token == "FPGA") return PeKind::kFpga;
  throw ParseError(line.number(), "unknown PE kind '" + token + "'");
}

}  // namespace

System read_system(std::istream& is) {
  System system;
  std::map<std::string, PeId> pes;
  std::map<std::string, TaskTypeId> types;
  std::map<std::string, ModeId> modes;
  // Task names are scoped to their mode.
  std::map<std::string, TaskId> tasks_in_mode;
  ModeId current_mode;  // invalid until the first 'mode' line

  auto lookup = [](const auto& map, const std::string& name,
                   const Line& line, const char* what) {
    auto it = map.find(name);
    if (it == map.end())
      throw ParseError(line.number(),
                       std::string("unknown ") + what + " '" + name + "'");
    return it->second;
  };

  std::string text;
  int number = 0;
  while (std::getline(is, text)) {
    const Line line(++number, text);
    if (line.empty()) continue;
    const std::string& kw = line.keyword();

    if (kw == "system") {
      system.name = line.arg(1, "system name");
    } else if (kw == "pe") {
      Pe pe;
      pe.name = line.arg(1, "pe name");
      if (pes.count(pe.name))
        throw ParseError(line.number(), "duplicate PE '" + pe.name + "'");
      pe.kind = parse_kind(line, line.str("kind", "GPP"));
      pe.dvs_enabled = line.num("dvs", 0.0) != 0.0;
      if (line.has("levels")) pe.voltage_levels = line.num_list("levels");
      pe.threshold_voltage = line.num("vt", 0.8);
      pe.area_capacity = line.num("area", 0.0);
      pe.static_power = line.num("static", 0.0);
      pe.reconfig_bandwidth = line.num("reconfig_bw", 0.0);
      const std::string pe_name = pe.name;
      try {
        pes[pe_name] = system.arch.add_pe(std::move(pe));
      } catch (const std::invalid_argument& e) {
        throw ParseError(line.number(), e.what());
      }
    } else if (kw == "cl") {
      Cl cl;
      cl.name = line.arg(1, "cl name");
      cl.bandwidth = line.require_num("bandwidth");
      cl.startup_latency = line.num("startup", 0.0);
      cl.transfer_power = line.num("power", 0.0);
      cl.static_power = line.num("static", 0.0);
      for (const std::string& name : line.list("attached"))
        cl.attached.push_back(lookup(pes, name, line, "PE"));
      try {
        system.arch.add_cl(std::move(cl));
      } catch (const std::exception& e) {
        throw ParseError(line.number(), e.what());
      }
    } else if (kw == "type") {
      const std::string& name = line.arg(1, "type name");
      if (types.count(name))
        throw ParseError(line.number(), "duplicate type '" + name + "'");
      types[name] = system.tech.add_type(name);
    } else if (kw == "impl") {
      const TaskTypeId type =
          lookup(types, line.arg(1, "type name"), line, "type");
      const PeId pe = lookup(pes, line.arg(2, "pe name"), line, "PE");
      Implementation impl;
      impl.exec_time = line.require_num("time");
      impl.dyn_power = line.require_num("power");
      impl.area = line.num("area", 0.0);
      try {
        system.tech.set_implementation(type, pe, impl);
      } catch (const std::exception& e) {
        throw ParseError(line.number(), e.what());
      }
    } else if (kw == "mode") {
      Mode mode;
      mode.name = line.arg(1, "mode name");
      if (modes.count(mode.name))
        throw ParseError(line.number(), "duplicate mode '" + mode.name + "'");
      mode.probability = line.require_num("psi");
      mode.period = line.require_num("period");
      const ModeId id = system.omsm.add_mode(std::move(mode));
      modes[system.omsm.mode(id).name] = id;
      current_mode = id;
      tasks_in_mode.clear();
    } else if (kw == "task") {
      if (!current_mode.valid())
        throw ParseError(line.number(), "'task' before any 'mode'");
      const std::string& name = line.arg(1, "task name");
      if (tasks_in_mode.count(name))
        throw ParseError(line.number(),
                         "duplicate task '" + name + "' in mode");
      const TaskTypeId type =
          lookup(types, line.arg(2, "type name"), line, "type");
      std::optional<double> deadline;
      if (line.has("deadline")) deadline = line.require_num("deadline");
      tasks_in_mode[name] =
          system.omsm.mode(current_mode).graph.add_task(name, type, deadline);
    } else if (kw == "edge") {
      if (!current_mode.valid())
        throw ParseError(line.number(), "'edge' before any 'mode'");
      const TaskId src =
          lookup(tasks_in_mode, line.arg(1, "source task"), line, "task");
      const TaskId dst =
          lookup(tasks_in_mode, line.arg(2, "target task"), line, "task");
      try {
        system.omsm.mode(current_mode)
            .graph.add_edge(src, dst, line.num("bits", 0.0));
      } catch (const std::exception& e) {
        throw ParseError(line.number(), e.what());
      }
    } else if (kw == "transition") {
      const ModeId from =
          lookup(modes, line.arg(1, "source mode"), line, "mode");
      const ModeId to = lookup(modes, line.arg(2, "target mode"), line, "mode");
      ModeTransition tr{from, to};
      if (line.has("tmax")) tr.max_transition_time = line.require_num("tmax");
      system.omsm.add_transition(tr);
    } else {
      throw ParseError(line.number(), "unknown keyword '" + kw + "'");
    }
  }
  return system;
}

System system_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_system(is);
}

void save_system(const std::string& path, const System& system) {
  std::ofstream os(path);
  if (!os) throw ParseError(path, 0, "cannot open for writing");
  write_system(os, system);
  os.flush();
  if (!os) throw ParseError(path, 0, "write failed");
}

System load_system(const std::string& path) {
  return failpoint::retry_transient("load_system", [&] {
    (void)failpoint::inject(fp_io_read);
    std::ifstream is(path);
    if (!is) throw ParseError(path, 0, "cannot open for reading");
    try {
      return read_system(is);
    } catch (const ParseError& e) {
      // Re-raise with the path attached so diagnostics are actionable.
      throw ParseError(path, e.line(), e.message());
    }
  });
}

}  // namespace mmsyn
