#include "model/core_allocation.hpp"

#include <algorithm>
#include <cassert>

#include "model/tech_library.hpp"

namespace mmsyn {

int CoreSet::count_of(TaskTypeId type) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), type,
      [](const auto& entry, TaskTypeId t) { return entry.first < t; });
  if (it == entries_.end() || it->first != type) return 0;
  return it->second;
}

void CoreSet::set_count(TaskTypeId type, int count) {
  assert(count >= 0);
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), type,
      [](const auto& entry, TaskTypeId t) { return entry.first < t; });
  if (it != entries_.end() && it->first == type) {
    if (count == 0) entries_.erase(it);
    else it->second = count;
  } else if (count > 0) {
    entries_.insert(it, {type, count});
  }
}

void CoreSet::add_core(TaskTypeId type) {
  set_count(type, count_of(type) + 1);
}

double CoreSet::area(const TechLibrary& tech, PeId pe) const {
  double total = 0.0;
  for (const auto& [type, count] : entries_)
    total += tech.require(type, pe).area * count;
  return total;
}

double CoreSet::delta_area_from(const CoreSet& previous,
                                const TechLibrary& tech, PeId pe) const {
  double total = 0.0;
  for (const auto& [type, count] : entries_) {
    const int extra = count - previous.count_of(type);
    if (extra > 0) total += tech.require(type, pe).area * extra;
  }
  return total;
}

void CoreSet::merge_max(const CoreSet& other) {
  for (const auto& [type, count] : other.entries_)
    set_count(type, std::max(count_of(type), count));
}

double CoreAllocation::required_area(PeId pe, const TechLibrary& tech) const {
  double worst = 0.0;
  for (const auto& mode_sets : per_mode)
    worst = std::max(worst, mode_sets[pe.index()].area(tech, pe));
  return worst;
}

}  // namespace mmsyn
