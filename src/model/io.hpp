// Text serialization of systems (.mmsyn format).
//
// A line-oriented, TGFF-inspired format so problem instances can be
// versioned, shared, and fed to the synthesis tools without recompiling:
//
//   system phone
//   pe CPU kind=GPP dvs=1 levels=1.2,2.0,3.3 vt=0.8 static=4e-4
//   pe ACC kind=ASIC area=600 static=2e-4
//   cl BUS bandwidth=1e7 startup=5e-5 power=0.05 static=1e-4 attached=CPU,ACC
//   type FFT
//   impl FFT CPU time=6e-3 power=0.25
//   impl FFT ACC time=2e-4 power=6e-3 area=350
//   mode idle psi=0.9 period=0.04
//   task sense FFT
//   task act FFT deadline=0.03
//   edge sense act bits=2000
//   mode burst psi=0.1 period=0.025
//   ...
//   transition idle burst tmax=0.02
//
// `task` and `edge` lines attach to the most recent `mode`. Entities are
// referenced by name; `#` starts a comment. Names must be whitespace-free.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "model/system.hpp"

namespace mmsyn {

/// Parse / file-I/O failure with a 1-based line number, the originating
/// file path (empty when parsing a stream or string), and an explanation.
/// Line 0 means the problem is with the file itself (missing, unreadable,
/// write failure) rather than any particular line.
class ParseError : public std::runtime_error {
public:
  ParseError(int line, const std::string& message)
      : ParseError(std::string(), line, message) {}
  ParseError(std::string file, int line, std::string message)
      : std::runtime_error(format(file, line, message)),
        file_(std::move(file)),
        line_(line),
        message_(std::move(message)) {}

  [[nodiscard]] int line() const { return line_; }
  /// Path of the file being read/written; empty for stream/string input.
  [[nodiscard]] const std::string& file() const { return file_; }
  /// The explanation without the location prefix.
  [[nodiscard]] const std::string& message() const { return message_; }

private:
  [[nodiscard]] static std::string format(const std::string& file, int line,
                                          const std::string& message) {
    if (file.empty())
      return "line " + std::to_string(line) + ": " + message;
    if (line <= 0) return file + ": " + message;
    return file + ":" + std::to_string(line) + ": " + message;
  }

  std::string file_;
  int line_;
  std::string message_;
};

/// Serialises `system` in the .mmsyn text format. Infinite transition
/// limits and unset deadlines are omitted; round-trips through
/// read_system() reproduce an equivalent system.
void write_system(std::ostream& os, const System& system);

/// Convenience: render to a string.
[[nodiscard]] std::string system_to_string(const System& system);

/// Parses a system; throws ParseError on malformed input. The result is
/// *not* validated beyond structural parsing — call System::validate().
[[nodiscard]] System read_system(std::istream& is);

/// Convenience: parse from a string.
[[nodiscard]] System system_from_string(const std::string& text);

/// File helpers. Both parse failures *and* I/O failures (missing file,
/// permission denied, write error) surface as ParseError carrying the
/// path, so callers get one structured diagnostic channel.
void save_system(const std::string& path, const System& system);
[[nodiscard]] System load_system(const std::string& path);

}  // namespace mmsyn
