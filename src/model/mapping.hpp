// Implementation-candidate representation: the multi-mode task mapping
// M_τ^O of Section 2.2 (one PE assignment per task per mode), decoded from
// the GA's mapping string.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.hpp"

namespace mmsyn {

class Omsm;
class Architecture;
class TechLibrary;

/// Per-mode task→PE assignment. Index = task id within that mode's graph.
struct ModeMapping {
  std::vector<PeId> task_to_pe;
};

/// Task mapping for every mode of the OMSM. Communication mapping and the
/// schedules are derived from this by the inner loop (sched/, dvs/).
struct MultiModeMapping {
  std::vector<ModeMapping> modes;

  [[nodiscard]] PeId pe_of(ModeId mode, TaskId task) const {
    return modes[mode.index()].task_to_pe[task.index()];
  }

  /// Total number of genes (== total task count across modes).
  [[nodiscard]] std::size_t total_size() const {
    std::size_t n = 0;
    for (const ModeMapping& m : modes) n += m.task_to_pe.size();
    return n;
  }
};

/// Checks that a mapping is structurally consistent with the system: one
/// assignment per task, valid PE ids, and every task's type supported on
/// its PE. (Area/timing feasibility is the evaluator's job, not this one.)
[[nodiscard]] bool mapping_is_well_formed(const MultiModeMapping& mapping,
                                          const Omsm& omsm,
                                          const Architecture& arch,
                                          const TechLibrary& tech);

}  // namespace mmsyn
