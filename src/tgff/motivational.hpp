// The paper's two motivational examples (Section 2.3, Figs. 2 and 3),
// reconstructed exactly from the published type table.
#pragma once

#include "model/mapping.hpp"
#include "model/system.hpp"

namespace mmsyn {

/// Example 1 (Fig. 2): two modes of three tasks each (types A,B,C and
/// D,E,F), Ψ = 0.1 / 0.9, a GPP (PE0) plus a 600-cell ASIC (PE1) joined by
/// one bus. Execution times, energies and areas are the paper's table
/// verbatim (ms / mW·s / cells, stored in SI units); zero-volume edges and
/// a 1 s period make timing and communication neutral, and static powers
/// are zero — so average power in mW equals the paper's per-activation
/// energy in mW·s.
[[nodiscard]] System make_motivational_example1();

/// The Fig. 2b mapping (optimal when probabilities are neglected):
/// τ3 (type C) and τ5 (type E) in hardware — 26.7158 mW·s.
[[nodiscard]] MultiModeMapping example1_mapping_without_probabilities();

/// The Fig. 2c mapping (optimal with probabilities): τ5 (E) and τ6 (F) in
/// hardware — 15.7423 mW·s, 41% lower.
[[nodiscard]] MultiModeMapping example1_mapping_with_probabilities();

/// Example 2 (Fig. 3): two modes sharing task type A (τ1 in O1, τ4 in O2).
/// Mapping both onto the ASIC's A-core shares the resource but keeps the
/// ASIC (and bus) powered in both modes; implementing τ4 in software
/// instead allows PE1 and CL0 to be shut down during O2. Static powers
/// dominate dynamic energy here, so the multiple-implementation mapping
/// wins.
[[nodiscard]] System make_motivational_example2();

/// Fig. 3b mapping: τ1 and τ4 share the hardware A-core.
[[nodiscard]] MultiModeMapping example2_mapping_shared();

/// Fig. 3c mapping: τ4 duplicated in software; PE1/CL0 shut down in O2.
[[nodiscard]] MultiModeMapping example2_mapping_multiple_impl();

}  // namespace mmsyn
