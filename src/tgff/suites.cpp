#include "tgff/suites.hpp"

#include <stdexcept>
#include <string>

#include "tgff/generator.hpp"

namespace mmsyn {
namespace {

struct MulSpec {
  int modes;       // published mode count
  int tasks_min;   // tasks per mode
  int tasks_max;
  int pes;
  int cls;
  std::uint64_t seed;
};

// Mode counts follow Table 1/2 of the paper; sizes vary across the
// published 8–32 range so the suite spans small and large instances.
// Seeds were calibrated (bench/seed_scan) so the per-instance
// probability-awareness head-room roughly tracks the paper's Table 1
// reductions — small for mul1/mul3, large for mul7/mul9/mul11.
constexpr MulSpec kSpecs[12] = {
    /*mul1*/ {4, 12, 24, 3, 2, 0xDA7E2003'0002ull},
    /*mul2*/ {4, 8, 16, 2, 1, 0xDA7E2003'000Aull},
    /*mul3*/ {5, 16, 32, 4, 3, 0xDA7E2003'0006ull},
    /*mul4*/ {5, 12, 24, 3, 2, 0xDA7E2003'000Cull},
    /*mul5*/ {3, 12, 28, 3, 1, 0xDA7E2003'0009ull},
    /*mul6*/ {4, 8, 20, 2, 1, 0xDA7E2003'0008ull},
    /*mul7*/ {4, 10, 22, 3, 2, 0xDA7E2003'0007ull},
    /*mul8*/ {4, 20, 32, 4, 2, 0xDA7E2003'000Aull},
    /*mul9*/ {4, 8, 12, 2, 1, 0xDA7E2003'0013ull},
    /*mul10*/ {5, 18, 32, 4, 3, 0xDA7E2003'0012ull},
    /*mul11*/ {3, 8, 16, 2, 1, 0xDA7E2003'0014ull},
    /*mul12*/ {4, 16, 28, 3, 2, 0xDA7E2003'0011ull},
};

}  // namespace

int mul_count() { return 12; }

int mul_mode_count(int index) {
  if (index < 1 || index > mul_count())
    throw std::out_of_range("mul index must be 1..12");
  return kSpecs[index - 1].modes;
}

System make_mul(int index) {
  if (index < 1 || index > mul_count())
    throw std::out_of_range("mul index must be 1..12");
  const MulSpec& spec = kSpecs[index - 1];
  GeneratorConfig cfg;
  cfg.seed = spec.seed;
  cfg.mode_count_min = cfg.mode_count_max = spec.modes;
  cfg.tasks_per_mode_min = spec.tasks_min;
  cfg.tasks_per_mode_max = spec.tasks_max;
  cfg.pe_count_min = cfg.pe_count_max = spec.pes;
  cfg.cl_count_min = cfg.cl_count_max = spec.cls;
  return generate_system(cfg, "mul" + std::to_string(index));
}

}  // namespace mmsyn
