#include "tgff/motivational.hpp"

#include <array>

namespace mmsyn {
namespace {

/// Chain edges t0 -> t1 -> ... with a common data volume.
void chain(TaskGraph& graph, const std::array<TaskId, 3>& tasks,
           double bits) {
  graph.add_edge(tasks[0], tasks[1], bits);
  graph.add_edge(tasks[1], tasks[2], bits);
}

MultiModeMapping mapping_from(
    const std::array<std::array<int, 3>, 2>& pe_per_task) {
  MultiModeMapping mapping;
  mapping.modes.resize(2);
  for (std::size_t m = 0; m < 2; ++m)
    for (int pe : pe_per_task[m])
      mapping.modes[m].task_to_pe.push_back(
          PeId{static_cast<PeId::value_type>(pe)});
  return mapping;
}

}  // namespace

System make_motivational_example1() {
  System system;
  system.name = "motivational-example1";

  Pe gpp;
  gpp.name = "PE0";
  gpp.kind = PeKind::kGpp;
  const PeId pe0 = system.arch.add_pe(gpp);
  Pe asic;
  asic.name = "PE1";
  asic.kind = PeKind::kAsic;
  asic.area_capacity = 600.0;
  const PeId pe1 = system.arch.add_pe(asic);
  Cl bus;
  bus.name = "CL0";
  bus.bandwidth = 1e6;
  bus.attached = {pe0, pe1};
  system.arch.add_cl(bus);

  // Published type table (Section 2.3): exec time [ms], dynamic energy
  // [mW·s] on each PE, HW core area [cells].
  struct Row {
    const char* name;
    double sw_ms, sw_mws;
    double hw_ms, hw_mws;
    double area;
  };
  constexpr Row kRows[6] = {
      {"A", 20, 10, 2.0, 0.010, 240}, {"B", 28, 14, 2.2, 0.012, 300},
      {"C", 32, 16, 1.6, 0.023, 275}, {"D", 26, 13, 3.1, 0.047, 245},
      {"E", 30, 15, 1.8, 0.015, 210}, {"F", 24, 14, 2.2, 0.032, 280},
  };
  std::array<TaskTypeId, 6> types;
  for (std::size_t i = 0; i < 6; ++i) {
    const Row& r = kRows[i];
    types[i] = system.tech.add_type(r.name);
    // ms -> s, mW·s -> J; power = energy / time.
    const double sw_t = r.sw_ms * 1e-3, sw_e = r.sw_mws * 1e-3;
    const double hw_t = r.hw_ms * 1e-3, hw_e = r.hw_mws * 1e-3;
    system.tech.set_implementation(types[i], pe0, {sw_t, sw_e / sw_t, 0.0});
    system.tech.set_implementation(types[i], pe1, {hw_t, hw_e / hw_t, r.area});
  }

  // Mode O1 (Ψ=0.1): τ1(A) → τ2(B) → τ3(C); zero-volume edges keep
  // communication neutral as in the paper's example.
  Mode o1;
  o1.name = "O1";
  o1.probability = 0.1;
  o1.period = 1.0;
  chain(o1.graph,
        {o1.graph.add_task("tau1", types[0]),
         o1.graph.add_task("tau2", types[1]),
         o1.graph.add_task("tau3", types[2])},
        0.0);
  const ModeId m1 = system.omsm.add_mode(std::move(o1));

  Mode o2;
  o2.name = "O2";
  o2.probability = 0.9;
  o2.period = 1.0;
  chain(o2.graph,
        {o2.graph.add_task("tau4", types[3]),
         o2.graph.add_task("tau5", types[4]),
         o2.graph.add_task("tau6", types[5])},
        0.0);
  const ModeId m2 = system.omsm.add_mode(std::move(o2));

  system.omsm.add_transition({m1, m2});
  system.omsm.add_transition({m2, m1});
  return system;
}

MultiModeMapping example1_mapping_without_probabilities() {
  // Fig. 2b: τ3 (C) and τ5 (E) in hardware.
  return mapping_from({{{0, 0, 1}, {0, 1, 0}}});
}

MultiModeMapping example1_mapping_with_probabilities() {
  // Fig. 2c: τ5 (E) and τ6 (F) in hardware.
  return mapping_from({{{0, 0, 0}, {0, 1, 1}}});
}

System make_motivational_example2() {
  System system;
  system.name = "motivational-example2";

  Pe gpp;
  gpp.name = "PE0";
  gpp.kind = PeKind::kGpp;
  gpp.static_power = 5e-3;
  const PeId pe0 = system.arch.add_pe(gpp);
  Pe asic;
  asic.name = "PE1";
  asic.kind = PeKind::kAsic;
  asic.area_capacity = 600.0;
  asic.static_power = 10e-3;
  const PeId pe1 = system.arch.add_pe(asic);
  Cl bus;
  bus.name = "CL0";
  bus.bandwidth = 1e6;
  bus.transfer_power = 20e-3;
  bus.static_power = 5e-3;
  bus.attached = {pe0, pe1};
  system.arch.add_cl(bus);

  // Type A is hardware-capable (and shared across both modes); the others
  // are software-only. A is heavy, so O1 (1 s period) needs its hardware
  // core; O2 repeats only every 10 s, so duplicating τ4 in software costs
  // less than keeping the ASIC and bus powered during O2.
  const TaskTypeId a = system.tech.add_type("A");
  system.tech.set_implementation(a, pe0, {60e-3, 0.30, 0.0});
  system.tech.set_implementation(a, pe1, {1e-3, 1.8e-3, 240.0});
  const TaskTypeId b = system.tech.add_type("B");
  system.tech.set_implementation(b, pe0, {4e-3, 0.050, 0.0});
  const TaskTypeId c = system.tech.add_type("C");
  system.tech.set_implementation(c, pe0, {3e-3, 0.060, 0.0});
  const TaskTypeId e = system.tech.add_type("E");
  system.tech.set_implementation(e, pe0, {5e-3, 0.050, 0.0});
  const TaskTypeId f = system.tech.add_type("F");
  system.tech.set_implementation(f, pe0, {4e-3, 0.055, 0.0});

  Mode o1;
  o1.name = "O1";
  o1.probability = 0.3;
  o1.period = 1.0;
  chain(o1.graph,
        {o1.graph.add_task("tau1", a), o1.graph.add_task("tau2", b),
         o1.graph.add_task("tau3", c)},
        1000.0);
  const ModeId m1 = system.omsm.add_mode(std::move(o1));

  Mode o2;
  o2.name = "O2";
  o2.probability = 0.7;
  o2.period = 10.0;  // slow background activity
  chain(o2.graph,
        {o2.graph.add_task("tau4", a), o2.graph.add_task("tau5", e),
         o2.graph.add_task("tau6", f)},
        1000.0);
  const ModeId m2 = system.omsm.add_mode(std::move(o2));

  system.omsm.add_transition({m1, m2});
  system.omsm.add_transition({m2, m1});
  return system;
}

MultiModeMapping example2_mapping_shared() {
  // Fig. 3b: τ1 and τ4 share the hardware A-core on PE1.
  return mapping_from({{{1, 0, 0}, {1, 0, 0}}});
}

MultiModeMapping example2_mapping_multiple_impl() {
  // Fig. 3c: τ4 implemented in software; PE1 and CL0 idle during O2.
  return mapping_from({{{1, 0, 0}, {0, 0, 0}}});
}

}  // namespace mmsyn
