#include "tgff/generator.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sched/list_scheduler.hpp"

namespace mmsyn {
namespace {

/// Evenly spaced discrete voltage levels from `vlow` up to `vmax`.
std::vector<double> make_levels(double vlow, double vmax, int count) {
  std::vector<double> levels(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    levels[static_cast<std::size_t>(i)] =
        vlow + (vmax - vlow) * static_cast<double>(i) / (count - 1);
  return levels;
}

/// Grows one TGFF-style task graph: tasks arrive level by level; each
/// non-root task draws 1..max_in_degree parents from recent levels.
void grow_task_graph(TaskGraph& graph, int task_count,
                     const std::vector<TaskTypeId>& pool,
                     const GeneratorConfig& cfg, Rng& rng) {
  std::vector<std::vector<TaskId>> levels;
  int created = 0;
  while (created < task_count) {
    const int width = static_cast<int>(rng.uniform_int(
        1, std::min<std::int64_t>(cfg.max_graph_width,
                                  task_count - created)));
    std::vector<TaskId> level;
    for (int w = 0; w < width; ++w) {
      const TaskTypeId type = pool[rng.pick_index(pool.size())];
      const TaskId task = graph.add_task(
          "t" + std::to_string(created), type);
      ++created;
      if (!levels.empty()) {
        // Parents from the previous two levels, newest first.
        std::vector<TaskId> parents;
        for (std::size_t back = 0; back < 2 && back < levels.size(); ++back)
          for (TaskId p : levels[levels.size() - 1 - back])
            parents.push_back(p);
        rng.shuffle(parents);
        const int in_degree = static_cast<int>(rng.uniform_int(
            1, std::min<std::int64_t>(cfg.max_in_degree,
                                      static_cast<std::int64_t>(
                                          parents.size()))));
        for (int d = 0; d < in_degree; ++d)
          graph.add_edge(parents[static_cast<std::size_t>(d)], task,
                         rng.uniform_real(cfg.edge_bits_min,
                                          cfg.edge_bits_max));
      }
      level.push_back(task);
    }
    levels.push_back(std::move(level));
  }
}

}  // namespace

System generate_system(const GeneratorConfig& cfg, std::string name) {
  Rng rng(cfg.seed);
  System system;
  system.name = std::move(name);

  // ---- Architecture: PEs. ------------------------------------------------
  const int pe_count =
      static_cast<int>(rng.uniform_int(cfg.pe_count_min, cfg.pe_count_max));
  std::vector<PeKind> kinds;
  kinds.push_back(PeKind::kGpp);  // always one general-purpose processor
  if (pe_count >= 2)
    kinds.push_back(PeKind::kAsic);  // always one contested static resource
  const PeKind extras[] = {PeKind::kGpp, PeKind::kAsip, PeKind::kAsic,
                           PeKind::kFpga};
  while (static_cast<int>(kinds.size()) < pe_count)
    kinds.push_back(extras[rng.pick_index(4)]);

  std::vector<bool> dvs_flags(kinds.size(), false);
  bool any_dvs = false;
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    dvs_flags[i] = rng.chance(cfg.dvs_probability);
    any_dvs = any_dvs || dvs_flags[i];
  }
  if (!any_dvs) dvs_flags[0] = true;

  for (std::size_t i = 0; i < kinds.size(); ++i) {
    Pe pe;
    pe.name = std::string(to_string(kinds[i])) + std::to_string(i);
    pe.kind = kinds[i];
    pe.dvs_enabled = dvs_flags[i];
    pe.threshold_voltage = 0.8;
    pe.voltage_levels =
        dvs_flags[i]
            ? make_levels(rng.uniform_real(1.1, 1.6), 3.3,
                          static_cast<int>(rng.uniform_int(4, 6)))
            : std::vector<double>{3.3};
    pe.static_power =
        rng.uniform_real(cfg.pe_static_power_min, cfg.pe_static_power_max);
    // Area capacity and FPGA reconfiguration bandwidth are set below once
    // the type areas are known.
    system.arch.add_pe(std::move(pe));
  }

  // ---- Architecture: CLs (buses connecting all PEs). ---------------------
  const int cl_count =
      static_cast<int>(rng.uniform_int(cfg.cl_count_min, cfg.cl_count_max));
  for (int c = 0; c < cl_count; ++c) {
    Cl cl;
    cl.name = "BUS" + std::to_string(c);
    cl.bandwidth = cfg.cl_bandwidth;
    cl.startup_latency = cfg.cl_startup;
    cl.transfer_power = rng.uniform_real(cfg.cl_power_min, cfg.cl_power_max);
    cl.static_power =
        rng.uniform_real(cfg.cl_static_power_min, cfg.cl_static_power_max);
    cl.attached = system.arch.pe_ids();
    system.arch.add_cl(std::move(cl));
  }

  // ---- Technology library. -----------------------------------------------
  std::vector<TaskTypeId> pool;
  std::vector<double> hw_area_sum(system.arch.pe_count(), 0.0);
  for (int t = 0; t < cfg.type_pool_size; ++t) {
    const TaskTypeId type = system.tech.add_type("T" + std::to_string(t));
    pool.push_back(type);

    const double base_time = rng.uniform_real(cfg.sw_time_min, cfg.sw_time_max);
    const double base_power =
        rng.uniform_real(cfg.sw_power_min, cfg.sw_power_max);
    const double base_energy = base_time * base_power;

    for (PeId p : system.arch.pe_ids()) {
      const Pe& pe = system.arch.pe(p);
      if (pe.kind == PeKind::kGpp) {
        // GPPs support every type (guaranteed fallback implementation).
        Implementation impl;
        impl.exec_time = base_time * rng.uniform_real(0.9, 1.1);
        impl.dyn_power = base_power * rng.uniform_real(0.9, 1.1);
        system.tech.set_implementation(type, p, impl);
      } else if (pe.kind == PeKind::kAsip) {
        if (!rng.chance(0.8)) continue;
        Implementation impl;
        impl.exec_time = base_time * rng.uniform_real(0.6, 1.1);
        impl.dyn_power = base_power * rng.uniform_real(0.6, 1.1);
        system.tech.set_implementation(type, p, impl);
      } else {
        if (!rng.chance(cfg.hw_support_probability)) continue;
        Implementation impl;
        const double speedup =
            rng.uniform_real(cfg.hw_speedup_min, cfg.hw_speedup_max);
        const double energy_ratio = rng.uniform_real(
            cfg.hw_energy_ratio_min, cfg.hw_energy_ratio_max);
        impl.exec_time = base_time / speedup;
        impl.dyn_power = (base_energy / energy_ratio) / impl.exec_time;
        impl.area = (cfg.hw_area_base + cfg.hw_area_per_mj * base_energy * 1e3) *
                    rng.uniform_real(1.0 - cfg.hw_area_noise,
                                     1.0 + cfg.hw_area_noise);
        system.tech.set_implementation(type, p, impl);
        hw_area_sum[p.index()] += impl.area;
      }
    }
  }

  // Hardware capacities: a fraction of the total supported-type area, so
  // only a subset of types fits simultaneously.
  for (PeId p : system.arch.pe_ids()) {
    Pe& pe = system.arch.pe(p);
    if (!is_hardware(pe.kind)) continue;
    // Never below the area of one large core, so every HW PE is usable.
    const double one_core =
        cfg.hw_area_base +
        cfg.hw_area_per_mj * cfg.sw_time_max * cfg.sw_power_max * 1e3;
    pe.area_capacity =
        std::max(one_core, hw_area_sum[p.index()] *
                               rng.uniform_real(cfg.hw_capacity_fraction_min,
                                                cfg.hw_capacity_fraction_max));
    if (pe.kind == PeKind::kFpga)
      pe.reconfig_bandwidth =
          pe.area_capacity / rng.uniform_real(0.01, 0.05);
  }

  // ---- Modes with task graphs. -------------------------------------------
  // Each mode draws tasks from its own subset of the type pool: a few
  // *common* types shared by all modes (cross-mode resource sharing) plus
  // mode-biased types. This differentiation is what makes the hardware
  // area a contested resource between modes — the effect the paper's
  // probability-aware mapping exploits.
  const int mode_count =
      static_cast<int>(rng.uniform_int(cfg.mode_count_min, cfg.mode_count_max));
  const int common_count = std::max(
      2, static_cast<int>(cfg.shared_type_fraction * cfg.types_per_mode));
  std::vector<TaskTypeId> common_pool(
      pool.begin(), pool.begin() + std::min<std::size_t>(
                                       pool.size(),
                                       static_cast<std::size_t>(common_count)));
  // The dominant mode is the lightest one (like the paper's 74% Radio Link
  // Control mode): generate one mode with a task count from the bottom of
  // the range and remember it for the probability assignment.
  const std::size_t dominant = 0;
  for (int m = 0; m < mode_count; ++m) {
    Mode mode;
    mode.name = "mode" + std::to_string(m);
    const int tasks =
        (static_cast<std::size_t>(m) == dominant)
            ? static_cast<int>(rng.uniform_int(
                  cfg.tasks_per_mode_min,
                  std::max<std::int64_t>(cfg.tasks_per_mode_min,
                                         (cfg.tasks_per_mode_min +
                                          cfg.tasks_per_mode_max) /
                                             2)))
            : static_cast<int>(rng.uniform_int(cfg.tasks_per_mode_min,
                                               cfg.tasks_per_mode_max));
    // Mode-private subset: common types plus uniformly drawn extras.
    std::vector<TaskTypeId> subset = common_pool;
    while (static_cast<int>(subset.size()) <
           std::max(common_count + 1,
                    std::min<int>(cfg.types_per_mode,
                                  static_cast<int>(pool.size())))) {
      const TaskTypeId t = pool[rng.pick_index(pool.size())];
      if (std::find(subset.begin(), subset.end(), t) == subset.end())
        subset.push_back(t);
    }
    grow_task_graph(mode.graph, tasks, subset, cfg, rng);
    mode.period = 1.0;  // placeholder; probed below
    system.omsm.add_mode(std::move(mode));
  }

  // ---- Period calibration via a software-only feasibility probe. --------
  const std::vector<CoreSet> no_cores(system.arch.pe_count());
  for (std::size_t m = 0; m < system.omsm.mode_count(); ++m) {
    Mode& mode =
        system.omsm.mode(ModeId{static_cast<ModeId::value_type>(m)});
    ModeMapping probe;
    probe.task_to_pe.assign(mode.graph.task_count(),
                            PeId{0});  // GPP supports everything
    const ModeSchedule schedule = list_schedule(
        {mode, probe, system.arch, system.tech, no_cores});
    const bool is_dominant = m == 0;  // mode 0 is the dominant mode
    mode.period = schedule.makespan *
                  (is_dominant
                       ? rng.uniform_real(cfg.dominant_period_factor_min,
                                          cfg.dominant_period_factor_max)
                       : rng.uniform_real(cfg.period_factor_min,
                                          cfg.period_factor_max));
    // Occasionally pin a sink task to a tighter individual deadline.
    if (rng.chance(0.3) && mode.graph.task_count() > 0) {
      const std::size_t t = rng.pick_index(mode.graph.task_count());
      const TaskId id{static_cast<TaskId::value_type>(t)};
      if (mode.graph.out_edges(id).empty()) {
        // Keep the deadline above the probe finish of the task itself so
        // at least the all-software mapping stays achievable.
        const double floor_time = schedule.tasks[t].finish;
        const double dl =
            std::max(floor_time, mode.period * rng.uniform_real(0.75, 1.0));
        mode.graph.set_deadline(id, dl);
      }
    }
  }

  // ---- Mode execution probabilities (one dominant mode). -----------------
  {
    const double p_dom = rng.uniform_real(cfg.dominant_probability_min,
                                          cfg.dominant_probability_max);
    std::vector<double> sticks;
    double stick_total = 0.0;
    for (std::size_t m = 0; m < system.omsm.mode_count(); ++m) {
      const double u = (m == dominant) ? 0.0 : rng.uniform_real(0.1, 1.0);
      sticks.push_back(u);
      stick_total += u;
    }
    for (std::size_t m = 0; m < system.omsm.mode_count(); ++m) {
      Mode& mode =
          system.omsm.mode(ModeId{static_cast<ModeId::value_type>(m)});
      mode.probability = (m == dominant)
                             ? p_dom
                             : (1.0 - p_dom) * sticks[m] / stick_total;
    }
  }

  // ---- OMSM transitions: a ring plus a few random chords. ----------------
  const auto add_transition = [&](std::size_t from, std::size_t to) {
    if (from == to) return;
    system.omsm.add_transition(
        {ModeId{static_cast<ModeId::value_type>(from)},
         ModeId{static_cast<ModeId::value_type>(to)},
         rng.uniform_real(cfg.transition_limit_min,
                          cfg.transition_limit_max)});
  };
  for (std::size_t m = 0; m < system.omsm.mode_count(); ++m)
    add_transition(m, (m + 1) % system.omsm.mode_count());
  const std::size_t chords = system.omsm.mode_count() / 2;
  for (std::size_t c = 0; c < chords; ++c)
    add_transition(rng.pick_index(system.omsm.mode_count()),
                   rng.pick_index(system.omsm.mode_count()));

  return system;
}

}  // namespace mmsyn
