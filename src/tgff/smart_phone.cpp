#include "tgff/smart_phone.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sched/list_scheduler.hpp"

namespace mmsyn {
namespace {

/// Symbolic task types of the three applications plus the radio stack.
/// The first seven mirror the cores of the paper's Fig. 1c.
enum Type : int {
  FFT,          // C1: network correlation / synthesis filterbank
  HD,           // C2: Huffman decoding (MP3 bitstream, JPEG entropy)
  IDCT,         // C3: inverse DCT (MP3 IMDCT, JPEG blocks)
  COLORTRANS,   // C4: colour-space transform
  DEQ,          // C5: de-quantiser (MP3, JPEG)
  STP,          // C6: GSM short-term prediction
  LTP,          // C7: GSM long-term prediction
  PREEMPH, LPC, RPE_ENC, GRID_SEL, FRAME_PACK, FRAME_UNPACK, RPE_DEC,
  POSTFILT, SCALEFACT, STEREO, ANTIALIAS, SUBBAND, PCM_OUT,
  DEINTERLEAVE, CHAN_EST, EQUALIZE, CRC_CHECK, POWER_CTRL, HANDOVER,
  RLC_CTRL, FRAME_SYNC, SCAN_RF, SYNC_DET, BCCH_DEC, CELL_SEL,
  SENSOR_READ, BAYER, SHARPEN, JPEG_ENC, STORE, DISPLAY,
  kTypeCount
};

const char* type_name(int t) {
  static const char* kNames[] = {
      "FFT", "HD", "IDCT", "COLORTRANS", "DEQ", "STP", "LTP",
      "PREEMPH", "LPC", "RPE_ENC", "GRID_SEL", "FRAME_PACK", "FRAME_UNPACK",
      "RPE_DEC", "POSTFILT", "SCALEFACT", "STEREO", "ANTIALIAS", "SUBBAND",
      "PCM_OUT", "DEINTERLEAVE", "CHAN_EST", "EQUALIZE", "CRC_CHECK",
      "POWER_CTRL", "HANDOVER", "RLC_CTRL", "FRAME_SYNC", "SCAN_RF",
      "SYNC_DET", "BCCH_DEC", "CELL_SEL", "SENSOR_READ", "BAYER", "SHARPEN",
      "JPEG_ENC", "STORE", "DISPLAY"};
  return kNames[t];
}

/// Builder context shared by the per-application subgraph functions.
struct Builder {
  TaskGraph* graph = nullptr;
  const std::array<TaskTypeId, kTypeCount>* types = nullptr;
  int counter = 0;
  double bits = 4096.0;  // default message size

  TaskId add(int type) {
    return graph->add_task(std::string(type_name(type)) + "#" +
                               std::to_string(counter++),
                           (*types)[static_cast<std::size_t>(type)]);
  }
  void edge(TaskId a, TaskId b, double data_bits = -1.0) {
    graph->add_edge(a, b, data_bits < 0 ? bits : data_bits);
  }
};

/// Radio link control: 8 tasks keeping the network connection alive.
void add_rlc(Builder& b) {
  const TaskId sync = b.add(FRAME_SYNC);
  const TaskId deint = b.add(DEINTERLEAVE);
  const TaskId chan = b.add(CHAN_EST);
  const TaskId eq = b.add(EQUALIZE);
  const TaskId crc = b.add(CRC_CHECK);
  const TaskId ctrl = b.add(RLC_CTRL);
  const TaskId pwr = b.add(POWER_CTRL);
  const TaskId hand = b.add(HANDOVER);
  b.edge(sync, deint);
  b.edge(sync, chan);
  b.edge(deint, eq);
  b.edge(chan, eq);
  b.edge(eq, crc);
  b.edge(crc, ctrl);
  b.edge(ctrl, pwr);
  b.edge(ctrl, hand);
}

/// Network search: 5 tasks scanning for a carrier.
void add_network_search(Builder& b) {
  const TaskId scan = b.add(SCAN_RF);
  const TaskId corr = b.add(FFT);
  const TaskId sync = b.add(SYNC_DET);
  const TaskId bcch = b.add(BCCH_DEC);
  const TaskId sel = b.add(CELL_SEL);
  b.edge(scan, corr);
  b.edge(corr, sync);
  b.edge(sync, bcch);
  b.edge(bcch, sel);
}

/// GSM 06.10 full-rate codec (encoder + decoder), 27 tasks: the encoder
/// processes four sub-frames through LTP/RPE after STP analysis, the
/// decoder reverses the chain through short-term synthesis.
void add_gsm_codec(Builder& b) {
  const TaskId pre = b.add(PREEMPH);
  const TaskId lpc = b.add(LPC);
  const TaskId stp = b.add(STP);
  b.edge(pre, lpc);
  b.edge(lpc, stp);
  const TaskId pack = b.add(FRAME_PACK);
  for (int sub = 0; sub < 4; ++sub) {
    const TaskId ltp = b.add(LTP);
    const TaskId rpe = b.add(RPE_ENC);
    const TaskId grid = b.add(GRID_SEL);
    b.edge(stp, ltp);
    b.edge(ltp, rpe);
    b.edge(rpe, grid);
    b.edge(grid, pack);
  }
  const TaskId unpack = b.add(FRAME_UNPACK);
  b.edge(pack, unpack, 2048.0);
  const TaskId stp_syn = b.add(STP);
  for (int sub = 0; sub < 4; ++sub) {
    const TaskId rpe_d = b.add(RPE_DEC);
    const TaskId ltp_d = b.add(LTP);
    b.edge(unpack, rpe_d);
    b.edge(rpe_d, ltp_d);
    b.edge(ltp_d, stp_syn);
  }
  const TaskId post = b.add(POSTFILT);
  b.edge(stp_syn, post);
}

/// MP3 decoder, 13 tasks: bitstream + side info, two granules of
/// dequantise/stereo/antialias/IMDCT/filterbank, PCM merge.
void add_mp3(Builder& b) {
  const TaskId hd = b.add(HD);
  const TaskId scale = b.add(SCALEFACT);
  b.edge(hd, scale);
  const TaskId pcm = b.add(PCM_OUT);
  for (int granule = 0; granule < 2; ++granule) {
    const TaskId deq = b.add(DEQ);
    const TaskId stereo = b.add(STEREO);
    const TaskId anti = b.add(ANTIALIAS);
    const TaskId imdct = b.add(IDCT);
    const TaskId sub = b.add(SUBBAND);
    b.edge(scale, deq);
    b.edge(deq, stereo);
    b.edge(stereo, anti);
    b.edge(anti, imdct);
    b.edge(imdct, sub);
    b.edge(sub, pcm);
  }
}

/// JPEG baseline decoder, 2 + 4*strips tasks: per-strip entropy decode,
/// dequantise, IDCT, colour transform; fan-out from the header parse and
/// fan-in to the image assembly.
void add_jpeg_decode(Builder& b, int strips) {
  const TaskId header = b.add(HD);
  const TaskId assemble = b.add(DISPLAY);
  for (int s = 0; s < strips; ++s) {
    const TaskId hd = b.add(HD);
    const TaskId deq = b.add(DEQ);
    const TaskId idct = b.add(IDCT);
    const TaskId color = b.add(COLORTRANS);
    b.edge(header, hd, 1024.0);
    b.edge(hd, deq);
    b.edge(deq, idct);
    b.edge(idct, color);
    b.edge(color, assemble, 8192.0);
  }
}

/// Camera pipeline (take photo + show photo), 14 tasks.
void add_camera(Builder& b) {
  const TaskId sensor = b.add(SENSOR_READ);
  const TaskId bayer = b.add(BAYER);
  const TaskId sharpen = b.add(SHARPEN);
  const TaskId ct = b.add(COLORTRANS);
  b.edge(sensor, bayer, 16384.0);
  b.edge(bayer, sharpen);
  b.edge(sharpen, ct);
  const TaskId store = b.add(STORE);
  for (int s = 0; s < 2; ++s) {
    const TaskId enc = b.add(JPEG_ENC);
    b.edge(ct, enc);
    b.edge(enc, store, 8192.0);
  }
  // Review path: decode the stored thumbnail and display it.
  const TaskId hd = b.add(HD);
  const TaskId deq = b.add(DEQ);
  const TaskId idct = b.add(IDCT);
  const TaskId color = b.add(COLORTRANS);
  const TaskId disp = b.add(DISPLAY);
  b.edge(store, hd, 2048.0);
  b.edge(hd, deq);
  b.edge(deq, idct);
  b.edge(idct, color);
  b.edge(color, disp, 8192.0);
}

}  // namespace

System make_smart_phone() {
  System system;
  system.name = "smart-phone";
  Rng rng(0x50EA'2003'0DA7Eull);

  // ---- Architecture (Table 3): one DVS GPP + two ASICs on one bus. ------
  Pe cpu;
  cpu.name = "CPU";
  cpu.kind = PeKind::kGpp;
  cpu.dvs_enabled = true;
  cpu.voltage_levels = {1.2, 1.7, 2.2, 2.75, 3.3};
  cpu.threshold_voltage = 0.8;
  cpu.static_power = 4e-4;
  const PeId pe_cpu = system.arch.add_pe(std::move(cpu));

  Pe asic1;
  asic1.name = "ASIC1";
  asic1.kind = PeKind::kAsic;
  asic1.static_power = 2.5e-4;
  const PeId pe_asic1 = system.arch.add_pe(std::move(asic1));

  Pe asic2;
  asic2.name = "ASIC2";
  asic2.kind = PeKind::kAsic;
  asic2.static_power = 2e-4;
  const PeId pe_asic2 = system.arch.add_pe(std::move(asic2));

  Cl bus;
  bus.name = "BUS";
  bus.bandwidth = 1e7;
  bus.startup_latency = 5e-5;
  bus.transfer_power = 5e-2;
  bus.static_power = 1e-4;
  bus.attached = {pe_cpu, pe_asic1, pe_asic2};
  system.arch.add_cl(std::move(bus));

  // ---- Technology library. ----------------------------------------------
  // ASIC1 hosts the signal-processing cores of Fig. 1c's left ASIC; ASIC2
  // the prediction/image cores. IDCT is implementable on both (the paper's
  // MP3/JPEG sharing example).
  const std::vector<int> asic1_types = {
      FFT,      HD,           IDCT,      DEQ,       SUBBAND, ANTIALIAS,
      STEREO,   EQUALIZE,     DEINTERLEAVE, CRC_CHECK, CHAN_EST,
      FRAME_SYNC};
  const std::vector<int> asic2_types = {
      IDCT,     COLORTRANS, STP,     LTP,      RPE_ENC, RPE_DEC,
      JPEG_ENC, SHARPEN,    BAYER,   SCALEFACT, POWER_CTRL, HANDOVER,
      RLC_CTRL};

  std::array<TaskTypeId, kTypeCount> types;
  double area_sum1 = 0.0, area_sum2 = 0.0;
  for (int t = 0; t < kTypeCount; ++t) {
    types[static_cast<std::size_t>(t)] = system.tech.add_type(type_name(t));
    const double sw_time = rng.uniform_real(1e-3, 8e-3);
    const double sw_power = rng.uniform_real(0.08, 0.25);
    system.tech.set_implementation(types[static_cast<std::size_t>(t)], pe_cpu,
                                   {sw_time, sw_power, 0.0});
    auto add_hw = [&](PeId pe, double& area_sum) {
      Implementation impl;
      const double speedup = rng.uniform_real(5.0, 100.0);
      const double energy_ratio = rng.uniform_real(100.0, 800.0);
      impl.exec_time = sw_time / speedup;
      impl.dyn_power = (sw_time * sw_power / energy_ratio) / impl.exec_time;
      impl.area = rng.uniform_real(150.0, 400.0);
      area_sum += impl.area;
      system.tech.set_implementation(types[static_cast<std::size_t>(t)], pe,
                                     impl);
    };
    if (std::find(asic1_types.begin(), asic1_types.end(), t) !=
        asic1_types.end())
      add_hw(pe_asic1, area_sum1);
    if (std::find(asic2_types.begin(), asic2_types.end(), t) !=
        asic2_types.end())
      add_hw(pe_asic2, area_sum2);
  }
  // Tight enough that the radio stack, the codecs and the imaging pipeline
  // compete for core area — the contest the mode probabilities resolve.
  system.arch.pe(pe_asic1).area_capacity = 0.30 * area_sum1;
  system.arch.pe(pe_asic2).area_capacity = 0.28 * area_sum2;

  // ---- The eight operational modes (Fig. 1a probabilities). -------------
  struct ModeSpec {
    const char* name;
    double probability;
    double period_factor;  // of the software-only probe makespan
    void (*build)(Builder&);
  };
  static const auto build_ns = [](Builder& b) { add_network_search(b); };
  static const auto build_rlc = [](Builder& b) { add_rlc(b); };
  static const auto build_gsm = [](Builder& b) {
    add_gsm_codec(b);
    add_rlc(b);
  };
  static const auto build_mp3_rlc = [](Builder& b) {
    add_mp3(b);
    add_rlc(b);
  };
  static const auto build_mp3_ns = [](Builder& b) {
    add_mp3(b);
    add_network_search(b);
  };
  static const auto build_photo_rlc = [](Builder& b) {
    add_jpeg_decode(b, 16);
    add_rlc(b);
  };
  static const auto build_photo_ns = [](Builder& b) {
    add_jpeg_decode(b, 16);
    add_network_search(b);
  };
  static const auto build_camera = [](Builder& b) { add_camera(b); };

  const ModeSpec kModes[8] = {
      {"NetworkSearch", 0.01, 2.0, build_ns},
      {"RadioLinkControl", 0.74, 2.0, build_rlc},
      {"GSMcodec+RLC", 0.09, 1.2, build_gsm},
      {"MP3play+RLC", 0.10, 1.3, build_mp3_rlc},
      {"MP3play+NetworkSearch", 0.01, 1.3, build_mp3_ns},
      {"decodePhoto+RLC", 0.02, 0.8, build_photo_rlc},
      {"decodePhoto+NetworkSearch", 0.02, 0.8, build_photo_ns},
      {"Take/ShowPhoto", 0.01, 1.0, build_camera},
  };

  const std::vector<CoreSet> no_cores(system.arch.pe_count());
  for (const ModeSpec& spec : kModes) {
    Mode mode;
    mode.name = spec.name;
    mode.probability = spec.probability;
    Builder b;
    b.graph = &mode.graph;
    b.types = &types;
    spec.build(b);
    // Software-only feasibility probe calibrates the period; factors < 1
    // force hardware acceleration (photo decode), factors > 1 leave DVS
    // headroom (control-dominated modes).
    ModeMapping probe;
    probe.task_to_pe.assign(mode.graph.task_count(), pe_cpu);
    const ModeSchedule sched =
        list_schedule({mode, probe, system.arch, system.tech, no_cores});
    mode.period = sched.makespan * spec.period_factor;
    system.omsm.add_mode(std::move(mode));
  }

  // ---- OMSM transitions (Fig. 1a), with transition-time limits. ---------
  auto mode_id = [](PhoneMode m) {
    return ModeId{static_cast<ModeId::value_type>(static_cast<int>(m))};
  };
  using P = PhoneMode;
  const std::pair<P, P> kEdges[] = {
      {P::kNetworkSearch, P::kRadioLinkControl},      // network found
      {P::kRadioLinkControl, P::kNetworkSearch},      // network lost
      {P::kRadioLinkControl, P::kGsmCodecRlc},        // incoming call
      {P::kGsmCodecRlc, P::kRadioLinkControl},        // terminate call
      {P::kRadioLinkControl, P::kMp3Rlc},             // play audio
      {P::kMp3Rlc, P::kRadioLinkControl},             // terminate audio
      {P::kMp3Rlc, P::kMp3NetworkSearch},             // network lost
      {P::kMp3NetworkSearch, P::kMp3Rlc},             // network found
      {P::kMp3NetworkSearch, P::kNetworkSearch},      // terminate audio
      {P::kRadioLinkControl, P::kPhotoRlc},           // show photo
      {P::kPhotoRlc, P::kRadioLinkControl},           // terminate photo
      {P::kPhotoRlc, P::kPhotoNetworkSearch},         // network lost
      {P::kPhotoNetworkSearch, P::kPhotoRlc},         // network found
      {P::kPhotoNetworkSearch, P::kNetworkSearch},    // terminate photo
      {P::kRadioLinkControl, P::kTakeShowPhoto},      // take photo
      {P::kTakeShowPhoto, P::kRadioLinkControl},      // photo taken
      {P::kTakeShowPhoto, P::kPhotoRlc},              // show photo
  };
  for (const auto& [from, to] : kEdges)
    system.omsm.add_transition(
        {mode_id(from), mode_id(to), rng.uniform_real(0.015, 0.05)});

  return system;
}

}  // namespace mmsyn
