// The fixed benchmark suite of the paper's evaluation.
//
// mul1–mul12: twelve generated multi-mode examples with the published
// structural parameters (3–5 modes of 8–32 tasks, 2–4 heterogeneous PEs,
// 1–3 CLs). The authors' concrete instances are unpublished; these are
// regenerated from fixed seeds (see DESIGN.md, substitution notes) with
// the mode counts matching Table 1/2's "(No. of modes)" column.
#pragma once

#include "model/system.hpp"

namespace mmsyn {

/// Number of suite instances (12).
[[nodiscard]] int mul_count();

/// Builds suite instance `index` (1-based, 1..mul_count()). Deterministic.
[[nodiscard]] System make_mul(int index);

/// Mode count of instance `index` as published in Table 1 ("mulN (k)").
[[nodiscard]] int mul_mode_count(int index);

}  // namespace mmsyn
