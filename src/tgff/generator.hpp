// TGFF-style random multi-mode system generator.
//
// The paper evaluates on 12 automatically generated examples (mul1–mul12):
// 3–5 operational modes of 8–32 tasks each, mapped onto 2–4 heterogeneous
// PEs (some DVS-enabled) connected by 1–3 CLs. The authors' instances are
// not published, so this module regenerates the family: task graphs grow by
// the classic TGFF fan-in/fan-out method, task types are drawn from a pool
// shared across modes (enabling cross-mode resource sharing), and the
// technology tables follow the paper's characteristics (hardware 5–100×
// faster than software, drastically lower energy, area-constrained).
// Every instance is fully determined by the config's 64-bit seed.
#pragma once

#include <cstdint>
#include <string>

#include "model/system.hpp"

namespace mmsyn {

/// Generation parameters. Ranges are inclusive.
struct GeneratorConfig {
  std::uint64_t seed = 1;

  int mode_count_min = 3;
  int mode_count_max = 5;
  int tasks_per_mode_min = 8;
  int tasks_per_mode_max = 32;
  /// Size of the shared task-type pool; smaller pools increase cross-mode
  /// type sharing.
  int type_pool_size = 36;
  /// Each mode draws its tasks from a private subset of the pool of this
  /// size...
  int types_per_mode = 9;
  /// ...where this fraction of draws comes from a small *common* sub-pool
  /// shared by all modes (cross-mode resource sharing à la Fig. 3). Too
  /// many shared types let them crowd the hardware area under any mode
  /// weighting, erasing the probability effect.
  double shared_type_fraction = 0.25;
  /// Maximum parallel width of a generated task-graph level.
  int max_graph_width = 4;
  /// Maximum predecessors of a non-root task.
  int max_in_degree = 3;

  int pe_count_min = 2;
  int pe_count_max = 4;
  int cl_count_min = 1;
  int cl_count_max = 3;
  /// Probability that a PE is DVS-enabled (at least one always is).
  double dvs_probability = 0.5;

  // --- Technology characteristics (SI units). ---------------------------
  double sw_time_min = 5e-3;    ///< software exec time range [s]
  double sw_time_max = 15e-3;
  double sw_power_min = 0.10;   ///< software dynamic power range [W]
  double sw_power_max = 0.25;
  double hw_speedup_min = 5.0;  ///< hardware is 5–100× faster
  double hw_speedup_max = 100.0;
  double hw_energy_ratio_min = 50.0;  ///< SW/HW energy ratio
  double hw_energy_ratio_max = 1000.0;
  /// Core area grows with the type's computational weight (its software
  /// energy), as in the paper's table where the heavier types occupy the
  /// larger cores: area = (base + per_mj · E_sw[mJ]) · (1 ± noise).
  double hw_area_base = 60.0;    ///< [cells]
  double hw_area_per_mj = 80.0;  ///< [cells per mJ of software energy]
  double hw_area_noise = 0.1;
  /// Probability that a type has an implementation on a given HW PE.
  double hw_support_probability = 0.7;
  /// HW capacity = fraction of the summed area of all its supported types.
  /// Calibrated so the cross-mode shared types fit together with *some*
  /// but not all mode-exclusive types — the contested regime the paper's
  /// motivational example (600 cells for 2 of 6 cores) sits in.
  double hw_capacity_fraction_min = 0.32;
  double hw_capacity_fraction_max = 0.45;

  double pe_static_power_min = 3e-4;  ///< [W]
  double pe_static_power_max = 1.5e-3;
  double cl_static_power_min = 1e-4;
  double cl_static_power_max = 4e-4;

  double cl_bandwidth = 1e7;          ///< [bit/s]
  double cl_startup = 1e-4;           ///< [s]
  double cl_power_min = 0.02;         ///< transfer power [W]
  double cl_power_max = 0.10;

  double edge_bits_min = 1e3;
  double edge_bits_max = 3.2e4;

  // --- Timing. ------------------------------------------------------------
  /// Mode period = software-only feasibility-probe makespan × factor drawn
  /// from this range. Factors > 1 keep the all-software mapping feasible
  /// (so every instance has solutions). Non-dominant modes are *bursty*:
  /// tight periods make them power-dense, which is what attracts a
  /// probability-neglecting optimiser to them.
  double period_factor_min = 1.05;
  double period_factor_max = 1.3;
  /// The dominant mode runs relaxed (idle-ish background work, like the
  /// paper's Radio Link Control): generous period, low power density, DVS
  /// headroom.
  double dominant_period_factor_min = 1.6;
  double dominant_period_factor_max = 2.2;

  // --- Mode probabilities. ------------------------------------------------
  /// The dominant mode's probability range; the remainder is split over
  /// the other modes with random stick-breaking.
  double dominant_probability_min = 0.55;
  double dominant_probability_max = 0.85;

  /// Mode-transition time limits [s].
  double transition_limit_min = 5e-3;
  double transition_limit_max = 5e-2;
};

/// Generates one system; deterministic in `config.seed`.
[[nodiscard]] System generate_system(const GeneratorConfig& config,
                                     std::string name);

}  // namespace mmsyn
