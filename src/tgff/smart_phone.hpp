// The smart-phone real-life benchmark (Section 5, Fig. 1a, Table 3).
//
// Eight operational modes combining a GSM cellular phone (GSM 06.10
// codec + radio link control), an MP3 player, and a digital camera (JPEG
// decode/encode), with the paper's published mode execution probabilities
// (e.g. 74% Radio Link Control, 9% GSM codec + RLC, 1% Network Search).
// The original benchmark profiles real code (toast, jpeg-6b, mpeg3play)
// on real hardware; this reconstruction preserves the structure — task
// graphs of 5–88 nodes shaped after the three applications, shared task
// types across modes (FFT, HD, IDCT, DeQ, ColorTrans, STP, LTP per
// Fig. 1c), hardware 5–100× faster than software — on the published
// architecture: one DVS-enabled GPP plus two ASICs on a single bus.
#pragma once

#include "model/system.hpp"

namespace mmsyn {

/// Builds the smart-phone system. Deterministic (fixed internal seed).
[[nodiscard]] System make_smart_phone();

/// Mode indices of the smart-phone OMSM, for tests and reporting.
enum class PhoneMode : int {
  kNetworkSearch = 0,
  kRadioLinkControl = 1,
  kGsmCodecRlc = 2,
  kMp3Rlc = 3,
  kMp3NetworkSearch = 4,
  kPhotoRlc = 5,
  kPhotoNetworkSearch = 6,
  kTakeShowPhoto = 7,
};

}  // namespace mmsyn
