// DVS problem graph for one scheduled mode.
//
// The voltage-scaling algorithm (pv_dvs.hpp) operates on a DAG whose nodes
// are the *activities* of the mode's schedule — tasks, inter-PE
// communications, and, for DVS-enabled hardware PEs, the virtual sequential
// segments of the paper's Fig. 5 transformation — and whose edges encode
// both data precedence and resource execution order. Edges are constructed
// forward-in-schedule-time, which keeps the graph acyclic by construction.
//
// Fig. 5 transformation: all cores of a DVS hardware PE share one supply,
// so parallel tasks cannot be scaled independently. The PE's busy timeline
// is cut at every task start, task finish, and incoming-data arrival that
// falls inside a busy interval; each resulting slice becomes one *segment*
// node with power equal to the sum of the concurrently active core powers.
// Segments chain sequentially and inherit the tightest deadline of the
// tasks finishing at their end. Cutting at data-arrival instants guarantees
// that cross-PE edges attach to a segment starting no earlier than the
// arrival, i.e. edges never point backward in time.
#pragma once

#include <limits>
#include <vector>

#include "common/ids.hpp"
#include "model/mapping.hpp"
#include "sched/schedule.hpp"

namespace mmsyn {

struct Mode;
class Architecture;
class TechLibrary;

/// Node kinds of the DVS graph.
enum class DvsNodeKind {
  kTask,     ///< a task on a software PE or non-DVS hardware PE
  kComm,     ///< an inter-PE communication on a CL
  kSegment,  ///< a Fig.-5 virtual segment of a DVS hardware PE
};

/// One activity node.
struct DvsNode {
  DvsNodeKind kind = DvsNodeKind::kTask;
  /// Task id (kTask), edge id (kComm), or per-PE segment ordinal (kSegment).
  int ref = -1;
  /// Owning resource: PE for tasks/segments, invalid for comms.
  PeId pe;
  /// Nominal (unscaled) duration, seconds.
  double tmin = 0.0;
  /// Nominal dynamic energy at V_max, joules.
  double e_nom = 0.0;
  /// True when the node's supply voltage may be lowered.
  bool scalable = false;
  /// Largest allowed stretch factor t/tmin (from the PE's lowest level).
  double max_slowdown = 1.0;
  /// Absolute latest-finish constraint (mode period and/or task deadline).
  double deadline = std::numeric_limits<double>::infinity();
};

/// The DAG. Node indices are positions in `nodes`.
struct DvsGraph {
  std::vector<DvsNode> nodes;
  std::vector<std::vector<int>> succs;
  std::vector<std::vector<int>> preds;
  /// Topological order (valid by construction).
  std::vector<int> topo;

  /// node index of each task (kTask) or of the task's *last* segment
  /// (tasks absorbed into a DVS-HW chain); index == task id.
  std::vector<int> task_node;
  /// node index of each non-local comm; -1 for local edges. index == edge id.
  std::vector<int> comm_node;
};

/// Builds the DVS graph from a mode schedule. `scale_hardware` enables the
/// Fig. 5 transformation for DVS hardware PEs; when false those PEs are
/// treated like fixed-voltage hardware (software-only DVS, the prior-work
/// baseline).
[[nodiscard]] DvsGraph build_dvs_graph(const Mode& mode,
                                       const ModeSchedule& schedule,
                                       const ModeMapping& mapping,
                                       const Architecture& arch,
                                       const TechLibrary& tech,
                                       bool scale_hardware = true);

}  // namespace mmsyn
