// DVS problem graph for one scheduled mode.
//
// The voltage-scaling algorithm (pv_dvs.hpp) operates on a DAG whose nodes
// are the *activities* of the mode's schedule — tasks, inter-PE
// communications, and, for DVS-enabled hardware PEs, the virtual sequential
// segments of the paper's Fig. 5 transformation — and whose edges encode
// both data precedence and resource execution order. Edges are constructed
// forward-in-schedule-time, which keeps the graph acyclic by construction.
//
// Fig. 5 transformation: all cores of a DVS hardware PE share one supply,
// so parallel tasks cannot be scaled independently. The PE's busy timeline
// is cut at every task start, task finish, and incoming-data arrival that
// falls inside a busy interval; each resulting slice becomes one *segment*
// node with power equal to the sum of the concurrently active core powers.
// Segments chain sequentially and inherit the tightest deadline of the
// tasks finishing at their end. Cutting at data-arrival instants guarantees
// that cross-PE edges attach to a segment starting no earlier than the
// arrival, i.e. edges never point backward in time.
//
// Layout (DESIGN.md §12): the graph is structure-of-arrays — one column
// per node attribute plus CSR adjacency — because the PV-DVS inner loop
// streams whole columns (tmin, deadline, adjacency) thousands of times per
// candidate. Per-node lists preserve edge emission order, so traversals
// visit neighbours in exactly the order the old vector-of-vectors layout
// did (bench/reference_kernels.cpp keeps that layout for the bit-compare).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "model/mapping.hpp"
#include "sched/schedule.hpp"

namespace mmsyn {

struct Mode;
class Architecture;
class TechLibrary;

/// Node kinds of the DVS graph.
enum class DvsNodeKind : std::uint8_t {
  kTask,     ///< a task on a software PE or non-DVS hardware PE
  kComm,     ///< an inter-PE communication on a CL
  kSegment,  ///< a Fig.-5 virtual segment of a DVS hardware PE
};

/// One activity node, gathered from the columnar graph (see
/// DvsGraph::node). Cold consumers (reports, audits, tests) use this view;
/// hot loops read the columns directly.
struct DvsNode {
  DvsNodeKind kind = DvsNodeKind::kTask;
  /// Task id (kTask), edge id (kComm), or per-PE segment ordinal (kSegment).
  int ref = -1;
  /// Owning resource: PE for tasks/segments, invalid for comms.
  PeId pe;
  /// Nominal (unscaled) duration, seconds.
  double tmin = 0.0;
  /// Nominal dynamic energy at V_max, joules.
  double e_nom = 0.0;
  /// True when the node's supply voltage may be lowered.
  bool scalable = false;
  /// Largest allowed stretch factor t/tmin (from the PE's lowest level).
  double max_slowdown = 1.0;
  /// Absolute latest-finish constraint (mode period and/or task deadline).
  double deadline = std::numeric_limits<double>::infinity();
};

/// The DAG, structure-of-arrays. Node indices are positions in the
/// columns; all node columns have node_count() entries.
struct DvsGraph {
  // ---- Node columns. ----------------------------------------------------
  std::vector<std::uint8_t> kind;          // DvsNodeKind
  std::vector<std::int32_t> ref;
  std::vector<std::int32_t> pe;            // PE index; -1 == invalid (comms)
  std::vector<double> tmin;
  std::vector<double> e_nom;
  std::vector<std::uint8_t> scalable;      // bool
  std::vector<double> max_slowdown;
  std::vector<double> deadline;

  // ---- CSR adjacency (per-node lists in edge emission order). -----------
  std::vector<std::int32_t> succ_off;      // node_count()+1 offsets
  std::vector<std::int32_t> succ_adj;
  std::vector<std::int32_t> pred_off;
  std::vector<std::int32_t> pred_adj;

  /// Topological order (valid by construction).
  std::vector<std::int32_t> topo;

  /// node index of each task (kTask) or of the task's *last* segment
  /// (tasks absorbed into a DVS-HW chain); index == task id.
  std::vector<std::int32_t> task_node;
  /// node index of each non-local comm; -1 for local edges. index == edge id.
  std::vector<std::int32_t> comm_node;

  [[nodiscard]] std::size_t node_count() const { return tmin.size(); }

  [[nodiscard]] std::span<const std::int32_t> succs(std::size_t u) const {
    return {succ_adj.data() + succ_off[u],
            static_cast<std::size_t>(succ_off[u + 1] - succ_off[u])};
  }
  [[nodiscard]] std::span<const std::int32_t> preds(std::size_t u) const {
    return {pred_adj.data() + pred_off[u],
            static_cast<std::size_t>(pred_off[u + 1] - pred_off[u])};
  }

  /// Gathers node `i`'s columns into the row view.
  [[nodiscard]] DvsNode node(std::size_t i) const {
    DvsNode n;
    n.kind = static_cast<DvsNodeKind>(kind[i]);
    n.ref = ref[i];
    n.pe = pe[i] >= 0 ? PeId{static_cast<PeId::value_type>(pe[i])}
                      : PeId::invalid();
    n.tmin = tmin[i];
    n.e_nom = e_nom[i];
    n.scalable = scalable[i] != 0;
    n.max_slowdown = max_slowdown[i];
    n.deadline = deadline[i];
    return n;
  }
};

/// Builds the DVS graph from a mode schedule. `scale_hardware` enables the
/// Fig. 5 transformation for DVS hardware PEs; when false those PEs are
/// treated like fixed-voltage hardware (software-only DVS, the prior-work
/// baseline).
[[nodiscard]] DvsGraph build_dvs_graph(const Mode& mode,
                                       const ModeSchedule& schedule,
                                       const ModeMapping& mapping,
                                       const Architecture& arch,
                                       const TechLibrary& tech,
                                       bool scale_hardware = true);

}  // namespace mmsyn
