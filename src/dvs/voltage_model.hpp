// Supply-voltage ↔ delay/energy model (α-power law).
//
// The paper's energy equation (Section 3) gives the dynamic energy of a
// scaled task as E = P_max · t_min · (V_dd / V_max)²; the execution time
// grows with the standard α-power delay model
//   t(V) = t_min · (V / V_max) · ((V_max − V_t) / (V − V_t))^α,  α = 2.
// This header packages both directions (voltage → slowdown/energy and
// slowdown → voltage) for one PE's electrical parameters.
#pragma once

namespace mmsyn {

/// Electrical model of one DVS-capable PE.
class VoltageModel {
public:
  /// `vmax` nominal supply, `vt` threshold voltage (0 < vt < vmax),
  /// `alpha` velocity-saturation exponent (2.0 = classic long-channel).
  VoltageModel(double vmax, double vt, double alpha = 2.0);

  [[nodiscard]] double vmax() const { return vmax_; }
  [[nodiscard]] double vt() const { return vt_; }

  /// Execution-time stretch factor t(v)/t_min; 1 at v == vmax, increasing
  /// as v decreases. Requires vt < v <= vmax.
  [[nodiscard]] double slowdown(double v) const;

  /// Dynamic-energy scale factor (v/vmax)².
  [[nodiscard]] double energy_factor(double v) const;

  /// Inverse of slowdown(): the supply voltage that stretches execution by
  /// factor `s` >= 1 (clamped to vmax when s <= 1). Monotone bisection.
  [[nodiscard]] double voltage_for_slowdown(double s) const;

  /// Largest usable stretch factor given the lowest supply level `vmin`.
  [[nodiscard]] double max_slowdown(double vmin) const { return slowdown(vmin); }

private:
  double vmax_;
  double vt_;
  double alpha_;
};

}  // namespace mmsyn
