#include "dvs/voltage_schedule.hpp"

#include <cassert>
#include <sstream>

#include "dvs/voltage_model.hpp"
#include "model/architecture.hpp"

namespace mmsyn {

VoltageSchedule derive_voltage_schedule(const DvsGraph& graph,
                                        const PvDvsResult& result,
                                        const Architecture& arch) {
  VoltageSchedule schedule;
  schedule.activities.resize(graph.node_count());

  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    const DvsNode node = graph.node(i);
    ActivityVoltageSchedule& activity = schedule.activities[i];
    activity.kind = node.kind;
    activity.ref = node.ref;
    activity.pe = node.pe;
    if (node.tmin <= 0.0) continue;  // zero-work activity: no slices

    if (!node.scalable || !node.pe.valid()) {
      const double v =
          node.pe.valid() ? arch.pe(node.pe).vmax() : 0.0;
      activity.slices.push_back({v, node.tmin, 1.0});
      continue;
    }

    const Pe& pe = arch.pe(node.pe);
    const VoltageModel model(pe.vmax(), pe.threshold_voltage);
    const double target = result.scaled_time[i];
    auto time_at = [&](double v) { return node.tmin * model.slowdown(v); };

    if (target <= node.tmin * (1.0 + 1e-12)) {
      activity.slices.push_back({pe.vmax(), node.tmin, 1.0});
      continue;
    }
    if (time_at(pe.vmin()) <= target) {
      // Even the lowest level finishes early; idle the remainder.
      activity.slices.push_back({pe.vmin(), time_at(pe.vmin()), 1.0});
      continue;
    }
    // Find the adjacent level pair bracketing the target time and split
    // the workload so the slice durations sum to the target exactly.
    const auto& levels = pe.voltage_levels;
    for (std::size_t l = levels.size() - 1; l > 0; --l) {
      const double v_hi = levels[l];
      const double v_lo = levels[l - 1];
      const double t_hi = time_at(v_hi);
      const double t_lo = time_at(v_lo);
      if (t_hi <= target && target <= t_lo) {
        const double w = (t_lo - target) / (t_lo - t_hi);
        if (w >= 1.0 - 1e-12) {
          activity.slices.push_back({v_hi, t_hi, 1.0});
        } else if (w <= 1e-12) {
          activity.slices.push_back({v_lo, t_lo, 1.0});
        } else {
          activity.slices.push_back({v_hi, w * t_hi, w});
          activity.slices.push_back({v_lo, (1.0 - w) * t_lo, 1.0 - w});
        }
        break;
      }
    }
    assert(!activity.slices.empty() && "target time outside level range");
  }
  return schedule;
}

std::string VoltageSchedule::to_string(const Architecture& arch) const {
  std::ostringstream os;
  for (const ActivityVoltageSchedule& a : activities) {
    switch (a.kind) {
      case DvsNodeKind::kTask: os << "task " << a.ref; break;
      case DvsNodeKind::kComm: os << "comm " << a.ref; break;
      case DvsNodeKind::kSegment: os << "segment " << a.ref; break;
    }
    if (a.pe.valid()) os << " on " << arch.pe(a.pe).name;
    os << ":";
    if (a.slices.empty()) os << " (no work)";
    for (const VoltageSlice& s : a.slices) {
      os << " [" << s.voltage << " V for " << s.duration * 1e3 << " ms, "
         << s.workload_fraction * 100.0 << "% of work]";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace mmsyn
