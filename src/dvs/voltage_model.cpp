#include "dvs/voltage_model.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace mmsyn {

VoltageModel::VoltageModel(double vmax, double vt, double alpha)
    : vmax_(vmax), vt_(vt), alpha_(alpha) {
  if (!(vmax > 0.0) || !(vt >= 0.0) || !(vt < vmax))
    throw std::invalid_argument("VoltageModel: require 0 <= vt < vmax");
  if (!(alpha > 0.0))
    throw std::invalid_argument("VoltageModel: alpha must be positive");
}

double VoltageModel::slowdown(double v) const {
  assert(v > vt_ && v <= vmax_ + 1e-12);
  if (alpha_ == 2.0) {  // hot path: classic quadratic α-power law
    const double a = vmax_ - vt_;
    const double b = v - vt_;
    return v * a * a / (vmax_ * b * b);
  }
  const double num = v * std::pow(vmax_ - vt_, alpha_);
  const double den = vmax_ * std::pow(v - vt_, alpha_);
  return num / den;
}

double VoltageModel::energy_factor(double v) const {
  const double r = v / vmax_;
  return r * r;
}

double VoltageModel::voltage_for_slowdown(double s) const {
  if (s <= 1.0) return vmax_;
  // slowdown() is strictly decreasing in v on (vt, vmax]; bisect.
  double lo = vt_ + 1e-9 * (vmax_ - vt_);
  double hi = vmax_;
  if (slowdown(lo) < s) return lo;  // stretch beyond physical range: clamp
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (slowdown(mid) > s) lo = mid;
    else hi = mid;
    if (hi - lo < 1e-9 * vmax_) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace mmsyn
