#include "dvs/voltage_model.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace mmsyn {

VoltageModel::VoltageModel(double vmax, double vt, double alpha)
    : vmax_(vmax), vt_(vt), alpha_(alpha) {
  if (!(vmax > 0.0) || !(vt >= 0.0) || !(vt < vmax))
    throw std::invalid_argument("VoltageModel: require 0 <= vt < vmax");
  if (!(alpha > 0.0))
    throw std::invalid_argument("VoltageModel: alpha must be positive");
}

double VoltageModel::slowdown(double v) const {
  assert(v > vt_ && v <= vmax_ + 1e-12);
  if (alpha_ == 2.0) {  // hot path: classic quadratic α-power law
    const double a = vmax_ - vt_;
    const double b = v - vt_;
    return v * a * a / (vmax_ * b * b);
  }
  const double num = v * std::pow(vmax_ - vt_, alpha_);
  const double den = vmax_ * std::pow(v - vt_, alpha_);
  return num / den;
}

double VoltageModel::energy_factor(double v) const {
  const double r = v / vmax_;
  return r * r;
}

double VoltageModel::voltage_for_slowdown(double s) const {
  if (s <= 1.0) return vmax_;
  const double lo = vt_ + 1e-9 * (vmax_ - vt_);
  if (alpha_ == 2.0) {
    // Closed form (DESIGN.md §12): with c = s·vmax/(vmax−vt)², the defining
    // equation s = slowdown(v) becomes c·(v−vt)² = v, a quadratic whose
    // roots multiply to vt² — exactly one lies above vt. Its discriminant
    // (2c·vt+1)² − 4c²·vt² telescopes to 4c·vt + 1, so the physical root is
    //   v = (2c·vt + 1 + sqrt(4c·vt + 1)) / (2c),
    // computed from sums of positives (no cancellation). This lands within
    // an ulp of the true inverse — tighter than the 1e-9·vmax bisection it
    // replaced — at a fraction of the cost (the bisection's ~30 dependent
    // divides bounded the whole PV-DVS gradient loop).
    const double a = vmax_ - vt_;
    const double c = s * vmax_ / (a * a);
    const double v = (2.0 * c * vt_ + 1.0 + std::sqrt(4.0 * c * vt_ + 1.0)) /
                     (2.0 * c);
    return std::min(std::max(v, lo), vmax_);
  }
  // General α: slowdown() is strictly decreasing in v on (vt, vmax]; bisect.
  double blo = lo;
  double bhi = vmax_;
  if (slowdown(blo) < s) return blo;  // stretch beyond physical range: clamp
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (blo + bhi);
    if (slowdown(mid) > s) blo = mid;
    else bhi = mid;
    if (bhi - blo < 1e-9 * vmax_) break;
  }
  return 0.5 * (blo + bhi);
}

}  // namespace mmsyn
