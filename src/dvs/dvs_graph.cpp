#include "dvs/dvs_graph.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

#include "dvs/voltage_model.hpp"
#include "model/architecture.hpp"
#include "model/omsm.hpp"
#include "model/tech_library.hpp"

namespace mmsyn {
namespace {

/// True when the PE's tasks can actually be voltage-scaled.
bool pe_scalable(const Pe& pe) {
  return pe.dvs_enabled && pe.voltage_levels.size() >= 2;
}

double pe_max_slowdown(const Pe& pe) {
  if (!pe_scalable(pe)) return 1.0;
  return VoltageModel(pe.vmax(), pe.threshold_voltage).slowdown(pe.vmin());
}

/// Per-PE segment bookkeeping produced by the Fig. 5 transformation.
/// Columnar (start/end/node) so the arrival lookup can lower_bound the
/// starts directly.
struct PeSegments {
  std::vector<double> start;   // time-ordered, ascending
  std::vector<double> end;
  std::vector<std::int32_t> node;  // DvsGraph node index
  std::vector<std::int32_t> task_first;  // per task id on this PE, or -1
  std::vector<std::int32_t> task_last;

  [[nodiscard]] std::size_t count() const { return start.size(); }
};

}  // namespace

DvsGraph build_dvs_graph(const Mode& mode, const ModeSchedule& schedule,
                         const ModeMapping& mapping, const Architecture& arch,
                         const TechLibrary& tech, bool scale_hardware) {
  (void)mapping;  // PEs come from the schedule; kept for interface symmetry
  const TaskGraph& graph = mode.graph;
  const std::size_t n_tasks = graph.task_count();
  const std::size_t n_edges = graph.edge_count();
  const std::size_t P = arch.pe_count();
  const double eps = 1e-9 * std::max(1.0, schedule.makespan);

  DvsGraph g;
  g.task_node.assign(n_tasks, -1);
  g.comm_node.assign(n_edges, -1);

  auto task_limit = [&](TaskId t) {
    double limit = mode.period;
    if (const auto& dl = graph.task(t).deadline)
      limit = std::min(limit, *dl);
    return limit;
  };

  auto add_node = [&](DvsNodeKind kind, int ref, PeId pe, double tmin,
                      double e_nom, bool scalable, double max_slowdown,
                      double deadline) {
    g.kind.push_back(static_cast<std::uint8_t>(kind));
    g.ref.push_back(ref);
    g.pe.push_back(pe.valid() ? static_cast<std::int32_t>(pe.index()) : -1);
    g.tmin.push_back(tmin);
    g.e_nom.push_back(e_nom);
    g.scalable.push_back(scalable ? 1 : 0);
    g.max_slowdown.push_back(max_slowdown);
    g.deadline.push_back(deadline);
    return static_cast<std::int32_t>(g.node_count() - 1);
  };
  // Edges are collected in emission order and packed into CSR at the end
  // with a stable counting sort, so per-node neighbour order matches the
  // old vector-of-vectors push_back order exactly.
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  auto add_edge = [&](std::int32_t u, std::int32_t v) {
    if (u == v) return;
    edges.emplace_back(u, v);
  };

  // ---- Classify PEs; group hosted tasks per PE in one pass. -------------
  std::vector<std::uint8_t> is_dvs_hw(P, 0);
  for (std::size_t p = 0; p < P; ++p) {
    const Pe& pe = arch.pe(PeId{static_cast<PeId::value_type>(p)});
    is_dvs_hw[p] =
        (scale_hardware && is_hardware(pe.kind) && pe_scalable(pe)) ? 1 : 0;
  }
  std::vector<std::vector<std::int32_t>> hosted_by_pe(P);
  for (std::size_t t = 0; t < n_tasks; ++t)
    hosted_by_pe[schedule.tasks[t].pe.index()].push_back(
        static_cast<std::int32_t>(t));

  // ---- Task nodes for non-DVS-HW PEs. -----------------------------------
  for (std::size_t t = 0; t < n_tasks; ++t) {
    const TaskId id{static_cast<TaskId::value_type>(t)};
    const ScheduledTask& st = schedule.tasks[t];
    if (is_dvs_hw[st.pe.index()]) continue;  // becomes segments below
    const Pe& pe = arch.pe(st.pe);
    const Implementation& impl = tech.require(graph.task(id).type, st.pe);
    const bool scalable = is_software(pe.kind) && pe_scalable(pe);
    g.task_node[t] = add_node(
        DvsNodeKind::kTask, static_cast<int>(t), st.pe, st.duration(),
        impl.energy(), scalable, scalable ? pe_max_slowdown(pe) : 1.0,
        task_limit(id));
  }

  // ---- Fig. 5 transformation for each DVS hardware PE. ------------------
  std::vector<PeSegments> pe_segments(P);
  for (std::size_t pi = 0; pi < P; ++pi) {
    if (!is_dvs_hw[pi]) continue;
    const PeId p{static_cast<PeId::value_type>(pi)};
    PeSegments& ps = pe_segments[pi];
    ps.task_first.assign(n_tasks, -1);
    ps.task_last.assign(n_tasks, -1);

    const std::vector<std::int32_t>& hosted = hosted_by_pe[pi];
    if (hosted.empty()) continue;

    // Cut points: task starts/finishes plus in-flight data arrivals.
    std::vector<double> cuts;
    cuts.reserve(2 * hosted.size());
    for (std::int32_t t : hosted) {
      cuts.push_back(schedule.tasks[static_cast<std::size_t>(t)].start);
      cuts.push_back(schedule.tasks[static_cast<std::size_t>(t)].finish);
    }
    for (std::size_t e = 0; e < n_edges; ++e) {
      const TaskEdge& edge = graph.edge(EdgeId{static_cast<EdgeId::value_type>(e)});
      if (schedule.tasks[edge.dst.index()].pe != p) continue;
      const ScheduledComm& comm = schedule.comms[e];
      if (!comm.local) cuts.push_back(comm.finish);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end(),
                           [&](double a, double b) { return b - a < eps; }),
               cuts.end());

    const Pe& pe = arch.pe(p);
    const double slowdown_cap = pe_max_slowdown(pe);

    // Build segments: each [cuts[i], cuts[i+1]) slice with >= 1 active task.
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      const double a = cuts[i];
      const double b = cuts[i + 1];
      double power = 0.0;
      double deadline = mode.period;
      bool any_active = false;
      for (std::int32_t t : hosted) {
        const ScheduledTask& st = schedule.tasks[static_cast<std::size_t>(t)];
        if (st.start <= a + eps && st.finish >= b - eps) {
          any_active = true;
          const TaskId id{static_cast<TaskId::value_type>(t)};
          power += tech.require(graph.task(id).type, p).dyn_power;
          if (std::abs(st.finish - b) < eps)
            deadline = std::min(deadline, task_limit(id));
        }
      }
      if (!any_active) continue;  // idle gap

      const std::int32_t idx = add_node(
          DvsNodeKind::kSegment, static_cast<int>(ps.count()), p, b - a,
          power * (b - a), true, slowdown_cap, deadline);
      ps.start.push_back(a);
      ps.end.push_back(b);
      ps.node.push_back(idx);
    }

    // Map tasks to their first/last segments and chain the segments.
    for (std::int32_t t : hosted) {
      const auto ti = static_cast<std::size_t>(t);
      const ScheduledTask& st = schedule.tasks[ti];
      for (std::size_t s = 0; s < ps.count(); ++s) {
        if (std::abs(ps.start[s] - st.start) < eps && ps.task_first[ti] == -1)
          ps.task_first[ti] = static_cast<std::int32_t>(s);
        if (std::abs(ps.end[s] - st.finish) < eps)
          ps.task_last[ti] = static_cast<std::int32_t>(s);
      }
      assert(ps.task_first[ti] >= 0 && ps.task_last[ti] >= 0);
      g.task_node[ti] =
          ps.node[static_cast<std::size_t>(ps.task_last[ti])];
    }
    for (std::size_t s = 0; s + 1 < ps.count(); ++s)
      add_edge(ps.node[s], ps.node[s + 1]);
  }

  // ---- Communication nodes. ---------------------------------------------
  for (std::size_t e = 0; e < n_edges; ++e) {
    const ScheduledComm& comm = schedule.comms[e];
    if (comm.local) continue;
    g.comm_node[e] = add_node(
        DvsNodeKind::kComm, static_cast<int>(e), PeId::invalid(),
        comm.duration(),
        comm.cl.valid() ? arch.cl(comm.cl).transfer_power * comm.duration()
                        : 0.0,
        false, 1.0, mode.period);
  }

  // ---- Data-precedence edges. -------------------------------------------
  auto in_node_for = [&](TaskId dst, double arrival) {
    const ScheduledTask& st = schedule.tasks[dst.index()];
    if (!is_dvs_hw[st.pe.index()]) return g.task_node[dst.index()];
    // Earliest segment starting at/after the arrival; never later than the
    // task's own first segment (the arrival instant is a cut point).
    // Segment starts are ascending, so this is a binary search.
    const PeSegments& ps = pe_segments[st.pe.index()];
    const auto it = std::lower_bound(ps.start.begin(), ps.start.end(),
                                     arrival - eps);
    if (it != ps.start.end())
      return ps.node[static_cast<std::size_t>(it - ps.start.begin())];
    return g.task_node[dst.index()];
  };

  for (std::size_t e = 0; e < n_edges; ++e) {
    const TaskEdge& edge = graph.edge(EdgeId{static_cast<EdgeId::value_type>(e)});
    const std::int32_t out_node = g.task_node[edge.src.index()];
    const ScheduledComm& comm = schedule.comms[e];
    if (comm.local) {
      add_edge(out_node, in_node_for(edge.dst, comm.finish));
    } else {
      const std::int32_t cn = g.comm_node[e];
      add_edge(out_node, cn);
      add_edge(cn, in_node_for(edge.dst, comm.finish));
    }
  }

  // ---- Resource execution-order edges. ----------------------------------
  // Software PEs and non-DVS hardware cores: chain by start time.
  for (std::size_t pi = 0; pi < P; ++pi) {
    if (is_dvs_hw[pi]) continue;  // already chained as segments
    const PeId p{static_cast<PeId::value_type>(pi)};
    const Pe& pe = arch.pe(p);
    if (is_software(pe.kind)) {
      std::vector<std::int32_t> hosted = hosted_by_pe[pi];
      std::sort(hosted.begin(), hosted.end(),
                [&](std::int32_t a, std::int32_t b) {
                  return schedule.tasks[static_cast<std::size_t>(a)].start <
                         schedule.tasks[static_cast<std::size_t>(b)].start;
                });
      for (std::size_t i = 0; i + 1 < hosted.size(); ++i)
        add_edge(g.task_node[static_cast<std::size_t>(hosted[i])],
                 g.task_node[static_cast<std::size_t>(hosted[i + 1])]);
    } else {
      // Group by (task type, core instance); chain within each core.
      std::map<std::pair<TaskTypeId, int>, std::vector<std::int32_t>> groups;
      for (std::int32_t t : hosted_by_pe[pi]) {
        const auto ti = static_cast<std::size_t>(t);
        const TaskId id{static_cast<TaskId::value_type>(t)};
        groups[{graph.task(id).type, schedule.tasks[ti].core_instance}]
            .push_back(t);
      }
      for (auto& [key, hosted] : groups) {
        std::sort(hosted.begin(), hosted.end(),
                  [&](std::int32_t a, std::int32_t b) {
                    return schedule.tasks[static_cast<std::size_t>(a)].start <
                           schedule.tasks[static_cast<std::size_t>(b)].start;
                  });
        for (std::size_t i = 0; i + 1 < hosted.size(); ++i)
          add_edge(g.task_node[static_cast<std::size_t>(hosted[i])],
                   g.task_node[static_cast<std::size_t>(hosted[i + 1])]);
      }
    }
  }
  // Communication links: chain transfers per CL.
  for (ClId c : arch.cl_ids()) {
    std::vector<std::size_t> on_link;
    for (std::size_t e = 0; e < n_edges; ++e)
      if (!schedule.comms[e].local && schedule.comms[e].cl == c)
        on_link.push_back(e);
    std::sort(on_link.begin(), on_link.end(), [&](std::size_t a, std::size_t b) {
      return schedule.comms[a].start < schedule.comms[b].start;
    });
    for (std::size_t i = 0; i + 1 < on_link.size(); ++i)
      add_edge(g.comm_node[on_link[i]], g.comm_node[on_link[i + 1]]);
  }

  // ---- Pack the edge list into CSR (stable counting sort). --------------
  const std::size_t n = g.node_count();
  g.succ_off.assign(n + 1, 0);
  g.pred_off.assign(n + 1, 0);
  for (const auto& [u, v] : edges) {
    ++g.succ_off[static_cast<std::size_t>(u) + 1];
    ++g.pred_off[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t u = 0; u < n; ++u) {
    g.succ_off[u + 1] += g.succ_off[u];
    g.pred_off[u + 1] += g.pred_off[u];
  }
  g.succ_adj.resize(edges.size());
  g.pred_adj.resize(edges.size());
  std::vector<std::int32_t> scur(g.succ_off.begin(), g.succ_off.end() - 1);
  std::vector<std::int32_t> pcur(g.pred_off.begin(), g.pred_off.end() - 1);
  for (const auto& [u, v] : edges) {
    g.succ_adj[static_cast<std::size_t>(scur[static_cast<std::size_t>(u)]++)] = v;
    g.pred_adj[static_cast<std::size_t>(pcur[static_cast<std::size_t>(v)]++)] = u;
  }

  // ---- Topological order (Kahn, FIFO frontier). -------------------------
  std::vector<std::int32_t> indegree(n);
  for (std::size_t u = 0; u < n; ++u)
    indegree[u] = g.pred_off[u + 1] - g.pred_off[u];
  g.topo.reserve(n);
  std::vector<std::int32_t> frontier;
  for (std::size_t u = 0; u < n; ++u)
    if (indegree[u] == 0) frontier.push_back(static_cast<std::int32_t>(u));
  std::size_t cursor = 0;
  while (cursor < frontier.size()) {
    const std::int32_t u = frontier[cursor++];
    g.topo.push_back(u);
    for (std::int32_t v : g.succs(static_cast<std::size_t>(u)))
      if (--indegree[static_cast<std::size_t>(v)] == 0) frontier.push_back(v);
  }
  if (g.topo.size() != n)
    throw std::logic_error("build_dvs_graph: constructed graph is cyclic");
  return g;
}

}  // namespace mmsyn
