#include "dvs/dvs_graph.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <stdexcept>

#include "dvs/voltage_model.hpp"
#include "model/architecture.hpp"
#include "model/omsm.hpp"
#include "model/tech_library.hpp"

namespace mmsyn {
namespace {

/// True when the PE's tasks can actually be voltage-scaled.
bool pe_scalable(const Pe& pe) {
  return pe.dvs_enabled && pe.voltage_levels.size() >= 2;
}

double pe_max_slowdown(const Pe& pe) {
  if (!pe_scalable(pe)) return 1.0;
  return VoltageModel(pe.vmax(), pe.threshold_voltage).slowdown(pe.vmin());
}

/// Per-PE segment bookkeeping produced by the Fig. 5 transformation.
struct PeSegments {
  struct Segment {
    double start;
    double end;
    int node = -1;  // DvsGraph node index
  };
  std::vector<Segment> segments;          // time-ordered
  std::vector<int> task_first;            // per task id on this PE, or -1
  std::vector<int> task_last;
};

}  // namespace

DvsGraph build_dvs_graph(const Mode& mode, const ModeSchedule& schedule,
                         const ModeMapping& mapping, const Architecture& arch,
                         const TechLibrary& tech, bool scale_hardware) {
  (void)mapping;  // PEs come from the schedule; kept for interface symmetry
  const TaskGraph& graph = mode.graph;
  const std::size_t n_tasks = graph.task_count();
  const std::size_t n_edges = graph.edge_count();
  const double eps = 1e-9 * std::max(1.0, schedule.makespan);

  DvsGraph g;
  g.task_node.assign(n_tasks, -1);
  g.comm_node.assign(n_edges, -1);

  auto task_limit = [&](TaskId t) {
    double limit = mode.period;
    if (const auto& dl = graph.task(t).deadline)
      limit = std::min(limit, *dl);
    return limit;
  };

  auto add_node = [&](DvsNode node) {
    g.nodes.push_back(node);
    g.succs.emplace_back();
    g.preds.emplace_back();
    return static_cast<int>(g.nodes.size() - 1);
  };
  auto add_edge = [&](int u, int v) {
    if (u == v) return;
    g.succs[static_cast<std::size_t>(u)].push_back(v);
    g.preds[static_cast<std::size_t>(v)].push_back(u);
  };

  // ---- Classify PEs and create task nodes for non-DVS-HW PEs. ----------
  std::vector<bool> is_dvs_hw(arch.pe_count(), false);
  for (PeId p : arch.pe_ids()) {
    const Pe& pe = arch.pe(p);
    is_dvs_hw[p.index()] =
        scale_hardware && is_hardware(pe.kind) && pe_scalable(pe);
  }

  for (std::size_t t = 0; t < n_tasks; ++t) {
    const TaskId id{static_cast<TaskId::value_type>(t)};
    const ScheduledTask& st = schedule.tasks[t];
    if (is_dvs_hw[st.pe.index()]) continue;  // becomes segments below
    const Pe& pe = arch.pe(st.pe);
    const Implementation& impl = tech.require(graph.task(id).type, st.pe);
    DvsNode node;
    node.kind = DvsNodeKind::kTask;
    node.ref = static_cast<int>(t);
    node.pe = st.pe;
    node.tmin = st.duration();
    node.e_nom = impl.energy();
    node.scalable = is_software(pe.kind) && pe_scalable(pe);
    node.max_slowdown = node.scalable ? pe_max_slowdown(pe) : 1.0;
    node.deadline = task_limit(id);
    g.task_node[t] = add_node(node);
  }

  // ---- Fig. 5 transformation for each DVS hardware PE. ------------------
  std::vector<PeSegments> pe_segments(arch.pe_count());
  for (PeId p : arch.pe_ids()) {
    if (!is_dvs_hw[p.index()]) continue;
    PeSegments& ps = pe_segments[p.index()];
    ps.task_first.assign(n_tasks, -1);
    ps.task_last.assign(n_tasks, -1);

    // Tasks hosted on this PE, with their nominal powers.
    std::vector<std::size_t> hosted;
    for (std::size_t t = 0; t < n_tasks; ++t)
      if (schedule.tasks[t].pe == p) hosted.push_back(t);
    if (hosted.empty()) continue;

    // Cut points: task starts/finishes plus in-flight data arrivals.
    std::vector<double> cuts;
    for (std::size_t t : hosted) {
      cuts.push_back(schedule.tasks[t].start);
      cuts.push_back(schedule.tasks[t].finish);
    }
    for (std::size_t e = 0; e < n_edges; ++e) {
      const TaskEdge& edge = graph.edge(EdgeId{static_cast<EdgeId::value_type>(e)});
      if (schedule.tasks[edge.dst.index()].pe != p) continue;
      const ScheduledComm& comm = schedule.comms[e];
      if (!comm.local) cuts.push_back(comm.finish);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end(),
                           [&](double a, double b) { return b - a < eps; }),
               cuts.end());

    const Pe& pe = arch.pe(p);
    const double slowdown_cap = pe_max_slowdown(pe);

    // Build segments: each [cuts[i], cuts[i+1]) slice with >= 1 active task.
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      const double a = cuts[i];
      const double b = cuts[i + 1];
      double power = 0.0;
      double deadline = mode.period;
      bool any_active = false;
      for (std::size_t t : hosted) {
        const ScheduledTask& st = schedule.tasks[t];
        if (st.start <= a + eps && st.finish >= b - eps) {
          any_active = true;
          const TaskId id{static_cast<TaskId::value_type>(t)};
          power += tech.require(graph.task(id).type, p).dyn_power;
          if (std::abs(st.finish - b) < eps)
            deadline = std::min(deadline, task_limit(id));
        }
      }
      if (!any_active) continue;  // idle gap

      DvsNode node;
      node.kind = DvsNodeKind::kSegment;
      node.ref = static_cast<int>(ps.segments.size());
      node.pe = p;
      node.tmin = b - a;
      node.e_nom = power * (b - a);
      node.scalable = true;
      node.max_slowdown = slowdown_cap;
      node.deadline = deadline;
      const int idx = add_node(node);
      ps.segments.push_back({a, b, idx});
    }

    // Map tasks to their first/last segments and chain the segments.
    for (std::size_t t : hosted) {
      const ScheduledTask& st = schedule.tasks[t];
      for (std::size_t s = 0; s < ps.segments.size(); ++s) {
        const auto& seg = ps.segments[s];
        if (std::abs(seg.start - st.start) < eps && ps.task_first[t] == -1)
          ps.task_first[t] = static_cast<int>(s);
        if (std::abs(seg.end - st.finish) < eps)
          ps.task_last[t] = static_cast<int>(s);
      }
      assert(ps.task_first[t] >= 0 && ps.task_last[t] >= 0);
      g.task_node[t] = ps.segments[static_cast<std::size_t>(ps.task_last[t])].node;
    }
    for (std::size_t s = 0; s + 1 < ps.segments.size(); ++s)
      add_edge(ps.segments[s].node, ps.segments[s + 1].node);
  }

  // ---- Communication nodes. ---------------------------------------------
  for (std::size_t e = 0; e < n_edges; ++e) {
    const ScheduledComm& comm = schedule.comms[e];
    if (comm.local) continue;
    DvsNode node;
    node.kind = DvsNodeKind::kComm;
    node.ref = static_cast<int>(e);
    node.pe = PeId::invalid();
    node.tmin = comm.duration();
    node.e_nom = comm.cl.valid()
                     ? arch.cl(comm.cl).transfer_power * comm.duration()
                     : 0.0;
    node.scalable = false;
    node.max_slowdown = 1.0;
    node.deadline = mode.period;
    g.comm_node[e] = add_node(node);
  }

  // ---- Data-precedence edges. -------------------------------------------
  auto in_node_for = [&](TaskId dst, double arrival) {
    const ScheduledTask& st = schedule.tasks[dst.index()];
    if (!is_dvs_hw[st.pe.index()]) return g.task_node[dst.index()];
    // Earliest segment starting at/after the arrival; never later than the
    // task's own first segment (the arrival instant is a cut point).
    const PeSegments& ps = pe_segments[st.pe.index()];
    for (const auto& seg : ps.segments)
      if (seg.start >= arrival - eps) return seg.node;
    return g.task_node[dst.index()];
  };

  for (std::size_t e = 0; e < n_edges; ++e) {
    const TaskEdge& edge = graph.edge(EdgeId{static_cast<EdgeId::value_type>(e)});
    const int out_node = g.task_node[edge.src.index()];
    const ScheduledComm& comm = schedule.comms[e];
    if (comm.local) {
      add_edge(out_node, in_node_for(edge.dst, comm.finish));
    } else {
      const int cn = g.comm_node[e];
      add_edge(out_node, cn);
      add_edge(cn, in_node_for(edge.dst, comm.finish));
    }
  }

  // ---- Resource execution-order edges. ----------------------------------
  // Software PEs and non-DVS hardware cores: chain by start time.
  for (PeId p : arch.pe_ids()) {
    if (is_dvs_hw[p.index()]) continue;  // already chained as segments
    const Pe& pe = arch.pe(p);
    if (is_software(pe.kind)) {
      std::vector<std::size_t> hosted;
      for (std::size_t t = 0; t < n_tasks; ++t)
        if (schedule.tasks[t].pe == p) hosted.push_back(t);
      std::sort(hosted.begin(), hosted.end(), [&](std::size_t a, std::size_t b) {
        return schedule.tasks[a].start < schedule.tasks[b].start;
      });
      for (std::size_t i = 0; i + 1 < hosted.size(); ++i)
        add_edge(g.task_node[hosted[i]], g.task_node[hosted[i + 1]]);
    } else {
      // Group by (task type, core instance); chain within each core.
      std::map<std::pair<TaskTypeId, int>, std::vector<std::size_t>> groups;
      for (std::size_t t = 0; t < n_tasks; ++t) {
        const ScheduledTask& st = schedule.tasks[t];
        if (st.pe != p) continue;
        const TaskId id{static_cast<TaskId::value_type>(t)};
        groups[{graph.task(id).type, st.core_instance}].push_back(t);
      }
      for (auto& [key, hosted] : groups) {
        std::sort(hosted.begin(), hosted.end(),
                  [&](std::size_t a, std::size_t b) {
                    return schedule.tasks[a].start < schedule.tasks[b].start;
                  });
        for (std::size_t i = 0; i + 1 < hosted.size(); ++i)
          add_edge(g.task_node[hosted[i]], g.task_node[hosted[i + 1]]);
      }
    }
  }
  // Communication links: chain transfers per CL.
  for (ClId c : arch.cl_ids()) {
    std::vector<std::size_t> on_link;
    for (std::size_t e = 0; e < n_edges; ++e)
      if (!schedule.comms[e].local && schedule.comms[e].cl == c)
        on_link.push_back(e);
    std::sort(on_link.begin(), on_link.end(), [&](std::size_t a, std::size_t b) {
      return schedule.comms[a].start < schedule.comms[b].start;
    });
    for (std::size_t i = 0; i + 1 < on_link.size(); ++i)
      add_edge(g.comm_node[on_link[i]], g.comm_node[on_link[i + 1]]);
  }

  // ---- Topological order (Kahn). -----------------------------------------
  const std::size_t n = g.nodes.size();
  std::vector<std::size_t> indegree(n, 0);
  for (std::size_t u = 0; u < n; ++u)
    for (int v : g.succs[u]) indegree[static_cast<std::size_t>(v)]++;
  g.topo.reserve(n);
  std::vector<int> frontier;
  for (std::size_t u = 0; u < n; ++u)
    if (indegree[u] == 0) frontier.push_back(static_cast<int>(u));
  std::size_t cursor = 0;
  while (cursor < frontier.size()) {
    const int u = frontier[cursor++];
    g.topo.push_back(u);
    for (int v : g.succs[static_cast<std::size_t>(u)])
      if (--indegree[static_cast<std::size_t>(v)] == 0) frontier.push_back(v);
  }
  if (g.topo.size() != n)
    throw std::logic_error("build_dvs_graph: constructed graph is cyclic");
  return g;
}

}  // namespace mmsyn
