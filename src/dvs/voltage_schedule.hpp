// Explicit voltage schedules — the paper's fourth implementation function
// V_τ^O : T_DVS → V_π (Section 2.2).
//
// PV-DVS computes an ideal continuous voltage per activity; a real DVS
// component only offers discrete levels, so each scaled activity executes
// as one or two *slices* at adjacent levels whose combined duration equals
// the allotted time (the classic two-level theorem). This module turns a
// PvDvsResult into that explicit slice schedule, per task and — for DVS
// hardware — per Fig. 5 segment.
#pragma once

#include <string>
#include <vector>

#include "common/ids.hpp"
#include "dvs/dvs_graph.hpp"
#include "dvs/pv_dvs.hpp"

namespace mmsyn {

class Architecture;

/// One constant-voltage slice of an activity's execution.
struct VoltageSlice {
  double voltage = 0.0;   ///< supply level [V]
  double duration = 0.0;  ///< time spent at this level [s]
  /// Fraction of the activity's workload (cycles) executed in this slice.
  double workload_fraction = 1.0;
};

/// Voltage schedule of one DVS-graph node.
struct ActivityVoltageSchedule {
  DvsNodeKind kind = DvsNodeKind::kTask;
  /// Task id / edge id / segment ordinal (see DvsNode::ref).
  int ref = -1;
  PeId pe;
  /// One slice for unscaled or exactly-on-level execution; two when the
  /// ideal voltage falls between levels. Empty for zero-work activities.
  std::vector<VoltageSlice> slices;

  [[nodiscard]] double total_time() const {
    double t = 0.0;
    for (const VoltageSlice& s : slices) t += s.duration;
    return t;
  }
};

/// The whole mode's voltage schedule (index == DVS-graph node index).
struct VoltageSchedule {
  std::vector<ActivityVoltageSchedule> activities;

  /// Human-readable rendering for reports and debugging.
  [[nodiscard]] std::string to_string(const Architecture& arch) const;
};

/// Derives the explicit slice schedule from a PV-DVS result. For each
/// scalable node the slices realise `result.scaled_time[i]` exactly with
/// the PE's discrete levels (single slice at the lowest level when even it
/// finishes early); unscalable nodes get one nominal-voltage slice.
[[nodiscard]] VoltageSchedule derive_voltage_schedule(
    const DvsGraph& graph, const PvDvsResult& result,
    const Architecture& arch);

}  // namespace mmsyn
