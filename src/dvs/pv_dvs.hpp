// PV-DVS: greedy energy-gradient slack distribution (paper ref [10],
// extended to hardware cores via the Fig. 5 transformation in dvs_graph).
//
// Given the DVS graph of one scheduled mode, the algorithm repeatedly
// extends the scalable activity with the largest achievable energy gain,
// bounded by its path slack (deadlines, the mode period, and successor
// activities), until no worthwhile gain remains. Scaled supply voltages
// follow from the α-power delay model; the final energies account for the
// PE's *discrete* voltage levels by splitting each activity across the two
// levels adjacent to its ideal continuous voltage.
#pragma once

#include <vector>

#include "dvs/dvs_graph.hpp"

namespace mmsyn {

class Architecture;

/// Tuning knobs; the defaults suit final evaluation, the GA inner loop uses
/// coarser settings (see core/fitness).
struct PvDvsOptions {
  /// Iteration cap as a multiple of the scalable-node count.
  int max_iterations_per_node = 25;
  /// Fraction of the available slack consumed per greedy step.
  double step_fraction = 0.5;
  /// Stop when the best achievable step gain drops below this fraction of
  /// the initial total energy.
  double min_relative_gain = 1e-6;
  /// Account for discrete voltage levels (two-level splitting). When
  /// false, energies assume an ideal continuous supply.
  bool discrete_voltages = true;
  /// Scale DVS-enabled *hardware* PEs via the Fig. 5 transformation. When
  /// false only software processors scale — the prior-work behaviour
  /// (refs [5, 8, 10]) the paper's Section 4.2 extends.
  bool scale_hardware = true;
};

/// Result of voltage scaling one mode.
struct PvDvsResult {
  /// Scaled execution time per DVS-graph node (== tmin when unscaled).
  std::vector<double> scaled_time;
  /// Continuous supply voltage per node (PE V_max when unscaled; 0 for
  /// communications).
  std::vector<double> voltage;
  /// Dynamic energy per node after scaling (discrete-aware when enabled).
  std::vector<double> energy;
  /// Sum of `energy`.
  double total_energy = 0.0;
  /// Dynamic energy at nominal voltage (no scaling), for reporting.
  double nominal_energy = 0.0;
  /// True when every node's earliest finish meets its deadline after
  /// scaling (false indicates the unscaled schedule was already late).
  bool deadlines_met = true;
};

/// Runs the slack-distribution heuristic on `graph`.
///
/// `pe_idle_penalty` (optional) couples DVS with power-managed idle time:
/// a per-PE watts-equivalent opportunity cost of consuming slack on that
/// PE (see PowerModel::dvs_idle_penalty). When non-null it must index by
/// PE id; each candidate step's linearised gain is reduced by
/// penalty[pe] * step, steering slack away from PEs whose idle time a
/// sleep state would otherwise recover. Null (the default) is the exact
/// pre-existing behaviour.
[[nodiscard]] PvDvsResult run_pv_dvs(
    const DvsGraph& graph, const Architecture& arch,
    const PvDvsOptions& options = {},
    const std::vector<double>* pe_idle_penalty = nullptr);

/// Dynamic energy of one activity executed with an ideal continuous supply
/// stretched by factor `slowdown`; exposed for tests.
[[nodiscard]] double continuous_energy(double e_nom, double slowdown,
                                       double vmax, double vt);

/// Dynamic energy with a discrete level set: the activity is split across
/// the two levels adjacent to the ideal voltage so that it exactly fills
/// `target_time`. `levels` must be ascending with back() == vmax.
[[nodiscard]] double discrete_energy(double e_nom, double tmin,
                                     double target_time,
                                     const std::vector<double>& levels,
                                     double vt);

}  // namespace mmsyn
