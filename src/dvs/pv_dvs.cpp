#include "dvs/pv_dvs.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "dvs/voltage_model.hpp"
#include "model/architecture.hpp"

namespace mmsyn {

double continuous_energy(double e_nom, double slowdown, double vmax,
                         double vt) {
  if (slowdown <= 1.0) return e_nom;
  const VoltageModel model(vmax, vt);
  const double v = model.voltage_for_slowdown(slowdown);
  return e_nom * model.energy_factor(v);
}

double discrete_energy(double e_nom, double tmin, double target_time,
                       const std::vector<double>& levels, double vt) {
  assert(!levels.empty());
  const double vmax = levels.back();
  if (target_time <= tmin || levels.size() == 1) return e_nom;
  const VoltageModel model(vmax, vt);

  // Time and energy of running the whole activity at one level.
  auto time_at = [&](double v) { return tmin * model.slowdown(v); };
  auto energy_at = [&](double v) { return e_nom * model.energy_factor(v); };

  // If even the lowest level finishes within the target, use it outright
  // (the activity simply completes early).
  if (time_at(levels.front()) <= target_time)
    return energy_at(levels.front());

  // Find adjacent levels v_lo < v_hi with time_at(v_hi) <= target <
  // time_at(v_lo) and split the workload: fraction w at v_hi, (1-w) at
  // v_lo, chosen so the total time equals target_time exactly.
  for (std::size_t i = levels.size() - 1; i > 0; --i) {
    const double v_hi = levels[i];
    const double v_lo = levels[i - 1];
    const double t_hi = time_at(v_hi);
    const double t_lo = time_at(v_lo);
    if (t_hi <= target_time && target_time <= t_lo) {
      // Duplicate levels (normalised away by Architecture::add_pe, but
      // guarded here for direct callers) give a zero-width pair; the
      // whole activity then runs at that single level.
      if (t_lo - t_hi <= 0.0) return energy_at(v_hi);
      const double w = (t_lo - target_time) / (t_lo - t_hi);
      return w * energy_at(v_hi) + (1.0 - w) * energy_at(v_lo);
    }
  }
  // target_time < time at vmax can't happen (target >= tmin); fall back.
  return e_nom;
}

namespace {

struct NodeModel {
  double vmax = 0.0;
  double vt = 0.0;
  std::vector<double> levels;
};

/// Forward pass: earliest finish times under current durations.
void forward_pass(const DvsGraph& g, const std::vector<double>& t,
                  std::vector<double>& ef) {
  for (int u : g.topo) {
    const auto ui = static_cast<std::size_t>(u);
    double start = 0.0;
    for (int p : g.preds[ui])
      start = std::max(start, ef[static_cast<std::size_t>(p)]);
    ef[ui] = start + t[ui];
  }
}

/// Backward pass: latest allowed finish times under current durations.
void backward_pass(const DvsGraph& g, const std::vector<double>& t,
                   std::vector<double>& lf) {
  for (auto it = g.topo.rbegin(); it != g.topo.rend(); ++it) {
    const auto ui = static_cast<std::size_t>(*it);
    double limit = g.nodes[ui].deadline;
    for (int s : g.succs[ui]) {
      const auto si = static_cast<std::size_t>(s);
      limit = std::min(limit, lf[si] - t[si]);
    }
    lf[ui] = limit;
  }
}

}  // namespace

PvDvsResult run_pv_dvs(const DvsGraph& g, const Architecture& arch,
                       const PvDvsOptions& options) {
  const std::size_t n = g.nodes.size();
  PvDvsResult result;
  result.scaled_time.resize(n);
  result.voltage.assign(n, 0.0);
  result.energy.resize(n);

  std::vector<NodeModel> models(n);
  std::vector<int> scalable;
  for (std::size_t i = 0; i < n; ++i) {
    const DvsNode& node = g.nodes[i];
    result.scaled_time[i] = node.tmin;
    result.nominal_energy += node.e_nom;
    if (node.scalable && node.pe.valid()) {
      const Pe& pe = arch.pe(node.pe);
      models[i] = {pe.vmax(), pe.threshold_voltage, pe.voltage_levels};
      result.voltage[i] = pe.vmax();
      if (node.tmin > 0.0 && node.e_nom > 0.0)
        scalable.push_back(static_cast<int>(i));
    } else if (node.pe.valid()) {
      result.voltage[i] = arch.pe(node.pe).vmax();
    }
  }

  std::vector<double>& t = result.scaled_time;
  std::vector<double> ef(n, 0.0), lf(n, 0.0);

  auto node_energy_continuous = [&](std::size_t i, double ti) {
    const DvsNode& node = g.nodes[i];
    if (node.tmin <= 0.0) return node.e_nom;
    return continuous_energy(node.e_nom, ti / node.tmin, models[i].vmax,
                             models[i].vt);
  };

  if (!scalable.empty()) {
    const double gain_floor =
        std::max(result.nominal_energy, 1e-30) * options.min_relative_gain;
    const int max_iterations =
        options.max_iterations_per_node * static_cast<int>(scalable.size());

    // Cached energy-descent rate -dE/dt per scalable node, refreshed only
    // when the node's time changes — the inverse-voltage bisection behind
    // it is the algorithm's dominant cost.
    std::vector<double> descent(n, 0.0);
    auto refresh_descent = [&](std::size_t ui) {
      const DvsNode& node = g.nodes[ui];
      const double h = 0.01 * node.tmin;
      descent[ui] = (node_energy_continuous(ui, t[ui]) -
                     node_energy_continuous(ui, t[ui] + h)) /
                    h;
    };
    for (int u : scalable) refresh_descent(static_cast<std::size_t>(u));

    for (int iter = 0; iter < max_iterations; ++iter) {
      forward_pass(g, t, ef);
      backward_pass(g, t, lf);

      double best_gain = 0.0;
      int best_node = -1;
      double best_step = 0.0;
      for (int u : scalable) {
        const auto ui = static_cast<std::size_t>(u);
        const DvsNode& node = g.nodes[ui];
        const double slack = lf[ui] - ef[ui];
        const double cap = node.tmin * node.max_slowdown - t[ui];
        const double avail = std::min(slack, cap);
        if (avail <= 1e-12 * std::max(1.0, node.tmin)) continue;
        const double step = options.step_fraction * avail;
        const double gain = descent[ui] * step;  // linearised estimate
        if (gain > best_gain) {
          best_gain = gain;
          best_node = u;
          best_step = step;
        }
      }
      if (best_node < 0 || best_gain < gain_floor) break;
      const auto bi = static_cast<std::size_t>(best_node);
      t[bi] += best_step;
      refresh_descent(bi);
    }
  }

  // Final timing check and energy accounting.
  forward_pass(g, t, ef);
  result.deadlines_met = true;
  for (std::size_t i = 0; i < n; ++i) {
    const DvsNode& node = g.nodes[i];
    if (ef[i] > node.deadline * (1.0 + 1e-9) + 1e-12)
      result.deadlines_met = false;
    if (!node.scalable || node.tmin <= 0.0 || node.e_nom <= 0.0) {
      result.energy[i] = node.e_nom;
    } else {
      const VoltageModel model(models[i].vmax, models[i].vt);
      result.voltage[i] = model.voltage_for_slowdown(t[i] / node.tmin);
      result.energy[i] =
          options.discrete_voltages
              ? discrete_energy(node.e_nom, node.tmin, t[i], models[i].levels,
                                models[i].vt)
              : node.e_nom * model.energy_factor(result.voltage[i]);
    }
    result.total_energy += result.energy[i];
  }
  return result;
}

}  // namespace mmsyn
