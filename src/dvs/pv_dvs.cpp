// PV-DVS on the columnar DVS graph (DESIGN.md §12).
//
// Two data-oriented changes relative to the frozen baseline
// (bench/reference_kernels.cpp), both provably value-preserving:
//
//  - all scratch (ef/lf, descent cache, topo positions, dirty flags) lives
//    in a thread-local bump arena reset per call;
//  - the forward/backward critical-path passes are *incremental*: after a
//    greedy step extends node b, only the nodes whose earliest-finish or
//    latest-finish values actually change are recomputed (dirty-flag
//    propagation along the topological order). Earliest/latest finishes
//    are pure max/min functions of the durations, so recomputing exactly
//    the changed subset yields bit-identical doubles to a full pass — the
//    micro-kernel bit-compare enforces this.
#include "dvs/pv_dvs.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/arena.hpp"
#include "dvs/voltage_model.hpp"
#include "model/architecture.hpp"

namespace mmsyn {

double continuous_energy(double e_nom, double slowdown, double vmax,
                         double vt) {
  if (slowdown <= 1.0) return e_nom;
  const VoltageModel model(vmax, vt);
  const double v = model.voltage_for_slowdown(slowdown);
  return e_nom * model.energy_factor(v);
}

double discrete_energy(double e_nom, double tmin, double target_time,
                       const std::vector<double>& levels, double vt) {
  // No levels at all means there is nothing to scale with: the activity
  // runs (and is priced) at nominal. Guarded explicitly — `levels.back()`
  // on an empty vector is undefined behaviour in release builds.
  if (levels.empty()) return e_nom;
  const double vmax = levels.back();
  if (target_time <= tmin || levels.size() == 1) return e_nom;
  const VoltageModel model(vmax, vt);

  // Time and energy of running the whole activity at one level.
  auto time_at = [&](double v) { return tmin * model.slowdown(v); };
  auto energy_at = [&](double v) { return e_nom * model.energy_factor(v); };

  // If even the lowest level finishes within the target, use it outright
  // (the activity simply completes early).
  if (time_at(levels.front()) <= target_time)
    return energy_at(levels.front());

  // Find adjacent levels v_lo < v_hi with time_at(v_hi) <= target <
  // time_at(v_lo) and split the workload: fraction w at v_hi, (1-w) at
  // v_lo, chosen so the total time equals target_time exactly.
  for (std::size_t i = levels.size() - 1; i > 0; --i) {
    const double v_hi = levels[i];
    const double v_lo = levels[i - 1];
    const double t_hi = time_at(v_hi);
    const double t_lo = time_at(v_lo);
    if (t_hi <= target_time && target_time <= t_lo) {
      // Duplicate levels (normalised away by Architecture::add_pe, but
      // guarded here for direct callers) give a zero-width pair; the
      // whole activity then runs at that single level.
      if (t_lo - t_hi <= 0.0) return energy_at(v_hi);
      const double w = (t_lo - target_time) / (t_lo - t_hi);
      return w * energy_at(v_hi) + (1.0 - w) * energy_at(v_lo);
    }
  }
  // target_time < time at vmax can't happen (target >= tmin); fall back.
  return e_nom;
}

namespace {

Arena& dvs_arena() {
  thread_local Arena arena{1 << 16};
  return arena;
}

/// Full forward pass: earliest finish times under current durations.
void forward_pass_full(const DvsGraph& g, const double* t, double* ef) {
  for (std::int32_t u : g.topo) {
    const auto ui = static_cast<std::size_t>(u);
    double start = 0.0;
    for (std::int32_t p : g.preds(ui))
      start = std::max(start, ef[static_cast<std::size_t>(p)]);
    ef[ui] = start + t[ui];
  }
}

/// Full backward pass: latest allowed finish times under current durations.
void backward_pass_full(const DvsGraph& g, const double* t, double* lf) {
  for (auto it = g.topo.rbegin(); it != g.topo.rend(); ++it) {
    const auto ui = static_cast<std::size_t>(*it);
    double limit = g.deadline[ui];
    for (std::int32_t s : g.succs(ui)) {
      const auto si = static_cast<std::size_t>(s);
      limit = std::min(limit, lf[si] - t[si]);
    }
    lf[ui] = limit;
  }
}

/// Incremental re-propagation after t[b] changed: recomputes exactly the
/// ef/lf entries the change reaches. `pos` maps node -> topo position;
/// `fwd_dirty`/`bwd_dirty` are zeroed scratch flags (left zeroed again on
/// return).
void incremental_passes(const DvsGraph& g, const double* t, std::size_t b,
                        const std::int32_t* pos, double* ef, double* lf,
                        std::uint8_t* fwd_dirty, std::uint8_t* bwd_dirty) {
  const std::size_t n = g.node_count();
  const auto pb = static_cast<std::size_t>(pos[b]);

  // Forward: ef[b] changes (its duration did); propagate to successors
  // only while recomputed values actually differ.
  fwd_dirty[b] = 1;
  std::size_t pending = 1;
  for (std::size_t i = pb; i < n && pending > 0; ++i) {
    const auto u = static_cast<std::size_t>(g.topo[i]);
    if (!fwd_dirty[u]) continue;
    fwd_dirty[u] = 0;
    --pending;
    double start = 0.0;
    for (std::int32_t p : g.preds(u))
      start = std::max(start, ef[static_cast<std::size_t>(p)]);
    const double value = start + t[u];
    if (value != ef[u]) {
      ef[u] = value;
      for (std::int32_t s : g.succs(u)) {
        const auto si = static_cast<std::size_t>(s);
        if (!fwd_dirty[si]) fwd_dirty[si] = 1, ++pending;
      }
    }
  }

  // Backward: lf[b] itself is unchanged (its successors are), but the
  // slack term (lf[b] - t[b]) its predecessors consume did change — seed
  // them and walk the prefix of the topological order in reverse.
  pending = 0;
  for (std::int32_t p : g.preds(b)) {
    const auto pi = static_cast<std::size_t>(p);
    if (!bwd_dirty[pi]) bwd_dirty[pi] = 1, ++pending;
  }
  for (std::size_t i = pb; i-- > 0 && pending > 0;) {
    const auto u = static_cast<std::size_t>(g.topo[i]);
    if (!bwd_dirty[u]) continue;
    bwd_dirty[u] = 0;
    --pending;
    double limit = g.deadline[u];
    for (std::int32_t s : g.succs(u)) {
      const auto si = static_cast<std::size_t>(s);
      limit = std::min(limit, lf[si] - t[si]);
    }
    if (limit != lf[u]) {
      lf[u] = limit;  // t[u] unchanged, so (lf[u] - t[u]) changed too
      for (std::int32_t p : g.preds(u)) {
        const auto pi = static_cast<std::size_t>(p);
        if (!bwd_dirty[pi]) bwd_dirty[pi] = 1, ++pending;
      }
    }
  }
}

}  // namespace

PvDvsResult run_pv_dvs(const DvsGraph& g, const Architecture& arch,
                       const PvDvsOptions& options,
                       const std::vector<double>* pe_idle_penalty) {
  const std::size_t n = g.node_count();
  PvDvsResult result;
  result.scaled_time.resize(n);
  result.voltage.assign(n, 0.0);
  result.energy.resize(n);

  Arena& arena = dvs_arena();
  arena.reset();

  // Per-node voltage model parameters; `levels` points at the owning PE's
  // level vector (no per-call copies).
  double* model_vmax = arena.alloc_filled<double>(n, 0.0);
  double* model_vt = arena.alloc_filled<double>(n, 0.0);
  const std::vector<double>** model_levels =
      arena.alloc_filled<const std::vector<double>*>(n, nullptr);
  std::int32_t* scalable = arena.alloc<std::int32_t>(n);
  std::size_t scalable_count = 0;

  for (std::size_t i = 0; i < n; ++i) {
    result.scaled_time[i] = g.tmin[i];
    result.nominal_energy += g.e_nom[i];
    if (g.scalable[i] && g.pe[i] >= 0) {
      const Pe& pe = arch.pe(PeId{static_cast<PeId::value_type>(g.pe[i])});
      model_vmax[i] = pe.vmax();
      model_vt[i] = pe.threshold_voltage;
      model_levels[i] = &pe.voltage_levels;
      result.voltage[i] = pe.vmax();
      if (g.tmin[i] > 0.0 && g.e_nom[i] > 0.0)
        scalable[scalable_count++] = static_cast<std::int32_t>(i);
    } else if (g.pe[i] >= 0) {
      result.voltage[i] =
          arch.pe(PeId{static_cast<PeId::value_type>(g.pe[i])}).vmax();
    }
  }

  double* t = result.scaled_time.data();
  double* ef = arena.alloc_filled<double>(n, 0.0);
  double* lf = arena.alloc_filled<double>(n, 0.0);

  auto node_energy_continuous = [&](std::size_t i, double ti) {
    if (g.tmin[i] <= 0.0) return g.e_nom[i];
    return continuous_energy(g.e_nom[i], ti / g.tmin[i], model_vmax[i],
                             model_vt[i]);
  };

  if (scalable_count > 0) {
    const double gain_floor =
        std::max(result.nominal_energy, 1e-30) * options.min_relative_gain;
    const int max_iterations =
        options.max_iterations_per_node * static_cast<int>(scalable_count);

    // Cached energy-descent rate -dE/dt per scalable node, refreshed only
    // when the node's time changes — the inverse-voltage bisection behind
    // it is the algorithm's dominant cost.
    double* descent = arena.alloc_filled<double>(n, 0.0);
    auto refresh_descent = [&](std::size_t ui) {
      const double h = 0.01 * g.tmin[ui];
      descent[ui] = (node_energy_continuous(ui, t[ui]) -
                     node_energy_continuous(ui, t[ui] + h)) /
                    h;
    };
    for (std::size_t k = 0; k < scalable_count; ++k)
      refresh_descent(static_cast<std::size_t>(scalable[k]));

    // Topo positions and dirty flags for the incremental passes.
    std::int32_t* pos = arena.alloc<std::int32_t>(n);
    for (std::size_t i = 0; i < n; ++i)
      pos[static_cast<std::size_t>(g.topo[i])] = static_cast<std::int32_t>(i);
    std::uint8_t* fwd_dirty = arena.alloc_filled<std::uint8_t>(n, 0);
    std::uint8_t* bwd_dirty = arena.alloc_filled<std::uint8_t>(n, 0);

    forward_pass_full(g, t, ef);
    backward_pass_full(g, t, lf);

    for (int iter = 0; iter < max_iterations; ++iter) {
      double best_gain = 0.0;
      std::int32_t best_node = -1;
      double best_step = 0.0;
      for (std::size_t k = 0; k < scalable_count; ++k) {
        const auto ui = static_cast<std::size_t>(scalable[k]);
        const double slack = lf[ui] - ef[ui];
        const double cap = g.tmin[ui] * g.max_slowdown[ui] - t[ui];
        const double avail = std::min(slack, cap);
        if (avail <= 1e-12 * std::max(1.0, g.tmin[ui])) continue;
        const double step = options.step_fraction * avail;
        double gain = descent[ui] * step;  // linearised estimate
        // DPM coupling: slack consumed here is idle time a sleep state
        // could have recovered — charge its watts-equivalent cost. The
        // null branch keeps the reference path bit-identical and free.
        if (pe_idle_penalty != nullptr && g.pe[ui] >= 0)
          gain -= (*pe_idle_penalty)[static_cast<std::size_t>(g.pe[ui])] * step;
        if (gain > best_gain) {
          best_gain = gain;
          best_node = scalable[k];
          best_step = step;
        }
      }
      if (best_node < 0 || best_gain < gain_floor) break;
      const auto bi = static_cast<std::size_t>(best_node);
      t[bi] += best_step;
      refresh_descent(bi);
      incremental_passes(g, t, bi, pos, ef, lf, fwd_dirty, bwd_dirty);
    }
  } else {
    forward_pass_full(g, t, ef);
  }

  // Final timing check and energy accounting. ef is maintained exactly by
  // the incremental passes, so no closing full pass is needed.
  result.deadlines_met = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (ef[i] > g.deadline[i] * (1.0 + 1e-9) + 1e-12)
      result.deadlines_met = false;
    if (!g.scalable[i] || g.tmin[i] <= 0.0 || g.e_nom[i] <= 0.0) {
      result.energy[i] = g.e_nom[i];
    } else {
      const VoltageModel model(model_vmax[i], model_vt[i]);
      result.voltage[i] = model.voltage_for_slowdown(t[i] / g.tmin[i]);
      result.energy[i] =
          options.discrete_voltages
              ? discrete_energy(g.e_nom[i], g.tmin[i], t[i], *model_levels[i],
                                model_vt[i])
              : g.e_nom[i] * model.energy_factor(result.voltage[i]);
    }
    result.total_energy += result.energy[i];
  }
  return result;
}

}  // namespace mmsyn
