#include "server/job_server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/failpoint.hpp"
#include "core/cosynth.hpp"
#include "core/report.hpp"
#include "core/run_control.hpp"
#include "model/io.hpp"
#include "pipeline/backends.hpp"
#include "power/backends.hpp"
#include "server/retry.hpp"

namespace mmsyn {
namespace {

failpoint::Site fp_accept{"server.accept"};
failpoint::Site fp_job_spawn{"job.spawn"};

[[nodiscard]] bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

}  // namespace

JobServer::JobServer(ServerOptions options) : options_(std::move(options)) {}

JobServer::~JobServer() {
  drain_and_stop();
  journal_.close();
}

void JobServer::log_line(const std::string& message) const {
  if (options_.log) options_.log(message);
}

std::string JobServer::checkpoint_path_for(std::uint64_t job_id) const {
  return options_.state_dir + "/job-" + std::to_string(job_id) + ".ckpt";
}

void JobServer::remove_job_checkpoints(std::uint64_t job_id) {
  const std::string base = checkpoint_path_for(job_id);
  for (int g = 0; g < std::max(1, options_.checkpoint_keep); ++g) {
    std::remove(checkpoint_generation_path(base, g).c_str());
  }
}

template <typename Fn>
void JobServer::journal_durably(const char* what, Fn&& fn) {
  failpoint::retry_transient(what, [&] { fn(); });
}

void JobServer::start() {
  std::unique_lock<std::mutex> lock(mu_);
  if (started_) return;
  if (options_.state_dir.empty()) {
    throw std::runtime_error("server: state_dir is required");
  }

  JournalRecovery recovery = journal_.open(options_.state_dir + "/jobs.wal");
  for (const std::string& note : recovery.notes) {
    log_line("journal recovery: " + note);
  }
  next_job_id_ = recovery.next_job_id;

  // Replay: terminal jobs keep their results (kOk results re-seed the
  // cache), pending jobs re-enter the queue in admission order — unless
  // their journaled crash-attempt count says running them again would
  // take the server down a third time, in which case they are
  // quarantined here and now, before any worker can touch them.
  for (auto& [id, jj] : recovery.jobs) {
    Job job;
    job.id = id;
    job.fingerprint = jj.fingerprint;
    job.options = jj.options;
    job.system_text = jj.system_text;
    job.crash_attempts = jj.crash_attempts;
    stats_.accepted += 1;
    if (jj.completed) {
      job.state = JobState::kCompleted;
      job.result = jj.result;
      stats_.completed += 1;
      if (options_.result_cache && jj.result.outcome == JobOutcome::kOk) {
        cache_[jj.fingerprint] = jj.result;
      }
    } else if (jj.quarantined) {
      job.state = JobState::kQuarantined;
      job.result.job_id = id;
      job.result.outcome = JobOutcome::kQuarantined;
      job.result.report = jj.quarantine_error;
      stats_.quarantined += 1;
    } else if (job.crash_attempts >= options_.max_crash_attempts) {
      const std::string error =
          "quarantined at recovery: " + std::to_string(job.crash_attempts) +
          " attempts ended in a crash";
      journal_durably("journal quarantine",
                      [&] { journal_.append_quarantine(id, error); });
      job.state = JobState::kQuarantined;
      job.result.job_id = id;
      job.result.outcome = JobOutcome::kQuarantined;
      job.result.report = error;
      stats_.quarantined += 1;
      log_line("job " + std::to_string(id) + ": " + error);
    } else {
      job.state = JobState::kQueued;
      queue_.push_back(id);
      stats_.recovered_pending += 1;
      log_line("job " + std::to_string(id) + ": recovered, re-enqueued" +
               (job.crash_attempts > 0
                    ? " (crash attempts so far: " +
                          std::to_string(job.crash_attempts) + ")"
                    : ""));
    }
    jobs_.emplace(id, std::move(job));
  }

  // Compaction bounds replay time for the next restart; recovery already
  // has everything in memory, so the rewrite reflects the replayed state
  // plus any quarantine decisions just journaled (kAttempt runs survive
  // via the compactor's crash-attempt re-emission).
  JournalRecovery compact_state;
  compact_state.next_job_id = next_job_id_;
  for (const auto& [id, job] : jobs_) {
    JournalJob jj;
    jj.job_id = id;
    jj.fingerprint = job.fingerprint;
    jj.options = job.options;
    jj.system_text = job.system_text;
    jj.crash_attempts = job.crash_attempts;
    jj.completed = job.state == JobState::kCompleted;
    jj.quarantined = job.state == JobState::kQuarantined;
    if (jj.completed) jj.result = job.result;
    if (jj.quarantined) jj.quarantine_error = job.result.report;
    compact_state.jobs.emplace(id, std::move(jj));
  }
  journal_.compact(compact_state);

  started_ = true;
  draining_ = false;

  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (options_.workers > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }

  if (!options_.socket_path.empty()) {
    std::remove(options_.socket_path.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      throw std::runtime_error(std::string("server: socket: ") +
                               std::strerror(errno));
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("server: socket path too long: " +
                               options_.socket_path);
    }
    std::strncpy(addr.sun_path, options_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      throw std::runtime_error("server: bind " + options_.socket_path + ": " +
                               std::strerror(errno));
    }
    if (::listen(listen_fd_, 64) != 0) {
      throw std::runtime_error(std::string("server: listen: ") +
                               std::strerror(errno));
    }
    acceptor_ = std::thread([this] { accept_loop(); });
  }
}

SubmitOutcome JobServer::submit(const SubmitRequest& request) {
  SubmitOutcome out;

  // Parse at admission so garbage is rejected synchronously with a typed
  // kParseError instead of burning a worker slot. Semantic validation
  // deliberately does NOT happen here: a parseable-but-invalid system is
  // admitted and fails deterministically inside its job, exercising the
  // quarantine path rather than the admission path.
  try {
    (void)system_from_string(request.system_text);
  } catch (const std::exception& e) {
    out.reject = {RejectCode::kParseError, e.what()};
    return out;
  }

  const std::uint64_t fingerprint =
      job_fingerprint(request.system_text, request.options);

  std::unique_lock<std::mutex> lock(mu_);
  if (!started_ || draining_) {
    out.reject = {RejectCode::kDraining, "server is draining"};
    return out;
  }

  if (options_.result_cache) {
    stats_.cache_lookups += 1;
    const auto hit = cache_.find(fingerprint);
    if (hit != cache_.end()) {
      stats_.cache_hits += 1;
      const std::uint64_t id = next_job_id_++;
      JobResultReply result = hit->second;
      result.job_id = id;
      try {
        // Cache hits are journaled accept+complete too, so a restarted
        // server still knows every id it ever acknowledged.
        journal_durably("journal accept", [&] {
          journal_.append_accept(id, fingerprint, request.options,
                                 request.system_text);
        });
        journal_durably("journal complete",
                        [&] { journal_.append_complete(result); });
      } catch (const std::exception& e) {
        out.reject = {RejectCode::kBadRequest,
                      std::string("journal write failed: ") + e.what()};
        return out;
      }
      Job job;
      job.id = id;
      job.fingerprint = fingerprint;
      job.options = request.options;
      job.system_text = request.system_text;
      job.state = JobState::kCompleted;
      job.result = std::move(result);
      jobs_.emplace(id, std::move(job));
      stats_.accepted += 1;
      stats_.completed += 1;
      out.accepted = true;
      out.ok = {id, /*cached=*/true};
      done_cv_.notify_all();
      return out;
    }
  }

  if (static_cast<int>(queue_.size()) >= options_.queue_limit) {
    stats_.queue_full_rejections += 1;
    out.reject = {RejectCode::kQueueFull,
                  "admission queue full (" +
                      std::to_string(options_.queue_limit) + " jobs)"};
    return out;
  }

  const std::uint64_t id = next_job_id_++;
  try {
    // The WAL write happens BEFORE the in-memory enqueue and before the
    // client hears kSubmitOk: an acknowledged job is durable by
    // definition.
    journal_durably("journal accept", [&] {
      journal_.append_accept(id, fingerprint, request.options,
                             request.system_text);
    });
  } catch (const std::exception& e) {
    out.reject = {RejectCode::kBadRequest,
                  std::string("journal write failed: ") + e.what()};
    return out;
  }

  Job job;
  job.id = id;
  job.fingerprint = fingerprint;
  job.options = request.options;
  job.system_text = request.system_text;
  jobs_.emplace(id, std::move(job));
  queue_.push_back(id);
  stats_.accepted += 1;
  out.accepted = true;
  out.ok = {id, /*cached=*/false};
  queue_cv_.notify_one();
  return out;
}

WaitOutcome JobServer::wait(std::uint64_t job_id) {
  WaitOutcome out;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) {
      out.reject = {RejectCode::kUnknownJob,
                    "unknown job " + std::to_string(job_id)};
      return out;
    }
    const Job& job = it->second;
    if (job.state == JobState::kCompleted ||
        job.state == JobState::kQuarantined) {
      out.ok = true;
      out.result = job.result;
      return out;
    }
    if (draining_) {
      out.reject = {RejectCode::kDraining,
                    "server is draining; job " + std::to_string(job_id) +
                        " is journaled and will resume on restart"};
      return out;
    }
    done_cv_.wait(lock);
  }
}

StatsReply JobServer::stats() {
  std::unique_lock<std::mutex> lock(mu_);
  StatsReply s = stats_;
  s.queued = queue_.size();
  s.running = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::kRunning) s.running += 1;
  }
  return s;
}

void JobServer::worker_loop() {
  for (;;) {
    std::uint64_t id = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return draining_ || !queue_.empty(); });
      if (draining_) return;
      id = queue_.front();
      queue_.pop_front();
      Job& job = jobs_.at(id);
      if (job.state != JobState::kQueued) continue;
      // The attempt record is what recovery counts: it is on disk before
      // the run starts, so a crash anywhere inside the run leaves a
      // dangling kAttempt — exactly one crash attempt.
      try {
        journal_durably("journal attempt", [&] {
          journal_.append_attempt(id, job.crash_attempts + 1);
        });
      } catch (const std::exception& e) {
        // Without a durable attempt record the crash-quarantine counter
        // would undercount; run anyway (availability over bookkeeping)
        // but say so.
        log_line("job " + std::to_string(id) +
                 ": attempt record not durable: " + e.what());
      }
      job.state = JobState::kRunning;
      job.started_at = std::chrono::steady_clock::now();
      job.effective_budget = job.options.time_budget > 0.0
                                 ? job.options.time_budget
                                 : options_.default_time_budget;
    }
    run_job(id);
  }
}

void JobServer::run_job(std::uint64_t job_id) {
  // Immutable inputs, copied once; the mutable Job stays behind mu_.
  JobOptions job_options;
  std::string system_text;
  double budget = 0.0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    Job& job = jobs_.at(job_id);
    job_options = job.options;
    system_text = job.system_text;
    budget = job.effective_budget;
  }

  bool fresh_restart_used = false;
  for (;;) {
    RunControl control;
    control.time_budget_seconds = budget;
    control.checkpoint_path = checkpoint_path_for(job_id);
    control.checkpoint_every_generations = options_.checkpoint_every;
    control.checkpoint_keep_generations = options_.checkpoint_keep;
    if (file_exists(control.checkpoint_path)) {
      control.resume_path = control.checkpoint_path;
    }
    control.recovery_log = [this, job_id](const std::string& message) {
      log_line("job " + std::to_string(job_id) + ": " + message);
    };

    {
      std::unique_lock<std::mutex> lock(mu_);
      Job& job = jobs_.at(job_id);
      job.control = &control;
      if (job.drain_requested) control.request_cancel();
    }
    // Everything below must clear job.control before leaving this
    // iteration — the watchdog dereferences it under mu_.
    auto detach_control = [this, job_id] {
      std::unique_lock<std::mutex> lock(mu_);
      jobs_.at(job_id).control = nullptr;
    };

    try {
      if (failpoint::inject(fp_job_spawn)) {
        // corrupt action has nothing site-specific to corrupt here;
        // treat it as a transient failure so the spec still bites.
        throw TransientFault("job.spawn");
      }

      System system = system_from_string(system_text);
      const auto problems = system.validate();
      if (!problems.empty()) {
        std::string message = "invalid system:";
        for (const auto& p : problems) message += " " + p + ";";
        throw std::runtime_error(message);
      }

      SynthesisOptions options;
      options.use_dvs = resolve_dvs_backend(job_options.dvs_backend.empty()
                                                ? dvs_backend_name(false)
                                                : job_options.dvs_backend);
      options.scheduling_policy = resolve_scheduler_backend(
          job_options.scheduler_backend.empty()
              ? scheduler_backends().front().name
              : job_options.scheduler_backend);
      options.power = resolve_power_backend(job_options.power_backend.empty()
                                                ? power_backends().front().name
                                                : job_options.power_backend);
      options.consider_probabilities = job_options.consider_probabilities;
      options.seed = job_options.seed;
      options.ga.population_size = job_options.population;
      options.ga.max_generations = job_options.generations;
      options.ga.num_threads = std::max(1, job_options.threads);

      SynthesisResult result;
      try {
        result = synthesize(system, options, &control);
      } catch (const CheckpointError& e) {
        // A poisoned checkpoint must not poison the job: drop it and
        // re-run from scratch once (the fallback loader already tried
        // every older generation before throwing).
        if (fresh_restart_used) throw std::runtime_error(e.what());
        fresh_restart_used = true;
        log_line("job " + std::to_string(job_id) +
                 ": unusable checkpoint, restarting fresh: " + e.what());
        remove_job_checkpoints(job_id);
        detach_control();
        continue;
      }

      std::unique_lock<std::mutex> lock(mu_);
      Job& job = jobs_.at(job_id);
      job.control = nullptr;

      if (result.partial && result.stop_reason == StopReason::kCancelled &&
          job.drain_requested && !job.watchdog_fired) {
        // Drain interruption: the cooperative stop just wrote a
        // checkpoint, so the job is resumable bit-identically. Mark the
        // interruption deliberate (kDrained resets the crash-attempt
        // count — this was not a crash) and leave the job pending.
        try {
          journal_durably("journal drained",
                          [&] { journal_.append_drained(job_id); });
        } catch (const std::exception& e) {
          log_line("job " + std::to_string(job_id) +
                   ": drained record not durable: " + e.what());
        }
        job.state = JobState::kQueued;
        return;
      }

      JobResultReply reply;
      reply.job_id = job_id;
      if (!result.partial) {
        reply.outcome = JobOutcome::kOk;
      } else if (result.stop_reason == StopReason::kBudgetExhausted ||
                 job.watchdog_fired) {
        // Budget exhaustion is a *recoverable, typed* outcome: the
        // client still receives the best-so-far fine-DVS evaluation.
        reply.outcome = JobOutcome::kBudgetExhausted;
      } else {
        reply.outcome = JobOutcome::kCancelled;
      }
      reply.feasible = result.evaluation.feasible();
      reply.avg_power_true = result.evaluation.avg_power_true;

      ReportOptions report_options;
      report_options.include_gantt = job_options.report_gantt;
      report_options.include_voltage_schedules = job_options.report_voltages;
      // Timing never goes into stored reports: they must be
      // byte-identical across runs, restarts and the CLI.
      report_options.include_timing = false;
      reply.report = implementation_report(system, result, report_options);

      complete_job_locked(job, std::move(reply), lock);
      return;
    } catch (const TransientFault& e) {
      detach_control();
      int attempt = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        Job& job = jobs_.at(job_id);
        job.transient_retries += 1;
        attempt = job.transient_retries;
        stats_.retries += 1;
        if (attempt > options_.max_transient_retries) {
          quarantine_job_locked(
              job, std::string("transient retries exhausted: ") + e.what(),
              lock);
          return;
        }
      }
      const auto backoff =
          server_retry_backoff(options_.seed, job_id, attempt);
      log_line("job " + std::to_string(job_id) + ": transient fault (" +
               e.what() + "), retry " + std::to_string(attempt) + " in " +
               std::to_string(backoff.count()) + "us");
      std::this_thread::sleep_for(backoff);
      continue;
    } catch (const std::exception& e) {
      detach_control();
      std::unique_lock<std::mutex> lock(mu_);
      Job& job = jobs_.at(job_id);
      job.deterministic_failures += 1;
      if (job.deterministic_failures >= options_.max_deterministic_failures) {
        quarantine_job_locked(job, e.what(), lock);
        return;
      }
      // One confirmation re-run before quarantine: a failure that
      // repeats is deterministic by observation, not assumption.
      log_line("job " + std::to_string(job_id) + ": failed (" + e.what() +
               "), confirming before quarantine");
      continue;
    }
  }
}

void JobServer::complete_job_locked(Job& job, JobResultReply result,
                                    std::unique_lock<std::mutex>& lock) {
  (void)lock;
  try {
    journal_durably("journal complete",
                    [&] { journal_.append_complete(result); });
  } catch (const std::exception& e) {
    // The in-memory result is still served to waiters; the restart
    // simply re-runs the job (deterministically, to the same bytes).
    log_line("job " + std::to_string(job.id) +
             ": result record not durable: " + e.what());
  }
  job.state = JobState::kCompleted;
  job.result = std::move(result);
  stats_.completed += 1;
  if (options_.result_cache && job.result.outcome == JobOutcome::kOk) {
    cache_[job.fingerprint] = job.result;
  }
  remove_job_checkpoints(job.id);
  done_cv_.notify_all();
}

void JobServer::quarantine_job_locked(Job& job, const std::string& error,
                                      std::unique_lock<std::mutex>& lock) {
  (void)lock;
  try {
    journal_durably("journal quarantine",
                    [&] { journal_.append_quarantine(job.id, error); });
  } catch (const std::exception& e) {
    log_line("job " + std::to_string(job.id) +
             ": quarantine record not durable: " + e.what());
  }
  job.state = JobState::kQuarantined;
  job.result = JobResultReply{};
  job.result.job_id = job.id;
  job.result.outcome = JobOutcome::kQuarantined;
  job.result.report = error;
  stats_.quarantined += 1;
  remove_job_checkpoints(job.id);
  log_line("job " + std::to_string(job.id) + ": quarantined: " + error);
  done_cv_.notify_all();
}

void JobServer::watchdog_loop() {
  using namespace std::chrono_literals;
  std::unique_lock<std::mutex> lock(mu_);
  while (!draining_) {
    for (auto& [id, job] : jobs_) {
      if (job.state != JobState::kRunning || job.control == nullptr) continue;
      if (job.effective_budget <= 0.0 || job.watchdog_fired) continue;
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        job.started_at)
              .count();
      if (elapsed > job.effective_budget + options_.watchdog_grace) {
        job.watchdog_fired = true;
        job.control->request_cancel();
        stats_.watchdog_cancels += 1;
        log_line("job " + std::to_string(id) + ": watchdog cancel after " +
                 std::to_string(elapsed) + "s (budget " +
                 std::to_string(job.effective_budget) + "s + grace)");
      }
    }
    done_cv_.wait_for(lock, 50ms);
  }
}

void JobServer::accept_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (draining_) return;
    }
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener closed by drain
    }
    try {
      if (failpoint::inject(fp_accept)) {
        // corrupt: nothing to corrupt at the accept site — drop the
        // connection, which is indistinguishable from a network fault.
        ::close(fd);
        continue;
      }
    } catch (const TransientFault&) {
      ::close(fd);
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (draining_) {
      ::close(fd);
      return;
    }
    connection_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void JobServer::serve_connection(int fd) {
  try {
    Frame frame;
    while (recv_frame(fd, frame)) {
      switch (frame.type) {
        case MessageType::kSubmit: {
          const SubmitOutcome out = submit(decode_submit(frame.payload));
          if (out.accepted) {
            send_frame(fd, MessageType::kSubmitOk, encode_submit_ok(out.ok));
          } else {
            send_frame(fd, MessageType::kReject, encode_reject(out.reject));
          }
          break;
        }
        case MessageType::kWait: {
          const WaitOutcome out = wait(decode_wait(frame.payload).job_id);
          if (out.ok) {
            send_frame(fd, MessageType::kJobResult,
                       encode_job_result(out.result));
          } else {
            send_frame(fd, MessageType::kReject, encode_reject(out.reject));
          }
          break;
        }
        case MessageType::kStats: {
          send_frame(fd, MessageType::kStatsReply, encode_stats(stats()));
          break;
        }
        default: {
          RejectReply reject{RejectCode::kBadRequest,
                             "unexpected message type"};
          send_frame(fd, MessageType::kReject, encode_reject(reject));
          break;
        }
      }
    }
  } catch (const std::exception& e) {
    log_line(std::string("connection error: ") + e.what());
  }
  {
    // Deregister before closing so the drain never shutdown()s a stale
    // (possibly reused) fd number.
    std::unique_lock<std::mutex> lock(mu_);
    connection_fds_.erase(
        std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
        connection_fds_.end());
  }
  ::close(fd);
}

void JobServer::drain_and_stop() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_ || draining_) return;
    draining_ = true;
    for (auto& [id, job] : jobs_) {
      if (job.state == JobState::kRunning) {
        job.drain_requested = true;
        if (job.control != nullptr) job.control->request_cancel();
      }
    }
    queue_cv_.notify_all();
    done_cv_.notify_all();
  }

  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  if (watchdog_.joinable()) watchdog_.join();

  // The acceptor polls listen_fd_ with a 200ms timeout and re-checks
  // draining_ each tick, so it exits on its own; the fd is closed only
  // after the join — closing it out from under a concurrent poll() is a
  // race (and a potential fd reuse hazard).
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Wake connection threads blocked mid-recv; their waits already
  // returned kDraining above.
  std::vector<int> fds;
  {
    std::unique_lock<std::mutex> lock(mu_);
    fds = connection_fds_;
  }
  for (const int fd : fds) ::shutdown(fd, SHUT_RDWR);
  for (std::thread& t : connections_) {
    if (t.joinable()) t.join();
  }
  connections_.clear();
  {
    std::unique_lock<std::mutex> lock(mu_);
    connection_fds_.clear();
    started_ = false;
  }
  if (!options_.socket_path.empty()) {
    std::remove(options_.socket_path.c_str());
  }
  log_line("drained: queued jobs remain journaled for the next start");
}

}  // namespace mmsyn
