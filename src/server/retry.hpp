// Deterministic retry backoff for the job server.
//
// When a job attempt dies with a TransientFault (injected I/O error,
// recoverable runtime hiccup) the server re-runs it after a backoff. The
// schedule is a *pure function* of (server seed, job id, attempt): no
// clock, no global RNG, no dependence on which worker thread picks the
// job up or how many workers exist. That purity is load-bearing — the
// soak harness replays a fault scenario under --threads 1/4/16 and
// expects the identical schedule, and a recovered server (restarted
// after kill -9) recomputes the same delays for the same job.
#pragma once

#include <chrono>
#include <cstdint>

namespace mmsyn {

/// Backoff before retry number `attempt` (1-based: the delay inserted
/// after the attempt-th failure) of job `job_id`. Exponential with a
/// deterministic counter-based jitter: base 1ms doubled per attempt,
/// plus up to one base-interval of Threefry-derived jitter, capped at
/// 250ms so quarantine (bounded attempts) is reached quickly.
[[nodiscard]] std::chrono::microseconds server_retry_backoff(
    std::uint64_t seed, std::uint64_t job_id, int attempt);

}  // namespace mmsyn
