#include "server/retry.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace mmsyn {
namespace {

/// Domain separator so the retry schedule can never collide with a GA
/// stream keyed on the same seed ("RETRYBK1" in LE bytes).
constexpr std::uint64_t kRetryDomain = 0x314b425952544552ull;

constexpr std::int64_t kBaseUs = 1000;      // 1ms first retry
constexpr std::int64_t kCapUs = 250'000;    // 250ms ceiling

}  // namespace

std::chrono::microseconds server_retry_backoff(std::uint64_t seed,
                                               std::uint64_t job_id,
                                               int attempt) {
  const int step = std::max(attempt, 1);
  // Exponential base, saturating well before the shift can overflow.
  const std::int64_t exp_us =
      step >= 9 ? kCapUs : std::min<std::int64_t>(kCapUs, kBaseUs << (step - 1));
  // Jitter in [0, exp_us): one Threefry block keyed on (seed, domain)
  // with counter (job_id, attempt) — a pure function of the inputs, so
  // every worker topology and every recovered server computes the same
  // delay for the same (job, attempt).
  const auto block = Rng::threefry2x64(
      {job_id, static_cast<std::uint64_t>(step)}, {seed, kRetryDomain});
  const std::int64_t jitter =
      static_cast<std::int64_t>(block[0] % static_cast<std::uint64_t>(exp_us));
  return std::chrono::microseconds(std::min(exp_us + jitter, kCapUs));
}

}  // namespace mmsyn
