#include "server/wire.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/checksum.hpp"

namespace mmsyn {
namespace {

constexpr std::uint32_t kFrameMagic = 0x4d4d5750u;  // "MMWP" (LE bytes PWMM)

/// Frames larger than this are rejected before allocation: no legitimate
/// message (system text + report) comes close, and the cap keeps a
/// corrupt length field from driving a multi-gigabyte allocation.
constexpr std::uint32_t kMaxPayload = 64u << 20;

// Little-endian byte writer/reader, same shape as the checkpoint
// container's (core/run_control.cpp) so the two formats stay idiomatic
// twins. Reader throws WireError instead of CheckpointError.
class Writer {
public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

  [[nodiscard]] std::string take() { return std::move(out_); }

private:
  std::string out_;
};

class Reader {
public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint16_t u16() {
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(u8()) << (8 * i);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  void expect_end() const {
    if (pos_ != data_.size()) throw WireError("trailing bytes in payload");
  }

private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) throw WireError("truncated payload");
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

void put_options(Writer& w, const JobOptions& o) {
  w.u64(o.seed);
  w.i32(o.population);
  w.i32(o.generations);
  w.i32(o.threads);
  w.str(o.dvs_backend);
  w.str(o.scheduler_backend);
  w.str(o.power_backend);
  w.boolean(o.consider_probabilities);
  w.f64(o.time_budget);
  w.boolean(o.report_gantt);
  w.boolean(o.report_voltages);
}

JobOptions get_options(Reader& r) {
  JobOptions o;
  o.seed = r.u64();
  o.population = r.i32();
  o.generations = r.i32();
  o.threads = r.i32();
  o.dvs_backend = r.str();
  o.scheduler_backend = r.str();
  o.power_backend = r.str();
  o.consider_probabilities = r.boolean();
  o.time_budget = r.f64();
  o.report_gantt = r.boolean();
  o.report_voltages = r.boolean();
  return o;
}

/// write(2) loop tolerating EINTR; throws WireError on hard failure.
void write_all(int fd, const char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t k = ::write(fd, p, n);
    if (k < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("send failed: ") + std::strerror(errno));
    }
    p += k;
    n -= static_cast<std::size_t>(k);
  }
}

/// read(2) loop. Returns false on EOF before the first byte (clean close
/// when `eof_ok`); throws on mid-buffer EOF or hard error.
bool read_all(int fd, char* p, std::size_t n, bool eof_ok) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t k = ::read(fd, p + got, n - got);
    if (k < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("recv failed: ") + std::strerror(errno));
    }
    if (k == 0) {
      if (got == 0 && eof_ok) return false;
      throw WireError("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(k);
  }
  return true;
}

}  // namespace

std::uint64_t job_fingerprint(std::string_view system_text,
                              const JobOptions& options) {
  Fnv1a64 h;
  h.add_bytes(system_text.data(), system_text.size());
  h.add(system_text.size());
  h.add(options.seed);
  h.add(options.population);
  h.add(options.generations);
  // threads deliberately excluded: results are thread-count invariant,
  // and folding it in would defeat the cache across --threads settings.
  h.add(options.dvs_backend.size());
  h.add_bytes(options.dvs_backend.data(), options.dvs_backend.size());
  h.add(options.scheduler_backend.size());
  h.add_bytes(options.scheduler_backend.data(),
              options.scheduler_backend.size());
  h.add(options.power_backend.size());
  h.add_bytes(options.power_backend.data(), options.power_backend.size());
  h.add(options.consider_probabilities);
  h.add(options.time_budget);
  h.add(options.report_gantt);
  h.add(options.report_voltages);
  return h.digest();
}

std::string encode_submit(const SubmitRequest& request) {
  Writer w;
  put_options(w, request.options);
  w.str(request.system_text);
  return w.take();
}

SubmitRequest decode_submit(std::string_view payload) {
  Reader r(payload);
  SubmitRequest req;
  req.options = get_options(r);
  req.system_text = r.str();
  r.expect_end();
  return req;
}

std::string encode_submit_ok(const SubmitReply& reply) {
  Writer w;
  w.u64(reply.job_id);
  w.boolean(reply.cached);
  return w.take();
}

SubmitReply decode_submit_ok(std::string_view payload) {
  Reader r(payload);
  SubmitReply reply;
  reply.job_id = r.u64();
  reply.cached = r.boolean();
  r.expect_end();
  return reply;
}

std::string encode_reject(const RejectReply& reply) {
  Writer w;
  w.u16(static_cast<std::uint16_t>(reply.code));
  w.str(reply.message);
  return w.take();
}

RejectReply decode_reject(std::string_view payload) {
  Reader r(payload);
  RejectReply reply;
  reply.code = static_cast<RejectCode>(r.u16());
  reply.message = r.str();
  r.expect_end();
  return reply;
}

std::string encode_wait(const WaitRequest& request) {
  Writer w;
  w.u64(request.job_id);
  return w.take();
}

WaitRequest decode_wait(std::string_view payload) {
  Reader r(payload);
  WaitRequest req;
  req.job_id = r.u64();
  r.expect_end();
  return req;
}

std::string encode_job_result(const JobResultReply& reply) {
  Writer w;
  w.u64(reply.job_id);
  w.u8(static_cast<std::uint8_t>(reply.outcome));
  w.boolean(reply.feasible);
  w.f64(reply.avg_power_true);
  w.str(reply.report);
  return w.take();
}

JobResultReply decode_job_result(std::string_view payload) {
  Reader r(payload);
  JobResultReply reply;
  reply.job_id = r.u64();
  reply.outcome = static_cast<JobOutcome>(r.u8());
  reply.feasible = r.boolean();
  reply.avg_power_true = r.f64();
  reply.report = r.str();
  r.expect_end();
  return reply;
}

std::string encode_stats(const StatsReply& reply) {
  Writer w;
  w.u64(reply.accepted);
  w.u64(reply.completed);
  w.u64(reply.quarantined);
  w.u64(reply.cache_hits);
  w.u64(reply.cache_lookups);
  w.u64(reply.queue_full_rejections);
  w.u64(reply.retries);
  w.u64(reply.watchdog_cancels);
  w.u64(reply.recovered_pending);
  w.u64(reply.queued);
  w.u64(reply.running);
  return w.take();
}

StatsReply decode_stats(std::string_view payload) {
  Reader r(payload);
  StatsReply reply;
  reply.accepted = r.u64();
  reply.completed = r.u64();
  reply.quarantined = r.u64();
  reply.cache_hits = r.u64();
  reply.cache_lookups = r.u64();
  reply.queue_full_rejections = r.u64();
  reply.retries = r.u64();
  reply.watchdog_cancels = r.u64();
  reply.recovered_pending = r.u64();
  reply.queued = r.u64();
  reply.running = r.u64();
  r.expect_end();
  return reply;
}

void send_frame(int fd, MessageType type, std::string_view payload) {
  if (payload.size() > kMaxPayload) throw WireError("payload too large");
  Writer w;
  w.u32(kFrameMagic);
  w.u16(kWireVersion);
  w.u16(static_cast<std::uint16_t>(type));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  const std::string header = w.take();

  Writer t;
  t.u32(crc32(payload));
  const std::string trailer = t.take();

  // One coalesced buffer per frame: a frame is small relative to the
  // payload, and a single write keeps concurrent frames on a shared fd
  // impossible to interleave (each connection is single-threaded anyway).
  std::string buf;
  buf.reserve(header.size() + payload.size() + trailer.size());
  buf += header;
  buf.append(payload.data(), payload.size());
  buf += trailer;
  write_all(fd, buf.data(), buf.size());
}

bool recv_frame(int fd, Frame& frame) {
  char header[12];
  if (!read_all(fd, header, sizeof header, /*eof_ok=*/true)) return false;
  Reader r(std::string_view(header, sizeof header));
  if (r.u32() != kFrameMagic) throw WireError("bad frame magic");
  const std::uint16_t version = r.u16();
  if (version != kWireVersion) {
    throw WireError("unsupported protocol version " + std::to_string(version));
  }
  frame.type = static_cast<MessageType>(r.u16());
  const std::uint32_t size = r.u32();
  if (size > kMaxPayload) throw WireError("payload too large");

  frame.payload.resize(size);
  if (size > 0) read_all(fd, frame.payload.data(), size, /*eof_ok=*/false);

  char crc_bytes[4];
  read_all(fd, crc_bytes, sizeof crc_bytes, /*eof_ok=*/false);
  Reader cr(std::string_view(crc_bytes, sizeof crc_bytes));
  if (cr.u32() != crc32(frame.payload)) throw WireError("payload CRC mismatch");
  return true;
}

}  // namespace mmsyn
