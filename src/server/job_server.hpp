// Fault-tolerant synthesis job server (DESIGN.md §15).
//
// A JobServer turns the one-shot `synthesize()` call into a long-running
// service with a crash-safety story end to end:
//
//  * bounded admission queue — a full queue is a typed kQueueFull
//    rejection, never an unbounded buffer;
//  * write-ahead journal (server/journal.hpp) — every accepted job is
//    durable before the client sees kSubmitOk, so `kill -9` + restart
//    recovers and re-runs every accepted-but-unfinished job;
//  * per-job RunControl — wall-clock budget, periodic checkpoints into
//    the state directory, resume-on-restart through the existing
//    checkpoint machinery (bit-identical results);
//  * watchdog — a scanner thread cooperatively cancels jobs that overrun
//    their budget by more than a grace period;
//  * deterministic bounded retry — transient faults re-run the job after
//    `server_retry_backoff(seed, job id, attempt)` (a pure function; see
//    server/retry.hpp), never forever;
//  * quarantine — a job that fails deterministically twice, or whose run
//    crashed the server twice (counted across restarts via the journal's
//    kAttempt records), is parked with a terminal kQuarantined result
//    and can never take the service down or starve other jobs;
//  * graceful drain — SIGTERM stops admission, cooperatively cancels
//    running jobs (their checkpoints make the interruption free), marks
//    them kDrained in the journal and exits; a restarted server resumes
//    them bit-identically;
//  * result cache — completed kOk results are kept (and rebuilt from the
//    journal on restart) keyed on the (system text, options) fingerprint,
//    so resubmitting identical work is a cache hit, not a re-synthesis.
//
// The class exposes a direct in-process API (submit/wait/stats) used by
// the tests and benchmarks, and an optional unix-domain-socket listener
// speaking the server/wire.hpp protocol used by mmsyn_serve/mmsyn_client.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/journal.hpp"
#include "server/wire.hpp"

namespace mmsyn {

class RunControl;

struct ServerOptions {
  /// Unix-domain socket path; empty runs without a listener (in-process
  /// API only — the configuration the unit tests use).
  std::string socket_path;
  /// Directory for the journal (`jobs.wal`) and per-job checkpoints
  /// (`job-<id>.ckpt`). Must exist.
  std::string state_dir;
  /// Worker threads running jobs. 0 = admission-only: jobs are accepted,
  /// journaled and queued but never started — the deterministic seam for
  /// queue/recovery tests.
  int workers = 2;
  /// Admission-queue bound; a submit beyond it is rejected kQueueFull.
  int queue_limit = 64;
  /// Budget for jobs that do not set one (seconds; 0 = unlimited).
  double default_time_budget = 0.0;
  /// The watchdog cancels a running job this many seconds past its
  /// budget (covers a run whose own cooperative budget check is stuck).
  double watchdog_grace = 2.0;
  /// Transient-fault re-runs per job before it is quarantined.
  int max_transient_retries = 3;
  /// Deterministic (exception) failures before quarantine.
  int max_deterministic_failures = 2;
  /// Crash attempts (journaled kAttempt with no terminal record, i.e.
  /// the job was running when the server died) before quarantine — a job
  /// that keeps crashing the process must not crash it a third time.
  int max_crash_attempts = 2;
  /// Per-job checkpoint cadence/retention (see RunControl).
  int checkpoint_every = 25;
  int checkpoint_keep = 2;
  /// Server seed: keys the retry-backoff schedule (jobs' synthesis seeds
  /// come from their options, not from this).
  std::uint64_t seed = 1;
  /// Enable the cross-job result cache.
  bool result_cache = true;
  /// Diagnostics sink (recovery notes, retries, quarantines). Unset =
  /// silent.
  std::function<void(const std::string&)> log;
};

class JobServer {
public:
  explicit JobServer(ServerOptions options);
  ~JobServer();
  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Opens/replays the journal, re-enqueues recovered pending jobs,
  /// rebuilds the result cache, compacts the journal, starts workers and
  /// watchdog, and (when socket_path is set) binds the listener. Throws
  /// JournalError / std::runtime_error on unrecoverable startup failure.
  void start();

  /// Graceful drain: stop accepting, cooperatively cancel running jobs
  /// (journaling them kDrained once their checkpoint is on disk), wake
  /// every waiter with kDraining, join all threads. Queued jobs stay
  /// accepted in the journal; a restarted server re-runs them. Idempotent.
  void drain_and_stop();

  // ---- in-process API (the wire handlers call exactly these) ----------

  [[nodiscard]] SubmitOutcome submit(const SubmitRequest& request);

  /// Blocks until `job_id` reaches a terminal state (or the server
  /// drains). kUnknownJob for an id never accepted.
  [[nodiscard]] WaitOutcome wait(std::uint64_t job_id);

  [[nodiscard]] StatsReply stats();

  [[nodiscard]] const ServerOptions& options() const { return options_; }

private:
  enum class JobState : std::uint8_t {
    kQueued = 0,
    kRunning = 1,
    kCompleted = 2,
    kQuarantined = 3,
  };

  struct Job {
    std::uint64_t id = 0;
    std::uint64_t fingerprint = 0;
    JobOptions options;
    std::string system_text;
    JobState state = JobState::kQueued;
    JobResultReply result;  // valid in kCompleted / kQuarantined
    int crash_attempts = 0;
    int transient_retries = 0;
    int deterministic_failures = 0;
    /// Set while kRunning (owned by the worker; pointer shared with the
    /// watchdog under the server mutex).
    RunControl* control = nullptr;
    std::chrono::steady_clock::time_point started_at{};
    double effective_budget = 0.0;
    bool drain_requested = false;
    bool watchdog_fired = false;
  };

  void worker_loop();
  void watchdog_loop();
  void accept_loop();
  void serve_connection(int fd);

  /// Runs one attempt cycle of `job` (synthesis + retries) and applies
  /// the terminal or drain transition. Called by worker_loop with the
  /// job already journaled kAttempt and marked kRunning.
  void run_job(std::uint64_t job_id);

  /// Journal append with the standard transient-retry envelope; a still-
  /// failing append throws (submit rejects, worker quarantines).
  template <typename Fn>
  void journal_durably(const char* what, Fn&& fn);

  void complete_job_locked(Job& job, JobResultReply result,
                           std::unique_lock<std::mutex>& lock);
  void quarantine_job_locked(Job& job, const std::string& error,
                             std::unique_lock<std::mutex>& lock);
  void remove_job_checkpoints(std::uint64_t job_id);
  [[nodiscard]] std::string checkpoint_path_for(std::uint64_t job_id) const;
  void log_line(const std::string& message) const;

  ServerOptions options_;
  JobJournal journal_;

  std::mutex mu_;
  std::condition_variable queue_cv_;  ///< workers: queue or shutdown
  std::condition_variable done_cv_;   ///< waiters: terminal state or drain
  std::map<std::uint64_t, Job> jobs_;
  std::deque<std::uint64_t> queue_;
  std::map<std::uint64_t, JobResultReply> cache_;  ///< fingerprint -> kOk
  std::uint64_t next_job_id_ = 1;
  bool draining_ = false;
  bool started_ = false;

  StatsReply stats_{};

  std::vector<std::thread> workers_;
  std::thread watchdog_;
  std::thread acceptor_;
  int listen_fd_ = -1;
  std::vector<std::thread> connections_;
  std::vector<int> connection_fds_;
};

}  // namespace mmsyn
