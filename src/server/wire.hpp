// Versioned, length-prefixed binary wire protocol of the synthesis job
// server (DESIGN.md §15).
//
// Every message travels as one *frame* over a unix-domain stream socket:
//
//   u32  magic "MMWP"
//   u16  protocol version (kWireVersion)
//   u16  message type (MessageType)
//   u32  payload size in bytes
//   ...  payload (message-specific, see the encode_* / decode_* pairs)
//   u32  CRC-32 of the payload
//
// All integers little-endian; strings are u32-length-prefixed byte runs.
// The trailing CRC plus the explicit size reject truncation and bit rot
// the same way the checkpoint container does; the version gates format
// evolution — a server receiving a newer (or corrupt) frame answers with
// a typed kReject instead of guessing.
//
// The request/reply vocabulary is deliberately small: kSubmit admits one
// job (system text + options) and returns kSubmitOk or a typed kReject
// (kQueueFull is the backpressure signal); kWait blocks until the named
// job completes and returns kJobResult; kStats returns the server
// counters. Clients reconnect per operation, so a server restart between
// submit and wait is invisible — job ids are durable (journaled).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mmsyn {

/// Framing/protocol failure: truncated frame, bad magic, CRC mismatch,
/// version skew, or a connection that died mid-frame.
class WireError : public std::runtime_error {
public:
  explicit WireError(const std::string& message)
      : std::runtime_error("wire: " + message) {}
};

// v2: JobOptions gained power_backend (the --power registry choice).
inline constexpr std::uint16_t kWireVersion = 2;

enum class MessageType : std::uint16_t {
  kSubmit = 1,     ///< client -> server: JobOptions + system text
  kSubmitOk = 2,   ///< server -> client: job id (+ cached flag)
  kReject = 3,     ///< server -> client: typed rejection
  kWait = 4,       ///< client -> server: block until job id completes
  kJobResult = 5,  ///< server -> client: outcome + report
  kStats = 6,      ///< client -> server: counter snapshot request
  kStatsReply = 7, ///< server -> client: counter snapshot
};

/// Why a request was refused. kQueueFull is the admission backpressure
/// signal (the bounded queue is at capacity — resubmit later); the rest
/// are terminal for the request that triggered them.
enum class RejectCode : std::uint16_t {
  kQueueFull = 1,   ///< bounded admission queue at capacity
  kParseError = 2,  ///< the submitted system text does not parse
  kDraining = 3,    ///< server is draining; job journaled or resubmit
  kUnknownJob = 4,  ///< kWait for an id the journal has never accepted
  kBadRequest = 5,  ///< malformed/unsupported frame
};

/// Terminal outcome of an accepted job.
enum class JobOutcome : std::uint8_t {
  kOk = 0,               ///< ran to convergence; full result
  kBudgetExhausted = 1,  ///< per-job wall-clock budget expired (or the
                         ///< watchdog cancelled a hung job); the report
                         ///< carries the partial fine-DVS result
  kCancelled = 2,        ///< cooperatively cancelled for another reason
  kQuarantined = 3,      ///< failed deterministically twice (poisoned
                         ///< model); the report carries the error
};

/// Synthesis options of one job — the wire subset of the CLI flags.
/// Every field defaults to the synthesize_file default, so a job
/// submitted with defaults is byte-identical to the bare CLI run.
struct JobOptions {
  std::uint64_t seed = 1;
  std::int32_t population = 64;
  std::int32_t generations = 600;
  /// Fitness-evaluation threads *inside* this job (0 = all cores). The
  /// result is identical for any value; server concurrency comes from
  /// worker slots, so 1 is the sensible default.
  std::int32_t threads = 1;
  /// Backend names resolved through pipeline/backends (empty = default).
  std::string dvs_backend;
  std::string scheduler_backend;
  /// Power-model backend resolved through power/backends (empty =
  /// "paper"). Folded into the job fingerprint, so a thermal or dpm-idle
  /// result can never be served from a paper cache entry.
  std::string power_backend;
  bool consider_probabilities = true;
  /// Per-job wall-clock budget in seconds; 0 = the server default.
  /// NOTE: budgeted jobs stop at a wall-clock-dependent generation, so
  /// their (partial) results are excluded from the cross-job cache.
  double time_budget = 0.0;
  /// Report shape (timing is always excluded server-side so stored
  /// reports are byte-identical across runs and restarts).
  bool report_gantt = true;
  bool report_voltages = false;

  friend bool operator==(const JobOptions&, const JobOptions&) = default;
};

/// Cache/identity key of a submission: FNV-1a over the system text and
/// every option field (strings length-prefixed, doubles by bit pattern).
/// Two submissions with equal fingerprints produce byte-identical
/// reports, which is what lets the result cache serve repeats without
/// re-synthesis.
[[nodiscard]] std::uint64_t job_fingerprint(std::string_view system_text,
                                            const JobOptions& options);

struct SubmitRequest {
  JobOptions options;
  std::string system_text;
};

struct SubmitReply {
  std::uint64_t job_id = 0;
  /// The result cache already held this fingerprint; the job is born
  /// completed and kWait returns immediately.
  bool cached = false;
};

struct RejectReply {
  RejectCode code = RejectCode::kBadRequest;
  std::string message;
};

struct WaitRequest {
  std::uint64_t job_id = 0;
};

struct JobResultReply {
  std::uint64_t job_id = 0;
  JobOutcome outcome = JobOutcome::kOk;
  bool feasible = false;
  double avg_power_true = 0.0;
  /// The full implementation report (kQuarantined: the error message).
  std::string report;
};

struct StatsReply {
  std::uint64_t accepted = 0;     ///< jobs admitted (journaled), ever
  std::uint64_t completed = 0;    ///< jobs finished with a result
  std::uint64_t quarantined = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_lookups = 0;
  std::uint64_t queue_full_rejections = 0;
  std::uint64_t retries = 0;           ///< transient-fault re-runs
  std::uint64_t watchdog_cancels = 0;
  std::uint64_t recovered_pending = 0; ///< jobs re-enqueued at startup
  std::uint64_t queued = 0;            ///< current queue depth
  std::uint64_t running = 0;           ///< jobs in a worker right now
};

/// In-process outcome of a submit (shared by the wire client and the
/// server's direct API so tests and the daemon see one shape).
struct SubmitOutcome {
  bool accepted = false;
  SubmitReply ok;      // valid when accepted
  RejectReply reject;  // valid when !accepted
};

/// In-process outcome of a wait.
struct WaitOutcome {
  bool ok = false;
  JobResultReply result;  // valid when ok
  RejectReply reject;     // valid when !ok
};

// ---- payload serialization ------------------------------------------------

[[nodiscard]] std::string encode_submit(const SubmitRequest& request);
[[nodiscard]] SubmitRequest decode_submit(std::string_view payload);
[[nodiscard]] std::string encode_submit_ok(const SubmitReply& reply);
[[nodiscard]] SubmitReply decode_submit_ok(std::string_view payload);
[[nodiscard]] std::string encode_reject(const RejectReply& reply);
[[nodiscard]] RejectReply decode_reject(std::string_view payload);
[[nodiscard]] std::string encode_wait(const WaitRequest& request);
[[nodiscard]] WaitRequest decode_wait(std::string_view payload);
[[nodiscard]] std::string encode_job_result(const JobResultReply& reply);
[[nodiscard]] JobResultReply decode_job_result(std::string_view payload);
[[nodiscard]] std::string encode_stats(const StatsReply& reply);
[[nodiscard]] StatsReply decode_stats(std::string_view payload);

// ---- framing over a connected socket --------------------------------------

struct Frame {
  MessageType type{};
  std::string payload;
};

/// Writes one frame; throws WireError on I/O failure.
void send_frame(int fd, MessageType type, std::string_view payload);

/// Reads one frame. Returns false on a clean EOF at a frame boundary
/// (peer closed); throws WireError on mid-frame EOF, bad magic, version
/// skew, oversized payloads, or CRC mismatch.
[[nodiscard]] bool recv_frame(int fd, Frame& frame);

}  // namespace mmsyn
