// Wire client of the synthesis job server.
//
// One connection per operation: submit, wait and stats each dial the
// unix-domain socket, exchange one request/reply pair and hang up. That
// makes a server restart between operations invisible — job ids are
// journaled server-side, so a wait() issued against the restarted server
// finds the job (or its recovered result) by id. The connect itself
// retries briefly so a client racing a server restart doesn't fail
// spuriously.
#pragma once

#include <cstdint>
#include <string>

#include "server/wire.hpp"

namespace mmsyn {

class ServeClient {
public:
  explicit ServeClient(std::string socket_path)
      : socket_path_(std::move(socket_path)) {}

  /// Submits a job. Throws WireError when the server is unreachable or
  /// the protocol breaks; a *typed* refusal (queue full, parse error,
  /// draining) comes back as SubmitOutcome.reject, not an exception.
  [[nodiscard]] SubmitOutcome submit(const SubmitRequest& request);

  /// Blocks until the job completes server-side (the server parks the
  /// reply until then).
  [[nodiscard]] WaitOutcome wait(std::uint64_t job_id);

  [[nodiscard]] StatsReply stats();

private:
  /// Connects with bounded retry (the server may be mid-restart).
  [[nodiscard]] int connect_fd() const;

  std::string socket_path_;
};

}  // namespace mmsyn
