#include "server/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace mmsyn {
namespace {

/// RAII close so every early exit (exception out of recv_frame included)
/// releases the descriptor.
struct FdGuard {
  int fd;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

int ServeClient::connect_fd() const {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    throw WireError("socket path too long: " + socket_path_);
  }
  std::strncpy(addr.sun_path, socket_path_.c_str(), sizeof(addr.sun_path) - 1);

  // ~2s of bounded, fixed-step retry: enough to ride out a server
  // restart, short enough that "server is down" fails fast.
  constexpr int kAttempts = 40;
  for (int attempt = 1;; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw WireError(std::string("socket: ") + std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0) {
      return fd;
    }
    const int saved_errno = errno;
    ::close(fd);
    if (attempt >= kAttempts) {
      throw WireError("cannot connect to " + socket_path_ + ": " +
                      std::strerror(saved_errno));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

SubmitOutcome ServeClient::submit(const SubmitRequest& request) {
  FdGuard fd{connect_fd()};
  send_frame(fd.fd, MessageType::kSubmit, encode_submit(request));
  Frame frame;
  if (!recv_frame(fd.fd, frame)) {
    throw WireError("connection closed before submit reply");
  }
  SubmitOutcome out;
  if (frame.type == MessageType::kSubmitOk) {
    out.accepted = true;
    out.ok = decode_submit_ok(frame.payload);
  } else if (frame.type == MessageType::kReject) {
    out.reject = decode_reject(frame.payload);
  } else {
    throw WireError("unexpected submit reply type");
  }
  return out;
}

WaitOutcome ServeClient::wait(std::uint64_t job_id) {
  FdGuard fd{connect_fd()};
  WaitRequest request{job_id};
  send_frame(fd.fd, MessageType::kWait, encode_wait(request));
  Frame frame;
  if (!recv_frame(fd.fd, frame)) {
    throw WireError("connection closed before wait reply");
  }
  WaitOutcome out;
  if (frame.type == MessageType::kJobResult) {
    out.ok = true;
    out.result = decode_job_result(frame.payload);
  } else if (frame.type == MessageType::kReject) {
    out.reject = decode_reject(frame.payload);
  } else {
    throw WireError("unexpected wait reply type");
  }
  return out;
}

StatsReply ServeClient::stats() {
  FdGuard fd{connect_fd()};
  send_frame(fd.fd, MessageType::kStats, {});
  Frame frame;
  if (!recv_frame(fd.fd, frame)) {
    throw WireError("connection closed before stats reply");
  }
  if (frame.type != MessageType::kStatsReply) {
    throw WireError("unexpected stats reply type");
  }
  return decode_stats(frame.payload);
}

}  // namespace mmsyn
