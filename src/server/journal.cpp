#include "server/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/checksum.hpp"
#include "common/durable_file.hpp"
#include "common/failpoint.hpp"

namespace mmsyn {
namespace {

constexpr char kMagic[8] = {'M', 'M', 'S', 'Y', 'N', 'W', 'A', 'L'};
// v2: JobOptions gained power_backend (the --power registry choice).
constexpr std::uint32_t kJournalVersion = 2;
constexpr std::size_t kHeaderSize = sizeof(kMagic) + 4;
/// Same allocation guard as the wire layer: a corrupt length field must
/// not drive a huge allocation during replay.
constexpr std::uint32_t kMaxRecord = 64u << 20;

failpoint::Site fp_journal_write{"server.journal.write"};
failpoint::Site fp_result_write{"job.result.write"};

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_str(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

/// Record-payload reader; any structural problem throws JournalError,
/// which replay treats as "corrupt record — stop here".
class PayloadReader {
public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = get_u32(data_.data() + pos_);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  void expect_end() const {
    if (pos_ != data_.size()) throw JournalError("trailing bytes in record");
  }

private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) throw JournalError("truncated record");
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

void put_options(std::string& out, const JobOptions& o) {
  put_u64(out, o.seed);
  put_u32(out, static_cast<std::uint32_t>(o.population));
  put_u32(out, static_cast<std::uint32_t>(o.generations));
  put_u32(out, static_cast<std::uint32_t>(o.threads));
  put_str(out, o.dvs_backend);
  put_str(out, o.scheduler_backend);
  put_str(out, o.power_backend);
  out.push_back(o.consider_probabilities ? 1 : 0);
  std::uint64_t bits;
  std::memcpy(&bits, &o.time_budget, sizeof bits);
  put_u64(out, bits);
  out.push_back(o.report_gantt ? 1 : 0);
  out.push_back(o.report_voltages ? 1 : 0);
}

JobOptions get_options(PayloadReader& r) {
  JobOptions o;
  o.seed = r.u64();
  o.population = static_cast<std::int32_t>(r.u32());
  o.generations = static_cast<std::int32_t>(r.u32());
  o.threads = static_cast<std::int32_t>(r.u32());
  o.dvs_backend = r.str();
  o.scheduler_backend = r.str();
  o.power_backend = r.str();
  o.consider_probabilities = r.boolean();
  o.time_budget = r.f64();
  o.report_gantt = r.boolean();
  o.report_voltages = r.boolean();
  return o;
}

std::string encode_accept(std::uint64_t job_id, std::uint64_t fingerprint,
                          const JobOptions& options,
                          const std::string& system_text) {
  std::string p;
  p.push_back(static_cast<char>(JournalRecordType::kAccept));
  put_u64(p, job_id);
  put_u64(p, fingerprint);
  put_options(p, options);
  put_str(p, system_text);
  return p;
}

std::string encode_complete(const JobResultReply& result) {
  std::string p;
  p.push_back(static_cast<char>(JournalRecordType::kComplete));
  put_u64(p, result.job_id);
  p.push_back(static_cast<char>(result.outcome));
  p.push_back(result.feasible ? 1 : 0);
  std::uint64_t bits;
  std::memcpy(&bits, &result.avg_power_true, sizeof bits);
  put_u64(p, bits);
  put_str(p, result.report);
  return p;
}

/// Applies one parsed record payload to the recovery state. Unknown job
/// ids (a terminal record whose kAccept fell in a compacted-away or torn
/// region) throw — replay stops at structurally valid but unreplayable
/// records the same way it stops at corrupt ones.
void apply_record(JournalRecovery& out, std::string_view payload) {
  PayloadReader r(payload);
  const auto type = static_cast<JournalRecordType>(r.u8());
  switch (type) {
    case JournalRecordType::kAccept: {
      JournalJob job;
      job.job_id = r.u64();
      job.fingerprint = r.u64();
      job.options = get_options(r);
      job.system_text = r.str();
      r.expect_end();
      if (job.job_id + 1 > out.next_job_id) out.next_job_id = job.job_id + 1;
      out.jobs[job.job_id] = std::move(job);
      return;
    }
    case JournalRecordType::kAttempt: {
      const std::uint64_t id = r.u64();
      (void)r.u32();  // attempt ordinal (diagnostic)
      r.expect_end();
      const auto it = out.jobs.find(id);
      if (it == out.jobs.end()) throw JournalError("attempt for unknown job");
      it->second.crash_attempts += 1;
      return;
    }
    case JournalRecordType::kComplete: {
      JobResultReply result;
      result.job_id = r.u64();
      result.outcome = static_cast<JobOutcome>(r.u8());
      result.feasible = r.boolean();
      result.avg_power_true = r.f64();
      result.report = r.str();
      r.expect_end();
      const auto it = out.jobs.find(result.job_id);
      if (it == out.jobs.end()) throw JournalError("complete for unknown job");
      it->second.completed = true;
      it->second.quarantined = false;
      it->second.result = std::move(result);
      return;
    }
    case JournalRecordType::kQuarantine: {
      const std::uint64_t id = r.u64();
      std::string error = r.str();
      r.expect_end();
      const auto it = out.jobs.find(id);
      if (it == out.jobs.end()) throw JournalError("quarantine for unknown job");
      it->second.quarantined = true;
      it->second.quarantine_error = std::move(error);
      return;
    }
    case JournalRecordType::kDrained: {
      const std::uint64_t id = r.u64();
      r.expect_end();
      const auto it = out.jobs.find(id);
      if (it == out.jobs.end()) throw JournalError("drained for unknown job");
      it->second.crash_attempts = 0;
      return;
    }
  }
  throw JournalError("unknown record type");
}

}  // namespace

JournalRecovery replay_journal_bytes(std::string_view bytes,
                                     std::size_t& valid_size) {
  JournalRecovery out;
  if (bytes.size() < kHeaderSize) throw JournalError("missing header");
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    throw JournalError("bad magic");
  }
  const std::uint32_t version = get_u32(bytes.data() + sizeof(kMagic));
  if (version != kJournalVersion) {
    throw JournalError("unsupported version " + std::to_string(version));
  }

  std::size_t pos = kHeaderSize;
  valid_size = pos;
  while (pos < bytes.size()) {
    // A record needs len + payload + crc; anything shorter is a torn
    // append from a crash mid-write — truncate there.
    if (bytes.size() - pos < 8) {
      out.notes.push_back("torn tail: truncated length/crc at offset " +
                          std::to_string(pos));
      break;
    }
    const std::uint32_t len = get_u32(bytes.data() + pos);
    if (len > kMaxRecord || bytes.size() - pos - 8 < len) {
      out.notes.push_back("torn tail: incomplete record at offset " +
                          std::to_string(pos));
      break;
    }
    const std::string_view payload = bytes.substr(pos + 4, len);
    const std::uint32_t stored_crc = get_u32(bytes.data() + pos + 4 + len);
    if (stored_crc != crc32(payload)) {
      out.notes.push_back("corrupt record (CRC mismatch) at offset " +
                          std::to_string(pos) + "; tail dropped");
      break;
    }
    try {
      apply_record(out, payload);
    } catch (const JournalError& e) {
      out.notes.push_back(std::string("unreplayable record at offset ") +
                          std::to_string(pos) + ": " + e.what() +
                          "; tail dropped");
      break;
    }
    pos += 8 + len;
    valid_size = pos;
  }
  return out;
}

JobJournal::~JobJournal() { close(); }

void JobJournal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

JournalRecovery JobJournal::open(const std::string& path) {
  close();
  path_ = path;

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      bytes = ss.str();
    }
  }

  JournalRecovery recovery;
  std::size_t valid_size = 0;
  if (bytes.empty()) {
    // Fresh journal: write the header durably before accepting anything.
    std::string header(kMagic, sizeof kMagic);
    put_u32(header, kJournalVersion);
    write_file_durable(path, header);
    fsync_parent_dir(path);
    valid_size = header.size();
  } else {
    recovery = replay_journal_bytes(bytes, valid_size);
    if (valid_size < bytes.size()) {
      // Torn/corrupt tail: truncate so future appends extend a clean
      // prefix instead of burying garbage mid-file.
      if (::truncate(path.c_str(), static_cast<off_t>(valid_size)) != 0) {
        throw JournalError("cannot truncate torn tail of " + path + ": " +
                           std::strerror(errno));
      }
    }
  }

  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    throw JournalError("cannot open for append: " + path + ": " +
                       std::strerror(errno));
  }
  return recovery;
}

void JobJournal::append_record(JournalRecordType type,
                               const std::string& payload) {
  if (fd_ < 0) throw JournalError("append on closed journal");
  // fail → TransientFault (caller retries with the deterministic backoff
  // schedule), kill → simulated crash, corrupt → flip a CRC byte so the
  // record is detectably bad on replay and the torn-tail discipline
  // drops it. Result appends pass an additional, independently armable
  // site so the torture harness can target exactly the complete path.
  bool corrupt = failpoint::inject(fp_journal_write);
  if (type == JournalRecordType::kComplete) {
    if (failpoint::inject(fp_result_write)) corrupt = true;
  }

  std::string rec;
  rec.reserve(payload.size() + 8);
  put_u32(rec, static_cast<std::uint32_t>(payload.size()));
  rec += payload;
  put_u32(rec, crc32(payload));
  if (corrupt) rec.back() = static_cast<char>(rec.back() ^ 0x5a);

  const char* p = rec.data();
  std::size_t left = rec.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw JournalError("append failed: " + path_ + ": " +
                         std::strerror(errno));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    throw JournalError("fsync failed: " + path_ + ": " + std::strerror(errno));
  }
}

void JobJournal::append_accept(std::uint64_t job_id, std::uint64_t fingerprint,
                               const JobOptions& options,
                               const std::string& system_text) {
  append_record(JournalRecordType::kAccept,
                encode_accept(job_id, fingerprint, options, system_text));
}

void JobJournal::append_attempt(std::uint64_t job_id, int attempt) {
  std::string p;
  p.push_back(static_cast<char>(JournalRecordType::kAttempt));
  put_u64(p, job_id);
  put_u32(p, static_cast<std::uint32_t>(attempt));
  append_record(JournalRecordType::kAttempt, p);
}

void JobJournal::append_complete(const JobResultReply& result) {
  append_record(JournalRecordType::kComplete, encode_complete(result));
}

void JobJournal::append_quarantine(std::uint64_t job_id,
                                   const std::string& error) {
  std::string p;
  p.push_back(static_cast<char>(JournalRecordType::kQuarantine));
  put_u64(p, job_id);
  put_str(p, error);
  append_record(JournalRecordType::kQuarantine, p);
}

void JobJournal::append_drained(std::uint64_t job_id) {
  std::string p;
  p.push_back(static_cast<char>(JournalRecordType::kDrained));
  put_u64(p, job_id);
  append_record(JournalRecordType::kDrained, p);
}

void JobJournal::compact(const JournalRecovery& state,
                         const std::vector<std::uint64_t>& forget) {
  if (path_.empty()) throw JournalError("compact before open");

  std::string image(kMagic, sizeof kMagic);
  put_u32(image, kJournalVersion);
  auto add = [&image](const std::string& payload) {
    put_u32(image, static_cast<std::uint32_t>(payload.size()));
    image += payload;
    put_u32(image, crc32(payload));
  };
  for (const auto& [id, job] : state.jobs) {
    bool skip = false;
    for (const std::uint64_t f : forget) skip = skip || f == id;
    if (skip) continue;
    add(encode_accept(job.job_id, job.fingerprint, job.options,
                      job.system_text));
    // Crash-attempt history survives compaction as a run of kAttempt
    // records, so a job one crash away from quarantine stays one away.
    for (int i = 0; i < job.crash_attempts; ++i) {
      std::string p;
      p.push_back(static_cast<char>(JournalRecordType::kAttempt));
      put_u64(p, job.job_id);
      put_u32(p, static_cast<std::uint32_t>(i + 1));
      add(p);
    }
    if (job.completed) {
      add(encode_complete(job.result));
    } else if (job.quarantined) {
      std::string p;
      p.push_back(static_cast<char>(JournalRecordType::kQuarantine));
      put_u64(p, job.job_id);
      put_str(p, job.quarantine_error);
      add(p);
    }
  }

  const std::string tmp = path_ + ".tmp";
  try {
    write_file_durable(tmp, image);
  } catch (const DurableIoError& e) {
    throw JournalError(e.what());
  }
  close();
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw JournalError("rename failed: " + path_ + ": " + std::strerror(errno));
  }
  fsync_parent_dir(path_);

  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    throw JournalError("cannot reopen after compaction: " + path_ + ": " +
                       std::strerror(errno));
  }
}

}  // namespace mmsyn
