// Write-ahead job journal of the synthesis server.
//
// Every state transition of a job is made durable *before* the in-memory
// state machine acts on it, so a `kill -9` at any instant loses nothing
// that was ever acknowledged to a client:
//
//   kAccept      job admitted: id, fingerprint, options, system text
//   kAttempt     a worker is about to run the job (attempt counter);
//                a crash between kAttempt and the matching kComplete is
//                how recovery counts crash attempts
//   kComplete    terminal result: outcome + report (byte-exact)
//   kQuarantine  job failed deterministically twice; error message
//   kDrained     graceful drain checkpointed the job mid-run; resets the
//                crash-attempt count (the interruption was deliberate)
//
// On-disk format, sharing the checkpoint container's idioms
// (core/run_control.cpp): header `MMSYNWAL` + u32 version, then
// append-only records of `u32 len | payload | u32 crc32(payload)`. Each
// append is fsync'd (failpoint `server.journal.write`; result appends
// additionally pass `job.result.write`). Recovery scans until the first
// torn or corrupt record, truncates the tail there, and replays the
// prefix — exactly the torn-write discipline of the checkpoint rotation,
// applied to a log.
//
// Startup compaction rewrites the journal with only live state (pending
// jobs in full; completed/quarantined jobs' terminal records) via the
// temp + fsync + rename + dir-fsync recipe, bounding replay time for
// long-lived servers.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "server/wire.hpp"

namespace mmsyn {

class JournalError : public std::runtime_error {
public:
  explicit JournalError(const std::string& message)
      : std::runtime_error("journal: " + message) {}
};

enum class JournalRecordType : std::uint8_t {
  kAccept = 1,
  kAttempt = 2,
  kComplete = 3,
  kQuarantine = 4,
  kDrained = 5,
};

/// Replayed state of one job after recovery.
struct JournalJob {
  std::uint64_t job_id = 0;
  std::uint64_t fingerprint = 0;
  JobOptions options;
  std::string system_text;
  /// kAttempt records seen with no terminal record after them — i.e. how
  /// many times a run of this job was cut short by a crash. kDrained
  /// resets it to zero.
  int crash_attempts = 0;
  bool completed = false;     ///< terminal kComplete replayed
  bool quarantined = false;   ///< terminal kQuarantine replayed
  JobResultReply result;      ///< valid when completed
  std::string quarantine_error;  ///< valid when quarantined
};

/// Result of replaying a journal file.
struct JournalRecovery {
  /// Every job ever accepted, keyed by id (ordered — recovery re-enqueues
  /// pending jobs in admission order).
  std::map<std::uint64_t, JournalJob> jobs;
  std::uint64_t next_job_id = 1;
  /// Diagnostics: torn-tail truncation, corrupt-record stops.
  std::vector<std::string> notes;
};

/// Append-only WAL over one file. Not thread-safe — the server serializes
/// appends behind its state mutex, which also guarantees journal order
/// matches state-machine order.
class JobJournal {
public:
  JobJournal() = default;
  ~JobJournal();
  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// Opens (creating if absent) the journal at `path` and replays it.
  /// A pre-existing file with a bad header throws JournalError; a torn
  /// tail is truncated and noted, never fatal.
  [[nodiscard]] JournalRecovery open(const std::string& path);

  /// Rewrites the file to contain only live state: one kAccept (plus
  /// terminal record, if any) per job still worth remembering. Jobs whose
  /// ids appear in `forget` are dropped entirely. Atomic: temp + fsync +
  /// rename + parent-dir fsync; the journal stays open on the new file.
  void compact(const JournalRecovery& state,
               const std::vector<std::uint64_t>& forget = {});

  // Each append_* makes the record durable (write + fsync) before
  // returning; a failpoint-injected TransientFault propagates to the
  // caller, which owns the retry policy.
  void append_accept(std::uint64_t job_id, std::uint64_t fingerprint,
                     const JobOptions& options, const std::string& system_text);
  void append_attempt(std::uint64_t job_id, int attempt);
  void append_complete(const JobResultReply& result);
  void append_quarantine(std::uint64_t job_id, const std::string& error);
  void append_drained(std::uint64_t job_id);

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }

  void close();

private:
  void append_record(JournalRecordType type, const std::string& payload);

  int fd_ = -1;
  std::string path_;
};

/// Pure replay of journal bytes (exposed for tests): parses records,
/// reports the number of cleanly-parsed bytes (the truncation point for
/// a torn tail) through `valid_size`.
[[nodiscard]] JournalRecovery replay_journal_bytes(std::string_view bytes,
                                                   std::size_t& valid_size);

}  // namespace mmsyn
