#include "power/backends.hpp"

#include <stdexcept>

#include "power/dpm_idle_model.hpp"
#include "power/power_model.hpp"
#include "power/thermal_model.hpp"

namespace mmsyn {
namespace {

const PaperPowerModel& paper_instance() {
  static const PaperPowerModel kModel;
  return kModel;
}

const ThermalPowerModel& thermal_instance() {
  static const ThermalPowerModel kModel;
  return kModel;
}

const DpmIdlePowerModel& dpm_idle_instance() {
  static const DpmIdlePowerModel kModel;
  return kModel;
}

}  // namespace

const std::vector<PowerBackendInfo>& power_backends() {
  static const std::vector<PowerBackendInfo> kBackends = {
      {"paper", &paper_instance(),
       "constant static power of the powered components (the paper's Eq. 1, "
       "pinned reference behaviour)"},
      {"thermal", &thermal_instance(),
       "temperature-dependent leakage via a fixed-point temperature/leakage "
       "iteration"},
      {"dpm-idle", &dpm_idle_instance(),
       "sleep states over per-PE idle intervals with break-even times and "
       "wake-up energy, co-optimised with DVS"},
  };
  return kBackends;
}

const PowerModel* resolve_power_backend(const std::string& name) {
  for (const PowerBackendInfo& info : power_backends())
    if (name == info.name) return info.model;
  throw std::invalid_argument(
      "unknown power backend '" + name + "': registered backends are " +
      power_backend_list() + ". Pick one with --power=<name>, or omit the "
      "flag for the default '" +
      power_backends().front().name + "'");
}

const char* power_backend_name(const PowerModel* model) {
  if (model == nullptr) return power_backends().front().name;
  for (const PowerBackendInfo& info : power_backends())
    if (model == info.model) return info.name;
  return model->name();
}

std::string power_backend_list() {
  std::string out;
  for (const PowerBackendInfo& info : power_backends()) {
    if (!out.empty()) out += ", ";
    out += info.name;
  }
  return out;
}

}  // namespace mmsyn
