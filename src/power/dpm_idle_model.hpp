// Dynamic-power-management idle backend (`dpm-idle`).
//
// The paper charges a powered component its full static power for the
// whole hyper-period, even while it sits idle between scheduled
// activities. Real PEs can enter a sleep state during idle intervals —
// at the cost of a wake-up energy and only profitably when the interval
// exceeds the sleep state's break-even time (cf. the integrated DPM/DVFS
// idle-time models, arXiv:1812.07723). This backend prices that:
//
//   idle_p  = max(0, period − busy_p)           (consolidated idle)
//   gross_p = idle_p · p_stat,p · (1 − sleep_power_fraction)
//   wake_p  = p_stat,p · wake_energy_per_watt
//   take the sleep iff idle_p > break_even_seconds and gross_p > wake_p
//
// The effective static power is the baseline minus the *net* savings
// spread over the period. Sleeps are only taken when the net saving is
// positive, so dpm-idle static power is structurally ≤ the paper
// baseline — the ordering the power-backend ablation gate pins.
//
// Consolidated-idle assumption: per-PE idle is modelled as one interval
// of length period − busy_p (busy_p summed from the serialized
// schedule's post-DVS activity durations). This is exact for sequential
// resources whose slack pools at the period boundary and conservative
// for parallel hardware cores (summed durations over-count overlap,
// under-counting idle); it also makes the PV-DVS co-optimisation
// consistent: extending an activity by Δt shrinks modelled idle by
// exactly Δt, which is the linearised penalty dvs_idle_penalty charges.
//
// CLs never sleep here (a shared bus must stay reactive); their static
// power passes through at the baseline value.
#pragma once

#include "power/power_model.hpp"

namespace mmsyn {

struct DpmIdleOptions {
  /// Sleep-state power as a fraction of the PE's static power.
  double sleep_power_fraction = 0.05;
  /// Minimum idle-interval length worth entering the sleep state, s.
  double break_even_seconds = 1e-4;
  /// Wake-up energy per watt of PE static power, J/W (equivalently: the
  /// seconds of full static power one wake-up costs).
  double wake_energy_per_watt = 2e-4;
};

class DpmIdlePowerModel final : public PowerModel {
public:
  explicit DpmIdlePowerModel(DpmIdleOptions options = {})
      : options_(options) {}

  [[nodiscard]] const char* name() const override { return "dpm-idle"; }
  [[nodiscard]] std::uint64_t fingerprint() const override;
  [[nodiscard]] bool needs_pe_busy() const override { return true; }
  [[nodiscard]] ModePowerResult mode_power(
      const ModePowerContext& context) const override;
  [[nodiscard]] std::vector<double> dvs_idle_penalty(
      const Architecture& arch, double period,
      const std::vector<double>& nominal_pe_busy) const override;

  [[nodiscard]] const DpmIdleOptions& options() const { return options_; }

private:
  /// Net sleep saving for one PE with the given idle time (joules;
  /// <= 0 when the sleep is not taken). `gross`/`wake` are outputs.
  void sleep_terms(double static_power, double idle, double& gross,
                   double& wake, bool& taken) const;

  DpmIdleOptions options_;
};

}  // namespace mmsyn
