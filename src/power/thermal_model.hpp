// Temperature-dependent leakage backend (`thermal`).
//
// Static (leakage) power rises with operating temperature, and dissipated
// power raises the operating temperature — a feedback loop the paper's
// constant-p̄_stat model ignores (cf. the thermal-aware task-allocation
// line of work, arXiv:0710.4660). This backend closes the loop on a
// single lumped thermal node per mode:
//
//   T_{n+1}   = T_amb + R_th · (p̄_dyn + p_stat(T_n))
//   p_stat(T) = p_base · (1 + k · max(0, T − T_ref))
//
// iterated to a deterministic fixed point: the loop stops when two
// successive temperatures agree within `tolerance_celsius` or after
// `max_iterations` steps, whichever comes first. Both bounds are knobs
// folded into the fingerprint, and the iteration is a pure function of
// (p̄_dyn, p_base, knobs) — replay-exact by construction. The iteration
// is a contraction whenever R_th · p_base · k < 1 (true by orders of
// magnitude for embedded power scales); the cap bounds the pathological
// rest.
//
// With the default T_amb == T_ref the factor (1 + k·max(0, T − T_ref))
// is ≥ 1 for any non-negative power, so thermal static power is
// *structurally* ≥ the paper baseline — the ordering the power-backend
// ablation gate pins.
#pragma once

#include "power/power_model.hpp"

namespace mmsyn {

struct ThermalOptions {
  /// Ambient temperature, °C.
  double ambient_celsius = 25.0;
  /// Leakage reference temperature, °C (p_stat(T_ref) == p_base).
  double reference_celsius = 25.0;
  /// Lumped junction-to-ambient thermal resistance, K/W.
  double thermal_resistance = 75.0;
  /// Fractional leakage increase per kelvin above T_ref.
  double leakage_temp_coefficient = 0.03;
  /// Fixed-point convergence tolerance on T, °C.
  double tolerance_celsius = 1e-9;
  /// Iteration cap (determinism backstop for non-contractive inputs).
  int max_iterations = 64;
};

class ThermalPowerModel final : public PowerModel {
public:
  explicit ThermalPowerModel(ThermalOptions options = {})
      : options_(options) {}

  [[nodiscard]] const char* name() const override { return "thermal"; }
  [[nodiscard]] std::uint64_t fingerprint() const override;
  [[nodiscard]] ModePowerResult mode_power(
      const ModePowerContext& context) const override;

  [[nodiscard]] const ThermalOptions& options() const { return options_; }

private:
  ThermalOptions options_;
};

}  // namespace mmsyn
