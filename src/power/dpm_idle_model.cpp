#include "power/dpm_idle_model.hpp"

#include <algorithm>
#include <cassert>

#include "common/checksum.hpp"

namespace mmsyn {

std::uint64_t DpmIdlePowerModel::fingerprint() const {
  Fnv1a64 h;
  h.add_bytes("dpm-idle", 8);
  h.add(options_.sleep_power_fraction)
      .add(options_.break_even_seconds)
      .add(options_.wake_energy_per_watt);
  return h.digest();
}

void DpmIdlePowerModel::sleep_terms(double static_power, double idle,
                                    double& gross, double& wake,
                                    bool& taken) const {
  gross = idle * static_power * (1.0 - options_.sleep_power_fraction);
  wake = static_power * options_.wake_energy_per_watt;
  taken = idle > options_.break_even_seconds && gross > wake;
}

ModePowerResult DpmIdlePowerModel::mode_power(
    const ModePowerContext& context) const {
  ModePowerResult result;
  const double base = baseline_static_power(context.arch, context.pe_active,
                                            context.cl_active);
  result.baseline_static_power = base;
  result.static_power = base;
  if (context.period <= 0.0) return result;
  assert(context.pe_busy.size() == context.arch.pe_count());

  for (std::size_t p = 0; p < context.arch.pe_count(); ++p) {
    if (!context.pe_active[p]) continue;  // already shut down entirely
    const Pe& pe = context.arch.pe(PeId{static_cast<PeId::value_type>(p)});
    const double idle = std::max(0.0, context.period - context.pe_busy[p]);
    double gross = 0.0, wake = 0.0;
    bool taken = false;
    sleep_terms(pe.static_power, idle, gross, wake, taken);
    if (!taken) continue;
    result.idle_energy_saved += gross;
    result.wake_energy += wake;
  }

  // Net savings spread over the period; each taken sleep has gross >
  // wake, so the effective static power can only drop below baseline.
  result.static_power =
      base - (result.idle_energy_saved - result.wake_energy) / context.period;
  return result;
}

std::vector<double> DpmIdlePowerModel::dvs_idle_penalty(
    const Architecture& arch, double period,
    const std::vector<double>& nominal_pe_busy) const {
  // Linearised at the nominal (pre-DVS) schedule: a PE that would take a
  // sleep charges every second of slack spent on it at the sleep's
  // marginal saving rate; PEs that would not sleep charge nothing.
  std::vector<double> penalty(arch.pe_count(), 0.0);
  for (std::size_t p = 0; p < arch.pe_count(); ++p) {
    const Pe& pe = arch.pe(PeId{static_cast<PeId::value_type>(p)});
    const double idle = std::max(0.0, period - nominal_pe_busy[p]);
    double gross = 0.0, wake = 0.0;
    bool taken = false;
    sleep_terms(pe.static_power, idle, gross, wake, taken);
    if (taken)
      penalty[p] = pe.static_power * (1.0 - options_.sleep_power_fraction);
  }
  return penalty;
}

}  // namespace mmsyn
