#include "power/power_model.hpp"

#include "pipeline/artifacts.hpp"

namespace mmsyn {

double baseline_static_power(const Architecture& arch,
                             const std::vector<bool>& pe_active,
                             const std::vector<bool>& cl_active) {
  // PEs in ascending index order, then CLs — the exact accumulation order
  // of the original finalize() loop (bit-identity contract).
  double total = 0.0;
  for (std::size_t p = 0; p < arch.pe_count(); ++p)
    if (pe_active[p])
      total += arch.pe(PeId{static_cast<PeId::value_type>(p)}).static_power;
  for (std::size_t c = 0; c < arch.cl_count(); ++c)
    if (cl_active[c])
      total += arch.cl(ClId{static_cast<ClId::value_type>(c)}).static_power;
  return total;
}

double mode_total_power(const ModeEvaluation& mode) {
  return mode.dyn_power + mode.static_power;
}

ModePowerResult PaperPowerModel::mode_power(
    const ModePowerContext& context) const {
  ModePowerResult result;
  result.static_power = baseline_static_power(context.arch, context.pe_active,
                                              context.cl_active);
  // Breakdown fields stay 0: the reference model has nothing to report
  // beyond Eq. 1, and all-zero breakdowns keep reports byte-identical.
  return result;
}

}  // namespace mmsyn
