// Pluggable power-model backends for Eq. (1)'s static-power term.
//
// The paper prices a mode's power as p̄_dyn + p̄_stat with p̄_stat the sum
// of the static powers of the components left powered by the shut-down
// analysis. That physics is one *backend* here: a PowerModel maps the
// per-mode pipeline's artifacts (activity set, per-PE busy time, average
// dynamic power) to the effective static power entering Eq. 1, plus an
// accounting breakdown (baseline static, DPM idle savings, wake energy,
// operating temperature) carried on the ModeEvaluation.
//
// Contract (DESIGN.md §16):
//  - mode_power is a *pure function* of its context and the model's own
//    knobs — no globals, no RNG, no time — so the auditor's stage replay
//    and the mode cache reproduce it bit-for-bit.
//  - The reference model (`paper`, is_reference_model() == true, and a
//    null PowerModel* everywhere) is pinned bit-identical to the
//    pre-registry behaviour: the pipeline keeps its original inline
//    static-power loop on that path and the model contributes *nothing*
//    to any fingerprint, so pre-existing cache keys, checkpoints and GA
//    state fingerprints carry over unchanged.
//  - Non-reference models fold fingerprint() into the evaluation
//    fingerprint (never the schedule fingerprint — power is a stage-3..5
//    concern), so a thermal result can never be served from a paper cache
//    entry while schedule artifacts stay shareable across power backends.
#pragma once

#include <cstdint>
#include <vector>

#include "model/architecture.hpp"

namespace mmsyn {

/// Everything a backend may read about one evaluated mode. References
/// point at the caller's artifacts and are valid for the call only.
struct ModePowerContext {
  const Architecture& arch;
  /// Hyper-period of the mode, seconds.
  double period = 0.0;
  /// Average dynamic power of the mode (dyn_energy / period), watts.
  double dyn_power = 0.0;
  /// Shut-down analysis: component powered during this mode?
  const std::vector<bool>& pe_active;
  const std::vector<bool>& cl_active;
  /// Per-PE busy seconds within the hyper-period (post-DVS durations;
  /// empty unless the model declares needs_pe_busy()).
  const std::vector<double>& pe_busy;
};

/// A backend's verdict for one mode. `static_power` is the effective
/// value entering Eq. 1; the remaining fields are the reporting
/// breakdown. The reference model leaves every breakdown field 0 — the
/// report renders the power-model detail block only when one is set,
/// which is what keeps paper reports byte-identical to the seed.
struct ModePowerResult {
  /// Effective static power entering Eq. 1, watts.
  double static_power = 0.0;
  /// Σ static power of the active components (the paper's value), watts.
  double baseline_static_power = 0.0;
  /// DPM: gross idle energy recovered by sleep states, joules/period.
  double idle_energy_saved = 0.0;
  /// DPM: wake-up energy charged against those savings, joules/period.
  double wake_energy = 0.0;
  /// Thermal: converged operating temperature, °C (0 when not modelled).
  double temperature = 0.0;
};

/// Interface of one power-model backend. Implementations must be
/// immutable after construction and safe to share across threads.
class PowerModel {
public:
  virtual ~PowerModel() = default;

  /// Stable registry name (see power/backends.hpp).
  [[nodiscard]] virtual const char* name() const = 0;

  /// True only for the pinned `paper` model: the pipeline keeps its
  /// original inline path and no fingerprint anywhere changes. A null
  /// PowerModel* means the same thing.
  [[nodiscard]] virtual bool is_reference_model() const { return false; }

  /// FNV-1a over the backend identity and every knob that can change a
  /// result; folded into the evaluation fingerprint for non-reference
  /// models.
  [[nodiscard]] virtual std::uint64_t fingerprint() const = 0;

  /// Declare that mode_power reads ModePowerContext::pe_busy, so the
  /// pipeline's scale stage computes it (skipped otherwise — the hot
  /// path stays untouched for models that don't need it).
  [[nodiscard]] virtual bool needs_pe_busy() const { return false; }

  /// Static-power verdict for one mode. Pure; see the file contract.
  [[nodiscard]] virtual ModePowerResult mode_power(
      const ModePowerContext& context) const = 0;

  /// Per-PE idle-penalty rates (watts) for PV-DVS co-optimisation, or an
  /// empty vector for models with no idle interaction. The greedy DVS
  /// gradient subtracts penalty[pe] · Δt from a step's gain, so slack is
  /// only spent slowing a node down when the dynamic-energy saving beats
  /// the sleep savings that idle time would have bought. `nominal_pe_busy`
  /// is the per-PE busy time before any voltage scaling (the
  /// linearisation point of the co-optimisation).
  [[nodiscard]] virtual std::vector<double> dvs_idle_penalty(
      const Architecture& arch, double period,
      const std::vector<double>& nominal_pe_busy) const {
    (void)arch;
    (void)period;
    (void)nominal_pe_busy;
    return {};
  }
};

/// Σ static power of the active components, accumulated in the exact
/// order of the original pipeline loop (PEs in ascending index order,
/// then CLs) so the floating-point sum is bitwise-identical to the
/// pre-registry behaviour. Shared by every backend as the baseline.
[[nodiscard]] double baseline_static_power(const Architecture& arch,
                                           const std::vector<bool>& pe_active,
                                           const std::vector<bool>& cl_active);

struct ModeEvaluation;

/// Total average power of one evaluated mode as Eq. 1 sees it
/// (dyn_power + the backend's effective static_power). One shared
/// definition for the evaluator's cross-mode aggregation and the usage
/// simulator, so both always price a mode through the same power model.
[[nodiscard]] double mode_total_power(const ModeEvaluation& mode);

/// The pinned reference backend: Eq. 1 exactly as the paper states it.
/// The pipeline special-cases this model (and a null pointer) onto its
/// original inline code path; mode_power exists so tests can pin the
/// two paths equal.
class PaperPowerModel final : public PowerModel {
public:
  [[nodiscard]] const char* name() const override { return "paper"; }
  [[nodiscard]] bool is_reference_model() const override { return true; }
  /// Never folded into any fingerprint (see is_reference_model), but
  /// defined as 0 so accidental use is conspicuous and stable.
  [[nodiscard]] std::uint64_t fingerprint() const override { return 0; }
  [[nodiscard]] ModePowerResult mode_power(
      const ModePowerContext& context) const override;
};

}  // namespace mmsyn
