// Registry of the pluggable power-model backends, mirroring
// pipeline/backends: stable names map to shared immutable model
// instances (default knobs), selectable with --power=; resolution
// failures throw std::invalid_argument listing the registered names.
// The first entry is the pinned default (`paper`). Custom knob values
// bypass the registry — construct the model class directly and pass the
// pointer through the options structs.
#pragma once

#include <string>
#include <vector>

namespace mmsyn {

class PowerModel;

/// One selectable power-model backend.
struct PowerBackendInfo {
  const char* name;
  const PowerModel* model;  ///< shared immutable instance, default knobs
  const char* summary;
};

/// Registered power backends; the first entry is the default (`paper`).
[[nodiscard]] const std::vector<PowerBackendInfo>& power_backends();

/// Resolves a backend name to its shared instance; throws
/// std::invalid_argument listing the registered backends when `name` is
/// unknown. The returned pointer is valid for the program's lifetime.
[[nodiscard]] const PowerModel* resolve_power_backend(const std::string& name);

/// Stable name of a backend (a null model resolves to the reference
/// `paper` backend, matching the null-means-paper convention).
[[nodiscard]] const char* power_backend_name(const PowerModel* model);

/// Registered names as a comma-separated list, for help/error text.
[[nodiscard]] std::string power_backend_list();

}  // namespace mmsyn
