#include "power/thermal_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/checksum.hpp"

namespace mmsyn {

std::uint64_t ThermalPowerModel::fingerprint() const {
  Fnv1a64 h;
  h.add_bytes("thermal", 7);
  h.add(options_.ambient_celsius)
      .add(options_.reference_celsius)
      .add(options_.thermal_resistance)
      .add(options_.leakage_temp_coefficient)
      .add(options_.tolerance_celsius)
      .add(options_.max_iterations);
  return h.digest();
}

ModePowerResult ThermalPowerModel::mode_power(
    const ModePowerContext& context) const {
  ModePowerResult result;
  const double base = baseline_static_power(context.arch, context.pe_active,
                                            context.cl_active);
  result.baseline_static_power = base;

  auto leakage_at = [&](double t) {
    return base * (1.0 + options_.leakage_temp_coefficient *
                             std::max(0.0, t - options_.reference_celsius));
  };

  // Fixed-point temperature/leakage iteration (see header). Starting at
  // ambient, each step feeds the current leakage estimate back into the
  // thermal node; deterministic stop on tolerance or the iteration cap.
  double temperature = options_.ambient_celsius;
  for (int i = 0; i < options_.max_iterations; ++i) {
    const double next =
        options_.ambient_celsius +
        options_.thermal_resistance * (context.dyn_power +
                                       leakage_at(temperature));
    const bool converged =
        std::abs(next - temperature) <= options_.tolerance_celsius;
    temperature = next;
    if (converged) break;
  }

  result.temperature = temperature;
  result.static_power = leakage_at(temperature);
  return result;
}

}  // namespace mmsyn
