#include "audit/auditor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "dvs/dvs_graph.hpp"
#include "dvs/pv_dvs.hpp"
#include "energy/artifact_hash.hpp"
#include "energy/evaluator.hpp"
#include "model/mapping.hpp"
#include "pipeline/mode_pipeline.hpp"
#include "model/system.hpp"
#include "sched/validate.hpp"

namespace mmsyn {
namespace {

/// Relative closeness for recomputed energies/powers/areas: the scale is
/// the larger magnitude, floored so exact-zero comparisons stay exact up
/// to the tolerance itself.
[[nodiscard]] bool close_rel(double a, double b, double rel) {
  const double scale = std::max({std::abs(a), std::abs(b), 1e-9});
  return std::abs(a - b) <= rel * scale;
}

void push(std::vector<AuditViolation>& out, AuditViolation::Kind kind,
          std::string detail) {
  out.push_back(AuditViolation{kind, std::move(detail)});
}

[[nodiscard]] AuditViolation::Kind from_schedule_kind(
    ScheduleViolation::Kind kind) {
  switch (kind) {
    case ScheduleViolation::Kind::kPrecedence:
      return AuditViolation::Kind::kPrecedence;
    case ScheduleViolation::Kind::kResourceOverlap:
      return AuditViolation::Kind::kResourceOverlap;
    case ScheduleViolation::Kind::kRouting:
      return AuditViolation::Kind::kRouting;
    case ScheduleViolation::Kind::kDuration:
      return AuditViolation::Kind::kDuration;
    case ScheduleViolation::Kind::kCoreMissing:
      return AuditViolation::Kind::kCoreMissing;
    case ScheduleViolation::Kind::kDeadline:
      return AuditViolation::Kind::kDeadline;
  }
  return AuditViolation::Kind::kDuration;
}

/// Total length of the union of [start, finish) intervals.
[[nodiscard]] double merged_busy_time(
    std::vector<std::pair<double, double>> intervals) {
  std::sort(intervals.begin(), intervals.end());
  double total = 0.0;
  double end = -std::numeric_limits<double>::infinity();
  for (const auto& [s, f] : intervals) {
    if (s > end) {
      total += f - s;
      end = f;
    } else if (f > end) {
      total += f - end;
      end = f;
    }
  }
  return total;
}

/// Fig. 5 consistency for one DVS hardware PE: the segment chain must
/// conserve both the PE's busy time and its nominal dynamic energy.
void check_serialization(const Mode& mode, const ModeSchedule& schedule,
                         const ModeMapping& mapping, const DvsGraph& graph,
                         const TechLibrary& tech, PeId p,
                         const std::string& pe_name,
                         const AuditOptions& options,
                         std::vector<AuditViolation>& out) {
  double segment_time = 0.0;
  double segment_energy = 0.0;
  bool any_segment = false;
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    if (static_cast<DvsNodeKind>(graph.kind[i]) != DvsNodeKind::kSegment ||
        graph.pe[i] != static_cast<std::int32_t>(p.index()))
      continue;
    segment_time += graph.tmin[i];
    segment_energy += graph.e_nom[i];
    any_segment = true;
  }

  std::vector<std::pair<double, double>> intervals;
  double task_energy = 0.0;
  for (const ScheduledTask& st : schedule.tasks) {
    if (mapping.task_to_pe[st.task.index()] != p) continue;
    intervals.emplace_back(st.start, st.finish);
    const Task& task = mode.graph.task(st.task);
    task_energy += tech.require(task.type, p).energy();
  }
  if (intervals.empty()) return;  // idle PE: no segments expected
  if (!any_segment) {
    push(out, AuditViolation::Kind::kSerialization,
         "mode '" + mode.name + "', PE '" + pe_name +
             "': tasks scheduled but no Fig. 5 segments in the DVS graph");
    return;
  }

  const double busy = merged_busy_time(std::move(intervals));
  if (!close_rel(segment_time, busy, options.relative_tolerance)) {
    std::ostringstream os;
    os << "mode '" << mode.name << "', PE '" << pe_name
       << "': segment chain covers " << segment_time << " s but the PE is busy "
       << busy << " s";
    push(out, AuditViolation::Kind::kSerialization, os.str());
  }
  if (!close_rel(segment_energy, task_energy, options.relative_tolerance)) {
    std::ostringstream os;
    os << "mode '" << mode.name << "', PE '" << pe_name
       << "': segment nominal energy " << segment_energy
       << " J != sum of task energies " << task_energy << " J";
    push(out, AuditViolation::Kind::kSerialization, os.str());
  }
}

}  // namespace

AuditOptions audit_options_for(const SynthesisOptions& options) {
  AuditOptions audit;
  audit.use_dvs = options.use_dvs;
  audit.dvs = options.dvs_final;
  audit.scheduling_policy = options.scheduling_policy;
  audit.power = options.power;
  return audit;
}

const char* to_string(AuditViolation::Kind kind) {
  switch (kind) {
    case AuditViolation::Kind::kMappingMalformed: return "mapping-malformed";
    case AuditViolation::Kind::kAllocationInconsistent:
      return "allocation-inconsistent";
    case AuditViolation::Kind::kScheduleMissing: return "schedule-missing";
    case AuditViolation::Kind::kPrecedence: return "precedence";
    case AuditViolation::Kind::kResourceOverlap: return "resource-overlap";
    case AuditViolation::Kind::kRouting: return "routing";
    case AuditViolation::Kind::kDuration: return "duration";
    case AuditViolation::Kind::kCoreMissing: return "core-missing";
    case AuditViolation::Kind::kDeadline: return "deadline";
    case AuditViolation::Kind::kTimingMismatch: return "timing-mismatch";
    case AuditViolation::Kind::kTransitionTime: return "transition-time";
    case AuditViolation::Kind::kVoltageLevel: return "voltage-level";
    case AuditViolation::Kind::kSerialization: return "serialization";
    case AuditViolation::Kind::kEnergyMismatch: return "energy-mismatch";
    case AuditViolation::Kind::kAreaMismatch: return "area-mismatch";
    case AuditViolation::Kind::kModeCacheMismatch: return "mode-cache-mismatch";
    case AuditViolation::Kind::kStageReplayMismatch:
      return "stage-replay-mismatch";
  }
  return "unknown";
}

std::string AuditReport::to_string() const {
  std::ostringstream os;
  os << "audit: " << (passed() ? "PASSED" : "FAILED") << " ("
     << modes_checked << " modes, " << transitions_checked
     << " transitions, " << violations.size() << " violations)\n";
  for (const AuditViolation& v : violations)
    os << "  [" << mmsyn::to_string(v.kind) << "] " << v.detail << "\n";
  return os.str();
}

void check_voltage_levels(const VoltageSchedule& schedule,
                          const Architecture& arch, double relative_tolerance,
                          std::vector<AuditViolation>& out) {
  for (std::size_t i = 0; i < schedule.activities.size(); ++i) {
    const ActivityVoltageSchedule& activity = schedule.activities[i];
    if (activity.kind == DvsNodeKind::kComm || !activity.pe.valid()) continue;
    const Pe& pe = arch.pe(activity.pe);
    for (const VoltageSlice& slice : activity.slices) {
      bool on_level = false;
      for (double level : pe.voltage_levels)
        if (close_rel(slice.voltage, level, relative_tolerance)) {
          on_level = true;
          break;
        }
      if (!on_level) {
        std::ostringstream os;
        os << "activity " << i << " on PE '" << pe.name << "': slice voltage "
           << slice.voltage << " V is not a validated level of the PE";
        push(out, AuditViolation::Kind::kVoltageLevel, os.str());
      }
    }
  }
}

AuditReport audit_result(const System& system, const SynthesisResult& result,
                         const AuditOptions& options) {
  AuditReport report;
  std::vector<AuditViolation>& out = report.violations;
  const Omsm& omsm = system.omsm;
  const Architecture& arch = system.arch;
  const TechLibrary& tech = system.tech;
  const Evaluation& eval = result.evaluation;
  const std::size_t num_modes = omsm.mode_count();
  const std::size_t num_pes = arch.pe_count();

  // ---- Structural gate: nothing below is safe to index otherwise. ------
  if (result.mapping.modes.size() != num_modes) {
    push(out, AuditViolation::Kind::kMappingMalformed,
         "mapping has " + std::to_string(result.mapping.modes.size()) +
             " modes, system has " + std::to_string(num_modes));
    return report;
  }
  if (!mapping_is_well_formed(result.mapping, omsm, arch, tech)) {
    push(out, AuditViolation::Kind::kMappingMalformed,
         "mapping fails structural validation (bad PE id, wrong task count, "
         "or task type unsupported on its PE)");
    return report;
  }
  if (result.cores.per_mode.size() != num_modes) {
    push(out, AuditViolation::Kind::kAllocationInconsistent,
         "core allocation has " + std::to_string(result.cores.per_mode.size()) +
             " modes, system has " + std::to_string(num_modes));
    return report;
  }
  for (std::size_t m = 0; m < num_modes; ++m)
    if (result.cores.per_mode[m].size() != num_pes) {
      push(out, AuditViolation::Kind::kAllocationInconsistent,
           "core allocation of mode " + std::to_string(m) + " covers " +
               std::to_string(result.cores.per_mode[m].size()) +
               " PEs, architecture has " + std::to_string(num_pes));
      return report;
    }
  if (eval.modes.size() != num_modes ||
      eval.transition_times.size() != omsm.transition_count() ||
      eval.transition_violations.size() != omsm.transition_count() ||
      eval.pe_used_area.size() != num_pes ||
      eval.pe_area_violation.size() != num_pes) {
    push(out, AuditViolation::Kind::kAllocationInconsistent,
         "evaluation structure does not match the system (mode / transition "
         "/ PE counts differ)");
    return report;
  }

  // ---- Core-allocation invariants. -------------------------------------
  for (PeId p : arch.pe_ids()) {
    const Pe& pe = arch.pe(p);
    if (is_software(pe.kind)) {
      for (std::size_t m = 0; m < num_modes; ++m)
        if (!result.cores.per_mode[m][p.index()].empty()) {
          push(out, AuditViolation::Kind::kAllocationInconsistent,
               "software PE '" + pe.name + "' has cores allocated in mode " +
                   std::to_string(m));
          break;
        }
    } else if (pe.kind == PeKind::kAsic) {
      // ASIC cores are static silicon: identical in every mode.
      for (std::size_t m = 1; m < num_modes; ++m)
        if (!(result.cores.per_mode[m][p.index()] ==
              result.cores.per_mode[0][p.index()])) {
          push(out, AuditViolation::Kind::kAllocationInconsistent,
               "ASIC '" + pe.name + "' core set differs between mode 0 and "
                   "mode " + std::to_string(m));
          break;
        }
    }
  }

  // Staged pipeline mirroring the configuration the result claims: used
  // by the per-mode stage replay below, which re-runs every stage
  // explicitly and demands *exact* equality with the carried artifacts —
  // the pipeline contract (DESIGN.md §11) says cold, cached, and staged
  // execution all share the same stage code, so any drift is a bug.
  PipelineOptions popts;
  popts.scheduling_policy = options.scheduling_policy;
  popts.use_dvs = options.use_dvs;
  popts.dvs = options.dvs;
  popts.power = options.power;
  const ModePipeline pipeline(system, popts);

  // ---- Per-mode replay. -------------------------------------------------
  for (std::size_t m = 0; m < num_modes; ++m) {
    const ModeId mode_id{static_cast<ModeId::value_type>(m)};
    const Mode& mode = omsm.mode(mode_id);
    const ModeEvaluation& me = eval.modes[m];
    const ModeMapping& mapping = result.mapping.modes[m];
    ++report.modes_checked;

    if (!me.schedule) {
      push(out, AuditViolation::Kind::kScheduleMissing,
           "mode '" + mode.name + "' carries no schedule (was the result "
           "produced with keep_schedules?)");
      continue;
    }
    const ModeSchedule& schedule = *me.schedule;

    // Independent executability check; deadlines only when the result
    // claims this mode meets them (penalised infeasible candidates may
    // legitimately carry late schedules).
    ValidateOptions vopts;
    vopts.tolerance = options.time_tolerance;
    vopts.check_deadlines = me.timing_violation <= options.time_tolerance;
    for (const ScheduleViolation& v :
         validate_schedule(mode, schedule, mapping, arch, tech,
                           result.cores.per_mode[m], vopts))
      push(out, from_schedule_kind(v.kind),
           "mode '" + mode.name + "': " + v.detail);

    // Deadline / hyper-period bound: recompute the claimed violation sum
    // (one shared definition with the evaluator — sched/validate.hpp).
    const double timing = schedule_timing_violation(mode, schedule);
    if (!close_rel(timing, me.timing_violation,
                   options.relative_tolerance) &&
        std::abs(timing - me.timing_violation) > options.time_tolerance) {
      std::ostringstream os;
      os << "mode '" << mode.name << "': recomputed timing violation "
         << timing << " s != claimed " << me.timing_violation << " s";
      push(out, AuditViolation::Kind::kTimingMismatch, os.str());
    }
    const double makespan = schedule_makespan(schedule);
    if (std::abs(makespan - me.makespan) > options.time_tolerance &&
        !close_rel(makespan, me.makespan, options.relative_tolerance)) {
      std::ostringstream os;
      os << "mode '" << mode.name << "': recomputed makespan " << makespan
         << " s != claimed " << me.makespan << " s";
      push(out, AuditViolation::Kind::kTimingMismatch, os.str());
    }

    // Voltage-schedule replay: levels within the validated set, and the
    // Fig. 5 serialization transform conserves time and energy.
    if (options.use_dvs) {
      const DvsGraph graph = build_dvs_graph(mode, schedule, mapping, arch,
                                             tech, options.dvs.scale_hardware);
      const PvDvsResult dvs = run_pv_dvs(graph, arch, options.dvs);
      check_voltage_levels(derive_voltage_schedule(graph, dvs, arch), arch,
                           options.relative_tolerance, out);
      if (options.dvs.scale_hardware)
        for (PeId p : arch.pe_ids()) {
          const Pe& pe = arch.pe(p);
          if (is_hardware(pe.kind) && pe.dvs_enabled)
            check_serialization(mode, schedule, mapping, graph, tech, p,
                                pe.name, options, out);
        }
    }

    // Stage replay: re-run the explicit pipeline stages and hold the
    // result to exact equality with what the evaluation carries. Stage
    // 1–2 must reproduce the kept schedule bit-for-bit, stages 3–5 the
    // claimed per-mode quantities.
    {
      const std::vector<CoreSet>& hw_cores = result.cores.per_mode[m];
      const CommMapping comm = pipeline.comm_mapping(m, mapping, hw_cores);
      const ModeSchedule rebuilt =
          pipeline.schedule(m, mapping, hw_cores, comm);
      if (!equal_mode_schedules(rebuilt, schedule)) {
        push(out, AuditViolation::Kind::kStageReplayMismatch,
             "mode '" + mode.name +
                 "': stages 1-2 (comm mapping + scheduling) do not "
                 "reproduce the carried schedule exactly");
      } else {
        const ModeEvaluation staged =
            pipeline.evaluate_scheduled(m, mapping, rebuilt);
        if (!equal_mode_evaluations(staged, me)) {
          push(out, AuditViolation::Kind::kStageReplayMismatch,
               "mode '" + mode.name +
                   "': stages 3-5 (serialize/scale/finalize) do not "
                   "reproduce the claimed mode evaluation exactly");
        }
      }
    }
  }

  // ---- Area recompute. --------------------------------------------------
  double total_area_violation = 0.0;
  for (PeId p : arch.pe_ids()) {
    const Pe& pe = arch.pe(p);
    if (!is_hardware(pe.kind)) continue;
    const double used = result.cores.required_area(p, tech);
    const double over = std::max(0.0, used - pe.area_capacity);
    total_area_violation += over;
    if (!close_rel(used, eval.pe_used_area[p.index()],
                   options.relative_tolerance)) {
      std::ostringstream os;
      os << "PE '" << pe.name << "': recomputed used area " << used
         << " != claimed " << eval.pe_used_area[p.index()];
      push(out, AuditViolation::Kind::kAreaMismatch, os.str());
    }
    if (!close_rel(over, eval.pe_area_violation[p.index()],
                   options.relative_tolerance)) {
      std::ostringstream os;
      os << "PE '" << pe.name << "': recomputed area violation " << over
         << " != claimed " << eval.pe_area_violation[p.index()];
      push(out, AuditViolation::Kind::kAreaMismatch, os.str());
    }
  }
  if (!close_rel(total_area_violation, eval.total_area_violation,
                 options.relative_tolerance)) {
    std::ostringstream os;
    os << "recomputed total area violation " << total_area_violation
       << " != claimed " << eval.total_area_violation;
    push(out, AuditViolation::Kind::kAreaMismatch, os.str());
  }

  // ---- Mode-transition (FPGA reconfiguration) recompute. -----------------
  for (std::size_t t = 0; t < omsm.transition_count(); ++t) {
    const ModeTransition& tr =
        omsm.transition(TransitionId{static_cast<TransitionId::value_type>(t)});
    ++report.transitions_checked;
    double time = 0.0;
    for (PeId p : arch.pe_ids()) {
      const Pe& pe = arch.pe(p);
      if (pe.kind != PeKind::kFpga) continue;
      const double delta = result.cores.cores(tr.to, p).delta_area_from(
          result.cores.cores(tr.from, p), tech, p);
      time = std::max(time, delta / pe.reconfig_bandwidth);
    }
    if (std::abs(time - eval.transition_times[t]) > options.time_tolerance &&
        !close_rel(time, eval.transition_times[t],
                   options.relative_tolerance)) {
      std::ostringstream os;
      os << "transition " << omsm.mode(tr.from).name << " -> "
         << omsm.mode(tr.to).name << ": recomputed reconfiguration time "
         << time << " s != claimed " << eval.transition_times[t] << " s";
      push(out, AuditViolation::Kind::kTransitionTime, os.str());
    }
    const double over = std::max(0.0, time - tr.max_transition_time);
    if (std::abs(over - eval.transition_violations[t]) >
            options.time_tolerance &&
        !close_rel(over, eval.transition_violations[t],
                   options.relative_tolerance)) {
      std::ostringstream os;
      os << "transition " << omsm.mode(tr.from).name << " -> "
         << omsm.mode(tr.to).name << ": recomputed t_T^max violation " << over
         << " s != claimed " << eval.transition_violations[t] << " s";
      push(out, AuditViolation::Kind::kTransitionTime, os.str());
    }
  }

  // ---- Full energy/power recompute through a fresh evaluator. -----------
  // The true-Ψ numbers are weight-independent, so this holds for the
  // probability-neglecting baseline too (whose *objective* used uniform
  // weights but whose report uses the true Ψ).
  EvaluationOptions eopts;
  eopts.use_dvs = options.use_dvs;
  eopts.dvs = options.dvs;
  eopts.scheduling_policy = options.scheduling_policy;
  eopts.power = options.power;
  const Evaluator evaluator(system, eopts);
  const Evaluation fresh = evaluator.evaluate(result.mapping, result.cores);
  if (!close_rel(fresh.avg_power_true, eval.avg_power_true,
                 options.relative_tolerance)) {
    std::ostringstream os;
    os << "recomputed average power " << fresh.avg_power_true
       << " W != claimed " << eval.avg_power_true << " W";
    push(out, AuditViolation::Kind::kEnergyMismatch, os.str());
  }
  for (std::size_t m = 0; m < num_modes; ++m) {
    const Mode& mode = omsm.mode(ModeId{static_cast<ModeId::value_type>(m)});
    if (!close_rel(fresh.modes[m].dyn_power, eval.modes[m].dyn_power,
                   options.relative_tolerance)) {
      std::ostringstream os;
      os << "mode '" << mode.name << "': recomputed dynamic power "
         << fresh.modes[m].dyn_power << " W != claimed "
         << eval.modes[m].dyn_power << " W";
      push(out, AuditViolation::Kind::kEnergyMismatch, os.str());
    }
    if (!close_rel(fresh.modes[m].static_power, eval.modes[m].static_power,
                   options.relative_tolerance)) {
      std::ostringstream os;
      os << "mode '" << mode.name << "': recomputed static power "
         << fresh.modes[m].static_power << " W != claimed "
         << eval.modes[m].static_power << " W";
      push(out, AuditViolation::Kind::kEnergyMismatch, os.str());
    }
  }

  // ---- Incremental-evaluation invariant. --------------------------------
  // A cached evaluation must be indistinguishable from a cache-disabled
  // one (DESIGN.md §10). Evaluate twice through a fresh per-mode memo —
  // the first pass fills it, the second is served entirely from it — and
  // demand *exact* equality with the cold recompute above.
  {
    auto equal_eval = [&](const Evaluation& a, const Evaluation& b) {
      if (a.modes.size() != b.modes.size()) return false;
      for (std::size_t m = 0; m < a.modes.size(); ++m)
        if (!equal_mode_evaluations(a.modes[m], b.modes[m])) return false;
      return a.avg_power_true == b.avg_power_true &&
             a.avg_power_weighted == b.avg_power_weighted &&
             a.pe_used_area == b.pe_used_area &&
             a.pe_area_violation == b.pe_area_violation &&
             a.total_area_violation == b.total_area_violation &&
             a.transition_times == b.transition_times &&
             a.transition_violations == b.transition_violations &&
             a.weighted_timing_violation == b.weighted_timing_violation;
    };
    ModeEvalCache cache;
    const Evaluation filled =
        evaluator.evaluate(result.mapping, result.cores, &cache);
    const Evaluation replayed =
        evaluator.evaluate(result.mapping, result.cores, &cache);
    if (!equal_eval(filled, fresh)) {
      push(out, AuditViolation::Kind::kModeCacheMismatch,
           "cache-filling evaluation differs from the cache-disabled one");
    } else if (!equal_eval(replayed, fresh)) {
      push(out, AuditViolation::Kind::kModeCacheMismatch,
           "cache-served evaluation differs from the cache-disabled one");
    } else if (cache.hits() != static_cast<long>(num_modes)) {
      std::ostringstream os;
      os << "cache replay hit " << cache.hits() << " of " << num_modes
         << " modes";
      push(out, AuditViolation::Kind::kModeCacheMismatch, os.str());
    }

    // Stage-granular resume: seed a fresh memo with only the schedule
    // artifacts (no whole-mode entries) and demand the evaluation still
    // reproduces the cold one exactly, with every mode resuming from the
    // stage store — the path the synthesis driver uses when the final
    // fine-DVS evaluation reuses the GA's schedules.
    ModeEvalCache stage_only;
    stage_only.restore_schedules(cache.schedule_entries(), 0, 0);
    const Evaluation staged =
        evaluator.evaluate(result.mapping, result.cores, &stage_only);
    if (!equal_eval(staged, fresh)) {
      push(out, AuditViolation::Kind::kModeCacheMismatch,
           "schedule-stage-served evaluation differs from the "
           "cache-disabled one");
    } else if (stage_only.schedule_hits() != static_cast<long>(num_modes)) {
      std::ostringstream os;
      os << "schedule-stage replay hit " << stage_only.schedule_hits()
         << " of " << num_modes << " modes";
      push(out, AuditViolation::Kind::kModeCacheMismatch, os.str());
    }
  }

  return report;
}

}  // namespace mmsyn
