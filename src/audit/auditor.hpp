// Cross-layer invariant auditor: independent replay of a finished
// synthesis result against the model layer.
//
// The synthesiser's own evaluation and the report both trust the inner
// loop that produced them. This module re-derives every claim a
// SynthesisResult makes from first principles — schedule executability
// (precedence, resource exclusiveness, routing), per-mode deadline and
// hyper-period bounds, FPGA reconfiguration time against each OMSM edge's
// t_T^max, voltage levels within each PE's validated set, the Fig. 5
// serialization transform for DVS hardware cores, a full re-computation
// of the energy/power numbers, and a stage-by-stage replay of the
// evaluation pipeline (DESIGN.md §11) demanding exact artifact equality —
// and reports structured violations instead of asserting. The integration tests run every result
// through the auditor (tests/support/audit_every_result.hpp), so a
// scheduler or evaluator regression surfaces as a typed violation rather
// than a silently wrong power figure.
#pragma once

#include <string>
#include <vector>

#include "core/cosynth.hpp"
#include "dvs/voltage_schedule.hpp"

namespace mmsyn {

/// Auditing knobs. The options must mirror the configuration the result
/// was produced with (use audit_options_for to derive them from the
/// SynthesisOptions) — the energy re-computation is exact only when the
/// auditor replays the same DVS settings and scheduling policy.
struct AuditOptions {
  /// Replay PV-DVS on DVS-enabled PEs (must match the synthesis run).
  bool use_dvs = false;
  /// Fine DVS settings of the final evaluation being audited.
  PvDvsOptions dvs;
  /// Inner-loop list-scheduler priority used by the synthesis run.
  SchedulingPolicy scheduling_policy = SchedulingPolicy::kBottomLevel;
  /// Power-model backend the result was produced with (null = the pinned
  /// `paper` reference model). The replay evaluators must price static
  /// power through the same backend or every recompute would mismatch.
  const PowerModel* power = nullptr;
  /// Relative tolerance for re-computed energies/powers/areas.
  double relative_tolerance = 1e-6;
  /// Absolute tolerance for time comparisons (seconds).
  double time_tolerance = 1e-9;
};

/// Derives the audit configuration matching a synthesis run: the *final*
/// (reported) evaluation settings, which is what SynthesisResult carries.
[[nodiscard]] AuditOptions audit_options_for(const SynthesisOptions& options);

/// One detected inconsistency between the result and the model.
struct AuditViolation {
  enum class Kind {
    kMappingMalformed,        ///< mapping fails structural validation
    kAllocationInconsistent,  ///< core allocation malformed / ASIC varies
    kScheduleMissing,         ///< a mode evaluation lacks its schedule
    kPrecedence,              ///< consumer starts before its input arrives
    kResourceOverlap,         ///< overlap on a sequential resource
    kRouting,                 ///< comm mapped to a CL missing an endpoint
    kDuration,                ///< activity duration disagrees with model
    kCoreMissing,             ///< HW task lacks an allocated core instance
    kDeadline,                ///< task finishes after min(deadline, period)
    kTimingMismatch,          ///< recomputed timing violation != claimed
    kTransitionTime,          ///< reconfiguration time mismatch / over limit
    kVoltageLevel,            ///< slice voltage outside the PE's level set
    kSerialization,           ///< Fig. 5 segment chain inconsistent
    kEnergyMismatch,          ///< recomputed power disagrees with claimed
    kAreaMismatch,            ///< recomputed area/violation != claimed
    kModeCacheMismatch,       ///< cached evaluation != cache-disabled one
    kStageReplayMismatch,     ///< staged pipeline replay != claimed artifacts
  };
  Kind kind;
  std::string detail;
};

[[nodiscard]] const char* to_string(AuditViolation::Kind kind);

/// Everything the auditor found, plus coverage counters so a passing
/// report can be distinguished from a vacuous one.
struct AuditReport {
  std::vector<AuditViolation> violations;
  int modes_checked = 0;
  int transitions_checked = 0;

  [[nodiscard]] bool passed() const { return violations.empty(); }
  /// Human-readable rendering (one line per violation).
  [[nodiscard]] std::string to_string() const;
};

/// Audits `result` against `system`. Never throws on a *bad result* —
/// every inconsistency becomes a violation; exceptions indicate auditor
/// bugs or a result so malformed it cannot be indexed (which the initial
/// structural checks turn into violations before deeper checks run).
[[nodiscard]] AuditReport audit_result(const System& system,
                                       const SynthesisResult& result,
                                       const AuditOptions& options = {});

/// Checks that every slice of `schedule` uses a validated voltage level of
/// its PE (within `relative_tolerance`). Exposed separately so the
/// voltage-level check is unit-testable with hand-corrupted schedules.
void check_voltage_levels(const VoltageSchedule& schedule,
                          const Architecture& arch, double relative_tolerance,
                          std::vector<AuditViolation>& out);

}  // namespace mmsyn
