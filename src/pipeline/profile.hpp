// Per-stage instrumentation of the mode-evaluation pipeline.
//
// A PipelineProfiler accumulates monotonic wall time and call counts per
// pipeline stage with relaxed atomics, so the GA's parallel inner loops
// can record into one shared profiler without synchronisation or result
// perturbation. Attach one via PipelineOptions::profiler (surfaced as
// --profile on the CLI binaries); a null profiler costs nothing — the
// stage timer reads the clock only when a profiler is present, and
// profiling never feeds back into any computed result.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace mmsyn {

/// The five stages of ModePipeline, in execution order.
enum class PipelineStage {
  kCommMapping = 0,  ///< communication-aware priority assignment
  kSchedule,         ///< list scheduling + CL routing
  kSerialize,        ///< Fig. 5 DVS-graph construction
  kScale,            ///< PV-DVS voltage scaling / nominal energy sum
  kFinalize,         ///< timing penalty + shut-down analysis
};

inline constexpr std::size_t kPipelineStageCount = 5;

/// Short stable stage name ("comm-mapping", "schedule", ...).
[[nodiscard]] const char* to_string(PipelineStage stage);

/// Thread-safe accumulator of per-stage timings.
class PipelineProfiler {
public:
  struct StageStats {
    long calls = 0;
    double seconds = 0.0;
  };

  void record(PipelineStage stage, std::uint64_t nanos) {
    const auto i = static_cast<std::size_t>(stage);
    calls_[i].fetch_add(1, std::memory_order_relaxed);
    nanos_[i].fetch_add(nanos, std::memory_order_relaxed);
  }

  [[nodiscard]] StageStats stats(PipelineStage stage) const {
    const auto i = static_cast<std::size_t>(stage);
    return {calls_[i].load(std::memory_order_relaxed),
            static_cast<double>(nanos_[i].load(std::memory_order_relaxed)) *
                1e-9};
  }

  void reset() {
    for (auto& c : calls_) c.store(0, std::memory_order_relaxed);
    for (auto& n : nanos_) n.store(0, std::memory_order_relaxed);
  }

  /// Renders the per-stage table (calls, total time, share of pipeline
  /// time) plus the cache hit rates when any lookups were made, via
  /// common/table. Pass -1 counters to omit a cache row.
  [[nodiscard]] std::string table(long eval_hits, long eval_lookups,
                                  long schedule_hits,
                                  long schedule_lookups) const;

private:
  std::array<std::atomic<long>, kPipelineStageCount> calls_{};
  std::array<std::atomic<std::uint64_t>, kPipelineStageCount> nanos_{};
};

/// RAII stage timer: no-op when `profiler` is null.
class StageTimer {
public:
  StageTimer(PipelineProfiler* profiler, PipelineStage stage)
      : profiler_(profiler), stage_(stage) {
    if (profiler_) start_ = std::chrono::steady_clock::now();
  }
  ~StageTimer() {
    if (profiler_)
      profiler_->record(
          stage_,
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count()));
  }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

private:
  PipelineProfiler* profiler_;
  PipelineStage stage_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace mmsyn
