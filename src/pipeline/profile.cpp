#include "pipeline/profile.hpp"

#include <sstream>

#include "common/table.hpp"

namespace mmsyn {

const char* to_string(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kCommMapping: return "comm-mapping";
    case PipelineStage::kSchedule: return "schedule";
    case PipelineStage::kSerialize: return "serialize";
    case PipelineStage::kScale: return "scale";
    case PipelineStage::kFinalize: return "finalize";
  }
  return "?";
}

std::string PipelineProfiler::table(long eval_hits, long eval_lookups,
                                    long schedule_hits,
                                    long schedule_lookups) const {
  constexpr PipelineStage kStages[] = {
      PipelineStage::kCommMapping, PipelineStage::kSchedule,
      PipelineStage::kSerialize, PipelineStage::kScale,
      PipelineStage::kFinalize};

  double total_seconds = 0.0;
  for (PipelineStage s : kStages) total_seconds += stats(s).seconds;

  TextTable table;
  table.set_header({"stage", "calls", "time(s)", "share"});
  for (PipelineStage s : kStages) {
    const StageStats st = stats(s);
    const double share =
        total_seconds > 0.0 ? st.seconds / total_seconds : 0.0;
    table.add_row({to_string(s), std::to_string(st.calls),
                   TextTable::num(st.seconds, 3),
                   TextTable::pct(share) + "%"});
  }

  std::ostringstream os;
  table.print(os, "pipeline stage profile");
  if (eval_lookups >= 0) {
    const double rate =
        eval_lookups > 0 ? static_cast<double>(eval_hits) / eval_lookups : 0.0;
    os << "mode-eval cache: " << eval_hits << "/" << eval_lookups
       << " hits (" << TextTable::pct(rate) << "%)\n";
  }
  if (schedule_lookups >= 0) {
    const double rate =
        schedule_lookups > 0
            ? static_cast<double>(schedule_hits) / schedule_lookups
            : 0.0;
    os << "schedule-stage cache: " << schedule_hits << "/" << schedule_lookups
       << " hits (" << TextTable::pct(rate) << "%)\n";
  }
  return os.str();
}

}  // namespace mmsyn
