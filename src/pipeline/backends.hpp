// Registry of the pluggable pipeline backends.
//
// Two of the pipeline's stages are policy points: the list scheduler's
// task-selection priority (stage 1/2) and the voltage-scaling backend
// (stages 3/4 — PV-DVS, or the no-DVS nominal-voltage baseline). The
// registry maps stable backend names to their implementations so runs can
// select them on the command line (--scheduler=, --dvs=); the defaults
// pin the paper's reference behaviour. Resolution failures throw
// std::invalid_argument with the registered names spelled out, so a typo
// on an experiment script fails with an actionable message.
#pragma once

#include <string>
#include <vector>

#include "sched/list_scheduler.hpp"

namespace mmsyn {

/// One selectable list-scheduler priority backend.
struct SchedulerBackendInfo {
  const char* name;
  SchedulingPolicy policy;
  const char* summary;
};

/// One selectable DVS backend. `use_dvs == false` is the nominal-voltage
/// baseline: stages 3/4 skip graph construction and sum nominal energies.
struct DvsBackendInfo {
  const char* name;
  bool use_dvs;
  const char* summary;
};

/// Registered scheduler backends; the first entry is the default.
[[nodiscard]] const std::vector<SchedulerBackendInfo>& scheduler_backends();

/// Registered DVS backends; the first entry is the default.
[[nodiscard]] const std::vector<DvsBackendInfo>& dvs_backends();

/// Resolves a backend name; throws std::invalid_argument listing the
/// registered backends when `name` is unknown.
[[nodiscard]] SchedulingPolicy resolve_scheduler_backend(
    const std::string& name);
[[nodiscard]] bool resolve_dvs_backend(const std::string& name);

/// Stable name of a backend (inverse of the resolvers).
[[nodiscard]] const char* scheduler_backend_name(SchedulingPolicy policy);
[[nodiscard]] const char* dvs_backend_name(bool use_dvs);

/// Registered names as a comma-separated list, for help/error text.
[[nodiscard]] std::string scheduler_backend_list();
[[nodiscard]] std::string dvs_backend_list();

}  // namespace mmsyn
