// Typed stage artifacts of the per-mode evaluation pipeline.
//
// The paper's inner loop is staged: communication mapping + list
// scheduling (ref [12]), the Fig. 5 serialization transformation for
// parallel hardware cores, PV-DVS voltage scaling (ref [10]), and the
// power/shut-down aggregation entering Eq. 1. Each stage's output is one
// of the value types below, produced by pipeline/mode_pipeline.hpp:
//
//   CommMapping → ModeSchedule → SerializedSchedule → ScaledSchedule
//               → ModeEvaluation
//
// (ModeSchedule lives in sched/schedule.hpp; it predates the pipeline.)
// Artifacts are immutable by convention: stages take their inputs by
// const reference and return fresh values, so a cached artifact can be
// replayed into the downstream stages at any time and yield bitwise the
// same result as a cold run — the property the stage-granular cache and
// the audit layer's stage replay both rest on (DESIGN.md §11).
#pragma once

#include <optional>
#include <vector>

#include "dvs/dvs_graph.hpp"
#include "dvs/pv_dvs.hpp"
#include "sched/schedule.hpp"

namespace mmsyn {

/// Stage 1 — communication-aware task priorities. For the bottom-level
/// policy these fold best-case inter-PE communication delays into each
/// task's criticality; the list scheduler consumes them as its ready-list
/// order. Depends on the mode, the task→PE mapping and the scheduler
/// backend, but not on core counts.
struct CommMapping {
  std::vector<double> priority;  // index == task id; larger == more urgent
};

/// Stage 3 — the DVS problem graph (Fig. 5 serialization of parallel
/// hardware cores). Empty for the no-DVS backend, which prices energies
/// at nominal voltage straight off the schedule.
struct SerializedSchedule {
  bool has_graph = false;
  DvsGraph graph;
};

/// Stage 4 — voltage-scaled (or nominal) dynamic energy of one mode's
/// hyper-period. `dvs` carries the full per-node scaling result when the
/// PV-DVS backend ran; the no-DVS backend leaves it empty.
struct ScaledSchedule {
  double dyn_energy = 0.0;  // joules per hyper-period
  std::optional<PvDvsResult> dvs;
  /// Per-PE busy seconds (post-DVS activity durations). Computed only
  /// when the selected power model declares needs_pe_busy(); empty
  /// otherwise, so the reference path does no extra work.
  std::vector<double> pe_busy;
};

/// Stage 5 — per-mode evaluation detail (the pipeline's final artifact;
/// the cross-mode Eq. 1 aggregation happens in energy/evaluator.hpp).
struct ModeEvaluation {
  /// Dynamic energy per hyper-period (after DVS when enabled), joules.
  double dyn_energy = 0.0;
  /// dyn_energy / period, watts.
  double dyn_power = 0.0;
  /// Static power of the components active in this mode, watts.
  double static_power = 0.0;
  /// Σ_τ max(0, finish(τ) − min(θ_τ, φ)), seconds.
  double timing_violation = 0.0;
  double makespan = 0.0;
  /// Shut-down analysis: component powered during this mode?
  std::vector<bool> pe_active;
  std::vector<bool> cl_active;
  bool routable = true;

  // Power-model breakdown (power/power_model.hpp). All four stay 0 under
  // the reference `paper` backend — the report's power-model detail block
  // renders only when one is set, keeping paper reports byte-identical.
  /// Σ static power of the active components (the paper's value), watts.
  double baseline_static_power = 0.0;
  /// DPM: gross idle energy recovered by sleep states, joules/period.
  double idle_energy_saved = 0.0;
  /// DPM: wake-up energy charged against those savings, joules/period.
  double wake_energy = 0.0;
  /// Thermal: converged operating temperature, °C (0 when not modelled).
  double temperature = 0.0;

  /// Schedule retained when PipelineOptions::keep_schedules.
  std::optional<ModeSchedule> schedule;
};

}  // namespace mmsyn
