#include "pipeline/mode_pipeline.hpp"

#include <utility>

#include "common/checksum.hpp"
#include "dvs/dvs_graph.hpp"
#include "model/architecture.hpp"
#include "model/omsm.hpp"
#include "model/system.hpp"
#include "model/tech_library.hpp"
#include "power/power_model.hpp"
#include "sched/validate.hpp"

namespace mmsyn {
namespace {

/// True when the pipeline runs the pinned reference power path (the
/// original inline static-power loop): no model, or the `paper` model.
bool reference_power(const PowerModel* power) {
  return power == nullptr || power->is_reference_model();
}

}  // namespace
}  // namespace mmsyn

namespace mmsyn {

ModePipeline::ModePipeline(const System& system, PipelineOptions options)
    : system_(system), options_(options) {
  // Stage 1–2 inputs: the scheduler backend alone.
  schedule_fingerprint_ =
      Fnv1a64().add(static_cast<int>(options_.scheduling_policy)).digest();
  // Full per-mode inputs. The field sequence is the pre-pipeline
  // evaluator's options fingerprint, kept stable so cache keys and GA
  // state fingerprints carry over unchanged.
  Fnv1a64 h;
  h.add(options_.use_dvs)
      .add(static_cast<int>(options_.scheduling_policy))
      .add(options_.dvs.max_iterations_per_node)
      .add(options_.dvs.step_fraction)
      .add(options_.dvs.min_relative_gain)
      .add(options_.dvs.discrete_voltages)
      .add(options_.dvs.scale_hardware);
  // The reference power model contributes nothing (a null pointer and an
  // explicit `paper` hash identically, and pre-power-registry keys carry
  // over); any other backend folds its identity + knobs in, so e.g. a
  // thermal result can never be served from a paper cache entry. Power
  // is a stage-3..5 concern: the schedule fingerprint stays power-free
  // and schedule artifacts remain shareable across power backends.
  if (!reference_power(options_.power)) h.add(options_.power->fingerprint());
  evaluation_fingerprint_ = h.digest();
}

CommMapping ModePipeline::comm_mapping(
    std::size_t m, const ModeMapping& mapping,
    const std::vector<CoreSet>& hw_cores) const {
  const StageTimer timer(options_.profiler, PipelineStage::kCommMapping);
  const Mode& mode = system_.omsm.mode(ModeId{static_cast<ModeId::value_type>(m)});
  const ListSchedulerInput input{mode,          mapping,
                                 system_.arch,  system_.tech,
                                 hw_cores,      options_.scheduling_policy};
  return CommMapping{scheduling_priorities(input)};
}

ModeSchedule ModePipeline::schedule(std::size_t m, const ModeMapping& mapping,
                                    const std::vector<CoreSet>& hw_cores,
                                    const CommMapping& comm) const {
  const StageTimer timer(options_.profiler, PipelineStage::kSchedule);
  const Mode& mode = system_.omsm.mode(ModeId{static_cast<ModeId::value_type>(m)});
  const ListSchedulerInput input{mode,          mapping,
                                 system_.arch,  system_.tech,
                                 hw_cores,      options_.scheduling_policy};
  return list_schedule(input, comm.priority);
}

SerializedSchedule ModePipeline::serialize(std::size_t m,
                                           const ModeMapping& mapping,
                                           const ModeSchedule& schedule) const {
  const StageTimer timer(options_.profiler, PipelineStage::kSerialize);
  SerializedSchedule out;
  if (!options_.use_dvs) return out;  // nominal backend: no graph needed
  const Mode& mode = system_.omsm.mode(ModeId{static_cast<ModeId::value_type>(m)});
  out.graph = build_dvs_graph(mode, schedule, mapping, system_.arch,
                              system_.tech, options_.dvs.scale_hardware);
  out.has_graph = true;
  return out;
}

ScaledSchedule ModePipeline::scale(std::size_t m, const ModeMapping& mapping,
                                   const ModeSchedule& schedule,
                                   const SerializedSchedule& serialized) const {
  const StageTimer timer(options_.profiler, PipelineStage::kScale);
  const Mode& mode = system_.omsm.mode(ModeId{static_cast<ModeId::value_type>(m)});
  ScaledSchedule out;
  // Per-PE busy accounting is only materialised for power models that
  // declare they read it (dpm-idle); the reference path and the thermal
  // model skip it entirely, leaving the hot loop untouched.
  const bool want_busy = !reference_power(options_.power) &&
                         options_.power->needs_pe_busy();
  if (options_.use_dvs) {
    const DvsGraph& g = serialized.graph;
    std::vector<double> penalty;
    if (want_busy) {
      // Linearisation point of the DVS/shut-down co-optimisation: busy
      // time at nominal (pre-scaling) durations. Segment nodes cover the
      // merged busy intervals of DVS hardware PEs exactly; task nodes
      // cover the rest (summed durations — exact for sequential
      // resources, conservative for parallel non-DVS hardware cores).
      std::vector<double> nominal_busy(system_.arch.pe_count(), 0.0);
      for (std::size_t i = 0; i < g.node_count(); ++i)
        if (static_cast<DvsNodeKind>(g.kind[i]) != DvsNodeKind::kComm &&
            g.pe[i] >= 0)
          nominal_busy[static_cast<std::size_t>(g.pe[i])] += g.tmin[i];
      penalty = options_.power->dvs_idle_penalty(system_.arch, mode.period,
                                                 nominal_busy);
    }
    PvDvsResult dvs = run_pv_dvs(g, system_.arch, options_.dvs,
                                 penalty.empty() ? nullptr : &penalty);
    out.dyn_energy = dvs.total_energy;
    if (want_busy) {
      out.pe_busy.assign(system_.arch.pe_count(), 0.0);
      for (std::size_t i = 0; i < g.node_count(); ++i)
        if (static_cast<DvsNodeKind>(g.kind[i]) != DvsNodeKind::kComm &&
            g.pe[i] >= 0)
          out.pe_busy[static_cast<std::size_t>(g.pe[i])] +=
              dvs.scaled_time[i];
    }
    out.dvs = std::move(dvs);
    return out;
  }
  // Nominal-voltage baseline: task energies in task order, then transfer
  // energies in comm order (the accumulation order is part of the
  // bit-identity contract).
  for (std::size_t t = 0; t < mode.graph.task_count(); ++t) {
    const TaskId id{static_cast<TaskId::value_type>(t)};
    out.dyn_energy += system_.tech
                          .require(mode.graph.task(id).type,
                                   mapping.task_to_pe[t])
                          .energy();
  }
  for (const ScheduledComm& c : schedule.comms)
    if (!c.local && c.cl.valid())
      out.dyn_energy += system_.arch.cl(c.cl).transfer_power * c.duration();
  if (want_busy) {
    out.pe_busy.assign(system_.arch.pe_count(), 0.0);
    for (const ScheduledTask& st : schedule.tasks)
      out.pe_busy[st.pe.index()] += st.duration();
  }
  return out;
}

ModeEvaluation ModePipeline::finalize(std::size_t m, const ModeMapping& mapping,
                                      const ScaledSchedule& scaled,
                                      ModeSchedule schedule) const {
  const StageTimer timer(options_.profiler, PipelineStage::kFinalize);
  const Mode& mode = system_.omsm.mode(ModeId{static_cast<ModeId::value_type>(m)});
  const Architecture& arch = system_.arch;

  ModeEvaluation me;
  me.makespan = schedule.makespan;
  me.routable = schedule.routable;

  // Timing penalty: finish within min(deadline, period). One shared
  // definition with the validator and the auditor (sched/validate.hpp).
  me.timing_violation = schedule_timing_violation(mode, schedule);

  me.dyn_energy = scaled.dyn_energy;
  me.dyn_power = me.dyn_energy / mode.period;

  // Shut-down analysis and static power (Fig. 4 lines 07/13).
  me.pe_active.assign(arch.pe_count(), false);
  me.cl_active.assign(arch.cl_count(), false);
  for (PeId pe : mapping.task_to_pe) me.pe_active[pe.index()] = true;
  for (const ScheduledComm& c : schedule.comms)
    if (!c.local && c.cl.valid()) me.cl_active[c.cl.index()] = true;
  if (reference_power(options_.power)) {
    // Pinned reference path: the original inline accumulation, kept
    // verbatim so `--power=paper` (and no flag at all) stays bit-identical
    // to the pre-registry pipeline.
    for (std::size_t p = 0; p < arch.pe_count(); ++p)
      if (me.pe_active[p])
        me.static_power +=
            arch.pe(PeId{static_cast<PeId::value_type>(p)}).static_power;
    for (std::size_t c = 0; c < arch.cl_count(); ++c)
      if (me.cl_active[c])
        me.static_power +=
            arch.cl(ClId{static_cast<ClId::value_type>(c)}).static_power;
  } else {
    const ModePowerContext ctx{arch,         mode.period,  me.dyn_power,
                               me.pe_active, me.cl_active, scaled.pe_busy};
    const ModePowerResult pr = options_.power->mode_power(ctx);
    me.static_power = pr.static_power;
    me.baseline_static_power = pr.baseline_static_power;
    me.idle_energy_saved = pr.idle_energy_saved;
    me.wake_energy = pr.wake_energy;
    me.temperature = pr.temperature;
  }

  if (options_.keep_schedules) me.schedule = std::move(schedule);
  return me;
}

ModeSchedule ModePipeline::build_schedule(
    std::size_t m, const ModeMapping& mapping,
    const std::vector<CoreSet>& hw_cores) const {
  return schedule(m, mapping, hw_cores, comm_mapping(m, mapping, hw_cores));
}

ModeEvaluation ModePipeline::evaluate_scheduled(std::size_t m,
                                                const ModeMapping& mapping,
                                                ModeSchedule schedule) const {
  const SerializedSchedule serialized = serialize(m, mapping, schedule);
  const ScaledSchedule scaled = scale(m, mapping, schedule, serialized);
  return finalize(m, mapping, scaled, std::move(schedule));
}

ModeEvaluation ModePipeline::run(std::size_t m, const ModeMapping& mapping,
                                 const std::vector<CoreSet>& hw_cores) const {
  return evaluate_scheduled(m, mapping, build_schedule(m, mapping, hw_cores));
}

}  // namespace mmsyn
