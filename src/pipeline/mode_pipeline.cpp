#include "pipeline/mode_pipeline.hpp"

#include <utility>

#include "common/checksum.hpp"
#include "dvs/dvs_graph.hpp"
#include "model/architecture.hpp"
#include "model/omsm.hpp"
#include "model/system.hpp"
#include "model/tech_library.hpp"
#include "sched/validate.hpp"

namespace mmsyn {

ModePipeline::ModePipeline(const System& system, PipelineOptions options)
    : system_(system), options_(options) {
  // Stage 1–2 inputs: the scheduler backend alone.
  schedule_fingerprint_ =
      Fnv1a64().add(static_cast<int>(options_.scheduling_policy)).digest();
  // Full per-mode inputs. The field sequence is the pre-pipeline
  // evaluator's options fingerprint, kept stable so cache keys and GA
  // state fingerprints carry over unchanged.
  Fnv1a64 h;
  h.add(options_.use_dvs)
      .add(static_cast<int>(options_.scheduling_policy))
      .add(options_.dvs.max_iterations_per_node)
      .add(options_.dvs.step_fraction)
      .add(options_.dvs.min_relative_gain)
      .add(options_.dvs.discrete_voltages)
      .add(options_.dvs.scale_hardware);
  evaluation_fingerprint_ = h.digest();
}

CommMapping ModePipeline::comm_mapping(
    std::size_t m, const ModeMapping& mapping,
    const std::vector<CoreSet>& hw_cores) const {
  const StageTimer timer(options_.profiler, PipelineStage::kCommMapping);
  const Mode& mode = system_.omsm.mode(ModeId{static_cast<ModeId::value_type>(m)});
  const ListSchedulerInput input{mode,          mapping,
                                 system_.arch,  system_.tech,
                                 hw_cores,      options_.scheduling_policy};
  return CommMapping{scheduling_priorities(input)};
}

ModeSchedule ModePipeline::schedule(std::size_t m, const ModeMapping& mapping,
                                    const std::vector<CoreSet>& hw_cores,
                                    const CommMapping& comm) const {
  const StageTimer timer(options_.profiler, PipelineStage::kSchedule);
  const Mode& mode = system_.omsm.mode(ModeId{static_cast<ModeId::value_type>(m)});
  const ListSchedulerInput input{mode,          mapping,
                                 system_.arch,  system_.tech,
                                 hw_cores,      options_.scheduling_policy};
  return list_schedule(input, comm.priority);
}

SerializedSchedule ModePipeline::serialize(std::size_t m,
                                           const ModeMapping& mapping,
                                           const ModeSchedule& schedule) const {
  const StageTimer timer(options_.profiler, PipelineStage::kSerialize);
  SerializedSchedule out;
  if (!options_.use_dvs) return out;  // nominal backend: no graph needed
  const Mode& mode = system_.omsm.mode(ModeId{static_cast<ModeId::value_type>(m)});
  out.graph = build_dvs_graph(mode, schedule, mapping, system_.arch,
                              system_.tech, options_.dvs.scale_hardware);
  out.has_graph = true;
  return out;
}

ScaledSchedule ModePipeline::scale(std::size_t m, const ModeMapping& mapping,
                                   const ModeSchedule& schedule,
                                   const SerializedSchedule& serialized) const {
  const StageTimer timer(options_.profiler, PipelineStage::kScale);
  const Mode& mode = system_.omsm.mode(ModeId{static_cast<ModeId::value_type>(m)});
  ScaledSchedule out;
  if (options_.use_dvs) {
    PvDvsResult dvs = run_pv_dvs(serialized.graph, system_.arch, options_.dvs);
    out.dyn_energy = dvs.total_energy;
    out.dvs = std::move(dvs);
    return out;
  }
  // Nominal-voltage baseline: task energies in task order, then transfer
  // energies in comm order (the accumulation order is part of the
  // bit-identity contract).
  for (std::size_t t = 0; t < mode.graph.task_count(); ++t) {
    const TaskId id{static_cast<TaskId::value_type>(t)};
    out.dyn_energy += system_.tech
                          .require(mode.graph.task(id).type,
                                   mapping.task_to_pe[t])
                          .energy();
  }
  for (const ScheduledComm& c : schedule.comms)
    if (!c.local && c.cl.valid())
      out.dyn_energy += system_.arch.cl(c.cl).transfer_power * c.duration();
  return out;
}

ModeEvaluation ModePipeline::finalize(std::size_t m, const ModeMapping& mapping,
                                      const ScaledSchedule& scaled,
                                      ModeSchedule schedule) const {
  const StageTimer timer(options_.profiler, PipelineStage::kFinalize);
  const Mode& mode = system_.omsm.mode(ModeId{static_cast<ModeId::value_type>(m)});
  const Architecture& arch = system_.arch;

  ModeEvaluation me;
  me.makespan = schedule.makespan;
  me.routable = schedule.routable;

  // Timing penalty: finish within min(deadline, period). One shared
  // definition with the validator and the auditor (sched/validate.hpp).
  me.timing_violation = schedule_timing_violation(mode, schedule);

  me.dyn_energy = scaled.dyn_energy;
  me.dyn_power = me.dyn_energy / mode.period;

  // Shut-down analysis and static power (Fig. 4 lines 07/13).
  me.pe_active.assign(arch.pe_count(), false);
  me.cl_active.assign(arch.cl_count(), false);
  for (PeId pe : mapping.task_to_pe) me.pe_active[pe.index()] = true;
  for (const ScheduledComm& c : schedule.comms)
    if (!c.local && c.cl.valid()) me.cl_active[c.cl.index()] = true;
  for (std::size_t p = 0; p < arch.pe_count(); ++p)
    if (me.pe_active[p])
      me.static_power +=
          arch.pe(PeId{static_cast<PeId::value_type>(p)}).static_power;
  for (std::size_t c = 0; c < arch.cl_count(); ++c)
    if (me.cl_active[c])
      me.static_power +=
          arch.cl(ClId{static_cast<ClId::value_type>(c)}).static_power;

  if (options_.keep_schedules) me.schedule = std::move(schedule);
  return me;
}

ModeSchedule ModePipeline::build_schedule(
    std::size_t m, const ModeMapping& mapping,
    const std::vector<CoreSet>& hw_cores) const {
  return schedule(m, mapping, hw_cores, comm_mapping(m, mapping, hw_cores));
}

ModeEvaluation ModePipeline::evaluate_scheduled(std::size_t m,
                                                const ModeMapping& mapping,
                                                ModeSchedule schedule) const {
  const SerializedSchedule serialized = serialize(m, mapping, schedule);
  const ScaledSchedule scaled = scale(m, mapping, schedule, serialized);
  return finalize(m, mapping, scaled, std::move(schedule));
}

ModeEvaluation ModePipeline::run(std::size_t m, const ModeMapping& mapping,
                                 const std::vector<CoreSet>& hw_cores) const {
  return evaluate_scheduled(m, mapping, build_schedule(m, mapping, hw_cores));
}

}  // namespace mmsyn
