// The staged per-mode evaluation pipeline (DESIGN.md §11).
//
// One mode's inner loop, decomposed into the paper's explicit stages:
//
//   1 comm_mapping  — communication-aware task priorities     → CommMapping
//   2 schedule      — list scheduling + CL routing            → ModeSchedule
//   3 serialize     — Fig. 5 DVS-graph construction           → SerializedSchedule
//   4 scale         — PV-DVS / nominal-voltage energy         → ScaledSchedule
//   5 finalize      — timing penalty + shut-down analysis     → ModeEvaluation
//
// `run` executes 1→5; `build_schedule` (1–2) and `evaluate_scheduled`
// (3–5) split the chain at the ModeSchedule artifact — the boundary the
// stage-granular cache resumes from. Both the cold path and every cached
// path execute the same stage functions in the same order, so a cache hit
// is bitwise-indistinguishable from a recompute by construction.
//
// Fingerprints: `schedule_fingerprint` covers exactly the options stages
// 1–2 read (the scheduler backend), `evaluation_fingerprint` additionally
// covers stages 3–5 (the DVS backend and its knobs). A schedule artifact
// keyed by {mode, schedule_fingerprint, task_to_pe, cores} is therefore
// reusable across runs that differ only in voltage-relevant state.
//
// Thread safety: all stage methods are const and pure apart from the
// optional profiler, which accumulates with relaxed atomics; one pipeline
// may be shared by concurrent callers.
#pragma once

#include <cstdint>
#include <vector>

#include "dvs/pv_dvs.hpp"
#include "model/core_allocation.hpp"
#include "model/mapping.hpp"
#include "pipeline/artifacts.hpp"
#include "pipeline/profile.hpp"
#include "sched/list_scheduler.hpp"

namespace mmsyn {

struct System;
class PowerModel;

/// The subset of evaluation options the per-mode pipeline reads.
struct PipelineOptions {
  /// Scheduler backend (stages 1–2).
  SchedulingPolicy scheduling_policy = SchedulingPolicy::kBottomLevel;
  /// DVS backend (stages 3–4): PV-DVS when true, the nominal-voltage
  /// baseline when false.
  bool use_dvs = false;
  /// PV-DVS knobs (read when use_dvs).
  PvDvsOptions dvs;
  /// Move the schedule artifact into the final ModeEvaluation.
  bool keep_schedules = false;
  /// Optional per-stage instrumentation; not part of any fingerprint and
  /// never observable in results.
  PipelineProfiler* profiler = nullptr;
  /// Power-model backend (stages 4–5; see power/power_model.hpp). Null
  /// selects the pinned `paper` reference model — bit-identical to the
  /// pre-registry behaviour and absent from every fingerprint, exactly
  /// like an explicit reference model. Non-reference models fold their
  /// fingerprint into the evaluation fingerprint only; schedule
  /// artifacts stay shareable across power backends.
  const PowerModel* power = nullptr;
};

class ModePipeline {
public:
  /// The system reference must outlive the pipeline.
  ModePipeline(const System& system, PipelineOptions options);

  // ---- Individual stages. ----------------------------------------------
  [[nodiscard]] CommMapping comm_mapping(
      std::size_t m, const ModeMapping& mapping,
      const std::vector<CoreSet>& hw_cores) const;
  [[nodiscard]] ModeSchedule schedule(std::size_t m,
                                      const ModeMapping& mapping,
                                      const std::vector<CoreSet>& hw_cores,
                                      const CommMapping& comm) const;
  [[nodiscard]] SerializedSchedule serialize(
      std::size_t m, const ModeMapping& mapping,
      const ModeSchedule& schedule) const;
  [[nodiscard]] ScaledSchedule scale(std::size_t m,
                                     const ModeMapping& mapping,
                                     const ModeSchedule& schedule,
                                     const SerializedSchedule& serialized) const;
  /// Takes the schedule by value so keep_schedules can move it into the
  /// result without copying.
  [[nodiscard]] ModeEvaluation finalize(std::size_t m,
                                        const ModeMapping& mapping,
                                        const ScaledSchedule& scaled,
                                        ModeSchedule schedule) const;

  // ---- Composites. -----------------------------------------------------
  /// Stages 1–2: the schedule artifact (the stage-cache boundary).
  [[nodiscard]] ModeSchedule build_schedule(
      std::size_t m, const ModeMapping& mapping,
      const std::vector<CoreSet>& hw_cores) const;
  /// Stages 3–5 from an existing schedule artifact.
  [[nodiscard]] ModeEvaluation evaluate_scheduled(std::size_t m,
                                                  const ModeMapping& mapping,
                                                  ModeSchedule schedule) const;
  /// The full chain; identical to
  /// evaluate_scheduled(m, mapping, build_schedule(m, mapping, hw_cores)).
  [[nodiscard]] ModeEvaluation run(std::size_t m, const ModeMapping& mapping,
                                   const std::vector<CoreSet>& hw_cores) const;

  /// FNV-1a over the options stages 1–2 read (scheduler backend only).
  [[nodiscard]] std::uint64_t schedule_fingerprint() const {
    return schedule_fingerprint_;
  }
  /// FNV-1a over everything that shapes a ModeEvaluation (scheduler
  /// backend + DVS backend + DVS knobs).
  [[nodiscard]] std::uint64_t evaluation_fingerprint() const {
    return evaluation_fingerprint_;
  }

  [[nodiscard]] const PipelineOptions& options() const { return options_; }

private:
  const System& system_;
  PipelineOptions options_;
  std::uint64_t schedule_fingerprint_ = 0;
  std::uint64_t evaluation_fingerprint_ = 0;
};

}  // namespace mmsyn
