#include "pipeline/backends.hpp"

#include <stdexcept>

namespace mmsyn {
namespace {

template <typename Info>
std::string name_list(const std::vector<Info>& infos) {
  std::string out;
  for (const Info& info : infos) {
    if (!out.empty()) out += ", ";
    out += info.name;
  }
  return out;
}

}  // namespace

const std::vector<SchedulerBackendInfo>& scheduler_backends() {
  static const std::vector<SchedulerBackendInfo> kBackends = {
      {"bottom-level", SchedulingPolicy::kBottomLevel,
       "critical-path list scheduling (the paper's reference behaviour)"},
      {"topo-order", SchedulingPolicy::kTopoOrder,
       "ready tasks in task-id order (FIFO ablation strawman)"},
      {"longest-task", SchedulingPolicy::kLongestTask,
       "longest mapped execution time first (LPT-style)"},
  };
  return kBackends;
}

const std::vector<DvsBackendInfo>& dvs_backends() {
  static const std::vector<DvsBackendInfo> kBackends = {
      {"none", false,
       "nominal-voltage baseline: no scaling, energies at V_max"},
      {"pv-dvs", true,
       "PV-DVS slack distribution (ref [10], Fig. 5 hardware extension)"},
  };
  return kBackends;
}

SchedulingPolicy resolve_scheduler_backend(const std::string& name) {
  for (const SchedulerBackendInfo& info : scheduler_backends())
    if (name == info.name) return info.policy;
  throw std::invalid_argument(
      "unknown scheduler backend '" + name + "': registered backends are " +
      scheduler_backend_list() + ". Pick one with --scheduler=<name>, or "
      "omit the flag for the default '" +
      scheduler_backends().front().name + "'");
}

bool resolve_dvs_backend(const std::string& name) {
  for (const DvsBackendInfo& info : dvs_backends())
    if (name == info.name) return info.use_dvs;
  throw std::invalid_argument(
      "unknown DVS backend '" + name + "': registered backends are " +
      dvs_backend_list() + ". Pick one with --dvs=<name>, or omit the flag "
      "for the default '" +
      dvs_backends().front().name + "'");
}

const char* scheduler_backend_name(SchedulingPolicy policy) {
  for (const SchedulerBackendInfo& info : scheduler_backends())
    if (policy == info.policy) return info.name;
  return "?";
}

const char* dvs_backend_name(bool use_dvs) {
  for (const DvsBackendInfo& info : dvs_backends())
    if (use_dvs == info.use_dvs) return info.name;
  return "?";
}

std::string scheduler_backend_list() { return name_list(scheduler_backends()); }

std::string dvs_backend_list() { return name_list(dvs_backends()); }

}  // namespace mmsyn
