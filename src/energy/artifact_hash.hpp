// Shared field-by-field hashing and exact equality of the per-mode
// pipeline artifacts.
//
// The mode cache's self-healing digests and the auditor's stage-replay /
// cache-invariant comparisons used to each enumerate the ModeEvaluation
// and ModeSchedule fields independently — a new field silently dropped
// from one copy would weaken the digest or the replay check without any
// test noticing. This header is the single enumeration both consume:
// the digests cover exactly the fields the equality predicates compare
// (the optional retained schedule excluded — memoised whole-mode entries
// never carry one, and the auditor replays schedules separately).
//
// Stability: the digests are in-memory integrity checks, recomputed on
// every cache insert (checkpoints store values, not digests), so the
// definition may evolve with the structs — but within one build it must
// be deterministic across calls and processes, which the hash-stability
// test pins.
#pragma once

#include <cstdint>

#include "pipeline/artifacts.hpp"
#include "sched/schedule.hpp"

namespace mmsyn {

/// FNV-1a digest of every compared ModeEvaluation field.
[[nodiscard]] std::uint64_t mode_evaluation_digest(const ModeEvaluation& m);

/// FNV-1a digest of every compared ModeSchedule field.
[[nodiscard]] std::uint64_t mode_schedule_digest(const ModeSchedule& s);

/// Exact (bitwise) equality over the digested ModeEvaluation fields.
[[nodiscard]] bool equal_mode_evaluations(const ModeEvaluation& a,
                                          const ModeEvaluation& b);

/// Exact (bitwise) equality over the digested ModeSchedule fields.
[[nodiscard]] bool equal_mode_schedules(const ModeSchedule& a,
                                        const ModeSchedule& b);

}  // namespace mmsyn
