#include "energy/artifact_hash.hpp"

#include "common/checksum.hpp"

namespace mmsyn {

std::uint64_t mode_evaluation_digest(const ModeEvaluation& m) {
  Fnv1a64 h;
  h.add(m.dyn_energy);
  h.add(m.dyn_power);
  h.add(m.static_power);
  h.add(m.timing_violation);
  h.add(m.makespan);
  h.add(static_cast<std::uint64_t>(m.pe_active.size()));
  for (bool b : m.pe_active) h.add(b);
  h.add(static_cast<std::uint64_t>(m.cl_active.size()));
  for (bool b : m.cl_active) h.add(b);
  h.add(m.routable);
  h.add(m.baseline_static_power);
  h.add(m.idle_energy_saved);
  h.add(m.wake_energy);
  h.add(m.temperature);
  return h.digest();
}

std::uint64_t mode_schedule_digest(const ModeSchedule& s) {
  Fnv1a64 h;
  h.add(static_cast<std::uint64_t>(s.tasks.size()));
  for (const ScheduledTask& t : s.tasks) {
    h.add(t.task.value());
    h.add(t.pe.value());
    h.add(t.core_instance);
    h.add(t.start);
    h.add(t.finish);
  }
  h.add(static_cast<std::uint64_t>(s.comms.size()));
  for (const ScheduledComm& c : s.comms) {
    h.add(c.edge.value());
    h.add(c.cl.value());
    h.add(c.local);
    h.add(c.start);
    h.add(c.finish);
  }
  h.add(s.makespan);
  h.add(s.routable);
  return h.digest();
}

bool equal_mode_evaluations(const ModeEvaluation& a, const ModeEvaluation& b) {
  return a.dyn_energy == b.dyn_energy && a.dyn_power == b.dyn_power &&
         a.static_power == b.static_power &&
         a.timing_violation == b.timing_violation &&
         a.makespan == b.makespan && a.pe_active == b.pe_active &&
         a.cl_active == b.cl_active && a.routable == b.routable &&
         a.baseline_static_power == b.baseline_static_power &&
         a.idle_energy_saved == b.idle_energy_saved &&
         a.wake_energy == b.wake_energy && a.temperature == b.temperature;
}

bool equal_mode_schedules(const ModeSchedule& a, const ModeSchedule& b) {
  if (a.tasks.size() != b.tasks.size() || a.comms.size() != b.comms.size() ||
      a.makespan != b.makespan || a.routable != b.routable)
    return false;
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    const ScheduledTask& x = a.tasks[i];
    const ScheduledTask& y = b.tasks[i];
    if (x.task != y.task || x.pe != y.pe ||
        x.core_instance != y.core_instance || x.start != y.start ||
        x.finish != y.finish)
      return false;
  }
  for (std::size_t i = 0; i < a.comms.size(); ++i) {
    const ScheduledComm& x = a.comms[i];
    const ScheduledComm& y = b.comms[i];
    if (x.edge != y.edge || x.cl != y.cl || x.local != y.local ||
        x.start != y.start || x.finish != y.finish)
      return false;
  }
  return true;
}

}  // namespace mmsyn
