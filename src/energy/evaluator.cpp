#include "energy/evaluator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/checksum.hpp"
#include "dvs/dvs_graph.hpp"
#include "sched/list_scheduler.hpp"

namespace mmsyn {

std::size_t ModeEvalKeyHash::operator()(const ModeEvalKey& key) const {
  Fnv1a64 h;
  h.add(static_cast<std::uint64_t>(key.mode));
  h.add(key.options_fingerprint);
  for (PeId pe : key.task_to_pe)
    h.add(static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(pe.value())));
  for (const CoreSet& set : key.cores) {
    h.add(static_cast<std::uint64_t>(set.entries().size()));
    for (const auto& [type, count] : set.entries()) {
      h.add(static_cast<std::uint64_t>(
          static_cast<std::uint32_t>(type.value())));
      h.add(static_cast<std::uint64_t>(count));
    }
  }
  return static_cast<std::size_t>(h.digest());
}

const ModeEvaluation* ModeEvalCache::find(const ModeEvalKey& key) {
  ++lookups_;
  const auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  ++hits_;
  return &it->second;
}

void ModeEvalCache::insert(const ModeEvalKey& key,
                           const ModeEvaluation& value) {
  if (capacity_ > 0) {
    while (map_.size() >= capacity_ && !order_.empty()) {
      map_.erase(order_.front());
      order_.pop_front();
    }
  }
  if (map_.emplace(key, value).second) order_.push_back(key);
}

std::vector<std::pair<ModeEvalKey, ModeEvaluation>> ModeEvalCache::entries()
    const {
  std::vector<std::pair<ModeEvalKey, ModeEvaluation>> out;
  out.reserve(order_.size());
  for (const ModeEvalKey& key : order_) out.emplace_back(key, map_.at(key));
  return out;
}

void ModeEvalCache::restore(
    std::vector<std::pair<ModeEvalKey, ModeEvaluation>> entries, long hits,
    long lookups) {
  clear();
  for (auto& [key, value] : entries) insert(key, value);
  hits_ = hits;
  lookups_ = lookups;
}

void ModeEvalCache::clear() {
  map_.clear();
  order_.clear();
  hits_ = 0;
  lookups_ = 0;
}

Evaluator::Evaluator(const System& system, EvaluationOptions options)
    : system_(system), options_(std::move(options)) {
  true_probs_ = system.omsm.probabilities();
  if (options_.weight_override.empty()) {
    weights_ = true_probs_;
  } else {
    if (options_.weight_override.size() != system.omsm.mode_count())
      throw std::invalid_argument(
          "EvaluationOptions::weight_override size mismatch");
    weights_ = options_.weight_override;
  }
  double total = 0.0;
  for (double w : weights_) total += w;
  if (total <= 0.0)
    throw std::invalid_argument("optimisation weights must sum > 0");
  for (double& w : weights_) w /= total;

  // Everything that shapes a *per-mode* inner-loop result. The weights are
  // deliberately excluded: they only enter the cross-mode aggregations,
  // so cached mode results are shared between objectives.
  Fnv1a64 h;
  h.add(options_.use_dvs)
      .add(static_cast<int>(options_.scheduling_policy))
      .add(options_.dvs.max_iterations_per_node)
      .add(options_.dvs.step_fraction)
      .add(options_.dvs.min_relative_gain)
      .add(options_.dvs.discrete_voltages)
      .add(options_.dvs.scale_hardware);
  options_fingerprint_ = h.digest();
}

ModeEvaluation Evaluator::evaluate_mode(std::size_t m,
                                        const MultiModeMapping& mapping,
                                        const CoreAllocation& cores) const {
  const Omsm& omsm = system_.omsm;
  const Architecture& arch = system_.arch;
  const TechLibrary& tech = system_.tech;

  const ModeId mode_id{static_cast<ModeId::value_type>(m)};
  const Mode& mode = omsm.mode(mode_id);
  const ModeMapping& mm = mapping.modes[m];
  ModeEvaluation me;

  // ---- Inner loop: communication mapping + scheduling. ---------------
  const ListSchedulerInput input{mode,
                                 mm,
                                 arch,
                                 tech,
                                 cores.per_mode[m],
                                 options_.scheduling_policy};
  ModeSchedule schedule = list_schedule(input);
  me.makespan = schedule.makespan;
  me.routable = schedule.routable;

  // ---- Timing penalty: finish within min(deadline, period). ----------
  for (std::size_t t = 0; t < mode.graph.task_count(); ++t) {
    const TaskId id{static_cast<TaskId::value_type>(t)};
    double limit = mode.period;
    if (const auto& dl = mode.graph.task(id).deadline)
      limit = std::min(limit, *dl);
    me.timing_violation +=
        std::max(0.0, schedule.tasks[t].finish - limit);
  }

  // ---- Dynamic energy (Fig. 4 line 12), with DVS when enabled. -------
  if (options_.use_dvs) {
    const DvsGraph dvs_graph = build_dvs_graph(
        mode, schedule, mm, arch, tech, options_.dvs.scale_hardware);
    const PvDvsResult dvs = run_pv_dvs(dvs_graph, arch, options_.dvs);
    me.dyn_energy = dvs.total_energy;
  } else {
    for (std::size_t t = 0; t < mode.graph.task_count(); ++t) {
      const TaskId id{static_cast<TaskId::value_type>(t)};
      me.dyn_energy +=
          tech.require(mode.graph.task(id).type, mm.task_to_pe[t]).energy();
    }
    for (const ScheduledComm& c : schedule.comms)
      if (!c.local && c.cl.valid())
        me.dyn_energy += arch.cl(c.cl).transfer_power * c.duration();
  }
  me.dyn_power = me.dyn_energy / mode.period;

  // ---- Shut-down analysis and static power (lines 07/13). ------------
  me.pe_active.assign(arch.pe_count(), false);
  me.cl_active.assign(arch.cl_count(), false);
  for (PeId pe : mm.task_to_pe) me.pe_active[pe.index()] = true;
  for (const ScheduledComm& c : schedule.comms)
    if (!c.local && c.cl.valid()) me.cl_active[c.cl.index()] = true;
  for (std::size_t p = 0; p < arch.pe_count(); ++p)
    if (me.pe_active[p])
      me.static_power +=
          arch.pe(PeId{static_cast<PeId::value_type>(p)}).static_power;
  for (std::size_t c = 0; c < arch.cl_count(); ++c)
    if (me.cl_active[c])
      me.static_power +=
          arch.cl(ClId{static_cast<ClId::value_type>(c)}).static_power;

  if (options_.keep_schedules) me.schedule = std::move(schedule);
  return me;
}

ModeEvalKey Evaluator::mode_key(std::size_t m, const MultiModeMapping& mapping,
                                const CoreAllocation& cores) const {
  ModeEvalKey key;
  key.mode = static_cast<std::uint32_t>(m);
  key.options_fingerprint = options_fingerprint_;
  key.task_to_pe = mapping.modes[m].task_to_pe;
  key.cores = cores.per_mode[m];
  return key;
}

Evaluation Evaluator::assemble(const MultiModeMapping& mapping,
                               const CoreAllocation& cores,
                               std::vector<ModeEvaluation> modes) const {
  (void)mapping;
  const Omsm& omsm = system_.omsm;
  const Architecture& arch = system_.arch;
  const TechLibrary& tech = system_.tech;
  assert(modes.size() == omsm.mode_count());

  Evaluation eval;
  eval.modes = std::move(modes);

  // Accumulated in ascending mode order so the floating-point sums are
  // bitwise-identical to the pre-decomposition evaluator.
  for (std::size_t m = 0; m < omsm.mode_count(); ++m) {
    const Mode& mode = omsm.mode(ModeId{static_cast<ModeId::value_type>(m)});
    const ModeEvaluation& me = eval.modes[m];
    const double mode_power = me.dyn_power + me.static_power;
    eval.avg_power_true += mode_power * true_probs_[m];
    eval.avg_power_weighted += mode_power * weights_[m];
    // Normalised by the mode period: the timing penalty is expressed in
    // fractions of the period, never raw seconds (scale-independent).
    eval.weighted_timing_violation +=
        weights_[m] * me.timing_violation / mode.period;
  }

  // ---- Area usage and violations (line 06). -----------------------------
  eval.pe_used_area.assign(arch.pe_count(), 0.0);
  eval.pe_area_violation.assign(arch.pe_count(), 0.0);
  for (PeId p : arch.pe_ids()) {
    const Pe& pe = arch.pe(p);
    if (!is_hardware(pe.kind)) continue;
    eval.pe_used_area[p.index()] = cores.required_area(p, tech);
    eval.pe_area_violation[p.index()] =
        std::max(0.0, eval.pe_used_area[p.index()] - pe.area_capacity);
    eval.total_area_violation += eval.pe_area_violation[p.index()];
  }

  // ---- Mode-transition (FPGA reconfiguration) times (line 08). ----------
  eval.transition_times.assign(omsm.transition_count(), 0.0);
  eval.transition_violations.assign(omsm.transition_count(), 0.0);
  for (std::size_t t = 0; t < omsm.transition_count(); ++t) {
    const ModeTransition& tr =
        omsm.transition(TransitionId{static_cast<TransitionId::value_type>(t)});
    double time = 0.0;
    for (PeId p : arch.pe_ids()) {
      const Pe& pe = arch.pe(p);
      if (pe.kind != PeKind::kFpga) continue;
      const double delta = cores.cores(tr.to, p).delta_area_from(
          cores.cores(tr.from, p), tech, p);
      // FPGAs reconfigure in parallel with each other; the transition
      // waits for the slowest one.
      time = std::max(time, delta / pe.reconfig_bandwidth);
    }
    eval.transition_times[t] = time;
    eval.transition_violations[t] =
        std::max(0.0, time - tr.max_transition_time);
  }

  return eval;
}

Evaluation Evaluator::evaluate(const MultiModeMapping& mapping,
                               const CoreAllocation& cores) const {
  std::vector<ModeEvaluation> modes;
  modes.reserve(system_.omsm.mode_count());
  for (std::size_t m = 0; m < system_.omsm.mode_count(); ++m)
    modes.push_back(evaluate_mode(m, mapping, cores));
  return assemble(mapping, cores, std::move(modes));
}

Evaluation Evaluator::evaluate(const MultiModeMapping& mapping,
                               const CoreAllocation& cores,
                               ModeEvalCache* cache) const {
  // Cached entries carry no schedule, so a keep_schedules evaluation must
  // take (and leave the cache untouched by) the cold path.
  if (cache == nullptr || options_.keep_schedules)
    return evaluate(mapping, cores);
  std::vector<ModeEvaluation> modes;
  modes.reserve(system_.omsm.mode_count());
  for (std::size_t m = 0; m < system_.omsm.mode_count(); ++m) {
    const ModeEvalKey key = mode_key(m, mapping, cores);
    if (const ModeEvaluation* hit = cache->find(key)) {
      modes.push_back(*hit);
      continue;
    }
    modes.push_back(evaluate_mode(m, mapping, cores));
    cache->insert(key, modes.back());
  }
  return assemble(mapping, cores, std::move(modes));
}

}  // namespace mmsyn
