#include "energy/evaluator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "common/checksum.hpp"
#include "common/failpoint.hpp"
#include "energy/artifact_hash.hpp"
#include "power/power_model.hpp"

namespace mmsyn {
namespace {

// Failpoint on memo insertion, shared by both cache tiers. `corrupt`
// poisons the stored copy *after* its digest is taken (a deterministic
// bit flip in the hottest scalar), so the next lookup of that key fails
// verification and quarantines the entry; `fail` drops the insert — a
// lost memo entry is recomputed on the next miss, also self-healing.
failpoint::Site fp_cache_insert{"cache.insert"};

// Self-healing digests live in energy/artifact_hash.hpp — one shared
// field enumeration with the auditor's equality checks, so a new
// ModeEvaluation field can't silently drop out of either.

enum class InsertFault : std::uint8_t { kProceed, kSkip, kCorrupt };

/// Maps a cache.insert firing onto the insert-specific semantics above.
/// `fail` becomes a skipped insert rather than an exception: a memo
/// insert has no caller-side retry (the value is already computed), and
/// dropping it is exactly as recoverable.
InsertFault cache_insert_fault() {
  switch (fp_cache_insert.hit()) {
    case failpoint::Action::kNone:
      return InsertFault::kProceed;
    case failpoint::Action::kFail:
      return InsertFault::kSkip;
    case failpoint::Action::kKill:
      std::_Exit(failpoint::kKillExitCode);
    case failpoint::Action::kCorrupt:
      return InsertFault::kCorrupt;
  }
  return InsertFault::kProceed;
}

}  // namespace

std::size_t ModeEvalKeyHash::operator()(const ModeEvalKey& key) const {
  Fnv1a64 h;
  h.add(static_cast<std::uint64_t>(key.mode));
  h.add(key.options_fingerprint);
  for (PeId pe : key.task_to_pe)
    h.add(static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(pe.value())));
  for (const CoreSet& set : key.cores) {
    h.add(static_cast<std::uint64_t>(set.entries().size()));
    for (const auto& [type, count] : set.entries()) {
      h.add(static_cast<std::uint64_t>(
          static_cast<std::uint32_t>(type.value())));
      h.add(static_cast<std::uint64_t>(count));
    }
  }
  return static_cast<std::size_t>(h.digest());
}

const ModeEvaluation* ModeEvalCache::find(const ModeEvalKey& key) {
  ++lookups_;
  const auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  if (mode_evaluation_digest(it->second.value) != it->second.digest) {
    // Poisoned entry: quarantine (erase) and report a miss so the caller
    // recomputes. Recomputation is bit-identical to a cold evaluation.
    ++quarantined_;
    order_.erase(std::find(order_.begin(), order_.end(), key));
    map_.erase(it);
    return nullptr;
  }
  ++hits_;
  return &it->second.value;
}

void ModeEvalCache::insert(const ModeEvalKey& key,
                           const ModeEvaluation& value) {
  // Duplicate keys must be detected *before* eviction: at capacity, running
  // the eviction loop first would evict the FIFO head and then fail the
  // emplace, shrinking the cache and losing an innocent entry.
  if (map_.find(key) != map_.end()) return;
  const InsertFault fault = cache_insert_fault();
  if (fault == InsertFault::kSkip) return;
  if (capacity_ > 0) {
    while (map_.size() >= capacity_ && !order_.empty()) {
      map_.erase(order_.front());
      order_.pop_front();
    }
  }
  Stored<ModeEvaluation> stored{value, mode_evaluation_digest(value)};
  if (fault == InsertFault::kCorrupt)
    stored.value.dyn_energy =
        std::bit_cast<double>(std::bit_cast<std::uint64_t>(
                                  stored.value.dyn_energy) ^ 1u);
  map_.emplace(key, std::move(stored));
  order_.push_back(key);
}

const ModeSchedule* ModeEvalCache::find_schedule(const ModeEvalKey& key) {
  ++schedule_lookups_;
  const auto it = schedule_map_.find(key);
  if (it == schedule_map_.end()) return nullptr;
  if (mode_schedule_digest(it->second.value) != it->second.digest) {
    ++schedule_quarantined_;
    schedule_order_.erase(
        std::find(schedule_order_.begin(), schedule_order_.end(), key));
    schedule_map_.erase(it);
    return nullptr;
  }
  ++schedule_hits_;
  return &it->second.value;
}

void ModeEvalCache::insert_schedule(const ModeEvalKey& key,
                                    const ModeSchedule& value) {
  // Same duplicate-before-eviction ordering as insert().
  if (schedule_map_.find(key) != schedule_map_.end()) return;
  const InsertFault fault = cache_insert_fault();
  if (fault == InsertFault::kSkip) return;
  if (capacity_ > 0) {
    while (schedule_map_.size() >= capacity_ && !schedule_order_.empty()) {
      schedule_map_.erase(schedule_order_.front());
      schedule_order_.pop_front();
    }
  }
  Stored<ModeSchedule> stored{value, mode_schedule_digest(value)};
  if (fault == InsertFault::kCorrupt && !stored.value.tasks.empty())
    stored.value.makespan = std::bit_cast<double>(
        std::bit_cast<std::uint64_t>(stored.value.makespan) ^ 1u);
  schedule_map_.emplace(key, std::move(stored));
  schedule_order_.push_back(key);
}

std::vector<std::pair<ModeEvalKey, ModeEvaluation>> ModeEvalCache::entries()
    const {
  std::vector<std::pair<ModeEvalKey, ModeEvaluation>> out;
  out.reserve(order_.size());
  for (const ModeEvalKey& key : order_)
    out.emplace_back(key, map_.at(key).value);
  return out;
}

std::vector<std::pair<ModeEvalKey, ModeSchedule>>
ModeEvalCache::schedule_entries() const {
  std::vector<std::pair<ModeEvalKey, ModeSchedule>> out;
  out.reserve(schedule_order_.size());
  for (const ModeEvalKey& key : schedule_order_)
    out.emplace_back(key, schedule_map_.at(key).value);
  return out;
}

void ModeEvalCache::restore(
    std::vector<std::pair<ModeEvalKey, ModeEvaluation>> entries, long hits,
    long lookups) {
  map_.clear();
  order_.clear();
  for (auto& [key, value] : entries) insert(key, value);
  hits_ = hits;
  lookups_ = lookups;
}

void ModeEvalCache::restore_schedules(
    std::vector<std::pair<ModeEvalKey, ModeSchedule>> entries, long hits,
    long lookups) {
  schedule_map_.clear();
  schedule_order_.clear();
  for (auto& [key, value] : entries) insert_schedule(key, value);
  schedule_hits_ = hits;
  schedule_lookups_ = lookups;
}

void ModeEvalCache::clear() {
  map_.clear();
  order_.clear();
  schedule_map_.clear();
  schedule_order_.clear();
  hits_ = 0;
  lookups_ = 0;
  schedule_hits_ = 0;
  schedule_lookups_ = 0;
  quarantined_ = 0;
  schedule_quarantined_ = 0;
}

Evaluator::Evaluator(const System& system, EvaluationOptions options)
    : system_(system),
      options_(std::move(options)),
      pipeline_(system, PipelineOptions{options_.scheduling_policy,
                                        options_.use_dvs, options_.dvs,
                                        options_.keep_schedules,
                                        options_.profiler, options_.power}) {
  true_probs_ = system.omsm.probabilities();
  if (options_.weight_override.empty()) {
    weights_ = true_probs_;
  } else {
    if (options_.weight_override.size() != system.omsm.mode_count())
      throw std::invalid_argument(
          "EvaluationOptions::weight_override size mismatch");
    weights_ = options_.weight_override;
  }
  double total = 0.0;
  for (double w : weights_) total += w;
  if (total <= 0.0)
    throw std::invalid_argument("optimisation weights must sum > 0");
  for (double& w : weights_) w /= total;
}

ModeEvaluation Evaluator::evaluate_mode(std::size_t m,
                                        const MultiModeMapping& mapping,
                                        const CoreAllocation& cores) const {
  return pipeline_.run(m, mapping.modes[m], cores.per_mode[m]);
}

ModeEvalKey Evaluator::mode_key(std::size_t m, const MultiModeMapping& mapping,
                                const CoreAllocation& cores) const {
  ModeEvalKey key;
  key.mode = static_cast<std::uint32_t>(m);
  key.options_fingerprint = pipeline_.evaluation_fingerprint();
  key.task_to_pe = mapping.modes[m].task_to_pe;
  key.cores = cores.per_mode[m];
  return key;
}

ModeEvalKey Evaluator::schedule_key(std::size_t m,
                                    const MultiModeMapping& mapping,
                                    const CoreAllocation& cores) const {
  ModeEvalKey key;
  key.mode = static_cast<std::uint32_t>(m);
  key.options_fingerprint = pipeline_.schedule_fingerprint();
  key.task_to_pe = mapping.modes[m].task_to_pe;
  key.cores = cores.per_mode[m];
  return key;
}

Evaluation Evaluator::assemble(const MultiModeMapping& mapping,
                               const CoreAllocation& cores,
                               std::vector<ModeEvaluation> modes) const {
  (void)mapping;
  const Omsm& omsm = system_.omsm;
  const Architecture& arch = system_.arch;
  const TechLibrary& tech = system_.tech;
  assert(modes.size() == omsm.mode_count());

  Evaluation eval;
  eval.modes = std::move(modes);

  // Accumulated in ascending mode order so the floating-point sums are
  // bitwise-identical to the pre-decomposition evaluator.
  for (std::size_t m = 0; m < omsm.mode_count(); ++m) {
    const Mode& mode = omsm.mode(ModeId{static_cast<ModeId::value_type>(m)});
    const ModeEvaluation& me = eval.modes[m];
    const double mode_power = mode_total_power(me);
    eval.avg_power_true += mode_power * true_probs_[m];
    eval.avg_power_weighted += mode_power * weights_[m];
    // Normalised by the mode period: the timing penalty is expressed in
    // fractions of the period, never raw seconds (scale-independent).
    eval.weighted_timing_violation +=
        weights_[m] * me.timing_violation / mode.period;
  }

  // ---- Area usage and violations (line 06). -----------------------------
  eval.pe_used_area.assign(arch.pe_count(), 0.0);
  eval.pe_area_violation.assign(arch.pe_count(), 0.0);
  for (PeId p : arch.pe_ids()) {
    const Pe& pe = arch.pe(p);
    if (!is_hardware(pe.kind)) continue;
    eval.pe_used_area[p.index()] = cores.required_area(p, tech);
    eval.pe_area_violation[p.index()] =
        std::max(0.0, eval.pe_used_area[p.index()] - pe.area_capacity);
    eval.total_area_violation += eval.pe_area_violation[p.index()];
  }

  // ---- Mode-transition (FPGA reconfiguration) times (line 08). ----------
  eval.transition_times.assign(omsm.transition_count(), 0.0);
  eval.transition_violations.assign(omsm.transition_count(), 0.0);
  for (std::size_t t = 0; t < omsm.transition_count(); ++t) {
    const ModeTransition& tr =
        omsm.transition(TransitionId{static_cast<TransitionId::value_type>(t)});
    double time = 0.0;
    for (PeId p : arch.pe_ids()) {
      const Pe& pe = arch.pe(p);
      if (pe.kind != PeKind::kFpga) continue;
      const double delta = cores.cores(tr.to, p).delta_area_from(
          cores.cores(tr.from, p), tech, p);
      // FPGAs reconfigure in parallel with each other; the transition
      // waits for the slowest one.
      time = std::max(time, delta / pe.reconfig_bandwidth);
    }
    eval.transition_times[t] = time;
    eval.transition_violations[t] =
        std::max(0.0, time - tr.max_transition_time);
  }

  return eval;
}

Evaluation Evaluator::evaluate(const MultiModeMapping& mapping,
                               const CoreAllocation& cores) const {
  std::vector<ModeEvaluation> modes;
  modes.reserve(system_.omsm.mode_count());
  for (std::size_t m = 0; m < system_.omsm.mode_count(); ++m)
    modes.push_back(evaluate_mode(m, mapping, cores));
  return assemble(mapping, cores, std::move(modes));
}

Evaluation Evaluator::evaluate(const MultiModeMapping& mapping,
                               const CoreAllocation& cores,
                               ModeEvalCache* cache) const {
  if (cache == nullptr) return evaluate(mapping, cores);
  std::vector<ModeEvaluation> modes;
  modes.reserve(system_.omsm.mode_count());
  for (std::size_t m = 0; m < system_.omsm.mode_count(); ++m) {
    // Whole-mode store first — but only when the result needs no schedule:
    // cached ModeEvaluations carry none, so keep_schedules skips this tier.
    const bool use_eval_store = !options_.keep_schedules;
    if (use_eval_store) {
      const ModeEvalKey key = mode_key(m, mapping, cores);
      if (const ModeEvaluation* hit = cache->find(key)) {
        modes.push_back(*hit);
        continue;
      }
      // Whole-mode miss: resume from the schedule artifact when stages
      // 1–2 already ran for this key (e.g. under different DVS knobs).
      const ModeEvalKey skey = schedule_key(m, mapping, cores);
      if (const ModeSchedule* sched = cache->find_schedule(skey)) {
        modes.push_back(
            pipeline_.evaluate_scheduled(m, mapping.modes[m], *sched));
      } else {
        ModeSchedule fresh = pipeline_.build_schedule(m, mapping.modes[m],
                                                      cores.per_mode[m]);
        cache->insert_schedule(skey, fresh);
        modes.push_back(pipeline_.evaluate_scheduled(m, mapping.modes[m],
                                                     std::move(fresh)));
      }
      cache->insert(key, modes.back());
      continue;
    }
    // keep_schedules: only the schedule store applies.
    const ModeEvalKey skey = schedule_key(m, mapping, cores);
    if (const ModeSchedule* sched = cache->find_schedule(skey)) {
      modes.push_back(
          pipeline_.evaluate_scheduled(m, mapping.modes[m], *sched));
    } else {
      ModeSchedule fresh = pipeline_.build_schedule(m, mapping.modes[m],
                                                    cores.per_mode[m]);
      cache->insert_schedule(skey, fresh);
      modes.push_back(pipeline_.evaluate_scheduled(m, mapping.modes[m],
                                                   std::move(fresh)));
    }
  }
  return assemble(mapping, cores, std::move(modes));
}

}  // namespace mmsyn
