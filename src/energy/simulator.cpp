#include "energy/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/rng.hpp"
#include "power/power_model.hpp"

namespace mmsyn {

std::vector<double> jump_chain_stationary_distribution(const Omsm& omsm,
                                                       int iterations) {
  const std::size_t n = omsm.mode_count();
  // Outgoing transition lists.
  std::vector<std::vector<std::size_t>> out(n);
  for (const ModeTransition& t : omsm.transitions())
    out[t.from.index()].push_back(t.to.index());

  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t m = 0; m < n; ++m) {
      if (out[m].empty()) {
        next[m] += pi[m];  // absorbing: mass stays
        continue;
      }
      const double share = pi[m] / static_cast<double>(out[m].size());
      for (std::size_t to : out[m]) next[to] += share;
    }
    // Damped update: converges even for periodic (bipartite) chains,
    // where the undamped iteration oscillates.
    for (std::size_t m = 0; m < n; ++m) pi[m] = 0.5 * (pi[m] + next[m]);
  }
  // Normalise against numeric drift.
  double total = 0.0;
  for (double p : pi) total += p;
  if (total > 0.0)
    for (double& p : pi) p /= total;
  return pi;
}

SimulationResult simulate_usage(const System& system,
                                const Evaluation& evaluation,
                                const SimulationOptions& options) {
  if (!(options.total_time > 0.0))
    throw SimulationError(
        "SimulationOptions::total_time must be > 0 (got " +
        std::to_string(options.total_time) +
        "): a zero-length simulation has no elapsed time to average over");
  const Omsm& omsm = system.omsm;
  const std::size_t n = omsm.mode_count();
  Rng rng(options.seed);

  // Outgoing transitions per mode (indices into the transition list so the
  // reconfiguration time of the taken edge can be charged).
  std::vector<std::vector<std::size_t>> out(n);
  for (std::size_t t = 0; t < omsm.transition_count(); ++t)
    out[omsm.transition(TransitionId{static_cast<TransitionId::value_type>(t)})
            .from.index()]
        .push_back(t);

  // Dwell-time calibration: with jump-chain stationary distribution π and
  // mean dwell d_m per visit, the long-run time fraction of mode m is
  // π_m d_m / Σ_k π_k d_k. Choosing d_m ∝ Ψ_m / π_m makes that Ψ_m.
  const std::vector<double> pi = jump_chain_stationary_distribution(omsm);
  std::vector<double> mean_dwell(n, options.mean_dwell);
  for (std::size_t m = 0; m < n; ++m) {
    const double psi = omsm.mode(ModeId{static_cast<ModeId::value_type>(m)})
                           .probability;
    if (pi[m] > 1e-12) mean_dwell[m] = options.mean_dwell * psi / pi[m];
    // Modes with Ψ == 0 keep the default dwell; they contribute ~nothing.
  }

  SimulationResult result;
  result.time_in_mode.assign(n, 0.0);
  result.empirical_probability.assign(n, 0.0);
  result.visits.assign(n, 0);

  // Per-mode total power of the candidate.
  std::vector<double> mode_power(n, 0.0);
  for (std::size_t m = 0; m < n; ++m)
    mode_power[m] = mode_total_power(evaluation.modes[m]);

  // Start in the most probable mode (the device's resting state).
  std::size_t current = 0;
  for (std::size_t m = 1; m < n; ++m)
    if (omsm.mode(ModeId{static_cast<ModeId::value_type>(m)}).probability >
        omsm.mode(ModeId{static_cast<ModeId::value_type>(current)})
            .probability)
      current = m;

  double now = 0.0;
  while (now < options.total_time) {
    ++result.visits[current];
    // Exponential dwell, truncated at the simulation horizon.
    const double u = std::max(1e-12, 1.0 - rng.canonical());
    double dwell = -mean_dwell[current] * std::log(u);
    if (out[current].empty()) dwell = options.total_time - now;  // absorbing
    dwell = std::min(dwell, options.total_time - now);
    result.time_in_mode[current] += dwell;
    result.total_energy += dwell * mode_power[current];
    now += dwell;
    if (now >= options.total_time || out[current].empty()) break;

    // Jump uniformly over outgoing transitions.
    const std::size_t edge = out[current][rng.pick_index(out[current].size())];
    const ModeTransition& tr = omsm.transition(
        TransitionId{static_cast<TransitionId::value_type>(edge)});
    ++result.transition_count;
    if (options.include_transition_overheads) {
      const double reconf =
          std::min(evaluation.transition_times[edge],
                   options.total_time - now);
      result.transition_time_total += reconf;
      // During reconfiguration the target mode's components are powering
      // up: charge its static power.
      result.total_energy +=
          reconf * evaluation.modes[tr.to.index()].static_power;
      now += reconf;
    }
    current = tr.to.index();
  }

  const double elapsed = std::max(now, 1e-12);
  for (std::size_t m = 0; m < n; ++m)
    result.empirical_probability[m] = result.time_in_mode[m] / elapsed;
  result.average_power = result.total_energy / elapsed;
  return result;
}

}  // namespace mmsyn
