// Implementation-candidate evaluation: Eq. (1) of the paper.
//
// Given a multi-mode task mapping and a hardware core allocation, this
// module runs the inner loop for every mode (communication mapping + list
// scheduling, optionally PV-DVS voltage scaling), performs the component
// shut-down analysis, and aggregates
//
//   p̄ = Σ_O ( p̄_dyn(O) + p̄_stat(O) ) · Ψ_O
//
// together with the penalty quantities (area, timing, mode-transition)
// that the GA fitness combines. The probability-neglecting baseline is
// obtained by overriding the Ψ weights used during optimisation while the
// reported power always uses the true Ψ.
#pragma once

#include <optional>
#include <vector>

#include "dvs/pv_dvs.hpp"
#include "model/core_allocation.hpp"
#include "model/mapping.hpp"
#include "model/system.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"

namespace mmsyn {

/// Evaluation controls.
struct EvaluationOptions {
  /// Apply PV-DVS voltage scaling to DVS-enabled PEs.
  bool use_dvs = false;
  /// Voltage-scaling knobs (used when use_dvs).
  PvDvsOptions dvs;
  /// Mode weights used for the *optimisation* objective. Empty = the true
  /// probabilities Ψ from the OMSM. The probability-neglecting baseline
  /// passes uniform weights here.
  std::vector<double> weight_override;
  /// Keep the per-mode schedules in the result (off in the GA hot loop).
  bool keep_schedules = false;
  /// Task-selection priority of the inner-loop list scheduler.
  SchedulingPolicy scheduling_policy = SchedulingPolicy::kBottomLevel;
};

/// Per-mode evaluation detail.
struct ModeEvaluation {
  /// Dynamic energy per hyper-period (after DVS when enabled), joules.
  double dyn_energy = 0.0;
  /// dyn_energy / period, watts.
  double dyn_power = 0.0;
  /// Static power of the components active in this mode, watts.
  double static_power = 0.0;
  /// Σ_τ max(0, finish(τ) − min(θ_τ, φ)), seconds.
  double timing_violation = 0.0;
  double makespan = 0.0;
  /// Shut-down analysis: component powered during this mode?
  std::vector<bool> pe_active;
  std::vector<bool> cl_active;
  bool routable = true;
  /// Schedule retained when EvaluationOptions::keep_schedules.
  std::optional<ModeSchedule> schedule;
};

/// Whole-candidate evaluation.
struct Evaluation {
  std::vector<ModeEvaluation> modes;

  /// Average power with the true probabilities Ψ (the reported metric).
  double avg_power_true = 0.0;
  /// Average power with the optimisation weights (== avg_power_true when
  /// no override) — the p̄ entering the fitness.
  double avg_power_weighted = 0.0;

  /// Per-PE used area (hardware PEs; max over modes for FPGAs).
  std::vector<double> pe_used_area;
  /// Per-PE max(0, used − capacity).
  std::vector<double> pe_area_violation;
  double total_area_violation = 0.0;

  /// Per-OMSM-transition reconfiguration time (seconds).
  std::vector<double> transition_times;
  /// Per-transition max(0, t_T − t_T^max).
  std::vector<double> transition_violations;

  /// Σ over modes of weighted timing violations (seconds, weighted by the
  /// optimisation weights).
  double weighted_timing_violation = 0.0;

  [[nodiscard]] bool timing_feasible() const {
    for (const ModeEvaluation& m : modes)
      if (m.timing_violation > 0.0 || !m.routable) return false;
    return true;
  }
  [[nodiscard]] bool area_feasible() const {
    return total_area_violation <= 0.0;
  }
  [[nodiscard]] bool transitions_feasible() const {
    for (double v : transition_violations)
      if (v > 0.0) return false;
    return true;
  }
  [[nodiscard]] bool feasible() const {
    return timing_feasible() && area_feasible() && transitions_feasible();
  }
};

/// Evaluates candidates against one system. The system reference must
/// outlive the evaluator.
///
/// Thread safety: `evaluate` is pure — it reads only the immutable
/// system/options/weights state and touches no caches or globals (the
/// whole inner loop: list scheduler, DVS-graph construction and PV-DVS
/// keep their state on the stack). One Evaluator instance may therefore
/// be shared by concurrent callers; the GA's parallel fitness evaluation
/// relies on this contract.
class Evaluator {
public:
  Evaluator(const System& system, EvaluationOptions options);

  /// Full evaluation of (mapping, core allocation). Const and
  /// reentrant: safe to call concurrently from multiple threads.
  [[nodiscard]] Evaluation evaluate(const MultiModeMapping& mapping,
                                    const CoreAllocation& cores) const;

  [[nodiscard]] const EvaluationOptions& options() const { return options_; }
  [[nodiscard]] const System& system() const { return system_; }

  /// The weights entering the optimisation objective (true Ψ or override),
  /// normalised to sum 1.
  [[nodiscard]] const std::vector<double>& optimisation_weights() const {
    return weights_;
  }

private:
  const System& system_;
  EvaluationOptions options_;
  std::vector<double> weights_;      // optimisation weights (normalised)
  std::vector<double> true_probs_;   // Ψ from the OMSM
};

}  // namespace mmsyn
