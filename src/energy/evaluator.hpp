// Implementation-candidate evaluation: Eq. (1) of the paper.
//
// Given a multi-mode task mapping and a hardware core allocation, this
// module runs the per-mode pipeline for every mode (communication mapping
// + list scheduling, optionally PV-DVS voltage scaling — see
// pipeline/mode_pipeline.hpp), performs the component shut-down analysis,
// and aggregates
//
//   p̄ = Σ_O ( p̄_dyn(O) + p̄_stat(O) ) · Ψ_O
//
// together with the penalty quantities (area, timing, mode-transition)
// that the GA fitness combines. The probability-neglecting baseline is
// obtained by overriding the Ψ weights used during optimisation while the
// reported power always uses the true Ψ.
//
// Incremental evaluation: the expensive part of an evaluation is the
// per-mode pipeline, and crossover/mutation usually change only a few
// modes' gene slices. `evaluate_mode` exposes one mode's pipeline as a
// pure function of that mode's exact inputs, `mode_key` captures those
// inputs as a hashable key, and `ModeEvalCache` memoises results at two
// granularities: whole-mode evaluations, and the intermediate schedule
// artifact keyed by only the stage-1/2 inputs — so a change that merely
// perturbs voltage-relevant state reuses the schedule and re-runs only
// serialization/DVS/aggregation (see DESIGN.md §10–§11).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dvs/pv_dvs.hpp"
#include "model/core_allocation.hpp"
#include "model/mapping.hpp"
#include "model/system.hpp"
#include "pipeline/artifacts.hpp"
#include "pipeline/mode_pipeline.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"

namespace mmsyn {

class PowerModel;

/// Evaluation controls.
struct EvaluationOptions {
  /// Apply PV-DVS voltage scaling to DVS-enabled PEs (the "pv-dvs"
  /// backend; false selects the nominal-voltage "none" backend).
  bool use_dvs = false;
  /// Voltage-scaling knobs (used when use_dvs).
  PvDvsOptions dvs;
  /// Mode weights used for the *optimisation* objective. Empty = the true
  /// probabilities Ψ from the OMSM. The probability-neglecting baseline
  /// passes uniform weights here.
  std::vector<double> weight_override;
  /// Keep the per-mode schedules in the result (off in the GA hot loop).
  bool keep_schedules = false;
  /// Task-selection priority of the inner-loop list scheduler.
  SchedulingPolicy scheduling_policy = SchedulingPolicy::kBottomLevel;
  /// Optional per-stage instrumentation (not fingerprinted; never alters
  /// any result).
  PipelineProfiler* profiler = nullptr;
  /// Power-model backend (see power/power_model.hpp). Null selects the
  /// pinned `paper` reference model (bit-identical to its absence); any
  /// non-reference backend folds into the evaluation fingerprint.
  const PowerModel* power = nullptr;
};

/// Whole-candidate evaluation.
struct Evaluation {
  std::vector<ModeEvaluation> modes;

  /// Average power with the true probabilities Ψ (the reported metric).
  double avg_power_true = 0.0;
  /// Average power with the optimisation weights (== avg_power_true when
  /// no override) — the p̄ entering the fitness.
  double avg_power_weighted = 0.0;

  /// Per-PE used area (hardware PEs; max over modes for FPGAs).
  std::vector<double> pe_used_area;
  /// Per-PE max(0, used − capacity).
  std::vector<double> pe_area_violation;
  double total_area_violation = 0.0;

  /// Per-OMSM-transition reconfiguration time (seconds).
  std::vector<double> transition_times;
  /// Per-transition max(0, t_T − t_T^max).
  std::vector<double> transition_violations;

  /// Σ over modes of weighted timing violations, each mode's violation
  /// expressed as a fraction of that mode's period (dimensionless, so the
  /// timing penalty is invariant under rescaling the time base), weighted
  /// by the optimisation weights.
  double weighted_timing_violation = 0.0;

  [[nodiscard]] bool timing_feasible() const {
    for (const ModeEvaluation& m : modes)
      if (m.timing_violation > 0.0 || !m.routable) return false;
    return true;
  }
  [[nodiscard]] bool area_feasible() const {
    return total_area_violation <= 0.0;
  }
  [[nodiscard]] bool transitions_feasible() const {
    for (double v : transition_violations)
      if (v > 0.0) return false;
    return true;
  }
  [[nodiscard]] bool feasible() const {
    return timing_feasible() && area_feasible() && transitions_feasible();
  }
};

/// Cache key of one mode's pipeline result: exactly the inputs the
/// stages read for that mode — its task→PE gene slice, the core sets
/// loaded in that mode (the allocation slice; for ASICs this folds in
/// demand from *other* modes, which is why it must be part of the key),
/// and a fingerprint of the options the keyed stages read. Whole-mode
/// entries use the evaluation fingerprint (scheduler + DVS backend +
/// knobs); schedule-stage entries use the schedule fingerprint (scheduler
/// backend only). Everything else (architecture, technology library, task
/// graphs) is fixed per system. Equality is exact, so a hash collision
/// can never change a result — the unordered_map resolves it through full
/// key comparison.
struct ModeEvalKey {
  std::uint32_t mode = 0;
  std::uint64_t options_fingerprint = 0;
  std::vector<PeId> task_to_pe;
  std::vector<CoreSet> cores;

  friend bool operator==(const ModeEvalKey&, const ModeEvalKey&) = default;
};

struct ModeEvalKeyHash {
  std::size_t operator()(const ModeEvalKey& key) const;
};

/// Bounded FIFO memo of per-mode pipeline results at two granularities:
/// whole-mode evaluations (find/insert) and stage-2 schedule artifacts
/// (find_schedule/insert_schedule), each with its own FIFO, counters and
/// the shared capacity bound. Not thread-safe: callers that evaluate
/// concurrently must confine lookups/insertions to a serial phase (see
/// MappingGa::evaluate_batch). A cached value is bitwise-identical to a
/// cold evaluation — whole-mode entries store the complete ModeEvaluation
/// the pipeline produced, schedule entries the exact ModeSchedule, and
/// replays run the same downstream stage code a cold evaluation runs.
///
/// Self-healing: every entry carries an FNV-1a digest of its value,
/// verified on lookup. An entry whose bytes no longer match (bit rot, a
/// `cache.insert` corrupt failpoint) is *quarantined* — erased and
/// reported as a miss — so the caller transparently recomputes instead
/// of propagating a poisoned result. Recomputation is bit-identical to
/// a cold evaluation, so quarantine never changes a trajectory.
class ModeEvalCache {
public:
  explicit ModeEvalCache(std::size_t capacity = 1 << 16)
      : capacity_(capacity) {}

  /// Looks `key` up, counting one lookup (and a hit when found). The
  /// returned pointer is invalidated by the next insert().
  [[nodiscard]] const ModeEvaluation* find(const ModeEvalKey& key);

  /// Inserts (FIFO-evicting at capacity); duplicate keys are ignored.
  void insert(const ModeEvalKey& key, const ModeEvaluation& value);

  /// Schedule-stage lookup (separate store and counters); the returned
  /// pointer is invalidated by the next insert_schedule().
  [[nodiscard]] const ModeSchedule* find_schedule(const ModeEvalKey& key);

  /// Inserts a schedule artifact (FIFO-evicting at capacity).
  void insert_schedule(const ModeEvalKey& key, const ModeSchedule& value);

  /// Accounts one extra hit. Batch evaluators that dedup in-flight keys
  /// call this for an aliased lookup — the one-at-a-time execution they
  /// mirror would have found the entry its preceding job inserted.
  void credit_hit() { ++hits_; }

  [[nodiscard]] long hits() const { return hits_; }
  [[nodiscard]] long lookups() const { return lookups_; }
  [[nodiscard]] long schedule_hits() const { return schedule_hits_; }
  [[nodiscard]] long schedule_lookups() const { return schedule_lookups_; }
  /// Entries evicted by a failed digest check, per store.
  [[nodiscard]] long quarantined() const { return quarantined_; }
  [[nodiscard]] long schedule_quarantined() const {
    return schedule_quarantined_;
  }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t schedule_size() const {
    return schedule_map_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Whole-mode entries in insertion (FIFO) order, for checkpoints.
  [[nodiscard]] std::vector<std::pair<ModeEvalKey, ModeEvaluation>>
  entries() const;

  /// Schedule-stage entries in insertion (FIFO) order, for checkpoints.
  [[nodiscard]] std::vector<std::pair<ModeEvalKey, ModeSchedule>>
  schedule_entries() const;

  /// Restores the whole-mode store: contents in insertion order plus the
  /// counters, so a resumed run's statistics continue exactly where they
  /// left off. The schedule store is untouched.
  void restore(std::vector<std::pair<ModeEvalKey, ModeEvaluation>> entries,
               long hits, long lookups);

  /// Restores the schedule-stage store and its counters; the whole-mode
  /// store is untouched.
  void restore_schedules(
      std::vector<std::pair<ModeEvalKey, ModeSchedule>> entries, long hits,
      long lookups);

  void clear();

private:
  /// A cached value plus the digest of the bytes that were stored, so a
  /// later lookup can prove the entry is still what insert() computed.
  template <typename T>
  struct Stored {
    T value;
    std::uint64_t digest = 0;
  };

  std::size_t capacity_;
  long hits_ = 0;
  long lookups_ = 0;
  long schedule_hits_ = 0;
  long schedule_lookups_ = 0;
  long quarantined_ = 0;
  long schedule_quarantined_ = 0;
  std::unordered_map<ModeEvalKey, Stored<ModeEvaluation>, ModeEvalKeyHash>
      map_;
  std::deque<ModeEvalKey> order_;  // insertion order for FIFO eviction
  std::unordered_map<ModeEvalKey, Stored<ModeSchedule>, ModeEvalKeyHash>
      schedule_map_;
  std::deque<ModeEvalKey> schedule_order_;
};

/// Evaluates candidates against one system. The system reference must
/// outlive the evaluator.
///
/// Thread safety: `evaluate(mapping, cores)`, `evaluate_mode`, `mode_key`
/// and `assemble` are pure — they read only the immutable
/// system/options/weights state and touch no caches or globals (the
/// whole pipeline: list scheduler, DVS-graph construction and PV-DVS
/// keep their state on the stack). One Evaluator instance may therefore
/// be shared by concurrent callers; the GA's parallel fitness evaluation
/// relies on this contract. The cache-taking `evaluate` overload mutates
/// the caller-owned cache and is not reentrant on the same cache.
class Evaluator {
public:
  Evaluator(const System& system, EvaluationOptions options);

  /// Full evaluation of (mapping, core allocation). Const and
  /// reentrant: safe to call concurrently from multiple threads.
  [[nodiscard]] Evaluation evaluate(const MultiModeMapping& mapping,
                                    const CoreAllocation& cores) const;

  /// Full evaluation through the per-mode memo: modes whose whole-mode
  /// key is cached skip the pipeline entirely; on a whole-mode miss a
  /// cached schedule artifact skips stages 1–2 and re-runs only
  /// serialization/DVS/aggregation. Bitwise-identical to the cache-less
  /// overload. A null cache falls back to the cold path. Under
  /// options().keep_schedules the whole-mode store is bypassed (its
  /// entries carry no schedules) but the schedule store is still used —
  /// this is how the final fine-DVS evaluation reuses the GA's schedule
  /// artifacts across DVS-option boundaries.
  [[nodiscard]] Evaluation evaluate(const MultiModeMapping& mapping,
                                    const CoreAllocation& cores,
                                    ModeEvalCache* cache) const;

  /// The per-mode pipeline (communication mapping + list scheduling +
  /// optional PV-DVS + shut-down analysis) for mode `m` alone. Pure.
  [[nodiscard]] ModeEvaluation evaluate_mode(
      std::size_t m, const MultiModeMapping& mapping,
      const CoreAllocation& cores) const;

  /// Whole-mode cache key of mode `m` under this evaluator's options.
  /// Two equal keys are guaranteed identical pipeline results.
  [[nodiscard]] ModeEvalKey mode_key(std::size_t m,
                                     const MultiModeMapping& mapping,
                                     const CoreAllocation& cores) const;

  /// Schedule-stage cache key of mode `m`: same slice inputs, but
  /// fingerprinting only the options stages 1–2 read — equal keys across
  /// evaluators with different DVS settings name the same schedule.
  [[nodiscard]] ModeEvalKey schedule_key(std::size_t m,
                                         const MultiModeMapping& mapping,
                                         const CoreAllocation& cores) const;

  /// Cross-mode aggregation: Eq. 1 weighted powers, the per-period
  /// timing penalty, area usage/violations (max-over-modes for FPGAs) and
  /// the mode-transition reconfiguration times. Cheap relative to the
  /// per-mode pipeline; `modes` must hold one entry per OMSM mode.
  [[nodiscard]] Evaluation assemble(const MultiModeMapping& mapping,
                                    const CoreAllocation& cores,
                                    std::vector<ModeEvaluation> modes) const;

  [[nodiscard]] const EvaluationOptions& options() const { return options_; }
  [[nodiscard]] const System& system() const { return system_; }

  /// The staged pipeline this evaluator drives (for audit replay/tests).
  [[nodiscard]] const ModePipeline& pipeline() const { return pipeline_; }

  /// FNV-1a fingerprint of the options that shape a per-mode result
  /// (DVS settings, scheduling policy); baked into every whole-mode
  /// ModeEvalKey so a cache snapshot can never be replayed under
  /// different options.
  [[nodiscard]] std::uint64_t options_fingerprint() const {
    return pipeline_.evaluation_fingerprint();
  }

  /// Fingerprint of the schedule-stage inputs (scheduler backend only).
  [[nodiscard]] std::uint64_t schedule_fingerprint() const {
    return pipeline_.schedule_fingerprint();
  }

  /// The weights entering the optimisation objective (true Ψ or override),
  /// normalised to sum 1.
  [[nodiscard]] const std::vector<double>& optimisation_weights() const {
    return weights_;
  }

private:
  const System& system_;
  EvaluationOptions options_;
  ModePipeline pipeline_;
  std::vector<double> weights_;      // optimisation weights (normalised)
  std::vector<double> true_probs_;   // Ψ from the OMSM
};

}  // namespace mmsyn
