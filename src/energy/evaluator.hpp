// Implementation-candidate evaluation: Eq. (1) of the paper.
//
// Given a multi-mode task mapping and a hardware core allocation, this
// module runs the inner loop for every mode (communication mapping + list
// scheduling, optionally PV-DVS voltage scaling), performs the component
// shut-down analysis, and aggregates
//
//   p̄ = Σ_O ( p̄_dyn(O) + p̄_stat(O) ) · Ψ_O
//
// together with the penalty quantities (area, timing, mode-transition)
// that the GA fitness combines. The probability-neglecting baseline is
// obtained by overriding the Ψ weights used during optimisation while the
// reported power always uses the true Ψ.
//
// Incremental evaluation: the expensive part of an evaluation is the
// per-mode inner loop, and crossover/mutation usually change only a few
// modes' gene slices. `evaluate_mode` therefore exposes one mode's inner
// loop as a pure function of that mode's exact inputs, `mode_key` captures
// those inputs as a hashable key, and `ModeEvalCache` memoises the result
// so an unchanged mode is never rescheduled (see DESIGN.md §10).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dvs/pv_dvs.hpp"
#include "model/core_allocation.hpp"
#include "model/mapping.hpp"
#include "model/system.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"

namespace mmsyn {

/// Evaluation controls.
struct EvaluationOptions {
  /// Apply PV-DVS voltage scaling to DVS-enabled PEs.
  bool use_dvs = false;
  /// Voltage-scaling knobs (used when use_dvs).
  PvDvsOptions dvs;
  /// Mode weights used for the *optimisation* objective. Empty = the true
  /// probabilities Ψ from the OMSM. The probability-neglecting baseline
  /// passes uniform weights here.
  std::vector<double> weight_override;
  /// Keep the per-mode schedules in the result (off in the GA hot loop).
  bool keep_schedules = false;
  /// Task-selection priority of the inner-loop list scheduler.
  SchedulingPolicy scheduling_policy = SchedulingPolicy::kBottomLevel;
};

/// Per-mode evaluation detail.
struct ModeEvaluation {
  /// Dynamic energy per hyper-period (after DVS when enabled), joules.
  double dyn_energy = 0.0;
  /// dyn_energy / period, watts.
  double dyn_power = 0.0;
  /// Static power of the components active in this mode, watts.
  double static_power = 0.0;
  /// Σ_τ max(0, finish(τ) − min(θ_τ, φ)), seconds.
  double timing_violation = 0.0;
  double makespan = 0.0;
  /// Shut-down analysis: component powered during this mode?
  std::vector<bool> pe_active;
  std::vector<bool> cl_active;
  bool routable = true;
  /// Schedule retained when EvaluationOptions::keep_schedules.
  std::optional<ModeSchedule> schedule;
};

/// Whole-candidate evaluation.
struct Evaluation {
  std::vector<ModeEvaluation> modes;

  /// Average power with the true probabilities Ψ (the reported metric).
  double avg_power_true = 0.0;
  /// Average power with the optimisation weights (== avg_power_true when
  /// no override) — the p̄ entering the fitness.
  double avg_power_weighted = 0.0;

  /// Per-PE used area (hardware PEs; max over modes for FPGAs).
  std::vector<double> pe_used_area;
  /// Per-PE max(0, used − capacity).
  std::vector<double> pe_area_violation;
  double total_area_violation = 0.0;

  /// Per-OMSM-transition reconfiguration time (seconds).
  std::vector<double> transition_times;
  /// Per-transition max(0, t_T − t_T^max).
  std::vector<double> transition_violations;

  /// Σ over modes of weighted timing violations, each mode's violation
  /// expressed as a fraction of that mode's period (dimensionless, so the
  /// timing penalty is invariant under rescaling the time base), weighted
  /// by the optimisation weights.
  double weighted_timing_violation = 0.0;

  [[nodiscard]] bool timing_feasible() const {
    for (const ModeEvaluation& m : modes)
      if (m.timing_violation > 0.0 || !m.routable) return false;
    return true;
  }
  [[nodiscard]] bool area_feasible() const {
    return total_area_violation <= 0.0;
  }
  [[nodiscard]] bool transitions_feasible() const {
    for (double v : transition_violations)
      if (v > 0.0) return false;
    return true;
  }
  [[nodiscard]] bool feasible() const {
    return timing_feasible() && area_feasible() && transitions_feasible();
  }
};

/// Cache key of one mode's inner-loop result: exactly the inputs the
/// scheduler + DVS pipeline reads for that mode — its task→PE gene slice,
/// the core sets loaded in that mode (the allocation slice; for ASICs
/// this folds in demand from *other* modes, which is why it must be part
/// of the key), and a fingerprint of the evaluation options. Everything
/// else (architecture, technology library, task graphs) is fixed per
/// system. Equality is exact, so a hash collision can never change a
/// result — the unordered_map resolves it through full key comparison.
struct ModeEvalKey {
  std::uint32_t mode = 0;
  std::uint64_t options_fingerprint = 0;
  std::vector<PeId> task_to_pe;
  std::vector<CoreSet> cores;

  friend bool operator==(const ModeEvalKey&, const ModeEvalKey&) = default;
};

struct ModeEvalKeyHash {
  std::size_t operator()(const ModeEvalKey& key) const;
};

/// Bounded FIFO memo of per-mode inner-loop results. Not thread-safe:
/// callers that evaluate concurrently must confine lookups/insertions to
/// a serial phase (see MappingGa::evaluate_batch). A cached value is
/// bitwise-identical to a cold evaluation — the cache stores the complete
/// `ModeEvaluation` the inner loop produced, and `Evaluator::evaluate`
/// recomputes only the cheap cross-mode aggregations from it.
class ModeEvalCache {
public:
  explicit ModeEvalCache(std::size_t capacity = 1 << 16)
      : capacity_(capacity) {}

  /// Looks `key` up, counting one lookup (and a hit when found). The
  /// returned pointer is invalidated by the next insert().
  [[nodiscard]] const ModeEvaluation* find(const ModeEvalKey& key);

  /// Inserts (FIFO-evicting at capacity); duplicate keys are ignored.
  void insert(const ModeEvalKey& key, const ModeEvaluation& value);

  /// Accounts one extra hit. Batch evaluators that dedup in-flight keys
  /// call this for an aliased lookup — the one-at-a-time execution they
  /// mirror would have found the entry its preceding job inserted.
  void credit_hit() { ++hits_; }

  [[nodiscard]] long hits() const { return hits_; }
  [[nodiscard]] long lookups() const { return lookups_; }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Entries in insertion (FIFO) order, for checkpoint snapshots.
  [[nodiscard]] std::vector<std::pair<ModeEvalKey, ModeEvaluation>>
  entries() const;

  /// Restores a snapshot: contents in insertion order plus the counters,
  /// so a resumed run's statistics continue exactly where they left off.
  void restore(std::vector<std::pair<ModeEvalKey, ModeEvaluation>> entries,
               long hits, long lookups);

  void clear();

private:
  std::size_t capacity_;
  long hits_ = 0;
  long lookups_ = 0;
  std::unordered_map<ModeEvalKey, ModeEvaluation, ModeEvalKeyHash> map_;
  std::deque<ModeEvalKey> order_;  // insertion order for FIFO eviction
};

/// Evaluates candidates against one system. The system reference must
/// outlive the evaluator.
///
/// Thread safety: `evaluate(mapping, cores)`, `evaluate_mode`, `mode_key`
/// and `assemble` are pure — they read only the immutable
/// system/options/weights state and touch no caches or globals (the
/// whole inner loop: list scheduler, DVS-graph construction and PV-DVS
/// keep their state on the stack). One Evaluator instance may therefore
/// be shared by concurrent callers; the GA's parallel fitness evaluation
/// relies on this contract. The cache-taking `evaluate` overload mutates
/// the caller-owned cache and is not reentrant on the same cache.
class Evaluator {
public:
  Evaluator(const System& system, EvaluationOptions options);

  /// Full evaluation of (mapping, core allocation). Const and
  /// reentrant: safe to call concurrently from multiple threads.
  [[nodiscard]] Evaluation evaluate(const MultiModeMapping& mapping,
                                    const CoreAllocation& cores) const;

  /// Full evaluation through a per-mode memo: modes whose key is cached
  /// skip scheduling + DVS entirely; only the cross-mode aggregations are
  /// recomputed. Bitwise-identical to the cache-less overload. A null
  /// cache — or options().keep_schedules, whose schedules the cache does
  /// not store — falls back to the cold path.
  [[nodiscard]] Evaluation evaluate(const MultiModeMapping& mapping,
                                    const CoreAllocation& cores,
                                    ModeEvalCache* cache) const;

  /// Inner loop (communication mapping + list scheduling + optional
  /// PV-DVS + shut-down analysis) for mode `m` alone. Pure.
  [[nodiscard]] ModeEvaluation evaluate_mode(
      std::size_t m, const MultiModeMapping& mapping,
      const CoreAllocation& cores) const;

  /// Cache key of mode `m`'s inner-loop inputs under this evaluator's
  /// options. Two equal keys are guaranteed identical inner-loop results.
  [[nodiscard]] ModeEvalKey mode_key(std::size_t m,
                                     const MultiModeMapping& mapping,
                                     const CoreAllocation& cores) const;

  /// Cross-mode aggregation: Eq. 1 weighted powers, the per-period
  /// timing penalty, area usage/violations (max-over-modes for FPGAs) and
  /// the mode-transition reconfiguration times. Cheap relative to the
  /// inner loop; `modes` must hold one entry per OMSM mode.
  [[nodiscard]] Evaluation assemble(const MultiModeMapping& mapping,
                                    const CoreAllocation& cores,
                                    std::vector<ModeEvaluation> modes) const;

  [[nodiscard]] const EvaluationOptions& options() const { return options_; }
  [[nodiscard]] const System& system() const { return system_; }

  /// FNV-1a fingerprint of the options that shape a per-mode result
  /// (DVS settings, scheduling policy); baked into every ModeEvalKey so a
  /// cache snapshot can never be replayed under different options.
  [[nodiscard]] std::uint64_t options_fingerprint() const {
    return options_fingerprint_;
  }

  /// The weights entering the optimisation objective (true Ψ or override),
  /// normalised to sum 1.
  [[nodiscard]] const std::vector<double>& optimisation_weights() const {
    return weights_;
  }

private:
  const System& system_;
  EvaluationOptions options_;
  std::vector<double> weights_;      // optimisation weights (normalised)
  std::vector<double> true_probs_;   // Ψ from the OMSM
  std::uint64_t options_fingerprint_ = 0;
};

}  // namespace mmsyn
