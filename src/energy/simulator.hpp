// Monte-Carlo usage simulation over the OMSM.
//
// Eq. (1) abstracts a device's life as "fraction Ψ_O of the time in mode
// O". This module validates that abstraction for a concrete
// implementation candidate: it random-walks the OMSM's transition graph
// (uniform choice among outgoing transitions), samples exponential dwell
// times calibrated so the long-run time fractions converge to Ψ, and
// integrates the per-mode powers of an Evaluation — plus, optionally, the
// FPGA reconfiguration overheads the static analysis only bounds. The
// simulated average power must converge to Eq. (1)'s value, which the
// test suite asserts and the sim_validation bench demonstrates.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "energy/evaluator.hpp"
#include "model/system.hpp"

namespace mmsyn {

/// Invalid simulation input (e.g. a non-positive time horizon, which
/// would otherwise divide by a zero elapsed time when normalising the
/// average power). Typed so callers can distinguish a bad request from
/// an internal failure.
class SimulationError : public std::runtime_error {
public:
  explicit SimulationError(const std::string& what)
      : std::runtime_error(what) {}
};

struct SimulationOptions {
  /// Simulated operational time [s].
  double total_time = 3600.0;
  /// Mean mode dwell [s] before the next transition event fires.
  double mean_dwell = 2.0;
  /// Charge mode-change reconfiguration time (at the target mode's static
  /// power) to the energy account.
  bool include_transition_overheads = true;
  std::uint64_t seed = 1;
};

struct SimulationResult {
  /// Wall time spent per mode [s] (index == mode id).
  std::vector<double> time_in_mode;
  /// time_in_mode normalised — converges to Ψ.
  std::vector<double> empirical_probability;
  /// Visits per mode.
  std::vector<long> visits;
  long transition_count = 0;
  /// Total time spent reconfiguring on mode changes [s].
  double transition_time_total = 0.0;
  /// Integrated energy [J] and the resulting average power [W].
  double total_energy = 0.0;
  double average_power = 0.0;
};

/// Simulates `system` running the implementation candidate priced by
/// `evaluation` (typically SynthesisResult::evaluation).
/// Requires at least one outgoing transition per reachable mode; modes
/// without outgoing transitions absorb the walk (the remaining time is
/// spent there).
[[nodiscard]] SimulationResult simulate_usage(
    const System& system, const Evaluation& evaluation,
    const SimulationOptions& options = {});

/// Stationary distribution of the OMSM's jump chain (uniform choice among
/// outgoing transitions), via power iteration; used to calibrate dwell
/// times so the walk's time fractions converge to Ψ. Exposed for tests.
[[nodiscard]] std::vector<double> jump_chain_stationary_distribution(
    const Omsm& omsm, int iterations = 1000);

}  // namespace mmsyn
