// Reusable worker pool for deterministic fork-join parallelism.
//
// The pool owns `threads - 1` persistent workers; `parallel_for` fans a
// half-open index range out over the workers plus the calling thread and
// blocks until every index has run. Work items must not touch shared
// mutable state (the GA batches pure fitness evaluations) — the pool
// itself adds no ordering guarantees beyond "all items complete before
// parallel_for returns". A throwing item never terminates the process
// and never skips the remaining items: the first exception is captured,
// every other item still runs, and the captured exception is rethrown on
// the calling thread at the batch barrier — identically on the pooled
// and the inline (threads <= 1, or n == 1) execution paths, so service
// layers that fan jobs out over a pool see one failed batch, not a dead
// server.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mmsyn {

class ThreadPool {
public:
  /// `threads` is the total concurrency including the calling thread;
  /// values <= 1 create no workers (parallel_for then runs inline).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the calling thread).
  [[nodiscard]] int thread_count() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Runs fn(0) .. fn(n-1), each exactly once, and returns when all are
  /// done. Items are claimed dynamically; do not rely on execution order.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Maps a requested thread count onto an effective one: 0 means "all
  /// hardware threads", anything else is returned clamped to >= 1.
  [[nodiscard]] static int resolve_thread_count(int requested);

private:
  void worker_loop();
  void run_items(const std::function<void(std::size_t)>& fn, std::size_t n);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;   // new job published / shutdown
  std::condition_variable done_cv_;   // all workers finished the job
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_size_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t active_workers_ = 0;
  std::uint64_t epoch_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace mmsyn
