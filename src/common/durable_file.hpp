// Durable small-file I/O.
//
// The atomic-save recipe shared by the checkpoint writer
// (core/run_control) and the job server's write-ahead journal
// (server/journal): write-through to a temp name (POSIX write + fsync +
// close), rename over the target, then fsync the parent directory so the
// directory-entry update survives power loss too. Callers own the
// temp/rename choreography (checkpoints rotate generations between the
// two steps); these helpers own the durability.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace mmsyn {

/// Raised when a durable write cannot be completed. Callers translate it
/// into their own error domain (CheckpointError, JournalError, ...).
class DurableIoError : public std::runtime_error {
public:
  explicit DurableIoError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Writes `data` to `path` with write-through durability: POSIX write +
/// fsync + close. flush() reaches the kernel, not the platter — only
/// fsync makes the atomic-rename recipe durable across power loss. A
/// failure removes the partially written file before throwing
/// DurableIoError, so aborted saves never litter (or get renamed later
/// by accident).
void write_file_durable(const std::string& path, std::string_view data);

/// Best-effort fsync of `path`'s parent directory so a rename targeting
/// `path` (the directory-entry update) is durable too.
void fsync_parent_dir(const std::string& path);

}  // namespace mmsyn
