#include "common/rng.hpp"

#include <bit>
#include <cassert>
#include <cmath>

namespace mmsyn {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  // Expand the seed so that low-entropy seeds (0, 1, 2, ...) still yield
  // well-mixed initial state.
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result =
      std::rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Debiased modulo (rejection sampling on the top of the range).
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::canonical() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * canonical();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return canonical() < p;
}

std::size_t Rng::pick_index(std::size_t size) {
  assert(size > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

std::size_t Rng::pick_weighted(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double r = uniform_real(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numeric tail: return last positive entry
}

Rng Rng::fork() {
  std::uint64_t s = (*this)();
  return Rng{splitmix64(s)};
}

}  // namespace mmsyn
