#include "common/rng.hpp"

#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace mmsyn {

namespace rng_streams {

std::uint64_t stream_id(Domain domain, std::uint32_t index) {
  // Reservation audit: the base domain owns exactly one id (0); only the
  // domains declared in the header exist. A new subsystem that needs
  // streams must claim a fresh domain value there — reusing an existing
  // one would overlap another subsystem's reservation.
  assert(domain == Domain::kBase || domain == Domain::kIsland ||
         domain == Domain::kLeapfrog);
  assert(domain != Domain::kBase || index == 0);
  return (std::uint64_t{static_cast<std::uint32_t>(domain)} << 32) | index;
}

std::uint64_t island_stream(std::uint32_t island) {
  return stream_id(Domain::kIsland, island);
}

}  // namespace rng_streams

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  // Expand the seed so that low-entropy seeds (0, 1, 2, ...) still yield
  // well-mixed initial state.
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng::Rng(RngKind kind, std::uint64_t seed) : kind_(kind) {
  if (kind_ == RngKind::kXoshiro) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    return;
  }
  // Counter engine: state = {key0, key1, block counter, phase}. The key
  // is seed-expanded the same way as the xoshiro state so low-entropy
  // seeds still key well-separated streams.
  std::uint64_t sm = seed;
  state_[0] = splitmix64(sm);
  state_[1] = splitmix64(sm);
  state_[2] = 0;  // block counter
  state_[3] = 0;  // (stream id << 1) | phase within the 2-word block
}

Rng::Rng(RngKind kind, std::uint64_t seed, std::uint64_t stream)
    : Rng(kind, seed) {
  if (stream == 0) return;
  if (kind != RngKind::kThreefry)
    throw std::invalid_argument(
        "rng: nonzero stream ids require the counter-based Threefry engine "
        "(the stateful xoshiro engine has no counter to partition)");
  // The id shares state_[3] with the 1-bit block phase; ids this large
  // cannot come from the (domain << 32 | index) layout anyway.
  assert(stream < (std::uint64_t{1} << 63));
  state_[3] = stream << 1;
}

std::array<std::uint64_t, 2> Rng::threefry2x64(
    std::array<std::uint64_t, 2> counter, std::array<std::uint64_t, 2> key) {
  // Threefry2x64, 20 rounds (the Random123 default). The key schedule
  // parity constant is from Skein/Threefish.
  constexpr std::uint64_t kParity = 0x1BD11BDAA9FC1A22ull;
  constexpr int kRot[8] = {16, 42, 12, 31, 16, 32, 24, 21};
  const std::uint64_t ks[3] = {key[0], key[1], kParity ^ key[0] ^ key[1]};
  std::uint64_t x0 = counter[0] + ks[0];
  std::uint64_t x1 = counter[1] + ks[1];
  for (int r = 0; r < 20; ++r) {
    x0 += x1;
    x1 = std::rotl(x1, kRot[r % 8]);
    x1 ^= x0;
    if ((r + 1) % 4 == 0) {
      const std::uint64_t s = static_cast<std::uint64_t>((r + 1) / 4);
      x0 += ks[s % 3];
      x1 += ks[(s + 1) % 3] + s;
    }
  }
  return {x0, x1};
}

std::uint64_t Rng::next_xoshiro() {
  const std::uint64_t result =
      std::rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_threefry() {
  // state_[3] packs (stream id << 1) | phase. The stream id fills the
  // second counter word, so distinct streams of the same key can never
  // collide on a (key, counter) input; stream 0 reproduces the historic
  // {counter, 0} blocks bit-for-bit.
  if (!block_valid_) {
    block_ = threefry2x64({state_[2], state_[3] >> 1}, {state_[0], state_[1]});
    block_valid_ = true;
  }
  const std::uint64_t out = block_[state_[3] & 1];
  if ((state_[3] & 1) == 0) {
    state_[3] |= 1;
  } else {
    state_[3] &= ~std::uint64_t{1};
    ++state_[2];
    block_valid_ = false;
  }
  return out;
}

Rng::result_type Rng::operator()() {
  if (kind_ == RngKind::kXoshiro) return next_xoshiro();
  return next_threefry();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Debiased modulo (rejection sampling on the top of the range).
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::canonical() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * canonical();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return canonical() < p;
}

std::size_t Rng::pick_index(std::size_t size) {
  assert(size > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

std::size_t Rng::pick_weighted(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double r = uniform_real(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numeric tail: return last positive entry
}

Rng Rng::fork() {
  std::uint64_t s = (*this)();
  return Rng{kind_, splitmix64(s)};
}

}  // namespace mmsyn
