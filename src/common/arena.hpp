// Bump (arena) allocator for per-candidate scratch memory.
//
// The synthesis inner loop (list scheduling, DVS-graph construction,
// PV-DVS) runs once per candidate per mode — millions of times per GA
// run — and every run needs the same family of scratch arrays. Heap
// round trips for those arrays dominate allocator time, so each worker
// thread keeps one Arena in its kernel workspace: `reset()` at the start
// of a pipeline run, bump-allocate scratch during it, and after the
// first few candidates no call path touches malloc at all (the arena
// retains its high-water capacity).
//
// Lifetime contract (see DESIGN.md §12): an allocation is valid until
// the next reset(); nothing outliving a pipeline stage may live in the
// arena — stage artifacts (ModeSchedule, DvsGraph, PvDvsResult) are
// ordinary heap values.
//
// Under AddressSanitizer the arena poisons its blocks on reset() and
// unpoisons bytes as they are handed out, so stale-scratch reads across
// candidate boundaries fault exactly like heap use-after-free would
// (tools/ci.sh runs the test suite over this path in its ASan stage).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace mmsyn {

class Arena {
 public:
  /// `initial_capacity` is the byte size of the first block, allocated
  /// lazily on first use.
  explicit Arena(std::size_t initial_capacity = 1 << 16)
      : initial_capacity_(initial_capacity < kMinBlock ? kMinBlock
                                                       : initial_capacity) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialised storage for `count` objects of trivially destructible
  /// type T (the arena never runs destructors). Alignment follows T.
  template <typename T>
  [[nodiscard]] T* alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return static_cast<T*>(alloc_raw(count * sizeof(T), alignof(T)));
  }

  /// Storage for `count` objects, value-filled with `fill`.
  template <typename T>
  [[nodiscard]] T* alloc_filled(std::size_t count, T fill) {
    T* p = alloc<T>(count);
    for (std::size_t i = 0; i < count; ++i) p[i] = fill;
    return p;
  }

  /// Reclaims every allocation at once. Memory is retained (the arena
  /// keeps one block sized at the high-water mark) and, under ASan,
  /// poisoned until re-allocated.
  void reset();

  /// Bytes handed out since the last reset().
  [[nodiscard]] std::size_t bytes_used() const { return used_; }
  /// Total block capacity currently held.
  [[nodiscard]] std::size_t capacity() const;
  /// Number of backing blocks (collapses to 1 after a reset() following
  /// growth).
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }

 private:
  static constexpr std::size_t kMinBlock = 256;

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  [[nodiscard]] void* alloc_raw(std::size_t bytes, std::size_t align);
  void add_block(std::size_t at_least);

  std::size_t initial_capacity_;
  std::vector<Block> blocks_;
  std::size_t block_index_ = 0;  // block currently bumped
  std::size_t offset_ = 0;       // bump cursor within that block
  std::size_t used_ = 0;         // bytes handed out since reset
};

}  // namespace mmsyn
