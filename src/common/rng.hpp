// Deterministic pseudo-random number generation.
//
// All stochastic components of mmsyn (benchmark generator, GA, improvement
// operators) draw from this generator so that a 64-bit seed fully determines
// every experiment. We implement xoshiro256++ (public-domain algorithm by
// Blackman & Vigna) rather than rely on std::mt19937 so the stream is
// bit-identical across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace mmsyn {

/// SplitMix64 — used to expand a single seed into xoshiro state and to
/// derive independent child seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256++ engine with convenience sampling helpers.
///
/// Satisfies UniformRandomBitGenerator so it can feed <random>
/// distributions, but the helpers below are preferred: they are portable
/// (no libstdc++/libc++ distribution divergence).
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi);

  /// Uniform real in [0, 1).
  [[nodiscard]] double canonical();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p);

  /// Uniformly chosen index into a container of `size` elements. Requires
  /// size > 0.
  [[nodiscard]] std::size_t pick_index(std::size_t size);

  /// Uniformly chosen element reference.
  template <typename Container>
  [[nodiscard]] auto& pick(Container& c) {
    return c[pick_index(c.size())];
  }

  /// Index sampled proportionally to non-negative weights; at least one
  /// weight must be positive.
  [[nodiscard]] std::size_t pick_weighted(std::span<const double> weights);

  /// Fisher–Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      using std::swap;
      swap(c[i - 1], c[pick_index(i)]);
    }
  }

  /// Derives a child generator whose stream is independent of subsequent
  /// draws from this one (seeded via splitmix of a fresh draw).
  [[nodiscard]] Rng fork();

  /// Raw engine state, for checkpointing. Restoring a saved state resumes
  /// the stream exactly where it left off.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const {
    return state_;
  }
  void set_state(const std::array<std::uint64_t, 4>& state) { state_ = state; }

private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mmsyn
