// Deterministic pseudo-random number generation.
//
// All stochastic components of mmsyn (benchmark generator, GA, improvement
// operators) draw from this generator so that a 64-bit seed fully determines
// every experiment. Two bit-portable engines are provided (see DESIGN.md
// §12):
//
//  - kXoshiro: xoshiro256++ (public-domain algorithm by Blackman & Vigna),
//    the original *stateful* engine. Still the default constructor so the
//    benchmark generator and every historic stream stay byte-identical,
//    and selectable in the GA via the `--rng=legacy` compatibility flag.
//  - kThreefry: a Threefry2x64-style *counter-based* engine (Salmon et
//    al., "Parallel random numbers: as easy as 1, 2, 3"). The n-th draw
//    is a pure function of (seed, n), so streams can be split, replayed
//    or leapfrogged across any thread count or future island
//    decomposition without serialising a hidden state evolution. The GA
//    defaults to this engine.
//
// Both engines expose their state as the same 4-word array, so the GA
// checkpoint format (run_control.hpp, `rng_state`) carries either
// without a version bump; the engine choice itself is part of the GA's
// state fingerprint.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace mmsyn {

/// SplitMix64 — used to expand a single seed into engine keys/state and
/// to derive independent child seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

namespace rng_streams {

/// Stream-id layout for the counter-based engine (DESIGN.md §14).
///
/// A stream id occupies the second word of the Threefry counter, so two
/// Rng instances with the same seed but different stream ids can never
/// feed the same (key, counter) block into the cipher: the streams are
/// disjoint by construction, not by statistical luck. Ids are partitioned
/// into domains (high 32 bits) with a per-domain index (low 32 bits) so
/// independent subsystems can reserve streams without coordinating:
///
///   domain 0 (kBase)     — exactly id 0, the legacy single-population
///                          stream; bit-identical to pre-island runs.
///   domain 1 (kIsland)   — one stream per GA island, index = island.
///   domain 2 (kLeapfrog) — reserved for per-thread leapfrog splits.
enum class Domain : std::uint32_t {
  kBase = 0,
  kIsland = 1,
  kLeapfrog = 2,
};

/// Packs (domain, index) into a stream id. Debug-asserts the reservation
/// rules: the base domain owns only index 0 (anything else would alias a
/// future sub-partition of the legacy stream), and the domain must be one
/// of the reserved values above.
[[nodiscard]] std::uint64_t stream_id(Domain domain, std::uint32_t index);

/// The stream of GA island `island` (domain kIsland).
[[nodiscard]] std::uint64_t island_stream(std::uint32_t island);

}  // namespace rng_streams

/// Random-engine selector (see file comment).
enum class RngKind : std::uint8_t {
  kXoshiro = 0,   ///< stateful xoshiro256++ (the legacy streams)
  kThreefry = 1,  ///< counter-based Threefry2x64 (depends only on seed+counter)
};

/// Pseudo-random engine with convenience sampling helpers.
///
/// Satisfies UniformRandomBitGenerator so it can feed <random>
/// distributions, but the helpers below are preferred: they are portable
/// (no libstdc++/libc++ distribution divergence).
class Rng {
public:
  using result_type = std::uint64_t;

  /// Legacy xoshiro256++ engine — the historic default, kept so existing
  /// call sites (the tgff generator in particular) produce unchanged
  /// streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Engine-selecting constructor. `Rng(RngKind::kXoshiro, s)` is exactly
  /// `Rng(s)`.
  Rng(RngKind kind, std::uint64_t seed);

  /// Stream-selecting constructor (kThreefry only; xoshiro has no counter
  /// to partition and rejects a nonzero stream). Streams with the same
  /// seed but different ids are disjoint by construction — the id becomes
  /// the second Threefry counter word, so no (key, counter) input can
  /// collide. Stream 0 is bit-identical to `Rng(kind, seed)`. Use the
  /// rng_streams:: helpers to pick ids.
  Rng(RngKind kind, std::uint64_t seed, std::uint64_t stream);

  [[nodiscard]] RngKind kind() const { return kind_; }

  /// The stream id this engine draws from (always 0 for kXoshiro).
  [[nodiscard]] std::uint64_t stream() const {
    return kind_ == RngKind::kThreefry ? state_[3] >> 1 : 0;
  }

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi);

  /// Uniform real in [0, 1).
  [[nodiscard]] double canonical();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p);

  /// Uniformly chosen index into a container of `size` elements. Requires
  /// size > 0.
  [[nodiscard]] std::size_t pick_index(std::size_t size);

  /// Uniformly chosen element reference.
  template <typename Container>
  [[nodiscard]] auto& pick(Container& c) {
    return c[pick_index(c.size())];
  }

  /// Index sampled proportionally to non-negative weights; at least one
  /// weight must be positive.
  [[nodiscard]] std::size_t pick_weighted(std::span<const double> weights);

  /// Fisher–Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      using std::swap;
      swap(c[i - 1], c[pick_index(i)]);
    }
  }

  /// Derives a child generator (same engine kind) whose stream is
  /// independent of subsequent draws from this one (seeded via splitmix
  /// of a fresh draw).
  [[nodiscard]] Rng fork();

  /// Raw engine state, for checkpointing. Restoring a saved state resumes
  /// the stream exactly where it left off. Layout: the xoshiro words for
  /// kXoshiro; {key0, key1, block counter, (stream id << 1) | phase} for
  /// kThreefry — the stream id travels inside the state words, so island
  /// checkpoints need no extra field and stream 0 keeps the historic
  /// {.., counter, phase} layout bit-for-bit. The engine kind is *not*
  /// part of the words — callers restore into an Rng of the matching kind
  /// (the GA guards this via its fingerprint).
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const {
    return state_;
  }
  void set_state(const std::array<std::uint64_t, 4>& state) {
    state_ = state;
    block_valid_ = false;
  }

  /// One Threefry2x64 block: the pure function behind kThreefry, exposed
  /// for stream-stability tests and future leapfrog decompositions.
  [[nodiscard]] static std::array<std::uint64_t, 2> threefry2x64(
      std::array<std::uint64_t, 2> counter, std::array<std::uint64_t, 2> key);

private:
  [[nodiscard]] std::uint64_t next_xoshiro();
  [[nodiscard]] std::uint64_t next_threefry();

  RngKind kind_ = RngKind::kXoshiro;
  std::array<std::uint64_t, 4> state_{};
  // kThreefry block cache (derived from state_, never checkpointed).
  std::array<std::uint64_t, 2> block_{};
  bool block_valid_ = false;
};

}  // namespace mmsyn
