#include "common/interrupt.hpp"

#include <atomic>
#include <csignal>

namespace mmsyn {
namespace {

// std::atomic<bool> with lock-free guarantee is async-signal-safe to
// store into; sig_atomic_t would do but loses the explicit memory order.
std::atomic<bool> g_interrupted{false};

extern "C" void interrupt_handler(int signum) {
  g_interrupted.store(true, std::memory_order_relaxed);
  // One graceful chance: a second delivery kills the process normally.
  std::signal(signum, SIG_DFL);
}

}  // namespace

void install_interrupt_flag() {
  std::signal(SIGINT, interrupt_handler);
  // Service supervisors stop with SIGTERM; give it the same cooperative
  // cancel + checkpoint + partial-result drain as Ctrl-C.
#ifdef SIGTERM
  std::signal(SIGTERM, interrupt_handler);
#endif
}

bool interrupt_requested() {
  return g_interrupted.load(std::memory_order_relaxed);
}

void raise_interrupt_flag() {
  g_interrupted.store(true, std::memory_order_relaxed);
}

void clear_interrupt_flag() {
  g_interrupted.store(false, std::memory_order_relaxed);
}

}  // namespace mmsyn
