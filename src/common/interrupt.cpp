#include "common/interrupt.hpp"

#include <atomic>
#include <csignal>

namespace mmsyn {
namespace {

// std::atomic<bool> with lock-free guarantee is async-signal-safe to
// store into; sig_atomic_t would do but loses the explicit memory order.
std::atomic<bool> g_interrupted{false};

extern "C" void sigint_handler(int signum) {
  g_interrupted.store(true, std::memory_order_relaxed);
  // One graceful chance: a second Ctrl-C kills the process normally.
  std::signal(signum, SIG_DFL);
}

}  // namespace

void install_interrupt_flag() { std::signal(SIGINT, sigint_handler); }

bool interrupt_requested() {
  return g_interrupted.load(std::memory_order_relaxed);
}

void raise_interrupt_flag() {
  g_interrupted.store(true, std::memory_order_relaxed);
}

void clear_interrupt_flag() {
  g_interrupted.store(false, std::memory_order_relaxed);
}

}  // namespace mmsyn
