// Streaming summary statistics (Welford's online algorithm).
//
// Used by the benchmark harnesses to average repeated GA runs, mirroring the
// paper's "run 40 times and average" protocol.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

namespace mmsyn {

/// Accumulates count / mean / variance / min / max of a stream of doubles.
class RunningStats {
public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace mmsyn
