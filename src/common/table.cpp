#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>

namespace mmsyn {
namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  std::size_t digits = 0;
  for (char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
    else if (c != '.' && c != '-' && c != '+' && c != '%' && c != 'e') return false;
  }
  return digits > 0;
}

}  // namespace

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os, const std::string& title) const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& row, bool force_left) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < row.size() ? row[c] : std::string{};
      const bool right = !force_left && looks_numeric(cell);
      const std::size_t pad = width[c] - cell.size();
      if (right) os << std::string(pad, ' ') << cell;
      else os << cell << std::string(pad, ' ');
      os << (c + 1 < cols ? "  " : "");
    }
    os << '\n';
  };

  if (!title.empty()) os << title << '\n';
  if (!header_.empty()) {
    emit(header_, /*force_left=*/true);
    std::size_t total = cols >= 1 ? 2 * (cols - 1) : 0;
    for (auto w : width) total += w;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r, /*force_left=*/false);
}

std::string TextTable::num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string TextTable::pct(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", fraction * 100.0);
  return buf;
}

}  // namespace mmsyn
