// Plain-text table rendering for the experiment harnesses.
//
// Every bench binary prints rows in the shape of the paper's tables; this
// helper keeps the column alignment logic in one place.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace mmsyn {

/// Column-aligned ASCII table with an optional title and header rule.
class TextTable {
public:
  /// Sets the column headers; must be called before add_row.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with 2-space column gaps; numeric-looking cells are
  /// right-aligned, text cells left-aligned.
  void print(std::ostream& os, const std::string& title = {}) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Formats a double with `digits` decimal places.
  static std::string num(double value, int digits = 3);
  /// Formats a percentage with two decimals (e.g. "22.46").
  static std::string pct(double fraction);

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mmsyn
