#include "common/arena.hpp"

#include <algorithm>
#include <cassert>

#include "common/failpoint.hpp"

// ASan interface: poison arena memory between reset() and re-allocation
// so stale-scratch reads across candidate boundaries fault under the
// sanitizer builds (tools/ci.sh).
#if defined(__SANITIZE_ADDRESS__)
#define MMSYN_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MMSYN_ARENA_ASAN 1
#endif
#endif

#ifdef MMSYN_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#define MMSYN_ARENA_POISON(addr, size) __asan_poison_memory_region(addr, size)
#define MMSYN_ARENA_UNPOISON(addr, size) \
  __asan_unpoison_memory_region(addr, size)
#else
#define MMSYN_ARENA_POISON(addr, size) ((void)0)
#define MMSYN_ARENA_UNPOISON(addr, size) ((void)0)
#endif

namespace mmsyn {
namespace {

// Failpoint on arena block growth. `fail` simulates a transient
// allocation failure (e.g. momentary memory pressure); the retry lives
// right here so every caller — serial scheduler paths included, not just
// pooled work — self-heals the same way.
failpoint::Site fp_alloc_arena{"alloc.arena"};

}  // namespace

void Arena::add_block(std::size_t at_least) {
  // Geometric growth from the largest existing block keeps the number
  // of blocks O(log total); reset() collapses back to one block.
  std::size_t size = blocks_.empty() ? initial_capacity_
                                     : 2 * blocks_.back().size;
  size = std::max(size, at_least);
  Block block;
  failpoint::retry_transient("alloc.arena", [&] {
    (void)failpoint::inject(fp_alloc_arena);
    block.data = std::make_unique<std::byte[]>(size);
  });
  block.size = size;
  MMSYN_ARENA_POISON(block.data.get(), block.size);
  blocks_.push_back(std::move(block));
  block_index_ = blocks_.size() - 1;
  offset_ = 0;
}

void* Arena::alloc_raw(std::size_t bytes, std::size_t align) {
  assert(align > 0 && (align & (align - 1)) == 0);
  if (blocks_.empty()) add_block(bytes + align);
  std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
  if (aligned + bytes > blocks_[block_index_].size) {
    if (block_index_ + 1 < blocks_.size()) {
      // A later (larger) block survived an earlier growth; bump into it.
      ++block_index_;
      offset_ = 0;
      aligned = 0;
      if (bytes > blocks_[block_index_].size) add_block(bytes + align);
    } else {
      add_block(bytes + align);
    }
    aligned = (offset_ + align - 1) & ~(align - 1);
  }
  std::byte* p = blocks_[block_index_].data.get() + aligned;
  offset_ = aligned + bytes;
  used_ += bytes;
  MMSYN_ARENA_UNPOISON(p, bytes);
  return p;
}

void Arena::reset() {
  if (blocks_.size() > 1) {
    // Consolidate: one block at the high-water total, so the next run
    // bump-allocates without ever chaining blocks again.
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    blocks_.clear();
    add_block(total);
  }
  for (Block& b : blocks_) MMSYN_ARENA_POISON(b.data.get(), b.size);
  block_index_ = 0;
  offset_ = 0;
  used_ = 0;
}

std::size_t Arena::capacity() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

}  // namespace mmsyn
