// Strongly-typed integer identifiers for model entities.
//
// Raw `int` handles for tasks, PEs, modes, etc. are a classic source of
// silent index-mixup bugs in co-synthesis code (a task index used as a PE
// index compiles fine and corrupts a mapping). Every entity in mmsyn is
// therefore addressed by a distinct strong ID type; conversion to the raw
// index is explicit via `value()`.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace mmsyn {

/// CRTP-free strong identifier. `Tag` makes instantiations distinct types.
template <typename Tag>
class StrongId {
public:
  using value_type = std::int32_t;

  /// Constructs an invalid id (`valid() == false`).
  constexpr StrongId() = default;
  constexpr explicit StrongId(value_type v) : value_(v) {}

  /// Raw index; only meaningful when `valid()`.
  [[nodiscard]] constexpr value_type value() const { return value_; }
  /// Raw index as size_t for container subscripting.
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(value_);
  }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }

  [[nodiscard]] static constexpr StrongId invalid() { return StrongId{}; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

private:
  value_type value_ = -1;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, StrongId<Tag> id) {
  if (!id.valid()) return os << "<invalid>";
  return os << id.value();
}

struct TaskTag {};
struct TaskTypeTag {};
struct EdgeTag {};
struct ModeTag {};
struct TransitionTag {};
struct PeTag {};
struct ClTag {};
struct CoreTag {};

/// A task node inside one mode's task graph (mode-local numbering).
using TaskId = StrongId<TaskTag>;
/// A function kind (FFT, IDCT, ...) shared across modes.
using TaskTypeId = StrongId<TaskTypeTag>;
/// A data-dependency edge inside one mode's task graph.
using EdgeId = StrongId<EdgeTag>;
/// An operational mode (node of the OMSM).
using ModeId = StrongId<ModeTag>;
/// A transition edge of the OMSM.
using TransitionId = StrongId<TransitionTag>;
/// A processing element of the target architecture.
using PeId = StrongId<PeTag>;
/// A communication link of the target architecture.
using ClId = StrongId<ClTag>;
/// An allocated hardware core instance on one PE.
using CoreId = StrongId<CoreTag>;

}  // namespace mmsyn

namespace std {
template <typename Tag>
struct hash<mmsyn::StrongId<Tag>> {
  size_t operator()(mmsyn::StrongId<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value());
  }
};
}  // namespace std
