#include "common/checksum.hpp"

#include <array>

namespace mmsyn {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i)
    crc = table[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

Fnv1a64& Fnv1a64::add_bytes(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash_ ^= bytes[i];
    hash_ *= 0x100000001b3ull;
  }
  return *this;
}

Fnv1a64& Fnv1a64::add(std::uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  return add_bytes(bytes, sizeof bytes);
}

}  // namespace mmsyn
