// Deterministic fault injection for robustness testing.
//
// A *failpoint* is a named site compiled into a failure-prone path —
// checkpoint I/O, the thread pool, the arena allocator, the mode cache —
// that normally does nothing, but can be *armed* with a spec so that
// specific hits inject a fault: a transient error, a process kill, or a
// site-specific corruption. The crash-torture harness
// (bench/crash_torture.sh) drives synthesis runs through these sites and
// asserts that the recovery machinery (checkpoint generation rotation,
// bounded retries, cache quarantine) heals every injected fault with a
// byte-identical final report.
//
// Determinism contract (see DESIGN.md §13): the failure plan is a pure
// function of (seed, spec). Counting triggers (`@N`, `@N+`, `@N/M`) fire
// on fixed 1-based hit indices of the site's process-wide hit counter;
// probabilistic triggers (`@pF`) decide each hit through one Threefry2x64
// block keyed on (seed, site name) with the hit index as the counter —
// no hidden RNG state, so the same spec injects the same faults under
// any thread count and across reruns.
//
// Spec grammar:
//
//   spec    := entry ((';' | ',') entry)*
//   entry   := name '=' action ['@' trigger]   |   'seed' '=' uint
//   action  := 'fail' | 'kill' | 'corrupt' | 'off'
//   trigger := N        fire on the Nth hit only (1-based)
//            | N '+'    fire on every hit >= N
//            | N '/' M  fire on hits N, N+M, N+2M, ...
//            | 'p' F    fire each hit with probability F (Threefry-derived)
//   (no trigger = every hit; repeating a name adds rules to that site —
//    on each hit the first firing rule in spec order decides the action)
//
// Actions: `fail` throws TransientFault (recovered by bounded
// deterministic-backoff retries at the call sites), `kill` terminates the
// process immediately via _Exit(kKillExitCode) — a crash simulation, no
// destructors or flushes — `corrupt` asks the site to deterministically
// corrupt its data (sites that cannot corrupt treat it as a no-op), and
// `off` disables the entry without removing it from the spec.
//
// Overhead when disarmed: one relaxed atomic load and a branch per site
// hit — nothing is counted, parsed or locked (the micro_kernels perf gate
// in tools/ci.sh runs with failpoints disarmed and must stay green).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace mmsyn {

/// An injected (or simulated-environmental) fault that is expected to go
/// away on retry: the transient-I/O / task-failure flavour of failpoint
/// action. Recovery paths catch exactly this type; real logic errors use
/// their ordinary exception types and are never retried.
class TransientFault : public std::runtime_error {
public:
  explicit TransientFault(const std::string& site)
      : std::runtime_error("transient fault injected at " + site) {}
};

namespace failpoint {

/// What an armed site should do on a triggering hit.
enum class Action : std::uint8_t {
  kNone = 0,    ///< not armed / not triggered
  kFail,        ///< throw TransientFault
  kKill,        ///< _Exit(kKillExitCode) — simulated crash
  kCorrupt,     ///< site corrupts its own data deterministically
};

/// Exit code of the `kill` action (mirrors SIGKILL's 128+9 so crash
/// supervisors treat an injected kill like a real one).
inline constexpr int kKillExitCode = 137;

/// Bounded-retry policy for TransientFault recovery: attempts and the
/// deterministic exponential backoff between them. Small enough that an
/// exhausted site costs single-digit milliseconds in tests.
inline constexpr int kMaxRetryAttempts = 4;
[[nodiscard]] inline std::chrono::microseconds retry_backoff(int attempt) {
  return std::chrono::microseconds(250u << (attempt < 1 ? 0 : attempt - 1));
}

namespace detail {
struct SiteState;  // name + process-wide hit/fired counters, shared by name
[[nodiscard]] SiteState* acquire_site_state(const char* name);
extern std::atomic<bool> g_armed;
}  // namespace detail

/// One named failpoint. Define as a namespace-scope (or function-local
/// static) object in the module that owns the path:
///
///   namespace { failpoint::Site fp_write{"checkpoint.write"}; }
///   ...
///   if (failpoint::inject(fp_write)) { /* corrupt-action handling */ }
///
/// Sites register themselves by name at construction; two Site objects
/// with the same name (e.g. "io.read" in two modules) share one hit
/// counter, so trigger indices count process-wide hits of the *name*.
class Site {
public:
  explicit Site(const char* name) : state_(detail::acquire_site_state(name)) {}

  [[nodiscard]] const std::string& name() const;

  /// Counts one hit and returns the action the armed spec assigns to it.
  /// Disarmed: returns kNone without counting (the zero-overhead path).
  [[nodiscard]] Action hit() {
    if (!detail::g_armed.load(std::memory_order_relaxed)) return Action::kNone;
    return hit_armed();
  }

  /// Hits observed while armed / faults fired (diagnostics and tests).
  [[nodiscard]] std::uint64_t hit_count() const;
  [[nodiscard]] std::uint64_t fired_count() const;

private:
  [[nodiscard]] Action hit_armed();

  detail::SiteState* state_;
};

/// Standard action dispatch: kFail throws TransientFault(site name),
/// kKill terminates the process, kCorrupt returns true (the caller owns
/// the corruption), kNone returns false.
[[nodiscard]] bool inject(Site& site);

/// True while a spec is armed (the fast-path check `Site::hit` inlines).
[[nodiscard]] inline bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Parses and arms `spec` (see grammar above), resetting every site's
/// counters so the failure plan restarts from hit 1. Unknown site names,
/// actions or malformed triggers throw std::invalid_argument listing the
/// registered sites. An empty spec disarms.
void arm(const std::string& spec);

/// Disarms and resets all site counters.
void disarm();

/// Arms from $MMSYN_FAILPOINTS when set and non-empty; returns whether a
/// spec was armed.
bool arm_from_env();

/// The spec currently armed (empty when disarmed).
[[nodiscard]] std::string active_spec();

/// Names of every registered failpoint site, sorted — the output of
/// `--failpoints=list`, which the CI coverage check asserts against.
[[nodiscard]] std::vector<std::string> registered_sites();

/// The pure trigger decision for probabilistic entries: whether hit
/// number `hit` (1-based) of site `site_name` fires under probability `p`
/// and plan seed `seed`. One Threefry2x64 block; exposed for the
/// determinism tests.
[[nodiscard]] bool probability_trigger_fires(const std::string& site_name,
                                             std::uint64_t hit,
                                             std::uint64_t seed, double p);

/// Runs `fn`, retrying on TransientFault with deterministic exponential
/// backoff up to kMaxRetryAttempts total attempts; the last failure is
/// rethrown. `what` names the operation for diagnostics only — it does
/// not affect the plan. Non-transient exceptions propagate immediately.
template <typename Fn>
decltype(auto) retry_transient(const char* what, Fn&& fn) {
  (void)what;
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const TransientFault&) {
      if (attempt >= kMaxRetryAttempts) throw;
      std::this_thread::sleep_for(retry_backoff(attempt));
    }
  }
}

}  // namespace failpoint
}  // namespace mmsyn
