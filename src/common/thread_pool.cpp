#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/failpoint.hpp"

namespace mmsyn {
namespace {

// Failpoint on every pooled work item (inline single-thread execution
// included). `fail` simulates a transiently failing task — the pool
// retries that one item with deterministic backoff before letting the
// error surface through first_error_, so a flaky item self-heals without
// disturbing the other items' claim order.
failpoint::Site fp_pool_task{"pool.task"};

void run_one(const std::function<void(std::size_t)>& fn, std::size_t i) {
  failpoint::retry_transient("pool.task", [&] {
    (void)failpoint::inject(fp_pool_task);
    fn(i);
  });
}

}  // namespace

int ThreadPool::resolve_thread_count(int requested) {
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return std::max(1, requested);
}

ThreadPool::ThreadPool(int threads) {
  const int workers = std::max(0, threads - 1);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_items(const std::function<void(std::size_t)>& fn,
                           std::size_t n) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    try {
      run_one(fn, i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
    if (stop_) return;
    seen_epoch = epoch_;
    const std::function<void(std::size_t)>* job = job_;
    const std::size_t n = job_size_;
    lock.unlock();

    run_items(*job, n);

    lock.lock();
    if (--active_workers_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Same barrier semantics as the pooled path: a throwing item must
    // not skip the remaining items, and the first exception surfaces
    // only after every index has run.
    next_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    run_items(fn, n);
    if (first_error_) {
      std::exception_ptr error = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(error);
    }
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_size_ = n;
    next_.store(0, std::memory_order_relaxed);
    active_workers_ = workers_.size();
    first_error_ = nullptr;
    ++epoch_;
  }
  work_cv_.notify_all();

  run_items(fn, n);

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace mmsyn
