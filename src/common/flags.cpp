#include "common/flags.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace mmsyn {
namespace {

std::string kind_name(int kind) {
  switch (kind) {
    case 0: return "int";
    case 1: return "double";
    case 2: return "bool";
    case 3: return "string";
    default: return "choice";
  }
}

std::string join_choices(const std::vector<std::string>& choices) {
  std::string out;
  for (const auto& c : choices) {
    if (!out.empty()) out += ", ";
    out += c;
  }
  return out;
}

}  // namespace

void Flags::define_int(const std::string& name, std::int64_t default_value,
                       const std::string& help) {
  entries_[name] = Entry{Kind::kInt, std::to_string(default_value), help};
  order_.push_back(name);
}

void Flags::define_double(const std::string& name, double default_value,
                          const std::string& help) {
  entries_[name] = Entry{Kind::kDouble, std::to_string(default_value), help};
  order_.push_back(name);
}

void Flags::define_bool(const std::string& name, bool default_value,
                        const std::string& help) {
  entries_[name] = Entry{Kind::kBool, default_value ? "true" : "false", help};
  order_.push_back(name);
}

void Flags::define_string(const std::string& name,
                          const std::string& default_value,
                          const std::string& help) {
  entries_[name] = Entry{Kind::kString, default_value, help};
  order_.push_back(name);
}

void Flags::define_choice(const std::string& name,
                          const std::vector<std::string>& choices,
                          const std::string& default_value,
                          const std::string& implicit_value,
                          const std::string& help) {
  entries_[name] =
      Entry{Kind::kChoice, default_value, help, choices, implicit_value};
  order_.push_back(name);
}

bool Flags::set_value(const std::string& name, const std::string& text) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
    return false;
  }
  if (it->second.kind == Kind::kChoice) {
    const auto& choices = it->second.choices;
    if (std::find(choices.begin(), choices.end(), text) == choices.end()) {
      std::fprintf(stderr,
                   "unknown value '%s' for --%s: registered choices are %s\n",
                   text.c_str(), name.c_str(),
                   join_choices(choices).c_str());
      return false;
    }
  }
  it->second.value = text;
  return true;
}

bool Flags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument '%s'\n",
                   arg.c_str());
      return false;
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool have_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
      return false;
    }
    if (!have_value) {
      if (it->second.kind == Kind::kBool) {
        value = "true";
      } else if (it->second.kind == Kind::kChoice) {
        // Consume the next argument only when it names a registered
        // choice; otherwise the bare flag selects the implicit value
        // (so a script ending in `--dvs` keeps working).
        const auto& choices = it->second.choices;
        if (i + 1 < argc && std::find(choices.begin(), choices.end(),
                                      argv[i + 1]) != choices.end()) {
          value = argv[++i];
        } else {
          value = it->second.implicit;
        }
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s requires a value\n", name.c_str());
        return false;
      }
    }
    if (!set_value(name, value)) return false;
  }
  return true;
}

const Flags::Entry& Flags::entry(const std::string& name, Kind kind) const {
  auto it = entries_.find(name);
  if (it == entries_.end())
    throw std::out_of_range("flag not defined: " + name);
  // Choice flags read back as strings.
  const bool ok = it->second.kind == kind ||
                  (kind == Kind::kString && it->second.kind == Kind::kChoice);
  if (!ok)
    throw std::logic_error("flag " + name + " is not of type " +
                           kind_name(static_cast<int>(kind)));
  return it->second;
}

std::int64_t Flags::get_int(const std::string& name) const {
  return std::strtoll(entry(name, Kind::kInt).value.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name) const {
  return std::strtod(entry(name, Kind::kDouble).value.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name) const {
  const std::string& v = entry(name, Kind::kBool).value;
  return v == "true" || v == "1" || v == "yes";
}

const std::string& Flags::get_string(const std::string& name) const {
  return entry(name, Kind::kString).value;
}

void Flags::print_usage(const std::string& program) const {
  std::fprintf(stderr, "usage: %s [flags]\n", program.c_str());
  for (const auto& name : order_) {
    const Entry& e = entries_.at(name);
    if (e.kind == Kind::kChoice) {
      std::fprintf(stderr, "  --%-20s %s (one of: %s; default: %s)\n",
                   name.c_str(), e.help.c_str(),
                   join_choices(e.choices).c_str(), e.value.c_str());
    } else {
      std::fprintf(stderr, "  --%-20s %s (default: %s)\n", name.c_str(),
                   e.help.c_str(), e.value.c_str());
    }
  }
}

}  // namespace mmsyn
