// Cooperative SIGINT handling for long-running command-line tools.
//
// A process-wide, async-signal-safe interrupt flag: the tool installs the
// handler once, the synthesis loop polls `interrupt_requested()` at
// generation boundaries (via core/run_control) and winds down gracefully.
// A second Ctrl-C restores the default disposition, so an unresponsive
// run can still be killed the ordinary way.
#pragma once

namespace mmsyn {

/// Installs a SIGINT handler that records the interrupt in a process-wide
/// flag. The first SIGINT only sets the flag; the handler then restores
/// the default disposition so a second SIGINT terminates the process.
/// Idempotent; safe to call from tests.
void install_interrupt_flag();

/// True once SIGINT was received after install_interrupt_flag() (or after
/// raise_interrupt_flag()).
[[nodiscard]] bool interrupt_requested();

/// Sets / clears the flag directly — for tests and for components that
/// want the same cooperative-stop path without a real signal.
void raise_interrupt_flag();
void clear_interrupt_flag();

}  // namespace mmsyn
