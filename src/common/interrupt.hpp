// Cooperative SIGINT/SIGTERM handling for long-running command-line
// tools.
//
// A process-wide, async-signal-safe interrupt flag: the tool installs the
// handlers once, the synthesis loop polls `interrupt_requested()` at
// generation boundaries (via core/run_control) and winds down gracefully
// — checkpoint, partial report, exit 3. A second signal restores the
// default disposition, so an unresponsive run can still be killed the
// ordinary way. SIGTERM gets the same treatment as SIGINT so
// service-style supervisors (systemd, container runtimes) trigger the
// graceful drain too.
#pragma once

namespace mmsyn {

/// Installs SIGINT and SIGTERM handlers that record the interrupt in a
/// process-wide flag. The first delivery of either signal only sets the
/// flag; the handler then restores that signal's default disposition so a
/// second delivery terminates the process. Idempotent; safe to call from
/// tests.
void install_interrupt_flag();

/// True once SIGINT/SIGTERM was received after install_interrupt_flag()
/// (or after raise_interrupt_flag()).
[[nodiscard]] bool interrupt_requested();

/// Sets / clears the flag directly — for tests and for components that
/// want the same cooperative-stop path without a real signal.
void raise_interrupt_flag();
void clear_interrupt_flag();

}  // namespace mmsyn
