#include "common/durable_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

namespace mmsyn {

void write_file_durable(const std::string& path, std::string_view data) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw DurableIoError("cannot open for writing: " + path);
  const char* p = data.data();
  std::size_t left = data.size();
  bool ok = true;
  while (ok && left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (!ok) {
    std::remove(path.c_str());
    throw DurableIoError("write failed: " + path);
  }
}

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? "."
                              : (slash == 0 ? "/" : path.substr(0, slash));
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    (void)::fsync(fd);
    (void)::close(fd);
  }
}

}  // namespace mmsyn
