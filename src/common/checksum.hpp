// Checksums and incremental hashing for on-disk state files.
//
// The checkpoint writer (core/run_control) protects its payload with a
// CRC-32 so a truncated or bit-flipped file is rejected instead of
// silently resuming from garbage, and fingerprints the GA configuration
// with FNV-1a so a checkpoint can refuse to resume under different
// options. Both live here because they are generic byte-level utilities.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mmsyn {

/// CRC-32 (IEEE 802.3 polynomial, reflected) of a byte range.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size);

[[nodiscard]] inline std::uint32_t crc32(std::string_view bytes) {
  return crc32(bytes.data(), bytes.size());
}

/// Incremental FNV-1a (64-bit) hasher for mixed scalar fields. Feed the
/// same field sequence on both sides and compare the digests; doubles are
/// hashed by bit pattern so the comparison is exact.
class Fnv1a64 {
public:
  Fnv1a64& add_bytes(const void* data, std::size_t size);
  Fnv1a64& add(std::uint64_t v);
  Fnv1a64& add(int v) { return add(static_cast<std::uint64_t>(v)); }
  Fnv1a64& add(long v) { return add(static_cast<std::uint64_t>(v)); }
  Fnv1a64& add(bool v) { return add(static_cast<std::uint64_t>(v)); }
  Fnv1a64& add(double v) { return add(std::bit_cast<std::uint64_t>(v)); }

  [[nodiscard]] std::uint64_t digest() const { return hash_; }

private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

}  // namespace mmsyn
