// Minimal command-line flag parsing for the bench/example binaries.
//
// Supports `--name value`, `--name=value` and boolean `--name`. Unknown
// flags are an error so typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mmsyn {

/// Declarative flag set: register flags with defaults, then parse argv.
class Flags {
public:
  /// Registers an integer flag.
  void define_int(const std::string& name, std::int64_t default_value,
                  const std::string& help);
  /// Registers a floating-point flag.
  void define_double(const std::string& name, double default_value,
                     const std::string& help);
  /// Registers a boolean flag (presence, `=true/false`, or `=1/0`).
  void define_bool(const std::string& name, bool default_value,
                   const std::string& help);
  /// Registers a string flag.
  void define_string(const std::string& name, const std::string& default_value,
                     const std::string& help);
  /// Registers a choice flag: the value must be one of `choices` (an
  /// unknown value is an actionable error listing them). Bare `--name`
  /// selects `implicit_value` — so a flag that historically was boolean
  /// (e.g. `--dvs`) can grow named backends without breaking scripts;
  /// `--name value` consumes the next argument only when it is a
  /// registered choice. Read with get_string().
  void define_choice(const std::string& name,
                     const std::vector<std::string>& choices,
                     const std::string& default_value,
                     const std::string& implicit_value,
                     const std::string& help);

  /// Parses argv (excluding argv[0]); returns false and prints usage on
  /// error or when `--help` is present.
  bool parse(int argc, char** argv);

  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;

  /// Prints registered flags with defaults and help strings.
  void print_usage(const std::string& program) const;

private:
  enum class Kind { kInt, kDouble, kBool, kString, kChoice };
  struct Entry {
    Kind kind;
    std::string value;  // textual representation
    std::string help;
    std::vector<std::string> choices;  // kChoice: allowed values
    std::string implicit;              // kChoice: value for bare `--name`
  };
  bool set_value(const std::string& name, const std::string& text);
  const Entry& entry(const std::string& name, Kind kind) const;

  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
};

}  // namespace mmsyn
