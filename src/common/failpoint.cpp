#include "common/failpoint.hpp"

#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/checksum.hpp"
#include "common/rng.hpp"

namespace mmsyn {
namespace failpoint {
namespace detail {

std::atomic<bool> g_armed{false};

struct SiteState {
  std::string name;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fired{0};
};

namespace {

/// One armed spec entry.
struct Rule {
  Action action = Action::kNone;
  enum class Trigger : std::uint8_t {
    kOnce,      ///< hit == n
    kFrom,      ///< hit >= n
    kPeriodic,  ///< hit >= n && (hit - n) % m == 0
    kProb,      ///< Threefry decision with probability p
  };
  Trigger trigger = Trigger::kFrom;
  std::uint64_t n = 1;
  std::uint64_t m = 1;
  double p = 0.0;
};

/// A fully parsed, immutable failure plan. A site may carry several
/// rules (repeated spec entries); on each hit the first firing rule in
/// spec order decides the action.
struct Config {
  std::uint64_t seed = 0;
  std::unordered_map<std::string, std::vector<Rule>> rules;
  std::string spec;
};

/// Site registry plus the armed plan. Sites register at static-init;
/// the map is keyed by name so same-named sites in different modules
/// share one hit counter (trigger indices count process-wide hits).
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<SiteState>> sites;
  std::shared_ptr<const Config> config;
};

Registry& registry() {
  static Registry r;
  return r;
}

[[nodiscard]] std::shared_ptr<const Config> current_config() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.config;
}

void publish(std::shared_ptr<const Config> config) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& [name, state] : reg.sites) {
    state->hits.store(0, std::memory_order_relaxed);
    state->fired.store(0, std::memory_order_relaxed);
  }
  const bool armed = config != nullptr && !config->rules.empty();
  reg.config = armed ? std::move(config) : nullptr;
  g_armed.store(armed, std::memory_order_relaxed);
}

}  // namespace

SiteState* acquire_site_state(const char* name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  auto& slot = reg.sites[name];
  if (!slot) {
    slot = std::make_unique<SiteState>();
    slot->name = name;
  }
  return slot.get();
}

}  // namespace detail

const std::string& Site::name() const { return state_->name; }

std::uint64_t Site::hit_count() const {
  return state_->hits.load(std::memory_order_relaxed);
}

std::uint64_t Site::fired_count() const {
  return state_->fired.load(std::memory_order_relaxed);
}

Action Site::hit_armed() {
  using detail::Rule;
  const std::shared_ptr<const detail::Config> cfg = detail::current_config();
  if (!cfg) return Action::kNone;
  // Count every armed pass, ruled or not, so one entry's trigger indices
  // never shift when another entry is added to the spec.
  const std::uint64_t h =
      state_->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  const auto it = cfg->rules.find(state_->name);
  if (it == cfg->rules.end()) return Action::kNone;
  for (const Rule& rule : it->second) {
    bool fires = false;
    switch (rule.trigger) {
      case Rule::Trigger::kOnce:
        fires = h == rule.n;
        break;
      case Rule::Trigger::kFrom:
        fires = h >= rule.n;
        break;
      case Rule::Trigger::kPeriodic:
        fires = h >= rule.n && (h - rule.n) % rule.m == 0;
        break;
      case Rule::Trigger::kProb:
        fires = probability_trigger_fires(state_->name, h, cfg->seed, rule.p);
        break;
    }
    if (!fires) continue;
    state_->fired.fetch_add(1, std::memory_order_relaxed);
    return rule.action;
  }
  return Action::kNone;
}

bool inject(Site& site) {
  switch (site.hit()) {
    case Action::kNone:
      return false;
    case Action::kFail:
      throw TransientFault(site.name());
    case Action::kKill:
      // Simulated crash: no destructors, no stream flushes, no atexit.
      std::_Exit(kKillExitCode);
    case Action::kCorrupt:
      return true;
  }
  return false;
}

bool probability_trigger_fires(const std::string& site_name,
                               std::uint64_t hit, std::uint64_t seed,
                               double p) {
  // One counter-mode block per decision: counter = (hit, 0), key =
  // (seed, FNV-1a of the site name). Pure in (seed, name, hit).
  Fnv1a64 name_hash;
  name_hash.add_bytes(site_name.data(), site_name.size());
  const std::array<std::uint64_t, 2> block =
      Rng::threefry2x64({hit, 0}, {seed, name_hash.digest()});
  const double u =
      static_cast<double>(block[0] >> 11) * 0x1.0p-53;  // [0, 1)
  return u < p;
}

namespace {

[[nodiscard]] std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

[[nodiscard]] std::uint64_t parse_uint(const std::string& text,
                                       const std::string& context) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos)
    throw std::invalid_argument("failpoints: expected an unsigned integer in '" +
                                context + "'");
  return std::stoull(text);
}

[[nodiscard]] detail::Rule parse_rule(const std::string& entry,
                                      const std::string& action_text,
                                      const std::string& trigger_text) {
  detail::Rule rule;
  if (action_text == "fail") {
    rule.action = Action::kFail;
  } else if (action_text == "kill") {
    rule.action = Action::kKill;
  } else if (action_text == "corrupt") {
    rule.action = Action::kCorrupt;
  } else if (action_text == "off") {
    rule.action = Action::kNone;
  } else {
    throw std::invalid_argument(
        "failpoints: unknown action '" + action_text + "' in '" + entry +
        "' (expected fail, kill, corrupt, or off)");
  }
  if (trigger_text.empty()) return rule;  // every hit
  if (trigger_text.front() == 'p') {
    rule.trigger = detail::Rule::Trigger::kProb;
    try {
      std::size_t consumed = 0;
      rule.p = std::stod(trigger_text.substr(1), &consumed);
      if (consumed + 1 != trigger_text.size()) throw std::invalid_argument("");
    } catch (const std::exception&) {
      throw std::invalid_argument("failpoints: bad probability trigger in '" +
                                  entry + "'");
    }
    if (rule.p < 0.0 || rule.p > 1.0)
      throw std::invalid_argument("failpoints: probability out of [0,1] in '" +
                                  entry + "'");
    return rule;
  }
  const auto slash = trigger_text.find('/');
  if (slash != std::string::npos) {
    rule.trigger = detail::Rule::Trigger::kPeriodic;
    rule.n = parse_uint(trigger_text.substr(0, slash), entry);
    rule.m = parse_uint(trigger_text.substr(slash + 1), entry);
    if (rule.n == 0 || rule.m == 0)
      throw std::invalid_argument("failpoints: trigger indices are 1-based in '" +
                                  entry + "'");
    return rule;
  }
  if (trigger_text.back() == '+') {
    rule.trigger = detail::Rule::Trigger::kFrom;
    rule.n = parse_uint(trigger_text.substr(0, trigger_text.size() - 1), entry);
  } else {
    rule.trigger = detail::Rule::Trigger::kOnce;
    rule.n = parse_uint(trigger_text, entry);
  }
  if (rule.n == 0)
    throw std::invalid_argument("failpoints: trigger indices are 1-based in '" +
                                entry + "'");
  return rule;
}

}  // namespace

void arm(const std::string& spec) {
  auto config = std::make_shared<detail::Config>();
  config->spec = spec;

  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find_first_of(";,", begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = trim(spec.substr(begin, end - begin));
    begin = end + 1;
    if (entry.empty()) continue;

    const auto eq = entry.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("failpoints: expected name=action in '" +
                                  entry + "'");
    const std::string name = trim(entry.substr(0, eq));
    const std::string value = trim(entry.substr(eq + 1));
    if (name == "seed") {
      config->seed = parse_uint(value, entry);
      continue;
    }

    const auto at = value.find('@');
    const std::string action_text =
        at == std::string::npos ? value : value.substr(0, at);
    const std::string trigger_text =
        at == std::string::npos ? "" : value.substr(at + 1);
    const detail::Rule rule = parse_rule(entry, action_text, trigger_text);
    if (rule.action == Action::kNone) continue;  // 'off'

    // Fail loudly on typos: the name must be a registered site.
    bool known = false;
    {
      detail::Registry& reg = detail::registry();
      const std::lock_guard<std::mutex> lock(reg.mutex);
      known = reg.sites.find(name) != reg.sites.end();
    }
    if (!known) {
      std::string msg = "failpoints: unknown site '" + name + "'; registered:";
      for (const std::string& s : registered_sites()) msg += " " + s;
      throw std::invalid_argument(msg);
    }
    config->rules[name].push_back(rule);
  }

  detail::publish(std::move(config));
}

void disarm() { detail::publish(nullptr); }

bool arm_from_env() {
  const char* env = std::getenv("MMSYN_FAILPOINTS");
  if (env == nullptr || *env == '\0') return false;
  arm(env);
  return armed();
}

std::string active_spec() {
  const std::shared_ptr<const detail::Config> cfg = detail::current_config();
  return cfg ? cfg->spec : std::string();
}

std::vector<std::string> registered_sites() {
  detail::Registry& reg = detail::registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.sites.size());
  for (const auto& [name, state] : reg.sites) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

}  // namespace failpoint
}  // namespace mmsyn
