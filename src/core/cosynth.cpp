#include "core/cosynth.hpp"

#include <chrono>
#include <stdexcept>

#include "core/island_ga.hpp"
#include "core/run_control.hpp"
#include "model/system.hpp"

namespace mmsyn {
namespace {

EvaluationOptions make_eval_options(const System& system,
                                    const SynthesisOptions& options,
                                    bool final_eval) {
  EvaluationOptions eval;
  eval.use_dvs = options.use_dvs;
  eval.dvs = final_eval ? options.dvs_final : options.dvs_in_loop;
  eval.keep_schedules = final_eval;
  eval.scheduling_policy = options.scheduling_policy;
  eval.profiler = options.profiler;
  eval.power = options.power;
  if (!options.consider_probabilities)
    eval.weight_override.assign(system.omsm.mode_count(), 1.0);
  return eval;
}

/// The island-sharded route of synthesize(): same shape as the plain
/// route — build, resume, run, final fine-DVS evaluation through the warm
/// memo — with the island container checkpoint machinery and the
/// champion island's cache in place of the single GA's.
SynthesisResult synthesize_islands(const System& system,
                                   const SynthesisOptions& options,
                                   RunControl* control) {
  IslandOptions topology;
  topology.islands = options.islands;
  topology.migration_interval = options.migration_interval;
  topology.migrants = options.migrants;

  const Evaluator loop_evaluator(system,
                                 make_eval_options(system, options, false));
  IslandGa ga(system, loop_evaluator, options.fitness, options.allocation,
              options.ga, topology, options.seed);
  if (control && !control->resume_path.empty()) {
    IslandCheckpointLoadResult loaded = load_island_checkpoint_fallback(
        control->resume_path, control->checkpoint_keep_generations,
        ga.state_fingerprint());
    for (const std::string& note : loaded.notes)
      control->log_recovery("skipped checkpoint generation: " + note);
    if (loaded.generation > 0)
      control->log_recovery("resumed from older generation " +
                            loaded.loaded_path);
    ga.restore(loaded.snapshot);
  }
  SynthesisResult result = ga.run({}, control);

  // Final (reported) evaluation through the champion island's warm memo;
  // the schedule-stage counters stay whole-run totals (summed across
  // islands by IslandGa::run), so only the final evaluation's delta on
  // the champion cache is added on top.
  const Evaluator final_evaluator(system,
                                  make_eval_options(system, options, true));
  ModeEvalCache* cache = options.ga.memoize_mode_evaluations
                             ? &ga.champion_mode_cache()
                             : nullptr;
  if (cache != nullptr) {
    const long pre_hits = cache->schedule_hits();
    const long pre_lookups = cache->schedule_lookups();
    result.evaluation =
        final_evaluator.evaluate(result.mapping, result.cores, cache);
    result.schedule_cache_hits += cache->schedule_hits() - pre_hits;
    result.schedule_cache_lookups += cache->schedule_lookups() - pre_lookups;
  } else {
    result.evaluation = final_evaluator.evaluate(result.mapping, result.cores);
  }
  return result;
}

}  // namespace

SynthesisResult synthesize(const System& system,
                           const SynthesisOptions& options,
                           RunControl* control) {
  if (options.islands != 1) return synthesize_islands(system, options, control);

  const Evaluator loop_evaluator(system,
                                 make_eval_options(system, options, false));
  MappingGa ga(system, loop_evaluator, options.fitness, options.allocation,
               options.ga, options.seed);
  if (control && !control->resume_path.empty()) {
    // Recovery-aware resume: fall back through the kept generations when
    // the newest checkpoint is torn, corrupt, or from a different
    // configuration, and surface each skip in the recovery log.
    CheckpointLoadResult loaded = load_checkpoint_fallback(
        control->resume_path, control->checkpoint_keep_generations,
        ga.state_fingerprint());
    for (const std::string& note : loaded.notes)
      control->log_recovery("skipped checkpoint generation: " + note);
    if (loaded.generation > 0)
      control->log_recovery("resumed from older generation " +
                            loaded.loaded_path);
    ga.restore(loaded.snapshot);
  }
  SynthesisResult result = ga.run({}, control);

  // Final (reported) evaluation: fine DVS, schedules kept, true Ψ power.
  // It runs through the GA's warm memo: the schedule-stage keys cover only
  // the scheduler backend, so even though the fine DVS knobs give this
  // evaluator a different whole-mode fingerprint, the best candidate's
  // schedules are already in the stage store and stages 1–2 are skipped.
  // Replayed schedules are bit-identical to rebuilt ones (same stage
  // code), so sharing the cache never changes the reported evaluation.
  const Evaluator final_evaluator(system,
                                  make_eval_options(system, options, true));
  ModeEvalCache* cache =
      options.ga.memoize_mode_evaluations ? &ga.mode_cache() : nullptr;
  result.evaluation =
      final_evaluator.evaluate(result.mapping, result.cores, cache);
  if (cache != nullptr) {
    result.schedule_cache_hits = cache->schedule_hits();
    result.schedule_cache_lookups = cache->schedule_lookups();
  }
  return result;
}

SynthesisResult exhaustive_search(const System& system,
                                  const SynthesisOptions& options,
                                  std::uint64_t max_candidates) {
  using Clock = std::chrono::steady_clock;
  const auto t_begin = Clock::now();

  const GenomeCodec codec(system);
  std::uint64_t space = 1;
  for (std::size_t g = 0; g < codec.genome_length(); ++g) {
    space *= codec.candidates(g).size();
    if (space > max_candidates) throw ExhaustiveOverflow(space, max_candidates);
  }

  const Evaluator evaluator(system, make_eval_options(system, options, false));

  Genome genome(codec.genome_length(), 0);
  Genome best_genome = genome;
  double best_fitness = std::numeric_limits<double>::infinity();
  double best_violation = std::numeric_limits<double>::infinity();
  long evaluations = 0;

  bool done = codec.genome_length() == 0;
  while (true) {
    const MultiModeMapping mapping = codec.decode(genome);
    const CoreAllocation cores =
        build_core_allocation(system, mapping, options.allocation);
    const Evaluation eval = evaluator.evaluate(mapping, cores);
    const double fitness = mapping_fitness(eval, evaluator, options.fitness);
    const double violation = constraint_violation(eval, evaluator);
    ++evaluations;
    if (candidate_better(violation, fitness, best_violation, best_fitness)) {
      best_fitness = fitness;
      best_violation = violation;
      best_genome = genome;
    }
    if (done) break;
    // Odometer increment over the mixed-radix genome.
    std::size_t g = 0;
    for (; g < codec.genome_length(); ++g) {
      if (genome[g] + 1u < codec.candidates(g).size()) {
        ++genome[g];
        break;
      }
      genome[g] = 0;
    }
    if (g == codec.genome_length()) break;
  }

  SynthesisResult result;
  result.mapping = codec.decode(best_genome);
  result.cores =
      build_core_allocation(system, result.mapping, options.allocation);
  const Evaluator final_evaluator(system,
                                  make_eval_options(system, options, true));
  result.evaluation = final_evaluator.evaluate(result.mapping, result.cores);
  result.fitness = best_fitness;
  result.generations = 0;
  result.evaluations = evaluations;
  result.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - t_begin).count();
  return result;
}

}  // namespace mmsyn
