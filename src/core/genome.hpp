// Multi-mode mapping string (the GA genome of Section 4.1).
//
// A mapping candidate is encoded exactly as in the paper's Fig. 2/3: the
// concatenation over all modes of one gene per task. To keep every genome
// decodable, a gene stores an index into the task's *candidate PE list*
// (the PEs its type has implementations for) rather than a raw PE id —
// crossover and mutation then always produce well-formed mappings.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "model/mapping.hpp"

namespace mmsyn {

struct System;

/// The mapping string: one candidate index per (mode, task) gene.
using Genome = std::vector<std::uint16_t>;

/// Gene layout and decoding for one system.
class GenomeCodec {
public:
  explicit GenomeCodec(const System& system);

  [[nodiscard]] std::size_t genome_length() const { return gene_count_; }

  /// Flat gene position of (mode, task).
  [[nodiscard]] std::size_t gene_index(ModeId mode, TaskId task) const {
    return mode_offset_[mode.index()] + task.index();
  }

  /// Candidate PEs of the gene at flat position `g` (never empty for a
  /// valid system).
  [[nodiscard]] const std::vector<PeId>& candidates(std::size_t g) const {
    return candidates_[g];
  }

  /// PE encoded by `genome` at flat position `g`.
  [[nodiscard]] PeId pe_at(const Genome& genome, std::size_t g) const {
    return candidates_[g][genome[g]];
  }

  /// Sets gene `g` to map onto `pe`; returns false when `pe` is not a
  /// candidate of that gene.
  bool set_pe(Genome& genome, std::size_t g, PeId pe) const;

  [[nodiscard]] MultiModeMapping decode(const Genome& genome) const;

  /// Inverse of decode(); mapping must be well-formed for this system.
  [[nodiscard]] Genome encode(const MultiModeMapping& mapping) const;

  [[nodiscard]] Genome random_genome(Rng& rng) const;

  /// Mode owning flat gene position `g`.
  [[nodiscard]] ModeId mode_of_gene(std::size_t g) const;
  /// Task within its mode at flat gene position `g`.
  [[nodiscard]] TaskId task_of_gene(std::size_t g) const;

  [[nodiscard]] std::size_t mode_count() const {
    return mode_offset_.size();
  }
  [[nodiscard]] std::size_t mode_gene_begin(ModeId mode) const {
    return mode_offset_[mode.index()];
  }
  [[nodiscard]] std::size_t mode_gene_count(ModeId mode) const {
    return mode_size_[mode.index()];
  }

  /// Modes whose gene slice differs between `a` and `b` (ascending) — the
  /// only modes an incremental re-evaluation can be forced to reschedule
  /// (ASIC area coupling may invalidate more; see energy/evaluator.hpp).
  [[nodiscard]] std::vector<ModeId> changed_modes(const Genome& a,
                                                  const Genome& b) const;

private:
  std::size_t gene_count_ = 0;
  std::vector<std::size_t> mode_offset_;
  std::vector<std::size_t> mode_size_;
  std::vector<std::vector<PeId>> candidates_;  // per flat gene
};

/// Fraction of gene positions at which two genomes differ (normalised
/// Hamming distance); used by the GA's diversity-based convergence check.
[[nodiscard]] double hamming_fraction(const Genome& a, const Genome& b);

/// Hash functor for genome-keyed containers (fitness memoisation).
struct GenomeHash {
  std::size_t operator()(const Genome& genome) const;
};

}  // namespace mmsyn
