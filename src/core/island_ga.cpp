#include "core/island_ga.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/checksum.hpp"
#include "common/thread_pool.hpp"
#include "core/fitness.hpp"
#include "core/run_control.hpp"

namespace mmsyn {

/// One shard: its GA and the loop state the coordinator steps it with.
struct IslandGa::Island {
  MappingGa ga;
  MappingGa::LoopState st;

  Island(const System& system, const Evaluator& evaluator,
         FitnessParams fitness_params, AllocationOptions alloc_options,
         GaOptions options, std::uint64_t seed)
      : ga(system, evaluator, std::move(fitness_params),
           std::move(alloc_options), std::move(options), seed) {}

  /// Converged or at the generation cap: the loop never runs again.
  [[nodiscard]] bool finished(int max_generations) const {
    return st.converged || st.generation >= max_generations;
  }
};

void IslandGa::validate(const GaOptions& ga_options,
                        const IslandOptions& island_options) {
  if (island_options.islands < 1)
    throw std::invalid_argument(
        "islands: --islands must be >= 1 (got " +
        std::to_string(island_options.islands) + ")");
  if (island_options.islands == 1) return;  // the remaining knobs are
                                            // island-model-only
  if (ga_options.rng != RngKind::kThreefry)
    throw std::invalid_argument(
        "islands: island sharding derives each island's random stream from "
        "the counter-based Threefry engine; drop --rng=legacy (the stateful "
        "xoshiro engine has no counter to partition) or run with --islands=1");
  if (ga_options.rng_stream != 0)
    throw std::invalid_argument(
        "islands: the island driver owns the rng_stream assignment; leave "
        "GaOptions::rng_stream at 0 (stream ids are derived per island)");
  if (island_options.migration_interval < 1)
    throw std::invalid_argument(
        "islands: --migration-interval must be >= 1 (got " +
        std::to_string(island_options.migration_interval) + ")");
  if (island_options.migrants < 0)
    throw std::invalid_argument(
        "islands: --migrants must be >= 0 (got " +
        std::to_string(island_options.migrants) + ")");
  const int elite =
      std::min(ga_options.elite_count, ga_options.population_size);
  if (island_options.migrants > ga_options.population_size - elite)
    throw std::invalid_argument(
        "islands: --migrants=" + std::to_string(island_options.migrants) +
        " would overwrite elite slots: population " +
        std::to_string(ga_options.population_size) + " keeps " +
        std::to_string(elite) + " elites, so at most " +
        std::to_string(ga_options.population_size - elite) +
        " migrants fit per island");
}

IslandGa::IslandGa(const System& system, const Evaluator& evaluator,
                   FitnessParams fitness_params,
                   AllocationOptions alloc_options, GaOptions ga_options,
                   IslandOptions island_options, std::uint64_t seed)
    : island_options_(island_options),
      max_generations_(ga_options.max_generations) {
  validate(ga_options, island_options);
  const int n = island_options.islands;
  const int resolved = ThreadPool::resolve_thread_count(ga_options.num_threads);
  outer_threads_ = std::min(n, resolved);
  islands_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    GaOptions options = ga_options;
    if (n > 1) {
      // Each island owns a kIsland-domain stream — a pure function of
      // (seed, island index), disjoint from the legacy stream 0 — and an
      // even share of the thread budget (the coordinator fans the islands
      // themselves out over outer_threads_). A single island keeps stream
      // 0 and the caller's thread count, so IslandGa(1) is the plain GA.
      options.rng_stream =
          rng_streams::island_stream(static_cast<std::uint32_t>(i));
      options.num_threads = std::max(1, resolved / n);
    }
    islands_.push_back(std::make_unique<Island>(
        system, evaluator, fitness_params, alloc_options, std::move(options),
        seed));
  }
}

IslandGa::~IslandGa() = default;

int IslandGa::island_count() const {
  return static_cast<int>(islands_.size());
}

std::uint64_t IslandGa::state_fingerprint() const {
  Fnv1a64 h;
  h.add(island_options_.islands)
      .add(island_options_.migration_interval)
      .add(island_options_.migrants);
  // The per-island fingerprints embed the seed, every GA option, and the
  // island's rng_stream, so this digest pins the whole sharded trajectory.
  for (const auto& island : islands_) h.add(island->ga.state_fingerprint());
  return h.digest();
}

ModeEvalCache& IslandGa::champion_mode_cache() {
  return islands_[static_cast<std::size_t>(champion_)]->ga.mode_cache();
}

IslandSnapshot IslandGa::make_snapshot() const {
  IslandSnapshot s;
  s.fingerprint = state_fingerprint();
  s.island_count = static_cast<std::int32_t>(islands_.size());
  s.migration_interval =
      static_cast<std::int32_t>(island_options_.migration_interval);
  s.migrants = static_cast<std::int32_t>(island_options_.migrants);
  s.next_migration_generation = next_migration_;
  s.islands.reserve(islands_.size());
  for (const auto& island : islands_)
    s.islands.push_back(island->ga.snapshot(island->st));
  return s;
}

void IslandGa::restore(const IslandSnapshot& snapshot) {
  if (snapshot.island_count != static_cast<std::int32_t>(islands_.size()))
    throw CheckpointError(
        "island count mismatch: the checkpoint holds " +
        std::to_string(snapshot.island_count) + " islands, this run has " +
        std::to_string(islands_.size()) + " — rerun with --islands=" +
        std::to_string(snapshot.island_count));
  if (snapshot.fingerprint != state_fingerprint())
    throw CheckpointError(
        "island configuration fingerprint mismatch: the checkpoint was "
        "written under a different migration schedule, seed, or GA options");
  for (std::size_t i = 0; i < islands_.size(); ++i)
    islands_[i]->ga.restore(snapshot.islands[i]);
  next_migration_ = snapshot.next_migration_generation;
  restored_ = true;
}

void IslandGa::migrate() {
  const int n = static_cast<int>(islands_.size());
  const int k = island_options_.migrants;
  if (n < 2 || k == 0) return;  // self-migration is a no-op by contract

  // Gather first, then install: every emigrant is copied from the
  // pre-migration population, so the exchange is order-independent even
  // though the installs run in fixed island order.
  std::vector<std::vector<MappingGa::Individual>> emigrants(
      static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& out = emigrants[static_cast<std::size_t>(i)];
    out.reserve(static_cast<std::size_t>(k));
    for (int m = 0; m < k; ++m)
      out.push_back(islands_[static_cast<std::size_t>(i)]->ga.population_at(m));
  }
  for (int i = 0; i < n; ++i) {
    Island& dest = *islands_[static_cast<std::size_t>(i)];
    // Finished islands still emigrate (gathered above) but receive
    // nothing: their loop never runs again, so installing would only
    // perturb the checkpointed population.
    if (dest.finished(max_generations_)) continue;
    const int source = (i + n - 1) % n;
    const int pop = dest.ga.population_size();
    for (int m = 0; m < k; ++m)
      dest.ga.install_individual(
          pop - 1 - m, emigrants[static_cast<std::size_t>(source)]
                           [static_cast<std::size_t>(m)]);
  }
}

SynthesisResult IslandGa::run(
    const std::function<void(const GaProgress&)>& observer,
    RunControl* control) {
  for (auto& island : islands_) island->ga.start_loop(island->st);
  if (!restored_) next_migration_ = island_options_.migration_interval;
  restored_ = false;

  // A cooperative stop (budget/cancel) raises the flag from whichever
  // island notices first; every island then stops at its next generation
  // boundary. The mid-segment checkpoint this produces depends on where
  // each island happened to be — but a resume advances every island to
  // the same barrier before migrating, and island segments are mutually
  // independent, so the post-barrier state (and the final result) is
  // still a pure function of (seed, islands, schedule).
  std::atomic<bool> stopped{false};
  ThreadPool pool(outer_threads_);
  const std::function<void(const GaProgress&)> no_observer{};

  while (true) {
    const int target = static_cast<int>(std::min<std::int64_t>(
        next_migration_, static_cast<std::int64_t>(max_generations_)));
    pool.parallel_for(islands_.size(), [&](std::size_t i) {
      Island& island = *islands_[i];
      while (!island.st.converged && island.st.generation < target) {
        if (stopped.load(std::memory_order_relaxed)) return;
        if (control != nullptr &&
            control->should_stop(island.ga.loop_elapsed(island.st))) {
          stopped.store(true, std::memory_order_relaxed);
          return;
        }
        if (!island.ga.step_generation(island.st,
                                       i == 0 ? observer : no_observer)) {
          return;
        }
      }
    });

    if (stopped.load(std::memory_order_relaxed)) {
      if (control != nullptr && control->checkpointing_enabled())
        control->write_island_checkpoint(make_snapshot());
      const StopReason reason =
          control != nullptr &&
                  control->budget_exhausted(
                      islands_.front()->ga.loop_elapsed(islands_.front()->st))
              ? StopReason::kBudgetExhausted
              : StopReason::kCancelled;
      for (auto& island : islands_) {
        island->st.partial = true;
        island->st.stop_reason = reason;
      }
      break;
    }

    bool all_done = true;
    for (const auto& island : islands_)
      all_done = all_done && island->finished(max_generations_);
    if (all_done) break;

    // Synchronous barrier reached: every unfinished island sits exactly
    // at `next_migration_`. Exchange, schedule the next barrier, and
    // persist the post-migration state (the checkpoint's
    // next_migration_generation says the exchange already happened).
    migrate();
    next_migration_ += island_options_.migration_interval;
    if (control != nullptr && control->checkpointing_enabled())
      control->write_island_checkpoint(make_snapshot());
  }

  champion_ = 0;
  for (int i = 1; i < static_cast<int>(islands_.size()); ++i) {
    const MappingGa::Individual& a = islands_[static_cast<std::size_t>(i)]->st.best;
    const MappingGa::Individual& b =
        islands_[static_cast<std::size_t>(champion_)]->st.best;
    // Strictly-better wins, so ties go to the lowest island index.
    if (candidate_better(a.violation, a.fitness, b.violation, b.fitness))
      champion_ = i;
  }

  // The memetic polish refines one individual; running it on the champion
  // only matches the single-population cost model.
  Island& champion = *islands_[static_cast<std::size_t>(champion_)];
  champion.ga.finish_loop(champion.st, control);
  SynthesisResult result = champion.ga.harvest(champion.st);

  // Cross-island aggregation: the champion's mapping with whole-run
  // counters — total work across all shards, the slowest island's
  // generation count and wall clock.
  long evaluations = 0, cache_hits = 0, cache_lookups = 0;
  long mode_hits = 0, mode_lookups = 0, sched_hits = 0, sched_lookups = 0;
  int generations = 0;
  double elapsed = 0.0;
  for (auto& island : islands_) {
    evaluations += island->ga.evaluations();
    cache_hits += island->ga.cache_hits();
    cache_lookups += island->ga.cache_lookups();
    mode_hits += island->ga.mode_cache().hits();
    mode_lookups += island->ga.mode_cache().lookups();
    sched_hits += island->ga.mode_cache().schedule_hits();
    sched_lookups += island->ga.mode_cache().schedule_lookups();
    generations = std::max(generations, island->st.generation);
    elapsed = std::max(elapsed, island->ga.loop_elapsed(island->st));
  }
  result.evaluations = evaluations;
  result.cache_hits = cache_hits;
  result.cache_lookups = cache_lookups;
  result.mode_cache_hits = mode_hits;
  result.mode_cache_lookups = mode_lookups;
  result.schedule_cache_hits = sched_hits;
  result.schedule_cache_lookups = sched_lookups;
  result.generations = generations;
  result.elapsed_seconds = elapsed;
  return result;
}

}  // namespace mmsyn
