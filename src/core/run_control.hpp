// Crash-safe run control for long synthesis runs.
//
// A `RunControl` handle threaded through `synthesize()` / `MappingGa::run`
// adds three behaviours to an otherwise all-or-nothing GA run:
//
//  * a wall-clock budget — the run stops at the next generation boundary
//    once the budget is exhausted;
//  * a cooperative cancellation token — `request_cancel()` (or a SIGINT
//    when `listen_for_interrupt()` is on) stops the run at the next
//    generation boundary;
//  * periodic checkpoints — the complete GA state (generation, population,
//    RNG state, best-so-far, memo cache, counters) is serialized to a
//    versioned, CRC-protected file every N generations and on every
//    cooperative stop, so `resume_path` can continue the run later
//    **bit-identically** to an uninterrupted run with the same seed.
//
// A budget/cancel stop is graceful: the GA still returns the best
// individual found so far and the result is flagged `partial = true`.
// See DESIGN.md §9 for the full robustness contract.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/genome.hpp"
#include "energy/evaluator.hpp"

namespace mmsyn {

/// Raised when a checkpoint file cannot be read, fails its CRC, carries an
/// unknown version, or does not match the run it is resumed into.
class CheckpointError : public std::runtime_error {
public:
  explicit CheckpointError(const std::string& message)
      : std::runtime_error("checkpoint: " + message) {}
};

/// Serialized state of one individual (population slot, best-so-far, or
/// memo-cache entry; the flags mirror MappingGa's internal bookkeeping).
struct SnapshotIndividual {
  Genome genome;
  double fitness = 0.0;
  double violation = 0.0;
  double power_true = 0.0;
  bool evaluated = false;
  bool area_infeasible = false;
  bool timing_infeasible = false;
  bool transition_infeasible = false;

  friend bool operator==(const SnapshotIndividual&,
                         const SnapshotIndividual&) = default;
};

/// Complete resumable GA state, captured at a generation boundary (the
/// state *entering* `next_generation`). Restoring it and running on is
/// bit-identical to never having stopped: the RNG stream, the memo cache
/// (in insertion order, so FIFO eviction replays), and every counter
/// continue exactly where they left off.
struct GaSnapshot {
  /// Configuration fingerprint (seed, GA options, genome structure,
  /// evaluator weights); resume refuses a mismatch.
  std::uint64_t fingerprint = 0;
  int next_generation = 0;
  int stagnation = 0;
  int area_infeasible_streak = 0;
  int timing_infeasible_streak = 0;
  int transition_infeasible_streak = 0;
  long evaluations = 0;
  long cache_hits = 0;
  long cache_lookups = 0;
  /// Wall-clock seconds already spent before the checkpoint; resumed runs
  /// accumulate on top so time budgets span interruptions.
  double elapsed_seconds = 0.0;
  std::array<std::uint64_t, 4> rng_state{};
  bool has_best = false;
  SnapshotIndividual best;
  std::vector<SnapshotIndividual> population;
  /// Fitness-memo entries in insertion (FIFO) order.
  std::vector<SnapshotIndividual> cache;
  /// Per-mode inner-loop memo entries, also in insertion order, plus its
  /// hit/lookup counters (see ModeEvalCache). Cached entries never carry
  /// schedules; serialization rejects one that does.
  std::vector<std::pair<ModeEvalKey, ModeEvaluation>> mode_cache;
  long mode_cache_hits = 0;
  long mode_cache_lookups = 0;
  /// Schedule-stage entries of the same memo (insertion order) with their
  /// counters, so stage-level hits replay across a resume too.
  std::vector<std::pair<ModeEvalKey, ModeSchedule>> schedule_cache;
  long schedule_cache_hits = 0;
  long schedule_cache_lookups = 0;
};

/// Writes `snapshot` atomically (temp file + rename) in the versioned,
/// CRC-protected binary format. Throws CheckpointError on I/O failure.
void save_checkpoint(const std::string& path, const GaSnapshot& snapshot);

/// Reads a checkpoint written by save_checkpoint. Throws CheckpointError
/// on I/O failure, bad magic/version, or CRC mismatch.
[[nodiscard]] GaSnapshot load_checkpoint(const std::string& path);

/// The run-control handle. Plain-struct configuration plus a thread-safe
/// cancellation token; one instance drives one `synthesize()` call.
class RunControl {
public:
  /// Wall-clock budget in seconds; <= 0 means unlimited. Measured over
  /// the *total* run including time before a resumed checkpoint.
  double time_budget_seconds = 0.0;

  /// Checkpoint file path; empty disables checkpointing.
  std::string checkpoint_path;
  /// Write a checkpoint every N completed generations (and always on a
  /// cooperative stop when checkpointing is enabled).
  int checkpoint_every_generations = 25;

  /// Resume from this checkpoint file before the first generation; empty
  /// starts fresh.
  std::string resume_path;

  /// Requests a graceful stop at the next generation boundary. Safe to
  /// call from any thread (e.g. a GA progress observer or a watchdog).
  void request_cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Also honour the process-wide SIGINT flag (common/interrupt.hpp).
  /// The caller installs the handler; this only opts into polling it.
  void listen_for_interrupt() { poll_interrupt_flag_ = true; }

  [[nodiscard]] bool cancel_requested() const;

  /// True when the run should stop at this generation boundary, given the
  /// total elapsed wall-clock seconds so far.
  [[nodiscard]] bool should_stop(double elapsed_seconds) const {
    return cancel_requested() ||
           (time_budget_seconds > 0.0 &&
            elapsed_seconds >= time_budget_seconds);
  }

  /// True when a periodic checkpoint is due after completing `generation`.
  [[nodiscard]] bool checkpoint_due(int generation) const {
    return !checkpoint_path.empty() && checkpoint_every_generations > 0 &&
           (generation + 1) % checkpoint_every_generations == 0;
  }

  [[nodiscard]] bool checkpointing_enabled() const {
    return !checkpoint_path.empty();
  }

  /// Writes `snapshot` to checkpoint_path (no-op when disabled).
  void write_checkpoint(const GaSnapshot& snapshot) const {
    if (!checkpoint_path.empty()) save_checkpoint(checkpoint_path, snapshot);
  }

private:
  std::atomic<bool> cancelled_{false};
  bool poll_interrupt_flag_ = false;
};

}  // namespace mmsyn
