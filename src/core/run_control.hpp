// Crash-safe run control for long synthesis runs.
//
// A `RunControl` handle threaded through `synthesize()` / `MappingGa::run`
// adds three behaviours to an otherwise all-or-nothing GA run:
//
//  * a wall-clock budget — the run stops at the next generation boundary
//    once the budget is exhausted;
//  * a cooperative cancellation token — `request_cancel()` (or a SIGINT
//    when `listen_for_interrupt()` is on) stops the run at the next
//    generation boundary;
//  * periodic checkpoints — the complete GA state (generation, population,
//    RNG state, best-so-far, memo cache, counters) is serialized to a
//    versioned, CRC-protected file every N generations and on every
//    cooperative stop, so `resume_path` can continue the run later
//    **bit-identically** to an uninterrupted run with the same seed.
//
// A budget/cancel stop is graceful: the GA still returns the best
// individual found so far and the result is flagged `partial = true`.
// See DESIGN.md §9 for the full robustness contract.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/genome.hpp"
#include "energy/evaluator.hpp"

namespace mmsyn {

/// Raised when a checkpoint file cannot be read, fails its CRC, carries an
/// unknown version, or does not match the run it is resumed into.
class CheckpointError : public std::runtime_error {
public:
  explicit CheckpointError(const std::string& message)
      : std::runtime_error("checkpoint: " + message) {}
};

/// Serialized state of one individual (population slot, best-so-far, or
/// memo-cache entry; the flags mirror MappingGa's internal bookkeeping).
struct SnapshotIndividual {
  Genome genome;
  double fitness = 0.0;
  double violation = 0.0;
  double power_true = 0.0;
  bool evaluated = false;
  bool area_infeasible = false;
  bool timing_infeasible = false;
  bool transition_infeasible = false;

  friend bool operator==(const SnapshotIndividual&,
                         const SnapshotIndividual&) = default;
};

/// Complete resumable GA state, captured at a generation boundary (the
/// state *entering* `next_generation`). Restoring it and running on is
/// bit-identical to never having stopped: the RNG stream, the memo cache
/// (in insertion order, so FIFO eviction replays), and every counter
/// continue exactly where they left off.
struct GaSnapshot {
  /// Configuration fingerprint (seed, GA options, genome structure,
  /// evaluator weights); resume refuses a mismatch.
  std::uint64_t fingerprint = 0;
  int next_generation = 0;
  int stagnation = 0;
  /// The convergence criterion has fired (v4): the diversity term of that
  /// criterion is measured on the pre-breeding population, so a resumed
  /// island could not re-derive the decision from the snapshot alone.
  /// Single-population checkpoints always carry false — the run loop
  /// stops at the first converged generation and never snapshots it.
  bool converged = false;
  int area_infeasible_streak = 0;
  int timing_infeasible_streak = 0;
  int transition_infeasible_streak = 0;
  long evaluations = 0;
  long cache_hits = 0;
  long cache_lookups = 0;
  /// Wall-clock seconds already spent before the checkpoint; resumed runs
  /// accumulate on top so time budgets span interruptions.
  double elapsed_seconds = 0.0;
  std::array<std::uint64_t, 4> rng_state{};
  bool has_best = false;
  SnapshotIndividual best;
  std::vector<SnapshotIndividual> population;
  /// Fitness-memo entries in insertion (FIFO) order.
  std::vector<SnapshotIndividual> cache;
  /// Per-mode inner-loop memo entries, also in insertion order, plus its
  /// hit/lookup counters (see ModeEvalCache). Cached entries never carry
  /// schedules; serialization rejects one that does.
  std::vector<std::pair<ModeEvalKey, ModeEvaluation>> mode_cache;
  long mode_cache_hits = 0;
  long mode_cache_lookups = 0;
  /// Schedule-stage entries of the same memo (insertion order) with their
  /// counters, so stage-level hits replay across a resume too.
  std::vector<std::pair<ModeEvalKey, ModeSchedule>> schedule_cache;
  long schedule_cache_hits = 0;
  long schedule_cache_lookups = 0;
};

/// Resumable state of one island-model run (checkpoint format v4; see
/// DESIGN.md §14). Every checkpoint file is an island container — a
/// single-population save is the island_count == 1 special case — so one
/// loader, one CRC recipe and one rotation scheme cover both shapes.
struct IslandSnapshot {
  /// Island-config fingerprint: hashes island_count, migration_interval,
  /// migrants and every per-island GA fingerprint (which differ only in
  /// their rng_stream), so a checkpoint cannot be resumed under a
  /// different island topology or migration schedule.
  std::uint64_t fingerprint = 0;
  std::int32_t island_count = 1;
  std::int32_t migration_interval = 0;
  std::int32_t migrants = 0;
  /// The migration barrier the run is advancing toward. Disambiguates a
  /// barrier checkpoint (migration applied, next barrier recorded) from a
  /// mid-segment stop at the same generation numbers — the generations
  /// alone cannot tell whether the exchange already happened.
  std::int64_t next_migration_generation = 0;
  /// One complete GA snapshot per island, in island order.
  std::vector<GaSnapshot> islands;
};

/// Writes `snapshot` atomically and durably (temp file + fsync + rename +
/// directory fsync) in the versioned, CRC-protected binary format. Throws
/// CheckpointError on I/O failure; a write that throws mid-stream removes
/// its stale `.tmp` file. Equivalent to save_checkpoint_rotating with
/// keep = 1 (no older generations are retained).
void save_checkpoint(const std::string& path, const GaSnapshot& snapshot);

/// The on-disk name of checkpoint generation `generation` (0 = newest):
/// `path` itself, then `path.1`, `path.2`, ...
[[nodiscard]] std::string checkpoint_generation_path(const std::string& path,
                                                     int generation);

/// Like save_checkpoint, but first shifts the existing generation files up
/// (`path` -> `path.1` -> ... -> `path.keep-1`, the oldest falling off) so
/// the last `keep` snapshots survive on disk. One torn or bit-rotted
/// generation then costs at most `checkpoint_every_generations` of replay
/// instead of the whole run.
void save_checkpoint_rotating(const std::string& path,
                              const GaSnapshot& snapshot, int keep);

/// Island-container variants of the same recipe. save_checkpoint[_rotating]
/// is exactly save_island_checkpoint_rotating of a one-island container.
void save_island_checkpoint_rotating(const std::string& path,
                                     const IslandSnapshot& snapshot, int keep);

/// Reads a checkpoint written by save_checkpoint. Throws CheckpointError
/// on I/O failure, bad magic/version, or CRC mismatch — and, with an
/// actionable message, when the file holds a multi-island container (those
/// must be resumed through the island driver with the matching --islands).
[[nodiscard]] GaSnapshot load_checkpoint(const std::string& path);

/// Reads any checkpoint as an island container (a single-population file
/// loads as island_count == 1). Throws CheckpointError as load_checkpoint.
[[nodiscard]] IslandSnapshot load_island_checkpoint(const std::string& path);

/// Outcome of load_checkpoint_fallback: which generation was loaded and
/// what was wrong with every newer generation that had to be skipped.
struct CheckpointLoadResult {
  GaSnapshot snapshot;
  /// The generation file actually loaded.
  std::string loaded_path;
  /// Its generation index (0 = the newest file, `path` itself).
  int generation = 0;
  /// One human-readable note per skipped (missing/corrupt/mismatched)
  /// newer generation, for the recovery log.
  std::vector<std::string> notes;
};

/// Recovery-aware load: tries generations 0..keep-1 in order and returns
/// the newest one that reads cleanly (and, when `expected_fingerprint` is
/// set, matches it). Missing and corrupt generations are skipped with a
/// note instead of aborting the resume. Throws CheckpointError only when
/// no generation is usable, with every skip reason in the message.
[[nodiscard]] CheckpointLoadResult load_checkpoint_fallback(
    const std::string& path, int keep,
    std::optional<std::uint64_t> expected_fingerprint = std::nullopt);

/// Island-container analogue of CheckpointLoadResult.
struct IslandCheckpointLoadResult {
  IslandSnapshot snapshot;
  std::string loaded_path;
  int generation = 0;
  std::vector<std::string> notes;
};

/// Island-container analogue of load_checkpoint_fallback (the expected
/// fingerprint is the island-config fingerprint).
[[nodiscard]] IslandCheckpointLoadResult load_island_checkpoint_fallback(
    const std::string& path, int keep,
    std::optional<std::uint64_t> expected_fingerprint = std::nullopt);

/// The run-control handle. Plain-struct configuration plus a thread-safe
/// cancellation token; one instance drives one `synthesize()` call.
class RunControl {
public:
  /// Wall-clock budget in seconds; <= 0 means unlimited. Measured over
  /// the *total* run including time before a resumed checkpoint.
  double time_budget_seconds = 0.0;

  /// Checkpoint file path; empty disables checkpointing.
  std::string checkpoint_path;
  /// Write a checkpoint every N completed generations (and always on a
  /// cooperative stop when checkpointing is enabled).
  int checkpoint_every_generations = 25;
  /// Checkpoint generations kept on disk (path, path.1, ...); resume
  /// falls back through them when the newest is torn or corrupt.
  int checkpoint_keep_generations = 3;

  /// Resume from this checkpoint file before the first generation; empty
  /// starts fresh.
  std::string resume_path;

  /// Recovery diagnostics sink (skipped checkpoint generations, tolerated
  /// write failures, quarantined cache entries). Unset = silent.
  std::function<void(const std::string&)> recovery_log;

  /// Emits one recovery-log line (no-op without a sink).
  void log_recovery(const std::string& message) const {
    if (recovery_log) recovery_log(message);
  }

  /// Requests a graceful stop at the next generation boundary. Safe to
  /// call from any thread (e.g. a GA progress observer or a watchdog).
  void request_cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Also honour the process-wide SIGINT flag (common/interrupt.hpp).
  /// The caller installs the handler; this only opts into polling it.
  void listen_for_interrupt() { poll_interrupt_flag_ = true; }

  [[nodiscard]] bool cancel_requested() const;

  /// True when the wall-clock budget alone mandates a stop. Exposed
  /// separately from should_stop so callers can type the outcome:
  /// budget exhaustion is a recoverable per-job result (StopReason::
  /// kBudgetExhausted, still carrying the best-so-far evaluation), while
  /// cancellation comes from outside (signal, watchdog, drain).
  [[nodiscard]] bool budget_exhausted(double elapsed_seconds) const {
    return time_budget_seconds > 0.0 && elapsed_seconds >= time_budget_seconds;
  }

  /// True when the run should stop at this generation boundary, given the
  /// total elapsed wall-clock seconds so far.
  [[nodiscard]] bool should_stop(double elapsed_seconds) const {
    return cancel_requested() || budget_exhausted(elapsed_seconds);
  }

  /// True when a periodic checkpoint is due after completing `generation`.
  [[nodiscard]] bool checkpoint_due(int generation) const {
    return !checkpoint_path.empty() && checkpoint_every_generations > 0 &&
           (generation + 1) % checkpoint_every_generations == 0;
  }

  [[nodiscard]] bool checkpointing_enabled() const {
    return !checkpoint_path.empty();
  }

  /// Writes `snapshot` to checkpoint_path with generation rotation (no-op
  /// when disabled). Failure-tolerant: a checkpoint that cannot be written
  /// is logged and counted, never fatal — losing one periodic snapshot
  /// must not kill a multi-hour run (older generations still cover it).
  void write_checkpoint(const GaSnapshot& snapshot) const;

  /// Island-container variant of write_checkpoint (same tolerance: a
  /// failed write is logged and counted, never fatal).
  void write_island_checkpoint(const IslandSnapshot& snapshot) const;

  /// Checkpoint writes tolerated (logged and skipped) so far.
  [[nodiscard]] long checkpoint_write_failures() const {
    return checkpoint_write_failures_;
  }

private:
  std::atomic<bool> cancelled_{false};
  bool poll_interrupt_flag_ = false;
  mutable long checkpoint_write_failures_ = 0;
};

}  // namespace mmsyn
