#include "core/fitness.hpp"

#include <algorithm>

namespace mmsyn {

double mapping_fitness(const Evaluation& eval, const Evaluator& evaluator,
                       const FitnessParams& params) {
  const System& system = evaluator.system();

  const double power = std::max(eval.avg_power_weighted, 1e-15);

  const double tp = 1.0 + params.timing_weight * eval.weighted_timing_violation;

  double area_factor = 1.0;
  for (PeId p : system.arch.pe_ids()) {
    const double violation = eval.pe_area_violation[p.index()];
    if (violation <= 0.0) continue;
    const double capacity = system.arch.pe(p).area_capacity;
    area_factor += params.area_weight * violation / (capacity * 0.01);
  }

  double transition_factor = 1.0;
  bool any_transition_violation = false;
  for (std::size_t t = 0; t < eval.transition_violations.size(); ++t) {
    if (eval.transition_violations[t] <= 0.0) continue;
    any_transition_violation = true;
    const ModeTransition& tr = system.omsm.transition(
        TransitionId{static_cast<TransitionId::value_type>(t)});
    transition_factor *= eval.transition_times[t] / tr.max_transition_time;
  }
  if (any_transition_violation)
    transition_factor *= params.transition_weight;

  return power * tp * area_factor * transition_factor;
}

double constraint_violation(const Evaluation& eval,
                            const Evaluator& evaluator) {
  const System& system = evaluator.system();
  double total = 0.0;
  for (PeId p : system.arch.pe_ids()) {
    const double v = eval.pe_area_violation[p.index()];
    if (v > 0.0) total += v / system.arch.pe(p).area_capacity;
  }
  total += eval.weighted_timing_violation;
  for (const ModeEvaluation& m : eval.modes)
    if (!m.routable) total += 1.0;
  for (std::size_t t = 0; t < eval.transition_violations.size(); ++t) {
    if (eval.transition_violations[t] <= 0.0) continue;
    const ModeTransition& tr = system.omsm.transition(
        TransitionId{static_cast<TransitionId::value_type>(t)});
    total += eval.transition_violations[t] / tr.max_transition_time;
  }
  return total;
}

bool candidate_better(double violation_a, double fitness_a,
                      double violation_b, double fitness_b) {
  const bool feasible_a = violation_a <= 0.0;
  const bool feasible_b = violation_b <= 0.0;
  if (feasible_a != feasible_b) return feasible_a;
  if (!feasible_a && violation_a != violation_b)
    return violation_a < violation_b;
  return fitness_a < fitness_b;
}

}  // namespace mmsyn
