#include "core/fitness.hpp"

#include <algorithm>

namespace mmsyn {

double mapping_fitness(const Evaluation& eval, const Evaluator& evaluator,
                       const FitnessParams& params) {
  const System& system = evaluator.system();

  const double power = std::max(eval.avg_power_weighted, 1e-15);

  const double tp = 1.0 + params.timing_weight * eval.weighted_timing_violation;

  double area_factor = 1.0;
  for (PeId p : system.arch.pe_ids()) {
    const double violation = eval.pe_area_violation[p.index()];
    if (violation <= 0.0) continue;
    const double capacity = system.arch.pe(p).area_capacity;
    // Zero-capacity PEs (software PEs carry none at all) have no "percent
    // of capacity" scale; penalise in absolute area units instead of
    // dividing by zero and destroying the ranking with inf/NaN.
    const double percent = capacity > 0.0 ? capacity * 0.01 : 1.0;
    area_factor += params.area_weight * violation / percent;
  }

  // Π_{T∈Θ_v} (w_R · t_T/t_T^max): every violating transition contributes
  // one w_R-weighted overshoot ratio; an empty Θ_v leaves the factor at 1.
  double transition_factor = 1.0;
  for (std::size_t t = 0; t < eval.transition_violations.size(); ++t) {
    if (eval.transition_violations[t] <= 0.0) continue;
    const ModeTransition& tr = system.omsm.transition(
        TransitionId{static_cast<TransitionId::value_type>(t)});
    // A zero-time limit makes the overshoot ratio unbounded; fall back to
    // 1 + t_T (> 1, grows with the overshoot) to stay finite and ranked.
    const double ratio = tr.max_transition_time > 0.0
                             ? eval.transition_times[t] / tr.max_transition_time
                             : 1.0 + eval.transition_times[t];
    transition_factor *= params.transition_weight * ratio;
  }

  return power * tp * area_factor * transition_factor;
}

double constraint_violation(const Evaluation& eval,
                            const Evaluator& evaluator) {
  const System& system = evaluator.system();
  double total = 0.0;
  for (PeId p : system.arch.pe_ids()) {
    const double v = eval.pe_area_violation[p.index()];
    // Same zero-capacity guard as the fitness: absolute units when the PE
    // has no capacity to express the violation as a fraction of.
    const double capacity = system.arch.pe(p).area_capacity;
    if (v > 0.0) total += capacity > 0.0 ? v / capacity : v;
  }
  total += eval.weighted_timing_violation;
  for (const ModeEvaluation& m : eval.modes)
    if (!m.routable) total += 1.0;
  for (std::size_t t = 0; t < eval.transition_violations.size(); ++t) {
    if (eval.transition_violations[t] <= 0.0) continue;
    const ModeTransition& tr = system.omsm.transition(
        TransitionId{static_cast<TransitionId::value_type>(t)});
    total += tr.max_transition_time > 0.0
                 ? eval.transition_violations[t] / tr.max_transition_time
                 : eval.transition_violations[t];
  }
  return total;
}

bool candidate_better(double violation_a, double fitness_a,
                      double violation_b, double fitness_b) {
  const bool feasible_a = violation_a <= 0.0;
  const bool feasible_b = violation_b <= 0.0;
  if (feasible_a != feasible_b) return feasible_a;
  if (!feasible_a && violation_a != violation_b)
    return violation_a < violation_b;
  return fitness_a < fitness_b;
}

}  // namespace mmsyn
