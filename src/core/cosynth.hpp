// Top-level co-synthesis entry points.
//
// `synthesize` runs the full two-loop flow of the paper for one system:
// the GA outer loop maps tasks and allocates cores; the inner loop
// (scheduling + optional PV-DVS) and the probability-weighted power model
// judge every candidate. Setting `consider_probabilities = false` yields
// the paper's comparison baseline: the identical flow optimised with
// uniform mode weights — the *reported* power always uses the true Ψ.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/ga.hpp"

namespace mmsyn {

class PowerModel;
class RunControl;

struct SynthesisOptions {
  /// true: weight the objective with the OMSM's Ψ (the proposed method);
  /// false: uniform weights (the probability-neglecting baseline).
  bool consider_probabilities = true;
  /// Apply dynamic voltage scaling (software PEs and — via the Fig. 5
  /// transformation — hardware PEs).
  bool use_dvs = false;

  GaOptions ga;
  FitnessParams fitness;
  AllocationOptions allocation;
  /// Inner-loop list-scheduler priority (kBottomLevel = paper behaviour).
  SchedulingPolicy scheduling_policy = SchedulingPolicy::kBottomLevel;
  /// Coarse PV-DVS settings for the GA hot loop. Too coarse and the GA
  /// ranks candidates differently from the fine (reported) evaluation,
  /// which systematically mis-steers the search; these values keep the
  /// coarse/fine ranking agreement while staying ~2x cheaper than the
  /// final settings.
  PvDvsOptions dvs_in_loop{/*max_iterations_per_node=*/12,
                           /*step_fraction=*/0.5,
                           /*min_relative_gain=*/1e-5,
                           /*discrete_voltages=*/true};
  /// Fine PV-DVS settings for the final (reported) evaluation.
  PvDvsOptions dvs_final{};

  std::uint64_t seed = 1;

  /// Island-model sharding of the GA (see core/island_ga.hpp and
  /// DESIGN.md §14). 1 island runs the plain single-population GA —
  /// bit-identically to releases without the island driver; N > 1 evolves
  /// N independent populations that exchange `migrants` elites every
  /// `migration_interval` generations along a deterministic ring. The
  /// topology requires the (default) Threefry engine; `synthesize` throws
  /// std::invalid_argument with the offending flag otherwise.
  int islands = 1;
  int migration_interval = 20;
  int migrants = 2;

  /// Optional per-stage pipeline instrumentation shared by the loop and
  /// final evaluators (see pipeline/profile.hpp). Not fingerprinted;
  /// enabling it never changes any result.
  PipelineProfiler* profiler = nullptr;

  /// Power-model backend shared by the loop and final evaluators (see
  /// power/backends.hpp). Null selects the pinned `paper` reference
  /// model — bit-identical to releases without the power registry.
  const PowerModel* power = nullptr;
};

/// Runs the co-synthesis. The returned evaluation is a *final* evaluation:
/// fine DVS settings, schedules retained, powers reported with true Ψ.
///
/// `control` (optional) makes the run crash-safe: wall-clock budget,
/// cooperative cancellation, periodic checkpoints, and resume from
/// `RunControl::resume_path` (see core/run_control.hpp). A budget/cancel
/// stop still returns a final fine-DVS evaluation of the best individual
/// found so far, flagged `partial = true`.
[[nodiscard]] SynthesisResult synthesize(const System& system,
                                         const SynthesisOptions& options,
                                         RunControl* control = nullptr);

/// Raised by exhaustive_search when the candidate space exceeds the
/// enumeration budget. Derives from std::invalid_argument so callers that
/// caught the previous generic exception keep working; new callers should
/// catch the typed error and read the bound that was exceeded.
class ExhaustiveOverflow : public std::invalid_argument {
public:
  ExhaustiveOverflow(std::uint64_t space_at_least, std::uint64_t budget)
      : std::invalid_argument(
            "exhaustive_search: search space (>= " +
            std::to_string(space_at_least) + " candidates) exceeds budget " +
            std::to_string(budget)),
        space_at_least_(space_at_least),
        budget_(budget) {}

  /// Lower bound on the candidate count (the running product at the gene
  /// where enumeration was abandoned).
  [[nodiscard]] std::uint64_t space_at_least() const { return space_at_least_; }
  [[nodiscard]] std::uint64_t budget() const { return budget_; }

private:
  std::uint64_t space_at_least_;
  std::uint64_t budget_;
};

/// Exhaustively enumerates every well-formed mapping of a (tiny) system
/// and returns the candidate with the lowest fitness. Intended for the
/// motivational examples and for cross-checking the GA on small instances;
/// throws ExhaustiveOverflow when the space exceeds `max_candidates`.
[[nodiscard]] SynthesisResult exhaustive_search(
    const System& system, const SynthesisOptions& options,
    std::uint64_t max_candidates = 2'000'000);

}  // namespace mmsyn
